package streamkm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// Checkpoint support for long-running streaming jobs: a StreamClusterer
// or WindowedClusterer can serialize its complete state — retained
// chunk summaries, the buffered tail, and the random-generator state —
// and be resumed later (or on another machine) with bit-identical
// behaviour. This is the library's answer to Conquest's query-migration
// capability (§4), and the durability substrate of the streamkmd
// serving daemon's crash-safe sessions.
//
// Version 1 layout (little-endian) — stream clusterers:
//
//	magic    [4]byte "SKMC"
//	version  uint16 (1)
//	dim      uint16
//	pushed   uint64
//	partialT int64 (accumulated partial time, ns)
//	rng      uint16 length + bytes (rng.RNG.MarshalBinary)
//	parts    uint32 count, then each as a weighted-set block
//	buffer   one weighted-set block (unit weights; may be empty)
//
// Version 2 — windowed clusterers — inserts a kind byte after the
// version so one decoder can refuse the wrong clusterer type with a
// useful error, then frames the body with a length prefix and an IEEE
// CRC-32 trailer over the body bytes, so any bit flip anywhere in the
// document is detected (v1 only protects the weighted-set blocks).
// Kind 1 (windowed) bodies are described at encodeWindowedBody; kind 0
// is reserved for stream clusterers, which keep writing version 1, so
// every pre-existing file and reader is unaffected.
//
// Decoding is hardened against hostile headers the same way the bucket
// and weighted-set decoders are: no count or length field is trusted
// with a large preallocation before the data it describes has started
// to decode (FuzzCheckpoint covers both versions).
const (
	checkpointMagic           = "SKMC"
	checkpointVersion         = 1
	checkpointVersionWindowed = 2

	checkpointKindStream   = 0
	checkpointKindWindowed = 1

	// maxCheckpointParts bounds the retained-summary count a decoder
	// accepts: a hostile count must not drive an unbounded decode loop.
	// A real stream checkpoint holds one part per flushed chunk, so even
	// multi-year jobs stay far below this.
	maxCheckpointParts = 1 << 24
)

// ErrBadCheckpoint is wrapped by checkpoint decoding errors.
var ErrBadCheckpoint = errors.New("streamkm: malformed checkpoint")

// Checkpoint serializes the clusterer's state. It may be called between
// any two Pushes; it must not be called after Finish.
func (s *StreamClusterer) Checkpoint(w io.Writer) error {
	if s.finished {
		return errors.New("streamkm: Checkpoint after Finish")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(checkpointVersion)); err != nil {
		return err
	}
	if err := s.encodeBody(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// encodeBody writes the version-1 stream body (everything after the
// version field).
func (s *StreamClusterer) encodeBody(bw *bufio.Writer) error {
	for _, v := range []any{
		uint16(s.dim),
		uint64(s.pushed),
		int64(s.partialT),
	} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := writeRNGState(bw, s.rng); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.parts))); err != nil {
		return err
	}
	for _, part := range s.parts {
		if err := dataset.EncodeWeightedSet(bw, part); err != nil {
			return err
		}
	}
	return dataset.EncodeWeightedSet(bw, dataset.Unweighted(s.buffer))
}

// Checkpoint serializes the windowed clusterer's state — the window
// ring, the buffered tail, the stream counters, and the snapshot
// index's maintained answer and activity counters — as an SKMC
// version-2 document. It may be called between any two Pushes; pushes
// after the call do not affect the written bytes only if the writer
// consumed them before the next Push (the state blocks alias live
// structures until flushed here).
func (w *WindowedClusterer) Checkpoint(wr io.Writer) error {
	st, err := w.inner.State()
	if err != nil {
		return err
	}
	var body bytes.Buffer
	bodyW := bufio.NewWriter(&body)
	if err := encodeWindowedBody(bodyW, w.inner.Dim(), st); err != nil {
		return err
	}
	if err := bodyW.Flush(); err != nil {
		return err
	}
	bw := bufio.NewWriter(wr)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	for _, v := range []any{
		uint16(checkpointVersionWindowed),
		uint8(checkpointKindWindowed),
		uint64(body.Len()),
	} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if _, err := bw.Write(body.Bytes()); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, crc32.ChecksumIEEE(body.Bytes())); err != nil {
		return err
	}
	return bw.Flush()
}

// encodeWindowedBody writes the windowed body:
//
//	dim       uint16
//	consumed  uint64
//	expired   uint64
//	rotations uint64
//	rng       uint16 length + bytes
//	stats     5 x int64 (queries, cache hits, warm starts, resyncs,
//	          refine iterations)
//	summaries uint32 count, then each as a weighted-set block
//	buffer    one weighted-set block (unit weights; may be empty)
//	base      uint8 presence flag; when 1: weighted-set block
//	          (centroids+weights), mse float64, iterations uint32,
//	          inputs uint32
func encodeWindowedBody(bw *bufio.Writer, dim int, st *core.WindowState) error {
	for _, v := range []any{
		uint16(dim),
		uint64(st.Consumed),
		uint64(st.Expired),
		uint64(st.Rotations),
	} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(st.RNGState))); err != nil {
		return err
	}
	if _, err := bw.Write(st.RNGState); err != nil {
		return err
	}
	for _, v := range []int64{
		st.Stats.Queries, st.Stats.CacheHits, st.Stats.WarmStarts,
		st.Stats.Resyncs, st.Stats.RefineIterations,
	} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(st.Summaries))); err != nil {
		return err
	}
	for _, s := range st.Summaries {
		if err := dataset.EncodeWeightedSet(bw, s); err != nil {
			return err
		}
	}
	if err := dataset.EncodeWeightedSet(bw, dataset.Unweighted(st.Buffer)); err != nil {
		return err
	}
	if st.Base == nil {
		return binary.Write(bw, binary.LittleEndian, uint8(0))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint8(1)); err != nil {
		return err
	}
	base := dataset.MustNewWeightedSet(dim)
	for i, c := range st.Base.Centroids {
		if err := base.Add(dataset.WeightedPoint{Vec: c, Weight: st.Base.Weights[i]}); err != nil {
			return err
		}
	}
	if err := dataset.EncodeWeightedSet(bw, base); err != nil {
		return err
	}
	for _, v := range []any{st.Base.MSE, uint32(st.Base.Iterations), uint32(st.Base.Inputs)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// ResumeStreamClusterer reconstructs a clusterer from a checkpoint. The
// caller supplies the same Options used originally (the checkpoint holds
// data, not configuration); dimension and option validity are checked.
func ResumeStreamClusterer(r io.Reader, opts Options) (*StreamClusterer, error) {
	br := bufio.NewReader(r)
	version, err := readCheckpointHeader(br)
	if err != nil {
		return nil, err
	}
	if version == checkpointVersionWindowed {
		// Stream clusterers write version 1; a version-2 file necessarily
		// holds a windowed clusterer (kind 0 is reserved, never written).
		return nil, fmt.Errorf("%w: version-2 checkpoints hold windowed clusterers; use ResumeWindowedClusterer", ErrBadCheckpoint)
	}
	return decodeStreamBody(br, opts)
}

// ResumeWindowedClusterer reconstructs a windowed clusterer from an SKMC
// version-2 checkpoint. The caller supplies the same WindowedOptions the
// clusterer was created with; a resumed clusterer's pushes and snapshots
// are bit-identical to an uninterrupted one at the same stream position.
func ResumeWindowedClusterer(r io.Reader, opts WindowedOptions) (*WindowedClusterer, error) {
	br := bufio.NewReader(r)
	version, err := readCheckpointHeader(br)
	if err != nil {
		return nil, err
	}
	if version != checkpointVersionWindowed {
		return nil, fmt.Errorf("%w: version %d holds a stream clusterer; use ResumeStreamClusterer", ErrBadCheckpoint, version)
	}
	kind, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: missing kind: %v", ErrBadCheckpoint, err)
	}
	if kind != checkpointKindWindowed {
		return nil, fmt.Errorf("%w: checkpoint holds a stream clusterer (kind %d); use ResumeStreamClusterer", ErrBadCheckpoint, kind)
	}
	var bodyLen uint64
	if err := binary.Read(br, binary.LittleEndian, &bodyLen); err != nil {
		return nil, fmt.Errorf("%w: missing body length: %v", ErrBadCheckpoint, err)
	}
	// The declared length is not trusted with a preallocation: the body
	// is read incrementally up to it, so a hostile header fails at the
	// actual EOF having allocated only what the file really contained.
	body, err := io.ReadAll(io.LimitReader(br, int64(min(bodyLen, math.MaxInt64))))
	if err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrBadCheckpoint, err)
	}
	if uint64(len(body)) != bodyLen {
		return nil, fmt.Errorf("%w: body truncated at %d of %d bytes", ErrBadCheckpoint, len(body), bodyLen)
	}
	var stored uint32
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrBadCheckpoint, err)
	}
	if stored != crc32.ChecksumIEEE(body) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadCheckpoint)
	}
	return decodeWindowedBody(bufio.NewReader(bytes.NewReader(body)), opts)
}

// readCheckpointHeader consumes the magic and version and validates
// both.
func readCheckpointHeader(br *bufio.Reader) (uint16, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if string(magic) != checkpointMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrBadCheckpoint, magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if version != checkpointVersion && version != checkpointVersionWindowed {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, version)
	}
	return version, nil
}

func decodeStreamBody(br *bufio.Reader, opts Options) (*StreamClusterer, error) {
	var dim uint16
	var pushed uint64
	var partialT int64
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if dim == 0 {
		return nil, fmt.Errorf("%w: zero dimension", ErrBadCheckpoint)
	}
	if err := binary.Read(br, binary.LittleEndian, &pushed); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if pushed > math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible push count %d", ErrBadCheckpoint, pushed)
	}
	if err := binary.Read(br, binary.LittleEndian, &partialT); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	restored, err := readRNGState(br)
	if err != nil {
		return nil, err
	}

	sc, err := NewStreamClusterer(int(dim), opts)
	if err != nil {
		return nil, err
	}
	sc.rng = restored
	sc.pushed = int(pushed)
	sc.partialT = time.Duration(partialT)

	var nParts uint32
	if err := binary.Read(br, binary.LittleEndian, &nParts); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if nParts > maxCheckpointParts {
		return nil, fmt.Errorf("%w: implausible part count %d", ErrBadCheckpoint, nParts)
	}
	// The count is not trusted with a preallocation: parts append one at
	// a time, so a hostile header fails at the first short block.
	for i := uint32(0); i < nParts; i++ {
		part, err := dataset.DecodeWeightedSet(br)
		if err != nil {
			return nil, fmt.Errorf("%w: part %d: %v", ErrBadCheckpoint, i, err)
		}
		if part.Dim() != int(dim) {
			return nil, fmt.Errorf("%w: part %d has dim %d", ErrBadCheckpoint, i, part.Dim())
		}
		sc.parts = append(sc.parts, part)
	}
	buffer, err := decodeUnweightedBuffer(br, int(dim))
	if err != nil {
		return nil, err
	}
	sc.buffer = buffer
	return sc, nil
}

func decodeWindowedBody(br *bufio.Reader, opts WindowedOptions) (*WindowedClusterer, error) {
	var dim uint16
	var consumed, expired, rotations uint64
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if dim == 0 {
		return nil, fmt.Errorf("%w: zero dimension", ErrBadCheckpoint)
	}
	for _, v := range []*uint64{&consumed, &expired, &rotations} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
	}
	if consumed > math.MaxInt32 || expired > consumed || rotations > consumed {
		return nil, fmt.Errorf("%w: implausible counters consumed=%d expired=%d rotations=%d", ErrBadCheckpoint, consumed, expired, rotations)
	}
	rngRestored, err := readRNGState(br)
	if err != nil {
		return nil, err
	}
	st := &core.WindowState{
		Consumed:  int(consumed),
		Expired:   int(expired),
		Rotations: int(rotations),
	}
	st.RNGState, err = rngRestored.MarshalBinary()
	if err != nil {
		return nil, err
	}
	for _, v := range []*int64{
		&st.Stats.Queries, &st.Stats.CacheHits, &st.Stats.WarmStarts,
		&st.Stats.Resyncs, &st.Stats.RefineIterations,
	} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
		if *v < 0 {
			return nil, fmt.Errorf("%w: negative snapshot counter %d", ErrBadCheckpoint, *v)
		}
	}
	var nSumm uint32
	if err := binary.Read(br, binary.LittleEndian, &nSumm); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if nSumm > maxCheckpointParts {
		return nil, fmt.Errorf("%w: implausible summary count %d", ErrBadCheckpoint, nSumm)
	}
	for i := uint32(0); i < nSumm; i++ {
		s, err := dataset.DecodeWeightedSet(br)
		if err != nil {
			return nil, fmt.Errorf("%w: summary %d: %v", ErrBadCheckpoint, i, err)
		}
		if s.Dim() != int(dim) {
			return nil, fmt.Errorf("%w: summary %d has dim %d", ErrBadCheckpoint, i, s.Dim())
		}
		st.Summaries = append(st.Summaries, s)
	}
	st.Buffer, err = decodeUnweightedBuffer(br, int(dim))
	if err != nil {
		return nil, err
	}
	var hasBase uint8
	if err := binary.Read(br, binary.LittleEndian, &hasBase); err != nil {
		return nil, fmt.Errorf("%w: missing base flag: %v", ErrBadCheckpoint, err)
	}
	switch hasBase {
	case 0:
	case 1:
		baseSet, err := dataset.DecodeWeightedSet(br)
		if err != nil {
			return nil, fmt.Errorf("%w: base: %v", ErrBadCheckpoint, err)
		}
		if baseSet.Dim() != int(dim) {
			return nil, fmt.Errorf("%w: base dim %d", ErrBadCheckpoint, baseSet.Dim())
		}
		base := &core.MergeResult{}
		for _, wp := range baseSet.Points() {
			vec := make(vector.Vector, len(wp.Vec))
			copy(vec, wp.Vec)
			base.Centroids = append(base.Centroids, vec)
			base.Weights = append(base.Weights, wp.Weight)
		}
		var iters, inputs uint32
		if err := binary.Read(br, binary.LittleEndian, &base.MSE); err != nil {
			return nil, fmt.Errorf("%w: base mse: %v", ErrBadCheckpoint, err)
		}
		if math.IsNaN(base.MSE) || base.MSE < 0 {
			return nil, fmt.Errorf("%w: bad base mse", ErrBadCheckpoint)
		}
		for _, v := range []*uint32{&iters, &inputs} {
			if err := binary.Read(br, binary.LittleEndian, v); err != nil {
				return nil, fmt.Errorf("%w: base counters: %v", ErrBadCheckpoint, err)
			}
		}
		base.Iterations = int(iters)
		base.Inputs = int(inputs)
		st.Base = base
	default:
		return nil, fmt.Errorf("%w: bad base flag %d", ErrBadCheckpoint, hasBase)
	}

	w, err := NewWindowedClusterer(int(dim), opts)
	if err != nil {
		return nil, err
	}
	inner, err := core.RestoreWindowedClusterer(int(dim), w.coreConfig(), st)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	w.inner = inner
	return w, nil
}

// writeRNGState serializes the generator with a length prefix.
func writeRNGState(bw *bufio.Writer, r *rng.RNG) error {
	state, err := r.MarshalBinary()
	if err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(state))); err != nil {
		return err
	}
	_, err = bw.Write(state)
	return err
}

// readRNGState decodes a length-prefixed generator state. The length is
// a uint16, so the read is bounded by construction.
func readRNGState(br *bufio.Reader) (*rng.RNG, error) {
	var stateLen uint16
	if err := binary.Read(br, binary.LittleEndian, &stateLen); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	state := make([]byte, stateLen)
	if _, err := io.ReadFull(br, state); err != nil {
		return nil, fmt.Errorf("%w: truncated rng state: %v", ErrBadCheckpoint, err)
	}
	restored := rng.New(0)
	if err := restored.UnmarshalBinary(state); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	return restored, nil
}

// decodeUnweightedBuffer reads a weighted-set block holding unit-weight
// buffered points and rebuilds the plain point set.
func decodeUnweightedBuffer(br *bufio.Reader, dim int) (*dataset.Set, error) {
	bufSet, err := dataset.DecodeWeightedSet(br)
	if err != nil {
		return nil, fmt.Errorf("%w: buffer: %v", ErrBadCheckpoint, err)
	}
	if bufSet.Dim() != dim {
		return nil, fmt.Errorf("%w: buffer dim %d", ErrBadCheckpoint, bufSet.Dim())
	}
	buffer, err := dataset.NewSet(dim)
	if err != nil {
		return nil, err
	}
	for _, wp := range bufSet.Points() {
		if err := buffer.Add(wp.Vec); err != nil {
			return nil, err
		}
	}
	return buffer, nil
}
