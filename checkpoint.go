package streamkm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
)

// Checkpoint support for long-running streaming jobs: a StreamClusterer
// can serialize its complete state — retained chunk summaries, the
// buffered tail, and the random-generator state — and be resumed later
// (or on another machine) with bit-identical behaviour. This is the
// library's answer to Conquest's query-migration capability (§4).
//
// Layout (little-endian):
//
//	magic    [4]byte "SKMC"
//	version  uint16
//	dim      uint16
//	pushed   uint64
//	partialT int64 (accumulated partial time, ns)
//	rng      uint16 length + bytes (rng.RNG.MarshalBinary)
//	parts    uint32 count, then each as a weighted-set block
//	buffer   one weighted-set block (unit weights; may be empty)
const (
	checkpointMagic   = "SKMC"
	checkpointVersion = 1
)

// ErrBadCheckpoint is wrapped by checkpoint decoding errors.
var ErrBadCheckpoint = errors.New("streamkm: malformed checkpoint")

// Checkpoint serializes the clusterer's state. It may be called between
// any two Pushes; it must not be called after Finish.
func (s *StreamClusterer) Checkpoint(w io.Writer) error {
	if s.finished {
		return errors.New("streamkm: Checkpoint after Finish")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	for _, v := range []any{
		uint16(checkpointVersion),
		uint16(s.dim),
		uint64(s.pushed),
		int64(s.partialT),
	} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	state, err := s.rng.MarshalBinary()
	if err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(state))); err != nil {
		return err
	}
	if _, err := bw.Write(state); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.parts))); err != nil {
		return err
	}
	for _, part := range s.parts {
		if err := dataset.EncodeWeightedSet(bw, part); err != nil {
			return err
		}
	}
	if err := dataset.EncodeWeightedSet(bw, dataset.Unweighted(s.buffer)); err != nil {
		return err
	}
	return bw.Flush()
}

// ResumeStreamClusterer reconstructs a clusterer from a checkpoint. The
// caller supplies the same Options used originally (the checkpoint holds
// data, not configuration); dimension and option validity are checked.
func ResumeStreamClusterer(r io.Reader, opts Options) (*StreamClusterer, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadCheckpoint, magic)
	}
	var version, dim uint16
	var pushed uint64
	var partialT int64
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, version)
	}
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if dim == 0 {
		return nil, fmt.Errorf("%w: zero dimension", ErrBadCheckpoint)
	}
	if err := binary.Read(br, binary.LittleEndian, &pushed); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if pushed > math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible push count %d", ErrBadCheckpoint, pushed)
	}
	if err := binary.Read(br, binary.LittleEndian, &partialT); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	var stateLen uint16
	if err := binary.Read(br, binary.LittleEndian, &stateLen); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	state := make([]byte, stateLen)
	if _, err := io.ReadFull(br, state); err != nil {
		return nil, fmt.Errorf("%w: truncated rng state: %v", ErrBadCheckpoint, err)
	}
	restored := rng.New(0)
	if err := restored.UnmarshalBinary(state); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}

	sc, err := NewStreamClusterer(int(dim), opts)
	if err != nil {
		return nil, err
	}
	sc.rng = restored
	sc.pushed = int(pushed)
	sc.partialT = time.Duration(partialT)

	var nParts uint32
	if err := binary.Read(br, binary.LittleEndian, &nParts); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if nParts > 1<<24 {
		return nil, fmt.Errorf("%w: implausible part count %d", ErrBadCheckpoint, nParts)
	}
	for i := uint32(0); i < nParts; i++ {
		part, err := dataset.DecodeWeightedSet(br)
		if err != nil {
			return nil, fmt.Errorf("%w: part %d: %v", ErrBadCheckpoint, i, err)
		}
		if part.Dim() != int(dim) {
			return nil, fmt.Errorf("%w: part %d has dim %d", ErrBadCheckpoint, i, part.Dim())
		}
		sc.parts = append(sc.parts, part)
	}
	bufSet, err := dataset.DecodeWeightedSet(br)
	if err != nil {
		return nil, fmt.Errorf("%w: buffer: %v", ErrBadCheckpoint, err)
	}
	if bufSet.Dim() != int(dim) {
		return nil, fmt.Errorf("%w: buffer dim %d", ErrBadCheckpoint, bufSet.Dim())
	}
	buffer, err := dataset.NewSet(int(dim))
	if err != nil {
		return nil, err
	}
	for _, wp := range bufSet.Points() {
		if err := buffer.Add(wp.Vec); err != nil {
			return nil, err
		}
	}
	sc.buffer = buffer
	return sc, nil
}
