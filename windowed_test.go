package streamkm

import (
	"math"
	"testing"
)

func TestWindowedClustererFacade(t *testing.T) {
	w, err := NewWindowedClusterer(2, WindowedOptions{
		K: 4, ChunkPoints: 60, WindowChunks: 3, Restarts: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := blobPoints(600) // three blobs, round-robin
	for _, p := range pts {
		if err := w.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Consumed() != 600 {
		t.Fatalf("Consumed = %d", w.Consumed())
	}
	// 600/60 = 10 chunks, window 3 → 7 expired.
	if w.Expired() != 7 || w.LiveChunks() != 3 {
		t.Fatalf("Expired = %d, LiveChunks = %d", w.Expired(), w.LiveChunks())
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Centroids) != 4 {
		t.Fatalf("centroids = %d", len(snap.Centroids))
	}
	// window of 3 chunks x 60 points = 180 points represented
	var total float64
	for _, x := range snap.Weights {
		total += x
	}
	if math.Abs(total-180) > 1e-6 {
		t.Fatalf("snapshot weight %g, want 180", total)
	}
	if snap.Partitions != 3 {
		t.Fatalf("Partitions = %d", snap.Partitions)
	}
}

func TestWindowedClustererFacadeValidation(t *testing.T) {
	if _, err := NewWindowedClusterer(2, WindowedOptions{K: 0, ChunkPoints: 10, WindowChunks: 1}); err == nil {
		t.Fatal("bad config should error")
	}
}
