package streamkm

import (
	"bytes"
	"math"
	"testing"
)

func TestCheckpointResumeIsBitIdentical(t *testing.T) {
	opts := Options{K: 6, Restarts: 3, ChunkPoints: 90, Seed: 13}
	pts := blobPoints(700)

	// Reference run: straight through.
	ref, err := NewStreamClusterer(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := ref.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ref.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// Checkpointed run: stop mid-stream (between chunks AND mid-buffer),
	// serialize, resume, continue.
	cut := 400 // 4 full chunks + 40 buffered points
	first, err := NewStreamClusterer(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:cut] {
		if err := first.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := first.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeStreamClusterer(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Pushed() != cut || resumed.Partials() != 4 {
		t.Fatalf("resumed state: pushed=%d partials=%d", resumed.Pushed(), resumed.Partials())
	}
	for _, p := range pts[cut:] {
		if err := resumed.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := resumed.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if got.MergeMSE != want.MergeMSE {
		t.Fatalf("resumed MergeMSE %g != reference %g", got.MergeMSE, want.MergeMSE)
	}
	if len(got.Centroids) != len(want.Centroids) {
		t.Fatalf("centroid counts differ")
	}
	for i := range want.Centroids {
		for d := range want.Centroids[i] {
			if got.Centroids[i][d] != want.Centroids[i][d] {
				t.Fatalf("centroid %d differs after resume", i)
			}
		}
	}
	var w float64
	for _, x := range got.Weights {
		w += x
	}
	if math.Abs(w-700) > 1e-6 {
		t.Fatalf("resumed run lost data: weight %g", w)
	}
}

func TestCheckpointAfterFinishRejected(t *testing.T) {
	sc, err := NewStreamClusterer(2, Options{K: 2, Restarts: 1, ChunkPoints: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range blobPoints(20) {
		if err := sc.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sc.Finish(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sc.Checkpoint(&buf); err == nil {
		t.Fatal("Checkpoint after Finish should error")
	}
}

func TestResumeRejectsCorruption(t *testing.T) {
	opts := Options{K: 3, Restarts: 2, ChunkPoints: 50, Seed: 3}
	sc, err := NewStreamClusterer(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range blobPoints(120) {
		if err := sc.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sc.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("XXXX"), good[4:]...),
		"bad version":  func() []byte { b := append([]byte{}, good...); b[4] = 9; return b }(),
		"truncated":    good[:len(good)-5],
		"flipped data": func() []byte { b := append([]byte{}, good...); b[len(b)-10] ^= 0x40; return b }(),
	}
	for name, data := range cases {
		if _, err := ResumeStreamClusterer(bytes.NewReader(data), opts); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

// failingWriter errors after n bytes, exercising every write branch.
type failingWriter struct{ remaining int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		return 0, errWriterFull
	}
	if len(p) > w.remaining {
		n := w.remaining
		w.remaining = 0
		return n, errWriterFull
	}
	w.remaining -= len(p)
	return len(p), nil
}

type sentinelError string

func (e sentinelError) Error() string { return string(e) }

const errWriterFull = sentinelError("writer full")

func TestCheckpointPropagatesWriteErrors(t *testing.T) {
	opts := Options{K: 3, Restarts: 2, ChunkPoints: 50, Seed: 3}
	sc, err := NewStreamClusterer(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range blobPoints(120) {
		if err := sc.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	var full bytes.Buffer
	if err := sc.Checkpoint(&full); err != nil {
		t.Fatal(err)
	}
	// Fail at every prefix length; Checkpoint must surface an error for
	// each truncation point rather than silently writing a short file.
	for n := 0; n < full.Len(); n += 97 {
		if err := sc.Checkpoint(&failingWriter{remaining: n}); err == nil {
			t.Fatalf("no error when writer fails after %d bytes", n)
		}
	}
}

// windowedCheckpointScenario runs a reference windowed clusterer and a
// checkpointed-then-resumed one over the same stream and requires
// bit-identical snapshots for the rest of the stream.
func windowedCheckpointScenario(t *testing.T, opts WindowedOptions, cut int) {
	t.Helper()
	pts := blobPoints(900)
	ref, err := NewWindowedClusterer(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	live, err := NewWindowedClusterer(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:cut] {
		if err := ref.Push(p); err != nil {
			t.Fatal(err)
		}
		if err := live.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := live.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeWindowedClusterer(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Consumed() != cut {
		t.Fatalf("resumed consumed %d, want %d", resumed.Consumed(), cut)
	}
	for i, p := range pts[cut:] {
		if err := ref.Push(p); err != nil {
			t.Fatal(err)
		}
		if err := resumed.Push(p); err != nil {
			t.Fatal(err)
		}
		if i%61 != 0 {
			continue
		}
		a, err := ref.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		b, err := resumed.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if a.MergeMSE != b.MergeMSE {
			t.Fatalf("push %d: resumed MergeMSE %g != reference %g", i, b.MergeMSE, a.MergeMSE)
		}
		for j := range a.Centroids {
			for d := range a.Centroids[j] {
				if a.Centroids[j][d] != b.Centroids[j][d] {
					t.Fatalf("push %d: centroid %d differs after resume", i, j)
				}
			}
			if a.Weights[j] != b.Weights[j] {
				t.Fatalf("push %d: weight %d differs after resume", i, j)
			}
		}
	}
}

func TestWindowedCheckpointResumeIsBitIdentical(t *testing.T) {
	for _, solver := range []string{"", "minibatch"} {
		// Cuts land mid-chunk (130), on a rotation boundary (240), and
		// past a window expiry (610).
		for _, cut := range []int{130, 240, 610} {
			opts := WindowedOptions{
				K: 5, ChunkPoints: 80, WindowChunks: 4,
				Restarts: 2, Seed: 21, MergeSolver: solver,
			}
			windowedCheckpointScenario(t, opts, cut)
		}
	}
}

func TestWindowedCheckpointStatsSurvive(t *testing.T) {
	opts := WindowedOptions{K: 4, ChunkPoints: 60, WindowChunks: 3, Seed: 7, MergeSolver: "minibatch"}
	w, err := NewWindowedClusterer(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range blobPoints(500) {
		if err := w.Push(p); err != nil {
			t.Fatal(err)
		}
		if i >= 100 && i%50 == 0 {
			if _, err := w.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := w.SnapshotStats()
	if before.Queries == 0 {
		t.Fatal("scenario issued no queries")
	}
	var buf bytes.Buffer
	if err := w.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeWindowedClusterer(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.SnapshotStats(); got != before {
		t.Fatalf("snapshot stats lost in checkpoint: %+v != %+v", got, before)
	}
}

func TestCheckpointKindMismatchRejected(t *testing.T) {
	wopts := WindowedOptions{K: 3, ChunkPoints: 30, WindowChunks: 2, Seed: 1}
	w, err := NewWindowedClusterer(2, wopts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range blobPoints(100) {
		if err := w.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	var wbuf bytes.Buffer
	if err := w.Checkpoint(&wbuf); err != nil {
		t.Fatal(err)
	}
	sopts := Options{K: 3, Restarts: 1, ChunkPoints: 30, Seed: 1}
	if _, err := ResumeStreamClusterer(bytes.NewReader(wbuf.Bytes()), sopts); err == nil {
		t.Fatal("stream resume of a windowed checkpoint should fail")
	}

	sc, err := NewStreamClusterer(2, sopts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range blobPoints(100) {
		if err := sc.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	var sbuf bytes.Buffer
	if err := sc.Checkpoint(&sbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeWindowedClusterer(bytes.NewReader(sbuf.Bytes()), wopts); err == nil {
		t.Fatal("windowed resume of a stream (v1) checkpoint should fail")
	}
}

func TestWindowedResumeRejectsCorruption(t *testing.T) {
	opts := WindowedOptions{K: 3, ChunkPoints: 40, WindowChunks: 2, Seed: 5, MergeSolver: "minibatch"}
	w, err := NewWindowedClusterer(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range blobPoints(200) {
		if err := w.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := w.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"bad version": func() []byte { b := append([]byte{}, good...); b[4] = 9; return b }(),
		"bad kind":    func() []byte { b := append([]byte{}, good...); b[6] = 7; return b }(),
		"truncated":   good[:len(good)-5],
		"flipped":     func() []byte { b := append([]byte{}, good...); b[len(b)-12] ^= 0x20; return b }(),
	}
	for name, data := range cases {
		if _, err := ResumeWindowedClusterer(bytes.NewReader(data), opts); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func TestResumeValidatesOptions(t *testing.T) {
	opts := Options{K: 3, Restarts: 2, ChunkPoints: 50, Seed: 3}
	sc, err := NewStreamClusterer(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Push([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sc.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	bad := opts
	bad.ChunkPoints = 0
	if _, err := ResumeStreamClusterer(bytes.NewReader(buf.Bytes()), bad); err == nil {
		t.Fatal("invalid options should be rejected at resume")
	}
}
