package streamkm_test

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/engine"
	"streamkm/internal/grid"
	"streamkm/internal/histogram"
	"streamkm/internal/metrics"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// TestEndToEndSwathToHistograms exercises the full system across module
// boundaries: swath simulation → grid bucketing → bucket files on disk →
// directory index → engine-planned partial/merge clustering → histogram
// compression → range-query estimation. This is the paper's motivating
// pipeline (§1) as one test.
func TestEndToEndSwathToHistograms(t *testing.T) {
	// 1. Simulate the instrument and bucket the measurements.
	spec := grid.DefaultSwathSpec()
	spec.Orbits = 16
	spec.PointsPerOrbit = 10000
	model := grid.GeoGradientModel{Dim: spec.Dim, Noise: 0.8, Scale: 10}
	measurements, err := grid.SimulateSwaths(spec, model, 99)
	if err != nil {
		t.Fatal(err)
	}
	cellMap, err := grid.Bucketize(measurements)
	if err != nil {
		t.Fatal(err)
	}
	sets, err := grid.BucketizeToSets(cellMap)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Persist the densest cells as bucket files, like datagen does.
	dir := t.TempDir()
	written := 0
	for key, set := range sets {
		if set.Len() < 60 {
			continue
		}
		path := filepath.Join(dir, grid.BucketFileName(key))
		if err := grid.WriteBucketFile(path, key, set); err != nil {
			t.Fatal(err)
		}
		written++
		if written == 5 {
			break
		}
	}
	if written == 0 {
		t.Fatal("swath produced no dense cells")
	}

	// 3. Re-read through the index, like pmkm does.
	index, err := grid.IndexDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(index) != written {
		t.Fatalf("index has %d entries, wrote %d", len(index), written)
	}
	var cells []engine.Cell
	for _, entry := range index {
		key, set, err := grid.ReadBucketFile(entry.Path)
		if err != nil {
			t.Fatal(err)
		}
		if key != entry.Key || set.Len() != entry.Count {
			t.Fatalf("index entry %+v does not match file (%v, %d)", entry, key, set.Len())
		}
		cells = append(cells, engine.Cell{Key: key, Points: set})
	}

	// 4. Cluster through the engine with a tight memory budget so cells
	// actually get chunked.
	q := engine.Query{K: 8, Restarts: 3, Seed: 5}
	results, plan, stats, err := engine.Run(context.Background(), cells, q, engine.Resources{
		MemoryBytes: 4 << 10,
		Workers:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ChunkPoints <= 0 || stats.Chunks < len(cells) {
		t.Fatalf("plan %+v, stats %+v", plan, stats)
	}

	// 5. Compress every cell and validate the compressed representation
	// answers a whole-space range query with the exact point count.
	for i, r := range results {
		h, err := histogram.Build(cells[i].Points, r.Result.Centroids)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h.Total()-float64(cells[i].Points.Len())) > 1e-9 {
			t.Fatalf("cell %v: histogram mass %g != %d points", r.Key, h.Total(), cells[i].Points.Len())
		}
		lo, hi := vector.New(h.Dim()), vector.New(h.Dim())
		for d := range lo {
			lo[d], hi[d] = -1e12, 1e12
		}
		est, err := h.EstimateRange(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est-h.Total()) > 1e-6 {
			t.Fatalf("cell %v: whole-space estimate %g != %g", r.Key, est, h.Total())
		}
		if h.CompressionRatio(cells[i].Points.Len()) <= 1 {
			t.Fatalf("cell %v: no compression achieved", r.Key)
		}
	}
}

// TestStreamedEqualsBatchQuality verifies the memory-bounded streaming
// path is in the same quality regime as batch partial/merge on the same
// data, using the raw points for an apples-to-apples MSE.
func TestStreamedEqualsBatchQuality(t *testing.T) {
	spec := dataset.DefaultCellSpec()
	spec.Clusters = 10
	cell, err := dataset.GenerateCell(spec, 5000, 77)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := core.Cluster(cell, core.Options{K: 20, Restarts: 3, Splits: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Stream the same points through the partial operator in 5 chunks.
	chunks, err := dataset.Split(cell, 5, dataset.SplitSalami, nil)
	if err != nil {
		t.Fatal(err)
	}
	master := rng.New(3)
	parts := make([]*dataset.WeightedSet, len(chunks))
	for i, c := range chunks {
		pr, err := core.PartialKMeans(c, core.PartialConfig{K: 20, Restarts: 3}, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = pr.Centroids
	}
	mr, err := core.MergeKMeans(parts, core.MergeConfig{K: 20}, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	streamMSE, err := metrics.MSE(cell, mr.Centroids)
	if err != nil {
		t.Fatal(err)
	}
	if streamMSE > 3*batch.PointMSE+1 {
		t.Fatalf("streamed MSE %g far from batch %g", streamMSE, batch.PointMSE)
	}
}
