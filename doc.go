// Package streamkm is a Go implementation of the partial/merge k-means
// algorithm of Nittel, Leung and Braverman, "Scaling Clustering
// Algorithms for Massive Data Sets using Data Streams" (ICDE 2004).
//
// Partial/merge k-means clusters data sets of any size under a fixed
// memory budget: the input is divided into partitions ("chunks") that
// each fit in RAM, an ordinary multi-restart k-means reduces every chunk
// to k weighted centroids, and a final weighted k-means over all chunk
// centroids — seeded by the heaviest centroids — produces the overall
// representation. The partial step parallelizes embarrassingly; this
// package runs chunk clusterings on cloned stream operators (goroutines
// connected by bounded queues).
//
// The top-level package is the facade over the full system:
//
//   - Cluster / ClusterContext run partial/merge k-means over an
//     in-memory point set, serially or with cloned partial operators.
//   - StreamClusterer consumes an unbounded stream point by point under
//     a fixed memory budget ("one look" semantics).
//
// Substrates live in internal/ packages: the weighted Lloyd core
// (internal/kmeans), the stream operator engine (internal/stream), the
// Conquest-like query planner (internal/engine), the MISR-like data
// substrate (internal/dataset, internal/grid), compression
// (internal/histogram, internal/ecvq), the baselines the paper compares
// against (internal/baseline), and the paper-exhibit benchmark harness
// (internal/bench) exercised by cmd/benchtables.
package streamkm
