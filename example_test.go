package streamkm_test

import (
	"fmt"
	"log"
	"sort"

	"streamkm"
)

// grid9 returns 9 copies each of the 4 corners of a square — trivially
// clusterable data for deterministic examples.
func grid9() [][]float64 {
	var pts [][]float64
	for _, c := range [][2]float64{{0, 0}, {0, 100}, {100, 0}, {100, 100}} {
		for i := 0; i < 9; i++ {
			dx := float64(i%3) - 1
			dy := float64(i/3) - 1
			pts = append(pts, []float64{c[0] + dx, c[1] + dy})
		}
	}
	return pts
}

func ExampleCluster() {
	res, err := streamkm.Cluster(grid9(), streamkm.Options{
		K:        4,
		Restarts: 10,
		Splits:   3,
		Seed:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	cs := make([][2]float64, len(res.Centroids))
	for i, c := range res.Centroids {
		cs[i] = [2]float64{c[0], c[1]}
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i][0] != cs[j][0] {
			return cs[i][0] < cs[j][0]
		}
		return cs[i][1] < cs[j][1]
	})
	for _, c := range cs {
		fmt.Printf("(%.0f, %.0f)\n", c[0], c[1])
	}
	// Output:
	// (0, 0)
	// (0, 100)
	// (100, 0)
	// (100, 100)
}

func ExampleWindowedClusterer() {
	w, err := streamkm.NewWindowedClusterer(2, streamkm.WindowedOptions{
		K:            4,
		ChunkPoints:  36, // one grid9() pass per chunk
		WindowChunks: 2,  // the answer covers the last two chunks
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Three full chunks: the first expires from the window.
	for round := 0; round < 3; round++ {
		for _, p := range grid9() {
			if err := w.Push(p); err != nil {
				log.Fatal(err)
			}
		}
	}
	snap, err := w.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	var total float64
	for _, wt := range snap.Weights {
		total += wt
	}
	fmt.Printf("consumed %d, expired %d chunks, snapshot covers %.0f points\n",
		w.Consumed(), w.Expired(), total)
	// Output:
	// consumed 108, expired 1 chunks, snapshot covers 72 points
}

func ExampleStreamClusterer() {
	sc, err := streamkm.NewStreamClusterer(2, streamkm.Options{
		K:           4,
		Restarts:    5,
		ChunkPoints: 12, // the memory budget: at most 12 raw points held
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range grid9() {
		if err := sc.Push(p); err != nil {
			log.Fatal(err)
		}
	}
	res, err := sc.Finish()
	if err != nil {
		log.Fatal(err)
	}
	var total float64
	for _, w := range res.Weights {
		total += w
	}
	fmt.Printf("points represented: %.0f\n", total)
	fmt.Printf("centroids: %d\n", len(res.Centroids))
	// Output:
	// points represented: 36
	// centroids: 4
}
