package streamkm

import (
	"errors"
	"math"
	"testing"
	"time"
)

func streamPoints(n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		f := float64(i)
		pts[i] = []float64{f, math.Mod(f*7, 100), -f / 3}
	}
	return pts
}

func finishStream(t *testing.T, s *StreamClusterer, pts [][]float64) *Result {
	t.Helper()
	for _, p := range pts {
		if err := s.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStreamClustererDropsMalformedRecords(t *testing.T) {
	opts := Options{K: 4, ChunkPoints: 50, Restarts: 2, Seed: 9}
	var seen []error
	opts.OnDroppedRecord = func(_ []float64, err error) { seen = append(seen, err) }
	s, err := NewStreamClusterer(3, opts)
	if err != nil {
		t.Fatal(err)
	}
	pts := streamPoints(200)
	pts[10] = []float64{1, 2}              // wrong dimension
	pts[40] = []float64{1, math.NaN(), 3}  // NaN attribute
	pts[90] = []float64{math.Inf(1), 0, 0} // infinite attribute
	res := finishStream(t, s, pts)
	if s.Dropped() != 3 || len(seen) != 3 {
		t.Fatalf("Dropped() = %d, callback saw %d", s.Dropped(), len(seen))
	}
	if s.Pushed() != 197 {
		t.Fatalf("Pushed() = %d, want 197", s.Pushed())
	}
	if len(res.Centroids) != 4 {
		t.Fatalf("got %d centroids", len(res.Centroids))
	}
	// The dropped-record stream must equal a clean stream of the 197
	// surviving points: dropping is invisible downstream.
	clean, err := NewStreamClusterer(3, Options{K: 4, ChunkPoints: 50, Restarts: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var survivors [][]float64
	for i, p := range pts {
		if i != 10 && i != 40 && i != 90 {
			survivors = append(survivors, p)
		}
	}
	want := finishStream(t, clean, survivors)
	assertSameCentroids(t, res, want)
}

func TestStreamClustererStrictModeStillErrors(t *testing.T) {
	s, err := NewStreamClusterer(3, Options{K: 4, ChunkPoints: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Push([]float64{1}); err == nil {
		t.Fatal("wrong-dimension push should error without OnDroppedRecord")
	}
	if s.Dropped() != 0 {
		t.Fatalf("Dropped() = %d", s.Dropped())
	}
}

func TestStreamClustererRetriesFlushBitIdentical(t *testing.T) {
	opts := Options{
		K: 5, ChunkPoints: 40, Restarts: 3, Seed: 31,
		Retry: &RetryPolicy{MaxRetries: 3, BaseBackoff: time.Microsecond},
	}
	s, err := NewStreamClusterer(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the first two attempts of every flush.
	boom := errors.New("injected flush failure")
	s.faultHook = func(attempt int) error {
		if attempt <= 2 {
			return boom
		}
		return nil
	}
	pts := make([][]float64, 300)
	for i := range pts {
		pts[i] = []float64{float64(i % 17), float64(i % 29)}
	}
	got := finishStream(t, s, pts)
	if s.Retries() == 0 {
		t.Fatal("no retries recorded despite injected failures")
	}

	clean, err := NewStreamClusterer(2, Options{K: 5, ChunkPoints: 40, Restarts: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	want := finishStream(t, clean, pts)
	assertSameCentroids(t, got, want)
}

func TestStreamClustererRetryBudgetExhausted(t *testing.T) {
	opts := Options{
		K: 3, ChunkPoints: 20, Seed: 1,
		Retry: &RetryPolicy{MaxRetries: 2},
	}
	s, err := NewStreamClusterer(1, opts)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("permanent failure")
	s.faultHook = func(int) error { return boom }
	var pushErr error
	for i := 0; i < 20 && pushErr == nil; i++ {
		pushErr = s.Push([]float64{float64(i)})
	}
	if !errors.Is(pushErr, boom) {
		t.Fatalf("err = %v, want the injected failure", pushErr)
	}
	if s.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", s.Retries())
	}
}

func TestStreamClustererNoRetryWithoutPolicy(t *testing.T) {
	s, err := NewStreamClusterer(1, Options{K: 3, ChunkPoints: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("first failure is fatal")
	s.faultHook = func(int) error { return boom }
	var pushErr error
	for i := 0; i < 20 && pushErr == nil; i++ {
		pushErr = s.Push([]float64{float64(i)})
	}
	if !errors.Is(pushErr, boom) || s.Retries() != 0 {
		t.Fatalf("err = %v, retries = %d", pushErr, s.Retries())
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	if d := p.backoff(1); d != time.Millisecond {
		t.Fatalf("attempt 1: %v", d)
	}
	if d := p.backoff(3); d != 4*time.Millisecond {
		t.Fatalf("attempt 3: %v", d)
	}
	if d := p.backoff(20); d != 4*time.Millisecond {
		t.Fatalf("attempt 20 should cap: %v", d)
	}
	if d := (RetryPolicy{}).backoff(5); d != 0 {
		t.Fatalf("zero policy should not sleep: %v", d)
	}
}

func assertSameCentroids(t *testing.T, got, want *Result) {
	t.Helper()
	if len(got.Centroids) != len(want.Centroids) {
		t.Fatalf("centroid counts differ: %d != %d", len(got.Centroids), len(want.Centroids))
	}
	for i := range want.Centroids {
		if got.Weights[i] != want.Weights[i] {
			t.Fatalf("centroid %d weight %v != %v", i, got.Weights[i], want.Weights[i])
		}
		for d := range want.Centroids[i] {
			if got.Centroids[i][d] != want.Centroids[i][d] {
				t.Fatalf("centroid %d dim %d: %v != %v", i, d, got.Centroids[i][d], want.Centroids[i][d])
			}
		}
	}
	if got.MergeMSE != want.MergeMSE {
		t.Fatalf("MergeMSE %v != %v", got.MergeMSE, want.MergeMSE)
	}
}
