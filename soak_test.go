package streamkm

import (
	"runtime"
	"testing"
)

// TestStreamClustererHeapStaysBounded is the memory-bottleneck claim
// verified at the Go-heap level: streaming 400k 6-D points (≈19 MB of
// raw attribute data, plus slice headers) through a 2 000-point budget
// must not accumulate O(N) heap — retained state is the buffer plus
// k weighted centroids per completed chunk.
func TestStreamClustererHeapStaysBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		n      = 400_000
		dim    = 6
		budget = 2_000
		k      = 10
	)
	sc, err := NewStreamClusterer(dim, Options{
		K: k, Restarts: 1, ChunkPoints: budget, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	heapAfterGC := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	base := heapAfterGC()

	p := make([]float64, dim)
	state := uint64(7)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/(1<<53)*100 - 50
	}
	var peakGrowth uint64
	for i := 0; i < n; i++ {
		for d := range p {
			p[d] = next()
		}
		if err := sc.Push(p); err != nil {
			t.Fatal(err)
		}
		if i%100_000 == 99_999 {
			if g := heapAfterGC() - base; g > peakGrowth {
				peakGrowth = g
			}
		}
	}
	res, err := sc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, w := range res.Weights {
		total += w
	}
	if total != n {
		t.Fatalf("weights sum %g, want %d", total, n)
	}
	// Raw data would be ~19 MB plus per-point slice overhead (~38 MB).
	// Retained state is budget points + 200 chunks x k centroids; allow
	// generous slack for allocator noise but stay far below O(N).
	const limit = 8 << 20
	if peakGrowth > limit {
		t.Fatalf("heap grew by %d bytes mid-stream (limit %d): state is not O(chunk)",
			peakGrowth, limit)
	}
	t.Logf("peak heap growth %d KiB over %d points (%d chunks)",
		peakGrowth>>10, n, res.Partitions)
}
