package streamkm

import (
	"context"
	"runtime"
	"testing"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/fault"
	"streamkm/internal/kmeans"
	"streamkm/internal/rng"
	"streamkm/internal/stream"
)

// TestStreamClustererHeapStaysBounded is the memory-bottleneck claim
// verified at the Go-heap level: streaming 400k 6-D points (≈19 MB of
// raw attribute data, plus slice headers) through a 2 000-point budget
// must not accumulate O(N) heap — retained state is the buffer plus
// k weighted centroids per completed chunk.
func TestStreamClustererHeapStaysBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		n      = 400_000
		dim    = 6
		budget = 2_000
		k      = 10
	)
	sc, err := NewStreamClusterer(dim, Options{
		K: k, Restarts: 1, ChunkPoints: budget, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	heapAfterGC := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	base := heapAfterGC()

	p := make([]float64, dim)
	state := uint64(7)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/(1<<53)*100 - 50
	}
	var peakGrowth uint64
	for i := 0; i < n; i++ {
		for d := range p {
			p[d] = next()
		}
		if err := sc.Push(p); err != nil {
			t.Fatal(err)
		}
		if i%100_000 == 99_999 {
			if g := heapAfterGC() - base; g > peakGrowth {
				peakGrowth = g
			}
		}
	}
	res, err := sc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, w := range res.Weights {
		total += w
	}
	if total != n {
		t.Fatalf("weights sum %g, want %d", total, n)
	}
	// Raw data would be ~19 MB plus per-point slice overhead (~38 MB).
	// Retained state is budget points + 200 chunks x k centroids; allow
	// generous slack for allocator noise but stay far below O(N).
	const limit = 8 << 20
	if peakGrowth > limit {
		t.Fatalf("heap grew by %d bytes mid-stream (limit %d): state is not O(chunk)",
			peakGrowth, limit)
	}
	t.Logf("peak heap growth %d KiB over %d points (%d chunks)",
		peakGrowth>>10, n, res.Partitions)
}

// TestFaultInjectedWindowedSoak drives a long windowed-clustering
// pipeline built from the stream primitives — source, Batch, a
// supervised partial-k-means operator, and a windowing sink — while a
// deterministic injector fails roughly 1% of operator invocations (plus
// one guaranteed kill). The supervisor must absorb every fault through
// retries, and because each chunk's RNG is pre-derived and copied per
// attempt, the final merged window must be bit-identical to a fault-free
// run. Run under -race this also shakes out supervision data races.
func TestFaultInjectedWindowedSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		n      = 60_000
		dim    = 4
		chunk  = 500 // 120 chunks
		window = 16  // merge the last 16 chunk summaries
		k      = 8
	)
	total := n / chunk

	type chunkItem struct {
		idx int
		pts [][]float64
	}
	type partialItem struct {
		idx int
		ws  *dataset.WeightedSet
	}

	runPipeline := func(inj *fault.Injector) (*core.MergeResult, *stream.StatsRegistry) {
		t.Helper()
		master := rng.New(99)
		chunkRNGs := make([]*rng.RNG, total)
		for i := range chunkRNGs {
			chunkRNGs[i] = master.Split()
		}
		mergeRNG := master.Split()

		g, ctx := stream.NewGroup(context.Background())
		reg := stream.NewStatsRegistry()
		pointQ := stream.NewQueue[[]float64]("points", 256)
		batchQ := stream.NewQueue[[][]float64]("batches", 4)
		chunkQ := stream.NewQueue[chunkItem]("chunks", 4)
		partQ := stream.NewQueue[partialItem]("partials", 4)

		stream.RunSource(g, ctx, reg, "scan", func(_ context.Context, emit stream.Emit[[]float64]) error {
			state := uint64(13)
			for i := 0; i < n; i++ {
				p := make([]float64, dim)
				for d := range p {
					state = state*6364136223846793005 + 1442695040888963407
					p[d] = float64(state>>11)/(1<<53)*100 - 50
				}
				if err := emit(p); err != nil {
					return err
				}
			}
			return nil
		}, pointQ)
		if _, err := stream.Batch(g, ctx, reg, "batch", chunk, pointQ, batchQ); err != nil {
			t.Fatal(err)
		}
		// Single-clone indexer: batches arrive in order, so the running
		// counter is the chunk index that selects the pre-derived RNG.
		idx := 0
		stream.RunTransform(g, ctx, reg, "index", 1,
			func(_ context.Context, b [][]float64, emit stream.Emit[chunkItem]) error {
				item := chunkItem{idx: idx, pts: b}
				idx++
				return emit(item)
			}, batchQ, chunkQ)
		stream.RunSupervisedTransform(g, ctx, reg, "partial-kmeans", 3,
			&stream.Supervisor[chunkItem]{
				Retry:      stream.RetryPolicy{MaxRetries: 50, BaseBackoff: time.Microsecond, Jitter: 0.5},
				JitterSeed: 99,
			},
			func(_ context.Context, c chunkItem, emit stream.Emit[partialItem]) error {
				if err := inj.Invoke("partial-kmeans"); err != nil {
					return err
				}
				set, err := dataset.NewSet(dim)
				if err != nil {
					return err
				}
				for _, p := range c.pts {
					if err := set.Add(p); err != nil {
						return err
					}
				}
				attemptRNG := *chunkRNGs[c.idx]
				pr, err := core.PartialKMeans(set, core.PartialConfig{K: k, Restarts: 2}, &attemptRNG)
				if err != nil {
					return err
				}
				return emit(partialItem{idx: c.idx, ws: pr.Centroids})
			}, chunkQ, partQ)
		summaries := make([]*dataset.WeightedSet, total)
		stream.RunSink(g, ctx, reg, "window", 1, func(_ context.Context, p partialItem) error {
			summaries[p.idx] = p.ws
			return nil
		}, partQ)
		if err := g.Wait(); err != nil {
			t.Fatalf("pipeline failed despite supervision: %v", err)
		}

		// The live window is the last `window` chunk summaries.
		parts := make([]*dataset.WeightedSet, 0, window)
		for i := total - window; i < total; i++ {
			if summaries[i] == nil {
				t.Fatalf("chunk %d summary missing", i)
			}
			parts = append(parts, summaries[i])
		}
		attemptRNG := *mergeRNG
		mr, err := core.MergeKMeans(parts, core.MergeConfig{K: k, Seeder: kmeans.HeaviestSeeder{}}, &attemptRNG)
		if err != nil {
			t.Fatal(err)
		}
		return mr, reg
	}

	// ~1% error rate plus a guaranteed kill of invocation 30, so the run
	// exercises supervision even if the rate draws come up clean.
	inj := fault.New(fault.Config{Seed: 7, ErrorRate: 0.01, PanicRate: 0.002, ErrorNth: 30})
	faulty, reg := runPipeline(inj)
	clean, _ := runPipeline(nil)

	if inj.Faults() == 0 {
		t.Fatal("injector never fired")
	}
	op := reg.Lookup("partial-kmeans")
	if op == nil || op.Retries() == 0 {
		t.Fatal("supervision recorded no retries")
	}
	t.Logf("absorbed %d injected faults (%d panics) with %d retries",
		inj.Faults(), inj.Panics(), op.Retries())

	if len(faulty.Centroids) != len(clean.Centroids) {
		t.Fatalf("centroid counts differ: %d != %d", len(faulty.Centroids), len(clean.Centroids))
	}
	for i := range clean.Centroids {
		if faulty.Weights[i] != clean.Weights[i] {
			t.Fatalf("centroid %d: weight %v != %v", i, faulty.Weights[i], clean.Weights[i])
		}
		for d := range clean.Centroids[i] {
			if faulty.Centroids[i][d] != clean.Centroids[i][d] {
				t.Fatalf("centroid %d dim %d: %v != %v",
					i, d, faulty.Centroids[i][d], clean.Centroids[i][d])
			}
		}
	}
	if faulty.MSE != clean.MSE {
		t.Fatalf("MSE %v != %v", faulty.MSE, clean.MSE)
	}
}
