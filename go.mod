module streamkm

go 1.22
