// Package baseline implements the algorithms the paper compares against
// or positions itself relative to: the serial k-means baseline of §5, the
// three parallelization methods of Fig. 2, a BIRCH CF-tree (Zhang et al.,
// SIGMOD '96), and a STREAM/LOCALSEARCH-style one-pass hierarchical
// clusterer (O'Callaghan et al., ICDE '02). All of them report through a
// common Report type so the benchmark harness can tabulate them together.
package baseline

import (
	"fmt"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/metrics"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// Report is the common result shape for all baselines.
type Report struct {
	// Name identifies the algorithm in tables.
	Name string
	// Centroids is the final cell representation.
	Centroids []vector.Vector
	// MSE is the mean squared distance of the cell's points to their
	// nearest final centroid.
	MSE float64
	// Elapsed is end-to-end wall-clock time.
	Elapsed time.Duration
	// Iterations counts Lloyd iterations (summed over restarts).
	Iterations int
}

// SerialConfig parameterizes the serial baseline: the paper's §5 setup
// loads the complete grid cell into memory and runs k-means R times with
// different random seed sets, keeping the minimum-MSE representation.
type SerialConfig struct {
	// K is the cluster count (paper: 40).
	K int
	// Restarts is the number of seed sets (paper: 10).
	Restarts int
	// Epsilon is the ΔMSE convergence threshold (0 = paper's 1e-9).
	Epsilon float64
	// MaxIterations caps Lloyd iterations (0 = default).
	MaxIterations int
	// Seed drives the random seed selection.
	Seed uint64
	// Workers, when >= 2, fans the Restarts across that many goroutines;
	// results are bit-identical to serial execution for any value.
	Workers int
}

func (c SerialConfig) kmeansConfig() kmeans.Config {
	return kmeans.Config{K: c.K, Epsilon: c.Epsilon, MaxIterations: c.MaxIterations, Parallel: c.Workers}
}

// Serial runs the paper's serial k-means baseline over one cell.
func Serial(points *dataset.Set, cfg SerialConfig) (*Report, error) {
	if cfg.Restarts <= 0 {
		return nil, fmt.Errorf("baseline: restarts must be positive, got %d", cfg.Restarts)
	}
	start := time.Now()
	weighted := dataset.Unweighted(points)
	rr, err := kmeans.RunRestarts(weighted, cfg.kmeansConfig(), cfg.Restarts, rng.New(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("baseline: serial: %w", err)
	}
	mse, err := metrics.MSE(points, rr.Best.Centroids)
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:       "serial",
		Centroids:  rr.Best.Centroids,
		MSE:        mse,
		Elapsed:    time.Since(start),
		Iterations: rr.TotalIterations,
	}, nil
}
