package baseline

import (
	"fmt"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/metrics"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// This file implements mini-batch k-means (Sculley, WWW 2010) — the
// modern low-memory comparator to partial/merge k-means (today's
// MiniBatchKMeans in scikit-learn). Each iteration samples a small batch,
// assigns it to the nearest centers, and moves each center toward its
// batch points with a per-center learning rate 1/v(c), where v(c) counts
// lifetime assignments.

// MiniBatchConfig parameterizes a mini-batch run.
type MiniBatchConfig struct {
	// K is the cluster count.
	K int
	// BatchSize is points sampled per iteration (0 = 10*K).
	BatchSize int
	// Iterations is the number of batches processed (0 = 100).
	Iterations int
	// Seed drives sampling and initialization.
	Seed uint64
}

func (c MiniBatchConfig) withDefaults() MiniBatchConfig {
	if c.BatchSize == 0 {
		c.BatchSize = 10 * c.K
	}
	if c.Iterations == 0 {
		c.Iterations = 100
	}
	return c
}

func (c MiniBatchConfig) validate() error {
	if c.K <= 0 {
		return fmt.Errorf("baseline: minibatch K must be positive, got %d", c.K)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("baseline: minibatch batch size must be positive, got %d", c.BatchSize)
	}
	if c.Iterations < 1 {
		return fmt.Errorf("baseline: minibatch iterations must be positive, got %d", c.Iterations)
	}
	return nil
}

// MiniBatch clusters one cell with mini-batch k-means. Memory use is
// O(K + BatchSize) beyond the input itself.
func MiniBatch(points *dataset.Set, cfg MiniBatchConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := points.Len()
	if n < cfg.K {
		return nil, fmt.Errorf("baseline: %d points cannot seed k=%d", n, cfg.K)
	}
	start := time.Now()
	r := rng.New(cfg.Seed)
	weighted := dataset.Unweighted(points)
	centers, err := (kmeans.PlusPlusSeeder{}).Seed(weighted, cfg.K, r)
	if err != nil {
		return nil, err
	}
	counts := make([]float64, cfg.K)
	assignCache := make([]int, cfg.BatchSize)
	for iter := 0; iter < cfg.Iterations; iter++ {
		// Sample the batch (with replacement, as in the original).
		batch := make([]int, cfg.BatchSize)
		for i := range batch {
			batch[i] = r.Intn(n)
		}
		// Cache assignments against the centers at batch start.
		for i, idx := range batch {
			j, _ := vector.NearestIndex(points.At(idx), centers)
			assignCache[i] = j
		}
		// Gradient step with per-center learning rates.
		for i, idx := range batch {
			j := assignCache[i]
			counts[j]++
			eta := 1 / counts[j]
			c := centers[j]
			p := points.At(idx)
			for d := range c {
				c[d] += eta * (p[d] - c[d])
			}
		}
	}
	mse, err := metrics.MSE(points, centers)
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:       "minibatch",
		Centroids:  centers,
		MSE:        mse,
		Elapsed:    time.Since(start),
		Iterations: cfg.Iterations,
	}, nil
}
