package baseline

import (
	"context"
	"math"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/metrics"
)

// testCell builds a clusterable cell with nBlobs well-separated blobs.
func testCell(t testing.TB, nBlobs, n int, seed uint64) *dataset.Set {
	t.Helper()
	spec := dataset.DefaultCellSpec()
	spec.Clusters = nBlobs
	spec.Dim = 3
	spec.NoiseFrac = 0
	spec.Separation = 40
	spec.Spread = 0.5
	s, err := dataset.GenerateCell(spec, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSerialBaseline(t *testing.T) {
	cell := testCell(t, 4, 400, 1)
	rep, err := Serial(cell, SerialConfig{K: 8, Restarts: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "serial" {
		t.Fatalf("Name = %q", rep.Name)
	}
	if len(rep.Centroids) != 8 {
		t.Fatalf("centroids = %d", len(rep.Centroids))
	}
	if rep.MSE > 2 {
		t.Fatalf("MSE = %g on clean blobs", rep.MSE)
	}
	if rep.Elapsed <= 0 || rep.Iterations < 5 {
		t.Fatalf("diagnostics: elapsed=%v iters=%d", rep.Elapsed, rep.Iterations)
	}
	if _, err := Serial(cell, SerialConfig{K: 8, Restarts: 0}); err == nil {
		t.Fatal("restarts=0 should error")
	}
}

func TestMethodAClusterManyCells(t *testing.T) {
	cells := []*dataset.Set{
		testCell(t, 3, 200, 10),
		testCell(t, 3, 200, 11),
		testCell(t, 3, 200, 12),
	}
	reports, err := MethodA(context.Background(), cells, SerialConfig{K: 6, Restarts: 2, Seed: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	for i, rep := range reports {
		if rep.Name != "methodA" {
			t.Fatalf("report %d name %q", i, rep.Name)
		}
		if rep.MSE > 2 {
			t.Fatalf("cell %d MSE = %g", i, rep.MSE)
		}
	}
	if _, err := MethodA(context.Background(), nil, SerialConfig{K: 2, Restarts: 1}, 1); err == nil {
		t.Fatal("no cells should error")
	}
}

func TestMethodADeterministicAcrossWorkerCounts(t *testing.T) {
	cells := []*dataset.Set{testCell(t, 3, 150, 20), testCell(t, 3, 150, 21)}
	cfg := SerialConfig{K: 3, Restarts: 2, Seed: 9}
	a, err := MethodA(context.Background(), cells, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MethodA(context.Background(), cells, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i].MSE-b[i].MSE) > 1e-12 {
			t.Fatalf("cell %d MSE differs across worker counts: %g vs %g", i, a[i].MSE, b[i].MSE)
		}
	}
}

func TestMethodBMatchesQualityOfSerialStyle(t *testing.T) {
	cell := testCell(t, 4, 300, 30)
	rep, err := MethodB(context.Background(), cell, SerialConfig{K: 8, Restarts: 6, Seed: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "methodB" || len(rep.Centroids) != 8 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.MSE > 2 {
		t.Fatalf("MSE = %g", rep.MSE)
	}
	// Deterministic across worker counts (RNGs derived per restart).
	again, err := MethodB(context.Background(), cell, SerialConfig{K: 8, Restarts: 6, Seed: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MSE-again.MSE) > 1e-12 {
		t.Fatalf("MethodB result depends on worker count: %g vs %g", rep.MSE, again.MSE)
	}
	if _, err := MethodB(context.Background(), cell, SerialConfig{K: 8, Restarts: 0}, 1); err == nil {
		t.Fatal("restarts=0 should error")
	}
}

func TestMethodCMatchesSerialLloyd(t *testing.T) {
	cell := testCell(t, 4, 400, 40)
	// Method C with 1 slave is literally serial Lloyd; more slaves must
	// produce identical centroids because the reduction is exact.
	one, err := MethodC(context.Background(), cell, SerialConfig{K: 4, Seed: 7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := MethodC(context.Background(), cell, SerialConfig{K: 4, Seed: 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Centroids) != 4 || len(four.Centroids) != 4 {
		t.Fatal("wrong centroid counts")
	}
	for j := range one.Centroids {
		if !one.Centroids[j].ApproxEqual(four.Centroids[j], 1e-9) {
			t.Fatalf("slave count changed centroid %d: %v vs %v",
				j, one.Centroids[j], four.Centroids[j])
		}
	}
	if four.Messages <= one.Messages {
		t.Fatalf("message overhead should grow with slaves: %d vs %d", four.Messages, one.Messages)
	}
	// 2 messages per slave per iteration.
	if want := int64(4 * 2 * four.Iterations); four.Messages != want {
		t.Fatalf("messages = %d, want %d", four.Messages, want)
	}
}

func TestMethodCValidation(t *testing.T) {
	cell := testCell(t, 2, 50, 41)
	if _, err := MethodC(context.Background(), cell, SerialConfig{K: 0}, 2); err == nil {
		t.Fatal("K=0 should error")
	}
	if _, err := MethodC(context.Background(), cell, SerialConfig{K: 51}, 2); err == nil {
		t.Fatal("K>N should error")
	}
}

func TestBIRCHClustersCell(t *testing.T) {
	cell := testCell(t, 4, 1000, 50)
	rep, err := BIRCH(cell, BIRCHConfig{K: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "birch" || len(rep.Centroids) != 8 {
		t.Fatalf("report: name=%q k=%d", rep.Name, len(rep.Centroids))
	}
	// Serial on the same cell for comparison: BIRCH is lossy but must be
	// in the same quality regime on clean data (within ~6x here; the
	// blobs are separated by ~40 with spread 0.5, so a broken BIRCH
	// would produce MSE in the hundreds).
	serial, err := Serial(cell, SerialConfig{K: 8, Restarts: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MSE > 6*serial.MSE+1 {
		t.Fatalf("BIRCH MSE %g far worse than serial %g", rep.MSE, serial.MSE)
	}
}

func TestBIRCHValidation(t *testing.T) {
	cell := testCell(t, 2, 100, 51)
	if _, err := BIRCH(cell, BIRCHConfig{K: 0}); err == nil {
		t.Fatal("K=0 should error")
	}
	if _, err := BIRCH(cell, BIRCHConfig{K: 2, Branching: 1}); err == nil {
		t.Fatal("branching=1 should error")
	}
	if _, err := BIRCH(cell, BIRCHConfig{K: 40, MaxLeafEntries: 10}); err == nil {
		t.Fatal("budget < K should error")
	}
	if _, err := BIRCH(cell, BIRCHConfig{K: 2, InitialThreshold: -1}); err == nil {
		t.Fatal("negative threshold should error")
	}
	if _, err := BIRCH(cell, BIRCHConfig{K: 101}); err == nil {
		t.Fatal("K>N should error")
	}
}

func TestBIRCHRespectsLeafBudget(t *testing.T) {
	// A large cell with a small budget forces threshold rebuilds; the
	// run must still succeed and produce k centroids.
	cell := testCell(t, 6, 3000, 52)
	rep, err := BIRCH(cell, BIRCHConfig{K: 6, MaxLeafEntries: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Centroids) != 6 {
		t.Fatalf("centroids = %d", len(rep.Centroids))
	}
}

func TestCFStatistics(t *testing.T) {
	cf := NewCF(2)
	cf.Add([]float64{0, 0}, 1)
	cf.Add([]float64{2, 0}, 1)
	if cf.N != 2 {
		t.Fatalf("N = %g", cf.N)
	}
	c := cf.Centroid()
	if c[0] != 1 || c[1] != 0 {
		t.Fatalf("centroid = %v", c)
	}
	// radius = sqrt(mean squared distance to centroid) = 1
	if math.Abs(cf.Radius()-1) > 1e-12 {
		t.Fatalf("radius = %g", cf.Radius())
	}
	// radiusIfAdded must predict the post-Add radius exactly
	predicted := cf.radiusIfAdded([]float64{4, 0}, 1)
	cf.Add([]float64{4, 0}, 1)
	if math.Abs(predicted-cf.Radius()) > 1e-12 {
		t.Fatalf("radiusIfAdded %g != actual %g", predicted, cf.Radius())
	}
	// Merge equals adding the same points
	a, b := NewCF(1), NewCF(1)
	a.Add([]float64{1}, 2)
	b.Add([]float64{3}, 1)
	a.Merge(b)
	whole := NewCF(1)
	whole.Add([]float64{1}, 2)
	whole.Add([]float64{3}, 1)
	if a.N != whole.N || a.SS != whole.SS || !a.LS.Equal(whole.LS) {
		t.Fatal("Merge != sequential Add")
	}
}

func TestCFEmptyCentroidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCF(1).Centroid()
}

func TestStreamLSClustersCell(t *testing.T) {
	cell := testCell(t, 4, 2000, 60)
	rep, err := StreamLS(cell, StreamLSConfig{K: 8, ChunkPoints: 250, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "streamls" || len(rep.Centroids) != 8 {
		t.Fatalf("report: name=%q k=%d", rep.Name, len(rep.Centroids))
	}
	serial, err := Serial(cell, SerialConfig{K: 8, Restarts: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MSE > 6*serial.MSE+1 {
		t.Fatalf("StreamLS MSE %g far worse than serial %g", rep.MSE, serial.MSE)
	}
}

func TestStreamLSValidation(t *testing.T) {
	cell := testCell(t, 2, 100, 61)
	if _, err := StreamLS(cell, StreamLSConfig{K: 0, ChunkPoints: 10}); err == nil {
		t.Fatal("K=0 should error")
	}
	if _, err := StreamLS(cell, StreamLSConfig{K: 10, ChunkPoints: 5}); err == nil {
		t.Fatal("chunk < K should error")
	}
	if _, err := StreamLS(cell, StreamLSConfig{K: 2, ChunkPoints: 10, LevelFanout: 1}); err == nil {
		t.Fatal("fanout=1 should error")
	}
	if _, err := StreamLS(cell, StreamLSConfig{K: 101, ChunkPoints: 200}); err == nil {
		t.Fatal("K>N should error")
	}
}

func TestStreamLSHierarchyCascades(t *testing.T) {
	// Enough chunks to force at least two levels of re-clustering:
	// 4000 points / 100 per chunk = 40 chunks, fanout 4 → levels 0,1,2.
	cell := testCell(t, 3, 4000, 62)
	rep, err := StreamLS(cell, StreamLSConfig{K: 6, ChunkPoints: 100, LevelFanout: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MSE > 5 {
		t.Fatalf("cascaded StreamLS lost the structure: MSE = %g", rep.MSE)
	}
}

func TestBaselinesComparableOnSameCell(t *testing.T) {
	// The A4 positioning experiment in miniature: all four algorithms
	// cluster the same cell; every MSE must be finite and positive and
	// the centroid count must be k.
	cell := testCell(t, 5, 1500, 70)
	const k = 10
	serial, err := Serial(cell, SerialConfig{K: k, Restarts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	birch, err := BIRCH(cell, BIRCHConfig{K: k, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sls, err := StreamLS(cell, StreamLSConfig{K: k, ChunkPoints: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MethodC(context.Background(), cell, SerialConfig{K: k, Seed: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range []*Report{serial, birch, sls, &mc.Report} {
		if len(rep.Centroids) != k {
			t.Fatalf("%s returned %d centroids", rep.Name, len(rep.Centroids))
		}
		if math.IsNaN(rep.MSE) || rep.MSE <= 0 {
			t.Fatalf("%s MSE = %g", rep.Name, rep.MSE)
		}
		recomputed, err := metrics.MSE(cell, rep.Centroids)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(recomputed-rep.MSE) > 1e-9*(1+rep.MSE) {
			t.Fatalf("%s reported MSE %g, recomputed %g", rep.Name, rep.MSE, recomputed)
		}
	}
}
