package baseline

import (
	"fmt"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/metrics"
	"streamkm/internal/rng"
)

// This file implements a STREAM/LOCALSEARCH-style one-pass clusterer in
// the spirit of O'Callaghan et al. (ICDE '02), the paper's closest
// related work (§2.2). The stream is consumed in memory-sized chunks;
// each chunk is reduced to k weighted centers; whenever a level
// accumulates enough centers they are re-clustered into k centers one
// level up (hierarchical divide-and-conquer). The paper contrasts this
// with partial/merge: STREAM has "no merge step with earlier results" in
// the collective sense — early chunks are repeatedly re-summarized.

// StreamLSConfig parameterizes the one-pass clusterer.
type StreamLSConfig struct {
	// K is the number of centers kept per level and returned finally.
	K int
	// ChunkPoints is the number of points buffered before the chunk is
	// reduced (the memory budget).
	ChunkPoints int
	// LevelFanout is how many k-center summaries a level accumulates
	// before re-clustering them one level up (default 4).
	LevelFanout int
	// Restarts is the seed sets tried per reduction (default 1 — the
	// original uses a single local-search pass).
	Restarts int
	// Epsilon and MaxIterations tune the inner weighted k-means.
	Epsilon       float64
	MaxIterations int
	// Seed drives all randomness.
	Seed uint64
}

func (c StreamLSConfig) withDefaults() StreamLSConfig {
	if c.LevelFanout == 0 {
		c.LevelFanout = 4
	}
	if c.Restarts == 0 {
		c.Restarts = 1
	}
	return c
}

func (c StreamLSConfig) validate() error {
	if c.K <= 0 {
		return fmt.Errorf("baseline: streamls K must be positive, got %d", c.K)
	}
	if c.ChunkPoints < c.K {
		return fmt.Errorf("baseline: streamls chunk size %d below K=%d", c.ChunkPoints, c.K)
	}
	if c.LevelFanout < 2 {
		return fmt.Errorf("baseline: streamls fanout must be >= 2, got %d", c.LevelFanout)
	}
	return nil
}

// streamLS holds the hierarchical summary state during the pass.
type streamLS struct {
	cfg    StreamLSConfig
	dim    int
	rng    *rng.RNG
	buffer *dataset.Set
	// levels[i] holds up to LevelFanout weighted k-center summaries.
	levels [][]*dataset.WeightedSet
}

// StreamLS clusters one cell in a single pass with bounded memory.
func StreamLS(points *dataset.Set, cfg StreamLSConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if points.Len() < cfg.K {
		return nil, fmt.Errorf("baseline: %d points cannot form k=%d clusters", points.Len(), cfg.K)
	}
	start := time.Now()
	s := &streamLS{
		cfg:    cfg,
		dim:    points.Dim(),
		rng:    rng.New(cfg.Seed),
		buffer: dataset.MustNewSet(points.Dim()),
	}
	iterations := 0
	for _, p := range points.Points() {
		if err := s.buffer.Add(p); err != nil {
			return nil, err
		}
		if s.buffer.Len() >= cfg.ChunkPoints {
			it, err := s.flushBuffer()
			if err != nil {
				return nil, err
			}
			iterations += it
		}
	}
	if s.buffer.Len() > 0 {
		it, err := s.flushBuffer()
		if err != nil {
			return nil, err
		}
		iterations += it
	}
	// Final: pool every level's summaries and cluster to k.
	pool := dataset.MustNewWeightedSet(s.dim)
	for _, level := range s.levels {
		for _, ws := range level {
			if err := pool.Append(ws); err != nil {
				return nil, err
			}
		}
	}
	if pool.Len() < cfg.K {
		return nil, fmt.Errorf("baseline: streamls retained %d centers, below k=%d", pool.Len(), cfg.K)
	}
	res, err := kmeans.Run(pool, s.innerConfig(), s.rng)
	if err != nil {
		return nil, fmt.Errorf("baseline: streamls final: %w", err)
	}
	iterations += res.Iterations
	mse, err := metrics.MSE(points, res.Centroids)
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:       "streamls",
		Centroids:  res.Centroids,
		MSE:        mse,
		Elapsed:    time.Since(start),
		Iterations: iterations,
	}, nil
}

func (s *streamLS) innerConfig() kmeans.Config {
	return kmeans.Config{
		K:             s.cfg.K,
		Epsilon:       s.cfg.Epsilon,
		MaxIterations: s.cfg.MaxIterations,
		Seeder:        kmeans.PlusPlusSeeder{},
	}
}

// flushBuffer reduces the buffered chunk to k weighted centers and
// pushes them into level 0, cascading re-clusters upward.
func (s *streamLS) flushBuffer() (int, error) {
	iterations := 0
	chunk := dataset.Unweighted(s.buffer)
	k := s.cfg.K
	var summary *dataset.WeightedSet
	if chunk.Len() <= k {
		// Degenerate tail chunk: keep the raw points as centers.
		summary = chunk
	} else {
		rr, err := kmeans.RunRestarts(chunk, s.innerConfig(), s.cfg.Restarts, s.rng)
		if err != nil {
			return 0, fmt.Errorf("baseline: streamls chunk: %w", err)
		}
		iterations += rr.TotalIterations
		summary, err = rr.Best.WeightedCentroids(s.dim)
		if err != nil {
			return 0, err
		}
	}
	s.buffer = dataset.MustNewSet(s.dim)
	level := 0
	for {
		if level == len(s.levels) {
			s.levels = append(s.levels, nil)
		}
		s.levels[level] = append(s.levels[level], summary)
		if len(s.levels[level]) < s.cfg.LevelFanout {
			return iterations, nil
		}
		// Re-cluster this level's summaries into one summary one level up.
		pool := dataset.MustNewWeightedSet(s.dim)
		for _, ws := range s.levels[level] {
			if err := pool.Append(ws); err != nil {
				return 0, err
			}
		}
		s.levels[level] = nil
		if pool.Len() <= k {
			summary = pool
		} else {
			res, err := kmeans.Run(pool, s.innerConfig(), s.rng)
			if err != nil {
				return 0, fmt.Errorf("baseline: streamls level %d: %w", level, err)
			}
			iterations += res.Iterations
			summary, err = res.WeightedCentroids(s.dim)
			if err != nil {
				return 0, err
			}
		}
		level++
	}
}
