package baseline

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/metrics"
	"streamkm/internal/rng"
	"streamkm/internal/stream"
	"streamkm/internal/vector"
)

// This file implements the three ways of parallelizing k-means the paper
// surveys in Fig. 2. None of them relieves the memory bottleneck — each
// worker must hold a well-defined point set in RAM — which is the gap
// partial/merge k-means fills.

// MethodA ("one grid cell per processor") clusters many cells in
// parallel, each with the serial algorithm. workers <= 0 selects 1.
func MethodA(ctx context.Context, cells []*dataset.Set, cfg SerialConfig, workers int) ([]*Report, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("baseline: method A needs at least one cell")
	}
	if workers < 1 {
		workers = 1
	}
	type task struct {
		index int
		cell  *dataset.Set
		seed  uint64
	}
	type outcome struct {
		index  int
		report *Report
	}
	g, gctx := stream.NewGroup(ctx)
	taskQ := stream.NewQueue[task]("cells", 0)
	outQ := stream.NewQueue[outcome]("reports", 0)
	stream.RunSource(g, gctx, nil, "cell-scan", func(ctx context.Context, emit stream.Emit[task]) error {
		for i, c := range cells {
			if err := emit(task{index: i, cell: c, seed: cfg.Seed + uint64(i)*7919}); err != nil {
				return err
			}
		}
		return nil
	}, taskQ)
	stream.RunTransform(g, gctx, nil, "serial-kmeans", workers,
		func(ctx context.Context, t task, emit stream.Emit[outcome]) error {
			c := cfg
			c.Seed = t.seed
			rep, err := Serial(t.cell, c)
			if err != nil {
				return fmt.Errorf("cell %d: %w", t.index, err)
			}
			return emit(outcome{index: t.index, report: rep})
		}, taskQ, outQ)
	reports := make([]*Report, len(cells))
	stream.RunSink(g, gctx, nil, "collect", 1, func(ctx context.Context, o outcome) error {
		reports[o.index] = o.report
		return nil
	}, outQ)
	if err := g.Wait(); err != nil {
		return nil, err
	}
	for i, rep := range reports {
		if rep == nil {
			return nil, fmt.Errorf("baseline: cell %d produced no report", i)
		}
		rep.Name = "methodA"
	}
	return reports, nil
}

// MethodB ("one restart per processor") runs the R seed-set restarts of
// a single cell concurrently and keeps the minimum-MSE representation.
func MethodB(ctx context.Context, points *dataset.Set, cfg SerialConfig, workers int) (*Report, error) {
	if cfg.Restarts <= 0 {
		return nil, fmt.Errorf("baseline: restarts must be positive, got %d", cfg.Restarts)
	}
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	weighted := dataset.Unweighted(points)
	// Pre-derive one RNG per restart so the result set is independent of
	// scheduling.
	master := rng.New(cfg.Seed)
	rngs := make([]*rng.RNG, cfg.Restarts)
	for i := range rngs {
		rngs[i] = master.Split()
	}
	type outcome struct {
		index int
		res   *kmeans.Result
	}
	g, gctx := stream.NewGroup(ctx)
	runQ := stream.NewQueue[int]("restarts", 0)
	outQ := stream.NewQueue[outcome]("results", 0)
	stream.RunSource(g, gctx, nil, "restart-ids", func(ctx context.Context, emit stream.Emit[int]) error {
		for i := 0; i < cfg.Restarts; i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
		return nil
	}, runQ)
	stream.RunTransform(g, gctx, nil, "kmeans-run", workers,
		func(ctx context.Context, i int, emit stream.Emit[outcome]) error {
			res, err := kmeans.Run(weighted, cfg.kmeansConfig(), rngs[i])
			if err != nil {
				return fmt.Errorf("restart %d: %w", i, err)
			}
			return emit(outcome{index: i, res: res})
		}, runQ, outQ)
	results := make([]*kmeans.Result, cfg.Restarts)
	stream.RunSink(g, gctx, nil, "collect", 1, func(ctx context.Context, o outcome) error {
		results[o.index] = o.res
		return nil
	}, outQ)
	if err := g.Wait(); err != nil {
		return nil, err
	}
	var best *kmeans.Result
	iterations := 0
	for i, res := range results {
		if res == nil {
			return nil, fmt.Errorf("baseline: restart %d produced no result", i)
		}
		iterations += res.Iterations
		if best == nil || res.MSE < best.MSE {
			best = res
		}
	}
	mse, err := metrics.MSE(points, best.Centroids)
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:       "methodB",
		Centroids:  best.Centroids,
		MSE:        mse,
		Elapsed:    time.Since(start),
		Iterations: iterations,
	}, nil
}

// MethodCStats augments the Method C report with the message-passing
// overhead the paper calls out ("it also introduced an overhead of
// message passing between the slaves").
type MethodCStats struct {
	Report
	// Messages counts centroid broadcasts and partial-sum reductions
	// exchanged between the master and the slaves.
	Messages int64
}

// MethodC ("distributed Lloyd") partitions the cell's points across
// slaves; each iteration every slave computes, for its subset, the
// partial weighted sums per centroid, the master reduces them into new
// means and broadcasts the result. The arithmetic is identical to serial
// Lloyd with the same seeds, so quality matches serial exactly; only the
// execution is distributed.
func MethodC(ctx context.Context, points *dataset.Set, cfg SerialConfig, slaves int) (*MethodCStats, error) {
	if slaves < 1 {
		slaves = 1
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("baseline: K must be positive, got %d", cfg.K)
	}
	if points.Len() < cfg.K {
		return nil, fmt.Errorf("baseline: %d points cannot seed k=%d", points.Len(), cfg.K)
	}
	start := time.Now()
	r := rng.New(cfg.Seed)
	weighted := dataset.Unweighted(points)
	seeds, err := (kmeans.RandomSeeder{}).Seed(weighted, cfg.K, r)
	if err != nil {
		return nil, err
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = kmeans.DefaultEpsilon
	}
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = kmeans.DefaultMaxIterations
	}

	// Partition points across slaves (contiguous ranges).
	parts, err := dataset.Split(points, min(slaves, points.Len()), dataset.SplitSalami, nil)
	if err != nil {
		return nil, err
	}

	type partial struct {
		sums   []vector.Vector
		counts []float64
		sse    float64
	}
	var messages atomic.Int64
	dim := points.Dim()
	centroids := seeds
	prevMSE := 0.0
	iterations := 0
	converged := false

	for iter := 1; iter <= maxIter && !converged; iter++ {
		iterations = iter
		results := make(chan partial, len(parts))
		for _, part := range parts {
			part := part
			go func() {
				// Broadcast of centroids to this slave.
				messages.Add(1)
				p := partial{
					sums:   make([]vector.Vector, len(centroids)),
					counts: make([]float64, len(centroids)),
				}
				for j := range p.sums {
					p.sums[j] = vector.New(dim)
				}
				for _, v := range part.Points() {
					j, d := vector.NearestIndex(v, centroids)
					p.sums[j].Add(v)
					p.counts[j]++
					p.sse += d
				}
				// Reduction message back to the master.
				messages.Add(1)
				results <- p
			}()
		}
		totalSums := make([]vector.Vector, len(centroids))
		totalCounts := make([]float64, len(centroids))
		for j := range totalSums {
			totalSums[j] = vector.New(dim)
		}
		var sse float64
		for range parts {
			select {
			case p := <-results:
				for j := range totalSums {
					totalSums[j].Add(p.sums[j])
					totalCounts[j] += p.counts[j]
				}
				sse += p.sse
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		next := make([]vector.Vector, len(centroids))
		for j := range next {
			if totalCounts[j] > 0 {
				next[j] = totalSums[j]
				next[j].Scale(1 / totalCounts[j])
			} else {
				next[j] = centroids[j]
			}
		}
		centroids = next
		mse := sse / float64(points.Len())
		if iter > 1 && prevMSE-mse <= eps {
			converged = true
		}
		prevMSE = mse
	}

	mse, err := metrics.MSE(points, centroids)
	if err != nil {
		return nil, err
	}
	return &MethodCStats{
		Report: Report{
			Name:       "methodC",
			Centroids:  centroids,
			MSE:        mse,
			Elapsed:    time.Since(start),
			Iterations: iterations,
		},
		Messages: messages.Load(),
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
