package baseline

import (
	"fmt"
	"math"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/metrics"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// This file implements BIRCH (Zhang, Ramakrishnan, Livny, SIGMOD '96) —
// the database-literature comparator of §2.2. Phase 1 builds a CF-tree
// (clustering features N, LS, SS) in one pass under a leaf-entry budget,
// doubling the absorption threshold and rebuilding when the budget is
// exceeded; phase 3 runs a global weighted k-means over the leaf entries.

// CF is a clustering feature: the sufficient statistics of a point set.
type CF struct {
	N  float64       // number of points
	LS vector.Vector // linear sum
	SS float64       // sum of squared norms
}

// NewCF returns an empty CF of the given dimension.
func NewCF(dim int) *CF { return &CF{LS: vector.New(dim)} }

// Add folds a point with weight w into the CF.
func (c *CF) Add(p vector.Vector, w float64) {
	c.N += w
	c.LS.AddScaled(w, p)
	c.SS += w * p.Dot(p)
}

// Merge folds another CF into c.
func (c *CF) Merge(o *CF) {
	c.N += o.N
	c.LS.Add(o.LS)
	c.SS += o.SS
}

// Centroid returns LS/N. It panics on an empty CF; callers only read
// centroids of CFs that absorbed at least one point.
func (c *CF) Centroid() vector.Vector {
	if c.N == 0 {
		panic("baseline: centroid of empty CF")
	}
	m := c.LS.Clone()
	m.Scale(1 / c.N)
	return m
}

// Radius returns the RMS distance of the CF's points to its centroid:
// sqrt(SS/N - ||LS/N||^2), clamped at zero against rounding.
func (c *CF) Radius() float64 {
	if c.N == 0 {
		return 0
	}
	m := c.Centroid()
	r2 := c.SS/c.N - m.Dot(m)
	if r2 < 0 {
		r2 = 0
	}
	return math.Sqrt(r2)
}

// radiusIfAdded computes the radius the CF would have after absorbing
// (p, w) without mutating it.
func (c *CF) radiusIfAdded(p vector.Vector, w float64) float64 {
	n := c.N + w
	ss := c.SS + w*p.Dot(p)
	var m2 float64
	for d := range c.LS {
		m := (c.LS[d] + w*p[d]) / n
		m2 += m * m
	}
	r2 := ss/n - m2
	if r2 < 0 {
		r2 = 0
	}
	return math.Sqrt(r2)
}

// BIRCHConfig parameterizes the CF-tree build and global clustering.
type BIRCHConfig struct {
	// K is the final cluster count produced by the global phase.
	K int
	// Branching is the maximum child count of an internal node
	// (BIRCH's B; default 8).
	Branching int
	// MaxLeafEntries is the memory budget: the maximum total number of
	// leaf CF entries before a rebuild with a larger threshold
	// (default 512).
	MaxLeafEntries int
	// InitialThreshold is the starting absorption radius T (default 0,
	// meaning "absorb only duplicates", as in the original).
	InitialThreshold float64
	// Seed drives the global clustering phase.
	Seed uint64
}

func (c BIRCHConfig) withDefaults() BIRCHConfig {
	if c.Branching == 0 {
		c.Branching = 8
	}
	if c.MaxLeafEntries == 0 {
		c.MaxLeafEntries = 512
	}
	return c
}

func (c BIRCHConfig) validate() error {
	if c.K <= 0 {
		return fmt.Errorf("baseline: BIRCH K must be positive, got %d", c.K)
	}
	if c.Branching < 2 {
		return fmt.Errorf("baseline: BIRCH branching must be >= 2, got %d", c.Branching)
	}
	if c.MaxLeafEntries < c.K {
		return fmt.Errorf("baseline: BIRCH leaf budget %d below K=%d", c.MaxLeafEntries, c.K)
	}
	if c.InitialThreshold < 0 {
		return fmt.Errorf("baseline: BIRCH threshold must be non-negative")
	}
	return nil
}

// cfNode is a CF-tree node; leaves hold entry CFs, internal nodes hold
// child summaries.
type cfNode struct {
	leaf     bool
	entries  []*CF     // leaf: absorbed clusters; internal: child summaries
	children []*cfNode // internal only, parallel to entries
}

// cfTree is the phase-1 structure.
type cfTree struct {
	root        *cfNode
	dim         int
	branching   int
	threshold   float64
	leafEntries int
}

func newCFTree(dim, branching int, threshold float64) *cfTree {
	return &cfTree{
		root:      &cfNode{leaf: true},
		dim:       dim,
		branching: branching,
		threshold: threshold,
	}
}

// insert adds (p, w) to the tree, returning a new root if the old one
// split.
func (t *cfTree) insert(p vector.Vector, w float64) {
	split := t.insertInto(t.root, p, w)
	if split != nil {
		// Root split: grow a new root with two children.
		old := t.root
		t.root = &cfNode{
			leaf:     false,
			entries:  []*CF{summarize(old, t.dim), summarize(split, t.dim)},
			children: []*cfNode{old, split},
		}
	}
}

// insertInto descends to the closest leaf entry; returns a sibling node
// if n split.
func (t *cfTree) insertInto(n *cfNode, p vector.Vector, w float64) *cfNode {
	if n.leaf {
		if len(n.entries) > 0 {
			best := t.closestEntry(n, p)
			if n.entries[best].radiusIfAdded(p, w) <= t.threshold {
				n.entries[best].Add(p, w)
				return nil
			}
		}
		cf := NewCF(t.dim)
		cf.Add(p, w)
		n.entries = append(n.entries, cf)
		t.leafEntries++
		if len(n.entries) > t.branching {
			return t.splitLeaf(n)
		}
		return nil
	}
	best := t.closestEntry(n, p)
	n.entries[best].Add(p, w)
	split := t.insertInto(n.children[best], p, w)
	if split == nil {
		return nil
	}
	// Child split: recompute the summary of the (shrunken) child and
	// add the new sibling.
	n.entries[best] = summarize(n.children[best], t.dim)
	n.entries = append(n.entries, summarize(split, t.dim))
	n.children = append(n.children, split)
	if len(n.children) > t.branching {
		return t.splitInternal(n)
	}
	return nil
}

func (t *cfTree) closestEntry(n *cfNode, p vector.Vector) int {
	best, bestD := 0, math.Inf(1)
	for i, e := range n.entries {
		if e.N == 0 {
			continue
		}
		if d := vector.SquaredDistance(p, e.Centroid()); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// summarize rebuilds a node's CF summary from its entries.
func summarize(n *cfNode, dim int) *CF {
	s := NewCF(dim)
	for _, e := range n.entries {
		s.Merge(e)
	}
	return s
}

// splitLeaf divides a leaf's entries between the old node and a new
// sibling using the farthest-pair heuristic of the original paper.
func (t *cfTree) splitLeaf(n *cfNode) *cfNode {
	a, b := farthestPair(n.entries)
	left, right := &cfNode{leaf: true}, &cfNode{leaf: true}
	for i, e := range n.entries {
		da := vector.SquaredDistance(e.Centroid(), n.entries[a].Centroid())
		db := vector.SquaredDistance(e.Centroid(), n.entries[b].Centroid())
		if da <= db && i != b || i == a {
			left.entries = append(left.entries, e)
		} else {
			right.entries = append(right.entries, e)
		}
	}
	n.entries = left.entries
	return right
}

// splitInternal divides an internal node's children similarly.
func (t *cfTree) splitInternal(n *cfNode) *cfNode {
	a, b := farthestPair(n.entries)
	right := &cfNode{leaf: false}
	var keepE []*CF
	var keepC []*cfNode
	for i := range n.entries {
		da := vector.SquaredDistance(n.entries[i].Centroid(), n.entries[a].Centroid())
		db := vector.SquaredDistance(n.entries[i].Centroid(), n.entries[b].Centroid())
		if da <= db && i != b || i == a {
			keepE = append(keepE, n.entries[i])
			keepC = append(keepC, n.children[i])
		} else {
			right.entries = append(right.entries, n.entries[i])
			right.children = append(right.children, n.children[i])
		}
	}
	n.entries, n.children = keepE, keepC
	return right
}

// farthestPair returns the indices of the two entries with the largest
// centroid distance.
func farthestPair(entries []*CF) (int, int) {
	a, b, bestD := 0, 0, -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := vector.SquaredDistance(entries[i].Centroid(), entries[j].Centroid())
			if d > bestD {
				a, b, bestD = i, j, d
			}
		}
	}
	if a == b && len(entries) > 1 {
		b = a + 1
	}
	return a, b
}

// leafCFs collects all leaf entries of the tree.
func (t *cfTree) leafCFs() []*CF {
	var out []*CF
	var walk func(n *cfNode)
	walk = func(n *cfNode) {
		if n.leaf {
			out = append(out, n.entries...)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// BIRCH clusters one cell: phase 1 builds the CF-tree in a single scan,
// rebuilding with a doubled threshold whenever the leaf-entry budget is
// exceeded; phase 3 runs weighted k-means over the leaf CFs.
func BIRCH(points *dataset.Set, cfg BIRCHConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if points.Len() < cfg.K {
		return nil, fmt.Errorf("baseline: %d points cannot form k=%d clusters", points.Len(), cfg.K)
	}
	start := time.Now()
	threshold := cfg.InitialThreshold
	tree := newCFTree(points.Dim(), cfg.Branching, threshold)
	for _, p := range points.Points() {
		tree.insert(p, 1)
		if tree.leafEntries > cfg.MaxLeafEntries {
			threshold = nextThreshold(threshold, tree)
			tree = rebuild(tree, points.Dim(), cfg.Branching, threshold)
		}
	}
	leaves := tree.leafCFs()
	ws, err := dataset.NewWeightedSet(points.Dim())
	if err != nil {
		return nil, err
	}
	for _, cf := range leaves {
		if cf.N == 0 {
			continue
		}
		if err := ws.Add(dataset.WeightedPoint{Vec: cf.Centroid(), Weight: cf.N}); err != nil {
			return nil, err
		}
	}
	if ws.Len() < cfg.K {
		return nil, fmt.Errorf("baseline: CF-tree collapsed to %d entries, below k=%d (threshold grew too fast)",
			ws.Len(), cfg.K)
	}
	res, err := kmeans.Run(ws, kmeans.Config{K: cfg.K}, rng.New(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("baseline: BIRCH global phase: %w", err)
	}
	mse, err := metrics.MSE(points, res.Centroids)
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:       "birch",
		Centroids:  res.Centroids,
		MSE:        mse,
		Elapsed:    time.Since(start),
		Iterations: res.Iterations,
	}, nil
}

// nextThreshold picks the rebuild threshold: at least double, and at
// least the current average leaf radius so the rebuild actually shrinks
// the tree.
func nextThreshold(current float64, t *cfTree) float64 {
	next := current * 2
	if next == 0 {
		next = 1e-6
	}
	var sum float64
	var n int
	for _, cf := range t.leafCFs() {
		sum += cf.Radius()
		n++
	}
	if n > 0 {
		if avg := sum / float64(n) * 1.5; avg > next {
			next = avg
		}
	}
	return next
}

// rebuild reinserts the old tree's leaf CFs into a fresh tree with the
// larger threshold — BIRCH's memory-pressure response, reusing the
// summaries instead of rescanning the data.
func rebuild(old *cfTree, dim, branching int, threshold float64) *cfTree {
	t := newCFTree(dim, branching, threshold)
	for _, cf := range old.leafCFs() {
		if cf.N > 0 {
			t.insert(cf.Centroid(), cf.N)
		}
	}
	return t
}
