package baseline

import (
	"math"
	"testing"
)

func TestMiniBatchValidation(t *testing.T) {
	cell := testCell(t, 3, 200, 80)
	if _, err := MiniBatch(cell, MiniBatchConfig{K: 0}); err == nil {
		t.Fatal("K=0 should error")
	}
	if _, err := MiniBatch(cell, MiniBatchConfig{K: 201}); err == nil {
		t.Fatal("K>N should error")
	}
	if _, err := MiniBatch(cell, MiniBatchConfig{K: 3, BatchSize: -1}); err == nil {
		t.Fatal("negative batch should error")
	}
	if _, err := MiniBatch(cell, MiniBatchConfig{K: 3, Iterations: -1}); err == nil {
		t.Fatal("negative iterations should error")
	}
}

func TestMiniBatchClustersCell(t *testing.T) {
	cell := testCell(t, 4, 2000, 81)
	rep, err := MiniBatch(cell, MiniBatchConfig{K: 8, Iterations: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "minibatch" || len(rep.Centroids) != 8 {
		t.Fatalf("report: %q k=%d", rep.Name, len(rep.Centroids))
	}
	serial, err := Serial(cell, SerialConfig{K: 8, Restarts: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Mini-batch is an approximation; on clean blobs it must land in
	// the same quality regime as serial.
	if rep.MSE > 6*serial.MSE+1 {
		t.Fatalf("minibatch MSE %g far worse than serial %g", rep.MSE, serial.MSE)
	}
}

func TestMiniBatchDeterministic(t *testing.T) {
	cell := testCell(t, 3, 500, 82)
	a, err := MiniBatch(cell, MiniBatchConfig{K: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MiniBatch(cell, MiniBatchConfig{K: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.MSE-b.MSE) > 1e-12 {
		t.Fatalf("same seed produced different MSE: %g vs %g", a.MSE, b.MSE)
	}
}

func TestMiniBatchMoreIterationsHelp(t *testing.T) {
	// Statistical direction over several cells: 300 iterations should
	// beat 3 iterations most of the time.
	wins := 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		cell := testCell(t, 5, 1500, uint64(90+trial))
		few, err := MiniBatch(cell, MiniBatchConfig{K: 10, Iterations: 3, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		many, err := MiniBatch(cell, MiniBatchConfig{K: 10, Iterations: 300, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if many.MSE <= few.MSE {
			wins++
		}
	}
	if wins < trials-2 {
		t.Fatalf("more iterations helped only %d/%d times", wins, trials)
	}
}
