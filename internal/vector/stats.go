package vector

import (
	"errors"
	"math"
)

// RunningStats accumulates per-dimension mean and variance of a stream of
// vectors in one pass using Welford's algorithm. It is the building block
// stream operators use to summarize data they can see only once.
type RunningStats struct {
	n    int64
	mean Vector
	m2   Vector // sum of squared deviations from the running mean
}

// NewRunningStats returns stats for d-dimensional vectors.
func NewRunningStats(d int) *RunningStats {
	return &RunningStats{mean: New(d), m2: New(d)}
}

// Dim returns the dimensionality the stats were created with.
func (s *RunningStats) Dim() int { return len(s.mean) }

// N returns the number of vectors observed.
func (s *RunningStats) N() int64 { return s.n }

// Observe folds v into the running statistics.
func (s *RunningStats) Observe(v Vector) error {
	if len(v) != len(s.mean) {
		return ErrDimensionMismatch
	}
	s.n++
	for i, x := range v {
		delta := x - s.mean[i]
		s.mean[i] += delta / float64(s.n)
		s.m2[i] += delta * (x - s.mean[i])
	}
	return nil
}

// Mean returns a copy of the current per-dimension mean. It is the zero
// vector until the first observation.
func (s *RunningStats) Mean() Vector { return s.mean.Clone() }

// Variance returns a copy of the per-dimension sample variance
// (denominator n-1). It returns zeros until two observations are made.
func (s *RunningStats) Variance() Vector {
	v := New(len(s.m2))
	if s.n < 2 {
		return v
	}
	for i, m2 := range s.m2 {
		v[i] = m2 / float64(s.n-1)
	}
	return v
}

// StdDev returns the per-dimension sample standard deviation.
func (s *RunningStats) StdDev() Vector {
	v := s.Variance()
	for i := range v {
		v[i] = math.Sqrt(v[i])
	}
	return v
}

// Merge folds another RunningStats of the same dimension into s using the
// parallel variant of Welford's update, so clones can each summarize a
// partition and be combined.
func (s *RunningStats) Merge(o *RunningStats) error {
	if len(s.mean) != len(o.mean) {
		return ErrDimensionMismatch
	}
	if o.n == 0 {
		return nil
	}
	if s.n == 0 {
		s.n = o.n
		s.mean.CopyFrom(o.mean)
		s.m2.CopyFrom(o.m2)
		return nil
	}
	n := s.n + o.n
	for i := range s.mean {
		delta := o.mean[i] - s.mean[i]
		s.m2[i] += o.m2[i] + delta*delta*float64(s.n)*float64(o.n)/float64(n)
		s.mean[i] += delta * float64(o.n) / float64(n)
	}
	s.n = n
	return nil
}

// BoundingBox tracks the per-dimension min and max of observed vectors.
// The grid substrate uses it to size histogram buckets.
type BoundingBox struct {
	n   int64
	min Vector
	max Vector
}

// NewBoundingBox returns an empty bounding box for d dimensions.
func NewBoundingBox(d int) *BoundingBox {
	b := &BoundingBox{min: New(d), max: New(d)}
	for i := 0; i < d; i++ {
		b.min[i] = math.Inf(1)
		b.max[i] = math.Inf(-1)
	}
	return b
}

// N returns the number of vectors observed.
func (b *BoundingBox) N() int64 { return b.n }

// Observe expands the box to include v.
func (b *BoundingBox) Observe(v Vector) error {
	if len(v) != len(b.min) {
		return ErrDimensionMismatch
	}
	b.n++
	for i, x := range v {
		if x < b.min[i] {
			b.min[i] = x
		}
		if x > b.max[i] {
			b.max[i] = x
		}
	}
	return nil
}

// Min returns a copy of the per-dimension minimum. An error is returned
// when the box is empty.
func (b *BoundingBox) Min() (Vector, error) {
	if b.n == 0 {
		return nil, errors.New("vector: empty bounding box")
	}
	return b.min.Clone(), nil
}

// Max returns a copy of the per-dimension maximum. An error is returned
// when the box is empty.
func (b *BoundingBox) Max() (Vector, error) {
	if b.n == 0 {
		return nil, errors.New("vector: empty bounding box")
	}
	return b.max.Clone(), nil
}

// Contains reports whether v lies inside the (closed) box.
func (b *BoundingBox) Contains(v Vector) bool {
	if b.n == 0 || len(v) != len(b.min) {
		return false
	}
	for i, x := range v {
		if x < b.min[i] || x > b.max[i] {
			return false
		}
	}
	return true
}
