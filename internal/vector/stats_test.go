package vector

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningStatsBasic(t *testing.T) {
	s := NewRunningStats(2)
	if s.Dim() != 2 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	for _, v := range []Vector{Of(1, 10), Of(3, 20), Of(5, 30)} {
		if err := s.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if m := s.Mean(); !m.ApproxEqual(Of(3, 20), 1e-12) {
		t.Fatalf("Mean = %v", m)
	}
	// sample variance of {1,3,5} is 4; of {10,20,30} is 100
	if v := s.Variance(); !v.ApproxEqual(Of(4, 100), 1e-9) {
		t.Fatalf("Variance = %v", v)
	}
	if sd := s.StdDev(); !sd.ApproxEqual(Of(2, 10), 1e-9) {
		t.Fatalf("StdDev = %v", sd)
	}
}

func TestRunningStatsDimError(t *testing.T) {
	s := NewRunningStats(2)
	if err := s.Observe(Of(1)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestRunningStatsFewObservations(t *testing.T) {
	s := NewRunningStats(1)
	if v := s.Variance(); v[0] != 0 {
		t.Fatalf("variance of empty = %v", v)
	}
	if err := s.Observe(Of(5)); err != nil {
		t.Fatal(err)
	}
	if v := s.Variance(); v[0] != 0 {
		t.Fatalf("variance of single = %v", v)
	}
	if m := s.Mean(); m[0] != 5 {
		t.Fatalf("mean = %v", m)
	}
}

// Property: merging two partitions' stats equals observing all points in
// one pass. This is exactly the guarantee cloned scan operators rely on.
func TestRunningStatsMergeEquivalence(t *testing.T) {
	f := func(a, b [7][3]float64) bool {
		whole := NewRunningStats(3)
		left := NewRunningStats(3)
		right := NewRunningStats(3)
		for _, p := range a {
			v := Of(p[:]...)
			if whole.Observe(v) != nil || left.Observe(v) != nil {
				return false
			}
		}
		for _, p := range b {
			v := Of(p[:]...)
			if whole.Observe(v) != nil || right.Observe(v) != nil {
				return false
			}
		}
		if err := left.Merge(right); err != nil {
			return false
		}
		if left.N() != whole.N() {
			return false
		}
		scale := 1e-7
		return left.Mean().ApproxEqual(whole.Mean(), scale*(1+whole.Mean().Norm())) &&
			left.Variance().ApproxEqual(whole.Variance(), scale*(1+whole.Variance().Norm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningStatsMergeEmptySides(t *testing.T) {
	a := NewRunningStats(2)
	b := NewRunningStats(2)
	if err := b.Observe(Of(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 1 || !a.Mean().Equal(Of(1, 2)) {
		t.Fatalf("merge into empty: N=%d mean=%v", a.N(), a.Mean())
	}
	empty := NewRunningStats(2)
	if err := a.Merge(empty); err != nil {
		t.Fatal(err)
	}
	if a.N() != 1 {
		t.Fatalf("merge of empty changed N to %d", a.N())
	}
	bad := NewRunningStats(3)
	if err := a.Merge(bad); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestBoundingBox(t *testing.T) {
	b := NewBoundingBox(2)
	if _, err := b.Min(); err == nil {
		t.Fatal("Min of empty box should error")
	}
	if _, err := b.Max(); err == nil {
		t.Fatal("Max of empty box should error")
	}
	if b.Contains(Of(0, 0)) {
		t.Fatal("empty box contains nothing")
	}
	for _, v := range []Vector{Of(1, 5), Of(-2, 3), Of(0, 9)} {
		if err := b.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	mn, err := b.Min()
	if err != nil {
		t.Fatal(err)
	}
	mx, err := b.Max()
	if err != nil {
		t.Fatal(err)
	}
	if !mn.Equal(Of(-2, 3)) || !mx.Equal(Of(1, 9)) {
		t.Fatalf("box = [%v, %v]", mn, mx)
	}
	if !b.Contains(Of(0, 5)) {
		t.Fatal("box should contain interior point")
	}
	if b.Contains(Of(2, 5)) {
		t.Fatal("box should not contain exterior point")
	}
	if b.Contains(Of(0, 5, 0)) {
		t.Fatal("dimension mismatch is not contained")
	}
	if err := b.Observe(Of(1)); err == nil {
		t.Fatal("expected dimension error")
	}
	if b.N() != 3 {
		t.Fatalf("N = %d", b.N())
	}
}

// Property: every observed point is contained in the box.
func TestBoundingBoxContainsObserved(t *testing.T) {
	f := func(pts [9][2]float64) bool {
		b := NewBoundingBox(2)
		vs := make([]Vector, 0, len(pts))
		for _, p := range pts {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
				continue
			}
			v := Of(p[:]...)
			if b.Observe(v) != nil {
				return false
			}
			vs = append(vs, v)
		}
		for _, v := range vs {
			if !b.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
