// Package vector provides dense float64 vector math used throughout the
// library: Euclidean distances, means, weighted means, and running
// statistics. All operations are allocation-conscious; hot-path functions
// (SquaredDistance, AddScaled) never allocate.
package vector

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when two vectors of different lengths
// are combined.
var ErrDimensionMismatch = errors.New("vector: dimension mismatch")

// Vector is a dense D-dimensional point with float64 components.
type Vector []float64

// New returns a zero vector of dimension d.
func New(d int) Vector {
	return make(Vector, d)
}

// Of returns a vector with the given components.
func Of(xs ...float64) Vector {
	v := make(Vector, len(xs))
	copy(v, xs)
	return v
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dim returns the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Zero sets every component of v to zero.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// CopyFrom copies src into v. Panics on dimension mismatch; the library
// always pairs vectors of like dimension, so a mismatch is a programmer
// error.
func (v Vector) CopyFrom(src Vector) {
	if len(v) != len(src) {
		panic(ErrDimensionMismatch)
	}
	copy(v, src)
}

// Add adds u into v component-wise.
func (v Vector) Add(u Vector) {
	if len(v) != len(u) {
		panic(ErrDimensionMismatch)
	}
	for i, x := range u {
		v[i] += x
	}
}

// Sub subtracts u from v component-wise.
func (v Vector) Sub(u Vector) {
	if len(v) != len(u) {
		panic(ErrDimensionMismatch)
	}
	for i, x := range u {
		v[i] -= x
	}
}

// AddScaled adds s*u into v component-wise without allocating.
func (v Vector) AddScaled(s float64, u Vector) {
	if len(v) != len(u) {
		panic(ErrDimensionMismatch)
	}
	for i, x := range u {
		v[i] += s * x
	}
}

// Scale multiplies every component of v by s.
func (v Vector) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Dot returns the inner product of v and u.
func (v Vector) Dot(u Vector) float64 {
	if len(v) != len(u) {
		panic(ErrDimensionMismatch)
	}
	var s float64
	for i, x := range u {
		s += v[i] * x
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vector) Norm() float64 {
	return math.Sqrt(v.Dot(v))
}

// Equal reports whether v and u have identical dimension and components.
func (v Vector) Equal(u Vector) bool {
	if len(v) != len(u) {
		return false
	}
	for i, x := range u {
		if v[i] != x {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether v and u agree component-wise within tol.
func (v Vector) ApproxEqual(u Vector, tol float64) bool {
	if len(v) != len(u) {
		return false
	}
	for i, x := range u {
		if math.Abs(v[i]-x) > tol {
			return false
		}
	}
	return true
}

// String formats v like "[1.5 2 3]".
func (v Vector) String() string {
	return fmt.Sprintf("%v", []float64(v))
}

// SquaredDistance returns the squared Euclidean distance between a and b.
// This is the k-means hot path: squared distance preserves nearest-centroid
// ordering and avoids the sqrt.
func SquaredDistance(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(ErrDimensionMismatch)
	}
	var s float64
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance between a and b, the
// dis(c_k, v_j) of the paper's step 2.
func Distance(a, b Vector) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// Mean returns the component-wise mean of vs. It returns an error for an
// empty input or mismatched dimensions.
func Mean(vs []Vector) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("vector: mean of empty set")
	}
	m := New(len(vs[0]))
	for _, v := range vs {
		if len(v) != len(m) {
			return nil, ErrDimensionMismatch
		}
		m.Add(v)
	}
	m.Scale(1 / float64(len(vs)))
	return m, nil
}

// WeightedMean returns sum(w_i * v_i) / sum(w_i), the weighted centroid
// recalculation of the paper's merge step 3. Weights must be non-negative
// and not all zero.
func WeightedMean(vs []Vector, ws []float64) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("vector: weighted mean of empty set")
	}
	if len(vs) != len(ws) {
		return nil, fmt.Errorf("vector: %d vectors but %d weights", len(vs), len(ws))
	}
	m := New(len(vs[0]))
	var total float64
	for i, v := range vs {
		if len(v) != len(m) {
			return nil, ErrDimensionMismatch
		}
		w := ws[i]
		if w < 0 {
			return nil, fmt.Errorf("vector: negative weight %g at index %d", w, i)
		}
		m.AddScaled(w, v)
		total += w
	}
	if total == 0 {
		return nil, errors.New("vector: all weights zero")
	}
	m.Scale(1 / total)
	return m, nil
}

// NearestIndex returns the index of the centroid in cs nearest to x (by
// squared Euclidean distance) and that squared distance. It panics if cs
// is empty: callers guarantee at least one centroid.
func NearestIndex(x Vector, cs []Vector) (int, float64) {
	if len(cs) == 0 {
		panic("vector: NearestIndex with no centroids")
	}
	best := 0
	bestD := SquaredDistance(x, cs[0])
	for i := 1; i < len(cs); i++ {
		if d := SquaredDistance(x, cs[i]); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
