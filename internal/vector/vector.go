// Package vector provides dense float64 vector math used throughout the
// library: Euclidean distances, means, weighted means, and running
// statistics. All operations are allocation-conscious; hot-path functions
// (SquaredDistance, AddScaled) never allocate.
package vector

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when two vectors of different lengths
// are combined.
var ErrDimensionMismatch = errors.New("vector: dimension mismatch")

// Vector is a dense D-dimensional point with float64 components.
type Vector []float64

// New returns a zero vector of dimension d.
func New(d int) Vector {
	return make(Vector, d)
}

// Of returns a vector with the given components.
func Of(xs ...float64) Vector {
	v := make(Vector, len(xs))
	copy(v, xs)
	return v
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dim returns the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Zero sets every component of v to zero.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// CopyFrom copies src into v. Panics on dimension mismatch; the library
// always pairs vectors of like dimension, so a mismatch is a programmer
// error.
func (v Vector) CopyFrom(src Vector) {
	if len(v) != len(src) {
		panic(ErrDimensionMismatch)
	}
	copy(v, src)
}

// Add adds u into v component-wise.
func (v Vector) Add(u Vector) {
	if len(v) != len(u) {
		panic(ErrDimensionMismatch)
	}
	for i, x := range u {
		v[i] += x
	}
}

// Sub subtracts u from v component-wise.
func (v Vector) Sub(u Vector) {
	if len(v) != len(u) {
		panic(ErrDimensionMismatch)
	}
	for i, x := range u {
		v[i] -= x
	}
}

// AddScaled adds s*u into v component-wise without allocating.
func (v Vector) AddScaled(s float64, u Vector) {
	if len(v) != len(u) {
		panic(ErrDimensionMismatch)
	}
	for i, x := range u {
		v[i] += s * x
	}
}

// Scale multiplies every component of v by s.
func (v Vector) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Dot returns the inner product of v and u.
func (v Vector) Dot(u Vector) float64 {
	if len(v) != len(u) {
		panic(ErrDimensionMismatch)
	}
	var s float64
	for i, x := range u {
		s += v[i] * x
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vector) Norm() float64 {
	return math.Sqrt(v.Dot(v))
}

// Equal reports whether v and u have identical dimension and components.
func (v Vector) Equal(u Vector) bool {
	if len(v) != len(u) {
		return false
	}
	for i, x := range u {
		if v[i] != x {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether v and u agree component-wise within tol.
func (v Vector) ApproxEqual(u Vector, tol float64) bool {
	if len(v) != len(u) {
		return false
	}
	for i, x := range u {
		if math.Abs(v[i]-x) > tol {
			return false
		}
	}
	return true
}

// String formats v like "[1.5 2 3]".
func (v Vector) String() string {
	return fmt.Sprintf("%v", []float64(v))
}

// SquaredDistance returns the squared Euclidean distance between a and b.
// This is the k-means hot path: squared distance preserves nearest-centroid
// ordering and avoids the sqrt.
func SquaredDistance(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(ErrDimensionMismatch)
	}
	return SquaredDistanceFloats(a, b)
}

// SquaredDistanceFloats is SquaredDistance over raw float64 slices with
// the dimension check hoisted to the caller: b must be at least as long
// as a. Dimensions 2, 3, 6 and 8 (the paper's workloads plus the common
// geo cases) take fully unrolled straight-line paths; other dimensions
// take a 4-way unrolled loop. Every path accumulates into a single sum
// in index order, so the result is bit-identical to the naive
// `for i { d := a[i]-b[i]; s += d*d }` loop across all of them.
func SquaredDistanceFloats(a, b []float64) float64 {
	switch len(a) {
	case 2:
		_ = b[1]
		d0 := a[0] - b[0]
		d1 := a[1] - b[1]
		return d0*d0 + d1*d1
	case 3:
		_ = b[2]
		d0 := a[0] - b[0]
		d1 := a[1] - b[1]
		d2 := a[2] - b[2]
		return d0*d0 + d1*d1 + d2*d2
	case 6:
		_ = b[5]
		d0 := a[0] - b[0]
		d1 := a[1] - b[1]
		d2 := a[2] - b[2]
		d3 := a[3] - b[3]
		d4 := a[4] - b[4]
		d5 := a[5] - b[5]
		return d0*d0 + d1*d1 + d2*d2 + d3*d3 + d4*d4 + d5*d5
	case 8:
		_ = b[7]
		d0 := a[0] - b[0]
		d1 := a[1] - b[1]
		d2 := a[2] - b[2]
		d3 := a[3] - b[3]
		d4 := a[4] - b[4]
		d5 := a[5] - b[5]
		d6 := a[6] - b[6]
		d7 := a[7] - b[7]
		return d0*d0 + d1*d1 + d2*d2 + d3*d3 + d4*d4 + d5*d5 + d6*d6 + d7*d7
	}
	b = b[:len(a)] // bounds-check elimination hint
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		s += d0 * d0
		d1 := a[i+1] - b[i+1]
		s += d1 * d1
		d2 := a[i+2] - b[i+2]
		s += d2 * d2
		d3 := a[i+3] - b[i+3]
		s += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance between a and b, the
// dis(c_k, v_j) of the paper's step 2.
func Distance(a, b Vector) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// Mean returns the component-wise mean of vs. It returns an error for an
// empty input or mismatched dimensions.
func Mean(vs []Vector) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("vector: mean of empty set")
	}
	m := New(len(vs[0]))
	for _, v := range vs {
		if len(v) != len(m) {
			return nil, ErrDimensionMismatch
		}
		m.Add(v)
	}
	m.Scale(1 / float64(len(vs)))
	return m, nil
}

// WeightedMean returns sum(w_i * v_i) / sum(w_i), the weighted centroid
// recalculation of the paper's merge step 3. Weights must be non-negative
// and not all zero.
func WeightedMean(vs []Vector, ws []float64) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("vector: weighted mean of empty set")
	}
	if len(vs) != len(ws) {
		return nil, fmt.Errorf("vector: %d vectors but %d weights", len(vs), len(ws))
	}
	m := New(len(vs[0]))
	var total float64
	for i, v := range vs {
		if len(v) != len(m) {
			return nil, ErrDimensionMismatch
		}
		w := ws[i]
		if w < 0 {
			return nil, fmt.Errorf("vector: negative weight %g at index %d", w, i)
		}
		m.AddScaled(w, v)
		total += w
	}
	if total == 0 {
		return nil, errors.New("vector: all weights zero")
	}
	m.Scale(1 / total)
	return m, nil
}

// NearestIndex returns the index of the centroid in cs nearest to x (by
// squared Euclidean distance) and that squared distance. It panics if cs
// is empty: callers guarantee at least one centroid.
func NearestIndex(x Vector, cs []Vector) (int, float64) {
	if len(cs) == 0 {
		panic("vector: NearestIndex with no centroids")
	}
	best := 0
	bestD := SquaredDistance(x, cs[0])
	for i := 1; i < len(cs); i++ {
		if d := SquaredDistance(x, cs[i]); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// NearestIndexFlat is NearestIndex over k centroids stored contiguously
// in flat (row j occupies flat[j*dim : (j+1)*dim]). Scanning one strided
// buffer avoids the per-centroid pointer chase of []Vector and is the
// kernel behind the flat-memory Lloyd hot path. It visits centroids in
// index order with a strict < comparison, so index choice and returned
// distance are bit-identical to NearestIndex over the same rows. It
// panics if k <= 0 or flat is shorter than k*dim.
func NearestIndexFlat(x []float64, flat []float64, k, dim int) (int, float64) {
	if k <= 0 {
		panic("vector: NearestIndexFlat with no centroids")
	}
	_ = flat[k*dim-1]
	switch dim {
	case 3:
		return nearestIndexFlat3(x, flat, k)
	case 6:
		return nearestIndexFlat6(x, flat, k)
	}
	best := 0
	bestD := SquaredDistanceFloats(x, flat[:dim])
	for j := 1; j < k; j++ {
		off := j * dim
		if d := SquaredDistanceFloats(x, flat[off:off+dim]); d < bestD {
			best, bestD = j, d
		}
	}
	return best, bestD
}

// NearestTwoFlat returns the index of the nearest row of the flat
// k x dim centroid matrix plus the squared distances to the nearest and
// second-nearest rows — the kernel behind Hamerly's bound maintenance.
// With k == 1 the second distance is +Inf. Rows are visited in index
// order with strict < comparisons, so the result is bit-identical to a
// naive scan. Panics if k <= 0 or flat is shorter than k*dim.
func NearestTwoFlat(x []float64, flat []float64, k, dim int) (int, float64, float64) {
	if k <= 0 {
		panic("vector: NearestTwoFlat with no centroids")
	}
	_ = flat[k*dim-1]
	switch dim {
	case 3:
		return nearestTwoFlat3(x, flat, k)
	case 6:
		return nearestTwoFlat6(x, flat, k)
	}
	best := 0
	bestD := math.Inf(1)
	secondD := math.Inf(1)
	for j := 0; j < k; j++ {
		off := j * dim
		if d := SquaredDistanceFloats(x, flat[off:off+dim]); d < bestD {
			secondD = bestD
			best, bestD = j, d
		} else if d < secondD {
			secondD = d
		}
	}
	return best, bestD, secondD
}

func nearestTwoFlat3(x, flat []float64, k int) (int, float64, float64) {
	x0, x1, x2 := x[0], x[1], x[2]
	best := 0
	bestD := math.Inf(1)
	secondD := math.Inf(1)
	for j, off := 0, 0; j < k; j, off = j+1, off+3 {
		row := flat[off : off+3 : off+3]
		d0 := x0 - row[0]
		d1 := x1 - row[1]
		d2 := x2 - row[2]
		if s := d0*d0 + d1*d1 + d2*d2; s < bestD {
			secondD = bestD
			best, bestD = j, s
		} else if s < secondD {
			secondD = s
		}
	}
	return best, bestD, secondD
}

func nearestTwoFlat6(x, flat []float64, k int) (int, float64, float64) {
	_ = x[5]
	x0, x1, x2, x3, x4, x5 := x[0], x[1], x[2], x[3], x[4], x[5]
	best := 0
	bestD := math.Inf(1)
	secondD := math.Inf(1)
	for j, off := 0, 0; j < k; j, off = j+1, off+6 {
		row := flat[off : off+6 : off+6]
		d0 := x0 - row[0]
		d1 := x1 - row[1]
		d2 := x2 - row[2]
		d3 := x3 - row[3]
		d4 := x4 - row[4]
		d5 := x5 - row[5]
		if s := d0*d0 + d1*d1 + d2*d2 + d3*d3 + d4*d4 + d5*d5; s < bestD {
			secondD = bestD
			best, bestD = j, s
		} else if s < secondD {
			secondD = s
		}
	}
	return best, bestD, secondD
}

// nearestIndexFlat3 and nearestIndexFlat6 keep the distance computation
// inlined in the scan loop (no per-centroid call), covering the repo's
// dominant dimensionalities: 3-D test workloads and the paper's 6-D
// MISR cells. Two centroid rows are processed per loop iteration so
// their floating-point dependency chains overlap; each row's distance
// uses the same left-associative expression and the two comparisons run
// in index order with strict <, so the winning index and distance stay
// bit-identical to the one-row-at-a-time scan.
func nearestIndexFlat3(x, flat []float64, k int) (int, float64) {
	x0, x1, x2 := x[0], x[1], x[2]
	best := 0
	row := flat[0:3:3]
	d0 := x0 - row[0]
	d1 := x1 - row[1]
	d2 := x2 - row[2]
	bestD := d0*d0 + d1*d1 + d2*d2
	j, off := 1, 3
	for ; j+2 <= k; j, off = j+2, off+6 {
		r := flat[off : off+6 : off+6]
		a0 := x0 - r[0]
		a1 := x1 - r[1]
		a2 := x2 - r[2]
		b0 := x0 - r[3]
		b1 := x1 - r[4]
		b2 := x2 - r[5]
		sa := a0*a0 + a1*a1 + a2*a2
		sb := b0*b0 + b1*b1 + b2*b2
		if sa < bestD {
			best, bestD = j, sa
		}
		if sb < bestD {
			best, bestD = j+1, sb
		}
	}
	if j < k {
		r := flat[off : off+3 : off+3]
		d0 = x0 - r[0]
		d1 = x1 - r[1]
		d2 = x2 - r[2]
		if s := d0*d0 + d1*d1 + d2*d2; s < bestD {
			best, bestD = j, s
		}
	}
	return best, bestD
}

func nearestIndexFlat6(x, flat []float64, k int) (int, float64) {
	_ = x[5]
	x0, x1, x2, x3, x4, x5 := x[0], x[1], x[2], x[3], x[4], x[5]
	best := 0
	row := flat[0:6:6]
	d0 := x0 - row[0]
	d1 := x1 - row[1]
	d2 := x2 - row[2]
	d3 := x3 - row[3]
	d4 := x4 - row[4]
	d5 := x5 - row[5]
	bestD := d0*d0 + d1*d1 + d2*d2 + d3*d3 + d4*d4 + d5*d5
	j, off := 1, 6
	for ; j+2 <= k; j, off = j+2, off+12 {
		r := flat[off : off+12 : off+12]
		a0 := x0 - r[0]
		a1 := x1 - r[1]
		a2 := x2 - r[2]
		a3 := x3 - r[3]
		a4 := x4 - r[4]
		a5 := x5 - r[5]
		b0 := x0 - r[6]
		b1 := x1 - r[7]
		b2 := x2 - r[8]
		b3 := x3 - r[9]
		b4 := x4 - r[10]
		b5 := x5 - r[11]
		sa := a0*a0 + a1*a1 + a2*a2 + a3*a3 + a4*a4 + a5*a5
		sb := b0*b0 + b1*b1 + b2*b2 + b3*b3 + b4*b4 + b5*b5
		if sa < bestD {
			best, bestD = j, sa
		}
		if sb < bestD {
			best, bestD = j+1, sb
		}
	}
	if j < k {
		r := flat[off : off+6 : off+6]
		d0 = x0 - r[0]
		d1 = x1 - r[1]
		d2 = x2 - r[2]
		d3 = x3 - r[3]
		d4 = x4 - r[4]
		d5 = x5 - r[5]
		if s := d0*d0 + d1*d1 + d2*d2 + d3*d3 + d4*d4 + d5*d5; s < bestD {
			best, bestD = j, s
		}
	}
	return best, bestD
}
