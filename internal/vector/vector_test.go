package vector

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOfAndClone(t *testing.T) {
	v := Of(1, 2, 3)
	if v.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", v.Dim())
	}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatalf("Clone aliases original: v[0] = %g", v[0])
	}
}

func TestZero(t *testing.T) {
	v := Of(1, 2, 3)
	v.Zero()
	for i, x := range v {
		if x != 0 {
			t.Fatalf("v[%d] = %g after Zero", i, x)
		}
	}
}

func TestAddSubScale(t *testing.T) {
	v := Of(1, 2)
	v.Add(Of(3, 4))
	if !v.Equal(Of(4, 6)) {
		t.Fatalf("Add: got %v", v)
	}
	v.Sub(Of(1, 1))
	if !v.Equal(Of(3, 5)) {
		t.Fatalf("Sub: got %v", v)
	}
	v.Scale(2)
	if !v.Equal(Of(6, 10)) {
		t.Fatalf("Scale: got %v", v)
	}
}

func TestAddScaled(t *testing.T) {
	v := Of(1, 1)
	v.AddScaled(0.5, Of(2, 4))
	if !v.Equal(Of(2, 3)) {
		t.Fatalf("AddScaled: got %v", v)
	}
}

func TestDotNorm(t *testing.T) {
	if d := Of(1, 2, 3).Dot(Of(4, 5, 6)); d != 32 {
		t.Fatalf("Dot = %g, want 32", d)
	}
	if n := Of(3, 4).Norm(); n != 5 {
		t.Fatalf("Norm = %g, want 5", n)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"Add", func() { Of(1).Add(Of(1, 2)) }},
		{"Sub", func() { Of(1).Sub(Of(1, 2)) }},
		{"AddScaled", func() { Of(1).AddScaled(1, Of(1, 2)) }},
		{"Dot", func() { Of(1).Dot(Of(1, 2)) }},
		{"CopyFrom", func() { Of(1).CopyFrom(Of(1, 2)) }},
		{"SquaredDistance", func() { SquaredDistance(Of(1), Of(1, 2)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on mismatch", tc.name)
				}
			}()
			tc.f()
		})
	}
}

func TestSquaredDistance(t *testing.T) {
	a, b := Of(0, 0), Of(3, 4)
	if d := SquaredDistance(a, b); d != 25 {
		t.Fatalf("SquaredDistance = %g, want 25", d)
	}
	if d := Distance(a, b); d != 5 {
		t.Fatalf("Distance = %g, want 5", d)
	}
	if d := SquaredDistance(a, a); d != 0 {
		t.Fatalf("self distance = %g, want 0", d)
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]Vector{Of(0, 0), Of(2, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(Of(1, 2)) {
		t.Fatalf("Mean = %v, want [1 2]", m)
	}
	if _, err := Mean(nil); err == nil {
		t.Fatal("Mean(nil) should error")
	}
	if _, err := Mean([]Vector{Of(1), Of(1, 2)}); err == nil {
		t.Fatal("Mean with mixed dims should error")
	}
}

func TestWeightedMean(t *testing.T) {
	m, err := WeightedMean([]Vector{Of(0), Of(10)}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[0]-7.5) > 1e-12 {
		t.Fatalf("WeightedMean = %v, want 7.5", m)
	}
}

func TestWeightedMeanErrors(t *testing.T) {
	if _, err := WeightedMean(nil, nil); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := WeightedMean([]Vector{Of(1)}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := WeightedMean([]Vector{Of(1)}, []float64{-1}); err == nil {
		t.Fatal("negative weight should error")
	}
	if _, err := WeightedMean([]Vector{Of(1)}, []float64{0}); err == nil {
		t.Fatal("all-zero weights should error")
	}
	if _, err := WeightedMean([]Vector{Of(1), Of(1, 2)}, []float64{1, 1}); err == nil {
		t.Fatal("mixed dims should error")
	}
}

func TestWeightedMeanEqualWeightsMatchesMean(t *testing.T) {
	vs := []Vector{Of(1, 2), Of(3, 4), Of(5, 0)}
	ws := []float64{2, 2, 2}
	wm, err := WeightedMean(vs, ws)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Mean(vs)
	if err != nil {
		t.Fatal(err)
	}
	if !wm.ApproxEqual(m, 1e-12) {
		t.Fatalf("weighted mean %v != mean %v", wm, m)
	}
}

func TestNearestIndex(t *testing.T) {
	cs := []Vector{Of(0, 0), Of(10, 0), Of(0, 10)}
	i, d := NearestIndex(Of(9, 1), cs)
	if i != 1 {
		t.Fatalf("NearestIndex = %d, want 1", i)
	}
	if d != 2 {
		t.Fatalf("distance = %g, want 2", d)
	}
}

func TestNearestIndexPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty centroid set")
		}
	}()
	NearestIndex(Of(1), nil)
}

func TestApproxEqual(t *testing.T) {
	if !Of(1, 2).ApproxEqual(Of(1.0000001, 2), 1e-3) {
		t.Fatal("should be approx equal")
	}
	if Of(1, 2).ApproxEqual(Of(1.1, 2), 1e-3) {
		t.Fatal("should not be approx equal")
	}
	if Of(1).ApproxEqual(Of(1, 2), 1) {
		t.Fatal("different dims are never equal")
	}
}

// Property: distance is symmetric and non-negative, zero iff equal inputs.
func TestSquaredDistanceProperties(t *testing.T) {
	f := func(a, b [6]float64) bool {
		va, vb := Of(a[:]...), Of(b[:]...)
		d1 := SquaredDistance(va, vb)
		d2 := SquaredDistance(vb, va)
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the mean minimizes the sum of squared distances among the
// candidates we test (it is the unique minimizer in R^d, so any perturbed
// point must do at least as badly).
func TestMeanMinimizesSSE(t *testing.T) {
	f := func(pts [5][3]float64, shift [3]float64) bool {
		vs := make([]Vector, len(pts))
		for i := range pts {
			vs[i] = Of(pts[i][:]...)
		}
		m, err := Mean(vs)
		if err != nil {
			return false
		}
		alt := m.Clone()
		alt.Add(Of(shift[:]...))
		var sseM, sseAlt float64
		for _, v := range vs {
			sseM += SquaredDistance(v, m)
			sseAlt += SquaredDistance(v, alt)
		}
		return sseM <= sseAlt+1e-9*math.Max(1, math.Abs(sseAlt))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for Euclidean distance.
func TestTriangleInequality(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		va, vb, vc := Of(a[:]...), Of(b[:]...), Of(c[:]...)
		return Distance(va, vc) <= Distance(va, vb)+Distance(vb, vc)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSquaredDistance6D(b *testing.B) {
	x := Of(1, 2, 3, 4, 5, 6)
	y := Of(6, 5, 4, 3, 2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SquaredDistance(x, y)
	}
}

func BenchmarkNearestIndex40Centroids(b *testing.B) {
	cs := make([]Vector, 40)
	for i := range cs {
		cs[i] = Of(float64(i), 0, 0, 0, 0, 0)
	}
	x := Of(17.3, 1, 1, 1, 1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NearestIndex(x, cs)
	}
}

// referenceSquaredDistance is the pre-optimization scalar loop; the
// unrolled and dim-specialized kernels must match it bit for bit.
func referenceSquaredDistance(a, b []float64) float64 {
	var s float64
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return s
}

// TestSquaredDistanceBitIdentical pins the flat-kernel contract: every
// specialization (d=2,3,6,8) and the 4-way unrolled generic path produce
// the exact bits of the sequential reference loop.
func TestSquaredDistanceBitIdentical(t *testing.T) {
	gen := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		gen ^= gen << 13
		gen ^= gen >> 7
		gen ^= gen << 17
		return float64(int64(gen)) / (1 << 40)
	}
	for dim := 1; dim <= 17; dim++ {
		for trial := 0; trial < 50; trial++ {
			a := make([]float64, dim)
			b := make([]float64, dim)
			for i := range a {
				a[i], b[i] = next(), next()
			}
			want := referenceSquaredDistance(a, b)
			if got := SquaredDistance(a, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("dim %d: SquaredDistance = %x, reference = %x", dim, got, want)
			}
			if got := SquaredDistanceFloats(a, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("dim %d: SquaredDistanceFloats = %x, reference = %x", dim, got, want)
			}
		}
	}
}

// TestNearestIndexFlatMatches pins flat-centroid scanning to the
// []Vector implementation: same winning index, same distance bits.
func TestNearestIndexFlatMatches(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 4, 6, 8, 11} {
		const k = 13
		flat := make([]float64, k*dim)
		cs := make([]Vector, k)
		for j := 0; j < k; j++ {
			cs[j] = New(dim)
			for d := 0; d < dim; d++ {
				v := float64((j*31+d*17)%23) - 11
				flat[j*dim+d] = v
				cs[j][d] = v
			}
		}
		x := New(dim)
		for d := 0; d < dim; d++ {
			x[d] = float64(d%5) - 2.5
		}
		wi, wd := NearestIndex(x, cs)
		gi, gd := NearestIndexFlat(x, flat, k, dim)
		if gi != wi || math.Float64bits(gd) != math.Float64bits(wd) {
			t.Fatalf("dim %d: flat (%d, %x) != reference (%d, %x)", dim, gi, gd, wi, wd)
		}
	}
}

func TestNearestIndexFlatPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for k=0")
		}
	}()
	NearestIndexFlat([]float64{1}, nil, 0, 1)
}

func BenchmarkNearestIndexFlat40x6(b *testing.B) {
	const k, dim = 40, 6
	flat := make([]float64, k*dim)
	for i := range flat {
		flat[i] = float64(i % 7)
	}
	x := []float64{17.3, 1, 1, 1, 1, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NearestIndexFlat(x, flat, k, dim)
	}
}
