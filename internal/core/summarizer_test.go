package core

import (
	"context"
	"errors"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/rng"
)

func TestSummarizerSpecEncodeParseRoundTrip(t *testing.T) {
	cases := []SummarizerSpec{
		{Name: "kmeans"},
		{Name: "kmeans", Params: map[string]string{"k": "40", "restarts": "10"}},
		{Name: "ecvq", Params: map[string]string{"maxk": "80", "lambda": "12.5", "restarts": "3"}},
		{Name: "coreset", Params: map[string]string{"m": "400"}},
	}
	for _, spec := range cases {
		enc := spec.Encode()
		got, err := ParseSummarizerSpec(enc)
		if err != nil {
			t.Fatalf("%s: %v", enc, err)
		}
		if got.Encode() != enc {
			t.Fatalf("round trip: %q != %q", got.Encode(), enc)
		}
	}
}

func TestSummarizerSpecFloatParamsBitExact(t *testing.T) {
	// Epsilons and lambdas must survive spec → string → spec with the
	// identical bits, or remote/resumed runs would diverge.
	cfg := ECVQPartialConfig{MaxK: 16, Lambda: 0.1 + 0.2, Epsilon: 1e-9, Restarts: 2}
	s, err := NewECVQSummarizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := NewSummarizer(mustParseSpec(t, s.Spec().Encode()))
	if err != nil {
		t.Fatal(err)
	}
	got := back.(*ECVQSummarizer).Config()
	if got != cfg {
		t.Fatalf("config round trip: %+v != %+v", got, cfg)
	}
}

func mustParseSpec(t *testing.T, enc string) SummarizerSpec {
	t.Helper()
	spec, err := ParseSummarizerSpec(enc)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestParseSummarizerSpecRejectsMalformed(t *testing.T) {
	for _, enc := range []string{
		"", "(k=1)", "kmeans(k=1", "kmeans(novalue)", "kmeans(=1)",
	} {
		if _, err := ParseSummarizerSpec(enc); err == nil {
			t.Fatalf("%q parsed", enc)
		}
	}
}

func TestNewSummarizerRejectsUnknownOperatorAndParams(t *testing.T) {
	if _, err := NewSummarizer(SummarizerSpec{Name: "birch"}); !errors.Is(err, ErrUnknownSummarizer) {
		t.Fatalf("unknown operator: %v", err)
	}
	if _, err := SummarizerFor("birch", SummarizerOptions{}); !errors.Is(err, ErrUnknownSummarizer) {
		t.Fatalf("unknown operator via SummarizerFor: %v", err)
	}
	// An unconsumed parameter is version skew or a typo — refuse it
	// instead of silently running a different operator than intended.
	spec := SummarizerSpec{Name: "kmeans", Params: map[string]string{"k": "4", "restarts": "1", "bogus": "1"}}
	if _, err := NewSummarizer(spec); err == nil {
		t.Fatal("unknown param accepted")
	}
	bad := SummarizerSpec{Name: "kmeans", Params: map[string]string{"k": "four", "restarts": "1"}}
	if _, err := NewSummarizer(bad); err == nil {
		t.Fatal("non-numeric k accepted")
	}
}

// roundTripSummarizer encodes a summarizer's spec, parses it back, and
// rebuilds the operator — the journey every chunk spec takes through
// the SKMF wire protocol and the SKMJ journal.
func roundTripSummarizer(t *testing.T, s Summarizer) Summarizer {
	t.Helper()
	back, err := NewSummarizer(mustParseSpec(t, s.Spec().Encode()))
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestSummarizersRebuiltFromSpecAreBitIdentical(t *testing.T) {
	chunk := blobCell(t, 5, 300, 11)
	opts := SummarizerOptions{
		Partial:     PartialConfig{K: 5, Restarts: 3, Epsilon: 1e-8},
		CoresetSize: 40,
		ECVQ:        ECVQPartialConfig{MaxK: 12, Lambda: 2.5},
	}
	for _, name := range SummarizerNames() {
		s, err := SummarizerFor(name, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back := roundTripSummarizer(t, s)
		if back.Spec().Encode() != s.Spec().Encode() {
			t.Fatalf("%s: spec drift: %q != %q", name, back.Spec().Encode(), s.Spec().Encode())
		}
		r1, r2 := rng.New(99), rng.New(99)
		a, err := s.Summarize(chunk, r1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := back.Summarize(chunk, r2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertSameWeightedSets(t, name, a.Centroids, b.Centroids)
	}
}

func assertSameWeightedSets(t *testing.T, label string, a, b *dataset.WeightedSet) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: %d vs %d summary points", label, a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.WeightAt(i) != b.WeightAt(i) {
			t.Fatalf("%s: point %d weight %v != %v", label, i, a.WeightAt(i), b.WeightAt(i))
		}
		av, bv := a.VecAt(i), b.VecAt(i)
		for d := range av {
			if av[d] != bv[d] {
				t.Fatalf("%s: point %d dim %d: %v != %v", label, i, d, av[d], bv[d])
			}
		}
	}
}

func TestKMeansSummarizerMatchesPartialKMeans(t *testing.T) {
	chunk := blobCell(t, 4, 250, 7)
	cfg := PartialConfig{K: 4, Restarts: 3}
	s, err := NewKMeansSummarizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Summarize(chunk, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartialKMeans(chunk, cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	assertSameWeightedSets(t, "kmeans", a.Centroids, b.Centroids)
	if a.MSE != b.MSE || a.Iterations != b.Iterations {
		t.Fatalf("stats drift: %+v vs %+v", a, b)
	}
}

// clusterOptionsFor builds pipeline options selecting the named
// summarizer with small, fast parameters.
func clusterOptionsFor(name string) Options {
	return Options{
		K: 5, Restarts: 2, Splits: 4, Seed: 77,
		Summarizer:  name,
		CoresetSize: 40,
		ECVQMaxK:    10,
	}
}

func TestClusterSerialMatchesParallelPerSummarizer(t *testing.T) {
	points := blobCell(t, 5, 600, 21)
	for _, name := range SummarizerNames() {
		opts := clusterOptionsFor(name)
		serial, err := Cluster(points, opts)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		opts.Parallelism = 3
		par, err := ClusterParallel(context.Background(), points, opts)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if len(serial.Centroids) != len(par.Centroids) {
			t.Fatalf("%s: centroid counts differ", name)
		}
		for i := range serial.Centroids {
			if serial.Weights[i] != par.Weights[i] {
				t.Fatalf("%s centroid %d: weight %v != %v", name, i, serial.Weights[i], par.Weights[i])
			}
			for d := range serial.Centroids[i] {
				if serial.Centroids[i][d] != par.Centroids[i][d] {
					t.Fatalf("%s centroid %d dim %d differs", name, i, d)
				}
			}
		}
		if serial.MergeMSE != par.MergeMSE || serial.PointMSE != par.PointMSE {
			t.Fatalf("%s: MSE drift", name)
		}
	}
}

func TestClusterECVQWrapperMatchesSummarizerPath(t *testing.T) {
	points := blobCell(t, 4, 500, 31)
	opts := Options{K: 5, Restarts: 2, Splits: 4, Seed: 13}
	ecfg := ECVQPartialConfig{MaxK: 10, Lambda: 5, Restarts: 2}
	legacy, err := ClusterECVQ(points, opts, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	opts.Summarizer = SummarizerECVQ
	opts.ECVQMaxK = ecfg.MaxK
	opts.ECVQLambda = ecfg.Lambda
	unified, err := Cluster(points, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.Centroids) != len(unified.Centroids) {
		t.Fatal("centroid counts differ")
	}
	for i := range legacy.Centroids {
		for d := range legacy.Centroids[i] {
			if legacy.Centroids[i][d] != unified.Centroids[i][d] {
				t.Fatalf("centroid %d dim %d: %v != %v",
					i, d, legacy.Centroids[i][d], unified.Centroids[i][d])
			}
		}
	}
	if legacy.MergeMSE != unified.MergeMSE {
		t.Fatalf("merge MSE %v != %v", legacy.MergeMSE, unified.MergeMSE)
	}
}

func TestOptionsSeedMethodValidatedAndApplied(t *testing.T) {
	points := blobCell(t, 4, 300, 41)
	bad := clusterOptionsFor(SummarizerKMeans)
	bad.SeedMethod = "voronoi"
	if _, err := Cluster(points, bad); err == nil {
		t.Fatal("unknown seed method accepted")
	}
	opts := clusterOptionsFor(SummarizerKMeans)
	opts.SeedMethod = "kmeans++"
	summ, err := opts.NewSummarizer()
	if err != nil {
		t.Fatal(err)
	}
	if got := summ.Spec().Params["seed"]; got != (kmeans.PlusPlusSeeder{}).Name() {
		t.Fatalf("seed param %q", got)
	}
	if _, err := Cluster(points, opts); err != nil {
		t.Fatal(err)
	}
	// The merge stage picks the method up too (via MergeConfig).
	if s := opts.MergeConfig().Seeder; s == nil || s.Name() != (kmeans.PlusPlusSeeder{}).Name() {
		t.Fatalf("merge seeder not applied: %v", s)
	}
}
