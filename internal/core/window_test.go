package core

import (
	"math"
	"testing"

	"streamkm/internal/rng"
)

func TestNewWindowedClustererValidation(t *testing.T) {
	cases := []WindowConfig{
		{K: 0, ChunkPoints: 10, WindowChunks: 2},
		{K: 5, ChunkPoints: 4, WindowChunks: 2},
		{K: 5, ChunkPoints: 10, WindowChunks: 0},
	}
	for i, cfg := range cases {
		if _, err := NewWindowedClusterer(2, cfg); err == nil {
			t.Errorf("case %d should be rejected: %+v", i, cfg)
		}
	}
	if _, err := NewWindowedClusterer(0, WindowConfig{K: 2, ChunkPoints: 10, WindowChunks: 2}); err == nil {
		t.Error("dim=0 should be rejected")
	}
}

func TestWindowedClustererTracksDrift(t *testing.T) {
	w, err := NewWindowedClusterer(1, WindowConfig{
		K: 4, ChunkPoints: 100, WindowChunks: 3, Restarts: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	push := func(center float64, n int) {
		for i := 0; i < n; i++ {
			if err := w.Push([]float64{center + r.NormFloat64()}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Phase 1: 6 chunks around 0 — more than the window holds.
	push(0, 600)
	if w.LiveChunks() != 3 {
		t.Fatalf("LiveChunks = %d, want window size 3", w.LiveChunks())
	}
	if w.Expired() != 3 {
		t.Fatalf("Expired = %d, want 3", w.Expired())
	}
	snap1, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range snap1.Centroids {
		if math.Abs(c[0]) > 5 {
			t.Fatalf("phase-1 snapshot has centroid at %g, want near 0", c[0])
		}
	}
	// Phase 2: the stream jumps to 1000; after 3 more chunks the old
	// regime must have fully expired.
	push(1000, 300)
	if w.Expired() != 6 {
		t.Fatalf("Expired = %d, want 6", w.Expired())
	}
	snap2, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range snap2.Centroids {
		if math.Abs(c[0]-1000) > 5 {
			t.Fatalf("phase-2 snapshot still remembers old regime: centroid at %g", c[0])
		}
	}
}

func TestWindowedSnapshotIncludesBufferedTail(t *testing.T) {
	w, err := NewWindowedClusterer(1, WindowConfig{
		K: 2, ChunkPoints: 100, WindowChunks: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fewer points than one chunk: snapshot must still work from the
	// raw buffered tail.
	r := rng.New(3)
	for i := 0; i < 50; i++ {
		x := float64(i%2) * 100
		if err := w.Push([]float64{x + r.NormFloat64()*0.1}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var near0, near100 bool
	for _, c := range snap.Centroids {
		if math.Abs(c[0]) < 5 {
			near0 = true
		}
		if math.Abs(c[0]-100) < 5 {
			near100 = true
		}
	}
	if !near0 || !near100 {
		t.Fatalf("tail-only snapshot missed structure: %v", snap.Centroids)
	}
}

func TestWindowedSnapshotErrors(t *testing.T) {
	w, err := NewWindowedClusterer(1, WindowConfig{K: 5, ChunkPoints: 10, WindowChunks: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Snapshot(); err == nil {
		t.Fatal("empty window should error")
	}
	for i := 0; i < 3; i++ {
		if err := w.Push([]float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Snapshot(); err == nil {
		t.Fatal("3 representatives with k=5 should error")
	}
	if err := w.Push([]float64{1, 2}); err == nil {
		t.Fatal("wrong-dim push should error")
	}
}

func TestWindowedSnapshotIsRepeatable(t *testing.T) {
	w, err := NewWindowedClusterer(1, WindowConfig{K: 3, ChunkPoints: 60, WindowChunks: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	for i := 0; i < 200; i++ {
		if err := w.Push([]float64{r.NormFloat64() * 10}); err != nil {
			t.Fatal(err)
		}
	}
	a, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if a.MSE != b.MSE {
		t.Fatalf("back-to-back snapshots differ: %g vs %g", a.MSE, b.MSE)
	}
	// Snapshot must not consume stream state.
	if w.Consumed() != 200 {
		t.Fatalf("Consumed = %d", w.Consumed())
	}
}
