package core

import (
	"errors"
	"fmt"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// MergeMode selects how the merge operator combines partial results
// (§3.3): collectively over all centroids at once (the paper's choice,
// statistically fair to every partition) or incrementally as each
// partition's centroids arrive (treats early chunks preferentially;
// provided for the A1 ablation).
type MergeMode int

const (
	// MergeCollective clusters the union of all partitions' weighted
	// centroids in one weighted k-means.
	MergeCollective MergeMode = iota
	// MergeIncremental folds each arriving centroid set into the
	// running representation with a weighted k-means per arrival.
	MergeIncremental
)

// String names the mode for benchmark tables.
func (m MergeMode) String() string {
	switch m {
	case MergeCollective:
		return "collective"
	case MergeIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("MergeMode(%d)", int(m))
	}
}

// MergeConfig parameterizes the merge k-means operator.
type MergeConfig struct {
	// K is the final number of centroids for the grid cell.
	K int
	// Epsilon is the ΔMSE convergence threshold (0 = paper's 1e-9).
	Epsilon float64
	// MaxIterations caps Lloyd iterations (0 = default).
	MaxIterations int
	// Seeder overrides initialization; nil selects HeaviestSeeder, the
	// paper's largest-weight initialization (§3.3 step 1).
	Seeder kmeans.Seeder
	// Mode selects collective (default, paper) or incremental merging.
	Mode MergeMode
	// Accelerate selects Hamerly's bound-based Lloyd iteration.
	Accelerate bool
	// Workers, when >= 2, shards each merge Lloyd iteration's assignment
	// sweep across that many goroutines. Deterministic per worker count;
	// across counts results agree up to floating-point summation order.
	Workers int
	// Solver selects the merge iteration kernel ("" or kmeans.SolverLloyd
	// = full Lloyd; kmeans.SolverMiniBatch = sampled gradient steps with
	// per-center learning rates — the warm-startable fast-query path).
	Solver string
}

func (c MergeConfig) validate() error {
	if c.K <= 0 {
		return fmt.Errorf("core: merge K must be positive, got %d", c.K)
	}
	if err := kmeans.ValidateSolver(c.Solver); err != nil {
		return err
	}
	return nil
}

func (c MergeConfig) kmeansConfig() kmeans.Config {
	seeder := c.Seeder
	if seeder == nil {
		seeder = kmeans.HeaviestSeeder{}
	}
	return kmeans.Config{
		K:             c.K,
		Epsilon:       c.Epsilon,
		MaxIterations: c.MaxIterations,
		Seeder:        seeder,
		Accelerate:    c.Accelerate,
		Workers:       c.Workers,
		Solver:        c.Solver,
	}
}

// MergeResult is the final cell representation produced by the merge
// operator.
type MergeResult struct {
	// Centroids are the cell's final k centroids.
	Centroids []vector.Vector
	// Weights[j] is the total data weight merged into centroid j; the
	// sum equals the total number of points in the cell.
	Weights []float64
	// MSE is the paper's E_pm normalized by total weight: the weighted
	// mean squared distance between the merged centroids and the
	// partial-stage weighted centroids assigned to them.
	MSE float64
	// Iterations counts Lloyd iterations in the merge step (summed over
	// arrivals in incremental mode).
	Iterations int
	// Inputs is the number of weighted centroids consumed.
	Inputs int
	// Elapsed is the wall-clock time of the merge step.
	Elapsed time.Duration
}

// MergeKMeans combines the weighted centroid sets of all partitions into
// the final cell clustering. In collective mode all sets are pooled and a
// single weighted k-means runs over them; in incremental mode the sets
// are folded in arrival order. r is only consulted when a randomized
// seeder is configured.
func MergeKMeans(parts []*dataset.WeightedSet, cfg MergeConfig, r *rng.RNG) (*MergeResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, errors.New("core: merge requires at least one partial result")
	}
	dim := parts[0].Dim()
	for i, p := range parts {
		if p.Dim() != dim {
			return nil, fmt.Errorf("core: partial result %d has dim %d, want %d", i, p.Dim(), dim)
		}
	}
	start := time.Now()
	switch cfg.Mode {
	case MergeCollective:
		return mergeCollective(parts, cfg, r, dim, start)
	case MergeIncremental:
		return mergeIncremental(parts, cfg, r, dim, start)
	default:
		return nil, fmt.Errorf("core: unknown merge mode %d", int(cfg.Mode))
	}
}

func mergeCollective(parts []*dataset.WeightedSet, cfg MergeConfig, r *rng.RNG, dim int, start time.Time) (*MergeResult, error) {
	pool, err := dataset.NewWeightedSet(dim)
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		if err := pool.Append(p); err != nil {
			return nil, err
		}
	}
	inputs := pool.Len()
	res, err := runMergeKMeans(pool, cfg, r)
	if err != nil {
		return nil, err
	}
	return &MergeResult{
		Centroids:  res.Centroids,
		Weights:    res.Weights,
		MSE:        res.MSE,
		Iterations: res.Iterations,
		Inputs:     inputs,
		Elapsed:    time.Since(start),
	}, nil
}

func mergeIncremental(parts []*dataset.WeightedSet, cfg MergeConfig, r *rng.RNG, dim int, start time.Time) (*MergeResult, error) {
	var (
		current    *dataset.WeightedSet
		iterations int
		inputs     int
		lastRes    *kmeans.Result
	)
	for _, p := range parts {
		inputs += p.Len()
		if current == nil {
			current = dataset.MustNewWeightedSet(dim)
			if err := current.Append(p); err != nil {
				return nil, err
			}
		} else {
			if err := current.Append(p); err != nil {
				return nil, err
			}
		}
		if current.Len() < cfg.K {
			// Not enough material to form k clusters yet; keep pooling.
			continue
		}
		res, err := runMergeKMeans(current, cfg, r)
		if err != nil {
			return nil, err
		}
		iterations += res.Iterations
		lastRes = res
		// Collapse the pool to the merged representation: earlier
		// chunks now only survive through these k weighted centroids —
		// exactly the preferential treatment §3.3 warns about.
		collapsed, err := res.WeightedCentroids(dim)
		if err != nil {
			return nil, err
		}
		current = collapsed
	}
	if lastRes == nil {
		return nil, fmt.Errorf("core: incremental merge never accumulated %d centroids", cfg.K)
	}
	return &MergeResult{
		Centroids:  lastRes.Centroids,
		Weights:    lastRes.Weights,
		MSE:        lastRes.MSE,
		Iterations: iterations,
		Inputs:     inputs,
		Elapsed:    time.Since(start),
	}, nil
}

func runMergeKMeans(pool *dataset.WeightedSet, cfg MergeConfig, r *rng.RNG) (*kmeans.Result, error) {
	if pool.Len() < cfg.K {
		return nil, fmt.Errorf("core: merge pool has %d centroids, need at least k=%d", pool.Len(), cfg.K)
	}
	res, err := kmeans.Run(pool, cfg.kmeansConfig(), r)
	if err != nil {
		return nil, fmt.Errorf("core: merge k-means: %w", err)
	}
	return res, nil
}
