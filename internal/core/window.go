package core

import (
	"fmt"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/rng"
)

// WindowedClusterer extends partial/merge k-means to the continuous-
// query regime of the paper's closest related work (LOCALSEARCH, §2.2):
// an unbounded stream is consumed chunk by chunk, but only the W most
// recent chunk summaries are retained, so the clustering answers
// "what does the stream look like *now*" instead of "overall". Because
// chunks are reduced to weighted centroids, expiring a chunk is O(1) —
// the collective merge is recomputed from the surviving summaries on
// demand, preserving §3.3's fairness between all live chunks.
type WindowedClusterer struct {
	k        int
	window   int
	cfg      PartialConfig
	merge    MergeConfig
	dim      int
	rng      *rng.RNG
	buffer   *dataset.Set
	chunkCap int
	// ring of the W most recent chunk summaries
	summaries []*dataset.WeightedSet
	consumed  int
	expired   int
	// idx maintains the merged answer between queries (snapshot.go).
	idx *snapshotIndex
}

// WindowConfig parameterizes a WindowedClusterer.
type WindowConfig struct {
	// K is the cluster count of every partial and merge step.
	K int
	// ChunkPoints is the memory budget per chunk.
	ChunkPoints int
	// WindowChunks is W, the number of recent chunks the clustering
	// covers.
	WindowChunks int
	// Restarts, Epsilon, MaxIterations, Accelerate tune the inner
	// k-means (Restarts 0 = 1).
	Restarts      int
	Epsilon       float64
	MaxIterations int
	Accelerate    bool
	// Seed drives all randomness.
	Seed uint64
	// MergeSolver selects the snapshot merge kernel
	// (kmeans.SolverNames; "" = a full Lloyd merge per query). With
	// kmeans.SolverMiniBatch the clusterer maintains the merged answer
	// incrementally: each rotation warm-starts from the previous
	// answer and refines with mini-batch steps focused on the changed
	// summary, so queries return in O(k·d).
	MergeSolver string
	// ResyncEvery bounds warm-start drift: every Nth rotation replaces
	// the maintained answer with a full cold merge (0 =
	// DefaultResyncEvery; only meaningful with MergeSolver
	// "minibatch").
	ResyncEvery int
}

// NewWindowedClusterer validates the configuration.
func NewWindowedClusterer(dim int, cfg WindowConfig) (*WindowedClusterer, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("core: dim must be positive, got %d", dim)
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", cfg.K)
	}
	if cfg.ChunkPoints < cfg.K {
		return nil, fmt.Errorf("core: ChunkPoints %d below K %d", cfg.ChunkPoints, cfg.K)
	}
	if cfg.WindowChunks <= 0 {
		return nil, fmt.Errorf("core: WindowChunks must be positive, got %d", cfg.WindowChunks)
	}
	if err := kmeans.ValidateSolver(cfg.MergeSolver); err != nil {
		return nil, err
	}
	if cfg.ResyncEvery < 0 {
		return nil, fmt.Errorf("core: ResyncEvery must be non-negative, got %d", cfg.ResyncEvery)
	}
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	buffer, err := dataset.NewSet(dim)
	if err != nil {
		return nil, err
	}
	merge := MergeConfig{
		K:             cfg.K,
		Epsilon:       cfg.Epsilon,
		MaxIterations: cfg.MaxIterations,
		Seeder:        kmeans.HeaviestSeeder{},
		Accelerate:    cfg.Accelerate,
		Solver:        cfg.MergeSolver,
	}
	return &WindowedClusterer{
		k:      cfg.K,
		window: cfg.WindowChunks,
		cfg: PartialConfig{
			K:             cfg.K,
			Restarts:      restarts,
			Epsilon:       cfg.Epsilon,
			MaxIterations: cfg.MaxIterations,
			Accelerate:    cfg.Accelerate,
		},
		merge:    merge,
		dim:      dim,
		rng:      rng.New(cfg.Seed),
		buffer:   buffer,
		chunkCap: cfg.ChunkPoints,
		idx:      newSnapshotIndex(dim, merge, cfg.ResyncEvery),
	}, nil
}

// Dim returns the point dimensionality.
func (w *WindowedClusterer) Dim() int { return w.dim }

// Consumed returns the total number of points pushed.
func (w *WindowedClusterer) Consumed() int { return w.consumed }

// Expired returns the number of chunk summaries that have fallen out of
// the window.
func (w *WindowedClusterer) Expired() int { return w.expired }

// LiveChunks returns the number of summaries currently in the window.
func (w *WindowedClusterer) LiveChunks() int { return len(w.summaries) }

// SnapshotStats reports the snapshot index's activity counters.
func (w *WindowedClusterer) SnapshotStats() SnapshotStats { return w.idx.stats }

// Push consumes one point; a full buffer becomes a chunk summary and the
// oldest summary expires when the window overflows.
func (w *WindowedClusterer) Push(point []float64) error {
	if len(point) != w.dim {
		return fmt.Errorf("core: point dim %d, want %d", len(point), w.dim)
	}
	// Add copies the point into the buffer's flat slab, so no
	// intermediate copy is needed and a steady-state push allocates
	// nothing once the slab has grown to the chunk capacity.
	if err := w.buffer.Add(point); err != nil {
		return err
	}
	w.consumed++
	// The buffered tail is part of what a query sees, so every push
	// dirties the cached snapshot.
	w.idx.invalidate()
	if w.buffer.Len() >= w.chunkCap {
		return w.rotate()
	}
	return nil
}

func (w *WindowedClusterer) rotate() error {
	pr, err := PartialKMeans(w.buffer, w.cfg, w.rng.Split())
	if err != nil {
		return err
	}
	// The summary owns fresh centroid storage, so the chunk buffer can
	// be truncated in place and its slab reused by the next chunk.
	w.buffer.Reset()
	w.summaries = append(w.summaries, pr.Centroids)
	if len(w.summaries) > w.window {
		w.summaries[0] = nil
		w.summaries = w.summaries[1:]
		w.expired++
	}
	return w.idx.admit(w.summaries)
}

// Snapshot returns the clustering of the window's live summaries plus
// any buffered tail (kept as unit-weight centroids so recent data is
// never invisible). The clusterer keeps running; Snapshot can be called
// any number of times, and with nothing changed since the last call it
// returns the same cached result without re-merging. Snapshots are a
// pure function of stream position — querying never perturbs the
// stream's RNG sequence or the maintained state, so any query
// frequency sees identical answers (snapshot.go has the contract).
func (w *WindowedClusterer) Snapshot() (*MergeResult, error) {
	return w.idx.snapshot(w.buffer, w.consumed)
}

// WindowState is everything a WindowedClusterer must persist to resume
// bit-identically: the buffered tail, the window ring of chunk
// summaries, the stream counters, the RNG state, and the snapshot
// index's maintained answer plus activity counters. Configuration is
// deliberately absent — the restoring caller supplies the same
// WindowConfig, mirroring the stream-clusterer checkpoint contract.
type WindowState struct {
	// Consumed, Expired, Rotations are the stream-position counters:
	// points pushed, summaries fallen out of the window, and chunk
	// rotations folded into the snapshot index.
	Consumed  int
	Expired   int
	Rotations int
	// RNGState is the serialized per-stream random generator
	// (rng.RNG.MarshalBinary).
	RNGState []byte
	// Summaries is the window ring in oldest-first order.
	Summaries []*dataset.WeightedSet
	// Buffer is the partially filled chunk.
	Buffer *dataset.Set
	// Stats are the snapshot index's lifetime work counters.
	Stats SnapshotStats
	// Base is the warm path's eagerly maintained answer, nil when the
	// index has none (cold solver, or fewer than k representatives).
	Base *MergeResult
}

// State captures the clusterer's persistent state. The returned
// summaries and buffer alias the live structures (summaries are
// immutable once rotated; the buffer must be encoded before the next
// Push), so callers serialize before mutating the clusterer again.
func (w *WindowedClusterer) State() (*WindowState, error) {
	rngState, err := w.rng.MarshalBinary()
	if err != nil {
		return nil, err
	}
	summaries := make([]*dataset.WeightedSet, len(w.summaries))
	copy(summaries, w.summaries)
	return &WindowState{
		Consumed:  w.consumed,
		Expired:   w.expired,
		Rotations: w.idx.rotations,
		RNGState:  rngState,
		Summaries: summaries,
		Buffer:    w.buffer,
		Stats:     w.idx.stats,
		Base:      w.idx.base,
	}, nil
}

// RestoreWindowedClusterer rebuilds a clusterer from a captured state.
// The caller supplies the same WindowConfig used originally; a resumed
// clusterer's future pushes and snapshots are bit-identical to one that
// was never interrupted at the same stream position.
func RestoreWindowedClusterer(dim int, cfg WindowConfig, st *WindowState) (*WindowedClusterer, error) {
	w, err := NewWindowedClusterer(dim, cfg)
	if err != nil {
		return nil, err
	}
	if st.Consumed < 0 || st.Expired < 0 || st.Rotations < 0 {
		return nil, fmt.Errorf("core: negative window-state counter")
	}
	if len(st.Summaries) > cfg.WindowChunks {
		return nil, fmt.Errorf("core: window state holds %d summaries, window is %d chunks", len(st.Summaries), cfg.WindowChunks)
	}
	for i, s := range st.Summaries {
		if s.Dim() != dim {
			return nil, fmt.Errorf("core: window-state summary %d has dim %d, want %d", i, s.Dim(), dim)
		}
	}
	if st.Buffer.Dim() != dim {
		return nil, fmt.Errorf("core: window-state buffer has dim %d, want %d", st.Buffer.Dim(), dim)
	}
	if st.Buffer.Len() > cfg.ChunkPoints {
		return nil, fmt.Errorf("core: window-state buffer holds %d points, chunk budget is %d", st.Buffer.Len(), cfg.ChunkPoints)
	}
	if st.Base != nil && len(st.Base.Centroids) != cfg.K {
		return nil, fmt.Errorf("core: window-state base has %d centroids, want k=%d", len(st.Base.Centroids), cfg.K)
	}
	if err := w.rng.UnmarshalBinary(st.RNGState); err != nil {
		return nil, err
	}
	w.consumed = st.Consumed
	w.expired = st.Expired
	w.buffer = st.Buffer
	w.summaries = st.Summaries
	if err := w.idx.restore(w.summaries, st.Rotations, st.Stats, st.Base); err != nil {
		return nil, err
	}
	return w, nil
}
