package core

import (
	"errors"
	"fmt"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/rng"
)

// WindowedClusterer extends partial/merge k-means to the continuous-
// query regime of the paper's closest related work (LOCALSEARCH, §2.2):
// an unbounded stream is consumed chunk by chunk, but only the W most
// recent chunk summaries are retained, so the clustering answers
// "what does the stream look like *now*" instead of "overall". Because
// chunks are reduced to weighted centroids, expiring a chunk is O(1) —
// the collective merge is recomputed from the surviving summaries on
// demand, preserving §3.3's fairness between all live chunks.
type WindowedClusterer struct {
	k        int
	window   int
	cfg      PartialConfig
	merge    MergeConfig
	dim      int
	rng      *rng.RNG
	buffer   *dataset.Set
	chunkCap int
	// ring of the W most recent chunk summaries
	summaries []*dataset.WeightedSet
	consumed  int
	expired   int
}

// WindowConfig parameterizes a WindowedClusterer.
type WindowConfig struct {
	// K is the cluster count of every partial and merge step.
	K int
	// ChunkPoints is the memory budget per chunk.
	ChunkPoints int
	// WindowChunks is W, the number of recent chunks the clustering
	// covers.
	WindowChunks int
	// Restarts, Epsilon, MaxIterations, Accelerate tune the inner
	// k-means (Restarts 0 = 1).
	Restarts      int
	Epsilon       float64
	MaxIterations int
	Accelerate    bool
	// Seed drives all randomness.
	Seed uint64
}

// NewWindowedClusterer validates the configuration.
func NewWindowedClusterer(dim int, cfg WindowConfig) (*WindowedClusterer, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("core: dim must be positive, got %d", dim)
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", cfg.K)
	}
	if cfg.ChunkPoints < cfg.K {
		return nil, fmt.Errorf("core: ChunkPoints %d below K %d", cfg.ChunkPoints, cfg.K)
	}
	if cfg.WindowChunks <= 0 {
		return nil, fmt.Errorf("core: WindowChunks must be positive, got %d", cfg.WindowChunks)
	}
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	buffer, err := dataset.NewSet(dim)
	if err != nil {
		return nil, err
	}
	return &WindowedClusterer{
		k:      cfg.K,
		window: cfg.WindowChunks,
		cfg: PartialConfig{
			K:             cfg.K,
			Restarts:      restarts,
			Epsilon:       cfg.Epsilon,
			MaxIterations: cfg.MaxIterations,
			Accelerate:    cfg.Accelerate,
		},
		merge: MergeConfig{
			K:             cfg.K,
			Epsilon:       cfg.Epsilon,
			MaxIterations: cfg.MaxIterations,
			Seeder:        kmeans.HeaviestSeeder{},
			Accelerate:    cfg.Accelerate,
		},
		dim:      dim,
		rng:      rng.New(cfg.Seed),
		buffer:   buffer,
		chunkCap: cfg.ChunkPoints,
	}, nil
}

// Consumed returns the total number of points pushed.
func (w *WindowedClusterer) Consumed() int { return w.consumed }

// Expired returns the number of chunk summaries that have fallen out of
// the window.
func (w *WindowedClusterer) Expired() int { return w.expired }

// LiveChunks returns the number of summaries currently in the window.
func (w *WindowedClusterer) LiveChunks() int { return len(w.summaries) }

// Push consumes one point; a full buffer becomes a chunk summary and the
// oldest summary expires when the window overflows.
func (w *WindowedClusterer) Push(point []float64) error {
	if len(point) != w.dim {
		return fmt.Errorf("core: point dim %d, want %d", len(point), w.dim)
	}
	p := make([]float64, w.dim)
	copy(p, point)
	if err := w.buffer.Add(p); err != nil {
		return err
	}
	w.consumed++
	if w.buffer.Len() >= w.chunkCap {
		return w.rotate()
	}
	return nil
}

func (w *WindowedClusterer) rotate() error {
	pr, err := PartialKMeans(w.buffer, w.cfg, w.rng.Split())
	if err != nil {
		return err
	}
	w.summaries = append(w.summaries, pr.Centroids)
	if len(w.summaries) > w.window {
		w.summaries = w.summaries[1:]
		w.expired++
	}
	fresh, err := dataset.NewSet(w.dim)
	if err != nil {
		return err
	}
	w.buffer = fresh
	return nil
}

// Snapshot merges the window's live summaries (plus any buffered tail
// with at least one point, kept as unit-weight centroids so recent data
// is never invisible) into the current clustering. The clusterer keeps
// running; Snapshot can be called any number of times.
func (w *WindowedClusterer) Snapshot() (*MergeResult, error) {
	parts := make([]*dataset.WeightedSet, 0, len(w.summaries)+1)
	parts = append(parts, w.summaries...)
	if w.buffer.Len() > 0 {
		parts = append(parts, dataset.Unweighted(w.buffer))
	}
	if len(parts) == 0 {
		return nil, errors.New("core: window is empty")
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total < w.k {
		return nil, fmt.Errorf("core: window holds %d representatives, need at least k=%d", total, w.k)
	}
	// Snapshot must not perturb the ongoing stream's RNG sequence:
	// derive a throwaway generator keyed on progress. (Heaviest seeding
	// is deterministic anyway; the RNG covers custom seeders.)
	snapRNG := rng.New(uint64(w.consumed)*0x9e3779b97f4a7c15 + 1)
	return MergeKMeans(parts, w.merge, snapRNG)
}
