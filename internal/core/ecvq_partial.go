package core

import (
	"errors"
	"fmt"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/ecvq"
	"streamkm/internal/rng"
)

// ECVQPartialConfig parameterizes the ECVQ-based partial operator — the
// extension §3.3's Remarks propose: "ECVQ-based algorithms do not fix
// the parameter k at the beginning ... but define a maximum k, and use a
// penalizing function ... This allows to find an optimal k for a
// partition on the fly." Small partitions emit fewer weighted centroids,
// large ones more; the merge step consumes them unchanged.
type ECVQPartialConfig struct {
	// MaxK is the per-partition centroid ceiling.
	MaxK int
	// Lambda is the ECVQ rate penalty; 0 behaves like plain k-means
	// with k = MaxK.
	Lambda float64
	// Restarts tries several random seed sets, keeping the minimum-cost
	// quantizer (0 = 1).
	Restarts int
	// Epsilon and MaxIterations tune each ECVQ run.
	Epsilon       float64
	MaxIterations int
}

func (c ECVQPartialConfig) validate() error {
	if c.MaxK <= 0 {
		return fmt.Errorf("core: ECVQ MaxK must be positive, got %d", c.MaxK)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("core: ECVQ Lambda must be non-negative, got %g", c.Lambda)
	}
	return nil
}

// ECVQPartialResult reports one partition's adaptive reduction.
type ECVQPartialResult struct {
	// Centroids are the surviving weighted centroids (K <= MaxK).
	Centroids *dataset.WeightedSet
	// K is the surviving codebook size.
	K int
	// Cost is the winning run's Lagrangian (distortion + λ·rate).
	Cost float64
	// Starved counts discarded seeds in the winning run.
	Starved int
	// Points is the partition size.
	Points int
	// Elapsed is the wall-clock time of this partial step.
	Elapsed time.Duration
}

// ECVQPartial reduces one partition with entropy-constrained VQ instead
// of fixed-k k-means.
func ECVQPartial(chunk *dataset.Set, cfg ECVQPartialConfig, r *rng.RNG) (*ECVQPartialResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if chunk.Len() == 0 {
		return nil, errors.New("core: empty partition")
	}
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	start := time.Now()
	weighted := dataset.Unweighted(chunk)
	var best *ecvq.Result
	for run := 0; run < restarts; run++ {
		res, err := ecvq.Quantize(weighted, ecvq.Config{
			MaxK:          cfg.MaxK,
			Lambda:        cfg.Lambda,
			Epsilon:       cfg.Epsilon,
			MaxIterations: cfg.MaxIterations,
		}, r)
		if err != nil {
			return nil, fmt.Errorf("core: ECVQ partial run %d: %w", run, err)
		}
		if best == nil || res.Cost < best.Cost {
			best = res
		}
	}
	wc, err := best.WeightedCentroids(chunk.Dim())
	if err != nil {
		return nil, err
	}
	return &ECVQPartialResult{
		Centroids: wc,
		K:         best.K,
		Cost:      best.Cost,
		Starved:   best.Starved,
		Points:    chunk.Len(),
		Elapsed:   time.Since(start),
	}, nil
}

// ClusterECVQ runs the full pipeline with ECVQ partial reduction: chunks
// are reduced adaptively (k chosen per partition), then the standard
// collective merge produces the final k centroids. opts.K is the merge
// k; ecfg.MaxK bounds the per-partition codebooks.
//
// Deprecated: ECVQ is now a first-class Summarizer operator; set
// Options.Summarizer = SummarizerECVQ (with ECVQMaxK/ECVQLambda) and
// call Cluster, or build the operator with NewECVQSummarizer. This
// wrapper survives only for old callers — scripts/check.sh rejects new
// uses outside internal/core.
func ClusterECVQ(points *dataset.Set, opts Options, ecfg ECVQPartialConfig) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	summ, err := NewECVQSummarizer(ecfg)
	if err != nil {
		return nil, err
	}
	return clusterWith(points, opts, summ)
}
