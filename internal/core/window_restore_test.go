package core

import (
	"math"
	"testing"

	"streamkm/internal/rng"
)

// windowPoints derives a deterministic point stream for restore tests.
func windowPoints(n, dim int, seed uint64) [][]float64 {
	r := rng.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		center := float64(r.Intn(4)) * 10
		for d := range p {
			p[d] = center + r.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

func mergeResultsEqual(t *testing.T, a, b *MergeResult) {
	t.Helper()
	if len(a.Centroids) != len(b.Centroids) {
		t.Fatalf("centroid count %d != %d", len(a.Centroids), len(b.Centroids))
	}
	for i := range a.Centroids {
		for d := range a.Centroids[i] {
			if a.Centroids[i][d] != b.Centroids[i][d] {
				t.Fatalf("centroid %d dim %d: %v != %v", i, d, a.Centroids[i][d], b.Centroids[i][d])
			}
		}
		if a.Weights[i] != b.Weights[i] {
			t.Fatalf("weight %d: %v != %v", i, a.Weights[i], b.Weights[i])
		}
	}
	if a.MSE != b.MSE && !(math.IsNaN(a.MSE) && math.IsNaN(b.MSE)) {
		t.Fatalf("MSE %v != %v", a.MSE, b.MSE)
	}
}

// TestWindowRestoreBitIdentical: capture state mid-stream, restore, push
// the identical suffix into both clusterers, and require bit-identical
// snapshots at every position — for both the cold (lloyd) and warm
// (minibatch) snapshot-index paths, and at capture points that land
// mid-chunk as well as on a rotation boundary.
func TestWindowRestoreBitIdentical(t *testing.T) {
	const dim = 3
	for _, solver := range []string{"", "minibatch"} {
		for _, cut := range []int{57, 120, 301} {
			cfg := WindowConfig{
				K: 4, ChunkPoints: 40, WindowChunks: 3,
				Restarts: 2, Seed: 11, MergeSolver: solver,
			}
			pts := windowPoints(500, dim, 99)

			ref, err := NewWindowedClusterer(dim, cfg)
			if err != nil {
				t.Fatal(err)
			}
			live, err := NewWindowedClusterer(dim, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pts[:cut] {
				if err := ref.Push(p); err != nil {
					t.Fatal(err)
				}
				if err := live.Push(p); err != nil {
					t.Fatal(err)
				}
			}
			st, err := live.State()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreWindowedClusterer(dim, cfg, st)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Consumed() != ref.Consumed() || restored.Expired() != ref.Expired() {
				t.Fatalf("counters diverge: consumed %d/%d expired %d/%d",
					restored.Consumed(), ref.Consumed(), restored.Expired(), ref.Expired())
			}
			for i, p := range pts[cut:] {
				if err := ref.Push(p); err != nil {
					t.Fatal(err)
				}
				if err := restored.Push(p); err != nil {
					t.Fatal(err)
				}
				if i%37 != 0 {
					continue
				}
				a, err := ref.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				b, err := restored.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				mergeResultsEqual(t, a, b)
			}
			a, err := ref.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			b, err := restored.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			mergeResultsEqual(t, a, b)
		}
	}
}

// TestWindowRestoreRejectsMismatch: a state captured under one shape
// must not restore into an incompatible configuration.
func TestWindowRestoreRejectsMismatch(t *testing.T) {
	const dim = 3
	cfg := WindowConfig{K: 4, ChunkPoints: 40, WindowChunks: 3, Seed: 1}
	w, err := NewWindowedClusterer(dim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range windowPoints(200, dim, 5) {
		if err := w.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	st, err := w.State()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreWindowedClusterer(dim, WindowConfig{K: 4, ChunkPoints: 40, WindowChunks: 2, Seed: 1}, st); err == nil {
		t.Fatal("restore into a smaller window should fail")
	}
	if _, err := RestoreWindowedClusterer(dim+1, cfg, st); err == nil {
		t.Fatal("restore into a different dimensionality should fail")
	}
}
