// Package core implements the paper's primary contribution: the
// partial/merge k-means algorithm (§3). A grid cell's points are divided
// into p partitions that each fit in volatile memory; the partial
// k-means operator clusters each partition independently (with R seed-set
// restarts, keeping the minimum-MSE representation) and emits k weighted
// centroids; the merge k-means operator clusters the union of all
// weighted centroids to produce the cell's final representation.
package core

import (
	"errors"
	"fmt"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/rng"
)

// PartialConfig parameterizes the partial k-means operator (§3.2).
type PartialConfig struct {
	// K is the number of centroids per partition; the paper fixes the
	// same k for all partitions of a grid cell.
	K int
	// Restarts is the number of random seed sets tried per partition;
	// the minimum-MSE representation is kept (paper: 10).
	Restarts int
	// Epsilon is the ΔMSE convergence threshold (0 = paper's 1e-9).
	Epsilon float64
	// MaxIterations caps Lloyd iterations per run (0 = default).
	MaxIterations int
	// Seeder overrides the initial-centroid strategy (nil = random, as
	// in the paper).
	Seeder kmeans.Seeder
	// Accelerate selects Hamerly's bound-based Lloyd iteration.
	Accelerate bool
	// Workers, when >= 2, fans the Restarts runs across that many
	// goroutines (§3.4's option 2 applied inside one partial operator).
	// Results are bit-identical to serial execution for any value.
	Workers int
}

func (c PartialConfig) validate() error {
	if c.K <= 0 {
		return fmt.Errorf("core: partial K must be positive, got %d", c.K)
	}
	if c.Restarts <= 0 {
		return fmt.Errorf("core: partial restarts must be positive, got %d", c.Restarts)
	}
	return nil
}

func (c PartialConfig) kmeansConfig() kmeans.Config {
	return kmeans.Config{
		K:             c.K,
		Epsilon:       c.Epsilon,
		MaxIterations: c.MaxIterations,
		Seeder:        c.Seeder,
		Accelerate:    c.Accelerate,
		Parallel:      c.Workers,
	}
}

// PartialResult is one partition's clustering: the paper's
// {(c_1j, w_1j), ..., (c_kj, w_kj)} plus diagnostics.
type PartialResult struct {
	// Centroids holds the winning run's centroids weighted by assigned
	// point counts; sum of weights equals the partition size N_j.
	Centroids *dataset.WeightedSet
	// MSE is the winning run's mean square error within the partition.
	MSE float64
	// Iterations sums Lloyd iterations across all restarts.
	Iterations int
	// Restarts is the number of seed-set restarts executed (cfg.Restarts).
	Restarts int
	// Converged counts the restarts whose run met the ΔMSE criterion
	// before MaxIterations.
	Converged int
	// DeltaMSE is the winning run's final MSE improvement — the
	// residual its convergence criterion accepted (see kmeans.Result).
	DeltaMSE float64
	// Points is the partition size N_j.
	Points int
	// Elapsed is the wall-clock time of the partial step.
	Elapsed time.Duration
}

// PartialKMeans clusters one partition: it runs k-means Restarts times
// with different random seed sets and returns the weighted centroids of
// the minimum-MSE representation.
func PartialKMeans(chunk *dataset.Set, cfg PartialConfig, r *rng.RNG) (*PartialResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if chunk.Len() == 0 {
		return nil, errors.New("core: empty partition")
	}
	if chunk.Len() < cfg.K {
		return nil, fmt.Errorf("core: partition of %d points cannot seed k=%d (choose fewer splits or smaller k)",
			chunk.Len(), cfg.K)
	}
	start := time.Now()
	weighted := dataset.Unweighted(chunk)
	rr, err := kmeans.RunRestarts(weighted, cfg.kmeansConfig(), cfg.Restarts, r)
	if err != nil {
		return nil, fmt.Errorf("core: partial k-means: %w", err)
	}
	wc, err := rr.Best.WeightedCentroids(chunk.Dim())
	if err != nil {
		return nil, err
	}
	return &PartialResult{
		Centroids:  wc,
		MSE:        rr.Best.MSE,
		Iterations: rr.TotalIterations,
		Restarts:   cfg.Restarts,
		Converged:  rr.Converged,
		DeltaMSE:   rr.Best.DeltaMSE,
		Points:     chunk.Len(),
		Elapsed:    time.Since(start),
	}, nil
}
