package core

import (
	"math"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
)

func TestCoresetTreeValidation(t *testing.T) {
	if _, err := NewCoresetTreeSummarizer(0); err == nil {
		t.Fatal("size 0 accepted")
	}
	s, err := NewCoresetTreeSummarizer(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Summarize(dataset.MustNewSet(3), rng.New(1)); err == nil {
		t.Fatal("empty chunk accepted")
	}
	chunk := blobCell(t, 4, 100, 1)
	if _, err := s.Summarize(chunk, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestCoresetTreePassthroughSmallChunk(t *testing.T) {
	chunk := blobCell(t, 4, 30, 2)
	s, err := NewCoresetTreeSummarizer(50)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := s.Summarize(chunk, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// n <= m: every point survives with unit weight, cost 0.
	if pr.Centroids.Len() != 30 {
		t.Fatalf("len = %d", pr.Centroids.Len())
	}
	for i := 0; i < pr.Centroids.Len(); i++ {
		if pr.Centroids.WeightAt(i) != 1 {
			t.Fatalf("point %d weight %v", i, pr.Centroids.WeightAt(i))
		}
		for d, x := range chunk.At(i) {
			if pr.Centroids.VecAt(i)[d] != x {
				t.Fatalf("point %d dim %d differs", i, d)
			}
		}
	}
	if pr.MSE != 0 {
		t.Fatalf("passthrough MSE = %v", pr.MSE)
	}
}

func TestCoresetTreeInvariants(t *testing.T) {
	const n, m = 500, 40
	chunk := blobCell(t, 5, n, 4)
	s, err := NewCoresetTreeSummarizer(m)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := s.Summarize(chunk, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Centroids.Len() != m {
		t.Fatalf("summary size %d, want %d", pr.Centroids.Len(), m)
	}
	// The summary's mass equals the chunk's point count — the merge
	// contract every summarizer shares. Tree weights are integer member
	// counts, so the sum is exact.
	if got := pr.Centroids.TotalWeight(); got != n {
		t.Fatalf("total weight %v, want %d", got, n)
	}
	for i := 0; i < pr.Centroids.Len(); i++ {
		if w := pr.Centroids.WeightAt(i); w < 1 || w != math.Trunc(w) {
			t.Fatalf("rep %d weight %v not a positive integer", i, w)
		}
	}
	if pr.Points != n || pr.Iterations != 0 {
		t.Fatalf("stats: %+v", pr)
	}
	if pr.MSE < 0 || math.IsNaN(pr.MSE) {
		t.Fatalf("MSE = %v", pr.MSE)
	}
}

func TestCoresetTreeDeterministic(t *testing.T) {
	chunk := blobCell(t, 5, 400, 6)
	s, err := NewCoresetTreeSummarizer(32)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Summarize(chunk, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Summarize(chunk, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	assertSameWeightedSets(t, "coreset", a.Centroids, b.Centroids)
	if a.MSE != b.MSE {
		t.Fatalf("MSE drift: %v != %v", a.MSE, b.MSE)
	}
}

func BenchmarkCoresetTree5000to200(b *testing.B) {
	chunk := blobCell(b, 8, 5000, 12)
	s, err := NewCoresetTreeSummarizer(200)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Summarize(chunk, rng.New(3)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCoresetTreeRefinesWithSize(t *testing.T) {
	// A larger coreset must represent the chunk at least as well: the
	// tree only ever splits the worst leaf, so cost is monotone in m.
	chunk := blobCell(t, 6, 600, 8)
	var prev = math.Inf(1)
	for _, m := range []int{12, 60, 300} {
		s, err := NewCoresetTreeSummarizer(m)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := s.Summarize(chunk, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if pr.MSE > prev+1e-9 {
			t.Fatalf("m=%d MSE %v worse than smaller coreset %v", m, pr.MSE, prev)
		}
		prev = pr.MSE
	}
}
