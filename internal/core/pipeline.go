package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/metrics"
	"streamkm/internal/rng"
	"streamkm/internal/stream"
	"streamkm/internal/vector"
)

// Options configures a full partial/merge run over one grid cell.
type Options struct {
	// K is the number of clusters (paper: 40).
	K int
	// Restarts is the seed sets tried per partition and, for the serial
	// baseline path, per cell (paper: 10).
	Restarts int
	// Splits is the number of partitions p (paper: 5 or 10). Exactly one
	// of Splits and ChunkPoints must be positive.
	Splits int
	// ChunkPoints, when positive, sizes partitions by a memory budget
	// (max points per chunk) instead of a fixed count — the engine's
	// adaptive mode (§3.2: partitions sized to available RAM).
	ChunkPoints int
	// Strategy selects the slicing strategy (paper tests: random).
	Strategy dataset.SplitStrategy
	// MergeMode selects collective (paper) or incremental merging.
	MergeMode MergeMode
	// MergeSeeder overrides merge initialization (nil = heaviest-weight).
	MergeSeeder kmeans.Seeder
	// PartialSeeder overrides partial-stage initialization (nil =
	// random, the paper's choice).
	PartialSeeder kmeans.Seeder
	// Epsilon is the ΔMSE convergence threshold (0 = paper's 1e-9).
	Epsilon float64
	// MaxIterations caps Lloyd iterations per run (0 = default).
	MaxIterations int
	// Seed derives all randomness for the run; equal seeds reproduce
	// results exactly.
	Seed uint64
	// Parallelism is the number of partial-operator clones used by
	// ClusterParallel (<=0 selects 1; Cluster ignores it).
	Parallelism int
	// QueueCapacity sizes the inter-operator queues in ClusterParallel
	// (<=0 selects the stream default).
	QueueCapacity int
	// Accelerate selects Hamerly's bound-based Lloyd iteration in both
	// the partial and merge steps.
	Accelerate bool
	// Workers, when >= 2, fans each partial operator's Restarts across
	// that many goroutines. Orthogonal to Parallelism (operator clones):
	// Parallelism spreads chunks over clones, Workers spreads one
	// chunk's restarts over cores. Results stay bit-identical to serial
	// execution for any value.
	Workers int
	// Summarizer names the chunk-summarizer operator ("" or "kmeans" =
	// the paper's partial k-means; "ecvq", "coreset" select the
	// adaptive-k and coreset-tree operators).
	Summarizer string
	// SeedMethod names the seeding strategy applied to both the
	// k-means partial stage and the merge stage (kmeans.SeederByName;
	// "" keeps the historic defaults: random partial, heaviest merge).
	// Explicit PartialSeeder/MergeSeeder values take precedence.
	SeedMethod string
	// MergeSolver selects the merge-stage iteration kernel
	// (kmeans.SolverNames; "" = full Lloyd). "minibatch" runs the merge
	// as sampled gradient steps — cheaper on large pools, and the
	// kernel behind the windowed snapshot index's warm refines.
	MergeSolver string
	// CoresetSize is the coreset operator's output size m per chunk
	// (0 = 10*K).
	CoresetSize int
	// ECVQMaxK and ECVQLambda parameterize the ecvq operator
	// (0 = 2*K and no rate penalty respectively).
	ECVQMaxK   int
	ECVQLambda float64
}

// Validate checks the options for structural errors — exported so the
// facade can fail fast before building pipelines or summarizers.
func (o Options) Validate() error {
	if o.K <= 0 {
		return fmt.Errorf("core: K must be positive, got %d", o.K)
	}
	if o.Restarts <= 0 {
		return fmt.Errorf("core: Restarts must be positive, got %d", o.Restarts)
	}
	if (o.Splits > 0) == (o.ChunkPoints > 0) {
		return errors.New("core: exactly one of Splits and ChunkPoints must be positive")
	}
	if _, err := kmeans.SeederByName(o.SeedMethod); err != nil {
		return err
	}
	if err := kmeans.ValidateSolver(o.MergeSolver); err != nil {
		return err
	}
	return nil
}

// PartialConfig derives the partial-stage configuration from the
// options — the one place the mapping is written down, shared by the
// serial and parallel pipelines and the streamkm facade.
func (o Options) PartialConfig() PartialConfig {
	return PartialConfig{
		K:             o.K,
		Restarts:      o.Restarts,
		Epsilon:       o.Epsilon,
		MaxIterations: o.MaxIterations,
		Accelerate:    o.Accelerate,
		Seeder:        o.PartialSeeder,
		Workers:       o.Workers,
	}
}

// MergeConfig derives the merge-stage configuration from the options
// (a nil Seeder lets MergeKMeans default to the heaviest-point seeder).
// SeedMethod, when set and not overridden by MergeSeeder, selects the
// merge seeding strategy too — with the coreset summarizer the merge is
// the only k-means stage, so this is where -seed-method=kmeans++ bites.
func (o Options) MergeConfig() MergeConfig {
	seeder := o.MergeSeeder
	if seeder == nil && o.SeedMethod != "" {
		if s, err := kmeans.SeederByName(o.SeedMethod); err == nil {
			seeder = s
		}
	}
	return MergeConfig{
		K:             o.K,
		Epsilon:       o.Epsilon,
		MaxIterations: o.MaxIterations,
		Seeder:        seeder,
		Mode:          o.MergeMode,
		Accelerate:    o.Accelerate,
		Solver:        o.MergeSolver,
	}
}

// SummarizerOptions maps the pipeline options onto the summarizer
// factory's knobs — the one place that mapping is written down, shared
// with the engine and the streamkm facade.
func (o Options) SummarizerOptions() SummarizerOptions {
	return SummarizerOptions{
		Partial:     o.PartialConfig(),
		SeedMethod:  o.SeedMethod,
		CoresetSize: o.CoresetSize,
		ECVQ:        ECVQPartialConfig{MaxK: o.ECVQMaxK, Lambda: o.ECVQLambda},
	}
}

// NewSummarizer resolves the options' chunk-summarizer operator.
func (o Options) NewSummarizer() (Summarizer, error) {
	return SummarizerFor(o.Summarizer, o.SummarizerOptions())
}

// Result is the outcome of a full partial/merge run.
type Result struct {
	// Centroids are the final k cell centroids.
	Centroids []vector.Vector
	// Weights are the data weights merged into each centroid.
	Weights []float64
	// MergeMSE is the paper's E_pm-based MSE reported for partial/merge
	// runs in Table 2 (weighted distance of partial centroids to final
	// centroids).
	MergeMSE float64
	// PointMSE is the mean squared distance of the original points to
	// the final centroids — the apples-to-apples quality number we add
	// alongside the paper's metric.
	PointMSE float64
	// Partitions is the number of chunks p actually used.
	Partitions int
	// PartialTime sums wall-clock time across partial steps ("t C0-Ci"
	// in Table 2; under ClusterParallel clones overlap, so the summed
	// value is CPU-like while Elapsed is wall-clock).
	PartialTime time.Duration
	// MergeTime is the merge step's wall-clock time ("t merge").
	MergeTime time.Duration
	// Elapsed is end-to-end wall-clock time ("overall t").
	Elapsed time.Duration
	// PartialIterations and MergeIterations sum Lloyd iterations.
	PartialIterations int
	MergeIterations   int
}

// Cluster runs partial/merge k-means over one cell with all partial
// steps executed serially on the calling goroutine — the configuration
// the paper's Table 2 measures ("even if all partial k-means steps are
// run serially on one machine").
func Cluster(points *dataset.Set, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	summ, err := opts.NewSummarizer()
	if err != nil {
		return nil, err
	}
	return clusterWith(points, opts, summ)
}

// clusterWith is the serial pipeline body with the summarizer operator
// injected — shared by Cluster and the deprecated ClusterECVQ wrapper.
func clusterWith(points *dataset.Set, opts Options, summ Summarizer) (*Result, error) {
	start := time.Now()
	r := rng.New(opts.Seed)
	chunks, err := splitForOptions(points, opts, r)
	if err != nil {
		return nil, err
	}
	res := &Result{Partitions: len(chunks)}
	parts := make([]*dataset.WeightedSet, len(chunks))
	for i, chunk := range chunks {
		pr, err := summ.Summarize(chunk, r.Split())
		if err != nil {
			return nil, fmt.Errorf("core: partition %d: %w", i, err)
		}
		parts[i] = pr.Centroids
		res.PartialTime += pr.Elapsed
		res.PartialIterations += pr.Iterations
	}
	if err := finishMerge(points, parts, opts, r, res); err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// ClusterParallel runs the same computation as a stream plan: a chunk
// source feeding Parallelism clones of the partial operator, whose
// weighted centroid sets fan in to the merge operator (Fig. 5). The
// result is deterministic for a fixed Seed up to merge-input order;
// collective merging with heaviest-weight seeding makes the final
// centroids insensitive to arrival order, matching §3.3's argument.
func ClusterParallel(ctx context.Context, points *dataset.Set, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	summ, err := opts.NewSummarizer()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	r := rng.New(opts.Seed)
	chunks, err := splitForOptions(points, opts, r)
	if err != nil {
		return nil, err
	}
	clones := opts.Parallelism
	if clones < 1 {
		clones = 1
	}

	type task struct {
		index int
		chunk *dataset.Set
		rng   *rng.RNG
	}
	type partOut struct {
		index int
		res   *PartialResult
	}

	// Derive one RNG per chunk up front so results do not depend on
	// which clone handles which chunk.
	tasks := make([]task, len(chunks))
	for i, c := range chunks {
		tasks[i] = task{index: i, chunk: c, rng: r.Split()}
	}

	g, gctx := stream.NewGroup(ctx)
	reg := stream.NewStatsRegistry()
	chunkQ := stream.NewQueue[task]("chunks", opts.QueueCapacity)
	partQ := stream.NewQueue[partOut]("partials", opts.QueueCapacity)

	stream.RunSource(g, gctx, reg, "scan", func(ctx context.Context, emit stream.Emit[task]) error {
		for _, t := range tasks {
			if err := emit(t); err != nil {
				return err
			}
		}
		return nil
	}, chunkQ)

	stream.RunTransform(g, gctx, reg, "partial-"+summ.Spec().Name, clones,
		func(ctx context.Context, t task, emit stream.Emit[partOut]) error {
			pr, err := summ.Summarize(t.chunk, t.rng)
			if err != nil {
				return fmt.Errorf("partition %d: %w", t.index, err)
			}
			return emit(partOut{index: t.index, res: pr})
		}, chunkQ, partQ)

	collected := make([]*PartialResult, len(chunks))
	stream.RunSink(g, gctx, reg, "collect-partials", 1,
		func(ctx context.Context, p partOut) error {
			collected[p.index] = p.res
			return nil
		}, partQ)

	if err := g.Wait(); err != nil {
		return nil, err
	}

	res := &Result{Partitions: len(chunks)}
	parts := make([]*dataset.WeightedSet, len(chunks))
	for i, pr := range collected {
		if pr == nil {
			return nil, fmt.Errorf("core: partition %d produced no result", i)
		}
		parts[i] = pr.Centroids
		res.PartialTime += pr.Elapsed
		res.PartialIterations += pr.Iterations
	}
	if err := finishMerge(points, parts, opts, r, res); err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func splitForOptions(points *dataset.Set, opts Options, r *rng.RNG) ([]*dataset.Set, error) {
	if opts.Splits > 0 {
		return dataset.Split(points, opts.Splits, opts.Strategy, r)
	}
	return dataset.SplitByBudget(points, opts.ChunkPoints, opts.Strategy, r)
}

func finishMerge(points *dataset.Set, parts []*dataset.WeightedSet, opts Options, r *rng.RNG, res *Result) error {
	mr, err := MergeKMeans(parts, opts.MergeConfig(), r.Split())
	if err != nil {
		return err
	}
	res.Centroids = mr.Centroids
	res.Weights = mr.Weights
	res.MergeMSE = mr.MSE
	res.MergeTime = mr.Elapsed
	res.MergeIterations = mr.Iterations
	pm, err := metrics.MSE(points, mr.Centroids)
	if err != nil {
		return err
	}
	res.PointMSE = pm
	return nil
}
