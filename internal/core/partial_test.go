package core

import (
	"math"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// blobCell builds a cell of nBlobs tight Gaussian blobs, n points total.
func blobCell(t testing.TB, nBlobs, n int, seed uint64) *dataset.Set {
	t.Helper()
	spec := dataset.DefaultCellSpec()
	spec.Clusters = nBlobs
	spec.Dim = 3
	spec.NoiseFrac = 0
	spec.Separation = 30
	spec.Spread = 0.5
	s, err := dataset.GenerateCell(spec, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPartialConfigValidation(t *testing.T) {
	chunk := blobCell(t, 4, 100, 1)
	if _, err := PartialKMeans(chunk, PartialConfig{K: 0, Restarts: 1}, rng.New(1)); err == nil {
		t.Fatal("K=0 should error")
	}
	if _, err := PartialKMeans(chunk, PartialConfig{K: 4, Restarts: 0}, rng.New(1)); err == nil {
		t.Fatal("Restarts=0 should error")
	}
	if _, err := PartialKMeans(dataset.MustNewSet(3), PartialConfig{K: 4, Restarts: 1}, rng.New(1)); err == nil {
		t.Fatal("empty chunk should error")
	}
	if _, err := PartialKMeans(chunk, PartialConfig{K: 101, Restarts: 1}, rng.New(1)); err == nil {
		t.Fatal("K > chunk size should error")
	}
}

func TestPartialKMeansWeightsSumToN(t *testing.T) {
	chunk := blobCell(t, 4, 200, 2)
	pr, err := PartialKMeans(chunk, PartialConfig{K: 4, Restarts: 3}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Points != 200 {
		t.Fatalf("Points = %d", pr.Points)
	}
	if got := pr.Centroids.TotalWeight(); math.Abs(got-200) > 1e-9 {
		t.Fatalf("sum of centroid weights = %g, want 200 (= N_j)", got)
	}
	if pr.Centroids.Len() == 0 || pr.Centroids.Len() > 4 {
		t.Fatalf("centroid count = %d", pr.Centroids.Len())
	}
	if pr.Iterations <= 0 {
		t.Fatalf("Iterations = %d", pr.Iterations)
	}
	if pr.MSE < 0 {
		t.Fatalf("MSE = %g", pr.MSE)
	}
}

func TestPartialKMeansRestartImproves(t *testing.T) {
	// Over many restart comparisons, best-of-10 should never lose to
	// best-of-1 given the identical first seed set; we verify the
	// statistical direction over several cells rather than a single run.
	wins, ties := 0, 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		chunk := blobCell(t, 8, 300, uint64(trial+10))
		one, err := PartialKMeans(chunk, PartialConfig{K: 8, Restarts: 1}, rng.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		ten, err := PartialKMeans(chunk, PartialConfig{K: 8, Restarts: 10}, rng.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if ten.MSE < one.MSE-1e-12 {
			wins++
		} else if math.Abs(ten.MSE-one.MSE) <= 1e-12 {
			ties++
		}
	}
	if wins+ties < trials {
		t.Fatalf("best-of-10 lost to best-of-1 on %d/%d cells", trials-wins-ties, trials)
	}
}

func TestPartialKMeansDeterministic(t *testing.T) {
	chunk := blobCell(t, 4, 150, 3)
	a, err := PartialKMeans(chunk, PartialConfig{K: 4, Restarts: 2}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartialKMeans(chunk, PartialConfig{K: 4, Restarts: 2}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.MSE != b.MSE || a.Centroids.Len() != b.Centroids.Len() {
		t.Fatal("same seed produced different partial results")
	}
	for i := 0; i < a.Centroids.Len(); i++ {
		if !a.Centroids.At(i).Vec.Equal(b.Centroids.At(i).Vec) {
			t.Fatalf("centroid %d differs", i)
		}
	}
}

func TestPartialFindsBlobCenters(t *testing.T) {
	// A chunk with 3 well-separated blobs and k=3 should put one
	// centroid near each blob mean.
	s := dataset.MustNewSet(1)
	r := rng.New(11)
	means := []float64{-50, 0, 50}
	for i := 0; i < 300; i++ {
		m := means[i%3]
		if err := s.Add(vector.Of(m + r.NormFloat64()*0.5)); err != nil {
			t.Fatal(err)
		}
	}
	pr, err := PartialKMeans(s, PartialConfig{K: 3, Restarts: 10}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	found := make([]bool, 3)
	for i := 0; i < pr.Centroids.Len(); i++ {
		c := pr.Centroids.At(i).Vec[0]
		for j, m := range means {
			if math.Abs(c-m) < 2 {
				found[j] = true
			}
		}
	}
	for j, ok := range found {
		if !ok {
			t.Fatalf("no centroid near blob %d (mean %g): %v", j, means[j], pr.Centroids.Points())
		}
	}
	// Each blob has ~100 points; weights should reflect that.
	for i := 0; i < pr.Centroids.Len(); i++ {
		w := pr.Centroids.At(i).Weight
		if w < 80 || w > 120 {
			t.Fatalf("centroid %d weight %g far from 100", i, w)
		}
	}
}
