package core

import (
	"math"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
)

func TestECVQPartialValidation(t *testing.T) {
	chunk := blobCell(t, 4, 200, 1)
	if _, err := ECVQPartial(chunk, ECVQPartialConfig{MaxK: 0}, rng.New(1)); err == nil {
		t.Fatal("MaxK=0 should error")
	}
	if _, err := ECVQPartial(chunk, ECVQPartialConfig{MaxK: 5, Lambda: -1}, rng.New(1)); err == nil {
		t.Fatal("negative lambda should error")
	}
	if _, err := ECVQPartial(dataset.MustNewSet(3), ECVQPartialConfig{MaxK: 5}, rng.New(1)); err == nil {
		t.Fatal("empty chunk should error")
	}
}

func TestECVQPartialAdaptsK(t *testing.T) {
	chunk := blobCell(t, 4, 400, 2)
	res, err := ECVQPartial(chunk, ECVQPartialConfig{MaxK: 30, Lambda: 50, Restarts: 3}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 30 || res.K < 1 {
		t.Fatalf("K = %d", res.K)
	}
	// With a meaningful rate penalty on 4-blob data, the codebook must
	// shrink below MaxK.
	if res.K == 30 {
		t.Fatalf("lambda=50 did not prune the codebook (K=%d)", res.K)
	}
	if res.Points != 400 {
		t.Fatalf("Points = %d", res.Points)
	}
	// mass conserved
	if math.Abs(res.Centroids.TotalWeight()-400) > 1e-9 {
		t.Fatalf("weight %g, want 400", res.Centroids.TotalWeight())
	}
}

func TestECVQPartialRestartsKeepBest(t *testing.T) {
	chunk := blobCell(t, 6, 300, 4)
	one, err := ECVQPartial(chunk, ECVQPartialConfig{MaxK: 12, Lambda: 10, Restarts: 1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	many, err := ECVQPartial(chunk, ECVQPartialConfig{MaxK: 12, Lambda: 10, Restarts: 8}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if many.Cost > one.Cost+1e-12 {
		t.Fatalf("best-of-8 cost %g worse than best-of-1 %g", many.Cost, one.Cost)
	}
}

func TestClusterECVQEndToEnd(t *testing.T) {
	cell := blobCell(t, 5, 600, 6)
	res, err := ClusterECVQ(cell,
		Options{K: 10, Restarts: 2, Splits: 4, Seed: 7},
		ECVQPartialConfig{MaxK: 20, Lambda: 5, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 10 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	var w float64
	for _, x := range res.Weights {
		w += x
	}
	if math.Abs(w-600) > 1e-6 {
		t.Fatalf("merged weight %g", w)
	}
	if res.PointMSE > 5 {
		t.Fatalf("PointMSE = %g", res.PointMSE)
	}
	if res.Partitions != 4 {
		t.Fatalf("Partitions = %d", res.Partitions)
	}
}

func TestClusterECVQValidation(t *testing.T) {
	cell := blobCell(t, 4, 200, 8)
	if _, err := ClusterECVQ(cell, Options{K: 0, Restarts: 1, Splits: 2},
		ECVQPartialConfig{MaxK: 5}); err == nil {
		t.Fatal("bad opts should error")
	}
	if _, err := ClusterECVQ(cell, Options{K: 4, Restarts: 1, Splits: 2},
		ECVQPartialConfig{MaxK: 0}); err == nil {
		t.Fatal("bad ECVQ cfg should error")
	}
}
