package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/rng"
)

// Summarizer is the chunk-summarizer operator contract: the paper's §3
// skeleton only requires that each in-memory partition be reduced to a
// small weighted representation that the merge step can consume, so the
// partial stage is an interface, not a fixed algorithm. Every layer —
// the serial/parallel pipelines, the engine executor, the distributed
// worker, and the facade — dispatches through this interface.
//
// Implementations must be deterministic: equal chunk contents and equal
// RNG states must produce bit-identical summaries, because the engine's
// crash recovery and the distributed runtime both rely on replaying a
// chunk from its pre-derived RNG and getting the same bytes back.
type Summarizer interface {
	// Summarize reduces one partition to weighted points plus
	// diagnostics. The summary's total weight equals the number of
	// points summarized.
	Summarize(chunk *dataset.Set, r *rng.RNG) (*PartialResult, error)
	// Spec self-describes the operator — name plus every parameter that
	// affects its output — so journals and the SKMF wire protocol can
	// reconstruct an identical operator elsewhere.
	Spec() SummarizerSpec
}

// Operator names understood by SummarizerFor and NewSummarizer.
const (
	SummarizerKMeans  = "kmeans"
	SummarizerECVQ    = "ecvq"
	SummarizerCoreset = "coreset"
)

// SummarizerNames lists the built-in operators in CLI/docs order.
func SummarizerNames() []string {
	return []string{SummarizerKMeans, SummarizerECVQ, SummarizerCoreset}
}

// ErrUnknownSummarizer is returned (wrapped) when an operator name or
// encoded spec does not match a built-in summarizer.
var ErrUnknownSummarizer = errors.New("core: unknown summarizer operator")

// SummarizerSpec identifies a summarizer operator and its parameters in
// a canonical, order-independent encoding. It is what the SKMJ journal
// records and what the SKMF chunk payload carries, so two specs that
// Encode equally are guaranteed to summarize identically.
type SummarizerSpec struct {
	// Name is the operator name ("kmeans", "ecvq", "coreset").
	Name string
	// Params holds the operator's parameters as strings. Keys and
	// values must not contain '(', ')', ',' or '='; floats use the
	// shortest exact representation so specs round-trip bit-exactly.
	Params map[string]string
}

// Encode renders the spec canonically: name alone when there are no
// parameters, otherwise "name(k1=v1,k2=v2,...)" with keys sorted.
func (s SummarizerSpec) Encode() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Params[k])
	}
	b.WriteByte(')')
	return b.String()
}

// ParseSummarizerSpec inverts Encode.
func ParseSummarizerSpec(enc string) (SummarizerSpec, error) {
	open := strings.IndexByte(enc, '(')
	if open < 0 {
		if enc == "" {
			return SummarizerSpec{}, errors.New("core: empty summarizer spec")
		}
		return SummarizerSpec{Name: enc}, nil
	}
	if open == 0 || !strings.HasSuffix(enc, ")") {
		return SummarizerSpec{}, fmt.Errorf("core: malformed summarizer spec %q", enc)
	}
	spec := SummarizerSpec{Name: enc[:open], Params: map[string]string{}}
	body := enc[open+1 : len(enc)-1]
	if body == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(body, ",") {
		eq := strings.IndexByte(kv, '=')
		if eq <= 0 {
			return SummarizerSpec{}, fmt.Errorf("core: malformed summarizer param %q in %q", kv, enc)
		}
		spec.Params[kv[:eq]] = kv[eq+1:]
	}
	return spec, nil
}

// formatFloatParam encodes a float with the shortest representation
// that parses back to the identical bits, so specs carrying epsilons or
// lambdas stay bit-exact across the wire and the journal.
func formatFloatParam(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// specParams reads typed values out of a SummarizerSpec's Params map
// and tracks consumption so unknown keys (version skew, typos) are
// rejected instead of silently ignored.
type specParams struct {
	spec SummarizerSpec
	seen map[string]bool
	err  error
}

func newSpecParams(spec SummarizerSpec) *specParams {
	return &specParams{spec: spec, seen: make(map[string]bool, len(spec.Params))}
}

func (p *specParams) lookup(key string) (string, bool) {
	p.seen[key] = true
	v, ok := p.spec.Params[key]
	return v, ok
}

func (p *specParams) fail(key, v string, err error) {
	if p.err == nil {
		p.err = fmt.Errorf("core: summarizer spec %q: param %s=%q: %w", p.spec.Encode(), key, v, err)
	}
}

func (p *specParams) Int(key string, def int) int {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		p.fail(key, v, err)
		return def
	}
	return n
}

func (p *specParams) Float(key string, def float64) float64 {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		p.fail(key, v, err)
		return def
	}
	return f
}

func (p *specParams) Bool(key string, def bool) bool {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		p.fail(key, v, err)
		return def
	}
	return b
}

func (p *specParams) Str(key, def string) string {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	return v
}

// finish returns the first decode error, or an error naming any param
// key the operator did not consume.
func (p *specParams) finish() error {
	if p.err != nil {
		return p.err
	}
	for k := range p.spec.Params {
		if !p.seen[k] {
			return fmt.Errorf("core: summarizer spec %q: unknown param %q", p.spec.Encode(), k)
		}
	}
	return nil
}

// SummarizerOptions bundles the in-process knobs SummarizerFor maps to
// an operator. Partial supplies the k-means defaults every operator
// falls back to (k, restarts, epsilon, iteration cap, workers).
type SummarizerOptions struct {
	// Partial is the k-means partial-stage configuration; also the
	// source of shared defaults for the other operators.
	Partial PartialConfig
	// SeedMethod names the partial-stage seeding strategy (see
	// kmeans.SeederByName; "" keeps Partial.Seeder or the random
	// default). Ignored when Partial.Seeder is already set.
	SeedMethod string
	// CoresetSize is the coreset-tree output size m (0 = 10*Partial.K).
	CoresetSize int
	// ECVQ parameterizes the ecvq operator; zero fields inherit from
	// Partial (MaxK = 2*K, Restarts, Epsilon, MaxIterations).
	ECVQ ECVQPartialConfig
}

// SummarizerFor builds a summarizer from an operator name and the
// in-process options. The empty name selects the k-means operator — the
// paper's partial stage and the historic default.
func SummarizerFor(name string, o SummarizerOptions) (Summarizer, error) {
	switch name {
	case "", SummarizerKMeans:
		cfg := o.Partial
		if cfg.Seeder == nil && o.SeedMethod != "" {
			seeder, err := kmeans.SeederByName(o.SeedMethod)
			if err != nil {
				return nil, err
			}
			cfg.Seeder = seeder
		}
		return NewKMeansSummarizer(cfg)
	case SummarizerECVQ:
		cfg := o.ECVQ
		if cfg.MaxK <= 0 {
			cfg.MaxK = 2 * o.Partial.K
		}
		if cfg.Restarts <= 0 {
			cfg.Restarts = o.Partial.Restarts
		}
		if cfg.Epsilon == 0 {
			cfg.Epsilon = o.Partial.Epsilon
		}
		if cfg.MaxIterations == 0 {
			cfg.MaxIterations = o.Partial.MaxIterations
		}
		return NewECVQSummarizer(cfg)
	case SummarizerCoreset:
		size := o.CoresetSize
		if size <= 0 {
			size = 10 * o.Partial.K
		}
		return NewCoresetTreeSummarizer(size)
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownSummarizer, name)
}

// NewSummarizer reconstructs a summarizer from a decoded spec — the
// inverse of Summarizer.Spec(), used by the distributed worker and by
// journal recovery so a remote or resumed run executes the exact
// operator the coordinator planned.
func NewSummarizer(spec SummarizerSpec) (Summarizer, error) {
	switch spec.Name {
	case "", SummarizerKMeans:
		p := newSpecParams(spec)
		cfg := PartialConfig{
			K:             p.Int("k", 0),
			Restarts:      p.Int("restarts", 0),
			Epsilon:       p.Float("epsilon", 0),
			MaxIterations: p.Int("maxiter", 0),
			Accelerate:    p.Bool("accel", false),
			Workers:       p.Int("workers", 0),
		}
		seedMethod := p.Str("seed", "")
		if err := p.finish(); err != nil {
			return nil, err
		}
		if seedMethod != "" {
			seeder, err := kmeans.SeederByName(seedMethod)
			if err != nil {
				return nil, err
			}
			cfg.Seeder = seeder
		}
		return NewKMeansSummarizer(cfg)
	case SummarizerECVQ:
		p := newSpecParams(spec)
		cfg := ECVQPartialConfig{
			MaxK:          p.Int("maxk", 0),
			Lambda:        p.Float("lambda", 0),
			Restarts:      p.Int("restarts", 1),
			Epsilon:       p.Float("epsilon", 0),
			MaxIterations: p.Int("maxiter", 0),
		}
		if err := p.finish(); err != nil {
			return nil, err
		}
		return NewECVQSummarizer(cfg)
	case SummarizerCoreset:
		p := newSpecParams(spec)
		size := p.Int("m", 0)
		if err := p.finish(); err != nil {
			return nil, err
		}
		return NewCoresetTreeSummarizer(size)
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownSummarizer, spec.Name)
}

// KMeansSummarizer adapts PartialKMeans — the paper's partial operator —
// to the Summarizer contract.
type KMeansSummarizer struct {
	cfg PartialConfig
}

// NewKMeansSummarizer validates the configuration once up front so the
// engine can fail a bad query at plan time instead of per chunk.
func NewKMeansSummarizer(cfg PartialConfig) (*KMeansSummarizer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &KMeansSummarizer{cfg: cfg}, nil
}

// Config returns the underlying partial configuration.
func (s *KMeansSummarizer) Config() PartialConfig { return s.cfg }

// Summarize implements Summarizer.
func (s *KMeansSummarizer) Summarize(chunk *dataset.Set, r *rng.RNG) (*PartialResult, error) {
	return PartialKMeans(chunk, s.cfg, r)
}

// Spec implements Summarizer.
func (s *KMeansSummarizer) Spec() SummarizerSpec {
	params := map[string]string{
		"k":        strconv.Itoa(s.cfg.K),
		"restarts": strconv.Itoa(s.cfg.Restarts),
	}
	if s.cfg.Epsilon != 0 {
		params["epsilon"] = formatFloatParam(s.cfg.Epsilon)
	}
	if s.cfg.MaxIterations != 0 {
		params["maxiter"] = strconv.Itoa(s.cfg.MaxIterations)
	}
	if s.cfg.Accelerate {
		params["accel"] = "true"
	}
	if s.cfg.Workers != 0 {
		params["workers"] = strconv.Itoa(s.cfg.Workers)
	}
	if s.cfg.Seeder != nil {
		params["seed"] = s.cfg.Seeder.Name()
	}
	return SummarizerSpec{Name: SummarizerKMeans, Params: params}
}

// ECVQSummarizer adapts ECVQPartial — the §3.3 Remarks' adaptive-k
// extension — to the Summarizer contract, unifying the previously
// stranded ClusterECVQ side path with the engine pipeline.
type ECVQSummarizer struct {
	cfg ECVQPartialConfig
}

// NewECVQSummarizer validates the configuration once up front.
func NewECVQSummarizer(cfg ECVQPartialConfig) (*ECVQSummarizer, error) {
	if cfg.Restarts <= 0 {
		cfg.Restarts = 1
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &ECVQSummarizer{cfg: cfg}, nil
}

// Config returns the underlying ECVQ configuration.
func (s *ECVQSummarizer) Config() ECVQPartialConfig { return s.cfg }

// Summarize implements Summarizer. MSE carries the winning quantizer's
// Lagrangian cost — the quality score ECVQ minimizes — and Restarts the
// configured restart count, so run reports stay meaningful.
func (s *ECVQSummarizer) Summarize(chunk *dataset.Set, r *rng.RNG) (*PartialResult, error) {
	er, err := ECVQPartial(chunk, s.cfg, r)
	if err != nil {
		return nil, err
	}
	return &PartialResult{
		Centroids: er.Centroids,
		MSE:       er.Cost,
		Restarts:  s.cfg.Restarts,
		Points:    er.Points,
		Elapsed:   er.Elapsed,
	}, nil
}

// Spec implements Summarizer.
func (s *ECVQSummarizer) Spec() SummarizerSpec {
	params := map[string]string{
		"maxk":     strconv.Itoa(s.cfg.MaxK),
		"restarts": strconv.Itoa(s.cfg.Restarts),
	}
	if s.cfg.Lambda != 0 {
		params["lambda"] = formatFloatParam(s.cfg.Lambda)
	}
	if s.cfg.Epsilon != 0 {
		params["epsilon"] = formatFloatParam(s.cfg.Epsilon)
	}
	if s.cfg.MaxIterations != 0 {
		params["maxiter"] = strconv.Itoa(s.cfg.MaxIterations)
	}
	return SummarizerSpec{Name: SummarizerECVQ, Params: params}
}
