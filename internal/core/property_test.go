package core

import (
	"math"
	"testing"
	"testing/quick"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// Property: the pipeline conserves data mass end to end — the merged
// weights always sum to N, for any split count, strategy, merge mode
// and seed. This is the invariant that makes the compressed
// representation trustworthy as a summary of the cell.
func TestPipelineWeightConservationProperty(t *testing.T) {
	f := func(seed uint16, splitsRaw, stratRaw, modeRaw uint8) bool {
		r := rng.New(uint64(seed) + 1)
		n := 150 + int(seed%200)
		s := dataset.MustNewSet(2)
		for i := 0; i < n; i++ {
			v := vector.Of(r.NormFloat64()*20, r.NormFloat64()*20)
			if s.Add(v) != nil {
				return false
			}
		}
		k := 5
		maxSplits := n / k
		if maxSplits > 8 {
			maxSplits = 8
		}
		splits := int(splitsRaw)%maxSplits + 1
		res, err := Cluster(s, Options{
			K:         k,
			Restarts:  1,
			Splits:    splits,
			Strategy:  dataset.SplitStrategy(stratRaw % 3),
			MergeMode: MergeMode(modeRaw % 2),
			Seed:      uint64(seed),
		})
		if err != nil {
			return false
		}
		var total float64
		for _, w := range res.Weights {
			if w < 0 {
				return false
			}
			total += w
		}
		return math.Abs(total-float64(n)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the final centroids always lie inside the data's bounding
// box — weighted means of means of points cannot escape the convex hull,
// and the box is an outer bound of the hull.
func TestCentroidsInsideBoundingBoxProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 7)
		s := dataset.MustNewSet(3)
		for i := 0; i < 120; i++ {
			v := vector.Of(r.NormFloat64()*9, r.Float64()*50, -r.Float64()*3)
			if s.Add(v) != nil {
				return false
			}
		}
		res, err := Cluster(s, Options{K: 6, Restarts: 1, Splits: 3, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		min, max, err := s.Bounds()
		if err != nil {
			return false
		}
		for _, c := range res.Centroids {
			for d := range c {
				if c[d] < min[d]-1e-9 || c[d] > max[d]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: more splits never break the run as long as chunks can seed
// k centroids, and the merge input count equals splits * (<= k).
func TestSplitsFeasibilityProperty(t *testing.T) {
	const n, k = 400, 4
	cell := blobCell(t, 4, n, 77)
	f := func(splitsRaw uint8) bool {
		splits := int(splitsRaw)%(n/k) + 1
		res, err := Cluster(cell, Options{K: k, Restarts: 1, Splits: splits, Seed: 3})
		if err != nil {
			return false
		}
		return res.Partitions == splits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: MergeMSE is invariant to a global translation of the data
// (k-means geometry is translation-equivariant; all randomness is
// seed-pinned and operates on indices, not coordinates).
func TestTranslationEquivarianceProperty(t *testing.T) {
	f := func(seed uint16, shiftRaw int8) bool {
		shift := float64(shiftRaw)
		r := rng.New(uint64(seed) + 3)
		a := dataset.MustNewSet(2)
		b := dataset.MustNewSet(2)
		for i := 0; i < 160; i++ {
			x, y := r.NormFloat64()*15, r.NormFloat64()*15
			if a.Add(vector.Of(x, y)) != nil {
				return false
			}
			if b.Add(vector.Of(x+shift, y+shift)) != nil {
				return false
			}
		}
		opts := Options{K: 5, Restarts: 2, Splits: 4, Seed: uint64(seed)}
		ra, err := Cluster(a, opts)
		if err != nil {
			return false
		}
		rb, err := Cluster(b, opts)
		if err != nil {
			return false
		}
		scale := 1e-6 * (1 + math.Abs(ra.MergeMSE))
		return math.Abs(ra.MergeMSE-rb.MergeMSE) < scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
