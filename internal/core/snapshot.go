package core

import (
	"errors"
	"fmt"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/rng"
)

// snapshotIndex maintains a WindowedClusterer's merged answer so
// continuous queries stop paying a full merge k-means per call — the
// always-maintained-answer design of "Streaming k-Means Clustering
// with Fast Queries" (Zhang et al.) fitted onto the partial/merge
// operators.
//
// Determinism contract: a snapshot is a pure function of stream
// position. The maintained answer is updated eagerly at every chunk
// rotation (never at query time), all refine sampling streams are
// keyed on the rotation or consumed-point counters, and query-time
// work with a buffered tail derives a result without writing back to
// the maintained state. Querying after every point and querying once
// at the end therefore see identical answers, for any query frequency.
//
// Dirty tracking: every Push and every rotation invalidate the cached
// query answer; a Snapshot with nothing changed returns the same
// immutable *MergeResult pointer in O(1) with zero allocations.
//
// Warm path (MergeConfig.Solver == kmeans.SolverMiniBatch): each
// rotation rebuilds the pooled summaries (O(W·k·d) copying — the cheap
// part) and refines the previous answer with warm-started mini-batch
// steps, focusing the first batch on the freshly rotated summary's
// rows and pre-loading per-center learning-rate mass from the previous
// answer's weights so new data moves centroids proportionally to its
// mass. Every resyncEvery-th rotation runs a full cold Lloyd merge
// instead, bounding warm-start drift.
type snapshotIndex struct {
	k           int
	merge       MergeConfig
	resyncEvery int
	// warm selects eager maintenance with mini-batch refines; when
	// false the index only provides dirty-tracked query caching over
	// the classic cold merge.
	warm bool

	// pool is the reused merge input: the live summaries in ring order
	// (rebuilt at each rotation), with query-time tail rows appended
	// past poolLen and truncated away again on the next use.
	pool    *dataset.WeightedSet
	poolLen int
	// focus is the reused FocusRows buffer for warm refines.
	focus []int

	// rotations counts chunk rotations folded into the ring.
	rotations int

	// base is the eagerly maintained answer over the live summaries
	// only — nil until the ring holds at least k representatives (and
	// always nil on the cold path).
	base *MergeResult

	// cache is the answer the last Snapshot returned, valid until the
	// next Push or rotation changes what a query would see.
	cache      *MergeResult
	cacheValid bool

	stats SnapshotStats
}

// SnapshotStats counts the snapshot index's activity; exported through
// WindowedClusterer.SnapshotStats for the obs snapshot_* families.
type SnapshotStats struct {
	// Queries counts Snapshot calls.
	Queries int64
	// CacheHits counts queries answered from the unchanged-window cache
	// (or the maintained answer) without any k-means work.
	CacheHits int64
	// WarmStarts counts mini-batch refines seeded from the previous
	// answer (rotation maintenance and tail-derived queries).
	WarmStarts int64
	// Resyncs counts periodic full cold merges that replaced a
	// maintained warm answer.
	Resyncs int64
	// RefineIterations sums mini-batch gradient batches across refines.
	RefineIterations int64
}

// refineMaxBatches caps one warm refine's gradient batches. A refine
// adjusts an already-good answer after one chunk changed; a handful of
// rounds suffices, and the cap bounds the per-rotation cost that makes
// the warm path beat the cold merge (each full-pool evaluation sweep
// costs as much as several batches, so the cap also bounds evals).
const refineMaxBatches = 4

// refineBatchFactor sizes refine batches at 4*K samples — smaller than
// the cold kernel's 10*K default, because a refine starts next to the
// answer and only needs gentle corrective pressure.
const refineBatchFactor = 4

// refineRelEpsilon loosens the refine's ΔMSE criterion to a fraction
// of the maintained answer's MSE: the absolute paper epsilon (1e-9)
// would chase sampling noise through the full batch budget on every
// rotation.
const refineRelEpsilon = 1e-4

// DefaultResyncEvery is the default warm-start resync period: every
// 16th rotation replaces the maintained answer with a full cold merge.
const DefaultResyncEvery = 16

// resyncMSEFactor triggers an on-demand resync when a refine ends up
// this many times worse than the answer it started from: the window's
// content has shifted faster than damped mini-batch steps can track
// (e.g. the stream jumped to a new regime), so re-seeding from scratch
// beats chasing it. The trigger is a pure function of the data, so it
// preserves the determinism contract.
const resyncMSEFactor = 4.0

// snapSeedConst separates the query-time sampling/seeding stream (keyed
// on consumed points, matching the pre-index snapshot behavior) from
// the rotation-maintenance stream.
const snapSeedConst = 0x9e3779b97f4a7c15

func newSnapshotIndex(dim int, merge MergeConfig, resyncEvery int) *snapshotIndex {
	if resyncEvery <= 0 {
		resyncEvery = DefaultResyncEvery
	}
	return &snapshotIndex{
		k:           merge.K,
		merge:       merge,
		resyncEvery: resyncEvery,
		warm:        merge.Solver == kmeans.SolverMiniBatch,
		pool:        dataset.MustNewWeightedSet(dim),
	}
}

// restore rebuilds the index from persisted state: the pooled
// summaries are reconstructed in ring order and the maintained answer
// and counters are reinstated exactly, so a restored clusterer's next
// rotation refines from the same base an uninterrupted one would have.
// The cache is deliberately left cold — the first query after a
// restore recomputes, and by the purity contract lands on the same
// answer the cached pointer held.
func (ix *snapshotIndex) restore(summaries []*dataset.WeightedSet, rotations int, stats SnapshotStats, base *MergeResult) error {
	ix.rotations = rotations
	ix.stats = stats
	ix.invalidate()
	ix.pool.Reset()
	for _, s := range summaries {
		if err := ix.pool.Append(s); err != nil {
			return err
		}
	}
	ix.poolLen = ix.pool.Len()
	if !ix.warm {
		return nil
	}
	ix.base = base
	if ix.base == nil && ix.poolLen >= ix.k {
		// A warm index always maintains an answer once the ring holds k
		// representatives, so a checkpoint written by this code carries
		// one; a state without it (hand-built or damaged) falls back to
		// a cold merge keyed on the rotation counter.
		res, err := ix.coldMerge(rotationSeed(ix.rotations))
		if err != nil {
			return err
		}
		ix.base = res
	}
	return nil
}

// invalidate marks the cached query answer stale. Called on every Push
// (the unit-weight tail is part of what a query sees) and on rotation.
func (ix *snapshotIndex) invalidate() {
	ix.cacheValid = false
	ix.cache = nil
}

// admit folds a completed rotation into the index: rebuild the pooled
// summaries in ring order and, on the warm path, eagerly maintain the
// merged answer so a later query is O(1). Eager (rather than
// query-time) maintenance is what makes snapshots independent of query
// frequency: the refine happens at the same stream position whether or
// not anyone is watching.
func (ix *snapshotIndex) admit(summaries []*dataset.WeightedSet) error {
	ix.rotations++
	ix.invalidate()
	ix.pool.Reset()
	for _, s := range summaries {
		if err := ix.pool.Append(s); err != nil {
			return err
		}
	}
	ix.poolLen = ix.pool.Len()
	if !ix.warm {
		return nil
	}
	if ix.poolLen < ix.k {
		// Not enough representatives to maintain an answer yet; queries
		// fall back to the cold path (which reports the shortfall).
		ix.base = nil
		return nil
	}
	return ix.maintain(summaries[len(summaries)-1].Len())
}

// maintain updates the warm path's answer over the current pool: a
// full cold merge on the first fill and every resyncEvery-th rotation,
// a warm-started mini-batch refine otherwise. newRows is the size of
// the freshly rotated summary, which occupies the pool's final rows.
func (ix *snapshotIndex) maintain(newRows int) error {
	if ix.base == nil || ix.rotations%ix.resyncEvery == 0 {
		resync := ix.base != nil
		res, err := ix.coldMerge(rotationSeed(ix.rotations))
		if err != nil {
			return err
		}
		if resync {
			ix.stats.Resyncs++
		}
		ix.base = res
		return nil
	}
	start := time.Now()
	cfg := ix.refineConfig(rotationSeed(ix.rotations))
	ix.focus = ix.focus[:0]
	for i := ix.poolLen - newRows; i < ix.poolLen; i++ {
		ix.focus = append(ix.focus, i)
	}
	cfg.FocusRows = ix.focus
	cfg.InitialCounts = ix.base.Weights
	kres, err := kmeans.RunFromCentroids(ix.pool, ix.base.Centroids, cfg)
	if err != nil {
		return err
	}
	if refineDegenerate(kres, ix.base.MSE) {
		res, err := ix.coldMerge(rotationSeed(ix.rotations))
		if err != nil {
			return err
		}
		ix.stats.Resyncs++
		ix.base = res
		return nil
	}
	ix.stats.WarmStarts++
	ix.stats.RefineIterations += int64(kres.Iterations)
	ix.base = &MergeResult{
		Centroids:  kres.Centroids,
		Weights:    kres.Weights,
		MSE:        kres.MSE,
		Iterations: kres.Iterations,
		Inputs:     ix.poolLen,
		Elapsed:    time.Since(start),
	}
	return nil
}

// snapshot answers one query over the live summaries plus the buffered
// tail (unit weights, so recent data is never invisible).
func (ix *snapshotIndex) snapshot(tail *dataset.Set, consumed int) (*MergeResult, error) {
	ix.stats.Queries++
	if ix.poolLen == 0 && tail.Len() == 0 {
		return nil, errors.New("core: window is empty")
	}
	if ix.cacheValid {
		ix.stats.CacheHits++
		return ix.cache, nil
	}
	if ix.warm && tail.Len() == 0 && ix.base != nil {
		// At a rotation boundary the maintained answer IS the snapshot.
		ix.stats.CacheHits++
		ix.cache, ix.cacheValid = ix.base, true
		return ix.base, nil
	}
	// Append the tail past the pooled summaries (dropping any previous
	// query's tail rows first — the pool's slab is reused, not
	// reallocated).
	ix.pool.Truncate(ix.poolLen)
	if tail.Len() > 0 {
		if err := ix.pool.AppendUnweighted(tail); err != nil {
			return nil, err
		}
	}
	total := ix.pool.Len()
	if total < ix.k {
		return nil, fmt.Errorf("core: window holds %d representatives, need at least k=%d", total, ix.k)
	}
	var res *MergeResult
	var err error
	if ix.warm && ix.base != nil {
		res, err = ix.refineWithTail(consumed, total)
	} else {
		// Cold query: a full merge seeded on progress, bit-compatible
		// with the pre-index Snapshot (same pool order, same derived
		// RNG), just without re-copying an unchanged window.
		res, err = ix.coldMerge(uint64(consumed)*snapSeedConst + 1)
	}
	if err != nil {
		return nil, err
	}
	ix.cache, ix.cacheValid = res, true
	return res, nil
}

// refineWithTail derives a query answer from the maintained state plus
// the buffered tail without mutating that state: warm-start from the
// maintained centroids, focus the first batch on the tail rows, and
// key the sampling stream on consumed points so the result is a pure
// function of stream position.
func (ix *snapshotIndex) refineWithTail(consumed, total int) (*MergeResult, error) {
	start := time.Now()
	cfg := ix.refineConfig(uint64(consumed)*snapSeedConst + 1)
	ix.focus = ix.focus[:0]
	for i := ix.poolLen; i < total; i++ {
		ix.focus = append(ix.focus, i)
	}
	cfg.FocusRows = ix.focus
	cfg.InitialCounts = ix.base.Weights
	kres, err := kmeans.RunFromCentroids(ix.pool, ix.base.Centroids, cfg)
	if err != nil {
		return nil, err
	}
	if refineDegenerate(kres, ix.base.MSE) {
		res, err := ix.coldMerge(uint64(consumed)*snapSeedConst + 1)
		if err != nil {
			return nil, err
		}
		ix.stats.Resyncs++
		return res, nil
	}
	ix.stats.WarmStarts++
	ix.stats.RefineIterations += int64(kres.Iterations)
	return &MergeResult{
		Centroids:  kres.Centroids,
		Weights:    kres.Weights,
		MSE:        kres.MSE,
		Iterations: kres.Iterations,
		Inputs:     total,
		Elapsed:    time.Since(start),
	}, nil
}

// refineDegenerate decides whether a warm refine's answer is unusable:
// it stranded centers on departed data (zero assigned weight) or landed
// far above the quality it warm-started from. Either means the window
// changed faster than damped gradient steps can follow, and the caller
// resyncs with a full cold merge instead.
func refineDegenerate(res *kmeans.Result, baseMSE float64) bool {
	for _, c := range res.Counts {
		if c == 0 {
			return true
		}
	}
	// A base MSE of 0 (k rows, k centers) makes any ratio meaningless;
	// the stranded-center check above still guards that regime.
	return baseMSE > 0 && res.MSE > baseMSE*resyncMSEFactor
}

// coldMerge runs the full-Lloyd collective merge over the current pool
// contents. The warm path's resyncs land here too, so a resynced
// answer equals the cold reference answer by construction.
func (ix *snapshotIndex) coldMerge(seed uint64) (*MergeResult, error) {
	start := time.Now()
	cfg := ix.merge
	cfg.Solver = ""
	cfg.Mode = MergeCollective
	inputs := ix.pool.Len()
	res, err := runMergeKMeans(ix.pool, cfg, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return &MergeResult{
		Centroids:  res.Centroids,
		Weights:    res.Weights,
		MSE:        res.MSE,
		Iterations: res.Iterations,
		Inputs:     inputs,
		Elapsed:    time.Since(start),
	}, nil
}

// refineConfig is the mini-batch kmeans configuration for one warm
// refine: the merge's kernel settings with a bounded batch budget and
// a ΔMSE criterion relative to the maintained answer's MSE (both
// deterministic functions of the maintained state).
func (ix *snapshotIndex) refineConfig(sampleSeed uint64) kmeans.Config {
	cfg := ix.merge.kmeansConfig()
	cfg.SampleSeed = sampleSeed
	cfg.MaxIterations = refineMaxBatches
	cfg.BatchSize = refineBatchFactor * ix.k
	if eps := ix.base.MSE * refineRelEpsilon; eps > cfg.Epsilon {
		cfg.Epsilon = eps
	}
	return cfg
}

// rotationSeed keys rotation-maintenance randomness on the rotation
// counter — a different stream from query-time seeds, so interleaved
// queries cannot perturb maintenance.
func rotationSeed(rotation int) uint64 {
	return uint64(rotation)*snapSeedConst + 0xbf58476d1ce4e5b9
}
