package core

import (
	"math"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// weightedParts fabricates p partial results, each holding centroids near
// the same three latent locations. The first partition's centroids carry
// the dominant weights — one per location — so heaviest-weight seeding
// starts with one seed per latent cluster, the situation §3.3 argues the
// weighting creates ("data points that are likely to represent
// significant cluster centroids already").
func weightedParts(t *testing.T, p int) []*dataset.WeightedSet {
	t.Helper()
	r := rng.New(21)
	locs := []float64{-100, 0, 100}
	parts := make([]*dataset.WeightedSet, p)
	for i := range parts {
		ws := dataset.MustNewWeightedSet(1)
		for j, l := range locs {
			w := 50 + 10*r.Float64()
			if i == 0 {
				w = 1000 + float64(j)
			}
			wp := dataset.WeightedPoint{
				Vec:    vector.Of(l + r.NormFloat64()),
				Weight: w,
			}
			if err := ws.Add(wp); err != nil {
				t.Fatal(err)
			}
		}
		parts[i] = ws
	}
	return parts
}

func TestMergeValidation(t *testing.T) {
	parts := weightedParts(t, 3)
	if _, err := MergeKMeans(parts, MergeConfig{K: 0}, rng.New(1)); err == nil {
		t.Fatal("K=0 should error")
	}
	if _, err := MergeKMeans(nil, MergeConfig{K: 3}, rng.New(1)); err == nil {
		t.Fatal("no parts should error")
	}
	if _, err := MergeKMeans(parts, MergeConfig{K: 3, Mode: MergeMode(9)}, rng.New(1)); err == nil {
		t.Fatal("unknown mode should error")
	}
	bad := append(append([]*dataset.WeightedSet{}, parts...), dataset.MustNewWeightedSet(2))
	if _, err := MergeKMeans(bad, MergeConfig{K: 3}, rng.New(1)); err == nil {
		t.Fatal("mixed dims should error")
	}
	if _, err := MergeKMeans(parts[:1], MergeConfig{K: 10}, rng.New(1)); err == nil {
		t.Fatal("pool smaller than k should error")
	}
}

func TestMergeCollectiveRecoversLocations(t *testing.T) {
	parts := weightedParts(t, 5)
	mr, err := MergeKMeans(parts, MergeConfig{K: 3}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Centroids) != 3 {
		t.Fatalf("got %d centroids", len(mr.Centroids))
	}
	if mr.Inputs != 15 {
		t.Fatalf("Inputs = %d, want 15", mr.Inputs)
	}
	for _, loc := range []float64{-100, 0, 100} {
		found := false
		for _, c := range mr.Centroids {
			if math.Abs(c[0]-loc) < 3 {
				found = true
			}
		}
		if !found {
			t.Fatalf("no merged centroid near %g: %v", loc, mr.Centroids)
		}
	}
	// Total merged weight equals total input weight.
	var inW, outW float64
	for _, p := range parts {
		inW += p.TotalWeight()
	}
	for _, w := range mr.Weights {
		outW += w
	}
	if math.Abs(inW-outW) > 1e-6 {
		t.Fatalf("weight not conserved: in=%g out=%g", inW, outW)
	}
	if mr.Iterations <= 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestMergeIncrementalProducesResult(t *testing.T) {
	parts := weightedParts(t, 6)
	mr, err := MergeKMeans(parts, MergeConfig{K: 3, Mode: MergeIncremental}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Centroids) != 3 {
		t.Fatalf("got %d centroids", len(mr.Centroids))
	}
	if mr.Inputs != 18 {
		t.Fatalf("Inputs = %d", mr.Inputs)
	}
	for _, loc := range []float64{-100, 0, 100} {
		found := false
		for _, c := range mr.Centroids {
			if math.Abs(c[0]-loc) < 5 {
				found = true
			}
		}
		if !found {
			t.Fatalf("incremental merge lost location %g: %v", loc, mr.Centroids)
		}
	}
}

func TestMergeIncrementalPoolsUntilK(t *testing.T) {
	// Each part has 1 centroid; with K=3 the first two arrivals cannot
	// trigger a merge and must pool instead.
	parts := make([]*dataset.WeightedSet, 4)
	for i := range parts {
		ws := dataset.MustNewWeightedSet(1)
		if err := ws.Add(dataset.WeightedPoint{Vec: vector.Of(float64(i * 10)), Weight: 1}); err != nil {
			t.Fatal(err)
		}
		parts[i] = ws
	}
	mr, err := MergeKMeans(parts, MergeConfig{K: 3, Mode: MergeIncremental}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Centroids) != 3 {
		t.Fatalf("got %d centroids", len(mr.Centroids))
	}
}

func TestMergeIncrementalNeverReachesKErrors(t *testing.T) {
	ws := dataset.MustNewWeightedSet(1)
	if err := ws.Add(dataset.WeightedPoint{Vec: vector.Of(1), Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeKMeans([]*dataset.WeightedSet{ws}, MergeConfig{K: 5, Mode: MergeIncremental}, rng.New(1)); err == nil {
		t.Fatal("pool below k should error")
	}
}

func TestMergeHeaviestSeedingIsDefault(t *testing.T) {
	// With deterministic heaviest seeding and no RNG use, a nil RNG must
	// work for the default config.
	parts := weightedParts(t, 4)
	if _, err := MergeKMeans(parts, MergeConfig{K: 3}, nil); err != nil {
		t.Fatalf("default merge should not need RNG: %v", err)
	}
	// A random seeder without RNG must fail loudly.
	if _, err := MergeKMeans(parts, MergeConfig{K: 3, Seeder: kmeans.RandomSeeder{}}, nil); err == nil {
		t.Fatal("random-seeded merge without RNG should error")
	}
}

func TestMergeOrderInsensitiveCollective(t *testing.T) {
	parts := weightedParts(t, 5)
	a, err := MergeKMeans(parts, MergeConfig{K: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]*dataset.WeightedSet, len(parts))
	for i := range parts {
		rev[i] = parts[len(parts)-1-i]
	}
	b, err := MergeKMeans(rev, MergeConfig{K: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.MSE-b.MSE) > 1e-9 {
		t.Fatalf("collective merge MSE depends on arrival order: %g vs %g", a.MSE, b.MSE)
	}
}

func TestMergeModeString(t *testing.T) {
	if MergeCollective.String() != "collective" || MergeIncremental.String() != "incremental" {
		t.Fatal("mode names wrong")
	}
	if MergeMode(7).String() == "" {
		t.Fatal("unknown mode should stringify")
	}
}
