package core

// A12 exhibit generator (EXPERIMENTS.md): steady-state rotate+query
// cost and answer quality of the windowed snapshot path, cold vs warm,
// at several window sizes. Skipped by default; regenerate the table
// with: A12=1 go test -run TestA12Table -v ./internal/core

import (
	"os"
	"testing"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
)

func a12Run(t *testing.T, W int, solver string) (best time.Duration, mse float64) {
	const (
		k    = 40
		dim  = 3
		rows = 40
		iter = 60
	)
	fresh := make([]*dataset.WeightedSet, 64)
	for i := range fresh {
		fresh[i] = benchSummary(dim, rows, uint64(i+1))
	}
	ring := make([]*dataset.WeightedSet, W)
	for i := range ring {
		ring[i] = fresh[i%len(fresh)]
	}
	ix := newSnapshotIndex(dim, MergeConfig{K: k, Solver: solver}, 0)
	tail, err := dataset.NewSet(dim)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.admit(ring); err != nil {
		t.Fatal(err)
	}
	best = time.Hour
	var snap *MergeResult
	for i := 0; i < iter; i++ {
		start := time.Now()
		copy(ring, ring[1:])
		ring[W-1] = fresh[i%len(fresh)]
		if err := ix.admit(ring); err != nil {
			t.Fatal(err)
		}
		snap, err = ix.snapshot(tail, (i+1)*rows)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, snap.MSE
}

func TestA12Table(t *testing.T) {
	if os.Getenv("A12") == "" {
		t.Skip("set A12=1 to generate the exhibit")
	}
	t.Log("| W | cold query | warm query | speedup | warm/cold MSE |")
	for _, W := range []int{10, 50, 200} {
		coldT, coldMSE := a12Run(t, W, "")
		warmT, warmMSE := a12Run(t, W, kmeans.SolverMiniBatch)
		t.Logf("| %d | %.2f ms | %.2f ms | %.1fx | %.3f |",
			W,
			float64(coldT.Microseconds())/1000,
			float64(warmT.Microseconds())/1000,
			float64(coldT)/float64(warmT),
			warmMSE/coldMSE)
	}
}
