package core

import (
	"math"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// streamThrough pushes n points of drifting 1-D blob data through a
// fresh clusterer, optionally querying a snapshot after every push.
// It returns the final snapshot.
func streamThrough(t *testing.T, cfg WindowConfig, n int, seed uint64, queryEveryPush bool) *MergeResult {
	t.Helper()
	w, err := NewWindowedClusterer(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		center := float64(i/200) * 50 // drift every 200 points
		if err := w.Push([]float64{center + r.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
		if queryEveryPush && w.Consumed() >= cfg.K {
			if _, err := w.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestSnapshotIndependentOfQueryFrequency pins the determinism
// contract: snapshots are a pure function of stream position, so a
// clusterer queried after every push and one queried only at the end
// produce bitwise-identical final answers — for both solvers.
func TestSnapshotIndependentOfQueryFrequency(t *testing.T) {
	for _, solver := range []string{"", kmeans.SolverMiniBatch} {
		cfg := WindowConfig{
			K: 3, ChunkPoints: 60, WindowChunks: 4, Restarts: 2, Seed: 7,
			MergeSolver: solver,
		}
		eager := streamThrough(t, cfg, 500, 11, true)
		lazy := streamThrough(t, cfg, 500, 11, false)
		if math.Float64bits(eager.MSE) != math.Float64bits(lazy.MSE) {
			t.Fatalf("solver %q: MSE differs with query frequency: %g vs %g", solver, eager.MSE, lazy.MSE)
		}
		for j := range eager.Centroids {
			if !eager.Centroids[j].Equal(lazy.Centroids[j]) {
				t.Fatalf("solver %q: centroid %d differs with query frequency", solver, j)
			}
		}
	}
}

// TestWarmSnapshotQualityNearCold bounds the warm path's approximation
// across seeds: the incrementally maintained mini-batch answer must
// stay within 1.05x of the cold full-merge reference.
func TestWarmSnapshotQualityNearCold(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		cfg := WindowConfig{K: 4, ChunkPoints: 80, WindowChunks: 5, Restarts: 2, Seed: seed}
		cold := streamThrough(t, cfg, 1200, seed*17+1, false)
		cfg.MergeSolver = kmeans.SolverMiniBatch
		warm := streamThrough(t, cfg, 1200, seed*17+1, false)
		if warm.MSE > cold.MSE*1.05 {
			t.Fatalf("seed %d: warm MSE %g exceeds 1.05x cold MSE %g", seed, warm.MSE, cold.MSE)
		}
	}
}

// TestSnapshotCacheHitIsAllocationFree pins the cached-hit contract: a
// repeated Snapshot over an unchanged window returns the same result
// pointer without a single heap allocation.
func TestSnapshotCacheHitIsAllocationFree(t *testing.T) {
	for _, solver := range []string{"", kmeans.SolverMiniBatch} {
		w, err := NewWindowedClusterer(1, WindowConfig{
			K: 3, ChunkPoints: 50, WindowChunks: 3, Seed: 5, MergeSolver: solver,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(2)
		for i := 0; i < 200; i++ {
			if err := w.Push([]float64{r.NormFloat64() * 20}); err != nil {
				t.Fatal(err)
			}
		}
		first, err := w.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			snap, err := w.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if snap != first {
				t.Fatal("cached hit should return the identical result pointer")
			}
		})
		if allocs != 0 {
			t.Fatalf("solver %q: cached snapshot allocates %.1f objects/op, want 0", solver, allocs)
		}
	}
}

// TestSnapshotStatsCounters pins the index's bookkeeping: rotation
// maintenance warm-starts between resyncs, resyncs fire on the period,
// and rotation-boundary queries are cache hits.
func TestSnapshotStatsCounters(t *testing.T) {
	w, err := NewWindowedClusterer(1, WindowConfig{
		K: 3, ChunkPoints: 60, WindowChunks: 4, Seed: 9,
		MergeSolver: kmeans.SolverMiniBatch, ResyncEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly 10 rotations of noise-free three-blob data, ending on a
	// chunk boundary (empty tail). Perfectly clusterable chunks keep
	// every refine healthy, so only the periodic resyncs fire and the
	// counters are exact.
	for i := 0; i < 600; i++ {
		if err := w.Push([]float64{float64(i%3) * 50}); err != nil {
			t.Fatal(err)
		}
	}
	// Rotation 1 is the first fill (cold, not a resync); rotations 4 and
	// 8 resync; the other 7 warm-start.
	st := w.SnapshotStats()
	if st.Resyncs != 2 {
		t.Fatalf("Resyncs = %d, want 2", st.Resyncs)
	}
	if st.WarmStarts != 7 {
		t.Fatalf("WarmStarts = %d, want 7", st.WarmStarts)
	}
	if st.RefineIterations == 0 {
		t.Fatal("warm starts should record refine iterations")
	}
	// At a rotation boundary the maintained answer is the snapshot:
	// both queries are cache hits, no extra k-means work.
	if _, err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st = w.SnapshotStats()
	if st.Queries != 2 || st.CacheHits != 2 {
		t.Fatalf("Queries/CacheHits = %d/%d, want 2/2", st.Queries, st.CacheHits)
	}
	if st.WarmStarts != 7 {
		t.Fatalf("boundary queries ran refines: WarmStarts = %d, want 7", st.WarmStarts)
	}
	// A pushed tail dirties the cache; the next query warm-refines with
	// the tail focused, without touching the maintained state.
	if err := w.Push([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st = w.SnapshotStats()
	if st.Queries != 3 || st.CacheHits != 2 {
		t.Fatalf("Queries/CacheHits = %d/%d, want 3/2", st.Queries, st.CacheHits)
	}
	if st.WarmStarts != 8 {
		t.Fatalf("tail query should warm-start: WarmStarts = %d, want 8", st.WarmStarts)
	}
}

// benchSummary synthesizes one chunk summary: rows weighted centroids
// drawn from a handful of well-separated blobs, the shape PartialKMeans
// emits on clusterable data.
func benchSummary(dim, rows int, seed uint64) *dataset.WeightedSet {
	r := rng.New(seed)
	s := dataset.MustNewWeightedSet(dim)
	for i := 0; i < rows; i++ {
		blob := float64(i % 8)
		v := make([]float64, dim)
		for d := range v {
			v[d] = blob*30 + r.NormFloat64()
		}
		if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(v...), Weight: 5 + 10*r.Float64()}); err != nil {
			panic(err)
		}
	}
	return s
}

// benchSnapshot measures the steady-state cost of one continuous-query
// step — rotate one chunk into a W-chunk window, then query — for the
// given merge solver. The summaries are injected directly so the
// measurement isolates the merge/maintenance path from PartialKMeans.
func benchSnapshot(b *testing.B, solver string) {
	const (
		W    = 50
		k    = 40
		dim  = 3
		rows = 40
	)
	fresh := make([]*dataset.WeightedSet, 64)
	for i := range fresh {
		fresh[i] = benchSummary(dim, rows, uint64(i+1))
	}
	ring := make([]*dataset.WeightedSet, W)
	for i := range ring {
		ring[i] = fresh[i%len(fresh)]
	}
	ix := newSnapshotIndex(dim, MergeConfig{K: k, Solver: solver}, 0)
	tail, err := dataset.NewSet(dim)
	if err != nil {
		b.Fatal(err)
	}
	if err := ix.admit(ring); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(ring, ring[1:])
		ring[W-1] = fresh[i%len(fresh)]
		if err := ix.admit(ring); err != nil {
			b.Fatal(err)
		}
		if _, err := ix.snapshot(tail, (i+1)*rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotCold is the pre-index behavior: every query pays a
// full Lloyd merge over the W=50 pooled summaries.
func BenchmarkSnapshotCold(b *testing.B) { benchSnapshot(b, "") }

// BenchmarkSnapshotWarm is the incremental path: each rotation
// warm-starts a bounded mini-batch refine and the query itself is a
// cache hit.
func BenchmarkSnapshotWarm(b *testing.B) { benchSnapshot(b, kmeans.SolverMiniBatch) }

// BenchmarkMergeMiniBatch measures the mini-batch kernel as a cold
// merge solver (no warm start) over the same W=50 pool, isolating the
// kernel speedup from the warm-start savings.
func BenchmarkMergeMiniBatch(b *testing.B) {
	const (
		W    = 50
		k    = 40
		dim  = 3
		rows = 40
	)
	pool := dataset.MustNewWeightedSet(dim)
	for i := 0; i < W; i++ {
		if err := pool.Append(benchSummary(dim, rows, uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
	cfg := MergeConfig{K: k, Solver: kmeans.SolverMiniBatch}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runMergeKMeans(pool, cfg, rng.New(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}
