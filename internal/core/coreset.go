package core

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// CoresetTreeSummarizer reduces a chunk to an m-point weighted coreset
// with a StreamKM++-style coreset tree (Ackermann et al.): the chunk
// starts as one node whose representative is a uniformly sampled point;
// the highest-cost leaf is repeatedly split by drawing a new
// representative D^2-proportionally among its members and moving the
// members that are closer to it, until the tree has m leaves. Each leaf
// emits its representative point weighted by its member count, so the
// summary's total weight equals the chunk size — the same invariant the
// k-means partial operator maintains — and the merge step consumes it
// unchanged.
//
// Unlike the k-means operator it runs no Lloyd iterations at all: cost
// is O(n log m) expected, which is what makes it the fast summarizer
// for large chunks (ROADMAP item 2b; SNIPPETS 1-3 show CapyMOA/clusopt
// exposing the same coreset_size knob).
type CoresetTreeSummarizer struct {
	size int
}

// NewCoresetTreeSummarizer builds a coreset-tree summarizer emitting at
// most size points per chunk.
func NewCoresetTreeSummarizer(size int) (*CoresetTreeSummarizer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: coreset size must be positive, got %d", size)
	}
	return &CoresetTreeSummarizer{size: size}, nil
}

// Size returns the configured coreset size m.
func (s *CoresetTreeSummarizer) Size() int { return s.size }

// Spec implements Summarizer.
func (s *CoresetTreeSummarizer) Spec() SummarizerSpec {
	return SummarizerSpec{Name: SummarizerCoreset, Params: map[string]string{
		"m": strconv.Itoa(s.size),
	}}
}

// coresetLeaf is one tree leaf: the indices it owns, its representative
// (an index into the chunk), each member's squared distance to the
// representative, and the summed cost.
type coresetLeaf struct {
	members []int
	rep     int
	d2      []float64
	cost    float64
}

func newCoresetLeaf(chunk *dataset.Set, members []int, rep int) *coresetLeaf {
	l := &coresetLeaf{members: members, rep: rep, d2: make([]float64, len(members))}
	rv := chunk.At(rep)
	for i, m := range members {
		d := vector.SquaredDistance(chunk.At(m), rv)
		l.d2[i] = d
		l.cost += d
	}
	return l
}

// Summarize implements Summarizer.
func (s *CoresetTreeSummarizer) Summarize(chunk *dataset.Set, r *rng.RNG) (*PartialResult, error) {
	n := chunk.Len()
	if n == 0 {
		return nil, errors.New("core: empty partition")
	}
	if r == nil {
		return nil, errors.New("core: coreset summarizer requires an RNG")
	}
	start := time.Now()
	out, err := dataset.NewWeightedSet(chunk.Dim())
	if err != nil {
		return nil, err
	}

	// Chunks at or below the coreset size pass through unit-weighted:
	// the exact points are already a summary of themselves.
	if n <= s.size {
		out.Grow(n)
		for i := 0; i < n; i++ {
			if err := out.Add(dataset.WeightedPoint{Vec: chunk.At(i).Clone(), Weight: 1}); err != nil {
				return nil, err
			}
		}
		return &PartialResult{
			Centroids: out,
			Points:    n,
			Elapsed:   time.Since(start),
		}, nil
	}

	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	root := newCoresetLeaf(chunk, all, r.Intn(n))
	leaves := []*coresetLeaf{root}

	for len(leaves) < s.size {
		// Split the strictly highest-cost leaf; creation order breaks
		// ties so the tree is deterministic.
		best := 0
		for i := 1; i < len(leaves); i++ {
			if leaves[i].cost > leaves[best].cost {
				best = i
			}
		}
		leaf := leaves[best]
		if leaf.cost <= 0 {
			break // every remaining leaf is a point mass; nothing to split
		}
		// Draw the new representative D^2-proportionally among members.
		target := r.Float64() * leaf.cost
		pick := len(leaf.members) - 1
		var acc float64
		for i, d := range leaf.d2 {
			acc += d
			if target < acc {
				pick = i
				break
			}
		}
		newRep := leaf.members[pick]
		nv := chunk.At(newRep)
		// Members strictly closer to the new representative move to the
		// new leaf; the old representative (distance 0) always stays.
		var stay, move []int
		for i, m := range leaf.members {
			if vector.SquaredDistance(chunk.At(m), nv) < leaf.d2[i] {
				move = append(move, m)
			} else {
				stay = append(stay, m)
			}
		}
		if len(move) == 0 || len(stay) == 0 {
			// Degenerate split (coincident points); mark the leaf
			// unsplittable and continue with the others.
			leaf.cost = 0
			continue
		}
		leaves[best] = newCoresetLeaf(chunk, stay, leaf.rep)
		leaves = append(leaves, newCoresetLeaf(chunk, move, newRep))
	}

	out.Grow(len(leaves))
	var totalCost float64
	for _, l := range leaves {
		if err := out.Add(dataset.WeightedPoint{
			Vec:    chunk.At(l.rep).Clone(),
			Weight: float64(len(l.members)),
		}); err != nil {
			return nil, err
		}
		totalCost += l.cost
	}
	return &PartialResult{
		Centroids: out,
		MSE:       totalCost / float64(n),
		Points:    n,
		Elapsed:   time.Since(start),
	}, nil
}
