package core

import (
	"context"
	"math"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/metrics"
)

func TestOptionsValidation(t *testing.T) {
	cell := blobCell(t, 4, 200, 1)
	cases := []struct {
		name string
		opts Options
	}{
		{"no K", Options{Restarts: 1, Splits: 2}},
		{"no restarts", Options{K: 4, Splits: 2}},
		{"neither splits nor budget", Options{K: 4, Restarts: 1}},
		{"both splits and budget", Options{K: 4, Restarts: 1, Splits: 2, ChunkPoints: 50}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Cluster(cell, tc.opts); err == nil {
				t.Fatalf("Cluster should reject %s", tc.name)
			}
			if _, err := ClusterParallel(context.Background(), cell, tc.opts); err == nil {
				t.Fatalf("ClusterParallel should reject %s", tc.name)
			}
		})
	}
}

func TestClusterBasic(t *testing.T) {
	// k is chosen well above the latent blob count, as in the paper
	// (k = 40 over cells with fewer dominant modes): with k ≈ blobs,
	// heaviest-weight merge seeding can trap Lloyd in a local minimum.
	cell := blobCell(t, 6, 600, 5)
	res, err := Cluster(cell, Options{K: 12, Restarts: 3, Splits: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 4 {
		t.Fatalf("Partitions = %d", res.Partitions)
	}
	if len(res.Centroids) != 12 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	var w float64
	for _, x := range res.Weights {
		w += x
	}
	if math.Abs(w-600) > 1e-6 {
		t.Fatalf("total merged weight %g != N", w)
	}
	if res.PartialTime <= 0 || res.Elapsed <= 0 {
		t.Fatal("timings not recorded")
	}
	if res.PartialIterations <= 0 || res.MergeIterations <= 0 {
		t.Fatal("iteration counts not recorded")
	}
	if res.PointMSE <= 0 {
		t.Fatal("PointMSE not computed")
	}
	// On well-separated blobs the final centroids must explain the data
	// well: PointMSE close to within-blob variance (0.25 per dim * 3).
	if res.PointMSE > 3 {
		t.Fatalf("PointMSE = %g, clustering failed", res.PointMSE)
	}
}

func TestClusterChunkBudgetMode(t *testing.T) {
	cell := blobCell(t, 4, 500, 9)
	res, err := Cluster(cell, Options{K: 4, Restarts: 2, ChunkPoints: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 500 points / 120 budget = 5 chunks (ceil)
	if res.Partitions != 5 {
		t.Fatalf("Partitions = %d, want 5", res.Partitions)
	}
}

func TestClusterDeterministicBySeed(t *testing.T) {
	cell := blobCell(t, 5, 400, 13)
	opts := Options{K: 5, Restarts: 2, Splits: 4, Seed: 99}
	a, err := Cluster(cell, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(cell, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.MergeMSE != b.MergeMSE || a.PointMSE != b.PointMSE {
		t.Fatalf("same seed, different MSE: %g/%g vs %g/%g",
			a.MergeMSE, a.PointMSE, b.MergeMSE, b.PointMSE)
	}
	for i := range a.Centroids {
		if !a.Centroids[i].Equal(b.Centroids[i]) {
			t.Fatalf("centroid %d differs", i)
		}
	}
}

func TestClusterParallelMatchesSerial(t *testing.T) {
	// ClusterParallel derives per-chunk RNGs before dispatch and merges
	// collectively, so its result must be identical to Cluster for the
	// same options regardless of clone count.
	cell := blobCell(t, 5, 500, 17)
	opts := Options{K: 5, Restarts: 2, Splits: 5, Seed: 55}
	serial, err := Cluster(cell, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, clones := range []int{1, 2, 4} {
		opts.Parallelism = clones
		par, err := ClusterParallel(context.Background(), cell, opts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(par.MergeMSE-serial.MergeMSE) > 1e-12 {
			t.Fatalf("clones=%d: MergeMSE %g != serial %g", clones, par.MergeMSE, serial.MergeMSE)
		}
		for i := range serial.Centroids {
			if !par.Centroids[i].Equal(serial.Centroids[i]) {
				t.Fatalf("clones=%d: centroid %d differs", clones, i)
			}
		}
	}
}

func TestClusterParallelCancellation(t *testing.T) {
	cell := blobCell(t, 5, 2000, 19)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ClusterParallel(ctx, cell, Options{K: 5, Restarts: 10, Splits: 10, Seed: 1, Parallelism: 2})
	if err == nil {
		t.Fatal("pre-cancelled context should abort the plan")
	}
}

func TestClusterSplitsLargerThanCellErrors(t *testing.T) {
	cell := blobCell(t, 2, 10, 21)
	if _, err := Cluster(cell, Options{K: 2, Restarts: 1, Splits: 11, Seed: 1}); err == nil {
		t.Fatal("splits > N should error")
	}
}

func TestClusterKTooLargeForChunksErrors(t *testing.T) {
	// 100 points in 10 splits = 10-point chunks; k=20 cannot be seeded.
	cell := blobCell(t, 2, 100, 23)
	if _, err := Cluster(cell, Options{K: 20, Restarts: 1, Splits: 10, Seed: 1}); err == nil {
		t.Fatal("k > chunk size should error")
	}
}

func TestMergeMSEComparableToSerialDefinition(t *testing.T) {
	// Sanity link between the two metrics: for a perfectly clusterable
	// cell, both the paper's E_pm-based MSE and the point MSE should be
	// small and of the same order.
	cell := blobCell(t, 4, 800, 29)
	res, err := Cluster(cell, Options{K: 4, Restarts: 5, Splits: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if res.MergeMSE > res.PointMSE {
		// Merge MSE measures centroid-to-centroid spread, which is
		// strictly tighter than point spread on clean data.
		t.Fatalf("MergeMSE %g > PointMSE %g on clean blobs", res.MergeMSE, res.PointMSE)
	}
	direct, err := metrics.MSE(cell, res.Centroids)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct-res.PointMSE) > 1e-12 {
		t.Fatalf("PointMSE %g != recomputed %g", res.PointMSE, direct)
	}
}

func TestClusterSlicingStrategies(t *testing.T) {
	cell := blobCell(t, 4, 400, 37)
	for _, strat := range []dataset.SplitStrategy{dataset.SplitRandom, dataset.SplitSalami, dataset.SplitSpatial} {
		res, err := Cluster(cell, Options{K: 4, Restarts: 2, Splits: 4, Strategy: strat, Seed: 41})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(res.Centroids) != 4 {
			t.Fatalf("%v: %d centroids", strat, len(res.Centroids))
		}
	}
}

func TestClusterIncrementalMergeMode(t *testing.T) {
	cell := blobCell(t, 4, 400, 43)
	res, err := Cluster(cell, Options{K: 4, Restarts: 2, Splits: 4, MergeMode: MergeIncremental, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 4 {
		t.Fatalf("%d centroids", len(res.Centroids))
	}
}
