package metrics

import (
	"math"
	"testing"

	"streamkm/internal/rng"
)

func TestRandIndexIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 2}
	ri, err := RandIndex(a, a)
	if err != nil || ri != 1 {
		t.Fatalf("RandIndex(a, a) = %g, %v", ri, err)
	}
	// label permutation is still identical
	b := []int{5, 5, 9, 9, 7}
	ri, err = RandIndex(a, b)
	if err != nil || ri != 1 {
		t.Fatalf("permuted = %g, %v", ri, err)
	}
	ari, err := AdjustedRandIndex(a, b)
	if err != nil || math.Abs(ari-1) > 1e-12 {
		t.Fatalf("ARI permuted = %g, %v", ari, err)
	}
}

func TestRandIndexDisagreement(t *testing.T) {
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 0, 1}
	// pairs: (0,1) same/diff, (0,2) diff/same, (0,3) diff/diff agree,
	// (1,2) diff/diff agree, (1,3) diff/same, (2,3) same/diff → 2/6
	ri, err := RandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ri-2.0/6.0) > 1e-12 {
		t.Fatalf("RandIndex = %g, want 1/3", ri)
	}
}

func TestRandIndexErrors(t *testing.T) {
	if _, err := RandIndex([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := RandIndex(nil, nil); err == nil {
		t.Fatal("empty should error")
	}
	if _, err := AdjustedRandIndex([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestRandIndexSinglePoint(t *testing.T) {
	ri, err := RandIndex([]int{3}, []int{8})
	if err != nil || ri != 1 {
		t.Fatalf("single point = %g, %v", ri, err)
	}
}

func TestAdjustedRandIndexChanceLevel(t *testing.T) {
	// Independent random labelings: ARI should hover near 0 while the
	// raw Rand index sits well above it.
	r := rng.New(5)
	n := 600
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = r.Intn(4)
		b[i] = r.Intn(4)
	}
	ari, err := AdjustedRandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ari) > 0.05 {
		t.Fatalf("ARI of independent labelings = %g, want ~0", ari)
	}
	ri, err := RandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ri < 0.5 {
		t.Fatalf("raw Rand of independent labelings = %g, expected > 0.5", ri)
	}
}

func TestAdjustedRandIndexDegenerate(t *testing.T) {
	// Everything in one cluster in both labelings.
	a := []int{1, 1, 1, 1}
	ari, err := AdjustedRandIndex(a, a)
	if err != nil || ari != 1 {
		t.Fatalf("degenerate ARI = %g, %v", ari, err)
	}
}

func TestAgreementOnPartialPartitions(t *testing.T) {
	// Merging two clusters of a partition lowers ARI below 1 but keeps
	// it well above chance.
	a := make([]int, 300)
	b := make([]int, 300)
	for i := range a {
		a[i] = i % 3
		if a[i] == 2 {
			b[i] = 1 // cluster 2 merged into 1
		} else {
			b[i] = a[i]
		}
	}
	ari, err := AdjustedRandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ari <= 0.3 || ari >= 1 {
		t.Fatalf("coarsened ARI = %g, want in (0.3, 1)", ari)
	}
}
