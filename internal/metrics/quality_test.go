package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

func twoClusterSet(t *testing.T) *dataset.WeightedSet {
	t.Helper()
	s := dataset.MustNewWeightedSet(1)
	for _, x := range []float64{-10.5, -10, -9.5, 9.5, 10, 10.5} {
		if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(x), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestComputeScatterDecomposition(t *testing.T) {
	s := twoClusterSet(t)
	cs := []vector.Vector{vector.Of(-10), vector.Of(10)}
	sc, err := ComputeScatter(s, cs)
	if err != nil {
		t.Fatal(err)
	}
	// Within: per cluster (0.25 + 0 + 0.25) = 0.5, two clusters → 1.0
	if math.Abs(sc.Within-1.0) > 1e-9 {
		t.Fatalf("Within = %g, want 1", sc.Within)
	}
	// Between: 6 points, each cluster weight 3 at distance 10 from the
	// global mean 0 → 2 * 3 * 100 = 600
	if math.Abs(sc.Between-600) > 1e-9 {
		t.Fatalf("Between = %g, want 600", sc.Between)
	}
	if math.Abs(sc.Total-(sc.Within+sc.Between)) > 1e-9 {
		t.Fatalf("decomposition broken: %g != %g + %g", sc.Total, sc.Within, sc.Between)
	}
	ev := sc.ExplainedVariance()
	if ev < 0.99 || ev > 1 {
		t.Fatalf("ExplainedVariance = %g for well-separated clusters", ev)
	}
}

func TestComputeScatterErrors(t *testing.T) {
	s := twoClusterSet(t)
	if _, err := ComputeScatter(s, nil); err == nil {
		t.Fatal("no centroids should error")
	}
	if _, err := ComputeScatter(dataset.MustNewWeightedSet(1), []vector.Vector{vector.Of(0)}); err == nil {
		t.Fatal("empty set should error")
	}
	zero := dataset.MustNewWeightedSet(1)
	if err := zero.Add(dataset.WeightedPoint{Vec: vector.Of(1), Weight: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeScatter(zero, []vector.Vector{vector.Of(0)}); err == nil {
		t.Fatal("zero weight should error")
	}
}

// Property: Total == Within + Between for the nearest-centroid
// assignment when centroids are the exact cluster means (Huygens'
// theorem needs the assignment's means; we use k-means-style data where
// centroids ARE per-cluster means).
func TestScatterDecompositionProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		s := dataset.MustNewWeightedSet(2)
		for i := 0; i < 60; i++ {
			v := vector.Of(r.NormFloat64()*5, r.NormFloat64()*5)
			if s.Add(dataset.WeightedPoint{Vec: v, Weight: 1 + r.Float64()}) != nil {
				return false
			}
		}
		// Any centroids: decomposition only exactly holds when
		// centroids are assignment means, so compute them in two passes.
		initial := []vector.Vector{vector.Of(-1, 0), vector.Of(1, 0)}
		sums := []vector.Vector{vector.New(2), vector.New(2)}
		ws := make([]float64, 2)
		for _, p := range s.Points() {
			j, _ := vector.NearestIndex(p.Vec, initial)
			sums[j].AddScaled(p.Weight, p.Vec)
			ws[j] += p.Weight
		}
		means := make([]vector.Vector, 0, 2)
		for j := range sums {
			if ws[j] > 0 {
				m := sums[j]
				m.Scale(1 / ws[j])
				means = append(means, m)
			}
		}
		if len(means) == 0 {
			return true
		}
		// One more assignment round against the means to make them the
		// assignment's means (a fixpoint check would iterate; one round
		// is enough for the tolerance below on most draws, so iterate a
		// few times).
		for round := 0; round < 20; round++ {
			sums2 := make([]vector.Vector, len(means))
			ws2 := make([]float64, len(means))
			for j := range sums2 {
				sums2[j] = vector.New(2)
			}
			for _, p := range s.Points() {
				j, _ := vector.NearestIndex(p.Vec, means)
				sums2[j].AddScaled(p.Weight, p.Vec)
				ws2[j] += p.Weight
			}
			for j := range means {
				if ws2[j] > 0 {
					m := sums2[j].Clone()
					m.Scale(1 / ws2[j])
					means[j] = m
				}
			}
		}
		sc, err := ComputeScatter(s, means)
		if err != nil {
			return false
		}
		return math.Abs(sc.Total-(sc.Within+sc.Between)) <= 1e-6*(1+sc.Total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDaviesBouldin(t *testing.T) {
	s := twoClusterSet(t)
	good := []vector.Vector{vector.Of(-10), vector.Of(10)}
	bad := []vector.Vector{vector.Of(-2), vector.Of(2)} // poorly placed
	dbGood, err := DaviesBouldin(s, good)
	if err != nil {
		t.Fatal(err)
	}
	dbBad, err := DaviesBouldin(s, bad)
	if err != nil {
		t.Fatal(err)
	}
	if dbGood >= dbBad {
		t.Fatalf("DB index did not prefer the good clustering: %g vs %g", dbGood, dbBad)
	}
	if dbGood <= 0 {
		t.Fatalf("DB = %g", dbGood)
	}
}

func TestDaviesBouldinErrors(t *testing.T) {
	s := twoClusterSet(t)
	if _, err := DaviesBouldin(s, []vector.Vector{vector.Of(0)}); err == nil {
		t.Fatal("k<2 should error")
	}
	if _, err := DaviesBouldin(dataset.MustNewWeightedSet(1), []vector.Vector{vector.Of(0), vector.Of(1)}); err == nil {
		t.Fatal("empty set should error")
	}
	// all points on one centroid → only 1 non-empty cluster
	one := dataset.MustNewWeightedSet(1)
	if err := one.Add(dataset.WeightedPoint{Vec: vector.Of(0), Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := DaviesBouldin(one, []vector.Vector{vector.Of(0), vector.Of(100)}); err == nil {
		t.Fatal("single non-empty cluster should error")
	}
	// coincident centroids
	if _, err := DaviesBouldin(s, []vector.Vector{vector.Of(-10), vector.Of(-10)}); err == nil {
		t.Fatal("coincident centroids should error")
	}
}
