// Package metrics implements the clustering-quality and timing measures
// the paper reports: the error function E (serial k-means, §2), the
// weighted error function E_pm (partial/merge, §3.3), the mean square
// error used in the convergence test, and a small stopwatch used by the
// benchmark harness.
package metrics

import (
	"errors"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/vector"
)

// ErrNoCentroids is returned when quality is requested against an empty
// centroid set.
var ErrNoCentroids = errors.New("metrics: no centroids")

// SSE returns the paper's error function E: the sum over all points of
// the squared Euclidean distance to the nearest centroid.
func SSE(points *dataset.Set, centroids []vector.Vector) (float64, error) {
	if len(centroids) == 0 {
		return 0, ErrNoCentroids
	}
	var e float64
	for _, p := range points.Points() {
		_, d := vector.NearestIndex(p, centroids)
		e += d
	}
	return e, nil
}

// WeightedSSE returns the paper's E_pm: the weighted sum over data items
// of squared distance to the nearest centroid. With unit weights it
// equals SSE.
func WeightedSSE(points *dataset.WeightedSet, centroids []vector.Vector) (float64, error) {
	if len(centroids) == 0 {
		return 0, ErrNoCentroids
	}
	var e float64
	for _, p := range points.Points() {
		_, d := vector.NearestIndex(p.Vec, centroids)
		e += d * p.Weight
	}
	return e, nil
}

// MSE returns SSE normalized by the number of points — the "mean square
// error" the paper's convergence criterion and Table 2 report. An empty
// point set has MSE 0 by convention.
func MSE(points *dataset.Set, centroids []vector.Vector) (float64, error) {
	if points.Len() == 0 {
		return 0, nil
	}
	e, err := SSE(points, centroids)
	if err != nil {
		return 0, err
	}
	return e / float64(points.Len()), nil
}

// WeightedMSE returns WeightedSSE normalized by total weight. Because
// partial k-means weights centroids by assigned-point counts, the merge
// step's WeightedMSE is directly comparable to the serial MSE over the
// same cell.
func WeightedMSE(points *dataset.WeightedSet, centroids []vector.Vector) (float64, error) {
	tw := points.TotalWeight()
	if tw == 0 {
		return 0, nil
	}
	e, err := WeightedSSE(points, centroids)
	if err != nil {
		return 0, err
	}
	return e / tw, nil
}

// Stopwatch measures wall-clock durations for the benchmark tables. The
// zero value is ready to use.
type Stopwatch struct {
	start   time.Time
	elapsed time.Duration
	running bool
}

// Start begins (or resumes) timing.
func (s *Stopwatch) Start() {
	if !s.running {
		s.start = time.Now()
		s.running = true
	}
}

// Stop pauses timing and accumulates the elapsed interval.
func (s *Stopwatch) Stop() {
	if s.running {
		s.elapsed += time.Since(s.start)
		s.running = false
	}
}

// Elapsed returns the accumulated duration (including a running interval).
func (s *Stopwatch) Elapsed() time.Duration {
	if s.running {
		return s.elapsed + time.Since(s.start)
	}
	return s.elapsed
}

// Reset zeroes the stopwatch.
func (s *Stopwatch) Reset() { *s = Stopwatch{} }
