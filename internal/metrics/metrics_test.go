package metrics

import (
	"math"
	"testing"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/vector"
)

func TestSSEAndMSE(t *testing.T) {
	s := dataset.MustNewSet(1)
	for _, x := range []float64{0, 2, 10, 12} {
		if err := s.Add(vector.Of(x)); err != nil {
			t.Fatal(err)
		}
	}
	cs := []vector.Vector{vector.Of(1), vector.Of(11)}
	sse, err := SSE(s, cs)
	if err != nil {
		t.Fatal(err)
	}
	if sse != 4 { // each point at distance 1 => 4 * 1
		t.Fatalf("SSE = %g, want 4", sse)
	}
	mse, err := MSE(s, cs)
	if err != nil {
		t.Fatal(err)
	}
	if mse != 1 {
		t.Fatalf("MSE = %g, want 1", mse)
	}
}

func TestSSENoCentroids(t *testing.T) {
	s := dataset.MustNewSet(1)
	if err := s.Add(vector.Of(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := SSE(s, nil); err != ErrNoCentroids {
		t.Fatalf("want ErrNoCentroids, got %v", err)
	}
	if _, err := WeightedSSE(dataset.Unweighted(s), nil); err != ErrNoCentroids {
		t.Fatalf("want ErrNoCentroids, got %v", err)
	}
}

func TestMSEEmptySet(t *testing.T) {
	mse, err := MSE(dataset.MustNewSet(2), []vector.Vector{vector.Of(0, 0)})
	if err != nil || mse != 0 {
		t.Fatalf("empty-set MSE = %g, %v", mse, err)
	}
	wm, err := WeightedMSE(dataset.MustNewWeightedSet(2), []vector.Vector{vector.Of(0, 0)})
	if err != nil || wm != 0 {
		t.Fatalf("empty weighted MSE = %g, %v", wm, err)
	}
}

func TestWeightedSSE(t *testing.T) {
	s := dataset.MustNewWeightedSet(1)
	if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(0), Weight: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(4), Weight: 1}); err != nil {
		t.Fatal(err)
	}
	cs := []vector.Vector{vector.Of(2)}
	sse, err := WeightedSSE(s, cs)
	if err != nil {
		t.Fatal(err)
	}
	if sse != 3*4+1*4 {
		t.Fatalf("WeightedSSE = %g, want 16", sse)
	}
	mse, err := WeightedMSE(s, cs)
	if err != nil {
		t.Fatal(err)
	}
	if mse != 4 {
		t.Fatalf("WeightedMSE = %g, want 4", mse)
	}
}

func TestUnitWeightsEquivalence(t *testing.T) {
	s := dataset.MustNewSet(2)
	for i := 0; i < 20; i++ {
		if err := s.Add(vector.Of(float64(i), float64(i%5))); err != nil {
			t.Fatal(err)
		}
	}
	cs := []vector.Vector{vector.Of(5, 2), vector.Of(15, 2)}
	a, err := SSE(s, cs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WeightedSSE(dataset.Unweighted(s), cs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("SSE %g != unit-weight WeightedSSE %g", a, b)
	}
}

func TestStopwatch(t *testing.T) {
	var sw Stopwatch
	if sw.Elapsed() != 0 {
		t.Fatal("fresh stopwatch should read 0")
	}
	sw.Start()
	time.Sleep(10 * time.Millisecond)
	sw.Stop()
	first := sw.Elapsed()
	if first < 5*time.Millisecond {
		t.Fatalf("elapsed %v too small", first)
	}
	// Stop is idempotent
	sw.Stop()
	if sw.Elapsed() != first {
		t.Fatal("Stop changed elapsed while stopped")
	}
	// resume accumulates
	sw.Start()
	sw.Start() // idempotent while running
	time.Sleep(5 * time.Millisecond)
	sw.Stop()
	if sw.Elapsed() <= first {
		t.Fatal("resume did not accumulate")
	}
	sw.Reset()
	if sw.Elapsed() != 0 {
		t.Fatal("Reset did not zero")
	}
}
