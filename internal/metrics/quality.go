package metrics

import (
	"errors"
	"fmt"
	"math"

	"streamkm/internal/dataset"
	"streamkm/internal/vector"
)

// This file adds clustering-quality measures beyond the paper's MSE:
// the within/between scatter decomposition and the Davies-Bouldin index,
// used by the evaluation discussion to compare representations that the
// raw (k-dependent) MSE cannot rank fairly.

// Scatter is the decomposition of total scatter into within-cluster and
// between-cluster parts: Total = Within + Between (both weighted).
type Scatter struct {
	// Within is the weighted sum of squared distances of points to
	// their assigned centroid (the paper's E / E_pm).
	Within float64
	// Between is the weighted sum of squared distances of centroids to
	// the global mean.
	Between float64
	// Total is the weighted sum of squared distances of points to the
	// global mean.
	Total float64
}

// ExplainedVariance returns Between/Total — the fraction of scatter the
// clustering explains, in [0, 1] up to rounding.
func (s Scatter) ExplainedVariance() float64 {
	if s.Total == 0 {
		return 0
	}
	return s.Between / s.Total
}

// ComputeScatter assigns each weighted point to its nearest centroid and
// decomposes the scatter.
func ComputeScatter(points *dataset.WeightedSet, centroids []vector.Vector) (Scatter, error) {
	if len(centroids) == 0 {
		return Scatter{}, ErrNoCentroids
	}
	if points.Len() == 0 {
		return Scatter{}, errors.New("metrics: empty point set")
	}
	dim := points.Dim()
	mean := vector.New(dim)
	var total float64
	for _, p := range points.Points() {
		mean.AddScaled(p.Weight, p.Vec)
		total += p.Weight
	}
	if total <= 0 {
		return Scatter{}, errors.New("metrics: zero total weight")
	}
	mean.Scale(1 / total)

	var s Scatter
	clusterWeights := make([]float64, len(centroids))
	for _, p := range points.Points() {
		j, d := vector.NearestIndex(p.Vec, centroids)
		s.Within += d * p.Weight
		s.Total += vector.SquaredDistance(p.Vec, mean) * p.Weight
		clusterWeights[j] += p.Weight
	}
	for j, c := range centroids {
		s.Between += clusterWeights[j] * vector.SquaredDistance(c, mean)
	}
	return s, nil
}

// DaviesBouldin computes the Davies-Bouldin index over the clustering
// induced by nearest-centroid assignment: the average over clusters of
// the worst (σ_i + σ_j) / d(c_i, c_j) ratio, where σ is the weighted RMS
// within-cluster distance. Lower is better. Clusters that receive no
// points are skipped; an index over fewer than two non-empty clusters is
// an error.
func DaviesBouldin(points *dataset.WeightedSet, centroids []vector.Vector) (float64, error) {
	if len(centroids) < 2 {
		return 0, fmt.Errorf("metrics: Davies-Bouldin needs >= 2 centroids, got %d", len(centroids))
	}
	if points.Len() == 0 {
		return 0, errors.New("metrics: empty point set")
	}
	k := len(centroids)
	sumSq := make([]float64, k)
	weights := make([]float64, k)
	for _, p := range points.Points() {
		j, d := vector.NearestIndex(p.Vec, centroids)
		sumSq[j] += d * p.Weight
		weights[j] += p.Weight
	}
	var live []int
	sigma := make([]float64, k)
	for j := 0; j < k; j++ {
		if weights[j] > 0 {
			sigma[j] = math.Sqrt(sumSq[j] / weights[j])
			live = append(live, j)
		}
	}
	if len(live) < 2 {
		return 0, fmt.Errorf("metrics: only %d non-empty clusters", len(live))
	}
	var db float64
	for _, i := range live {
		worst := 0.0
		for _, j := range live {
			if i == j {
				continue
			}
			d := vector.Distance(centroids[i], centroids[j])
			if d == 0 {
				return 0, fmt.Errorf("metrics: coincident centroids %d and %d", i, j)
			}
			if r := (sigma[i] + sigma[j]) / d; r > worst {
				worst = r
			}
		}
		db += worst
	}
	return db / float64(len(live)), nil
}
