package metrics

import (
	"errors"
	"fmt"
)

// This file measures agreement between two clusterings of the same
// points — the Rand index and its chance-adjusted form. MSE says how
// tight a clustering is; agreement says whether two algorithms carve the
// data the same way, which is the sharper question when comparing
// partial/merge against serial k-means.

// RandIndex returns the fraction of point pairs on which the two
// labelings agree (same cluster in both, or different clusters in
// both). 1 means identical partitions up to label permutation.
func RandIndex(a, b []int) (float64, error) {
	if err := checkLabelings(a, b); err != nil {
		return 0, err
	}
	n := len(a)
	if n < 2 {
		return 1, nil
	}
	var agree, total float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameA := a[i] == a[j]
			sameB := b[i] == b[j]
			if sameA == sameB {
				agree++
			}
			total++
		}
	}
	return agree / total, nil
}

// AdjustedRandIndex returns the Hubert-Arabie chance-corrected Rand
// index: 0 expected for independent random labelings, 1 for identical
// partitions. It is computed from the contingency table in O(n + |A||B|).
func AdjustedRandIndex(a, b []int) (float64, error) {
	if err := checkLabelings(a, b); err != nil {
		return 0, err
	}
	n := len(a)
	if n < 2 {
		return 1, nil
	}
	// Contingency table with dense relabeling.
	aIDs := map[int]int{}
	bIDs := map[int]int{}
	for _, x := range a {
		if _, ok := aIDs[x]; !ok {
			aIDs[x] = len(aIDs)
		}
	}
	for _, x := range b {
		if _, ok := bIDs[x]; !ok {
			bIDs[x] = len(bIDs)
		}
	}
	table := make([][]int, len(aIDs))
	for i := range table {
		table[i] = make([]int, len(bIDs))
	}
	rowSum := make([]int, len(aIDs))
	colSum := make([]int, len(bIDs))
	for i := 0; i < n; i++ {
		r, c := aIDs[a[i]], bIDs[b[i]]
		table[r][c]++
		rowSum[r]++
		colSum[c]++
	}
	choose2 := func(m int) float64 { return float64(m) * float64(m-1) / 2 }
	var sumCells, sumRows, sumCols float64
	for r := range table {
		sumRows += choose2(rowSum[r])
		for c := range table[r] {
			sumCells += choose2(table[r][c])
		}
	}
	for c := range colSum {
		sumCols += choose2(colSum[c])
	}
	totalPairs := choose2(n)
	expected := sumRows * sumCols / totalPairs
	maxIndex := (sumRows + sumCols) / 2
	if maxIndex == expected {
		// Degenerate (e.g. both labelings put everything in one
		// cluster): identical by convention.
		return 1, nil
	}
	return (sumCells - expected) / (maxIndex - expected), nil
}

func checkLabelings(a, b []int) error {
	if len(a) != len(b) {
		return fmt.Errorf("metrics: labelings have %d and %d points", len(a), len(b))
	}
	if len(a) == 0 {
		return errors.New("metrics: empty labelings")
	}
	return nil
}
