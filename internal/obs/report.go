package obs

import (
	"encoding/json"
	"math"
	"sort"
)

// ReportSchema identifies the run-report document format. Bump only on
// incompatible changes; additive fields keep the version.
const ReportSchema = "streamkm.run-report/v1"

// CounterSnapshot is one counter's value at snapshot time.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Stage string `json:"stage,omitempty"`
	Value int64  `json:"value"`
}

func (c CounterSnapshot) less(o CounterSnapshot) bool {
	if c.Name != o.Name {
		return c.Name < o.Name
	}
	return c.Stage < o.Stage
}

// GaugeSnapshot is one gauge's value at snapshot time (integer gauges
// are widened to float64 so the document has a single gauge shape).
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Stage string  `json:"stage,omitempty"`
	Value float64 `json:"value"`
}

func (g GaugeSnapshot) less(o GaugeSnapshot) bool {
	if g.Name != o.Name {
		return g.Name < o.Name
	}
	return g.Stage < o.Stage
}

// BucketCount is one histogram bucket: the count of observations v with
// v <= LE (and greater than the previous bucket's bound).
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is one histogram's state at snapshot time. Buckets
// are non-cumulative; Overflow counts observations above the last
// bound. Count always equals the bucket sum plus Overflow.
type HistogramSnapshot struct {
	Name     string        `json:"name"`
	Stage    string        `json:"stage,omitempty"`
	Count    int64         `json:"count"`
	Sum      float64       `json:"sum"`
	Min      float64       `json:"min"`
	Max      float64       `json:"max"`
	Buckets  []BucketCount `json:"buckets"`
	Overflow int64         `json:"overflow"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation inside the bucket the rank falls
// in — the standard fixed-bucket estimator. The first bucket
// interpolates from the observed minimum and every estimate is clamped
// to [Min, Max], so a histogram whose mass sits in one wide bucket
// still answers with a value the distribution actually contained.
// Observations that landed in the overflow bucket answer Max. Returns
// NaN for an empty histogram.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Count)
	var cum int64
	lower := h.Min
	for _, b := range h.Buckets {
		if b.Count > 0 {
			next := float64(cum + b.Count)
			if rank <= next {
				upper := math.Min(b.LE, h.Max)
				if upper < lower {
					upper = lower
				}
				frac := (rank - float64(cum)) / float64(b.Count)
				return clamp(lower+(upper-lower)*frac, h.Min, h.Max)
			}
			cum += b.Count
			lower = math.Min(b.LE, h.Max)
		}
	}
	return h.Max // rank falls in the overflow bucket
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (h HistogramSnapshot) less(o HistogramSnapshot) bool {
	if h.Name != o.Name {
		return h.Name < o.Name
	}
	return h.Stage < o.Stage
}

// Snapshot is the full metrics section of a run report, sorted by
// (name, stage) for byte-stable marshaling.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Sort orders every section by (name, stage). Registry.Snapshot returns
// sorted documents already; callers that append synthesized entries
// (the engine absorbing stream stats) re-sort before marshaling.
func (s *Snapshot) Sort() {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].less(s.Counters[j]) })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].less(s.Gauges[j]) })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].less(s.Histograms[j]) })
}

// Counter returns the snapshotted value of (name, stage), or 0.
func (s Snapshot) Counter(name, stage string) int64 {
	for _, c := range s.Counters {
		if c.Name == name && c.Stage == stage {
			return c.Value
		}
	}
	return 0
}

// Histogram returns the snapshotted histogram for (name, stage), or nil.
func (s Snapshot) Histogram(name, stage string) *HistogramSnapshot {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name && s.Histograms[i].Stage == stage {
			return &s.Histograms[i]
		}
	}
	return nil
}

// AdmissionReport mirrors the memory governor's plan-fitting decision
// in report form (see govern.Admission).
type AdmissionReport struct {
	BudgetBytes int64 `json:"budget_bytes"`
	ChunkPoints int   `json:"chunk_points"`
	Clones      int   `json:"clones"`
	Workers     int   `json:"workers"`
	Constrained bool  `json:"constrained"`
}

// DegradedReport summarizes a governed run that returned a partial
// answer (see engine.DegradedResult).
type DegradedReport struct {
	DroppedChunks    int  `json:"dropped_chunks"`
	DroppedCells     int  `json:"dropped_cells"`
	PartialCells     int  `json:"partial_cells"`
	PointsLost       int  `json:"points_lost"`
	DeadlineExceeded bool `json:"deadline_exceeded"`
	Stalls           int  `json:"stalls"`
}

// TraceOp is one operator's span aggregate, cross-referencing the trace
// timeline: Op matches both the timeline lane and the stage label of
// the metric families in Metrics.
type TraceOp struct {
	Op          string  `json:"op"`
	Spans       int     `json:"spans"`
	BusySeconds float64 `json:"busy_seconds"`
}

// Report is the schema-stable JSON run report: run-level facts, the
// governor's decisions, the full metrics snapshot, and the trace
// cross-reference. Marshal with MarshalJSON (or json.MarshalIndent) —
// field order and metric ordering are deterministic.
type Report struct {
	Schema         string           `json:"schema"`
	ElapsedSeconds float64          `json:"elapsed_seconds"`
	Cells          int              `json:"cells"`
	Chunks         int              `json:"chunks"`
	Restarts       int              `json:"restarts"`
	Stalls         int              `json:"stalls"`
	Admission      *AdmissionReport `json:"admission,omitempty"`
	Degraded       *DegradedReport  `json:"degraded,omitempty"`
	Metrics        Snapshot         `json:"metrics"`
	Trace          []TraceOp        `json:"trace,omitempty"`
	DroppedSpans   int              `json:"dropped_spans,omitempty"`
}

// JSON marshals the report with indentation, the exact bytes `pmkm
// -report` writes.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
