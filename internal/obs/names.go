package obs

// Metric family names. Every producer and consumer (engine wiring,
// pmkm's progress ticker, the report tests) refers to these constants,
// so the JSON report's vocabulary is defined in exactly one place.
//
// Stage labels: stream_* and stage_* families are labeled with the
// operator name ("scan", "partial-kmeans", "merge-kmeans" — the same
// names the trace timeline uses); kmeans_* families are labeled with
// the phase that ran Lloyd ("partial-kmeans", "merge-kmeans");
// queue_* families are labeled with the queue name ("chunks",
// "partials"); engine_* and govern_* families are run-global (no
// label).
const (
	// Stream-stage families, absorbed from stream.OpStats.
	StreamItemsIn     = "stream_items_in"     // items consumed by the stage
	StreamItemsOut    = "stream_items_out"    // items emitted downstream
	StreamRetries     = "stream_retries"      // supervised re-attempts
	StreamQuarantined = "stream_quarantined"  // poison items diverted to the DLQ
	StreamDropped     = "stream_dropped"      // poison items lost to DLQ overflow
	StreamPanics      = "stream_panics"       // operator panics recovered by supervision
	StreamClones      = "stream_clones"       // gauge: peak replica count
	StreamBusySeconds = "stream_busy_seconds" // gauge: cumulative in-operator time

	// Queue families, absorbed from stream.Queue counters.
	QueueHighWater = "queue_highwater" // gauge: deepest observed backlog
	QueueEnqueued  = "queue_enqueued"
	QueueDequeued  = "queue_dequeued"

	// Engine families (run-global), updated live during execution.
	EngineChunksTotal    = "engine_chunks_total"    // planned partitions
	EngineChunksDone     = "engine_chunks_done"     // partitions journaled (completed)
	EngineChunkAttempts  = "engine_chunk_attempts"  // partial invocations incl. retries
	EngineCellsTotal     = "engine_cells_total"     // planned cells
	EngineCellsMerged    = "engine_cells_merged"    // cells finalized by the merge stage
	EnginePoints         = "engine_points"          // input points entering partial steps
	EngineBytes          = "engine_bytes"           // those points' in-memory bytes
	EngineRestarts       = "engine_restarts"        // plan-level recoveries
	EngineDupChunks      = "engine_dup_chunks"      // duplicate chunk deliveries absorbed by the journal
	EngineDegradedChunks = "engine_degraded_chunks" // partitions missing from the answer
	EngineDegradedPoints = "engine_degraded_points" // points in those partitions

	// Governor families (run-global).
	GovernAdmissionRefits = "govern_admission_refits" // memory admissions that shrank the plan
	GovernWatchdogCancels = "govern_watchdog_cancels" // attempts cancelled by the stall watchdog

	// Per-stage distributions (updated once per chunk, never per point).
	StageSeconds = "stage_seconds" // histogram: per-item stage latency
	ChunkPoints  = "chunk_points"  // histogram: partition sizes

	// K-means families, labeled by the phase that ran Lloyd. With a
	// non-k-means summarizer the partial-stage labels carry that
	// operator's name instead ("partial-ecvq", "partial-coreset") and
	// iteration/restart counters read 0 for operators that run no Lloyd.
	KMeansIterations   = "kmeans_iterations"     // Lloyd iterations summed over runs
	KMeansRestarts     = "kmeans_restarts"       // seed-set restarts executed
	KMeansConverged    = "kmeans_converged"      // runs meeting the ΔMSE criterion
	KMeansLastDeltaMSE = "kmeans_last_delta_mse" // float gauge: winning run's final ΔMSE

	// Summarizer families, labeled by the partial-stage operator.
	SummaryPoints = "summary_points" // weighted points emitted by chunk summaries

	// Snapshot families for the windowed continuous-query path, all
	// labeled "snapshot" (one query surface per clusterer). Counters
	// mirror core.SnapshotStats; the histogram is observed once per
	// Snapshot call by the facade.
	SnapshotQueries    = "snapshot_queries"     // Snapshot calls
	SnapshotCacheHits  = "snapshot_cache_hits"  // answered without k-means work
	SnapshotWarmStarts = "snapshot_warm_starts" // warm-started mini-batch refines
	SnapshotResyncs    = "snapshot_resyncs"     // periodic full-merge resyncs
	SnapshotRefineIter = "snapshot_refine_iterations"
	SnapshotSeconds    = "snapshot_seconds" // histogram: per-query latency

	// Serving-layer families, exported by the streamkmd daemon's
	// /metrics endpoint. Counters and gauges are daemon-global (no
	// label) except serve_rejects, which is labeled by the refusal
	// reason ("memory", "queue-full", "draining", "session-limit").
	ServeSessions            = "serve_sessions"             // gauge: live sessions
	ServeSessionsCreated     = "serve_sessions_created"     // sessions admitted since boot
	ServeSessionsRecovered   = "serve_sessions_recovered"   // sessions rebuilt from disk at boot
	ServeSessionsEvicted     = "serve_sessions_evicted"     // sessions deleted (client or deadline)
	ServeSessionsQuarantined = "serve_sessions_quarantined" // sessions isolated by the watchdog
	ServeRejects             = "serve_rejects"              // 503 refusals, labeled by reason
	ServeIngestBatches       = "serve_ingest_batches"       // ingest batches applied
	ServeIngestPoints        = "serve_ingest_points"        // points applied across sessions
	ServeQueries             = "serve_queries"              // snapshot/finish queries served
	ServeWALFsyncs           = "serve_wal_fsyncs"           // write-ahead log fsyncs
	ServeCheckpoints         = "serve_checkpoints"          // checkpoint compactions completed
	ServeCheckpointErrors    = "serve_checkpoint_errors"    // compactions that failed (session kept running on its WAL)
	ServeMemBytes            = "serve_mem_bytes"            // gauge: admitted working-set estimate
	ServeIngestSeconds       = "serve_ingest_seconds"       // histogram: per-batch apply latency
	ServeQuerySeconds        = "serve_query_seconds"        // histogram: per-query latency

	// Distributed-runtime families, labeled by the worker address
	// (dist_workers_live is run-global).
	DistChunksDone  = "dist_chunks_done"  // chunks a worker computed (completed leases)
	DistRetries     = "dist_retries"      // transport retries against a worker
	DistEvictions   = "dist_evictions"    // permanent evictions of a worker
	DistDupResults  = "dist_dup_results"  // duplicate/stale centroid returns deduplicated
	DistBytesSent   = "dist_bytes_sent"   // frame bytes shipped to a worker
	DistBytesRecv   = "dist_bytes_recv"   // frame bytes received from a worker
	DistWorkersLive = "dist_workers_live" // gauge: workers currently connected
)
