package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// Tests for the metrics core's two load-bearing promises: instruments
// stay correct under concurrent writers (the executors bump them from
// cloned operators), and snapshots are internally consistent and
// byte-stable even while writers are still running.

func TestCounterGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c", "s")
	g := reg.Gauge("g", "s")
	f := reg.FloatGauge("f", "s")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				c.Add(2)
				g.SetMax(int64(w*perWorker + i))
				f.Set(float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker*3 {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker*3)
	}
	if got := g.Value(); got != workers*perWorker-1 {
		t.Fatalf("gauge high-water = %d, want %d", got, workers*perWorker-1)
	}
	if got := f.Value(); got < 0 || got >= perWorker {
		t.Fatalf("float gauge = %g, want a written value", got)
	}
}

func TestCounterIgnoresNegativeDeltas(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	c.Add(0)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5 (negative and zero deltas ignored)", c.Value())
	}
}

func TestHistogramBucketSemantics(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	for _, v := range []float64{0.5, 1, 1.5, 10, 11} {
		h.Observe(v)
	}
	s := h.snapshot("lat", "stage")
	if s.Count != 5 || s.Overflow != 1 {
		t.Fatalf("count = %d overflow = %d, want 5 and 1", s.Count, s.Overflow)
	}
	// v <= bound lands in the bucket: 0.5 and exactly 1 in the first,
	// 1.5 and exactly 10 in the second, 11 overflows.
	if s.Buckets[0].Count != 2 || s.Buckets[1].Count != 2 {
		t.Fatalf("buckets = %+v, want counts [2 2]", s.Buckets)
	}
	if s.Min != 0.5 || s.Max != 11 {
		t.Fatalf("min/max = %g/%g, want 0.5/11", s.Min, s.Max)
	}
	if want := 0.5 + 1 + 1.5 + 10 + 11; s.Sum != want {
		t.Fatalf("sum = %g, want %g", s.Sum, want)
	}
	if h.Count() != 5 || h.Sum() != 24 {
		t.Fatalf("Count()/Sum() = %d/%g", h.Count(), h.Sum())
	}
	h.ObserveDuration(2 * time.Second)
	if h.Count() != 6 || h.Sum() != 26 {
		t.Fatalf("ObserveDuration did not record 2s: count %d sum %g", h.Count(), h.Sum())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("c", "a") != reg.Counter("c", "a") {
		t.Fatal("same (name, stage) must return the same counter")
	}
	if reg.Counter("c", "a") == reg.Counter("c", "b") {
		t.Fatal("different stages must get distinct counters")
	}
	h1 := reg.Histogram("h", "", []float64{1, 2})
	h2 := reg.Histogram("h", "", []float64{99})
	if h1 != h2 {
		t.Fatal("same histogram key must return the same instrument")
	}
	if len(h1.snapshot("h", "").Buckets) != 2 {
		t.Fatal("second Histogram call must not rebucket the instrument")
	}
}

// TestSnapshotWhileWriting hammers every instrument kind from several
// goroutines while snapshotting continuously; under -race this is the
// concurrency test, and each histogram snapshot must be internally
// consistent (bucket sum plus overflow equals the count) because the
// copy happens under the instrument's lock.
func TestSnapshotWhileWriting(t *testing.T) {
	reg := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("items", "partial")
			h := reg.Histogram("latency", "partial", LatencyBuckets())
			g := reg.Gauge("depth", "chunks")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i%200) * 1e-3)
				g.SetMax(int64(i % 64))
			}
		}(w)
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	snaps := 0
	for time.Now().Before(deadline) {
		s := reg.Snapshot()
		for _, h := range s.Histograms {
			var inBuckets int64
			for _, b := range h.Buckets {
				inBuckets += b.Count
			}
			if inBuckets+h.Overflow != h.Count {
				t.Fatalf("torn histogram snapshot: buckets %d + overflow %d != count %d",
					inBuckets, h.Overflow, h.Count)
			}
		}
		snaps++
	}
	close(stop)
	wg.Wait()
	if snaps == 0 {
		t.Fatal("no snapshots taken while writing")
	}
	final := reg.Snapshot()
	if got := final.Counter("items", "partial"); got == 0 {
		t.Fatal("final snapshot lost the counter writes")
	}
}

// TestSnapshotDeterministicJSON registers identical metrics in two
// different orders and requires byte-identical marshaled snapshots —
// the schema-stability contract behind diffable pmkm -report output.
func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func(order []string) Snapshot {
		reg := NewRegistry()
		for _, stage := range order {
			reg.Counter("items", stage).Add(3)
			reg.Gauge("depth", stage).Set(2)
			reg.Histogram("latency", stage, []float64{1, 10}).Observe(0.5)
		}
		return reg.Snapshot()
	}
	a, err := json.Marshal(build([]string{"scan", "partial-kmeans", "merge-kmeans"}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(build([]string{"merge-kmeans", "scan", "partial-kmeans"}))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("registration order leaked into the document:\n%s\n%s", a, b)
	}
}

func TestSnapshotLookupHelpers(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(EngineChunksDone, "").Add(7)
	reg.Histogram(StageSeconds, "partial-kmeans", LatencyBuckets()).Observe(0.01)
	s := reg.Snapshot()
	if got := s.Counter(EngineChunksDone, ""); got != 7 {
		t.Fatalf("Counter lookup = %d, want 7", got)
	}
	if got := s.Counter("absent", ""); got != 0 {
		t.Fatalf("absent counter = %d, want 0", got)
	}
	h := s.Histogram(StageSeconds, "partial-kmeans")
	if h == nil || h.Count != 1 {
		t.Fatalf("Histogram lookup = %+v, want count 1", h)
	}
	if s.Histogram(StageSeconds, "merge-kmeans") != nil {
		t.Fatal("absent histogram must be nil")
	}
}

func TestReportJSONStable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(EngineCellsMerged, "").Add(2)
	rep := &Report{Schema: ReportSchema, Cells: 2, Metrics: reg.Snapshot()}
	a, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Report.JSON is not deterministic")
	}
	var parsed map[string]any
	if err := json.Unmarshal(a, &parsed); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if parsed["schema"] != "streamkm.run-report/v1" {
		t.Fatalf("schema = %v, want streamkm.run-report/v1", parsed["schema"])
	}
}
