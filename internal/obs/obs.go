// Package obs is the engine's unified observability core. The paper's
// Conquest engine chooses operator cloning and chunk sizes from runtime
// resource evidence (§4); the reproduction's re-optimizer, governor,
// and watchdog all act on such evidence too, but until this package it
// was scattered across OpStats fields, queue high-water marks, and
// heartbeat counters — partially exported and invisible to facade and
// CLI users. obs absorbs those signals into one concurrency-safe
// metrics registry (counters, gauges, fixed-bucket histograms, all
// labeled by stage) and renders one stable JSON document per run, so a
// user can ask the system where time and memory went per stage.
//
// Hot-path discipline: counters and gauges are single atomics, safe to
// bump from inside operators; histograms take a mutex and must only be
// updated at chunk granularity (once per item a stage processes), never
// per point — the Lloyd loop itself stays allocation-free and
// instrumentation-free.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax raises the gauge to v if v is larger — the high-water idiom
// used for queue depths and clone counts.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an atomic instantaneous float64 (e.g. the last
// converged ΔMSE of a stage).
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value (0 until first Set).
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: observation v lands in the
// first bucket whose upper bound satisfies v <= bound, or in the
// overflow bucket. It is guarded by a mutex, which keeps every snapshot
// internally consistent (bucket counts always sum to Count); callers
// must therefore observe at chunk granularity, not per point.
type Histogram struct {
	mu       sync.Mutex
	bounds   []float64
	counts   []int64
	overflow int64
	count    int64
	sum      float64
	min, max float64
}

// NewHistogram returns a histogram over the given strictly increasing
// upper bounds. An empty bounds slice yields a histogram that only
// tracks count/sum/min/max.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.overflow++
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot copies the histogram state under its lock.
func (h *Histogram) snapshot(name, stage string) HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Name:     name,
		Stage:    stage,
		Count:    h.count,
		Sum:      h.sum,
		Overflow: h.overflow,
		Buckets:  make([]BucketCount, len(h.bounds)),
	}
	if h.count > 0 {
		s.Min, s.Max = h.min, h.max
	}
	for i, b := range h.bounds {
		s.Buckets[i] = BucketCount{LE: b, Count: h.counts[i]}
	}
	return s
}

// LatencyBuckets is the default per-chunk latency bucketing in seconds:
// log-spaced from 100µs to ~100s, wide enough for both toy cells and
// multi-minute partial steps.
func LatencyBuckets() []float64 {
	return []float64{1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2, 0.1, 0.25, 1, 2.5, 10, 25, 100}
}

// SizeBuckets is the default size bucketing (points per chunk):
// log-spaced powers of ten with a 2.5/5 split.
func SizeBuckets() []float64 {
	return []float64{10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 1_000_000}
}

// metricKey identifies one metric instance: a family name plus the
// stage label ("" for run-global metrics).
type metricKey struct {
	name  string
	stage string
}

// Registry holds a run's metric families. Metric accessors get-or-create
// under a lock and return the live instrument; instruments themselves
// are lock-free (counters, gauges) or chunk-granular (histograms), so
// stages cache the instrument once and update it on the hot path.
type Registry struct {
	mu       sync.Mutex
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	fgauges  map[metricKey]*FloatGauge
	hists    map[metricKey]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[metricKey]*Counter{},
		gauges:   map[metricKey]*Gauge{},
		fgauges:  map[metricKey]*FloatGauge{},
		hists:    map[metricKey]*Histogram{},
	}
}

// Counter returns the counter for (name, stage), creating it on first
// use. Stage "" means a run-global metric.
func (r *Registry) Counter(name, stage string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := metricKey{name, stage}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for (name, stage), creating it on first use.
func (r *Registry) Gauge(name, stage string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := metricKey{name, stage}
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// FloatGauge returns the float gauge for (name, stage), creating it on
// first use.
func (r *Registry) FloatGauge(name, stage string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := metricKey{name, stage}
	g, ok := r.fgauges[k]
	if !ok {
		g = &FloatGauge{}
		r.fgauges[k] = g
	}
	return g
}

// Histogram returns the histogram for (name, stage), creating it with
// the given bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name, stage string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := metricKey{name, stage}
	h, ok := r.hists[k]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[k] = h
	}
	return h
}

// Snapshot captures every metric into a stable, JSON-ready document:
// entries are sorted by (name, stage), so two snapshots of identical
// state marshal to identical bytes. It is safe to call while stages are
// still writing; each instrument is read atomically (counters, gauges)
// or under its lock (histograms), so every individual metric is
// internally consistent.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[metricKey]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[metricKey]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	fgauges := make(map[metricKey]*FloatGauge, len(r.fgauges))
	for k, v := range r.fgauges {
		fgauges[k] = v
	}
	hists := make(map[metricKey]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var s Snapshot
	for k, c := range counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: k.name, Stage: k.stage, Value: c.Value()})
	}
	for k, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: k.name, Stage: k.stage, Value: float64(g.Value())})
	}
	for k, g := range fgauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: k.name, Stage: k.stage, Value: g.Value()})
	}
	for k, h := range hists {
		s.Histograms = append(s.Histograms, h.snapshot(k.name, k.stage))
	}
	s.Sort()
	return s
}
