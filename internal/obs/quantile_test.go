package obs

import (
	"math"
	"testing"
)

func snapFor(bounds []float64, values ...float64) HistogramSnapshot {
	h := NewHistogram(bounds)
	for _, v := range values {
		h.Observe(v)
	}
	return h.snapshot("q", "")
}

func TestQuantileEmpty(t *testing.T) {
	s := snapFor(LatencyBuckets())
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty histogram did not answer NaN")
	}
}

func TestQuantileSingleValue(t *testing.T) {
	s := snapFor(LatencyBuckets(), 0.02)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0.02 {
			t.Fatalf("Quantile(%v) = %v, want 0.02 (the only observation)", q, got)
		}
	}
}

func TestQuantileUniform(t *testing.T) {
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..100, 10 per bucket
	}
	s := snapFor(bounds, vals...)
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50}, {0.95, 95}, {0.99, 99},
	} {
		got := s.Quantile(tc.q)
		// Exactness is bucket-width-limited; one bucket of tolerance.
		if math.Abs(got-tc.want) > 10 {
			t.Errorf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want Min", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %v, want Max", got)
	}
}

// Quantiles are monotone in q and always inside [Min, Max], even with
// mass in the overflow bucket.
func TestQuantileMonotoneAndClamped(t *testing.T) {
	bounds := []float64{1, 2, 4}
	s := snapFor(bounds, 0.5, 1.5, 3, 7, 9, 11) // two observations overflow
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		if v < s.Min || v > s.Max {
			t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, v, s.Min, s.Max)
		}
		prev = v
	}
	if got := s.Quantile(0.99); got != s.Max {
		t.Errorf("rank in the overflow bucket answered %v, want Max %v", got, s.Max)
	}
}
