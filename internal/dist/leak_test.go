package dist

import (
	"context"
	"runtime"
	"testing"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/engine"
	"streamkm/internal/fault"
	"streamkm/internal/rng"
)

// Goroutine-leak coverage for the coordinator: every abnormal ending —
// a worker dying mid-chunk-send, dying while a centroid return is in
// flight, or the caller cancelling a deadline mid-request — must unwind
// the lease's cancel-watcher, the pool's watchdogs, and the worker's
// connection handlers completely.

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (scheduler cleanup is asynchronous).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// leakChunk builds a small standalone work unit for direct Partial calls.
func leakChunk(t *testing.T, cell int) engine.RemoteChunk {
	t.Helper()
	return engine.RemoteChunk{
		Cell: cell, Chunk: 0, Total: 1,
		Points: distCell(t, 120, uint64(cell)+1),
		RNG:    rng.New(uint64(cell)),
		Spec:   core.SummarizerSpec{Name: core.SummarizerKMeans, Params: map[string]string{"k": "4", "restarts": "1"}},
	}
}

// TestLeakWorkerDiesMidChunkSend: the coordinator's chunk frame hits an
// injected disconnect (the worker vanishes as the send happens); the
// lease fails over and everything unwinds.
func TestLeakWorkerDiesMidChunkSend(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		addrs, stop := startWorkers(t, 2, WorkerConfig{AckTimeout: chaosAckTimeout})
		// Frames 1-2 are the dials' Hellos; frame 3 is the first chunk.
		inj := fault.NetDisconnectNth(3)
		pool, err := NewPool(context.Background(), PoolConfig{
			Addrs:          addrs,
			Retry:          quickRetry(4),
			DialTimeout:    chaosDialTimeout,
			RequestTimeout: chaosRequestTimeout,
			Seed:           uint64(round),
			Inject:         inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, trail, err := pool.Partial(context.Background(), leakChunk(t, round)); err != nil {
			t.Fatal(err)
		} else if len(trail) < 2 {
			t.Fatalf("disconnect should have forced a re-lease, trail: %+v", trail)
		}
		pool.Close()
		stop()
	}
	waitForGoroutines(t, baseline)
}

// TestLeakWorkerDiesMidResultReturn: the worker computes the chunk but
// its result frame hits an injected disconnect — death between compute
// and delivery. The lease times out, fails over, and unwinds.
func TestLeakWorkerDiesMidResultReturn(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		// Worker-side frames: 1-2 the Welcomes, 3 the first result.
		inj := fault.NetDisconnectNth(3)
		addrs, stop := startWorkers(t, 2, WorkerConfig{AckTimeout: chaosAckTimeout, Inject: inj})
		pool, err := NewPool(context.Background(), PoolConfig{
			Addrs:          addrs,
			Retry:          quickRetry(4),
			DialTimeout:    chaosDialTimeout,
			RequestTimeout: chaosRequestTimeout,
			Seed:           uint64(round),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, trail, err := pool.Partial(context.Background(), leakChunk(t, round)); err != nil {
			t.Fatal(err)
		} else if len(trail) < 2 {
			t.Fatalf("lost result should have forced a re-lease, trail: %+v", trail)
		}
		pool.Close()
		stop()
	}
	waitForGoroutines(t, baseline)
}

// TestLeakDeadlineCancelMidRequest: the caller's deadline fires while a
// lease is blocked reading a result that will never come (the worker is
// partitioned). The cancel-watcher must close the connection, unblock
// the read, and unwind with everything else.
func TestLeakDeadlineCancelMidRequest(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		addrs, stop := startWorkers(t, 1, WorkerConfig{AckTimeout: chaosAckTimeout})
		inj := fault.NewNet(fault.NetConfig{})
		pool, err := NewPool(context.Background(), PoolConfig{
			Addrs:          addrs,
			Retry:          quickRetry(8),
			DialTimeout:    chaosDialTimeout,
			RequestTimeout: 10 * time.Second, // far beyond the deadline: the ctx must do the cancelling
			Seed:           uint64(round),
			Inject:         inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		inj.Partition(addrs[0]) // chunks vanish; the lease blocks on the read
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		if _, _, err := pool.Partial(ctx, leakChunk(t, round)); err == nil {
			t.Fatal("partial against a partitioned worker should fail at the deadline")
		}
		cancel()
		pool.Close()
		stop()
	}
	waitForGoroutines(t, baseline)
}

// TestLeakEngineRunLeavesNoGoroutines runs the whole distributed engine
// loop — including an eviction — and checks nothing outlives Close.
func TestLeakEngineRunLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 2; round++ {
		cells, q, plan := distScenario(t)
		addrs, stop := startWorkers(t, 3, WorkerConfig{AckTimeout: chaosAckTimeout})
		inj := fault.NewNet(fault.NetConfig{})
		pool, err := NewPool(context.Background(), PoolConfig{
			Addrs:           addrs,
			Retry:           quickRetry(8),
			DialTimeout:     chaosDialTimeout,
			RequestTimeout:  chaosRequestTimeout,
			FailureLimit:    1,
			ProgressTimeout: 5 * time.Second, // arm the per-worker watchdogs too
			Seed:            q.Seed,
			Inject:          inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		inj.Partition(addrs[2])
		_, _, err = engine.NewExec(q, plan,
			engine.WithRemoteWorkers(pool),
			engine.WithRetry(quickRetry(4))).
			Execute(context.Background(), cells)
		if err != nil {
			t.Fatal(err)
		}
		pool.Close()
		stop()
	}
	waitForGoroutines(t, baseline)
}
