package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/fault"
)

// The worker side of the protocol: a stateless compute server. Each
// connection is a serial conversation — the coordinator keeps at most
// one chunk in flight per connection — so the worker needs no queues,
// no scheduler, and no knowledge of the plan: it decodes a chunk,
// reconstructs the summarizer operator the chunk's spec names (the
// identical core.Summarizer the local engine would run), and returns
// the weighted summary.
//
// Delivery is at-least-once from the worker's point of view: after
// sending a result it waits for the coordinator's ACK and resends on
// timeout (the result frame, not the computation), because a result
// whose ACK was lost may or may not have arrived. A new chunk frame
// acts as an implicit ACK — the coordinator never pipelines, so fresh
// work proves the previous result landed (or was abandoned, in which
// case the coordinator's dedup absorbs the orphan).

// WorkerConfig tunes a worker.
type WorkerConfig struct {
	// AckTimeout is how long the worker waits for a result's ACK before
	// resending it (0 = 2s).
	AckTimeout time.Duration
	// Resends caps result retransmissions per chunk (0 = 2; negative =
	// never resend).
	Resends int
	// Inject, when non-nil, injects faults into the worker's outgoing
	// frames — the chaos suite's lost-result and dead-worker scenarios.
	Inject *fault.NetInjector
	// Summarizers, when non-empty, is an allowlist of operator names
	// this worker agrees to run; a chunk naming any other operator is
	// refused with ErrUnknownOperator. Empty allows every operator the
	// worker's binary knows.
	Summarizers []string
	// Logf, when non-nil, receives one line per connection event.
	Logf func(format string, args ...any)
}

// allows reports whether the worker may run the named operator.
func (c WorkerConfig) allows(name string) bool {
	if len(c.Summarizers) == 0 {
		return true
	}
	if name == "" {
		name = core.SummarizerKMeans
	}
	for _, s := range c.Summarizers {
		if s == name {
			return true
		}
	}
	return false
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.AckTimeout <= 0 {
		c.AckTimeout = 2 * time.Second
	}
	if c.Resends == 0 {
		c.Resends = 2
	}
	return c
}

func (c WorkerConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Serve accepts coordinator connections on ln until ctx is cancelled
// (or the listener fails) and serves each on its own goroutine. It
// closes the listener and every live connection on cancellation and
// returns after all connection handlers have exited — no goroutine
// outlives it.
func Serve(ctx context.Context, ln net.Listener, cfg WorkerConfig) error {
	cfg = cfg.withDefaults()
	var (
		mu    sync.Mutex
		conns = map[net.Conn]struct{}{}
		wg    sync.WaitGroup
	)
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		ln.Close()
		mu.Lock()
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				conn.Close()
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
			}()
			if err := serveConn(conn, cfg); err != nil && !isConnDone(err) {
				cfg.logf("dist: worker conn %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// isConnDone reports whether err is an ordinary end of conversation
// (peer closed, listener torn down) rather than a protocol failure.
func isConnDone(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, errInjectedDisconnect)
}

// serveConn runs one coordinator conversation to completion.
func serveConn(conn net.Conn, cfg WorkerConfig) error {
	peer := conn.RemoteAddr().String()
	typ, payload, _, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != frameHello {
		return fmt.Errorf("%w: expected hello, got frame type %d", ErrBadFrame, typ)
	}
	if err := decodeHello(payload); err != nil {
		return err
	}
	if _, err := sendFrame(conn, cfg.Inject, peer, frameWelcome, encodeHello()); err != nil {
		return err
	}

	// next holds a chunk payload that arrived while awaiting an ACK —
	// the implicit-ACK case — and is consumed before reading the socket.
	var next []byte
	for {
		payload := next
		next = nil
		if payload == nil {
			typ, pl, _, err := readFrame(conn)
			if err != nil {
				return err
			}
			switch typ {
			case frameChunk:
				payload = pl
			case frameAck:
				continue // stray ACK for an already-settled result
			default:
				return fmt.Errorf("%w: expected chunk, got frame type %d", ErrBadFrame, typ)
			}
		}

		respType, respPayload, err := computeChunk(payload, cfg)
		if err != nil {
			return err
		}
		next, err = deliver(conn, cfg, peer, respType, respPayload)
		if err != nil {
			return err
		}
	}
}

// computeChunk decodes one chunk payload, resolves the summarizer its
// spec names, and runs it, producing the response frame. A malformed
// chunk, unknown/disallowed operator, or failed computation becomes a
// fail frame; only transport-level problems return an error.
func computeChunk(payload []byte, cfg WorkerConfig) (byte, []byte, error) {
	c, err := decodeChunk(payload)
	if err != nil {
		// The identity may be unreadable; report what we can.
		return frameFail, encodeFail(c.Cell, c.Chunk, err.Error()), nil
	}
	if !cfg.allows(c.Spec.Name) {
		err := fmt.Errorf("%w: operator %q not in this worker's allowlist", ErrUnknownOperator, c.Spec.Name)
		return frameFail, encodeFail(c.Cell, c.Chunk, err.Error()), nil
	}
	summ, err := core.NewSummarizer(c.Spec)
	if err != nil {
		if errors.Is(err, core.ErrUnknownSummarizer) {
			err = fmt.Errorf("%w: %v", ErrUnknownOperator, err)
		}
		return frameFail, encodeFail(c.Cell, c.Chunk, err.Error()), nil
	}
	pr, err := summ.Summarize(c.Points, c.RNG)
	if err != nil {
		return frameFail, encodeFail(c.Cell, c.Chunk, err.Error()), nil
	}
	resp, err := encodeResult(c.Cell, c.Chunk, c.Total, pr)
	if err != nil {
		return 0, nil, err
	}
	return frameResult, resp, nil
}

// deliver sends the response and, for results, awaits the ACK —
// resending up to cfg.Resends times on timeout. It returns a chunk
// payload if one arrived in place of the ACK (the implicit-ACK case).
func deliver(conn net.Conn, cfg WorkerConfig, peer string, respType byte, respPayload []byte) (nextChunk []byte, err error) {
	for attempt := 0; ; attempt++ {
		if _, err := sendFrame(conn, cfg.Inject, peer, respType, respPayload); err != nil {
			return nil, err
		}
		if respType != frameResult {
			return nil, nil // fail frames are not acknowledged
		}
		conn.SetReadDeadline(time.Now().Add(cfg.AckTimeout))
		typ, pl, _, err := readFrame(conn)
		conn.SetReadDeadline(time.Time{})
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if attempt < cfg.Resends {
					continue // the result (or its ACK) may be lost: resend
				}
				// Resends exhausted: park and let the coordinator drive —
				// its next frame (a retry of this chunk or fresh work)
				// restarts the conversation.
				return nil, nil
			}
			return nil, err
		}
		switch typ {
		case frameAck:
			return nil, nil
		case frameChunk:
			return pl, nil // implicit ACK plus new work
		default:
			return nil, fmt.Errorf("%w: expected ack, got frame type %d", ErrBadFrame, typ)
		}
	}
}
