// Package dist is the real implementation of the paper's §3.4 option-1
// scale-up: "clone the partial k-means to as many machines as possible
// … the data for one data partition has to be sent to one machine
// only". A coordinator-side Pool implements engine.RemotePartial by
// shipping each chunk — points, pre-derived RNG state, and partial
// configuration — to one of N workers over TCP and collecting the
// weighted centroids; the engine keeps ownership of planning,
// journaling, and the central merge. Robustness is the contract, not an
// afterthought: chunks leased to a dead worker are re-leased to
// survivors, duplicate centroid returns (a worker retrying after a lost
// ACK) are deduplicated by chunk identity, per-worker liveness rides on
// internal/govern's heartbeat/watchdog machinery, and when every worker
// is lost the engine's graceful-degradation path takes over unchanged.
// Because the worker runs the same core.PartialKMeans code path over
// the exact RNG state and bit-exact float64 encodings, a distributed
// run's centroids are bit-identical to the single-process engine's.
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"time"

	"streamkm/internal/fault"
)

// The wire is a sequence of length-prefixed frames reusing the bucket
// format's defensive habits — magic, explicit length, trailing CRC-32 —
// so a torn or corrupted delivery is detected at the frame boundary
// instead of desynchronizing the whole connection.
//
// Layout (little-endian):
//
//	magic   [4]byte "SKMF"
//	type    uint8
//	length  uint32  (payload bytes)
//	payload length bytes
//	crc     uint32  CRC-32 (IEEE) over type byte + payload
const (
	frameMagic      = "SKMF"
	frameHeaderSize = 4 + 1 + 4

	// maxFramePayload bounds a frame so a corrupted length field cannot
	// drive an allocation attack; 1 GiB comfortably covers the largest
	// admissible chunk.
	maxFramePayload = 1 << 30
)

// Frame types.
const (
	frameHello byte = iota + 1
	frameWelcome
	frameChunk
	frameResult
	frameFail
	frameAck
)

// ErrBadFrame is wrapped by all frame-layer corruption errors.
var ErrBadFrame = errors.New("dist: malformed protocol frame")

// ErrUnknownOperator marks a chunk whose summarizer operator the worker
// does not know or refuses to run (allowlist). It travels back to the
// coordinator as a fail frame carrying this error's text, so the
// coordinator's retry logic sees a compute failure, not a dead worker.
var ErrUnknownOperator = errors.New("dist: unknown or disallowed summarizer operator")

// errInjectedDisconnect marks a connection torn down by the network
// fault injector — the chaos suite's abrupt worker death.
var errInjectedDisconnect = errors.New("dist: injected disconnect")

// encodeFrame assembles one complete frame into a fresh byte slice, so
// a send is a single Write and the fault injector's verdicts (drop,
// duplicate) apply to whole frames.
func encodeFrame(typ byte, payload []byte) []byte {
	buf := make([]byte, 0, frameHeaderSize+len(payload)+4)
	buf = append(buf, frameMagic...)
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	buf = binary.LittleEndian.AppendUint32(buf, crc.Sum32())
	return buf
}

// sendFrame writes one frame to conn, first asking the injector (nil =
// never faults) for a verdict: a dropped frame is silently not sent (the
// peer sees a timeout, exactly like a lost packet), a duplicated frame
// is sent twice, a delayed frame is sent after the injected latency, and
// a disconnect closes the connection mid-conversation. It returns the
// bytes actually written.
func sendFrame(conn net.Conn, inj *fault.NetInjector, peer string, typ byte, payload []byte) (int64, error) {
	buf := encodeFrame(typ, payload)
	switch inj.Frame(peer) {
	case fault.NetDrop:
		return 0, nil
	case fault.NetDup:
		n1, err := conn.Write(buf)
		if err != nil {
			return int64(n1), err
		}
		n2, err := conn.Write(buf)
		return int64(n1 + n2), err
	case fault.NetDelay:
		// A blocking sleep is fine here: the peer's read deadline still
		// bounds the exchange, which is the behavior under test.
		time.Sleep(inj.Delay())
	case fault.NetDisconnect:
		conn.Close()
		return 0, errInjectedDisconnect
	}
	n, err := conn.Write(buf)
	return int64(n), err
}

// readFrame reads one frame from r, validating magic, length, and CRC.
// It returns the frame type, its payload, and the bytes consumed.
func readFrame(r io.Reader) (byte, []byte, int64, error) {
	head := make([]byte, frameHeaderSize)
	if _, err := io.ReadFull(r, head); err != nil {
		return 0, nil, 0, err
	}
	if string(head[:4]) != frameMagic {
		return 0, nil, int64(len(head)), fmt.Errorf("%w: bad magic %q", ErrBadFrame, head[:4])
	}
	typ := head[4]
	length := binary.LittleEndian.Uint32(head[5:9])
	if length > maxFramePayload {
		return 0, nil, int64(len(head)), fmt.Errorf("%w: implausible payload length %d", ErrBadFrame, length)
	}
	body := make([]byte, int(length)+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, int64(len(head)), err
	}
	payload := body[:length]
	want := binary.LittleEndian.Uint32(body[length:])
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	n := int64(len(head) + len(body))
	if got := crc.Sum32(); got != want {
		return 0, nil, n, fmt.Errorf("%w: checksum mismatch (got %08x want %08x)", ErrBadFrame, got, want)
	}
	return typ, payload, n, nil
}
