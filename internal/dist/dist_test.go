package dist

import (
	"bytes"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/engine"
	"streamkm/internal/fault"
	"streamkm/internal/grid"
	"streamkm/internal/obs"
	"streamkm/internal/rng"
	"streamkm/internal/stream"
)

// distCell generates a well-separated synthetic cell, mirroring the
// engine test suite's generator so cross-package comparisons hold.
func distCell(t testing.TB, n int, seed uint64) *dataset.Set {
	t.Helper()
	spec := dataset.DefaultCellSpec()
	spec.Clusters = 5
	spec.Dim = 4
	spec.NoiseFrac = 0
	spec.Separation = 30
	spec.Spread = 0.5
	s, err := dataset.GenerateCell(spec, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// distScenario is the canonical small plan the loopback suites run.
func distScenario(t testing.TB) ([]engine.Cell, engine.Query, engine.PhysicalPlan) {
	t.Helper()
	cells := []engine.Cell{
		{Key: grid.CellKey{Lat: 1, Lon: 1}, Points: distCell(t, 600, 21)},
		{Key: grid.CellKey{Lat: 2, Lon: 2}, Points: distCell(t, 450, 22)},
	}
	q := engine.Query{K: 5, Restarts: 2, Seed: 77}
	plan := engine.PhysicalPlan{ChunkPoints: 150, PartialClones: 3, QueueCapacity: 4}
	return cells, q, plan
}

// startWorker runs a loopback worker, returning its address and a stop
// function that tears it down and joins Serve.
func startWorker(t testing.TB, cfg WorkerConfig) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Serve(ctx, ln, cfg)
	}()
	return ln.Addr().String(), func() {
		cancel()
		<-done
	}
}

// startWorkers runs n identical loopback workers.
func startWorkers(t testing.TB, n int, cfg WorkerConfig) ([]string, func()) {
	t.Helper()
	addrs := make([]string, n)
	stops := make([]func(), n)
	for i := range addrs {
		addrs[i], stops[i] = startWorker(t, cfg)
	}
	return addrs, func() {
		for _, stop := range stops {
			stop()
		}
	}
}

// localResults runs the single-process engine — the bit-identical
// reference every distributed run is held to.
func localResults(t testing.TB, cells []engine.Cell, q engine.Query, plan engine.PhysicalPlan) []engine.CellResult {
	t.Helper()
	want, _, err := engine.Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// assertSameResults demands bit-identical centroids, weights, and MSE.
func assertSameResults(t testing.TB, got, want []engine.CellResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i].Result, got[i].Result
		if len(g.Centroids) != len(w.Centroids) {
			t.Fatalf("cell %d: centroid counts differ", i)
		}
		for c := range w.Centroids {
			if g.Weights[c] != w.Weights[c] {
				t.Fatalf("cell %d centroid %d: weight %v != %v", i, c, g.Weights[c], w.Weights[c])
			}
			for d := range w.Centroids[c] {
				if g.Centroids[c][d] != w.Centroids[c][d] {
					t.Fatalf("cell %d centroid %d dim %d: %v != %v",
						i, c, d, g.Centroids[c][d], w.Centroids[c][d])
				}
			}
		}
		if g.MSE != w.MSE {
			t.Fatalf("cell %d: merge MSE %v != %v", i, g.MSE, w.MSE)
		}
		if got[i].PointMSE != want[i].PointMSE {
			t.Fatalf("cell %d: point MSE differs", i)
		}
	}
}

// quickRetry is a fast re-lease budget for loopback tests.
func quickRetry(maxRetries int) stream.RetryPolicy {
	return stream.RetryPolicy{MaxRetries: maxRetries, BaseBackoff: time.Millisecond, Jitter: 0.5}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("the payload")
	buf := encodeFrame(frameChunk, payload)
	typ, got, n, err := readFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameChunk || !bytes.Equal(got, payload) || n != int64(len(buf)) {
		t.Fatalf("round trip: typ=%d payload=%q n=%d", typ, got, n)
	}

	// A flipped payload bit must fail the CRC, not decode.
	buf[frameHeaderSize] ^= 0x40
	if _, _, _, err := readFrame(bytes.NewReader(buf)); err == nil {
		t.Fatal("corrupted frame decoded")
	}
}

func TestChunkPayloadRoundTrip(t *testing.T) {
	points := distCell(t, 50, 7)
	r := rng.New(99)
	r.Uint64() // advance so the state is not the seed-fresh one
	summ, err := core.NewKMeansSummarizer(core.PartialConfig{K: 4, Restarts: 3, Epsilon: 1e-7, MaxIterations: 40, Accelerate: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := engine.RemoteChunk{
		Cell: 3, Chunk: 2, Total: 5,
		Points: points,
		RNG:    r,
		Spec:   summ.Spec(),
	}
	payload, err := encodeChunk(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeChunk(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cell != c.Cell || got.Chunk != c.Chunk || got.Total != c.Total {
		t.Fatalf("identity mismatch: %+v", got)
	}
	if got.Spec.Encode() != c.Spec.Encode() {
		t.Fatalf("spec mismatch: %q != %q", got.Spec.Encode(), c.Spec.Encode())
	}
	if got.Points.Len() != points.Len() || got.Points.Dim() != points.Dim() {
		t.Fatalf("points mismatch: %dx%d", got.Points.Len(), got.Points.Dim())
	}
	for i, p := range points.Points() {
		for d, x := range p {
			if got.Points.At(i)[d] != x {
				t.Fatalf("point %d dim %d differs", i, d)
			}
		}
	}
	// The RNG state must transfer exactly: both generators continue with
	// the same sequence.
	for i := 0; i < 8; i++ {
		if a, b := r.Uint64(), got.RNG.Uint64(); a != b {
			t.Fatalf("rng draw %d: %d != %d", i, a, b)
		}
	}
}

func TestResultPayloadRoundTrip(t *testing.T) {
	set, err := dataset.NewWeightedSet(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Add(dataset.WeightedPoint{Weight: 12.5, Vec: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	pr := &core.PartialResult{
		Centroids: set, MSE: 0.25, Iterations: 9, Restarts: 3,
		Converged: 2, DeltaMSE: 1e-10, Points: 150, Elapsed: 42 * time.Millisecond,
	}
	payload, err := encodeResult(1, 2, 4, pr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.cell != 1 || got.chunk != 2 || got.total != 4 {
		t.Fatalf("identity mismatch: %+v", got)
	}
	g := got.res
	if g.MSE != pr.MSE || g.Iterations != pr.Iterations || g.Restarts != pr.Restarts ||
		g.Converged != pr.Converged || g.DeltaMSE != pr.DeltaMSE || g.Points != pr.Points ||
		g.Elapsed != pr.Elapsed {
		t.Fatalf("result mismatch: %+v", g)
	}
	if g.Centroids.Len() != 1 || g.Centroids.Points()[0].Weight != 12.5 {
		t.Fatalf("centroids mismatch")
	}
}

// TestDistributedMatchesLocal is the tentpole's core claim with no
// faults: a run fanned across loopback workers produces centroids
// bit-identical to the single-process engine.
func TestDistributedMatchesLocal(t *testing.T) {
	cells, q, plan := distScenario(t)
	want := localResults(t, cells, q, plan)

	addrs, stop := startWorkers(t, 3, WorkerConfig{})
	defer stop()
	reg := obs.NewRegistry()
	pool, err := NewPool(context.Background(), PoolConfig{
		Addrs: addrs, Retry: quickRetry(3), Seed: q.Seed, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	got, stats, err := engine.NewExec(q, plan, engine.WithRemoteWorkers(pool), engine.WithObserver(reg)).
		Execute(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)

	// Every chunk's lease trail must be journaled, each ending in success.
	if len(stats.Leases) != stats.Chunks {
		t.Fatalf("lease ledger has %d records, want %d (one clean lease per chunk)", len(stats.Leases), stats.Chunks)
	}
	for _, l := range stats.Leases {
		if l.Err != "" {
			t.Fatalf("clean run recorded a failed lease: %+v", l)
		}
	}
	// Work actually crossed the wire, attributed per worker.
	var done, sent int64
	for _, addr := range addrs {
		done += reg.Counter(obs.DistChunksDone, addr).Value()
		sent += reg.Counter(obs.DistBytesSent, addr).Value()
	}
	if done != int64(stats.Chunks) {
		t.Fatalf("workers computed %d chunks, want %d", done, stats.Chunks)
	}
	if sent == 0 {
		t.Fatal("no bytes recorded on the wire")
	}
	if v := reg.Gauge(obs.DistWorkersLive, "").Value(); v != 3 {
		t.Fatalf("workers live = %d, want 3", v)
	}
}

// TestDistributedJournalLeases pins the journal's v2 checkpoint format:
// lease records survive an encode/decode cycle and a lease-free journal
// still writes version 1 bytes.
func TestDistributedJournalLeases(t *testing.T) {
	cells, q, plan := distScenario(t)
	addrs, stop := startWorkers(t, 2, WorkerConfig{})
	defer stop()
	pool, err := NewPool(context.Background(), PoolConfig{Addrs: addrs, Retry: quickRetry(3), Seed: q.Seed})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	journal := engine.NewJournal()
	_, stats, err := engine.NewExec(q, plan,
		engine.WithRemoteWorkers(pool), engine.WithJournal(journal)).
		Execute(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(journal.Leases()) != stats.Chunks {
		t.Fatalf("journal leases = %d, want %d", len(journal.Leases()), stats.Chunks)
	}
	var buf bytes.Buffer
	if err := journal.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := engine.DecodeJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a, b := journal.Leases(), decoded.Leases()
	if len(a) != len(b) {
		t.Fatalf("decoded %d leases, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lease %d: %+v != %+v", i, a[i], b[i])
		}
	}

	// A local (lease-free) journal still round-trips as version 1.
	local := engine.NewJournal()
	_, _, err = engine.NewExec(q, plan, engine.WithJournal(local)).Execute(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	var lbuf bytes.Buffer
	if err := local.Encode(&lbuf); err != nil {
		t.Fatal(err)
	}
	if v := lbuf.Bytes()[5]; lbuf.Bytes()[4] != 1 || v != 0 {
		t.Fatalf("lease-free journal wrote version %d, want 1", uint16(lbuf.Bytes()[4])|uint16(v)<<8)
	}
	if _, err := engine.DecodeJournal(bytes.NewReader(lbuf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

// TestPoolNoWorkers: a pool with only unreachable addresses fails fast.
func TestPoolNoWorkers(t *testing.T) {
	_, err := NewPool(context.Background(), PoolConfig{
		Addrs:       []string{"127.0.0.1:1"}, // reserved port: connection refused
		DialTimeout: 200 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("pool with no reachable workers should fail")
	}
	if !strings.Contains(err.Error(), "no live workers") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestWorkerResendsUnackedResult exercises the at-least-once path
// directly: drop the coordinator's first ACK and confirm the worker's
// resent result is absorbed without a duplicate landing anywhere.
func TestWorkerResendsUnackedResult(t *testing.T) {
	cells, q, plan := distScenario(t)
	want := localResults(t, cells, q, plan)

	addrs, stop := startWorkers(t, 1, WorkerConfig{AckTimeout: 50 * time.Millisecond})
	defer stop()
	// Frame 1 is the coordinator's Hello; the first ACK is frame 3
	// (Hello, first Chunk, first Ack).
	inj := fault.NewNet(fault.NetConfig{DropNth: 3})
	reg := obs.NewRegistry()
	pool, err := NewPool(context.Background(), PoolConfig{
		Addrs: addrs, Retry: quickRetry(3), Seed: q.Seed, Obs: reg, Inject: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	got, stats, err := engine.NewExec(q, plan, engine.WithRemoteWorkers(pool), engine.WithObserver(reg)).
		Execute(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
	if inj.Drops() == 0 {
		t.Fatal("injector never dropped the ack; test exercised nothing")
	}
	// The resent result is either consumed as a stale duplicate by the
	// pool or rejected by the journal — never double-counted.
	if v := reg.Counter(obs.EngineChunksDone, "").Value(); v != int64(stats.Chunks) {
		t.Fatalf("journal counted %d chunks done, want %d", v, stats.Chunks)
	}
}

// TestConcurrentPartials hammers one pool from many goroutines to catch
// free-list races under -race.
func TestConcurrentPartials(t *testing.T) {
	addrs, stop := startWorkers(t, 2, WorkerConfig{})
	defer stop()
	pool, err := NewPool(context.Background(), PoolConfig{Addrs: addrs, Retry: quickRetry(2), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	points := distCell(t, 120, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, trail, err := pool.Partial(context.Background(), engine.RemoteChunk{
				Cell: i, Chunk: 0, Total: 1, Points: points, RNG: rng.New(uint64(i)),
				Spec: core.SummarizerSpec{Name: core.SummarizerKMeans, Params: map[string]string{"k": "4", "restarts": "1"}},
			})
			if err != nil {
				errs <- err
				return
			}
			if len(trail) != 1 || trail[0].Err != "" {
				errs <- context.DeadlineExceeded // placeholder; report below
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
