package dist

import (
	"context"
	"strings"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/engine"
	"streamkm/internal/rng"
)

// TestDistributedMatchesLocalPerSummarizer extends the loopback
// bit-identity claim to every built-in operator: a coreset-tree or ECVQ
// chunk shipped over SKMF must come back with exactly the bits the
// single-process engine would have produced.
func TestDistributedMatchesLocalPerSummarizer(t *testing.T) {
	cells, base, plan := distScenario(t)
	for _, name := range core.SummarizerNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			q := base
			q.Summarizer = name
			q.CoresetSize = 40
			q.ECVQMaxK = 10
			want := localResults(t, cells, q, plan)

			addrs, stop := startWorkers(t, 2, WorkerConfig{})
			defer stop()
			pool, err := NewPool(context.Background(), PoolConfig{
				Addrs: addrs, Retry: quickRetry(3), Seed: q.Seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()

			got, _, err := engine.NewExec(q, plan, engine.WithRemoteWorkers(pool)).
				Execute(context.Background(), cells)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, got, want)
		})
	}
}

// TestWorkerAllowlistRefusesOperator: a worker restricted to kmeans must
// refuse a coreset chunk with a typed protocol failure — as a fail
// frame, not a dead connection — while still serving allowed operators
// on the same connection.
func TestWorkerAllowlistRefusesOperator(t *testing.T) {
	addrs, stop := startWorkers(t, 1, WorkerConfig{Summarizers: []string{core.SummarizerKMeans}})
	defer stop()
	pool, err := NewPool(context.Background(), PoolConfig{Addrs: addrs, Retry: quickRetry(1), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	points := distCell(t, 80, 3)
	_, _, err = pool.Partial(context.Background(), engine.RemoteChunk{
		Cell: 0, Chunk: 0, Total: 1, Points: points, RNG: rng.New(1),
		Spec: core.SummarizerSpec{Name: core.SummarizerCoreset, Params: map[string]string{"m": "20"}},
	})
	if err == nil {
		t.Fatal("disallowed operator computed")
	}
	if !strings.Contains(err.Error(), ErrUnknownOperator.Error()) {
		t.Fatalf("refusal does not carry the typed error: %v", err)
	}

	// The same connection still serves the allowed operator afterwards.
	pr, trail, err := pool.Partial(context.Background(), engine.RemoteChunk{
		Cell: 1, Chunk: 0, Total: 1, Points: points, RNG: rng.New(2),
		Spec: core.SummarizerSpec{Name: core.SummarizerKMeans, Params: map[string]string{"k": "4", "restarts": "1"}},
	})
	if err != nil {
		t.Fatalf("allowed operator after refusal: %v", err)
	}
	if pr == nil || pr.Centroids.Len() == 0 {
		t.Fatal("empty result for allowed operator")
	}
	if len(trail) == 0 || trail[len(trail)-1].Err != "" {
		t.Fatalf("lease trail: %+v", trail)
	}
}

// TestWorkerRefusesUnknownOperatorName: a spec naming an operator this
// binary does not implement (version skew) fails with the typed error
// rather than running some default.
func TestWorkerRefusesUnknownOperatorName(t *testing.T) {
	addrs, stop := startWorkers(t, 1, WorkerConfig{})
	defer stop()
	pool, err := NewPool(context.Background(), PoolConfig{Addrs: addrs, Retry: quickRetry(1), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	_, _, err = pool.Partial(context.Background(), engine.RemoteChunk{
		Cell: 0, Chunk: 0, Total: 1, Points: distCell(t, 60, 4), RNG: rng.New(1),
		Spec: core.SummarizerSpec{Name: "birch", Params: map[string]string{"k": "4"}},
	})
	if err == nil {
		t.Fatal("unknown operator computed")
	}
	if !strings.Contains(err.Error(), ErrUnknownOperator.Error()) {
		t.Fatalf("failure does not carry the typed error: %v", err)
	}
}
