package dist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/engine"
	"streamkm/internal/grid"
	"streamkm/internal/rng"
)

// Payload encodings for each frame type. The point block inside a chunk
// frame is bucket format v2 (per-record CRC-32s) and the centroid block
// inside a result frame is the weighted-set encoding — the same
// checksummed formats the repo already trusts on disk now travel the
// wire, so a bit flipped in flight is caught by the same decoders the
// fuzz targets hammer. Every float64 crosses as its exact bit pattern
// (math.Float64bits), which is half of the bit-identical guarantee; the
// other half is the 41-byte RNG state snapshot that makes the worker's
// draw sequence equal the local one.

// protoVersion is the handshake version; a worker refuses a coordinator
// it cannot serve rather than mis-decoding its frames. Version 2
// replaced the fixed k-means scalar block in chunk payloads with the
// summarizer operator spec (a length-prefixed canonical string), so a
// chunk can name any operator; v1 workers refuse v2 coordinators at the
// handshake instead of mis-decoding chunks.
const protoVersion = 2

// rngStateSize is the serialized size of an rng.RNG (see
// rng.MarshalBinary).
const rngStateSize = 41

// chunkHeaderSize is the fixed prefix of a chunk payload before the
// operator spec, RNG state, and point block.
const chunkHeaderSize = 4 * 3

// encodeHello builds the handshake payload (both directions).
func encodeHello() []byte {
	return binary.LittleEndian.AppendUint16(nil, protoVersion)
}

// decodeHello validates a handshake payload.
func decodeHello(payload []byte) error {
	if len(payload) != 2 {
		return fmt.Errorf("%w: hello payload length %d", ErrBadFrame, len(payload))
	}
	if v := binary.LittleEndian.Uint16(payload); v != protoVersion {
		return fmt.Errorf("%w: protocol version %d (want %d)", ErrBadFrame, v, protoVersion)
	}
	return nil
}

// encodeChunk serializes one work unit: plan identity, the summarizer
// operator spec (canonical string encoding — floats inside it use the
// shortest exact representation, so the spec round-trips bit-exactly),
// RNG state, then the points as a bucket-v2 block.
func encodeChunk(c engine.RemoteChunk) ([]byte, error) {
	var b bytes.Buffer
	for _, v := range []uint32{
		uint32(c.Cell), uint32(c.Chunk), uint32(c.Total),
	} {
		b.Write(binary.LittleEndian.AppendUint32(nil, v))
	}
	op := c.Spec.Encode()
	if len(op) > math.MaxUint16 {
		return nil, fmt.Errorf("dist: operator spec too long (%d bytes)", len(op))
	}
	b.Write(binary.LittleEndian.AppendUint16(nil, uint16(len(op))))
	b.WriteString(op)
	state, err := c.RNG.MarshalBinary()
	if err != nil {
		return nil, err
	}
	b.Write(state)
	// The cell key inside the block is a placeholder — the chunk's real
	// identity is (Cell, Chunk) in the header; the block only carries
	// the checksummed points.
	if err := grid.WriteBucket(&b, grid.CellKey{}, c.Points); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// decodeChunk reconstructs a work unit from its payload. The operator
// spec is parsed but deliberately not resolved here: frame decoding
// stays a pure transport concern, and the worker resolves (and may
// refuse) the operator in computeChunk, where refusal produces a typed
// fail frame instead of a dead connection.
func decodeChunk(payload []byte) (engine.RemoteChunk, error) {
	if len(payload) < chunkHeaderSize+2 {
		return engine.RemoteChunk{}, fmt.Errorf("%w: short chunk payload (%d bytes)", ErrBadFrame, len(payload))
	}
	u32 := func(off int) int { return int(binary.LittleEndian.Uint32(payload[off:])) }
	c := engine.RemoteChunk{
		Cell:  u32(0),
		Chunk: u32(4),
		Total: u32(8),
	}
	opLen := int(binary.LittleEndian.Uint16(payload[chunkHeaderSize:]))
	rest := payload[chunkHeaderSize+2:]
	if len(rest) < opLen+rngStateSize {
		return engine.RemoteChunk{}, fmt.Errorf("%w: short chunk payload (%d bytes)", ErrBadFrame, len(payload))
	}
	spec, err := core.ParseSummarizerSpec(string(rest[:opLen]))
	if err != nil {
		return engine.RemoteChunk{}, fmt.Errorf("%w: operator spec: %v", ErrBadFrame, err)
	}
	c.Spec = spec
	rest = rest[opLen:]
	c.RNG = new(rng.RNG)
	if err := c.RNG.UnmarshalBinary(rest[:rngStateSize]); err != nil {
		return engine.RemoteChunk{}, fmt.Errorf("%w: rng state: %v", ErrBadFrame, err)
	}
	_, points, err := grid.ReadBucket(bytes.NewReader(rest[rngStateSize:]))
	if err != nil {
		return engine.RemoteChunk{}, fmt.Errorf("dist: chunk point block: %w", err)
	}
	c.Points = points
	return c, nil
}

// resultHeaderSize is the fixed prefix of a result payload before the
// centroid block.
const resultHeaderSize = 4*6 + 8 + 8 + 8 + 8

// chunkResult is a decoded result frame: the chunk's identity plus the
// reconstructed PartialResult.
type chunkResult struct {
	cell, chunk, total int
	res                *core.PartialResult
}

// encodeResult serializes a completed chunk's partial result.
func encodeResult(cell, chunk, total int, pr *core.PartialResult) ([]byte, error) {
	var b bytes.Buffer
	for _, v := range []uint32{
		uint32(cell), uint32(chunk), uint32(total),
		uint32(pr.Iterations), uint32(pr.Restarts), uint32(pr.Converged),
	} {
		b.Write(binary.LittleEndian.AppendUint32(nil, v))
	}
	b.Write(binary.LittleEndian.AppendUint64(nil, uint64(pr.Points)))
	b.Write(binary.LittleEndian.AppendUint64(nil, math.Float64bits(pr.MSE)))
	b.Write(binary.LittleEndian.AppendUint64(nil, math.Float64bits(pr.DeltaMSE)))
	b.Write(binary.LittleEndian.AppendUint64(nil, uint64(pr.Elapsed.Nanoseconds())))
	if err := dataset.EncodeWeightedSet(&b, pr.Centroids); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// decodeResult reconstructs a chunk result from its payload.
func decodeResult(payload []byte) (chunkResult, error) {
	if len(payload) < resultHeaderSize {
		return chunkResult{}, fmt.Errorf("%w: short result payload (%d bytes)", ErrBadFrame, len(payload))
	}
	u32 := func(off int) int { return int(binary.LittleEndian.Uint32(payload[off:])) }
	u64 := func(off int) uint64 { return binary.LittleEndian.Uint64(payload[off:]) }
	set, err := dataset.DecodeWeightedSet(bytes.NewReader(payload[resultHeaderSize:]))
	if err != nil {
		return chunkResult{}, fmt.Errorf("dist: result centroid block: %w", err)
	}
	return chunkResult{
		cell:  u32(0),
		chunk: u32(4),
		total: u32(8),
		res: &core.PartialResult{
			Iterations: u32(12),
			Restarts:   u32(16),
			Converged:  u32(20),
			Points:     int(u64(24)),
			MSE:        math.Float64frombits(u64(32)),
			DeltaMSE:   math.Float64frombits(u64(40)),
			Elapsed:    time.Duration(u64(48)),
			Centroids:  set,
		},
	}, nil
}

// encodeFail serializes a remote compute failure for one chunk.
func encodeFail(cell, chunk int, msg string) []byte {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	b := make([]byte, 0, 10+len(msg))
	b = binary.LittleEndian.AppendUint32(b, uint32(cell))
	b = binary.LittleEndian.AppendUint32(b, uint32(chunk))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(msg)))
	return append(b, msg...)
}

// decodeFail reconstructs a failure report.
func decodeFail(payload []byte) (cell, chunk int, msg string, err error) {
	if len(payload) < 10 {
		return 0, 0, "", fmt.Errorf("%w: short fail payload (%d bytes)", ErrBadFrame, len(payload))
	}
	n := int(binary.LittleEndian.Uint16(payload[8:10]))
	if len(payload) != 10+n {
		return 0, 0, "", fmt.Errorf("%w: fail payload length mismatch", ErrBadFrame)
	}
	return int(binary.LittleEndian.Uint32(payload[0:])),
		int(binary.LittleEndian.Uint32(payload[4:])),
		string(payload[10:]), nil
}

// encodeAck serializes the acknowledgment of one chunk's result.
func encodeAck(cell, chunk int) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(cell))
	return binary.LittleEndian.AppendUint32(b, uint32(chunk))
}
