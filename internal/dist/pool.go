package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/engine"
	"streamkm/internal/fault"
	"streamkm/internal/govern"
	"streamkm/internal/obs"
	"streamkm/internal/stream"
)

// The coordinator side: a Pool of worker connections implementing
// engine.RemotePartial. Each chunk's execution is a lease — the chunk is
// assigned to one free worker, and if that worker dies, stalls, or
// returns garbage, the lease moves to a survivor under the shared
// RetryPolicy's backoff. A worker accumulating consecutive failures is
// permanently evicted; when every worker is gone, Partial fails with
// ErrNoWorkers and the engine's supervision takes over (quarantine and
// survivor-only merge under WithDegradedResults). Duplicate or stale
// results — a worker retrying after a lost ACK — are recognized by chunk
// identity, acknowledged, counted, and dropped; the engine's journal is
// the second, independent line of defense against double-counting.

// ErrNoWorkers means every worker has been evicted; no further remote
// capacity exists.
var ErrNoWorkers = errors.New("dist: no live workers")

// PoolConfig tunes a coordinator-side worker pool.
type PoolConfig struct {
	// Addrs lists the workers ("host:port"), one connection each.
	Addrs []string
	// Retry is the per-chunk lease budget: how many times a chunk is
	// re-leased (with backoff) before its failure propagates to the
	// engine. The zero value (no retries) makes every worker failure
	// chunk-fatal; a MaxRetries of at least len(Addrs) lets a chunk
	// survive the loss of every worker but one.
	Retry stream.RetryPolicy
	// DialTimeout bounds each connection attempt (0 = 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds one chunk round-trip on a worker — ship,
	// remote compute, result return (0 = 60s). A worker exceeding it is
	// treated as failed for that lease.
	RequestTimeout time.Duration
	// ProgressTimeout, when positive, arms a per-worker stall watchdog
	// on the worker's heartbeat: a worker holding a chunk without
	// progress for this long is evicted mid-request (its connection is
	// closed, failing the pending lease over to a survivor).
	ProgressTimeout time.Duration
	// FailureLimit is the consecutive-failure count that permanently
	// evicts a worker (0 = 3).
	FailureLimit int
	// Seed derives per-chunk backoff jitter; use the query seed so the
	// whole run — including its retry timing — replays deterministically.
	Seed uint64
	// Obs, when non-nil, receives per-worker metrics (dist_* families,
	// labeled by worker address).
	Obs *obs.Registry
	// Inject, when non-nil, injects faults into the coordinator's
	// outgoing frames (chunks and ACKs).
	Inject *fault.NetInjector
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.FailureLimit <= 0 {
		c.FailureLimit = 3
	}
	if c.Obs == nil {
		c.Obs = obs.NewRegistry()
	}
	return c
}

// workerConn is one worker's connection state. The pool hands a worker
// to exactly one lease at a time (via the free list), so consecFails
// needs no lock; conn is mutex-guarded and evicted is atomic because
// the watchdog may evict — and close the connection of — a worker the
// lease currently holds.
type workerConn struct {
	addr string
	hb   govern.Heartbeat

	mu   sync.Mutex
	conn net.Conn

	consecFails int
	evicted     atomic.Bool

	chunksDone *obs.Counter
	retries    *obs.Counter
	evictions  *obs.Counter
	dups       *obs.Counter
	bytesSent  *obs.Counter
	bytesRecv  *obs.Counter
}

// Pool is a fault-tolerant set of worker connections. It implements
// engine.RemotePartial; plug it into an execution with
// engine.WithRemoteWorkers(pool) and close it after the run.
type Pool struct {
	cfg     PoolConfig
	workers []*workerConn
	free    chan *workerConn
	live    atomic.Int64
	allDead chan struct{}
	dead    sync.Once

	workersLive *obs.Gauge

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewPool dials every worker (with the retry policy applied to
// transient dial failures) and returns the pool. Workers that stay
// unreachable through the retry budget are evicted at birth; NewPool
// fails only when no worker at all could be reached.
func NewPool(ctx context.Context, cfg PoolConfig) (*Pool, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("dist: pool needs at least one worker address")
	}
	p := &Pool{
		cfg:         cfg,
		free:        make(chan *workerConn, len(cfg.Addrs)),
		allDead:     make(chan struct{}),
		workersLive: cfg.Obs.Gauge(obs.DistWorkersLive, ""),
		stop:        make(chan struct{}),
	}
	for _, addr := range cfg.Addrs {
		w := &workerConn{
			addr:       addr,
			chunksDone: cfg.Obs.Counter(obs.DistChunksDone, addr),
			retries:    cfg.Obs.Counter(obs.DistRetries, addr),
			evictions:  cfg.Obs.Counter(obs.DistEvictions, addr),
			dups:       cfg.Obs.Counter(obs.DistDupResults, addr),
			bytesSent:  cfg.Obs.Counter(obs.DistBytesSent, addr),
			bytesRecv:  cfg.Obs.Counter(obs.DistBytesRecv, addr),
		}
		if err := p.connect(ctx, w); err != nil {
			w.evicted.Store(true)
			w.evictions.Inc()
			p.workers = append(p.workers, w)
			continue
		}
		p.workers = append(p.workers, w)
		p.live.Add(1)
		p.free <- w
		p.watch(w)
	}
	if p.live.Load() == 0 {
		p.Close()
		return nil, fmt.Errorf("dist: %w: none of %d worker(s) reachable", ErrNoWorkers, len(cfg.Addrs))
	}
	p.workersLive.Set(p.live.Load())
	return p, nil
}

// connect dials and handshakes one worker, retrying transient failures
// under the pool's retry policy.
func (p *Pool) connect(ctx context.Context, w *workerConn) error {
	seed := p.cfg.Seed ^ hashString(w.addr)
	_, err := p.cfg.Retry.Attempts(ctx, seed, nil, func(int) error {
		_, derr := w.dial(p.cfg)
		return derr
	})
	return err
}

// dial opens and handshakes the worker's connection, storing it as the
// worker's current conn and returning it.
func (w *workerConn) dial(cfg PoolConfig) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", w.addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(cfg.DialTimeout))
	if _, err := sendFrame(conn, cfg.Inject, w.addr, frameHello, encodeHello()); err != nil {
		conn.Close()
		return nil, err
	}
	typ, payload, _, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if typ != frameWelcome {
		conn.Close()
		return nil, fmt.Errorf("%w: expected welcome, got frame type %d", ErrBadFrame, typ)
	}
	if err := decodeHello(payload); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	w.mu.Lock()
	w.conn = conn
	w.mu.Unlock()
	return conn, nil
}

// getConn returns the worker's current connection (nil = needs a dial).
func (w *workerConn) getConn() net.Conn {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.conn
}

// closeConn closes and forgets the worker's connection; safe to call
// from the watchdog while a lease is mid-read (the read unblocks).
func (w *workerConn) closeConn() {
	w.mu.Lock()
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
	w.mu.Unlock()
}

// watch arms the per-worker stall watchdog (a no-op when the pool has
// no progress timeout). The watchdog trips only while the worker holds
// a lease without progress; tripping evicts it, which closes its
// connection and fails the pending lease over to a survivor.
func (p *Pool) watch(w *workerConn) {
	if p.cfg.ProgressTimeout <= 0 {
		return
	}
	wd := govern.NewWatchdog(p.cfg.ProgressTimeout, w.hb.Probe(w.addr))
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		wd.Watch(p.stop, func(err error) {
			p.evict(w)
		})
	}()
}

// evict permanently removes a worker: close its connection, drop it
// from rotation, and close allDead when it was the last one. Idempotent.
func (p *Pool) evict(w *workerConn) {
	if !w.evicted.CompareAndSwap(false, true) {
		return
	}
	w.closeConn()
	w.evictions.Inc()
	n := p.live.Add(-1)
	p.workersLive.Set(n)
	if n == 0 {
		p.dead.Do(func() { close(p.allDead) })
	}
}

// acquire leases any free live worker, or reports ErrNoWorkers once
// every worker has been evicted.
func (p *Pool) acquire(ctx context.Context) (*workerConn, error) {
	for {
		select {
		case w := <-p.free:
			if w.evicted.Load() {
				continue // evicted while idle (pool closing)
			}
			return w, nil
		case <-p.allDead:
			return nil, ErrNoWorkers
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// release returns a worker to rotation after a successful lease.
func (p *Pool) release(w *workerConn) {
	w.consecFails = 0
	if w.evicted.Load() {
		return
	}
	p.free <- w
}

// fail records a failed lease: the broken connection is dropped (the
// next lease redials), and FailureLimit consecutive failures evict the
// worker permanently.
func (p *Pool) fail(w *workerConn) {
	w.closeConn()
	w.consecFails++
	w.retries.Inc()
	if w.consecFails >= p.cfg.FailureLimit {
		p.evict(w)
		return
	}
	if w.evicted.Load() {
		return // the watchdog got there first
	}
	p.free <- w
}

// Live returns the number of workers still in rotation.
func (p *Pool) Live() int { return int(p.live.Load()) }

// Close tears the pool down: connections close, watchdogs stop, and all
// pool goroutines join. Safe to call twice.
func (p *Pool) Close() error {
	p.stopOnce.Do(func() { close(p.stop) })
	for _, w := range p.workers {
		w.evicted.Store(true)
		w.closeConn()
	}
	p.wg.Wait()
	return nil
}

// Partial implements engine.RemotePartial: lease the chunk to a worker,
// re-leasing to survivors under the retry policy, and return the result
// plus the full assignment trail for the journal's exactly-once audit.
func (p *Pool) Partial(ctx context.Context, c engine.RemoteChunk) (*core.PartialResult, []engine.Assignment, error) {
	seed := p.cfg.Seed ^ chunkSeed(c.Cell, c.Chunk)
	var (
		res   *core.PartialResult
		trail []engine.Assignment
	)
	_, err := p.cfg.Retry.Attempts(ctx, seed, nil, func(int) error {
		w, err := p.acquire(ctx)
		if err != nil {
			return err
		}
		pr, err := w.do(ctx, p.cfg, c)
		if err != nil {
			trail = append(trail, engine.Assignment{Worker: w.addr, Err: err.Error()})
			p.fail(w)
			return err
		}
		trail = append(trail, engine.Assignment{Worker: w.addr})
		p.release(w)
		res = pr
		return nil
	})
	if err != nil {
		return nil, trail, fmt.Errorf("dist: cell %d chunk %d: %w", c.Cell, c.Chunk, err)
	}
	return res, trail, nil
}

// do runs one lease on this worker: ship the chunk, await the matching
// result, acknowledge it. Stale results from an earlier abandoned lease
// on this connection are acknowledged, counted as duplicates, and
// skipped — the coordinator-side half of at-least-once dedup.
func (w *workerConn) do(ctx context.Context, cfg PoolConfig, c engine.RemoteChunk) (*core.PartialResult, error) {
	conn := w.getConn()
	if conn == nil {
		var err error
		if conn, err = w.dial(cfg); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w.hb.Begin()
	defer w.hb.End()
	payload, err := encodeChunk(c)
	if err != nil {
		return nil, err
	}
	// A context cancellation mid-request must unblock the pending read:
	// closing the connection is the portable way to interrupt net I/O.
	cancelDone := make(chan struct{})
	defer close(cancelDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-cancelDone:
		}
	}()
	n, err := sendFrame(conn, cfg.Inject, w.addr, frameChunk, payload)
	w.bytesSent.Add(n)
	if err != nil {
		return nil, err
	}
	for {
		conn.SetReadDeadline(time.Now().Add(cfg.RequestTimeout))
		typ, pl, rn, err := readFrame(conn)
		w.bytesRecv.Add(rn)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, err
		}
		w.hb.Beat()
		switch typ {
		case frameResult:
			r, err := decodeResult(pl)
			if err != nil {
				return nil, err
			}
			an, aerr := sendFrame(conn, cfg.Inject, w.addr, frameAck, encodeAck(r.cell, r.chunk))
			w.bytesSent.Add(an)
			if r.cell != c.Cell || r.chunk != c.Chunk {
				// A duplicate return for a lease this connection once
				// held; the journal would reject it too, but dropping it
				// here keeps the pipeline clean.
				w.dups.Inc()
				if aerr != nil {
					return nil, aerr
				}
				continue
			}
			// A failed ACK send is the worker's problem (it will resend
			// into the dedup path); the result is already in hand.
			conn.SetReadDeadline(time.Time{})
			w.chunksDone.Inc()
			return r.res, nil
		case frameFail:
			fcell, fchunk, msg, err := decodeFail(pl)
			if err != nil {
				return nil, err
			}
			if fcell != c.Cell || fchunk != c.Chunk {
				w.dups.Inc()
				continue
			}
			return nil, fmt.Errorf("dist: worker %s: remote failure: %s", w.addr, msg)
		default:
			return nil, fmt.Errorf("%w: expected result, got frame type %d", ErrBadFrame, typ)
		}
	}
}

// chunkSeed mixes a chunk's identity into a jitter seed so each chunk's
// re-lease backoff schedule is independently reproducible.
func chunkSeed(cell, chunk int) uint64 {
	return uint64(cell)*0x9e3779b97f4a7c15 ^ uint64(chunk)*0xbf58476d1ce4e5b9
}

// hashString is FNV-1a, for deriving per-address seeds.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
