package dist

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"streamkm/internal/engine"
	"streamkm/internal/fault"
	"streamkm/internal/obs"
)

// The loopback chaos suite: real TCP workers on 127.0.0.1 with the
// frame-layer fault injector between them and the coordinator. Every
// fault scenario must converge to centroids bit-identical to the
// single-process engine — faults may cost retries, re-leases, and
// evictions, never precision — and the journal must never double-count
// a chunk no matter how many duplicate results the wire delivers.
//
// Each injector mixes a deterministic Nth fault (guaranteed to fire)
// with seeded rate faults capped by MaxFaults, so the retry budget
// always out-waits the injector and the suite cannot flake on a
// fault-free draw.

// chaosTimeouts are aggressive so injected losses cost tens of
// milliseconds, not the production default of seconds.
const (
	chaosDialTimeout    = 300 * time.Millisecond
	chaosRequestTimeout = 600 * time.Millisecond
	chaosAckTimeout     = 100 * time.Millisecond
)

// writeChaosReport writes the run report JSON for one scenario when
// DIST_CHAOS_REPORT names a directory — the artifact the CI chaos job
// uploads.
func writeChaosReport(t *testing.T, name string, stats *engine.ExecStats) {
	t.Helper()
	dir := os.Getenv("DIST_CHAOS_REPORT")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("chaos report dir: %v", err)
	}
	data, err := stats.Report().JSON()
	if err != nil {
		t.Fatalf("chaos report marshal: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), data, 0o644); err != nil {
		t.Fatalf("chaos report write: %v", err)
	}
}

// runChaos executes the canonical scenario against loopback workers
// under the given injectors and asserts the distributed answer is
// bit-identical to the local engine with no journal double-counting.
func runChaos(t *testing.T, name string, coordInj, workerInj *fault.NetInjector, failureLimit int) {
	t.Helper()
	cells, q, plan := distScenario(t)
	want := localResults(t, cells, q, plan)

	addrs, stop := startWorkers(t, 3, WorkerConfig{
		AckTimeout: chaosAckTimeout,
		Inject:     workerInj,
	})
	defer stop()
	reg := obs.NewRegistry()
	pool, err := NewPool(context.Background(), PoolConfig{
		Addrs:          addrs,
		Retry:          quickRetry(8),
		DialTimeout:    chaosDialTimeout,
		RequestTimeout: chaosRequestTimeout,
		FailureLimit:   failureLimit,
		Seed:           q.Seed,
		Obs:            reg,
		Inject:         coordInj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	got, stats, err := engine.NewExec(q, plan,
		engine.WithRemoteWorkers(pool),
		engine.WithRetry(quickRetry(4)),
		engine.WithObserver(reg)).
		Execute(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)

	if coordInj.Faults()+workerInj.Faults() == 0 {
		t.Fatal("injectors fired no faults; scenario exercised nothing")
	}
	// Exactly-once accounting: the journal admitted each chunk once; any
	// duplicate delivery shows up only in the dedup counters.
	if v := reg.Counter(obs.EngineChunksDone, "").Value(); v != int64(stats.Chunks) {
		t.Fatalf("journal admitted %d chunks, want exactly %d", v, stats.Chunks)
	}
	// The lease ledger covers every chunk: at least one record each, the
	// last one clean.
	last := map[[2]int]engine.LeaseRecord{}
	for _, l := range stats.Leases {
		last[[2]int{l.Cell, l.Chunk}] = l
	}
	if len(last) != stats.Chunks {
		t.Fatalf("lease ledger covers %d chunks, want %d", len(last), stats.Chunks)
	}
	for id, l := range last {
		if l.Err != "" {
			t.Fatalf("chunk %v final lease failed: %+v", id, l)
		}
	}
	t.Logf("%s: coord %v; worker %v; leases=%d", name, coordInj, workerInj, len(stats.Leases))
	writeChaosReport(t, name, stats)
}

func TestChaosFrameDrop(t *testing.T) {
	runChaos(t, "frame-drop",
		fault.NewNet(fault.NetConfig{Seed: 101, DropRate: 0.08, DropNth: 2, MaxFaults: 4}),
		nil, 0)
}

func TestChaosFrameDup(t *testing.T) {
	runChaos(t, "frame-dup",
		fault.NewNet(fault.NetConfig{Seed: 102, DupRate: 0.12, DupNth: 6, MaxFaults: 5}),
		nil, 0)
}

func TestChaosFrameDelay(t *testing.T) {
	runChaos(t, "frame-delay",
		fault.NewNet(fault.NetConfig{Seed: 103, DelayRate: 0.15, DelayNth: 4, DelayDur: 15 * time.Millisecond, MaxFaults: 6}),
		nil, 0)
}

func TestChaosDisconnect(t *testing.T) {
	// FailureLimit 3 with MaxFaults 2 means no worker can be evicted —
	// the scenario is pure mid-conversation recovery.
	runChaos(t, "disconnect",
		fault.NewNet(fault.NetConfig{Seed: 104, DisconnectRate: 0.05, DisconnectNth: 5, MaxFaults: 2}),
		nil, 3)
}

func TestChaosLostResults(t *testing.T) {
	// Worker-side drops hit Welcome/Result frames: the coordinator times
	// out and re-leases, or the worker's ACK wait expires and it resends
	// into the dedup path.
	runChaos(t, "lost-results", nil,
		fault.NewNet(fault.NetConfig{Seed: 105, DropRate: 0.08, DropNth: 3, MaxFaults: 4}), 0)
}

// TestChaosWorkerDeath partitions one worker permanently mid-run: its
// leases time out until it is evicted, and the survivors absorb its
// chunks with no loss of precision.
func TestChaosWorkerDeath(t *testing.T) {
	cells, q, plan := distScenario(t)
	want := localResults(t, cells, q, plan)

	addrs, stop := startWorkers(t, 3, WorkerConfig{AckTimeout: chaosAckTimeout})
	defer stop()
	inj := fault.NewNet(fault.NetConfig{})
	reg := obs.NewRegistry()
	pool, err := NewPool(context.Background(), PoolConfig{
		Addrs:          addrs,
		Retry:          quickRetry(8),
		DialTimeout:    chaosDialTimeout,
		RequestTimeout: chaosRequestTimeout,
		FailureLimit:   1, // first timeout evicts: the survivors may finish fast
		Seed:           q.Seed,
		Obs:            reg,
		Inject:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	inj.Partition(addrs[0]) // dies after the handshake, before any lease

	got, stats, err := engine.NewExec(q, plan,
		engine.WithRemoteWorkers(pool),
		engine.WithRetry(quickRetry(4)),
		engine.WithObserver(reg)).
		Execute(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
	if pool.Live() != 2 {
		t.Fatalf("live workers = %d, want 2 after the partitioned worker's eviction", pool.Live())
	}
	if v := reg.Counter(obs.DistEvictions, addrs[0]).Value(); v != 1 {
		t.Fatalf("evictions for dead worker = %d, want 1", v)
	}
	// Its failed leases are in the ledger, attributed to the dead worker.
	var deadLeases int
	for _, l := range stats.Leases {
		if l.Worker == addrs[0] {
			if l.Err == "" {
				t.Fatalf("partitioned worker recorded a successful lease: %+v", l)
			}
			deadLeases++
		}
	}
	if deadLeases == 0 {
		t.Fatal("no failed leases attributed to the dead worker")
	}
	if v := reg.Counter(obs.EngineChunksDone, "").Value(); v != int64(stats.Chunks) {
		t.Fatalf("journal admitted %d chunks, want %d", v, stats.Chunks)
	}
	writeChaosReport(t, "worker-death", stats)
}

// TestChaosPartitionHeal cuts one worker off and heals the partition
// mid-run; whether the worker rejoins or its chunks all fail over, the
// answer is bit-identical.
func TestChaosPartitionHeal(t *testing.T) {
	cells, q, plan := distScenario(t)
	want := localResults(t, cells, q, plan)

	addrs, stop := startWorkers(t, 3, WorkerConfig{AckTimeout: chaosAckTimeout})
	defer stop()
	inj := fault.NewNet(fault.NetConfig{})
	pool, err := NewPool(context.Background(), PoolConfig{
		Addrs:          addrs,
		Retry:          quickRetry(8),
		DialTimeout:    chaosDialTimeout,
		RequestTimeout: chaosRequestTimeout,
		FailureLimit:   20, // survive the partition window
		Seed:           q.Seed,
		Inject:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	inj.Partition(addrs[1])
	heal := time.AfterFunc(150*time.Millisecond, func() { inj.Heal(addrs[1]) })
	defer heal.Stop()

	got, _, err := engine.NewExec(q, plan,
		engine.WithRemoteWorkers(pool),
		engine.WithRetry(quickRetry(4))).
		Execute(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
	if pool.Live() != 3 {
		t.Fatalf("live workers = %d, want 3 (FailureLimit should outlast the partition)", pool.Live())
	}
}

// TestChaosAllWorkersLost drives the pool to total loss after exactly
// one completed chunk and checks the engine's graceful degradation: a
// survivor-only answer plus a DegradedResult audit naming every dropped
// partition, with the journal still admitting exactly the work that
// finished.
func TestChaosAllWorkersLost(t *testing.T) {
	cells, q, plan := distScenario(t)

	addrs, stop := startWorkers(t, 1, WorkerConfig{AckTimeout: chaosAckTimeout})
	defer stop()
	// The single worker's frame sequence is serial: 1 Hello, 2 Chunk,
	// 3 Ack, 4 Chunk. Disconnecting at frame 4 completes exactly one
	// chunk, then FailureLimit 1 evicts the only worker.
	inj := fault.NetDisconnectNth(4)
	reg := obs.NewRegistry()
	pool, err := NewPool(context.Background(), PoolConfig{
		Addrs:          addrs,
		Retry:          quickRetry(2),
		DialTimeout:    chaosDialTimeout,
		RequestTimeout: chaosRequestTimeout,
		FailureLimit:   1,
		Seed:           q.Seed,
		Obs:            reg,
		Inject:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	results, stats, err := engine.NewExec(q, plan,
		engine.WithRemoteWorkers(pool),
		engine.WithRetry(quickRetry(1)),
		engine.WithDegradedResults(),
		engine.WithObserver(reg)).
		Execute(context.Background(), cells)
	if err != nil {
		t.Fatalf("degraded mode must answer, not fail: %v", err)
	}
	if pool.Live() != 0 {
		t.Fatalf("live workers = %d, want 0", pool.Live())
	}
	d := stats.Degraded
	if d == nil {
		t.Fatal("expected a DegradedResult audit")
	}
	// 7 chunks total (600/150 + 450/150); exactly one completed.
	if stats.Chunks != 7 {
		t.Fatalf("plan sliced %d chunks, want 7", stats.Chunks)
	}
	if len(d.DroppedChunks) != 6 {
		t.Fatalf("audit dropped %d chunks, want 6: %v", len(d.DroppedChunks), d.DroppedChunks)
	}
	if d.PointsLost != 900 {
		t.Fatalf("audit points lost = %d, want 900", d.PointsLost)
	}
	// The surviving chunk keeps its cell partial; the other cell is gone.
	if len(results) != 1 || len(d.PartialCells) != 1 || len(d.DroppedCells) != 1 {
		t.Fatalf("got %d results, %d partial cells, %d dropped cells; want 1/1/1",
			len(results), len(d.PartialCells), len(d.DroppedCells))
	}
	if results[0].LostChunks == 0 {
		t.Fatal("surviving cell result should record its lost chunks")
	}
	// Exactly-once: the journal admitted only the one finished chunk.
	if v := reg.Counter(obs.EngineChunksDone, "").Value(); v != 1 {
		t.Fatalf("journal admitted %d chunks, want 1", v)
	}
	if v := reg.Counter(obs.DistEvictions, addrs[0]).Value(); v != 1 {
		t.Fatalf("evictions = %d, want 1", v)
	}
	// The ledger shows the eviction trail: the clean lease plus failures.
	var clean, failed int
	for _, l := range stats.Leases {
		if l.Err == "" {
			clean++
		} else {
			failed++
		}
	}
	if clean != 1 || failed == 0 {
		t.Fatalf("lease ledger: %d clean, %d failed; want exactly 1 clean and some failures", clean, failed)
	}
	writeChaosReport(t, "all-workers-lost", stats)
}
