// Package trace records operator spans during plan execution and renders
// a text timeline — the observability a stream engine needs to explain
// where a long-running query spent its time (and the evidence behind
// re-optimization decisions: a congested operator shows up as a dense
// span lane).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Label is one key=value annotation on a span. The engine labels every
// span with the metric stage it feeds ("stage" → "partial-kmeans"), so
// the text timeline and the obs JSON report cross-reference: a lane in
// one is a stage label in the other.
type Label struct {
	Key, Value string
}

// Span is one operator's work on one item.
type Span struct {
	// Op is the operator name ("partial-kmeans").
	Op string
	// Item identifies the work unit ("cell N34W118 chunk 2").
	Item string
	// Labels carries the span's metric annotations (nil when recorded
	// through the plain Span method).
	Labels []Label
	// Start and End are offsets from the tracer's creation.
	Start, End time.Duration
}

// Label returns the value of the labeled key, or "".
func (s Span) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Tracer collects spans concurrently with bounded memory: once the
// capacity is reached, further spans are counted but dropped.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	spans   []Span
	cap     int
	dropped int
}

// New returns a tracer holding at most capacity spans (<= 0 selects
// 4096).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{epoch: time.Now(), cap: capacity}
}

// Span starts a span and returns its closer; call the closer when the
// work finishes.
func (t *Tracer) Span(op, item string) func() {
	return t.SpanL(op, item)
}

// SpanL is Span with metric labels attached: the engine uses it to tag
// each span with the stage label its metrics are filed under, so the
// timeline and the JSON run report name the same stages.
func (t *Tracer) SpanL(op, item string, labels ...Label) func() {
	start := time.Since(t.epoch)
	return func() {
		end := time.Since(t.epoch)
		t.mu.Lock()
		defer t.mu.Unlock()
		if len(t.spans) >= t.cap {
			t.dropped++
			return
		}
		t.spans = append(t.spans, Span{Op: op, Item: item, Labels: labels, Start: start, End: end})
	}
}

// OpSummary aggregates every recorded span of one operator.
type OpSummary struct {
	// Op is the operator (and metric stage) name.
	Op string
	// Spans is the number of recorded spans.
	Spans int
	// Busy is the summed span duration across clones.
	Busy time.Duration
}

// Summary aggregates the recorded spans per operator, sorted by name —
// the trace section of the obs run report. Dropped spans are not
// included (see Dropped).
func (t *Tracer) Summary() []OpSummary {
	spans := t.Spans()
	idx := map[string]int{}
	var out []OpSummary
	for _, s := range spans {
		i, ok := idx[s.Op]
		if !ok {
			i = len(out)
			idx[s.Op] = i
			out = append(out, OpSummary{Op: s.Op})
		}
		out[i].Spans++
		out[i].Busy += s.Duration()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}

// Spans returns a copy of the recorded spans sorted by start time.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Dropped returns how many spans were discarded after the capacity
// filled.
func (t *Tracer) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Timeline renders the spans as a text gantt chart: one lane per
// operator, '#' marking busy intervals, scaled to width columns.
func (t *Tracer) Timeline(width int) string {
	if width < 10 {
		width = 10
	}
	spans := t.Spans()
	if len(spans) == 0 {
		return "(no spans recorded)\n"
	}
	var horizon time.Duration
	ops := map[string][]Span{}
	var order []string
	for _, s := range spans {
		if s.End > horizon {
			horizon = s.End
		}
		if _, seen := ops[s.Op]; !seen {
			order = append(order, s.Op)
		}
		ops[s.Op] = append(ops[s.Op], s)
	}
	if horizon == 0 {
		horizon = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline over %v (1 col = %v)\n", horizon.Round(time.Millisecond),
		(horizon / time.Duration(width)).Round(time.Microsecond))
	for _, op := range order {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = '.'
		}
		var busy time.Duration
		for _, s := range ops[op] {
			busy += s.Duration()
			lo := int(int64(s.Start) * int64(width) / int64(horizon))
			hi := int(int64(s.End) * int64(width) / int64(horizon))
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				lane[i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-16s |%s| %3d spans, busy %v\n", op, lane, len(ops[op]),
			busy.Round(time.Millisecond))
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(%d spans dropped beyond capacity)\n", d)
	}
	return b.String()
}
