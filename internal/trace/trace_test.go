package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanRecording(t *testing.T) {
	tr := New(10)
	end := tr.Span("op-a", "item-1")
	time.Sleep(2 * time.Millisecond)
	end()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	s := spans[0]
	if s.Op != "op-a" || s.Item != "item-1" {
		t.Fatalf("span %+v", s)
	}
	if s.Duration() < time.Millisecond {
		t.Fatalf("duration %v too small", s.Duration())
	}
	if s.End <= s.Start {
		t.Fatalf("span times inverted: %+v", s)
	}
}

func TestCapacityBound(t *testing.T) {
	tr := New(3)
	for i := 0; i < 10; i++ {
		tr.Span("op", "x")()
	}
	if len(tr.Spans()) != 3 {
		t.Fatalf("kept %d spans, cap 3", len(tr.Spans()))
	}
	if tr.Dropped() != 7 {
		t.Fatalf("Dropped = %d", tr.Dropped())
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Span("worker", "item")()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()) + tr.Dropped(); got != 800 {
		t.Fatalf("spans+dropped = %d, want 800", got)
	}
}

func TestSpansSortedByStart(t *testing.T) {
	tr := New(100)
	for i := 0; i < 20; i++ {
		tr.Span("op", "x")()
	}
	spans := tr.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatal("spans not sorted by start")
		}
	}
}

func TestTimeline(t *testing.T) {
	tr := New(100)
	endA := tr.Span("partial", "c0")
	time.Sleep(time.Millisecond)
	endA()
	endB := tr.Span("merge", "cell")
	time.Sleep(time.Millisecond)
	endB()
	out := tr.Timeline(40)
	for _, want := range []string{"timeline over", "partial", "merge", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// tiny width is clamped, empty tracer renders a placeholder
	if !strings.Contains(New(1).Timeline(1), "no spans") {
		t.Fatal("empty tracer should render placeholder")
	}
}

func TestTimelineReportsDropped(t *testing.T) {
	tr := New(1)
	tr.Span("op", "a")()
	tr.Span("op", "b")()
	if !strings.Contains(tr.Timeline(20), "dropped") {
		t.Fatal("timeline should mention dropped spans")
	}
}

func TestSpanLabelsRecorded(t *testing.T) {
	tr := New(16)
	end := tr.SpanL("partial-kmeans", "cell0/1",
		Label{Key: "stage", Value: "partial-kmeans"},
		Label{Key: "chunk", Value: "1"})
	end()
	tr.Span("merge-kmeans", "cell0")()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	if got := spans[0].Label("stage"); got != "partial-kmeans" {
		t.Fatalf(`Label("stage") = %q`, got)
	}
	if got := spans[0].Label("chunk"); got != "1" {
		t.Fatalf(`Label("chunk") = %q`, got)
	}
	if got := spans[0].Label("absent"); got != "" {
		t.Fatalf(`absent label = %q, want ""`, got)
	}
	if spans[1].Labels != nil {
		t.Fatalf("plain Span recorded labels %v", spans[1].Labels)
	}
}

func TestSummaryAggregatesPerOp(t *testing.T) {
	tr := New(16)
	for i := 0; i < 3; i++ {
		end := tr.SpanL("partial-kmeans", "x", Label{Key: "stage", Value: "partial-kmeans"})
		time.Sleep(time.Millisecond)
		end()
	}
	tr.Span("merge-kmeans", "y")()
	sum := tr.Summary()
	if len(sum) != 2 {
		t.Fatalf("summary has %d ops, want 2: %+v", len(sum), sum)
	}
	// Sorted by op name: merge-kmeans before partial-kmeans.
	if sum[0].Op != "merge-kmeans" || sum[1].Op != "partial-kmeans" {
		t.Fatalf("summary order %q, %q", sum[0].Op, sum[1].Op)
	}
	if sum[1].Spans != 3 {
		t.Fatalf("partial spans = %d, want 3", sum[1].Spans)
	}
	if sum[1].Busy <= 0 {
		t.Fatalf("partial busy = %v, want > 0", sum[1].Busy)
	}
}

// TestLabeledSpanDropConcurrent closes many labeled spans at once
// against a tiny capacity: exactly cap spans survive, the rest are
// counted dropped, and Summary sees only the retained ones.
func TestLabeledSpanDropConcurrent(t *testing.T) {
	const capacity, total = 8, 64
	tr := New(capacity)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.SpanL("partial-kmeans", "item", Label{Key: "stage", Value: "partial-kmeans"})()
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != capacity {
		t.Fatalf("retained %d spans, want %d", got, capacity)
	}
	if got := tr.Dropped(); got != total-capacity {
		t.Fatalf("dropped = %d, want %d", got, total-capacity)
	}
	sum := tr.Summary()
	if len(sum) != 1 || sum[0].Spans != capacity {
		t.Fatalf("summary %+v, want %d spans of one op", sum, capacity)
	}
}
