package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanRecording(t *testing.T) {
	tr := New(10)
	end := tr.Span("op-a", "item-1")
	time.Sleep(2 * time.Millisecond)
	end()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	s := spans[0]
	if s.Op != "op-a" || s.Item != "item-1" {
		t.Fatalf("span %+v", s)
	}
	if s.Duration() < time.Millisecond {
		t.Fatalf("duration %v too small", s.Duration())
	}
	if s.End <= s.Start {
		t.Fatalf("span times inverted: %+v", s)
	}
}

func TestCapacityBound(t *testing.T) {
	tr := New(3)
	for i := 0; i < 10; i++ {
		tr.Span("op", "x")()
	}
	if len(tr.Spans()) != 3 {
		t.Fatalf("kept %d spans, cap 3", len(tr.Spans()))
	}
	if tr.Dropped() != 7 {
		t.Fatalf("Dropped = %d", tr.Dropped())
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Span("worker", "item")()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()) + tr.Dropped(); got != 800 {
		t.Fatalf("spans+dropped = %d, want 800", got)
	}
}

func TestSpansSortedByStart(t *testing.T) {
	tr := New(100)
	for i := 0; i < 20; i++ {
		tr.Span("op", "x")()
	}
	spans := tr.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatal("spans not sorted by start")
		}
	}
}

func TestTimeline(t *testing.T) {
	tr := New(100)
	endA := tr.Span("partial", "c0")
	time.Sleep(time.Millisecond)
	endA()
	endB := tr.Span("merge", "cell")
	time.Sleep(time.Millisecond)
	endB()
	out := tr.Timeline(40)
	for _, want := range []string{"timeline over", "partial", "merge", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// tiny width is clamped, empty tracer renders a placeholder
	if !strings.Contains(New(1).Timeline(1), "no spans") {
		t.Fatal("empty tracer should render placeholder")
	}
}

func TestTimelineReportsDropped(t *testing.T) {
	tr := New(1)
	tr.Span("op", "a")()
	tr.Span("op", "b")()
	if !strings.Contains(tr.Timeline(20), "dropped") {
		t.Fatal("timeline should mention dropped spans")
	}
}
