// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§5) plus the ablations DESIGN.md
// calls out, over synthetic MISR-like grid cells. Each experiment
// returns typed rows; formatting helpers render them in the paper's
// layout so measured shapes can be compared side by side with the
// published numbers (EXPERIMENTS.md records that comparison).
package bench

import (
	"fmt"

	"streamkm/internal/dataset"
)

// Workload pins the data-generation and algorithm parameters shared by
// all experiments.
type Workload struct {
	// Sizes is the per-cell point-count sweep (paper: 250, 2 500,
	// 12 500, 25 000, 50 000, 75 000).
	Sizes []int
	// Dim is the attribute dimensionality (paper: 6).
	Dim int
	// K is the cluster count (paper: 40).
	K int
	// Restarts is the seed sets per run (paper: 10).
	Restarts int
	// Versions is how many independently generated cells are averaged
	// per configuration (paper: 5).
	Versions int
	// Seed derives all randomness.
	Seed uint64
	// Spec shapes the synthetic cells.
	Spec dataset.CellSpec
}

// PaperWorkload returns the paper's full experiment setting. Running it
// takes minutes; tests and CI use QuickWorkload.
func PaperWorkload() Workload {
	spec := dataset.DefaultCellSpec()
	return Workload{
		Sizes:    []int{250, 2500, 12500, 25000, 50000, 75000},
		Dim:      6,
		K:        40,
		Restarts: 10,
		Versions: 5,
		Seed:     2004,
		Spec:     spec,
	}
}

// QuickWorkload returns a laptop-scale setting that preserves the
// paper's qualitative shape (same sweep structure, smaller N, smaller k)
// for tests and smoke benchmarks.
func QuickWorkload() Workload {
	spec := dataset.DefaultCellSpec()
	spec.Clusters = 12
	return Workload{
		Sizes:    []int{250, 1000, 4000},
		Dim:      6,
		K:        10,
		Restarts: 3,
		Versions: 2,
		Seed:     2004,
		Spec:     spec,
	}
}

func (w Workload) validate() error {
	if len(w.Sizes) == 0 {
		return fmt.Errorf("bench: workload has no sizes")
	}
	for _, n := range w.Sizes {
		if n <= 0 {
			return fmt.Errorf("bench: non-positive size %d", n)
		}
	}
	if w.Dim <= 0 || w.K <= 0 || w.Restarts <= 0 || w.Versions <= 0 {
		return fmt.Errorf("bench: Dim, K, Restarts, Versions must be positive")
	}
	return nil
}

// Cell generates version v of the N-point cell deterministically —
// exported so external harnesses (the quality gate) can reproduce the
// exact cells behind the committed results tables.
func (w Workload) Cell(n int, version int) (*dataset.Set, error) {
	return w.cell(n, version)
}

// cell generates version v of the N-point cell deterministically.
func (w Workload) cell(n int, version int) (*dataset.Set, error) {
	spec := w.Spec
	spec.Dim = w.Dim
	seed := w.Seed ^ (uint64(n) << 20) ^ uint64(version)*0x9e37
	return dataset.GenerateCell(spec, n, seed)
}
