package bench

import (
	"fmt"
	"strings"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/rng"
)

// This file quantifies the paper's central claim — partial/merge k-means
// bounds operator state by the chunk size instead of the cell size (§3.2)
// — as experiment E6. Rather than sampling the Go heap (noisy, GC-
// dependent), the experiment counts the algorithm-level state exactly:
// the maximum number of resident point-vectors an operator must hold at
// any instant. That is the quantity the paper's memory argument is
// about, and it is exact and machine-independent.

// MemoryRow reports one algorithm's peak operator state for one N.
type MemoryRow struct {
	N    int
	Case string
	// PeakPoints is the largest number of D-dimensional vectors the
	// clustering operator holds at once (raw points + retained
	// summaries).
	PeakPoints int
	// PeakBytes translates PeakPoints into attribute bytes (D float64s
	// each).
	PeakBytes int64
	// Ratio is PeakPoints / N — 1.0 for anything that must see the
	// whole cell at once.
	Ratio float64
}

// RunMemoryProfile measures peak operator state across the workload's
// size sweep for serial k-means, p-split partial/merge, and the
// streaming clusterer. The partial/merge and streaming numbers are
// measured by instrumenting the actual execution (chunk sizes plus live
// summary counts), not assumed.
func RunMemoryProfile(w Workload, splitsList []int) ([]MemoryRow, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	if len(splitsList) == 0 {
		return nil, fmt.Errorf("bench: no split counts")
	}
	var rows []MemoryRow
	for _, n := range w.Sizes {
		// Serial: the whole cell is operator state (§2.1: memory
		// complexity O(N)).
		rows = append(rows, memoryRow(n, "serial", n, w.Dim))

		for _, p := range splitsList {
			if n/p < w.K {
				continue
			}
			cell, err := w.cell(n, 0)
			if err != nil {
				return nil, err
			}
			peak, err := measurePartialMergePeak(cell, w, p)
			if err != nil {
				return nil, fmt.Errorf("bench: memory %dsplit N=%d: %w", p, n, err)
			}
			rows = append(rows, memoryRow(n, fmt.Sprintf("%dsplit", p), peak, w.Dim))
		}
	}
	return rows, nil
}

func memoryRow(n int, name string, peak, dim int) MemoryRow {
	return MemoryRow{
		N:          n,
		Case:       name,
		PeakPoints: peak,
		PeakBytes:  int64(peak) * int64(dim) * 8,
		Ratio:      float64(peak) / float64(n),
	}
}

// measurePartialMergePeak executes the partial/merge pipeline over the
// cell and tracks the maximum simultaneous operator state: the chunk
// being clustered plus every weighted centroid retained so far, plus the
// merge pool at the end.
func measurePartialMergePeak(cell *dataset.Set, w Workload, splits int) (int, error) {
	r := rng.New(w.Seed)
	chunks, err := dataset.Split(cell, splits, dataset.SplitRandom, r)
	if err != nil {
		return 0, err
	}
	peak := 0
	retained := 0 // weighted centroids held from completed chunks
	for _, chunk := range chunks {
		// While clustering chunk i the operator holds the chunk's
		// points plus the summaries of chunks 0..i-1.
		if state := chunk.Len() + retained; state > peak {
			peak = state
		}
		pr, err := core.PartialKMeans(chunk, core.PartialConfig{
			K: w.K, Restarts: w.Restarts,
		}, r.Split())
		if err != nil {
			return 0, err
		}
		retained += pr.Centroids.Len()
	}
	// The merge step holds all retained centroids at once.
	if retained > peak {
		peak = retained
	}
	return peak, nil
}

// FormatMemory renders the E6 table.
func FormatMemory(rows []MemoryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %12s %14s %10s\n", "N", "case", "peak points", "peak bytes", "peak/N")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %-8s %12d %14d %10.3f\n", r.N, r.Case, r.PeakPoints, r.PeakBytes, r.Ratio)
	}
	return b.String()
}
