package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"streamkm/internal/baseline"
	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/distsim"
	"streamkm/internal/kmeans"
	"streamkm/internal/metrics"
	"streamkm/internal/vector"
)

// SpeedupRow is one point of the E5 parallelization experiment (§5.1,
// "speed-up of the processing if the partial k-means operators are
// parallelized").
type SpeedupRow struct {
	Clones  int
	Elapsed time.Duration
	// Speedup is serial elapsed / this elapsed.
	Speedup float64
	// MergeMSE verifies the result is clone-count-invariant.
	MergeMSE float64
}

// RunSpeedup clusters one N-point cell with varying partial-operator
// clone counts.
func RunSpeedup(ctx context.Context, w Workload, n int, splits int, clones []int) ([]SpeedupRow, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	if len(clones) == 0 {
		return nil, fmt.Errorf("bench: no clone counts")
	}
	cell, err := w.cell(n, 0)
	if err != nil {
		return nil, err
	}
	var rows []SpeedupRow
	var base time.Duration
	for _, c := range clones {
		opts := core.Options{
			K: w.K, Restarts: w.Restarts, Splits: splits,
			Seed: w.Seed, Parallelism: c,
		}
		res, err := core.ClusterParallel(ctx, cell, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: speedup clones=%d: %w", c, err)
		}
		if base == 0 {
			base = res.Elapsed
		}
		rows = append(rows, SpeedupRow{
			Clones:   c,
			Elapsed:  res.Elapsed,
			Speedup:  float64(base) / float64(res.Elapsed),
			MergeMSE: res.MergeMSE,
		})
	}
	return rows, nil
}

// FormatSpeedup renders the speed-up table.
func FormatSpeedup(rows []SpeedupRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %14s %10s %14s\n", "clones", "elapsed (ms)", "speedup", "merge MSE")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %14d %10.2f %14.2f\n",
			r.Clones, r.Elapsed.Milliseconds(), r.Speedup, r.MergeMSE)
	}
	return b.String()
}

// AblationRow is a generic (variant, quality, time) row used by the A1-A3
// ablations.
type AblationRow struct {
	Variant  string
	MergeMSE float64
	PointMSE float64
	Elapsed  time.Duration
}

// FormatAblation renders ablation rows.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%-22s %14s %14s %14s\n", "variant", "merge MSE", "point MSE", "elapsed (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %14.2f %14.2f %14d\n",
			r.Variant, r.MergeMSE, r.PointMSE, r.Elapsed.Milliseconds())
	}
	return b.String()
}

// RunMergeModeAblation compares collective vs incremental merging (A1,
// §3.3's information-theoretic argument for collective).
func RunMergeModeAblation(w Workload, n, splits int) ([]AblationRow, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, mode := range []core.MergeMode{core.MergeCollective, core.MergeIncremental} {
		row := AblationRow{Variant: mode.String()}
		for v := 0; v < w.Versions; v++ {
			cell, err := w.cell(n, v)
			if err != nil {
				return nil, err
			}
			res, err := core.Cluster(cell, core.Options{
				K: w.K, Restarts: w.Restarts, Splits: splits,
				MergeMode: mode, Seed: w.Seed + uint64(v),
			})
			if err != nil {
				return nil, fmt.Errorf("bench: merge mode %v: %w", mode, err)
			}
			row.MergeMSE += res.MergeMSE
			row.PointMSE += res.PointMSE
			row.Elapsed += res.Elapsed
		}
		row.MergeMSE /= float64(w.Versions)
		row.PointMSE /= float64(w.Versions)
		row.Elapsed /= time.Duration(w.Versions)
		rows = append(rows, row)
	}
	return rows, nil
}

// RunMergeSeedingAblation compares the paper's heaviest-weight merge
// seeding against random and k-means++ seeding (A2).
func RunMergeSeedingAblation(w Workload, n, splits int) ([]AblationRow, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	seeders := []kmeans.Seeder{kmeans.HeaviestSeeder{}, kmeans.RandomSeeder{}, kmeans.PlusPlusSeeder{}}
	var rows []AblationRow
	for _, s := range seeders {
		row := AblationRow{Variant: s.Name()}
		for v := 0; v < w.Versions; v++ {
			cell, err := w.cell(n, v)
			if err != nil {
				return nil, err
			}
			res, err := core.Cluster(cell, core.Options{
				K: w.K, Restarts: w.Restarts, Splits: splits,
				MergeSeeder: s, Seed: w.Seed + uint64(v),
			})
			if err != nil {
				return nil, fmt.Errorf("bench: merge seeding %s: %w", s.Name(), err)
			}
			row.MergeMSE += res.MergeMSE
			row.PointMSE += res.PointMSE
			row.Elapsed += res.Elapsed
		}
		row.MergeMSE /= float64(w.Versions)
		row.PointMSE /= float64(w.Versions)
		row.Elapsed /= time.Duration(w.Versions)
		rows = append(rows, row)
	}
	return rows, nil
}

// RunPartialSeedingAblation compares the paper's random partial-stage
// seeding against k-means++ (A8, the partial-stage mirror of A2).
func RunPartialSeedingAblation(w Workload, n, splits int) ([]AblationRow, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	seeders := []kmeans.Seeder{kmeans.RandomSeeder{}, kmeans.PlusPlusSeeder{}}
	var rows []AblationRow
	for _, s := range seeders {
		row := AblationRow{Variant: s.Name()}
		for v := 0; v < w.Versions; v++ {
			cell, err := w.cell(n, v)
			if err != nil {
				return nil, err
			}
			res, err := core.Cluster(cell, core.Options{
				K: w.K, Restarts: w.Restarts, Splits: splits,
				PartialSeeder: s, Seed: w.Seed + uint64(v),
			})
			if err != nil {
				return nil, fmt.Errorf("bench: partial seeding %s: %w", s.Name(), err)
			}
			row.MergeMSE += res.MergeMSE
			row.PointMSE += res.PointMSE
			row.Elapsed += res.Elapsed
		}
		row.MergeMSE /= float64(w.Versions)
		row.PointMSE /= float64(w.Versions)
		row.Elapsed /= time.Duration(w.Versions)
		rows = append(rows, row)
	}
	return rows, nil
}

// RunSlicingAblation compares the slicing strategies of §6's future work
// (A3): random (the paper's tests), salami, and spatial.
func RunSlicingAblation(w Workload, n, splits int) ([]AblationRow, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	strategies := []dataset.SplitStrategy{dataset.SplitRandom, dataset.SplitSalami, dataset.SplitSpatial}
	var rows []AblationRow
	for _, strat := range strategies {
		row := AblationRow{Variant: strat.String()}
		for v := 0; v < w.Versions; v++ {
			cell, err := w.cell(n, v)
			if err != nil {
				return nil, err
			}
			res, err := core.Cluster(cell, core.Options{
				K: w.K, Restarts: w.Restarts, Splits: splits,
				Strategy: strat, Seed: w.Seed + uint64(v),
			})
			if err != nil {
				return nil, fmt.Errorf("bench: slicing %v: %w", strat, err)
			}
			row.MergeMSE += res.MergeMSE
			row.PointMSE += res.PointMSE
			row.Elapsed += res.Elapsed
		}
		row.MergeMSE /= float64(w.Versions)
		row.PointMSE /= float64(w.Versions)
		row.Elapsed /= time.Duration(w.Versions)
		rows = append(rows, row)
	}
	return rows, nil
}

// RestartRow is one point of the A10 restart sweep: the paper fixes
// R = 10 seed sets without justification; this measures the
// quality/time trade directly.
type RestartRow struct {
	Restarts int
	MergeMSE float64
	PointMSE float64
	Elapsed  time.Duration
}

// RunRestartSweep clusters cells at several restart counts, averaging
// over the workload's dataset versions.
func RunRestartSweep(w Workload, n, splits int, restarts []int) ([]RestartRow, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	if len(restarts) == 0 {
		return nil, fmt.Errorf("bench: no restart counts")
	}
	var rows []RestartRow
	for _, r := range restarts {
		if r <= 0 {
			return nil, fmt.Errorf("bench: non-positive restart count %d", r)
		}
		row := RestartRow{Restarts: r}
		for v := 0; v < w.Versions; v++ {
			cell, err := w.cell(n, v)
			if err != nil {
				return nil, err
			}
			res, err := core.Cluster(cell, core.Options{
				K: w.K, Restarts: r, Splits: splits, Seed: w.Seed + uint64(v),
			})
			if err != nil {
				return nil, fmt.Errorf("bench: restarts=%d: %w", r, err)
			}
			row.MergeMSE += res.MergeMSE
			row.PointMSE += res.PointMSE
			row.Elapsed += res.Elapsed
		}
		row.MergeMSE /= float64(w.Versions)
		row.PointMSE /= float64(w.Versions)
		row.Elapsed /= time.Duration(w.Versions)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatRestarts renders the A10 table.
func FormatRestarts(rows []RestartRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %14s %14s\n", "restarts", "merge MSE", "point MSE", "elapsed (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %14.2f %14.2f %14d\n",
			r.Restarts, r.MergeMSE, r.PointMSE, r.Elapsed.Milliseconds())
	}
	return b.String()
}

// AgreementRow is one line of the A9 partition-agreement experiment:
// how similarly two algorithms carve the same cell, beyond MSE.
type AgreementRow struct {
	Pair string
	// ARI is the adjusted Rand index between the two nearest-centroid
	// labelings (1 = identical partitions, ~0 = chance).
	ARI float64
}

// RunAgreement computes pairwise adjusted Rand indices between the
// partitions induced by serial k-means, 5-split, and 10-split
// partial/merge on one cell.
func RunAgreement(w Workload, n int) ([]AgreementRow, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	cell, err := w.cell(n, 0)
	if err != nil {
		return nil, err
	}
	label := func(centroids []vector.Vector) []int {
		out := make([]int, cell.Len())
		for i, p := range cell.Points() {
			out[i], _ = vector.NearestIndex(p, centroids)
		}
		return out
	}
	serial, err := baseline.Serial(cell, baseline.SerialConfig{K: w.K, Restarts: w.Restarts, Seed: w.Seed})
	if err != nil {
		return nil, err
	}
	labels := map[string][]int{"serial": label(serial.Centroids)}
	names := []string{"serial"}
	for _, splits := range []int{5, 10} {
		if n/splits < w.K {
			continue
		}
		res, err := core.Cluster(cell, core.Options{
			K: w.K, Restarts: w.Restarts, Splits: splits, Seed: w.Seed,
		})
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%dsplit", splits)
		labels[name] = label(res.Centroids)
		names = append(names, name)
	}
	var rows []AgreementRow
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			ari, err := metrics.AdjustedRandIndex(labels[names[i]], labels[names[j]])
			if err != nil {
				return nil, err
			}
			rows = append(rows, AgreementRow{Pair: names[i] + " vs " + names[j], ARI: ari})
		}
	}
	return rows, nil
}

// FormatAgreement renders the A9 table.
func FormatAgreement(rows []AgreementRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s\n", "pair", "ARI")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %10.3f\n", r.Pair, r.ARI)
	}
	return b.String()
}

// ChunkSizeRow is one point of the A7 chunk-size sensitivity sweep —
// §3.3's open question ("which is the best choice of k depending on the
// partition size") approached from the other side: fixed k, varying
// partition size.
type ChunkSizeRow struct {
	ChunkPoints int
	Partitions  int
	MergeMSE    float64
	PointMSE    float64
	Elapsed     time.Duration
}

// RunChunkSizeSweep clusters one N-point cell at several memory budgets.
func RunChunkSizeSweep(w Workload, n int, chunkSizes []int) ([]ChunkSizeRow, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	if len(chunkSizes) == 0 {
		return nil, fmt.Errorf("bench: no chunk sizes")
	}
	cell, err := w.cell(n, 0)
	if err != nil {
		return nil, err
	}
	var rows []ChunkSizeRow
	for _, cp := range chunkSizes {
		if cp < w.K {
			continue
		}
		res, err := core.Cluster(cell, core.Options{
			K: w.K, Restarts: w.Restarts, ChunkPoints: cp, Seed: w.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: chunk size %d: %w", cp, err)
		}
		rows = append(rows, ChunkSizeRow{
			ChunkPoints: cp,
			Partitions:  res.Partitions,
			MergeMSE:    res.MergeMSE,
			PointMSE:    res.PointMSE,
			Elapsed:     res.Elapsed,
		})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("bench: every chunk size was below k=%d", w.K)
	}
	return rows, nil
}

// FormatChunkSizes renders the A7 table.
func FormatChunkSizes(rows []ChunkSizeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %14s %14s %14s\n",
		"chunk (pts)", "chunks", "merge MSE", "point MSE", "elapsed (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d %10d %14.2f %14.2f %14d\n",
			r.ChunkPoints, r.Partitions, r.MergeMSE, r.PointMSE, r.Elapsed.Milliseconds())
	}
	return b.String()
}

// DistRow is one point of E7: simulated distributed execution on a
// network of PCs (the paper's §5.1 environment, modeled per DESIGN.md).
type DistRow struct {
	Machines int
	Makespan time.Duration
	Speedup  float64
	Transfer time.Duration
	BytesMB  float64
	MergeMSE float64
}

// RunDistributedScaleup regenerates the near-linear scale-up claim by
// simulating the partial/merge run over 1..M worker machines connected
// by a gigabit-class network.
func RunDistributedScaleup(w Workload, n, splits int, machines []int) ([]DistRow, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	if len(machines) == 0 {
		return nil, fmt.Errorf("bench: no machine counts")
	}
	cell, err := w.cell(n, 0)
	if err != nil {
		return nil, err
	}
	var rows []DistRow
	for _, m := range machines {
		rep, err := distsim.Run(cell, distsim.Config{
			Machines:     m,
			NetLatency:   100 * time.Microsecond,
			NetBandwidth: 125e6,
			Splits:       splits,
			K:            w.K,
			Restarts:     w.Restarts,
			Seed:         w.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: distsim machines=%d: %w", m, err)
		}
		rows = append(rows, DistRow{
			Machines: m,
			Makespan: rep.Makespan,
			Speedup:  rep.Speedup(),
			Transfer: rep.TransferTime,
			BytesMB:  float64(rep.BytesMoved) / (1 << 20),
			MergeMSE: rep.MergeMSE,
		})
	}
	return rows, nil
}

// FormatDistributed renders the E7 table.
func FormatDistributed(rows []DistRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %14s %9s %14s %10s %12s\n",
		"machines", "makespan (ms)", "speedup", "transfer (ms)", "MB moved", "merge MSE")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9d %14d %9.2f %14d %10.2f %12.2f\n",
			r.Machines, r.Makespan.Milliseconds(), r.Speedup,
			r.Transfer.Milliseconds(), r.BytesMB, r.MergeMSE)
	}
	return b.String()
}

// RunAccelerationAblation compares naive Lloyd against Hamerly's
// accelerated iteration over the full partial/merge pipeline (A6 — §2's
// "improvements for step 2" that the paper declined to implement).
func RunAccelerationAblation(w Workload, n, splits int) ([]AblationRow, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, accel := range []bool{false, true} {
		variant := "lloyd-naive"
		if accel {
			variant = "lloyd-hamerly"
		}
		row := AblationRow{Variant: variant}
		for v := 0; v < w.Versions; v++ {
			cell, err := w.cell(n, v)
			if err != nil {
				return nil, err
			}
			res, err := core.Cluster(cell, core.Options{
				K: w.K, Restarts: w.Restarts, Splits: splits,
				Accelerate: accel, Seed: w.Seed + uint64(v),
			})
			if err != nil {
				return nil, fmt.Errorf("bench: acceleration %s: %w", variant, err)
			}
			row.MergeMSE += res.MergeMSE
			row.PointMSE += res.PointMSE
			row.Elapsed += res.Elapsed
		}
		row.MergeMSE /= float64(w.Versions)
		row.PointMSE /= float64(w.Versions)
		row.Elapsed /= time.Duration(w.Versions)
		rows = append(rows, row)
	}
	return rows, nil
}

// RunECVQAblation compares fixed-k partial reduction against the ECVQ
// extension (§3.3 Remarks) at several rate penalties (A5). The variant
// label records the average surviving per-partition k.
func RunECVQAblation(w Workload, n, splits int, lambdas []float64) ([]AblationRow, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	cell, err := w.cell(n, 0)
	if err != nil {
		return nil, err
	}
	fixed, err := core.Cluster(cell, core.Options{
		K: w.K, Restarts: w.Restarts, Splits: splits, Seed: w.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: ecvq ablation fixed-k: %w", err)
	}
	rows := []AblationRow{{
		Variant:  fmt.Sprintf("fixed-k(%d)", w.K),
		MergeMSE: fixed.MergeMSE,
		PointMSE: fixed.PointMSE,
		Elapsed:  fixed.Elapsed,
	}}
	for _, lambda := range lambdas {
		res, err := core.Cluster(cell, core.Options{
			K: w.K, Restarts: w.Restarts, Splits: splits, Seed: w.Seed,
			Summarizer: core.SummarizerECVQ, ECVQMaxK: 2 * w.K, ECVQLambda: lambda,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: ecvq ablation lambda=%g: %w", lambda, err)
		}
		rows = append(rows, AblationRow{
			Variant:  fmt.Sprintf("ecvq(λ=%g)", lambda),
			MergeMSE: res.MergeMSE,
			PointMSE: res.PointMSE,
			Elapsed:  res.Elapsed,
		})
	}
	return rows, nil
}

// BaselineRow is one line of the A4 positioning table.
type BaselineRow struct {
	Algorithm string
	PointMSE  float64
	Elapsed   time.Duration
}

// RunBaselines compares partial/merge against serial, BIRCH, a
// STREAM/LOCALSEARCH-style one-pass clusterer, and distributed Lloyd on
// the same cell (A4). Quality is point MSE for every algorithm so the
// comparison is apples to apples.
func RunBaselines(ctx context.Context, w Workload, n, splits int) ([]BaselineRow, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	cell, err := w.cell(n, 0)
	if err != nil {
		return nil, err
	}
	chunk := (n + splits - 1) / splits
	var rows []BaselineRow

	pm, err := core.Cluster(cell, core.Options{
		K: w.K, Restarts: w.Restarts, Splits: splits, Seed: w.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: partial/merge: %w", err)
	}
	rows = append(rows, BaselineRow{
		Algorithm: fmt.Sprintf("partial/merge(%d)", splits),
		PointMSE:  pm.PointMSE,
		Elapsed:   pm.Elapsed,
	})

	serial, err := baseline.Serial(cell, baseline.SerialConfig{K: w.K, Restarts: w.Restarts, Seed: w.Seed})
	if err != nil {
		return nil, fmt.Errorf("bench: serial: %w", err)
	}
	rows = append(rows, BaselineRow{Algorithm: "serial", PointMSE: serial.MSE, Elapsed: serial.Elapsed})

	birch, err := baseline.BIRCH(cell, baseline.BIRCHConfig{
		K: w.K, MaxLeafEntries: 8 * w.K, Seed: w.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: birch: %w", err)
	}
	rows = append(rows, BaselineRow{Algorithm: "birch", PointMSE: birch.MSE, Elapsed: birch.Elapsed})

	sls, err := baseline.StreamLS(cell, baseline.StreamLSConfig{
		K: w.K, ChunkPoints: chunk, Seed: w.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: streamls: %w", err)
	}
	rows = append(rows, BaselineRow{Algorithm: "streamls", PointMSE: sls.MSE, Elapsed: sls.Elapsed})

	mc, err := baseline.MethodC(ctx, cell, baseline.SerialConfig{K: w.K, Seed: w.Seed}, splits)
	if err != nil {
		return nil, fmt.Errorf("bench: methodC: %w", err)
	}
	rows = append(rows, BaselineRow{Algorithm: "methodC", PointMSE: mc.MSE, Elapsed: mc.Elapsed})

	mb, err := baseline.MiniBatch(cell, baseline.MiniBatchConfig{
		K: w.K, Iterations: 300, Seed: w.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: minibatch: %w", err)
	}
	rows = append(rows, BaselineRow{Algorithm: "minibatch", PointMSE: mb.MSE, Elapsed: mb.Elapsed})

	return rows, nil
}

// FormatBaselines renders the A4 table.
func FormatBaselines(rows []BaselineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %14s %14s\n", "algorithm", "point MSE", "elapsed (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %14.2f %14d\n", r.Algorithm, r.PointMSE, r.Elapsed.Milliseconds())
	}
	return b.String()
}
