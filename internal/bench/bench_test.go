package bench

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"streamkm/internal/dataset"
)

// tinyWorkload is even smaller than QuickWorkload, for unit tests.
func tinyWorkload() Workload {
	spec := dataset.DefaultCellSpec()
	spec.Clusters = 6
	return Workload{
		Sizes:    []int{200, 600},
		Dim:      4,
		K:        6,
		Restarts: 2,
		Versions: 1,
		Seed:     7,
		Spec:     spec,
	}
}

func TestWorkloadValidate(t *testing.T) {
	good := tinyWorkload()
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Sizes = nil
	if bad.validate() == nil {
		t.Fatal("no sizes should error")
	}
	bad = good
	bad.Sizes = []int{0}
	if bad.validate() == nil {
		t.Fatal("zero size should error")
	}
	bad = good
	bad.K = 0
	if bad.validate() == nil {
		t.Fatal("K=0 should error")
	}
}

func TestPaperAndQuickWorkloads(t *testing.T) {
	p := PaperWorkload()
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	if p.K != 40 || p.Restarts != 10 || p.Versions != 5 || p.Dim != 6 {
		t.Fatalf("paper workload drifted: %+v", p)
	}
	if len(p.Sizes) != 6 || p.Sizes[0] != 250 || p.Sizes[5] != 75000 {
		t.Fatalf("paper sizes drifted: %v", p.Sizes)
	}
	q := QuickWorkload()
	if err := q.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadCellDeterministic(t *testing.T) {
	w := tinyWorkload()
	a, err := w.cell(200, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.cell(200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !a.At(0).Equal(b.At(0)) {
		t.Fatal("cells not deterministic")
	}
	c, err := w.cell(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0).Equal(c.At(0)) {
		t.Fatal("versions should differ")
	}
}

func TestRunTable2(t *testing.T) {
	w := tinyWorkload()
	cases := []Case{{Name: "serial", Splits: 0}, {Name: "2split", Splits: 2}}
	rows, err := RunTable2(w, cases)
	if err != nil {
		t.Fatal(err)
	}
	// 2 sizes x 2 cases, except 200/2=100 >= K=6 so all 4 rows present
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.MinMSE <= 0 || r.PointMSE <= 0 {
			t.Fatalf("row %+v has non-positive MSE", r)
		}
		if r.OverallTime <= 0 {
			t.Fatalf("row %+v has no time", r)
		}
		if r.Case == "serial" {
			if r.PartialTime != 0 || r.MergeTime != 0 {
				t.Fatalf("serial row has stage times: %+v", r)
			}
			if r.MinMSE != r.PointMSE {
				t.Fatalf("serial MinMSE should equal PointMSE: %+v", r)
			}
		} else if r.PartialTime <= 0 {
			t.Fatalf("split row missing partial time: %+v", r)
		}
	}
	out := FormatTable2(rows)
	for _, want := range []string{"data pts", "serial", "2split", "overall t"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatTable2 missing %q:\n%s", want, out)
		}
	}
	if _, err := RunTable2(w, nil); err == nil {
		t.Fatal("no cases should error")
	}
}

func TestRunTable2SkipsInfeasibleSplits(t *testing.T) {
	w := tinyWorkload()
	w.Sizes = []int{20} // 20/10 = 2 < K=6 → skipped
	rows, err := RunTable2(w, []Case{{Name: "10split", Splits: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("infeasible case not skipped: %+v", rows)
	}
}

func TestFigureProjections(t *testing.T) {
	rows := []Table2Row{
		{N: 100, Case: "serial", OverallTime: 5e6, MinMSE: 10, PointMSE: 10},
		{N: 100, Case: "5split", OverallTime: 3e6, MinMSE: 7, PointMSE: 9, PartialTime: 2e6},
		{N: 200, Case: "serial", OverallTime: 9e6, MinMSE: 20, PointMSE: 20},
		{N: 200, Case: "5split", OverallTime: 4e6, MinMSE: 8, PointMSE: 11, PartialTime: 3e6},
	}
	f6 := Figure6(rows)
	if len(f6) != 2 {
		t.Fatalf("Figure6 series = %d", len(f6))
	}
	if f6[0].Case != "serial" || len(f6[0].X) != 2 || f6[0].Y[1] != 9 {
		t.Fatalf("Figure6 wrong: %+v", f6[0])
	}
	f7 := Figure7(rows)
	if f7[1].Case != "5split" || f7[1].Y[0] != 7 {
		t.Fatalf("Figure7 wrong: %+v", f7[1])
	}
	f8 := Figure8(rows)
	if len(f8) != 1 || f8[0].Case != "5split" {
		t.Fatalf("Figure8 should only contain split cases: %+v", f8)
	}
	out := FormatFigure("fig", f8)
	if !strings.Contains(out, "# fig") || !strings.Contains(out, "5split") {
		t.Fatalf("FormatFigure wrong:\n%s", out)
	}
}

func TestRunSpeedup(t *testing.T) {
	w := tinyWorkload()
	rows, err := RunSpeedup(context.Background(), w, 600, 4, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Speedup != 1 {
		t.Fatalf("first speedup = %g", rows[0].Speedup)
	}
	// Clone count must not change the answer.
	for _, r := range rows[1:] {
		if r.MergeMSE != rows[0].MergeMSE {
			t.Fatalf("clone count changed MSE: %g vs %g", r.MergeMSE, rows[0].MergeMSE)
		}
	}
	if !strings.Contains(FormatSpeedup(rows), "speedup") {
		t.Fatal("FormatSpeedup missing header")
	}
	if _, err := RunSpeedup(context.Background(), w, 600, 4, nil); err == nil {
		t.Fatal("no clones should error")
	}
}

func TestRunMergeModeAblation(t *testing.T) {
	rows, err := RunMergeModeAblation(tinyWorkload(), 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Variant != "collective" || rows[1].Variant != "incremental" {
		t.Fatalf("rows: %+v", rows)
	}
	for _, r := range rows {
		if r.PointMSE <= 0 {
			t.Fatalf("row %+v", r)
		}
	}
	out := FormatAblation("merge-mode", rows)
	if !strings.Contains(out, "collective") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestRunMergeSeedingAblation(t *testing.T) {
	rows, err := RunMergeSeedingAblation(tinyWorkload(), 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Variant] = true
	}
	for _, want := range []string{"heaviest", "random", "kmeans++"} {
		if !names[want] {
			t.Fatalf("missing variant %q", want)
		}
	}
}

func TestRunPartialSeedingAblation(t *testing.T) {
	rows, err := RunPartialSeedingAblation(tinyWorkload(), 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Variant != "random" || rows[1].Variant != "kmeans++" {
		t.Fatalf("rows: %+v", rows)
	}
	for _, r := range rows {
		if r.PointMSE <= 0 {
			t.Fatalf("row %+v", r)
		}
	}
}

func TestRunSlicingAblation(t *testing.T) {
	rows, err := RunSlicingAblation(tinyWorkload(), 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.PointMSE <= 0 || r.Elapsed <= 0 {
			t.Fatalf("row %+v", r)
		}
	}
}

func TestRunRestartSweep(t *testing.T) {
	w := tinyWorkload()
	rows, err := RunRestartSweep(w, 600, 3, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Restarts != 1 || rows[1].Restarts != 3 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[1].Elapsed <= rows[0].Elapsed {
		t.Fatalf("more restarts should cost more time: %+v", rows)
	}
	for _, r := range rows {
		if r.PointMSE <= 0 {
			t.Fatalf("row %+v", r)
		}
	}
	if !strings.Contains(FormatRestarts(rows), "restarts") {
		t.Fatal("FormatRestarts missing header")
	}
	if _, err := RunRestartSweep(w, 600, 3, nil); err == nil {
		t.Fatal("no restart counts should error")
	}
	if _, err := RunRestartSweep(w, 600, 3, []int{0}); err == nil {
		t.Fatal("zero restarts should error")
	}
}

func TestRunAgreement(t *testing.T) {
	w := tinyWorkload()
	rows, err := RunAgreement(w, 600)
	if err != nil {
		t.Fatal(err)
	}
	// 600/5=120 and 600/10=60 both >= K=6 → three labelings, 3 pairs.
	if len(rows) != 3 {
		t.Fatalf("got %d rows: %+v", len(rows), rows)
	}
	for _, r := range rows {
		if r.ARI < -0.5 || r.ARI > 1 {
			t.Fatalf("ARI out of range: %+v", r)
		}
		// On strongly clustered synthetic data all algorithms should
		// agree far above chance.
		if r.ARI < 0.2 {
			t.Fatalf("suspiciously low agreement: %+v", r)
		}
	}
	if !strings.Contains(FormatAgreement(rows), "ARI") {
		t.Fatal("FormatAgreement missing header")
	}
}

func TestRunChunkSizeSweep(t *testing.T) {
	w := tinyWorkload()
	rows, err := RunChunkSizeSweep(w, 600, []int{3, 50, 150, 600})
	if err != nil {
		t.Fatal(err)
	}
	// size 3 < K=6 is skipped
	if len(rows) != 3 {
		t.Fatalf("got %d rows: %+v", len(rows), rows)
	}
	if rows[0].Partitions != 12 || rows[1].Partitions != 4 || rows[2].Partitions != 1 {
		t.Fatalf("partition counts wrong: %+v", rows)
	}
	for _, r := range rows {
		if r.PointMSE <= 0 {
			t.Fatalf("row %+v", r)
		}
	}
	if !strings.Contains(FormatChunkSizes(rows), "chunk (pts)") {
		t.Fatal("FormatChunkSizes missing header")
	}
	if _, err := RunChunkSizeSweep(w, 600, nil); err == nil {
		t.Fatal("no sizes should error")
	}
	if _, err := RunChunkSizeSweep(w, 600, []int{2}); err == nil {
		t.Fatal("all-below-k should error")
	}
}

func TestRunDistributedScaleup(t *testing.T) {
	// Needs a compute-dominated configuration: at a few hundred points
	// per chunk the serialized dispatch link rivals the compute time
	// and extra machines legitimately stop helping.
	rows, err := RunDistributedScaleup(tinyWorkload(), 6000, 8, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Each Run re-measures real compute, so cross-run makespans carry
	// timing noise; Speedup normalizes within a run and is the stable
	// quantity to assert on.
	if rows[0].Speedup > 1.1 {
		t.Fatalf("1-machine speedup %g", rows[0].Speedup)
	}
	if rows[len(rows)-1].Speedup <= rows[0].Speedup {
		t.Fatalf("speedup did not grow with machines: %+v", rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MergeMSE != rows[0].MergeMSE {
			t.Fatalf("machine count changed the result: %+v", rows)
		}
	}
	if !strings.Contains(FormatDistributed(rows), "makespan") {
		t.Fatal("FormatDistributed missing header")
	}
	if _, err := RunDistributedScaleup(tinyWorkload(), 600, 4, nil); err == nil {
		t.Fatal("no machine counts should error")
	}
}

func TestRunMemoryProfile(t *testing.T) {
	w := tinyWorkload()
	rows, err := RunMemoryProfile(w, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	byKey := map[string]MemoryRow{}
	for _, r := range rows {
		byKey[r.Case+"/"+itoa(r.N)] = r
		if r.PeakPoints <= 0 || r.PeakBytes != int64(r.PeakPoints)*int64(w.Dim)*8 {
			t.Fatalf("bad row %+v", r)
		}
	}
	// Serial holds N; splits hold strictly less for the larger cell.
	serial := byKey["serial/600"]
	if serial.PeakPoints != 600 || serial.Ratio != 1 {
		t.Fatalf("serial row %+v", serial)
	}
	quad := byKey["4split/600"]
	if quad.PeakPoints >= serial.PeakPoints {
		t.Fatalf("4-split peak %d not below serial %d", quad.PeakPoints, serial.PeakPoints)
	}
	if !strings.Contains(FormatMemory(rows), "peak/N") {
		t.Fatal("FormatMemory missing header")
	}
	if _, err := RunMemoryProfile(w, nil); err == nil {
		t.Fatal("no splits should error")
	}
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func TestRunAccelerationAblation(t *testing.T) {
	rows, err := RunAccelerationAblation(tinyWorkload(), 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Variant != "lloyd-naive" || rows[1].Variant != "lloyd-hamerly" {
		t.Fatalf("rows: %+v", rows)
	}
	// Hamerly runs to the fixpoint and naive to ΔMSE<=1e-9; on easy
	// data both land in the same quality regime.
	ratio := rows[1].PointMSE / rows[0].PointMSE
	if ratio > 2 || ratio < 0.5 {
		t.Fatalf("accelerated quality diverged: %+v", rows)
	}
}

func TestRunECVQAblation(t *testing.T) {
	rows, err := RunECVQAblation(tinyWorkload(), 600, 3, []float64{0.5, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if !strings.HasPrefix(rows[0].Variant, "fixed-k") {
		t.Fatalf("first row should be fixed-k: %+v", rows[0])
	}
	for _, r := range rows {
		if r.PointMSE <= 0 {
			t.Fatalf("row %+v", r)
		}
	}
}

func TestRunBaselines(t *testing.T) {
	rows, err := RunBaselines(context.Background(), tinyWorkload(), 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	algos := map[string]bool{}
	for _, r := range rows {
		algos[r.Algorithm] = true
		if r.PointMSE <= 0 {
			t.Fatalf("%s MSE = %g", r.Algorithm, r.PointMSE)
		}
	}
	for _, want := range []string{"partial/merge(3)", "serial", "birch", "streamls", "methodC", "minibatch"} {
		if !algos[want] {
			t.Fatalf("missing algorithm %q in %v", want, algos)
		}
	}
	if !strings.Contains(FormatBaselines(rows), "birch") {
		t.Fatal("FormatBaselines missing birch")
	}
}
