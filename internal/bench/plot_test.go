package bench

import (
	"strings"
	"testing"
)

func TestASCIIPlotBasic(t *testing.T) {
	series := []FigureSeries{
		{Case: "serial", X: []int{100, 200, 400}, Y: []float64{10, 40, 160}},
		{Case: "5split", X: []int{100, 200, 400}, Y: []float64{8, 20, 50}},
	}
	out := ASCIIPlot("test plot", series, 40, 10)
	for _, want := range []string{"test plot", "s = serial", "o = 5split", "N=100", "N=400", "160.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	// both markers appear in the body
	if !strings.Contains(out, "s") || !strings.Contains(out, "o") {
		t.Fatal("markers missing")
	}
	// every line of the grid fits the requested width (plus frame)
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 40+13 {
			t.Fatalf("line too wide: %q", line)
		}
	}
}

func TestASCIIPlotEdgeCases(t *testing.T) {
	if !strings.Contains(ASCIIPlot("t", nil, 40, 10), "no data") {
		t.Fatal("empty series should render placeholder")
	}
	// single point, zero y, tiny dimensions all must not panic
	out := ASCIIPlot("t", []FigureSeries{{Case: "a", X: []int{5}, Y: []float64{0}}}, 1, 1)
	if out == "" {
		t.Fatal("degenerate plot rendered nothing")
	}
}

func TestASCIIPlotMonotoneShapes(t *testing.T) {
	// A rising series must put its last point on a higher row (smaller
	// row index) than its first.
	series := []FigureSeries{{Case: "up", X: []int{0, 100}, Y: []float64{1, 100}}}
	out := ASCIIPlot("t", series, 30, 12)
	lines := strings.Split(out, "\n")
	var first, last int = -1, -1
	for i, line := range lines {
		if strings.Contains(line, "s") && strings.Contains(line, "|") {
			if first == -1 {
				first = i
			}
			last = i
		}
	}
	if first == -1 || first >= last {
		t.Fatalf("rising series not rendered as rising (first=%d last=%d):\n%s", first, last, out)
	}
}
