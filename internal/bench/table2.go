package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"streamkm/internal/baseline"
	"streamkm/internal/core"
)

// Case identifies one algorithm configuration in the Table 2 comparison.
type Case struct {
	// Name is the row label ("serial", "5split", "10split").
	Name string
	// Splits is 0 for the serial baseline, otherwise the partition
	// count p.
	Splits int
}

// PaperCases returns the paper's three comparison cases.
func PaperCases() []Case {
	return []Case{
		{Name: "serial", Splits: 0},
		{Name: "5split", Splits: 5},
		{Name: "10split", Splits: 10},
	}
}

// Table2Row is one line of the paper's Table 2: per (N, case), the
// partial-stage time ("t C0-Ci"), the merge time ("t merge"), the
// minimum MSE, and the overall time. Values are averaged over the
// workload's dataset versions, as the paper's fractional entries imply.
type Table2Row struct {
	N           int
	Case        string
	PartialTime time.Duration
	MergeTime   time.Duration
	OverallTime time.Duration
	// MinMSE is the paper's reported quality metric: serial rows use
	// the point MSE, split rows use the merge (E_pm-based) MSE, exactly
	// as §5.2 describes.
	MinMSE float64
	// PointMSE is the apples-to-apples quality against raw points that
	// we report additionally for every case.
	PointMSE float64
	// MinMSEStd and PointMSEStd are the sample standard deviations over
	// the workload's dataset versions — the run-to-run spread the
	// paper's single numbers hide.
	MinMSEStd   float64
	PointMSEStd float64
}

// RunTable2 executes the Table 2 / Figures 6-8 sweep: every size in the
// workload crossed with every case, averaged over versions.
func RunTable2(w Workload, cases []Case) ([]Table2Row, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("bench: no cases")
	}
	var rows []Table2Row
	for _, n := range w.Sizes {
		for _, c := range cases {
			if c.Splits > 0 && n/c.Splits < w.K {
				// The chunk cannot seed k centroids (paper's N=250
				// cells are only run at small split counts for the
				// same reason).
				continue
			}
			row := Table2Row{N: n, Case: c.Name}
			minMSEs := make([]float64, 0, w.Versions)
			pointMSEs := make([]float64, 0, w.Versions)
			for v := 0; v < w.Versions; v++ {
				cell, err := w.cell(n, v)
				if err != nil {
					return nil, err
				}
				seed := w.Seed + uint64(v)*101 + uint64(n)
				if c.Splits == 0 {
					rep, err := baseline.Serial(cell, baseline.SerialConfig{
						K: w.K, Restarts: w.Restarts, Seed: seed,
					})
					if err != nil {
						return nil, fmt.Errorf("bench: serial N=%d v=%d: %w", n, v, err)
					}
					row.OverallTime += rep.Elapsed
					minMSEs = append(minMSEs, rep.MSE)
					pointMSEs = append(pointMSEs, rep.MSE)
					continue
				}
				res, err := core.Cluster(cell, core.Options{
					K: w.K, Restarts: w.Restarts, Splits: c.Splits, Seed: seed,
				})
				if err != nil {
					return nil, fmt.Errorf("bench: %s N=%d v=%d: %w", c.Name, n, v, err)
				}
				row.PartialTime += res.PartialTime
				row.MergeTime += res.MergeTime
				row.OverallTime += res.Elapsed
				minMSEs = append(minMSEs, res.MergeMSE)
				pointMSEs = append(pointMSEs, res.PointMSE)
			}
			vs := time.Duration(w.Versions)
			row.PartialTime /= vs
			row.MergeTime /= vs
			row.OverallTime /= vs
			row.MinMSE, row.MinMSEStd = meanStd(minMSEs)
			row.PointMSE, row.PointMSEStd = meanStd(pointMSEs)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// meanStd returns the mean and sample standard deviation (0 for fewer
// than two samples).
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// FormatTable2 renders rows in the paper's Table 2 layout (largest N
// first, as printed there).
func FormatTable2(rows []Table2Row) string {
	sorted := append([]Table2Row(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].N != sorted[j].N {
			return sorted[i].N > sorted[j].N
		}
		return sorted[i].Case > sorted[j].Case // 10split, 5split, serial
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %14s %12s %20s %20s %14s\n",
		"data pts", "case", "t C0-Ci (ms)", "t merge (ms)", "Min MSE (±sd)", "point MSE (±sd)", "overall t (ms)")
	for _, r := range sorted {
		partial, merge := "-", "-"
		if r.Case != "serial" {
			partial = fmt.Sprintf("%d", r.PartialTime.Milliseconds())
			merge = fmt.Sprintf("%d", r.MergeTime.Milliseconds())
		}
		fmt.Fprintf(&b, "%-8d %-8s %14s %12s %12.1f ±%6.1f %12.1f ±%6.1f %14d\n",
			r.N, r.Case, partial, merge, r.MinMSE, r.MinMSEStd,
			r.PointMSE, r.PointMSEStd, r.OverallTime.Milliseconds())
	}
	return b.String()
}

// FigureSeries projects Table 2 rows into one (x, y) series per case —
// the data behind Figures 6 (overall time), 7 (min MSE) and 8 (partial
// time).
type FigureSeries struct {
	Case   string
	X      []int
	Y      []float64
	YLabel string
}

// Figure6 extracts overall execution time (msec) vs N per case.
func Figure6(rows []Table2Row) []FigureSeries {
	return project(rows, "overall time (ms)", func(r Table2Row) (float64, bool) {
		return float64(r.OverallTime.Milliseconds()), true
	})
}

// Figure7 extracts minimum MSE vs N per case.
func Figure7(rows []Table2Row) []FigureSeries {
	return project(rows, "min MSE", func(r Table2Row) (float64, bool) {
		return r.MinMSE, true
	})
}

// Figure8 extracts partial k-means time vs N for the split cases only.
func Figure8(rows []Table2Row) []FigureSeries {
	return project(rows, "partial time (ms)", func(r Table2Row) (float64, bool) {
		if r.Case == "serial" {
			return 0, false
		}
		return float64(r.PartialTime.Milliseconds()), true
	})
}

func project(rows []Table2Row, label string, f func(Table2Row) (float64, bool)) []FigureSeries {
	byCase := map[string]*FigureSeries{}
	var order []string
	for _, r := range rows {
		y, ok := f(r)
		if !ok {
			continue
		}
		s := byCase[r.Case]
		if s == nil {
			s = &FigureSeries{Case: r.Case, YLabel: label}
			byCase[r.Case] = s
			order = append(order, r.Case)
		}
		s.X = append(s.X, r.N)
		s.Y = append(s.Y, y)
	}
	out := make([]FigureSeries, 0, len(order))
	for _, name := range order {
		out = append(out, *byCase[name])
	}
	return out
}

// FormatFigure renders series as aligned columns, one block per case —
// directly plottable and diffable.
func FormatFigure(title string, series []FigureSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	for _, s := range series {
		fmt.Fprintf(&b, "## case %s (%s)\n", s.Case, s.YLabel)
		for i := range s.X {
			fmt.Fprintf(&b, "%8d %14.2f\n", s.X[i], s.Y[i])
		}
	}
	return b.String()
}
