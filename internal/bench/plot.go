package bench

import (
	"fmt"
	"math"
	"strings"
)

// ASCIIPlot renders figure series as a terminal scatter/line chart, so
// the paper's figures have visual shape without external tooling. One
// marker per series; x is the cell size axis, y the series value.
func ASCIIPlot(title string, series []FigureSeries, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	markers := []byte{'s', 'o', 'x', '+', '*', '#'}
	var xMin, xMax, yMax float64
	xMin = math.Inf(1)
	any := false
	for _, s := range series {
		for i := range s.X {
			any = true
			x := float64(s.X[i])
			if x < xMin {
				xMin = x
			}
			if x > xMax {
				xMax = x
			}
			if s.Y[i] > yMax {
				yMax = s.Y[i]
			}
		}
	}
	if !any {
		return "(no data)\n"
	}
	if yMax == 0 {
		yMax = 1
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = bytes(width, ' ')
	}
	col := func(x float64) int {
		c := int((x - xMin) / (xMax - xMin) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	rowOf := func(y float64) int {
		r := height - 1 - int(y/yMax*float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		// connect consecutive points with interpolated marks
		for i := 0; i+1 < len(s.X); i++ {
			c0, r0 := col(float64(s.X[i])), rowOf(s.Y[i])
			c1, r1 := col(float64(s.X[i+1])), rowOf(s.Y[i+1])
			steps := c1 - c0
			if steps < 1 {
				steps = 1
			}
			for t := 0; t <= steps; t++ {
				c := c0 + t
				r := r0 + (r1-r0)*t/steps
				if grid[r][c] == ' ' || t == 0 || t == steps {
					grid[r][c] = m
				}
			}
		}
		if len(s.X) == 1 {
			grid[rowOf(s.Y[0])][col(float64(s.X[0]))] = m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%10.1f +%s\n", yMax, string(bytes(width, '-')))
	for r := 0; r < height; r++ {
		fmt.Fprintf(&b, "%10s |%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.1f +%s\n", 0.0, string(bytes(width, '-')))
	fmt.Fprintf(&b, "%10s  N=%d%sN=%d\n", "", int(xMin),
		strings.Repeat(" ", max(1, width-len(fmt.Sprintf("N=%dN=%d", int(xMin), int(xMax))))), int(xMax))
	for si, s := range series {
		fmt.Fprintf(&b, "  %c = %s\n", markers[si%len(markers)], s.Case)
	}
	return b.String()
}

func bytes(n int, fill byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = fill
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
