package govern

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestHeartbeatCounters(t *testing.T) {
	var h Heartbeat
	if h.Beats() != 0 || h.InFlight() != 0 {
		t.Fatalf("zero heartbeat reports beats=%d inflight=%d", h.Beats(), h.InFlight())
	}
	h.Begin()
	if h.Beats() != 1 || h.InFlight() != 1 {
		t.Fatalf("after Begin: beats=%d inflight=%d", h.Beats(), h.InFlight())
	}
	h.Beat()
	h.End()
	if h.Beats() != 3 || h.InFlight() != 0 {
		t.Fatalf("after Beat+End: beats=%d inflight=%d", h.Beats(), h.InFlight())
	}
}

func TestWatchdogTripsOnStalledProbe(t *testing.T) {
	var h Heartbeat
	h.Begin() // one item picked up, never finished
	wd := NewWatchdog(20*time.Millisecond, Probe{
		Name:     "wedged",
		Progress: h.Beats,
		Pending:  h.InFlight,
	})
	stop := make(chan struct{})
	defer close(stop)
	tripped := make(chan error, 1)
	start := time.Now()
	go wd.Watch(stop, func(err error) { tripped <- err })
	select {
	case err := <-tripped:
		if !errors.Is(err, ErrStalled) {
			t.Fatalf("trip error %v does not wrap ErrStalled", err)
		}
		var se *StallError
		if !errors.As(err, &se) || se.Stage != "wedged" {
			t.Fatalf("trip error %v does not name the stalled stage", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never tripped on a wedged probe")
	}
	// Detection should land near the progress timeout, not multiples of it.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("stall detected only after %v", elapsed)
	}
}

func TestWatchdogIgnoresIdleAndProgressingProbes(t *testing.T) {
	var idle Heartbeat // pending 0 forever: quiescent, not stalled
	var busy Heartbeat
	busy.Begin()
	var mu sync.Mutex
	beating := true
	go func() {
		for {
			mu.Lock()
			ok := beating
			mu.Unlock()
			if !ok {
				return
			}
			busy.Beat()
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer func() { mu.Lock(); beating = false; mu.Unlock() }()

	wd := NewWatchdog(25*time.Millisecond,
		Probe{Name: "idle", Progress: idle.Beats, Pending: idle.InFlight},
		Probe{Name: "busy", Progress: busy.Beats, Pending: busy.InFlight},
	)
	stop := make(chan struct{})
	tripped := make(chan error, 1)
	go wd.Watch(stop, func(err error) { tripped <- err })
	select {
	case err := <-tripped:
		t.Fatalf("watchdog tripped on healthy probes: %v", err)
	case <-time.After(150 * time.Millisecond):
	}
	close(stop)
}

func TestBudgetEnforced(t *testing.T) {
	if (Budget{}).Enforced() {
		t.Fatal("zero budget reports enforced")
	}
	for _, b := range []Budget{
		{Deadline: time.Second},
		{ProgressTimeout: time.Second},
		{MemoryBytes: 1},
	} {
		if !b.Enforced() {
			t.Fatalf("budget %+v not enforced", b)
		}
	}
}

func TestAdmitFitsBudget(t *testing.T) {
	const bpp = 80 // bytes per point
	t.Run("generous budget changes nothing", func(t *testing.T) {
		a := Admit(1<<20, bpp, 10, 500, 4, 8)
		if a.Constrained() {
			t.Fatalf("generous budget constrained the plan: %+v", a)
		}
		if a.ChunkPoints != 500 || a.Clones != 4 || a.Workers != 8 {
			t.Fatalf("generous budget altered the plan: %+v", a)
		}
	})
	t.Run("halved budget shrinks chunk and fan-out", func(t *testing.T) {
		full := Admit(80*1000, bpp, 10, 1000, 4, 4)
		half := Admit(80*500, bpp, 10, 1000, 4, 4)
		if !half.Constrained() {
			t.Fatalf("halved budget not constrained: %+v", half)
		}
		if half.ChunkPoints >= full.ChunkPoints {
			t.Fatalf("halved budget did not shrink chunk: full=%d half=%d", full.ChunkPoints, half.ChunkPoints)
		}
		if half.Clones > full.Clones || half.Workers > full.Workers {
			t.Fatalf("halved budget grew fan-out: full=%+v half=%+v", full, half)
		}
	})
	t.Run("budget below one viable chunk floors at minChunk", func(t *testing.T) {
		a := Admit(bpp, bpp, 20, 1000, 4, 4)
		if a.ChunkPoints != 20 {
			t.Fatalf("chunk fell below the viability floor: %+v", a)
		}
		if a.Clones != 1 || a.Workers != 1 {
			t.Fatalf("tiny budget should serialize: %+v", a)
		}
	})
	t.Run("zero budget is a no-op", func(t *testing.T) {
		a := Admit(0, bpp, 10, 300, 2, 2)
		if a.Constrained() || a.ChunkPoints != 300 || a.Clones != 2 || a.Workers != 2 {
			t.Fatalf("unenforced budget altered the plan: %+v", a)
		}
	})
	t.Run("deterministic", func(t *testing.T) {
		if Admit(12345, bpp, 10, 777, 3, 5) != Admit(12345, bpp, 10, 777, 3, 5) {
			t.Fatal("Admit is not a pure function of its inputs")
		}
	})
}
