// Package govern is the engine's resource governor: the runtime
// counterpart of the query optimizer's admission decision. The paper's
// optimizer picks the number of partial-k-means clones "depending on
// the available resources (memory, CPU)" once, before execution; a
// long-running stream query also needs that decision *enforced* while
// it runs. This package supplies the three enforcement primitives:
//
//   - Budget, the per-query resource envelope (wall-clock deadline,
//     per-stage progress timeout, byte budget);
//   - Heartbeat + Watchdog, per-stage liveness: stages beat as they
//     make progress, and the watchdog cancels an attempt whose stages
//     hold work without beating for the progress timeout;
//   - Admit, the memory governor: it re-fits chunk size and fan-out to
//     a byte budget at execution time, the optimizer's decision made
//     again under the resources actually available.
//
// The governor never decides *what* a degraded answer contains — that
// is the engine's job (it merges whatever partitions survived); govern
// only decides *when* to stop waiting.
package govern

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Budget is a query's resource envelope. Zero fields are unenforced, so
// the zero Budget governs nothing.
type Budget struct {
	// Deadline bounds the query's end-to-end wall-clock time. When it
	// expires the engine either fails or, with degraded results enabled,
	// answers from the partitions completed so far.
	Deadline time.Duration
	// ProgressTimeout arms the stall watchdog: a stage holding work
	// without making progress for this long is cancelled.
	ProgressTimeout time.Duration
	// MemoryBytes caps the execution's working set; the governor shrinks
	// chunk size and fan-out until the plan fits (see Admit).
	MemoryBytes int64
}

// Enforced reports whether any component of the envelope is set.
func (b Budget) Enforced() bool {
	return b.Deadline > 0 || b.ProgressTimeout > 0 || b.MemoryBytes > 0
}

// ErrStalled is the base error of every watchdog cancellation, so
// callers can recognize stall-induced failures with errors.Is.
var ErrStalled = errors.New("govern: stage stalled")

// StallError reports which stage the watchdog gave up on and how long
// it had been silent. It wraps ErrStalled.
type StallError struct {
	// Stage is the probe name that stopped progressing.
	Stage string
	// Quiet is how long the stage held pending work without a beat.
	Quiet time.Duration
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("govern: stage %q made no progress for %v: stalled", e.Stage, e.Quiet.Round(time.Millisecond))
}

// Unwrap lets errors.Is(err, ErrStalled) recognize watchdog kills.
func (e *StallError) Unwrap() error { return ErrStalled }

// Heartbeat is an atomic per-stage liveness counter. A stage brackets
// every item with Begin/End (both count as beats) and may Beat from
// inside a long computation; the watchdog reads Beats and InFlight. The
// zero value is ready to use, and all methods are safe for concurrent
// use by cloned operators.
type Heartbeat struct {
	beats    atomic.Int64
	inflight atomic.Int64
}

// Begin records that one item was picked up.
func (h *Heartbeat) Begin() {
	h.inflight.Add(1)
	h.beats.Add(1)
}

// End records that the picked-up item fully completed (including its
// downstream emissions).
func (h *Heartbeat) End() {
	h.beats.Add(1)
	h.inflight.Add(-1)
}

// Beat records intermediate progress inside one item.
func (h *Heartbeat) Beat() { h.beats.Add(1) }

// Beats returns the total progress count.
func (h *Heartbeat) Beats() int64 { return h.beats.Load() }

// InFlight returns the number of items begun but not ended.
func (h *Heartbeat) InFlight() int64 { return h.inflight.Load() }

// Probe adapts the heartbeat into a watchdog probe named name: progress
// is the beat counter, pending the in-flight count. This is the common
// wiring for any component — a pipeline stage or a remote worker link —
// whose liveness is exactly "its heartbeat still advances while work is
// outstanding".
func (h *Heartbeat) Probe(name string) Probe {
	return Probe{Name: name, Progress: h.Beats, Pending: h.InFlight}
}
