package govern

import "fmt"

// Admission is the memory governor's plan-fitting decision: the chunk
// size and fan-out actually admitted under the byte budget, plus which
// of them had to shrink. It is the optimizer's resource decision (§3.2,
// §3.4) re-made at execution time against the budget the query was
// actually granted.
type Admission struct {
	// Budget is the byte budget the decision was made against.
	Budget int64
	// ChunkPoints is the admitted partition size.
	ChunkPoints int
	// Clones is the admitted partial-operator replica count.
	Clones int
	// Workers is the admitted per-chunk restart fan-out.
	Workers int
	// ChunkShrunk, ClonesShrunk, WorkersShrunk record which knobs the
	// governor had to reduce from the optimizer's plan.
	ChunkShrunk   bool
	ClonesShrunk  bool
	WorkersShrunk bool
}

// Constrained reports whether the budget forced any reduction.
func (a Admission) Constrained() bool {
	return a.ChunkShrunk || a.ClonesShrunk || a.WorkersShrunk
}

// String formats the decision for logs and EXPLAIN output.
func (a Admission) String() string {
	return fmt.Sprintf("govern: budget %dB admits chunk=%d clones=%d workers=%d (shrunk: chunk=%t clones=%t workers=%t)",
		a.Budget, a.ChunkPoints, a.Clones, a.Workers, a.ChunkShrunk, a.ClonesShrunk, a.WorkersShrunk)
}

// Admit fits a plan's chunk size and fan-out under budget bytes, given
// the per-point footprint. minChunk floors the shrink (below it the
// partial step cannot seed k centroids), so a budget smaller than one
// viable chunk still admits a minimum-size serial plan rather than
// nothing. The decision is a pure function of its inputs, keeping
// governed runs deterministic for a fixed seed.
func Admit(budget, bytesPerPoint int64, minChunk, chunkPoints, clones, workers int) Admission {
	if minChunk < 1 {
		minChunk = 1
	}
	if clones < 1 {
		clones = 1
	}
	if workers < 1 {
		workers = 1
	}
	a := Admission{Budget: budget, ChunkPoints: chunkPoints, Clones: clones, Workers: workers}
	if budget <= 0 || bytesPerPoint <= 0 {
		return a
	}
	capPoints := int(budget / bytesPerPoint)
	if capPoints < minChunk {
		capPoints = minChunk
	}
	if a.ChunkPoints > capPoints {
		a.ChunkPoints = capPoints
		a.ChunkShrunk = true
	}
	// Each concurrent chunk-holder (partial clone) and each restart
	// worker's scratch costs about one chunk; bound both so the working
	// set stays within budget.
	perChunk := int64(a.ChunkPoints) * bytesPerPoint
	maxConcurrent := 1
	if perChunk > 0 && budget/perChunk > 1 {
		maxConcurrent = int(budget / perChunk)
	}
	if a.Clones > maxConcurrent {
		a.Clones = maxConcurrent
		a.ClonesShrunk = true
	}
	if a.Workers > maxConcurrent {
		a.Workers = maxConcurrent
		a.WorkersShrunk = true
	}
	return a
}
