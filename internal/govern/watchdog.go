package govern

import (
	"time"
)

// Probe is one progress signal the watchdog samples: a monotonically
// increasing counter plus a gauge of outstanding work. A stage is
// stalled exactly when Pending reports outstanding work while Progress
// stays flat for the whole timeout — an idle stage (Pending 0) is
// quiescent, not stalled, no matter how long it sits.
type Probe struct {
	// Name identifies the stage in the StallError.
	Name string
	// Progress returns a counter that advances whenever the stage does
	// anything (heartbeats plus, typically, queue dequeue counts).
	Progress func() int64
	// Pending returns how much work is outstanding: items in flight
	// plus items buffered in the stage's input queue.
	Pending func() int64
}

// Watchdog samples a set of probes and trips when any of them holds
// pending work without progress for the timeout. One watchdog covers
// one execution attempt; make a fresh one per attempt.
type Watchdog struct {
	timeout  time.Duration
	interval time.Duration
	probes   []Probe
}

// NewWatchdog returns a watchdog with the given progress timeout. The
// sampling interval is derived from the timeout (an eighth, at least
// one millisecond) so detection lands within roughly one timeout of
// the stall beginning.
func NewWatchdog(timeout time.Duration, probes ...Probe) *Watchdog {
	interval := timeout / 8
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	return &Watchdog{timeout: timeout, interval: interval, probes: probes}
}

// Watch samples until stop is closed or a stall is detected; a stall
// invokes trip with a *StallError and ends the watch. Run it on its own
// goroutine and close stop (then join) once the attempt finishes, so
// the watchdog never outlives the pipeline it observes.
func (w *Watchdog) Watch(stop <-chan struct{}, trip func(error)) {
	type probeState struct {
		progress int64
		since    time.Time
	}
	states := make([]probeState, len(w.probes))
	now := time.Now()
	for i, p := range w.probes {
		states[i] = probeState{progress: p.Progress(), since: now}
	}
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		now = time.Now()
		for i, p := range w.probes {
			cur := p.Progress()
			if cur != states[i].progress || p.Pending() == 0 {
				states[i] = probeState{progress: cur, since: now}
				continue
			}
			if quiet := now.Sub(states[i].since); quiet >= w.timeout {
				trip(&StallError{Stage: p.Name, Quiet: quiet})
				return
			}
		}
	}
}
