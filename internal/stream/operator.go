package stream

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Emit delivers one output item downstream, blocking under backpressure.
type Emit[T any] func(T) error

// SourceFunc produces a stream of items by calling emit repeatedly; it
// returns when the source is exhausted (the scan operators of §3.1).
type SourceFunc[T any] func(ctx context.Context, emit Emit[T]) error

// TransformFunc consumes one input item and emits zero or more output
// items (the partial k-means operator consumes a chunk, emits a weighted
// centroid set).
type TransformFunc[I, O any] func(ctx context.Context, in I, emit Emit[O]) error

// SinkFunc consumes one input item and produces no stream output (the
// merge operator at the plan root feeds a result collector).
type SinkFunc[I any] func(ctx context.Context, in I) error

// OpStats reports one operator's lifetime counters. Clones of an operator
// aggregate into a single OpStats, and so do restart attempts of the
// same plan: re-registering an operator name in a registry returns the
// existing entry, so counters accumulate across every attempt instead
// of reporting only the last one.
type OpStats struct {
	name      string
	clones    atomic.Int32
	processed atomic.Int64
	emitted   atomic.Int64
	busyNanos atomic.Int64
	// Fault-tolerance counters, maintained by the supervised runners.
	retries     atomic.Int64
	quarantined atomic.Int64
	dropped     atomic.Int64
	panics      atomic.Int64
}

// Name returns the operator name.
func (s *OpStats) Name() string { return s.name }

// Clones returns the high-water replica count the operator ran with.
func (s *OpStats) Clones() int { return int(s.clones.Load()) }

// growClones raises the recorded replica count to n (never lowers it),
// so a stage scaled up by the re-optimizer reports its peak.
func (s *OpStats) growClones(n int32) {
	for {
		cur := s.clones.Load()
		if n <= cur || s.clones.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Processed returns the number of input items consumed.
func (s *OpStats) Processed() int64 { return s.processed.Load() }

// Emitted returns the number of output items produced.
func (s *OpStats) Emitted() int64 { return s.emitted.Load() }

// Busy returns the cumulative time spent inside the operator function,
// summed across clones (so with c clones Busy can exceed wall-clock).
func (s *OpStats) Busy() time.Duration { return time.Duration(s.busyNanos.Load()) }

// Retries returns the number of item-level retry attempts performed by a
// supervised runner (0 for unsupervised operators).
func (s *OpStats) Retries() int64 { return s.retries.Load() }

// Quarantined returns the number of poison items diverted to the
// dead-letter queue after exhausting their retry budget.
func (s *OpStats) Quarantined() int64 { return s.quarantined.Load() }

// Dropped returns the number of poison items lost because the dead-letter
// queue was full.
func (s *OpStats) Dropped() int64 { return s.dropped.Load() }

// Panics returns the number of operator panics recovered by supervision
// (0 for unsupervised operators, whose panics kill the plan instead).
func (s *OpStats) Panics() int64 { return s.panics.Load() }

// String formats the stats for logs and tables.
func (s *OpStats) String() string {
	base := fmt.Sprintf("%s[x%d]: in=%d out=%d busy=%v",
		s.name, s.Clones(), s.Processed(), s.Emitted(), s.Busy())
	if r, q, d, p := s.Retries(), s.Quarantined(), s.Dropped(), s.Panics(); r > 0 || q > 0 || d > 0 || p > 0 {
		base += fmt.Sprintf(" retries=%d quarantined=%d dropped=%d panics=%d", r, q, d, p)
	}
	return base
}

// StatsRegistry collects OpStats for every operator in a running plan.
type StatsRegistry struct {
	mu    sync.Mutex
	stats []*OpStats
}

// NewStatsRegistry returns an empty registry.
func NewStatsRegistry() *StatsRegistry { return &StatsRegistry{} }

// register returns the stats slot for name, creating it on first use.
// Re-registering an existing name (a restarted plan rebuilding its
// pipeline) returns the same slot so counters aggregate across
// attempts rather than resetting.
func (r *StatsRegistry) register(name string, clones int) *OpStats {
	if r == nil {
		s := &OpStats{name: name}
		s.growClones(int32(clones))
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.stats {
		if s.name == name {
			s.growClones(int32(clones))
			return s
		}
	}
	s := &OpStats{name: name}
	s.growClones(int32(clones))
	r.stats = append(r.stats, s)
	return s
}

// All returns the registered operator stats in registration order.
func (r *StatsRegistry) All() []*OpStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*OpStats, len(r.stats))
	copy(out, r.stats)
	return out
}

// Lookup returns the stats for the named operator, or nil.
func (r *StatsRegistry) Lookup(name string) *OpStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.stats {
		if s.name == name {
			return s
		}
	}
	return nil
}

// RunSource starts fn on the group, emitting into out. The output queue
// is closed when the source returns, propagating end-of-stream
// downstream. reg may be nil.
func RunSource[T any](g *Group, ctx context.Context, reg *StatsRegistry, name string, fn SourceFunc[T], out *Queue[T]) *OpStats {
	stats := reg.register(name, 1)
	g.Go(name, func() error {
		defer out.Close()
		start := time.Now()
		defer func() { stats.busyNanos.Add(int64(time.Since(start))) }()
		emit := func(v T) error {
			if err := out.Put(ctx, v); err != nil {
				return err
			}
			stats.emitted.Add(1)
			return nil
		}
		return fn(ctx, emit)
	})
	return stats
}

// RunTransform starts clones replicas of fn on the group, all consuming
// from in and emitting to out. The output queue closes only after every
// clone finishes, which is the fan-in barrier that lets a downstream
// consumer treat cloned operators as one logical operator (Fig. 3).
// clones < 1 is treated as 1. reg may be nil.
func RunTransform[I, O any](g *Group, ctx context.Context, reg *StatsRegistry, name string, clones int, fn TransformFunc[I, O], in *Queue[I], out *Queue[O]) *OpStats {
	return RunStage(g, ctx, reg, StageConfig[I]{Name: name, Clones: clones}, fn, in, out).Stats()
}

// RunSink starts clones replicas of fn on the group, consuming from in.
// clones < 1 is treated as 1. reg may be nil.
func RunSink[I any](g *Group, ctx context.Context, reg *StatsRegistry, name string, clones int, fn SinkFunc[I], in *Queue[I]) *OpStats {
	return sinkStage(g, ctx, reg, StageConfig[I]{Name: name, Clones: clones}, fn, in).Stats()
}

// Collect is a convenience sink that appends every item into a slice
// guarded by a mutex and returns an accessor. It is the result collector
// at the root of test and example plans.
func Collect[T any]() (SinkFunc[T], func() []T) {
	var mu sync.Mutex
	var items []T
	sink := func(_ context.Context, v T) error {
		mu.Lock()
		items = append(items, v)
		mu.Unlock()
		return nil
	}
	snapshot := func() []T {
		mu.Lock()
		defer mu.Unlock()
		out := make([]T, len(items))
		copy(out, items)
		return out
	}
	return sink, snapshot
}
