package stream

import (
	"context"
	"errors"
	"testing"
	"time"
)

// endlessSource emits increasing integers until cancelled.
func endlessSource() SourceFunc[int] {
	return func(ctx context.Context, emit Emit[int]) error {
		for i := 0; ; i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
	}
}

// blockedSinkPlan builds a plan whose sink never consumes, so everything
// upstream eventually blocks on a full queue; cancelling the context
// must unwind it all.
func TestCancellationUnwindsBlockedPlan(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g, gctx := NewGroup(ctx)
	q1 := NewQueue[int]("q1", 2)
	q2 := NewQueue[int]("q2", 2)
	RunSource(g, gctx, nil, "src", endlessSource(), q1)
	Map(g, gctx, nil, "id", 2, func(x int) (int, error) { return x, nil }, q1, q2)
	stuck := make(chan struct{})
	RunSink(g, gctx, nil, "stuck-sink", 1, func(ctx context.Context, _ int) error {
		select {
		case <-stuck: // never closed
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}, q2)

	time.Sleep(30 * time.Millisecond) // let everything back up
	cancel()
	done := make(chan error, 1)
	go func() { done <- g.Wait() }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unwind the blocked plan")
	}
}

func TestCancellationUnwindsCombinators(t *testing.T) {
	builders := map[string]func(g *Group, ctx context.Context, in *Queue[int]){
		"batch": func(g *Group, ctx context.Context, in *Queue[int]) {
			out := NewQueue[[]int]("out", 1)
			if _, err := Batch(g, ctx, nil, "batch", 3, in, out); err != nil {
				t.Fatal(err)
			}
			// no consumer: out fills and Batch blocks
		},
		"partition": func(g *Group, ctx context.Context, in *Queue[int]) {
			outs := []*Queue[int]{NewQueue[int]("o0", 1), NewQueue[int]("o1", 1)}
			if _, err := Partition(g, ctx, nil, "part", nil, in, outs); err != nil {
				t.Fatal(err)
			}
		},
		"multicast": func(g *Group, ctx context.Context, in *Queue[int]) {
			outs := []*Queue[int]{NewQueue[int]("o0", 1), NewQueue[int]("o1", 1)}
			if _, err := Multicast(g, ctx, nil, "mc", in, outs); err != nil {
				t.Fatal(err)
			}
		},
		"union": func(g *Group, ctx context.Context, in *Queue[int]) {
			out := NewQueue[int]("out", 1)
			if _, err := Union(g, ctx, nil, "union", []*Queue[int]{in}, out); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			g, gctx := NewGroup(ctx)
			in := NewQueue[int]("in", 2)
			RunSource(g, gctx, nil, "src", endlessSource(), in)
			build(g, gctx, in)
			time.Sleep(20 * time.Millisecond)
			cancel()
			done := make(chan error, 1)
			go func() { done <- g.Wait() }()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("Wait = %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("%s did not unwind on cancellation", name)
			}
		})
	}
}

func TestDynamicTransformCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g, gctx := NewGroup(ctx)
	in := NewQueue[int]("in", 2)
	out := NewQueue[int]("out", 1)
	RunSource(g, gctx, nil, "src", endlessSource(), in)
	RunDynamicTransform(g, gctx, nil, "dyn", 2,
		func(_ context.Context, x int, emit Emit[int]) error { return emit(x) }, in, out)
	// no consumer of out
	time.Sleep(20 * time.Millisecond)
	cancel()
	done := make(chan error, 1)
	go func() { done <- g.Wait() }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dynamic transform did not unwind on cancellation")
	}
}
