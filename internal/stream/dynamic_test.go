package stream

import (
	"context"
	"errors"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

func TestDynamicTransformBasic(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	reg := NewStatsRegistry()
	in := NewQueue[int]("in", 8)
	out := NewQueue[int]("out", 8)
	RunSource(g, ctx, reg, "src", rangeSource(100), in)
	dt := RunDynamicTransform(g, ctx, reg, "dyn", 2,
		func(_ context.Context, x int, emit Emit[int]) error { return emit(x * 2) }, in, out)
	sink, snap := Collect[int]()
	RunSink(g, ctx, reg, "sink", 1, sink, out)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	got := snap()
	if len(got) != 100 {
		t.Fatalf("delivered %d items", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("item %d = %d", i, v)
		}
	}
	if dt.Stats().Processed() != 100 {
		t.Fatalf("processed = %d", dt.Stats().Processed())
	}
	if dt.Clones() != 2 {
		t.Fatalf("clones = %d", dt.Clones())
	}
}

func TestDynamicTransformInitialFloor(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 4)
	out := NewQueue[int]("out", 4)
	RunSource(g, ctx, nil, "src", rangeSource(5), in)
	dt := RunDynamicTransform(g, ctx, nil, "dyn", 0,
		func(_ context.Context, x int, emit Emit[int]) error { return emit(x) }, in, out)
	sink, _ := Collect[int]()
	RunSink(g, ctx, nil, "sink", 1, sink, out)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if dt.Clones() != 1 {
		t.Fatalf("initial<1 should coerce to 1, got %d", dt.Clones())
	}
}

func TestDynamicTransformScalesUpMidRun(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 4)
	out := NewQueue[int]("out", 200)
	release := make(chan struct{})
	var processed atomic.Int32
	// Slow stage: the first items block until released, so the queue
	// backs up and the added clone is observably useful.
	fn := func(_ context.Context, x int, emit Emit[int]) error {
		processed.Add(1)
		<-release
		return emit(x)
	}
	RunSource(g, ctx, nil, "src", rangeSource(50), in)
	dt := RunDynamicTransform(g, ctx, nil, "dyn", 1, fn, in, out)
	sink, snap := Collect[int]()
	RunSink(g, ctx, nil, "sink", 1, sink, out)

	// Wait for the single clone to block on the first item.
	deadline := time.After(2 * time.Second)
	for processed.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("first item never reached the stage")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < 3; i++ {
		if !dt.AddClone() {
			t.Fatal("AddClone refused while input open")
		}
	}
	if dt.Clones() != 4 {
		t.Fatalf("clones = %d, want 4", dt.Clones())
	}
	close(release)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := snap(); len(got) != 50 {
		t.Fatalf("delivered %d items", len(got))
	}
	if dt.Stats().Clones() != 4 {
		t.Fatalf("stats clones = %d", dt.Stats().Clones())
	}
}

func TestDynamicTransformAddCloneAfterDrain(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 4)
	out := NewQueue[int]("out", 4)
	RunSource(g, ctx, nil, "src", rangeSource(3), in)
	dt := RunDynamicTransform(g, ctx, nil, "dyn", 1,
		func(_ context.Context, x int, emit Emit[int]) error { return emit(x) }, in, out)
	sink, _ := Collect[int]()
	RunSink(g, ctx, nil, "sink", 1, sink, out)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if dt.AddClone() {
		t.Fatal("AddClone after drain should report false")
	}
}

func TestDynamicTransformErrorPropagates(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 4)
	out := NewQueue[int]("out", 4)
	boom := errors.New("bad item")
	RunSource(g, ctx, nil, "src", rangeSource(100), in)
	RunDynamicTransform(g, ctx, nil, "dyn", 3,
		func(_ context.Context, x int, emit Emit[int]) error {
			if x == 5 {
				return boom
			}
			return emit(x)
		}, in, out)
	sink, _ := Collect[int]()
	RunSink(g, ctx, nil, "sink", 1, sink, out)
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v", err)
	}
}
