package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// rangeSource emits 0..n-1.
func rangeSource(n int) SourceFunc[int] {
	return func(ctx context.Context, emit Emit[int]) error {
		for i := 0; i < n; i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestGroupRunsAndWaits(t *testing.T) {
	g, _ := NewGroup(context.Background())
	var ran atomic.Int32
	for i := 0; i < 5; i++ {
		g.Go("worker", func() error {
			ran.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 5 {
		t.Fatalf("ran %d goroutines", ran.Load())
	}
}

func TestGroupFirstErrorCancels(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	sentinel := errors.New("boom")
	g.Go("failer", func() error { return sentinel })
	g.Go("waiter", func() error {
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(5 * time.Second):
			return errors.New("group context not cancelled")
		}
	})
	if err := g.Wait(); !errors.Is(err, sentinel) {
		t.Fatalf("Wait = %v, want wrapped sentinel", err)
	}
}

func TestGroupPanicBecomesError(t *testing.T) {
	g, _ := NewGroup(context.Background())
	g.Go("panicky", func() error { panic("oh no") })
	err := g.Wait()
	if err == nil {
		t.Fatal("panic should surface as error")
	}
	if want := `operator "panicky" panicked`; !contains(err.Error(), want) {
		t.Fatalf("error %q does not mention panic source", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		})())
}

func TestSourceTransformSinkPipeline(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	reg := NewStatsRegistry()
	q1 := NewQueue[int]("src-out", 4)
	q2 := NewQueue[int]("xform-out", 4)

	RunSource(g, ctx, reg, "src", rangeSource(100), q1)
	double := func(_ context.Context, in int, emit Emit[int]) error { return emit(in * 2) }
	RunTransform(g, ctx, reg, "double", 1, double, q1, q2)
	sink, snapshot := Collect[int]()
	RunSink(g, ctx, reg, "collect", 1, sink, q2)

	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	got := snapshot()
	if len(got) != 100 {
		t.Fatalf("collected %d items", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("item %d = %d, want %d", i, v, 2*i)
		}
	}
}

func TestClonedTransformProcessesEverythingOnce(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	reg := NewStatsRegistry()
	q1 := NewQueue[int]("in", 8)
	q2 := NewQueue[int]("out", 8)
	RunSource(g, ctx, reg, "src", rangeSource(500), q1)
	ident := func(_ context.Context, in int, emit Emit[int]) error { return emit(in) }
	st := RunTransform(g, ctx, reg, "ident", 8, ident, q1, q2)
	sink, snapshot := Collect[int]()
	RunSink(g, ctx, reg, "collect", 1, sink, q2)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	got := snapshot()
	if len(got) != 500 {
		t.Fatalf("collected %d, want 500 (lost or duplicated under cloning)", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("item %d delivered twice", v)
		}
		seen[v] = true
	}
	if st.Clones() != 8 {
		t.Fatalf("Clones = %d", st.Clones())
	}
	if st.Processed() != 500 || st.Emitted() != 500 {
		t.Fatalf("stats in=%d out=%d", st.Processed(), st.Emitted())
	}
}

func TestTransformErrorStopsPlan(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	q1 := NewQueue[int]("in", 4)
	q2 := NewQueue[int]("out", 4)
	RunSource(g, ctx, nil, "src", rangeSource(1000), q1)
	boom := errors.New("bad item")
	fail := func(_ context.Context, in int, emit Emit[int]) error {
		if in == 7 {
			return boom
		}
		return emit(in)
	}
	RunTransform(g, ctx, nil, "fail", 2, fail, q1, q2)
	sink, _ := Collect[int]()
	RunSink(g, ctx, nil, "collect", 1, sink, q2)
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
}

func TestSinkErrorStopsPlan(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	q1 := NewQueue[int]("in", 4)
	RunSource(g, ctx, nil, "src", rangeSource(1000), q1)
	boom := errors.New("sink refuses")
	var count atomic.Int32
	sink := func(_ context.Context, in int) error {
		if count.Add(1) > 3 {
			return boom
		}
		return nil
	}
	RunSink(g, ctx, nil, "sink", 1, sink, q1)
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
}

func TestSourceErrorPropagates(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	q1 := NewQueue[int]("in", 4)
	boom := errors.New("scan failed")
	src := func(ctx context.Context, emit Emit[int]) error {
		if err := emit(1); err != nil {
			return err
		}
		return boom
	}
	RunSource(g, ctx, nil, "src", src, q1)
	sink, snapshot := Collect[int]()
	RunSink(g, ctx, nil, "sink", 1, sink, q1)
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	// Output queue was still closed; the emitted item may or may not have
	// been consumed before cancellation, but the plan must terminate.
	_ = snapshot()
}

func TestFanOutTransformEmitsMultiple(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	q1 := NewQueue[int]("in", 4)
	q2 := NewQueue[string]("out", 4)
	RunSource(g, ctx, nil, "src", rangeSource(10), q1)
	expand := func(_ context.Context, in int, emit Emit[string]) error {
		for j := 0; j < 3; j++ {
			if err := emit(fmt.Sprintf("%d/%d", in, j)); err != nil {
				return err
			}
		}
		return nil
	}
	RunTransform(g, ctx, nil, "expand", 2, expand, q1, q2)
	sink, snapshot := Collect[string]()
	RunSink(g, ctx, nil, "sink", 1, sink, q2)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := snapshot(); len(got) != 30 {
		t.Fatalf("collected %d, want 30", len(got))
	}
}

func TestStatsRegistry(t *testing.T) {
	reg := NewStatsRegistry()
	g, ctx := NewGroup(context.Background())
	q1 := NewQueue[int]("in", 4)
	RunSource(g, ctx, reg, "src", rangeSource(5), q1)
	sink, _ := Collect[int]()
	RunSink(g, ctx, reg, "sink", 3, sink, q1)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	all := reg.All()
	if len(all) != 2 {
		t.Fatalf("registry has %d entries", len(all))
	}
	src := reg.Lookup("src")
	if src == nil || src.Emitted() != 5 {
		t.Fatalf("src stats: %v", src)
	}
	snk := reg.Lookup("sink")
	if snk == nil || snk.Processed() != 5 || snk.Clones() != 3 {
		t.Fatalf("sink stats: %v", snk)
	}
	if reg.Lookup("missing") != nil {
		t.Fatal("Lookup of unknown op should be nil")
	}
	if s := src.String(); s == "" {
		t.Fatal("String should format")
	}
}

func TestNilRegistryAllowed(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	q1 := NewQueue[int]("in", 4)
	RunSource(g, ctx, nil, "src", rangeSource(5), q1)
	sink, snapshot := Collect[int]()
	RunSink(g, ctx, nil, "sink", 0, sink, q1) // clones<1 coerced to 1
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(snapshot()) != 5 {
		t.Fatal("nil registry pipeline failed")
	}
}

func TestPipelinedExecutionOverlaps(t *testing.T) {
	// The consumer must start before the producer finishes: with a queue
	// capacity of 1 and 10 items, a non-pipelined implementation would
	// deadlock.
	g, ctx := NewGroup(context.Background())
	q := NewQueue[int]("tiny", 1)
	RunSource(g, ctx, nil, "src", rangeSource(10), q)
	sink, snapshot := Collect[int]()
	RunSink(g, ctx, nil, "sink", 1, sink, q)
	done := make(chan error, 1)
	go func() { done <- g.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline deadlocked with tiny queue")
	}
	if len(snapshot()) != 10 {
		t.Fatal("lost items")
	}
}
