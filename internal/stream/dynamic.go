package stream

import (
	"context"
	"fmt"
	"sync"

	"streamkm/internal/rng"
)

// DynamicTransform is a transform stage whose clone count can grow while
// the plan is running — the mechanism behind dynamic re-optimization
// (§4: Conquest's re-optimizer adapts long-running queries). A
// supervisor owns the clone lifecycle: AddClone spawns another replica
// reading the shared input queue; the output queue closes only after the
// input is exhausted and every replica has returned.
type DynamicTransform[I, O any] struct {
	name  string
	fn    TransformFunc[I, O]
	in    *Queue[I]
	out   *Queue[O]
	g     *Group
	ctx   context.Context
	stats *OpStats
	sup   *Supervisor[I] // nil = unsupervised

	mu     sync.Mutex
	clones int
	closed bool // input exhausted; no further clones may be added
	live   sync.WaitGroup
}

// RunDynamicTransform starts the stage with initial clones (at least 1).
// The returned handle adds clones at runtime and exposes the aggregate
// stats.
func RunDynamicTransform[I, O any](g *Group, ctx context.Context, reg *StatsRegistry, name string, initial int, fn TransformFunc[I, O], in *Queue[I], out *Queue[O]) *DynamicTransform[I, O] {
	return RunSupervisedDynamicTransform(g, ctx, reg, name, initial, nil, fn, in, out)
}

// RunSupervisedDynamicTransform is RunDynamicTransform with operator
// supervision (see RunSupervisedTransform): every replica — including
// ones added later by the re-optimizer — recovers panics, retries per
// the policy, and quarantines poison items. sup may be nil.
func RunSupervisedDynamicTransform[I, O any](g *Group, ctx context.Context, reg *StatsRegistry, name string, initial int, sup *Supervisor[I], fn TransformFunc[I, O], in *Queue[I], out *Queue[O]) *DynamicTransform[I, O] {
	if initial < 1 {
		initial = 1
	}
	d := &DynamicTransform[I, O]{
		sup: sup,
		name:  name,
		fn:    fn,
		in:    in,
		out:   out,
		g:     g,
		ctx:   ctx,
		stats: reg.register(name, initial),
	}
	for i := 0; i < initial; i++ {
		d.spawnLocked()
	}
	// Closer: when the input is exhausted every clone returns; after the
	// last one, mark closed and close the output.
	g.Go(name+".close", func() error {
		d.live.Wait()
		d.mu.Lock()
		d.closed = true
		d.mu.Unlock()
		out.Close()
		return nil
	})
	return d
}

// Stats returns the stage's aggregate counters.
func (d *DynamicTransform[I, O]) Stats() *OpStats { return d.stats }

// Clones returns the current replica count.
func (d *DynamicTransform[I, O]) Clones() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clones
}

// AddClone spawns one more replica. It reports false when the stage has
// already drained its input (scaling up would be pointless).
func (d *DynamicTransform[I, O]) AddClone() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	d.spawnLocked()
	return true
}

// spawnLocked registers and starts one replica; d.mu must be held (or
// the stage not yet shared).
func (d *DynamicTransform[I, O]) spawnLocked() {
	d.clones++
	d.stats.clones = int32(d.clones)
	d.live.Add(1)
	id := d.clones
	cloneName := fmt.Sprintf("%s#%d", d.name, id)
	if d.sup != nil {
		jr := rng.New(d.sup.JitterSeed + uint64(id)*0x9e3779b97f4a7c15)
		d.g.Go(cloneName, func() error {
			defer d.live.Done()
			var buf []O
			for {
				item, ok, err := d.in.Get(d.ctx)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				d.stats.processed.Add(1)
				ok, err = superviseItem(d.ctx, cloneName, d.sup, jr, d.stats, d.fn, item, &buf)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				for _, v := range buf {
					if err := d.out.Put(d.ctx, v); err != nil {
						return err
					}
					d.stats.emitted.Add(1)
				}
			}
		})
		return
	}
	d.g.Go(cloneName, func() error {
		defer d.live.Done()
		emit := func(v O) error {
			if err := d.out.Put(d.ctx, v); err != nil {
				return err
			}
			d.stats.emitted.Add(1)
			return nil
		}
		for {
			item, ok, err := d.in.Get(d.ctx)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			d.stats.processed.Add(1)
			if err := d.fn(d.ctx, item, emit); err != nil {
				return err
			}
		}
	})
}
