package stream

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"streamkm/internal/govern"
)

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (scheduler cleanup is asynchronous).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPlanLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		g, ctx := NewGroup(context.Background())
		q1 := NewQueue[int]("a", 4)
		q2 := NewQueue[int]("b", 4)
		RunSource(g, ctx, nil, "src", rangeSource(200), q1)
		Map(g, ctx, nil, "id", 4, func(x int) (int, error) { return x, nil }, q1, q2)
		sink, _ := Collect[int]()
		RunSink(g, ctx, nil, "sink", 2, sink, q2)
		if err := g.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	waitForGoroutines(t, baseline)
}

// TestWatchdogCancelMidPutLeavesNoGoroutines wedges a heartbeat-wired
// stage on a blocked Put (full output queue, no consumer) and lets a
// stall watchdog — wired exactly the way the engine wires it — cancel
// the attempt. Every replica, the source, and the watchdog goroutine
// itself must unwind.
func TestWatchdogCancelMidPutLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		attemptCtx, cancelAttempt := context.WithCancelCause(context.Background())
		g, gctx := NewGroup(attemptCtx)
		in := NewQueue[int]("in", 1)
		out := NewQueue[int]("out", 1)
		RunSource(g, gctx, nil, "src", endlessSource(), in)
		hb := new(govern.Heartbeat)
		RunStage(g, gctx, nil, StageConfig[int]{Name: "xform", Beat: hb},
			func(_ context.Context, x int, emit Emit[int]) error { return emit(x) }, in, out)
		// Nobody drains out: the replica begins an item and wedges inside
		// Put, so the probe sees in-flight work with a flat beat count.
		wd := govern.NewWatchdog(30*time.Millisecond, govern.Probe{
			Name:     "xform",
			Progress: func() int64 { return hb.Beats() + in.Dequeued() },
			Pending:  func() int64 { return hb.InFlight() + int64(in.Len()) },
		})
		wdStop, wdDone := make(chan struct{}), make(chan struct{})
		go func() {
			defer close(wdDone)
			wd.Watch(wdStop, func(err error) { cancelAttempt(err) })
		}()
		err := g.Wait()
		close(wdStop)
		<-wdDone
		cancelAttempt(nil)
		if err == nil {
			t.Fatal("wedged plan finished cleanly; the watchdog never fired")
		}
		if cause := context.Cause(attemptCtx); !errors.Is(cause, govern.ErrStalled) {
			t.Fatalf("cancellation cause = %v, want govern.ErrStalled", cause)
		}
	}
	waitForGoroutines(t, baseline)
}

func TestCancelledPlanLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		g, gctx := NewGroup(ctx)
		q1 := NewQueue[int]("a", 1)
		q2 := NewQueue[int]("b", 1)
		RunSource(g, gctx, nil, "src", endlessSource(), q1)
		dt := RunDynamicTransform(g, gctx, nil, "dyn", 2,
			func(_ context.Context, x int, emit Emit[int]) error { return emit(x) }, q1, q2)
		dt.AddClone()
		// no consumer: the plan wedges, then gets cancelled
		time.Sleep(5 * time.Millisecond)
		cancel()
		_ = g.Wait()
	}
	waitForGoroutines(t, baseline)
}
