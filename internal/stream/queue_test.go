package stream

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestQueuePutGet(t *testing.T) {
	q := NewQueue[int]("q", 4)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := q.Put(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 3; i++ {
		v, ok, err := q.Get(ctx)
		if err != nil || !ok || v != i {
			t.Fatalf("Get = (%d, %v, %v), want (%d, true, nil)", v, ok, err, i)
		}
	}
	if q.Enqueued() != 3 || q.Dequeued() != 3 {
		t.Fatalf("counters: enq=%d deq=%d", q.Enqueued(), q.Dequeued())
	}
}

func TestQueueDefaultsAndName(t *testing.T) {
	q := NewQueue[int]("named", 0)
	if q.Cap() != DefaultQueueCapacity {
		t.Fatalf("Cap = %d", q.Cap())
	}
	if q.Name() != "named" {
		t.Fatalf("Name = %q", q.Name())
	}
}

func TestQueueCloseDrainsBufferedItems(t *testing.T) {
	q := NewQueue[int]("q", 8)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := q.Put(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	got := 0
	for {
		v, ok, err := q.Get(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if v != got {
			t.Fatalf("FIFO violated: got %d want %d", v, got)
		}
		got++
	}
	if got != 5 {
		t.Fatalf("drained %d items, want 5", got)
	}
}

func TestQueuePutAfterClose(t *testing.T) {
	q := NewQueue[int]("q", 1)
	q.Close()
	if err := q.Put(context.Background(), 1); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Put after Close = %v, want ErrQueueClosed", err)
	}
	q.Close() // idempotent
}

func TestQueueBlockedPutReleasedByClose(t *testing.T) {
	q := NewQueue[int]("q", 1)
	ctx := context.Background()
	if err := q.Put(ctx, 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- q.Put(ctx, 2) }()
	time.Sleep(20 * time.Millisecond)
	q.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrQueueClosed) {
			t.Fatalf("blocked Put = %v, want ErrQueueClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked Put not released by Close")
	}
}

func TestQueueBlockedGetReleasedByClose(t *testing.T) {
	q := NewQueue[int]("q", 1)
	done := make(chan bool, 1)
	go func() {
		_, ok, err := q.Get(context.Background())
		done <- ok || err != nil
	}()
	time.Sleep(20 * time.Millisecond)
	q.Close()
	select {
	case bad := <-done:
		if bad {
			t.Fatal("Get on closed empty queue should report exhaustion")
		}
	case <-time.After(time.Second):
		t.Fatal("blocked Get not released by Close")
	}
}

func TestQueueContextCancellation(t *testing.T) {
	q := NewQueue[int]("q", 1)
	ctx, cancel := context.WithCancel(context.Background())
	if err := q.Put(ctx, 1); err != nil {
		t.Fatal(err)
	}
	putDone := make(chan error, 1)
	go func() { putDone <- q.Put(ctx, 2) }() // blocks: full
	getDone := make(chan error, 1)
	q2 := NewQueue[int]("q2", 1)
	go func() {
		_, _, err := q2.Get(ctx) // blocks: empty
		getDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	for i, ch := range []chan error{putDone, getDone} {
		select {
		case err := <-ch:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("op %d = %v, want context.Canceled", i, err)
			}
		case <-time.After(time.Second):
			t.Fatalf("op %d not released by cancel", i)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	q := NewQueue[int]("q", 2)
	ctx := context.Background()
	if err := q.Put(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Put(ctx, 2); err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	go func() {
		if err := q.Put(ctx, 3); err != nil {
			t.Error(err)
		}
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("Put on a full queue did not block")
	case <-time.After(30 * time.Millisecond):
	}
	if _, _, err := q.Get(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("Put not released after consumer made room")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue[int]("q", 8)
	ctx := context.Background()
	const producers, perProducer, consumers = 4, 500, 3
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Put(ctx, p*perProducer+i); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	go func() {
		wg.Wait()
		q.Close()
	}()
	var mu sync.Mutex
	seen := map[int]bool{}
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok, err := q.Get(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate delivery of %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	cwg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("delivered %d items, want %d", len(seen), producers*perProducer)
	}
}

func TestQueueDrain(t *testing.T) {
	q := NewQueue[int]("q", 8)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if err := q.Put(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	n, err := q.Drain(ctx)
	if err != nil || n != 6 {
		t.Fatalf("Drain = (%d, %v), want (6, nil)", n, err)
	}
}
