package stream

import (
	"context"
	"testing"
	"testing/quick"
)

// Property: a single-clone pipeline preserves FIFO order end to end
// (cloned stages may reorder; a 1-clone chain must not).
func TestSingleClonePreservesOrder(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		g, ctx := NewGroup(context.Background())
		q1 := NewQueue[int]("a", 4)
		q2 := NewQueue[int]("b", 4)
		q3 := NewQueue[int]("c", 4)
		RunSource(g, ctx, nil, "src", rangeSource(n), q1)
		Map(g, ctx, nil, "x2", 1, func(x int) (int, error) { return x * 2, nil }, q1, q2)
		Filter(g, ctx, nil, "all", 1, func(int) bool { return true }, q2, q3)
		var got []int
		RunSink(g, ctx, nil, "sink", 1, func(_ context.Context, v int) error {
			got = append(got, v)
			return nil
		}, q3)
		if err := g.Wait(); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != 2*i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Batch preserves element order across batch boundaries.
func TestBatchPreservesOrder(t *testing.T) {
	f := func(nRaw, sizeRaw uint8) bool {
		n := int(nRaw)%300 + 1
		size := int(sizeRaw)%20 + 1
		g, ctx := NewGroup(context.Background())
		in := NewQueue[int]("in", 8)
		out := NewQueue[[]int]("out", 8)
		RunSource(g, ctx, nil, "src", rangeSource(n), in)
		if _, err := Batch(g, ctx, nil, "batch", size, in, out); err != nil {
			return false
		}
		var flat []int
		RunSink(g, ctx, nil, "sink", 1, func(_ context.Context, b []int) error {
			flat = append(flat, b...)
			return nil
		}, out)
		if err := g.Wait(); err != nil {
			return false
		}
		if len(flat) != n {
			return false
		}
		for i, v := range flat {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
