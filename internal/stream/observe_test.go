package stream

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the stage's observability hooks: the per-item latency hook
// the engine feeds into obs histograms, and the panic counter absorbed
// into the stream_panics metric family.

// TestStageObserveFiresOncePerItem runs a supervised stage where one
// item fails its first attempt: the Observe hook must fire once per
// item (after the item fully completes, retries included), never per
// attempt, because the engine files it into a per-chunk histogram.
func TestStageObserveFiresOncePerItem(t *testing.T) {
	const items = 12
	var observed, negative atomic.Int64
	var failedOnce atomic.Bool
	g, ctx := NewGroup(context.Background())
	reg := NewStatsRegistry()
	in := NewQueue[int]("in", 4)
	out := NewQueue[int]("out", items)
	fn := func(_ context.Context, x int, emit Emit[int]) error {
		if x == 5 && !failedOnce.Swap(true) {
			return errors.New("transient")
		}
		return emit(x)
	}
	sup := &Supervisor[int]{Retry: RetryPolicy{MaxRetries: 2, BaseBackoff: -1}}
	RunSource(g, ctx, reg, "src", rangeSource(items), in)
	st := RunStage(g, ctx, reg, StageConfig[int]{
		Name: "work", Clones: 2, Sup: sup,
		Observe: func(d time.Duration) {
			observed.Add(1)
			if d < 0 {
				negative.Add(1)
			}
		},
	}, fn, in, out)
	sink, snap := Collect[int]()
	RunSink(g, ctx, reg, "sink", 1, sink, out)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(snap()) != items {
		t.Fatalf("delivered %d items, want %d", len(snap()), items)
	}
	if got := observed.Load(); got != items {
		t.Fatalf("Observe fired %d times, want %d (once per item)", got, items)
	}
	if negative.Load() != 0 {
		t.Fatalf("%d observations had negative duration", negative.Load())
	}
	if st.Stats().Retries() != 1 {
		t.Fatalf("retries = %d, want 1", st.Stats().Retries())
	}
}

// TestOpStatsCountsPanics recovers a transient panic under supervision
// and requires it on the panic counter — the signal behind the
// stream_panics metric family — without also counting plain errors.
func TestOpStatsCountsPanics(t *testing.T) {
	var panicked, errored atomic.Bool
	fn := func(_ context.Context, v int, emit Emit[int]) error {
		if v == 3 && !panicked.Swap(true) {
			panic("transient poison")
		}
		if v == 4 && !errored.Swap(true) {
			return errors.New("plain failure")
		}
		return emit(v)
	}
	sup := &Supervisor[int]{Retry: RetryPolicy{MaxRetries: 2, BaseBackoff: -1}}
	got, stats, err := runSupervisedInts(t, sup, 2, fn, []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d items, want 5", len(got))
	}
	if stats.Panics() != 1 {
		t.Fatalf("Panics() = %d, want 1 (the plain error must not count)", stats.Panics())
	}
	if stats.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", stats.Retries())
	}
	if s := fmt.Sprint(stats); !strings.Contains(s, "panics=1") {
		t.Fatalf("String() %q does not report the panic", s)
	}
}
