package stream

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// This file holds the single stage runner behind every transform-shaped
// operator. The paper's Conquest engine layers its services —
// supervision, re-optimization, migration — over one operator pipeline
// (§4) rather than forking a dedicated executor per service, and the
// runner mirrors that: supervision (retry/backoff, panic capture,
// dead-lettering) and dynamic scaling (AddClone while the plan runs)
// are orthogonal capabilities of the same clone loop, so an adaptive
// plan can grow replicas of a supervised operator. RunTransform,
// RunSupervisedTransform, RunDynamicTransform, RunSink, and
// RunSupervisedSink are all thin wrappers over RunStage.

// Heartbeat is the liveness hook a stage notifies as its replicas
// work; the resource governor's stall watchdog samples it. Begin fires
// after an item is dequeued, End after that item fully completes —
// including its downstream emissions — so a replica wedged inside the
// transform, a retry loop, or a blocked Put all show as a begun-but-
// unfinished item. Implementations must be safe for concurrent use by
// cloned operators (govern.Heartbeat is the canonical one).
type Heartbeat interface {
	Begin()
	End()
}

// StageConfig selects a stage's optional capabilities.
type StageConfig[I any] struct {
	// Name tags goroutines, error messages, and stats.
	Name string
	// Clones is the initial replica count (< 1 is treated as 1).
	Clones int
	// Sup, when non-nil, supervises every replica — including ones
	// added later through AddClone: panics become typed errors,
	// failing items are retried per the policy, and poison items are
	// quarantined to the DLQ (when configured) instead of cancelling
	// the plan. Emissions of a failing attempt are discarded, so
	// retries never duplicate output.
	Sup *Supervisor[I]
	// Beat, when non-nil, brackets every item each replica processes,
	// giving the stall watchdog a per-stage progress signal. Orthogonal
	// to supervision: a supervised item beats once per item, not per
	// retry attempt.
	Beat Heartbeat
	// Observe, when non-nil, receives each item's processing duration
	// after the item fully completes (including downstream emissions) —
	// the metrics layer's per-stage latency hook. Like Beat it fires
	// once per item, not per retry attempt, and must be safe for
	// concurrent use by cloned operators (an obs.Histogram updated per
	// chunk is the canonical implementation).
	Observe func(d time.Duration)
}

// Stage is a running transform (or sink) stage. All replicas consume
// the shared input queue; the output queue closes only after the input
// is exhausted and every replica has returned — the fan-in barrier
// that lets a downstream consumer treat cloned operators as one
// logical operator (Fig. 3).
type Stage[I, O any] struct {
	name    string
	fn      TransformFunc[I, O]
	in      *Queue[I]
	out     *Queue[O] // nil for sink stages
	g       *Group
	ctx     context.Context
	stats   *OpStats
	sup     *Supervisor[I]      // nil = unsupervised
	beat    Heartbeat           // nil = no liveness hook
	observe func(time.Duration) // nil = no latency hook

	mu      sync.Mutex
	initial int
	clones  int
	closed  bool // input exhausted; no further clones may be added
	live    sync.WaitGroup
}

// RunStage starts a stage on the group. A nil out makes it a sink
// stage (fn's emissions, if any, are rejected by the nil queue — sink
// adapters simply never emit). reg may be nil.
func RunStage[I, O any](g *Group, ctx context.Context, reg *StatsRegistry, cfg StageConfig[I], fn TransformFunc[I, O], in *Queue[I], out *Queue[O]) *Stage[I, O] {
	initial := cfg.Clones
	if initial < 1 {
		initial = 1
	}
	s := &Stage[I, O]{
		name:    cfg.Name,
		fn:      fn,
		in:      in,
		out:     out,
		g:       g,
		ctx:     ctx,
		stats:   reg.register(cfg.Name, initial),
		sup:     cfg.Sup,
		beat:    cfg.Beat,
		observe: cfg.Observe,
		initial: initial,
	}
	for i := 0; i < initial; i++ {
		s.spawnLocked()
	}
	// Closer: when the input is exhausted every clone returns; after
	// the last one, mark closed and propagate end-of-stream.
	g.Go(cfg.Name+".close", func() error {
		s.live.Wait()
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		if s.out != nil {
			s.out.Close()
		}
		return nil
	})
	return s
}

// Stats returns the stage's aggregate counters.
func (s *Stage[I, O]) Stats() *OpStats { return s.stats }

// Clones returns the current replica count.
func (s *Stage[I, O]) Clones() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clones
}

// AddClone spawns one more replica — the re-optimizer's scale-up
// primitive. It reports false when the stage has already drained its
// input (scaling up would be pointless).
func (s *Stage[I, O]) AddClone() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.spawnLocked()
	return true
}

// spawnLocked registers and starts one replica; s.mu must be held (or
// the stage not yet shared).
func (s *Stage[I, O]) spawnLocked() {
	idx := s.clones
	s.clones++
	s.stats.growClones(int32(s.clones))
	// A single-replica stage keeps the bare operator name (so errors
	// read "partial-kmeans", not "partial-kmeans#0"); replicas of a
	// multi-clone or scaled-up stage are numbered.
	cloneName := s.name
	if !(idx == 0 && s.initial == 1) {
		cloneName = fmt.Sprintf("%s#%d", s.name, idx)
	}
	s.live.Add(1)
	s.g.Go(cloneName, func() error {
		defer s.live.Done()
		var buf []O
		emit := func(v O) error {
			if err := s.out.Put(s.ctx, v); err != nil {
				return err
			}
			s.stats.emitted.Add(1)
			return nil
		}
		for {
			item, ok, err := s.in.Get(s.ctx)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			s.stats.processed.Add(1)
			if err := s.processOne(cloneName, item, &buf, emit); err != nil {
				return err
			}
		}
	})
}

// processOne pushes one item through the operator function (supervised
// or not), bracketed by the heartbeat hook so the stall watchdog sees
// the item as in flight until its emissions land downstream. A
// quarantined item completes the bracket and returns nil — from the
// governor's perspective giving up on an item is progress too.
func (s *Stage[I, O]) processOne(cloneName string, item I, buf *[]O, emit func(O) error) error {
	if s.beat != nil {
		s.beat.Begin()
		defer s.beat.End()
	}
	start := time.Now()
	defer func() {
		d := time.Since(start)
		s.stats.busyNanos.Add(int64(d))
		if s.observe != nil {
			s.observe(d)
		}
	}()
	if s.sup == nil {
		return s.fn(s.ctx, item, emit)
	}
	ok, err := superviseItem(s.ctx, cloneName, s.sup, s.sup.itemSeed(item), s.stats, s.fn, item, buf)
	if err != nil || !ok {
		return err // failed, or quarantined (ok=false, err=nil)
	}
	for _, v := range *buf {
		if err := emit(v); err != nil {
			return err
		}
	}
	return nil
}

// sinkStage adapts a SinkFunc and runs it as a stage with no output
// queue, for the RunSink/RunSupervisedSink wrappers.
func sinkStage[I any](g *Group, ctx context.Context, reg *StatsRegistry, cfg StageConfig[I], fn SinkFunc[I], in *Queue[I]) *Stage[I, struct{}] {
	asTransform := func(ctx context.Context, item I, _ Emit[struct{}]) error {
		return fn(ctx, item)
	}
	return RunStage(g, ctx, reg, cfg, asTransform, in, (*Queue[struct{}])(nil))
}

// RunDynamicTransform starts a stage whose clone count can grow while
// the plan is running — the mechanism behind dynamic re-optimization
// (§4: Conquest's re-optimizer adapts long-running queries). The
// returned handle adds clones at runtime and exposes the aggregate
// stats. initial < 1 is treated as 1. reg may be nil.
func RunDynamicTransform[I, O any](g *Group, ctx context.Context, reg *StatsRegistry, name string, initial int, fn TransformFunc[I, O], in *Queue[I], out *Queue[O]) *Stage[I, O] {
	return RunStage(g, ctx, reg, StageConfig[I]{Name: name, Clones: initial}, fn, in, out)
}

// RunSupervisedDynamicTransform is RunDynamicTransform with operator
// supervision (see StageConfig.Sup): every replica — including ones
// added later by the re-optimizer — recovers panics, retries per the
// policy, and quarantines poison items. sup may be nil.
func RunSupervisedDynamicTransform[I, O any](g *Group, ctx context.Context, reg *StatsRegistry, name string, initial int, sup *Supervisor[I], fn TransformFunc[I, O], in *Queue[I], out *Queue[O]) *Stage[I, O] {
	return RunStage(g, ctx, reg, StageConfig[I]{Name: name, Clones: initial, Sup: sup}, fn, in, out)
}
