package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func runSupervisedInts(t *testing.T, sup *Supervisor[int], clones int, fn TransformFunc[int, int], inputs []int) ([]int, *OpStats, error) {
	t.Helper()
	g, ctx := NewGroup(context.Background())
	reg := NewStatsRegistry()
	in := NewQueue[int]("in", 8)
	out := NewQueue[int]("out", 8)
	RunSource(g, ctx, reg, "src", func(_ context.Context, emit Emit[int]) error {
		for _, v := range inputs {
			if err := emit(v); err != nil {
				return err
			}
		}
		return nil
	}, in)
	stats := RunSupervisedTransform(g, ctx, reg, "work", clones, sup, fn, in, out)
	sink, snapshot := Collect[int]()
	RunSink(g, ctx, reg, "sink", 1, sink, out)
	err := g.Wait()
	return snapshot(), stats, err
}

func TestSupervisedRetriesTransientFailure(t *testing.T) {
	var failures atomic.Int64
	fn := func(_ context.Context, v int, emit Emit[int]) error {
		// Item 3 fails twice before succeeding.
		if v == 3 && failures.Add(1) <= 2 {
			return errors.New("transient")
		}
		return emit(v * 10)
	}
	sup := &Supervisor[int]{Retry: RetryPolicy{MaxRetries: 3, BaseBackoff: time.Microsecond}}
	got, stats, err := runSupervisedInts(t, sup, 1, fn, []int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	want := []int{10, 20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if stats.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", stats.Retries())
	}
	if stats.Quarantined() != 0 || stats.Dropped() != 0 {
		t.Fatalf("unexpected quarantine: %s", stats)
	}
}

func TestSupervisedRecoversPanicsIntoTypedErrors(t *testing.T) {
	var calls atomic.Int64
	fn := func(_ context.Context, v int, emit Emit[int]) error {
		if v == 2 && calls.Add(1) == 1 {
			panic("kaboom")
		}
		return emit(v)
	}
	sup := &Supervisor[int]{Retry: RetryPolicy{MaxRetries: 1, BaseBackoff: time.Microsecond}}
	got, stats, err := runSupervisedInts(t, sup, 1, fn, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if stats.Retries() != 1 {
		t.Fatalf("Retries() = %d", stats.Retries())
	}
}

func TestSupervisedPanicWithoutRetryFailsTyped(t *testing.T) {
	fn := func(_ context.Context, v int, _ Emit[int]) error {
		panic(fmt.Sprintf("poison %d", v))
	}
	sup := &Supervisor[int]{} // no retries, no DLQ
	_, _, err := runSupervisedInts(t, sup, 1, fn, []int{7})
	if err == nil {
		t.Fatal("expected failure")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a PanicError", err)
	}
	if pe.Op != "work" || !strings.Contains(pe.Error(), "poison 7") {
		t.Fatalf("panic error %v", pe)
	}
}

func TestSupervisedQuarantinesPoisonItems(t *testing.T) {
	fn := func(_ context.Context, v int, emit Emit[int]) error {
		if v%2 == 0 {
			return fmt.Errorf("poison %d", v)
		}
		return emit(v)
	}
	dlq := NewDeadLetterQueue[int](8)
	var seen []int
	var mu sync.Mutex
	sup := &Supervisor[int]{
		Retry: RetryPolicy{MaxRetries: 2, BaseBackoff: time.Microsecond},
		DLQ:   dlq,
		OnQuarantine: func(d DeadLetter[int]) {
			mu.Lock()
			seen = append(seen, d.Item)
			mu.Unlock()
		},
	}
	got, stats, err := runSupervisedInts(t, sup, 2, fn, []int{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatalf("poison items wedged the pipeline: %v", err)
	}
	sort.Ints(got)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("survivors %v", got)
	}
	if stats.Quarantined() != 3 {
		t.Fatalf("Quarantined() = %d", stats.Quarantined())
	}
	// Each poison item burns its full retry budget before quarantine.
	if stats.Retries() != 6 {
		t.Fatalf("Retries() = %d, want 6", stats.Retries())
	}
	if dlq.Len() != 3 {
		t.Fatalf("DLQ holds %d", dlq.Len())
	}
	for _, d := range dlq.Items() {
		if d.Item%2 != 0 || d.Attempts != 3 || d.Err == nil {
			t.Fatalf("dead letter %+v", d)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("OnQuarantine saw %v", seen)
	}
	if !strings.Contains(stats.String(), "quarantined=3") {
		t.Fatalf("stats string %q", stats.String())
	}
}

func TestDeadLetterQueueBoundedDropsOverflow(t *testing.T) {
	fn := func(_ context.Context, v int, _ Emit[int]) error {
		return errors.New("always poison")
	}
	dlq := NewDeadLetterQueue[int](2)
	sup := &Supervisor[int]{DLQ: dlq}
	_, stats, err := runSupervisedInts(t, sup, 1, fn, []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if dlq.Len() != 2 {
		t.Fatalf("DLQ holds %d, cap 2", dlq.Len())
	}
	if dlq.Dropped() != 3 || stats.Dropped() != 3 {
		t.Fatalf("dropped %d / %d, want 3", dlq.Dropped(), stats.Dropped())
	}
	if stats.Quarantined() != 2 {
		t.Fatalf("Quarantined() = %d", stats.Quarantined())
	}
}

func TestSupervisedRetryDiscardsPartialEmissions(t *testing.T) {
	// The item emits once and then fails on its first attempt; a retry
	// must not leave the first attempt's emission downstream.
	var attempts atomic.Int64
	fn := func(_ context.Context, v int, emit Emit[int]) error {
		if err := emit(v); err != nil {
			return err
		}
		if attempts.Add(1) == 1 {
			return errors.New("fail after emit")
		}
		return nil
	}
	sup := &Supervisor[int]{Retry: RetryPolicy{MaxRetries: 2, BaseBackoff: time.Microsecond}}
	got, _, err := runSupervisedInts(t, sup, 1, fn, []int{9})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("retry duplicated emissions: %v", got)
	}
}

func TestSupervisedDoesNotRetryCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g, gctx := NewGroup(ctx)
	reg := NewStatsRegistry()
	in := NewQueue[int]("in", 2)
	out := NewQueue[int]("out", 2)
	started := make(chan struct{})
	fn := func(c context.Context, _ int, _ Emit[int]) error {
		close(started)
		<-c.Done()
		return c.Err()
	}
	RunSource(g, gctx, reg, "src", func(_ context.Context, emit Emit[int]) error {
		return emit(1)
	}, in)
	stats := RunSupervisedTransform(g, gctx, reg, "work", 1, &Supervisor[int]{
		Retry: RetryPolicy{MaxRetries: 100, BaseBackoff: time.Hour},
	}, fn, in, out)
	RunSink(g, gctx, reg, "sink", 1, func(context.Context, int) error { return nil }, out)
	<-started
	cancel()
	if err := g.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if stats.Retries() != 0 {
		t.Fatalf("cancellation was retried %d times", stats.Retries())
	}
}

func TestSupervisedSinkQuarantines(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	reg := NewStatsRegistry()
	in := NewQueue[int]("in", 4)
	RunSource(g, ctx, reg, "src", func(_ context.Context, emit Emit[int]) error {
		for v := 1; v <= 4; v++ {
			if err := emit(v); err != nil {
				return err
			}
		}
		return nil
	}, in)
	var kept []int
	var mu sync.Mutex
	dlq := NewDeadLetterQueue[int](4)
	stats := RunSupervisedSink(g, ctx, reg, "sink", 1, &Supervisor[int]{
		Retry: RetryPolicy{MaxRetries: 1, BaseBackoff: time.Microsecond},
		DLQ:   dlq,
	}, func(_ context.Context, v int) error {
		if v == 2 {
			return errors.New("poison")
		}
		mu.Lock()
		kept = append(kept, v)
		mu.Unlock()
		return nil
	}, in)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(kept) != 3 {
		t.Fatalf("kept %v", kept)
	}
	if stats.Quarantined() != 1 || dlq.Len() != 1 {
		t.Fatalf("quarantined %d, dlq %d", stats.Quarantined(), dlq.Len())
	}
}

func TestSupervisedDynamicTransformRetries(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	reg := NewStatsRegistry()
	in := NewQueue[int]("in", 8)
	out := NewQueue[int]("out", 8)
	var failures atomic.Int64
	fn := func(_ context.Context, v int, emit Emit[int]) error {
		if v == 5 && failures.Add(1) == 1 {
			panic("dynamic kaboom")
		}
		return emit(v)
	}
	RunSource(g, ctx, reg, "src", func(_ context.Context, emit Emit[int]) error {
		for v := 1; v <= 8; v++ {
			if err := emit(v); err != nil {
				return err
			}
		}
		return nil
	}, in)
	dt := RunSupervisedDynamicTransform(g, ctx, reg, "work", 1, &Supervisor[int]{
		Retry: RetryPolicy{MaxRetries: 2, BaseBackoff: time.Microsecond},
	}, fn, in, out)
	sink, snapshot := Collect[int]()
	RunSink(g, ctx, reg, "sink", 1, sink, out)
	dt.AddClone()
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := snapshot(); len(got) != 8 {
		t.Fatalf("got %d items", len(got))
	}
	if dt.Stats().Retries() != 1 {
		t.Fatalf("Retries() = %d", dt.Stats().Retries())
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	if d := p.Backoff(1, 0); d != time.Millisecond {
		t.Fatalf("attempt 1: %v", d)
	}
	if d := p.Backoff(2, 0); d != 2*time.Millisecond {
		t.Fatalf("attempt 2: %v", d)
	}
	if d := p.Backoff(10, 0); d != 4*time.Millisecond {
		t.Fatalf("attempt 10 should cap at MaxBackoff: %v", d)
	}
}
