// Goroutine-leak coverage for the governor's engine-level cancellation
// paths. These live in the external test package so they can drive the
// real engine (which imports stream) through a whole-process goroutine
// census: after a deadline fires mid-recovery or a stall watchdog
// cancels and the plan retries, nothing — replicas, sources, closers,
// watchdogs — may survive Execute returning.
package stream_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/engine"
	"streamkm/internal/fault"
	"streamkm/internal/grid"
)

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (scheduler cleanup is asynchronous). Mirrors the helper in
// the internal test package, which this package cannot import.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// leakCells builds a one-cell workload that chunks into 4 tasks.
func leakCells(t *testing.T) ([]engine.Cell, engine.Query, engine.PhysicalPlan) {
	t.Helper()
	spec := dataset.DefaultCellSpec()
	spec.Clusters = 5
	spec.Dim = 4
	set, err := dataset.GenerateCell(spec, 600, 21)
	if err != nil {
		t.Fatal(err)
	}
	cells := []engine.Cell{{Key: grid.CellKey{Lat: 1, Lon: 1}, Points: set}}
	q := engine.Query{K: 5, Restarts: 2, Seed: 77}
	plan := engine.PhysicalPlan{ChunkPoints: 150, PartialClones: 1, QueueCapacity: 2}
	return cells, q, plan
}

// TestDeadlineDuringRecoveryLeavesNoGoroutines crashes the first
// attempt (forcing a journaled restart) and then wedges a chunk of the
// recovery attempt for far longer than the deadline, so the deadline
// expires while the plan is mid-recovery. The run fails loudly — no
// degraded option — and every pipeline goroutine must be gone.
func TestDeadlineDuringRecoveryLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cells, q, plan := leakCells(t)
	inj := fault.New(fault.Config{ErrorNth: 1, DelayNth: 3, DelayDur: 10 * time.Second})
	var restarts int
	exec := engine.NewExec(q, plan,
		engine.WithFaultInjection(inj),
		engine.WithRestarts(1),
		engine.WithOnRestart(func(int, error) { restarts++ }),
		engine.WithDeadline(300*time.Millisecond),
	)
	_, _, err := exec.Execute(context.Background(), cells)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the deadline", err)
	}
	if restarts != 1 {
		t.Fatalf("restarts = %d, want 1 journaled recovery before the deadline", restarts)
	}
	waitForGoroutines(t, baseline)
}

// TestStallRetryLeavesNoGoroutines wedges one chunk, lets the watchdog
// cancel the attempt, and lets the restart budget re-run the plan to a
// full answer. The stalled replica of the first attempt — parked inside
// the injected stall — must be released by the attempt cancellation,
// not abandoned.
func TestStallRetryLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cells, q, plan := leakCells(t)
	exec := engine.NewExec(q, plan,
		engine.WithFaultInjection(fault.StallNth(2)),
		engine.WithRestarts(1),
		engine.WithProgressTimeout(60*time.Millisecond),
	)
	results, stats, err := exec.Execute(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d, want the full single-cell answer", len(results))
	}
	if stats.Stalls != 1 || stats.Restarts != 1 {
		t.Fatalf("stalls = %d restarts = %d, want one watchdog cancel and one retry",
			stats.Stalls, stats.Restarts)
	}
	waitForGoroutines(t, baseline)
}
