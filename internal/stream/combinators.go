package stream

import (
	"context"
	"fmt"
	"sync"
)

// This file provides the plan-building combinators Conquest's optimizer
// composed physical plans from (§4: "a variety of inter- and intra-
// operator parallelism (e.g., pipelining, partitioning, multi-casting)"):
// Map/Filter/Batch element adapters, hash/round-robin partitioning into
// parallel sub-streams, multicast to several consumers, and union of
// several producers.

// Map runs a pure per-item function as a cloned transform stage.
func Map[I, O any](g *Group, ctx context.Context, reg *StatsRegistry, name string, clones int, f func(I) (O, error), in *Queue[I], out *Queue[O]) *OpStats {
	return RunTransform(g, ctx, reg, name, clones,
		func(_ context.Context, item I, emit Emit[O]) error {
			o, err := f(item)
			if err != nil {
				return err
			}
			return emit(o)
		}, in, out)
}

// Filter forwards only items satisfying pred.
func Filter[T any](g *Group, ctx context.Context, reg *StatsRegistry, name string, clones int, pred func(T) bool, in *Queue[T], out *Queue[T]) *OpStats {
	return RunTransform(g, ctx, reg, name, clones,
		func(_ context.Context, item T, emit Emit[T]) error {
			if pred(item) {
				return emit(item)
			}
			return nil
		}, in, out)
}

// Batch groups consecutive items into slices of at most size elements,
// flushing a partial batch at end of stream. It is how a scan operator
// turns a point stream into memory-budget chunks.
func Batch[T any](g *Group, ctx context.Context, reg *StatsRegistry, name string, size int, in *Queue[T], out *Queue[[]T]) (*OpStats, error) {
	if size <= 0 {
		return nil, fmt.Errorf("stream: batch size must be positive, got %d", size)
	}
	stats := reg.register(name, 1)
	g.Go(name, func() error {
		defer out.Close()
		buf := make([]T, 0, size)
		for {
			item, ok, err := in.Get(ctx)
			if err != nil {
				return err
			}
			if !ok {
				if len(buf) > 0 {
					if err := out.Put(ctx, buf); err != nil {
						return err
					}
					stats.emitted.Add(1)
				}
				return nil
			}
			stats.processed.Add(1)
			buf = append(buf, item)
			if len(buf) == size {
				if err := out.Put(ctx, buf); err != nil {
					return err
				}
				stats.emitted.Add(1)
				buf = make([]T, 0, size)
			}
		}
	})
	return stats, nil
}

// Partition distributes items across the output queues: by hash when
// hash is non-nil (items with equal hash go to the same output — the
// Fig. 2 Method C point-partitioning), round-robin otherwise. All
// outputs are closed when the input is exhausted.
func Partition[T any](g *Group, ctx context.Context, reg *StatsRegistry, name string, hash func(T) uint64, in *Queue[T], outs []*Queue[T]) (*OpStats, error) {
	if len(outs) == 0 {
		return nil, fmt.Errorf("stream: partition needs at least one output")
	}
	stats := reg.register(name, 1)
	g.Go(name, func() error {
		defer func() {
			for _, o := range outs {
				o.Close()
			}
		}()
		next := 0
		for {
			item, ok, err := in.Get(ctx)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			stats.processed.Add(1)
			var idx int
			if hash != nil {
				idx = int(hash(item) % uint64(len(outs)))
			} else {
				idx = next
				next = (next + 1) % len(outs)
			}
			if err := outs[idx].Put(ctx, item); err != nil {
				return err
			}
			stats.emitted.Add(1)
		}
	})
	return stats, nil
}

// Multicast copies every input item to every output queue — Conquest's
// multi-casting, e.g. broadcasting new centroids to all slaves. Outputs
// close when the input is exhausted.
func Multicast[T any](g *Group, ctx context.Context, reg *StatsRegistry, name string, in *Queue[T], outs []*Queue[T]) (*OpStats, error) {
	if len(outs) == 0 {
		return nil, fmt.Errorf("stream: multicast needs at least one output")
	}
	stats := reg.register(name, 1)
	g.Go(name, func() error {
		defer func() {
			for _, o := range outs {
				o.Close()
			}
		}()
		for {
			item, ok, err := in.Get(ctx)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			stats.processed.Add(1)
			for _, o := range outs {
				if err := o.Put(ctx, item); err != nil {
					return err
				}
				stats.emitted.Add(1)
			}
		}
	})
	return stats, nil
}

// Union forwards items from all inputs into one output, closing it when
// every input is exhausted — the fan-in mirror of Partition.
func Union[T any](g *Group, ctx context.Context, reg *StatsRegistry, name string, ins []*Queue[T], out *Queue[T]) (*OpStats, error) {
	if len(ins) == 0 {
		return nil, fmt.Errorf("stream: union needs at least one input")
	}
	stats := reg.register(name, len(ins))
	var live sync.WaitGroup
	live.Add(len(ins))
	for i, in := range ins {
		in := in
		g.Go(fmt.Sprintf("%s#%d", name, i), func() error {
			defer live.Done()
			for {
				item, ok, err := in.Get(ctx)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				stats.processed.Add(1)
				if err := out.Put(ctx, item); err != nil {
					return err
				}
				stats.emitted.Add(1)
			}
		})
	}
	g.Go(name+".close", func() error {
		live.Wait()
		out.Close()
		return nil
	})
	return stats, nil
}
