package stream

import (
	"context"
	"fmt"
	"sync"
)

// Group manages a set of cooperating operator goroutines: the first error
// cancels the shared context, and Wait collects the error after all
// goroutines finish. It is a minimal errgroup built on the standard
// library only.
type Group struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once
	err    error
}

// NewGroup derives a cancellable context from parent and returns the
// group plus that context; operators must use the returned context so
// they observe group-wide cancellation.
func NewGroup(parent context.Context) (*Group, context.Context) {
	ctx, cancel := context.WithCancel(parent)
	return &Group{ctx: ctx, cancel: cancel}, ctx
}

// Go runs f on a new goroutine. A panic inside f is converted to an error
// so one faulty operator cannot crash the whole process; the name tags
// the error with the operator identity.
func (g *Group) Go(name string, f func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				g.report(fmt.Errorf("stream: operator %q panicked: %v", name, r))
			}
		}()
		if err := f(); err != nil {
			g.report(fmt.Errorf("stream: operator %q: %w", name, err))
		}
	}()
}

func (g *Group) report(err error) {
	g.once.Do(func() {
		g.err = err
		g.cancel()
	})
}

// Wait blocks until every goroutine started with Go has returned, then
// releases the context and returns the first error (or nil).
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}
