package stream

import (
	"context"
	"errors"
	"sort"
	"testing"
)

func TestMapCombinator(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 4)
	out := NewQueue[int]("out", 4)
	RunSource(g, ctx, nil, "src", rangeSource(20), in)
	Map(g, ctx, nil, "square", 3, func(x int) (int, error) { return x * x, nil }, in, out)
	sink, snap := Collect[int]()
	RunSink(g, ctx, nil, "sink", 1, sink, out)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	got := snap()
	sort.Ints(got)
	if len(got) != 20 || got[19] != 19*19 {
		t.Fatalf("map results wrong: %v", got)
	}
}

func TestMapError(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 4)
	out := NewQueue[int]("out", 4)
	RunSource(g, ctx, nil, "src", rangeSource(10), in)
	boom := errors.New("bad")
	Map(g, ctx, nil, "fail", 1, func(x int) (int, error) {
		if x == 3 {
			return 0, boom
		}
		return x, nil
	}, in, out)
	sink, _ := Collect[int]()
	RunSink(g, ctx, nil, "sink", 1, sink, out)
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v", err)
	}
}

func TestFilterCombinator(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 4)
	out := NewQueue[int]("out", 4)
	RunSource(g, ctx, nil, "src", rangeSource(100), in)
	Filter(g, ctx, nil, "even", 2, func(x int) bool { return x%2 == 0 }, in, out)
	sink, snap := Collect[int]()
	RunSink(g, ctx, nil, "sink", 1, sink, out)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	got := snap()
	if len(got) != 50 {
		t.Fatalf("filtered to %d items, want 50", len(got))
	}
	for _, v := range got {
		if v%2 != 0 {
			t.Fatalf("odd item %d passed the filter", v)
		}
	}
}

func TestBatchCombinator(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 4)
	out := NewQueue[[]int]("out", 4)
	RunSource(g, ctx, nil, "src", rangeSource(10), in)
	if _, err := Batch(g, ctx, nil, "batch", 3, in, out); err != nil {
		t.Fatal(err)
	}
	sink, snap := Collect[[]int]()
	RunSink(g, ctx, nil, "sink", 1, sink, out)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	got := snap()
	// 10 items in batches of 3: 3+3+3+1
	if len(got) != 4 {
		t.Fatalf("got %d batches", len(got))
	}
	total := 0
	for i, b := range got {
		if i < 3 && len(b) != 3 {
			t.Fatalf("batch %d has %d items", i, len(b))
		}
		total += len(b)
	}
	if total != 10 {
		t.Fatalf("batches hold %d items", total)
	}
}

func TestBatchValidation(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 4)
	out := NewQueue[[]int]("out", 4)
	if _, err := Batch(g, ctx, nil, "batch", 0, in, out); err == nil {
		t.Fatal("size=0 should error")
	}
	in.Close()
	_ = g.Wait()
}

func TestPartitionRoundRobin(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 4)
	outs := []*Queue[int]{NewQueue[int]("o0", 8), NewQueue[int]("o1", 8), NewQueue[int]("o2", 8)}
	RunSource(g, ctx, nil, "src", rangeSource(9), in)
	if _, err := Partition(g, ctx, nil, "part", nil, in, outs); err != nil {
		t.Fatal(err)
	}
	snaps := make([]func() []int, len(outs))
	for i, o := range outs {
		sink, snap := Collect[int]()
		RunSink(g, ctx, nil, "sink", 1, sink, o)
		snaps[i] = snap
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, snap := range snaps {
		got := snap()
		if len(got) != 3 {
			t.Fatalf("partition %d received %d items", i, len(got))
		}
	}
}

func TestPartitionByHash(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 4)
	outs := []*Queue[int]{NewQueue[int]("o0", 32), NewQueue[int]("o1", 32)}
	RunSource(g, ctx, nil, "src", rangeSource(40), in)
	if _, err := Partition(g, ctx, nil, "part", func(x int) uint64 { return uint64(x) }, in, outs); err != nil {
		t.Fatal(err)
	}
	snaps := make([]func() []int, len(outs))
	for i, o := range outs {
		sink, snap := Collect[int]()
		RunSink(g, ctx, nil, "sink", 1, sink, o)
		snaps[i] = snap
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	for parity, snap := range snaps {
		for _, v := range snap() {
			if v%2 != parity {
				t.Fatalf("item %d routed to partition %d", v, parity)
			}
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 4)
	if _, err := Partition(g, ctx, nil, "part", nil, in, nil); err == nil {
		t.Fatal("no outputs should error")
	}
	in.Close()
	_ = g.Wait()
}

func TestMulticastDeliversToAll(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 4)
	outs := []*Queue[int]{NewQueue[int]("o0", 32), NewQueue[int]("o1", 32), NewQueue[int]("o2", 32)}
	RunSource(g, ctx, nil, "src", rangeSource(15), in)
	st, err := Multicast(g, ctx, nil, "mc", in, outs)
	if err != nil {
		t.Fatal(err)
	}
	snaps := make([]func() []int, len(outs))
	for i, o := range outs {
		sink, snap := Collect[int]()
		RunSink(g, ctx, nil, "sink", 1, sink, o)
		snaps[i] = snap
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, snap := range snaps {
		got := snap()
		if len(got) != 15 {
			t.Fatalf("consumer %d received %d items", i, len(got))
		}
		sort.Ints(got)
		for j, v := range got {
			if v != j {
				t.Fatalf("consumer %d missing item %d", i, j)
			}
		}
	}
	if st.Emitted() != 45 {
		t.Fatalf("multicast emitted %d, want 45", st.Emitted())
	}
}

func TestMulticastValidation(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 4)
	if _, err := Multicast(g, ctx, nil, "mc", in, nil); err == nil {
		t.Fatal("no outputs should error")
	}
	in.Close()
	_ = g.Wait()
}

func TestUnionMergesAllInputs(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	ins := []*Queue[int]{NewQueue[int]("i0", 4), NewQueue[int]("i1", 4)}
	out := NewQueue[int]("out", 8)
	RunSource(g, ctx, nil, "src0", rangeSource(10), ins[0])
	RunSource(g, ctx, nil, "src1", func(ctx context.Context, emit Emit[int]) error {
		for i := 100; i < 110; i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
		return nil
	}, ins[1])
	if _, err := Union(g, ctx, nil, "union", ins, out); err != nil {
		t.Fatal(err)
	}
	sink, snap := Collect[int]()
	RunSink(g, ctx, nil, "sink", 1, sink, out)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	got := snap()
	if len(got) != 20 {
		t.Fatalf("union delivered %d items", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestUnionValidation(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	out := NewQueue[int]("out", 4)
	if _, err := Union(g, ctx, nil, "union", nil, out); err == nil {
		t.Fatal("no inputs should error")
	}
	_ = g.Wait()
}

// Partition into parallel workers, then Union back: the classic
// partitioned intra-operator parallelism shape, end to end.
func TestPartitionProcessUnionPipeline(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 8)
	const workers = 4
	mids := make([]*Queue[int], workers)
	outs := make([]*Queue[int], workers)
	for i := range mids {
		mids[i] = NewQueue[int]("mid", 8)
		outs[i] = NewQueue[int]("wout", 8)
	}
	merged := NewQueue[int]("merged", 8)
	RunSource(g, ctx, nil, "src", rangeSource(200), in)
	if _, err := Partition(g, ctx, nil, "part", nil, in, mids); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		Map(g, ctx, nil, "worker", 1, func(x int) (int, error) { return x + 1000, nil }, mids[i], outs[i])
	}
	if _, err := Union(g, ctx, nil, "union", outs, merged); err != nil {
		t.Fatal(err)
	}
	sink, snap := Collect[int]()
	RunSink(g, ctx, nil, "sink", 1, sink, merged)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	got := snap()
	if len(got) != 200 {
		t.Fatalf("pipeline delivered %d items", len(got))
	}
	sort.Ints(got)
	if got[0] != 1000 || got[199] != 1199 {
		t.Fatalf("range wrong: %d..%d", got[0], got[199])
	}
}
