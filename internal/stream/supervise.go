package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"streamkm/internal/rng"
)

// This file adds operator supervision to the stream model: the paper's
// Conquest engine keeps long-running queries alive across operator
// failures (§4), so the reproduction's operators need more survival
// skills than "first error cancels the plan". A supervised operator
// recovers panics into typed errors, retries a failing item with
// exponential backoff plus deterministic jitter, and after the retry
// budget is exhausted quarantines the poison item into a bounded
// dead-letter queue instead of wedging the pipeline. Retry, quarantine,
// and drop counts are surfaced through OpStats.

// PanicError is an operator panic recovered into a typed error, so
// supervisors and callers can distinguish crashes from ordinary failures.
type PanicError struct {
	// Op is the operator (clone) name that panicked.
	Op string
	// Value is the recovered panic value.
	Value any
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("stream: operator %q panicked: %v", e.Op, e.Value)
}

// RetryPolicy bounds how a supervised operator retries one failing item.
// The zero value means "no retries": the first failure is final.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure;
	// an item is tried at most MaxRetries+1 times.
	MaxRetries int
	// BaseBackoff is the delay before the first retry (0 = 1ms,
	// negative = retry immediately with no backoff at all); each
	// further retry doubles it up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 = 64 * BaseBackoff).
	MaxBackoff time.Duration
	// Jitter is the fraction of the backoff randomized away, in [0, 1]
	// (0 = no jitter). Jittered delays decorrelate cloned operators
	// retrying simultaneously after a shared-resource hiccup.
	Jitter float64
}

// Backoff returns the delay before retry number attempt (1-based). The
// jitter is drawn from a fresh generator seeded from (seed, attempt), so
// a given (policy, seed, attempt) triple always yields the same delay —
// the backoff schedule of one item is a pure function of its seed, not
// of how many other items happened to retry before it on the same
// shared generator. That reproducibility is what lets chaos tests
// assert on retry timings.
func (p RetryPolicy) Backoff(attempt int, seed uint64) time.Duration {
	if p.BaseBackoff < 0 {
		return 0
	}
	base := p.BaseBackoff
	if base == 0 {
		base = time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 64 * base
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		r := rng.New(seed + uint64(attempt)*0x9e3779b97f4a7c15)
		// Uniform in [1-j, 1] of the computed delay.
		d = time.Duration(float64(d) * (1 - j*r.Float64()))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// retryAbort reports whether err is a plan-lifecycle signal —
// cancellation, deadline expiry, or queue teardown — that must abort a
// retry loop immediately: they are not item failures.
func retryAbort(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrQueueClosed)
}

// Attempts drives fn under the policy: fn is called with the 1-based
// attempt number until it returns nil or the retry budget is
// exhausted, with Backoff-shaped sleeps (deterministic jitter derived
// from seed per attempt) separating attempts. onRetry, when non-nil,
// observes each re-attempt before its backoff sleep. Lifecycle errors
// (see retryAbort) abort immediately. It returns the number of attempts
// made and fn's final error. This is the one retry loop shared by
// supervised operators, the streamkm facade's flush path, and the
// distributed worker pool's transport retries.
func (p RetryPolicy) Attempts(ctx context.Context, seed uint64, onRetry func(attempt int, err error), fn func(attempt int) error) (int, error) {
	attempt := 0
	for {
		attempt++
		err := fn(attempt)
		if err == nil {
			return attempt, nil
		}
		if retryAbort(err) || attempt > p.MaxRetries {
			return attempt, err
		}
		if onRetry != nil {
			onRetry(attempt, err)
		}
		if serr := sleep(ctx, p.Backoff(attempt, seed)); serr != nil {
			return attempt, serr
		}
	}
}

// sleep waits for d or until ctx is cancelled.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// DeadLetter records one quarantined item: the poison input, the operator
// that gave up on it, how many attempts it survived, and the final error.
type DeadLetter[I any] struct {
	Item     I
	Op       string
	Attempts int
	Err      error
}

// DeadLetterQueue is a bounded, concurrency-safe quarantine for poison
// items. When full, further items are counted as dropped rather than
// retained, so a flood of bad input cannot re-create the unbounded-state
// problem the stream model exists to avoid.
type DeadLetterQueue[I any] struct {
	mu      sync.Mutex
	cap     int
	items   []DeadLetter[I]
	dropped int64
}

// DefaultDeadLetterCapacity is used when a queue is created with a
// non-positive capacity.
const DefaultDeadLetterCapacity = 64

// NewDeadLetterQueue returns a quarantine holding at most capacity items
// (<= 0 selects DefaultDeadLetterCapacity).
func NewDeadLetterQueue[I any](capacity int) *DeadLetterQueue[I] {
	if capacity <= 0 {
		capacity = DefaultDeadLetterCapacity
	}
	return &DeadLetterQueue[I]{cap: capacity}
}

// add quarantines d, reporting false when the queue was full and the item
// was dropped instead.
func (q *DeadLetterQueue[I]) add(d DeadLetter[I]) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) >= q.cap {
		q.dropped++
		return false
	}
	q.items = append(q.items, d)
	return true
}

// Len returns the number of quarantined items.
func (q *DeadLetterQueue[I]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Dropped returns the number of items lost to overflow.
func (q *DeadLetterQueue[I]) Dropped() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

// Items returns a snapshot of the quarantined records.
func (q *DeadLetterQueue[I]) Items() []DeadLetter[I] {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]DeadLetter[I], len(q.items))
	copy(out, q.items)
	return out
}

// Supervisor configures a supervised operator: how it retries and where
// poison items go. A nil DLQ with a non-nil Supervisor means exhausted
// items fail the plan (retry-only supervision).
type Supervisor[I any] struct {
	// Retry bounds per-item re-attempts.
	Retry RetryPolicy
	// DLQ, when non-nil, receives items that exhausted their retries
	// instead of failing the plan.
	DLQ *DeadLetterQueue[I]
	// OnQuarantine, when non-nil, is invoked for every item diverted to
	// the DLQ (after it was added or dropped). It must be safe for
	// concurrent use by cloned operators.
	OnQuarantine func(DeadLetter[I])
	// JitterSeed derives the deterministic backoff jitter stream.
	JitterSeed uint64
	// ItemSeed, when non-nil, folds a per-item key into the jitter seed,
	// making each item's backoff schedule a pure function of the item —
	// reproducible regardless of which clone retries it or what retried
	// before. Nil means every item shares the JitterSeed-derived
	// schedule.
	ItemSeed func(I) uint64
}

// itemSeed computes the jitter seed for one item.
func (s *Supervisor[I]) itemSeed(item I) uint64 {
	seed := s.JitterSeed
	if s.ItemSeed != nil {
		seed ^= s.ItemSeed(item)
	}
	return seed
}

// attemptTransform runs fn once with panic recovery, buffering emissions
// so a failing attempt emits nothing downstream (retries would otherwise
// duplicate output).
func attemptTransform[I, O any](ctx context.Context, op string, fn TransformFunc[I, O], item I, buf *[]O) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Op: op, Value: r}
		}
	}()
	*buf = (*buf)[:0]
	emit := func(v O) error {
		*buf = append(*buf, v)
		return nil
	}
	return fn(ctx, item, emit)
}

// superviseItem pushes one item through fn under the supervisor's policy.
// It returns the buffered emissions on success; ok=false means the item
// was quarantined (or dropped) and the caller should continue with the
// next item; a non-nil error fails the operator.
func superviseItem[I, O any](ctx context.Context, op string, sup *Supervisor[I], seed uint64, stats *OpStats, fn TransformFunc[I, O], item I, buf *[]O) (ok bool, err error) {
	attempts, err := sup.Retry.Attempts(ctx, seed,
		func(int, error) { stats.retries.Add(1) },
		func(int) error {
			err := attemptTransform(ctx, op, fn, item, buf)
			var pe *PanicError
			if errors.As(err, &pe) {
				stats.panics.Add(1)
			}
			return err
		})
	if err == nil {
		return true, nil
	}
	if retryAbort(err) {
		return false, err
	}
	if sup.DLQ == nil {
		return false, fmt.Errorf("stream: %s: item failed %d attempts: %w", op, attempts, err)
	}
	d := DeadLetter[I]{Item: item, Op: op, Attempts: attempts, Err: err}
	if sup.DLQ.add(d) {
		stats.quarantined.Add(1)
	} else {
		stats.dropped.Add(1)
	}
	if sup.OnQuarantine != nil {
		sup.OnQuarantine(d)
	}
	return false, nil
}

// RunSupervisedTransform starts clones replicas of fn like RunTransform,
// but under supervision: panics become typed errors, failing items are
// retried per the policy, and poison items are quarantined to the DLQ
// (when configured) instead of cancelling the plan. Emissions of a
// failing attempt are discarded, so retries never duplicate output.
// A nil supervisor degrades to RunTransform semantics.
func RunSupervisedTransform[I, O any](g *Group, ctx context.Context, reg *StatsRegistry, name string, clones int, sup *Supervisor[I], fn TransformFunc[I, O], in *Queue[I], out *Queue[O]) *OpStats {
	return RunStage(g, ctx, reg, StageConfig[I]{Name: name, Clones: clones, Sup: sup}, fn, in, out).Stats()
}

// RunSupervisedSink starts clones replicas of fn like RunSink, under the
// same supervision semantics as RunSupervisedTransform.
func RunSupervisedSink[I any](g *Group, ctx context.Context, reg *StatsRegistry, name string, clones int, sup *Supervisor[I], fn SinkFunc[I], in *Queue[I]) *OpStats {
	return sinkStage(g, ctx, reg, StageConfig[I]{Name: name, Clones: clones, Sup: sup}, fn, in).Stats()
}
