// Package stream implements the data-stream operator model of §3 (Fig. 3):
// operators consume items from an input queue, process them, and emit
// items to an output queue consumed immediately by the next operator, so
// the whole plan executes in a pipelined fashion. Producer and consumer
// operators are connected by bounded "smart queues" that provide
// backpressure (no buffer overflow) and block-on-empty (no underflow).
// Operators can be cloned: several goroutine replicas share one input
// queue and one output queue, which is the paper's mechanism for
// parallelizing the expensive partial k-means operator.
package stream

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueClosed is returned by Put on a queue whose producers already
// closed it.
var ErrQueueClosed = errors.New("stream: queue closed")

// DefaultQueueCapacity is used when a queue is created with a
// non-positive capacity.
const DefaultQueueCapacity = 64

// Queue is a bounded, closable FIFO connecting a producer operator to a
// consumer operator. All methods are safe for concurrent use by multiple
// producers and consumers (cloned operators share queues).
type Queue[T any] struct {
	name     string
	ch       chan T
	done     chan struct{}
	enqueued atomic.Int64
	dequeued atomic.Int64
	maxLen   atomic.Int64
	closed   atomic.Bool
}

// NewQueue returns a queue with the given diagnostic name and capacity.
// Capacity <= 0 selects DefaultQueueCapacity.
func NewQueue[T any](name string, capacity int) *Queue[T] {
	if capacity <= 0 {
		capacity = DefaultQueueCapacity
	}
	return &Queue[T]{
		name: name,
		ch:   make(chan T, capacity),
		done: make(chan struct{}),
	}
}

// Name returns the queue's diagnostic name.
func (q *Queue[T]) Name() string { return q.name }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return cap(q.ch) }

// Len returns the number of buffered items at this instant.
func (q *Queue[T]) Len() int { return len(q.ch) }

// HighWater returns the deepest the queue has been since the previous
// call (resetting the mark to the instantaneous depth). Monitors should
// prefer this over Len: on a loaded or single-CPU machine a sampler
// tends to get scheduled exactly when a consumer has just drained the
// queue, so instantaneous depth reads as zero even while producers spend
// most of their time blocked on a full buffer. The mark is recorded by
// Put at the moment each item lands, so congestion is visible no matter
// when the monitor runs.
func (q *Queue[T]) HighWater() int {
	return int(q.maxLen.Swap(int64(len(q.ch))))
}

// Enqueued returns the total number of items ever accepted.
func (q *Queue[T]) Enqueued() int64 { return q.enqueued.Load() }

// Dequeued returns the total number of items ever handed to consumers.
func (q *Queue[T]) Dequeued() int64 { return q.dequeued.Load() }

// Put blocks until the item is buffered, the context is cancelled, or the
// queue is closed. Closing a queue while producers are still calling Put
// is allowed: those Puts return ErrQueueClosed.
func (q *Queue[T]) Put(ctx context.Context, v T) error {
	if q.closed.Load() {
		return ErrQueueClosed
	}
	select {
	case q.ch <- v:
		q.enqueued.Add(1)
		n := int64(len(q.ch))
		for {
			cur := q.maxLen.Load()
			if n <= cur || q.maxLen.CompareAndSwap(cur, n) {
				break
			}
		}
		return nil
	case <-q.done:
		return ErrQueueClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Get blocks until an item is available, the queue is closed and drained,
// or the context is cancelled. ok is false exactly when the queue is
// exhausted (closed and empty).
func (q *Queue[T]) Get(ctx context.Context) (v T, ok bool, err error) {
	var zero T
	for {
		select {
		case item, open := <-q.ch:
			if !open {
				return zero, false, nil
			}
			q.dequeued.Add(1)
			return item, true, nil
		case <-q.done:
			// Closed: drain remaining buffered items before reporting
			// exhaustion.
			select {
			case item, open := <-q.ch:
				if !open {
					return zero, false, nil
				}
				q.dequeued.Add(1)
				return item, true, nil
			default:
				return zero, false, nil
			}
		case <-ctx.Done():
			return zero, false, ctx.Err()
		}
	}
}

// Close marks the queue as complete. It is idempotent. Consumers drain
// buffered items and then observe exhaustion; blocked producers are
// released with ErrQueueClosed.
func (q *Queue[T]) Close() {
	if q.closed.CompareAndSwap(false, true) {
		close(q.done)
	}
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed.Load() }

// Drain consumes and discards remaining items until exhaustion or context
// cancellation, returning the number discarded. Useful in teardown paths.
func (q *Queue[T]) Drain(ctx context.Context) (int, error) {
	n := 0
	for {
		_, ok, err := q.Get(ctx)
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}
