package stream

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the unified stage runner's distinguishing power: the
// supervision and dynamic-scaling capabilities must compose on one
// stage, and the retry helpers must behave identically for operators
// and external callers.

func TestStageSupervisedAndDynamicCompose(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	reg := NewStatsRegistry()
	in := NewQueue[int]("in", 4)
	out := NewQueue[int]("out", 200)
	release := make(chan struct{})
	var started atomic.Int32
	var failedOnce atomic.Bool
	// Each item fails its first attempt; clone 0 blocks until released
	// so added clones observably share the load. Supervision must
	// retry on every replica, including ones added after start.
	fn := func(_ context.Context, x int, emit Emit[int]) error {
		if x == 7 && !failedOnce.Swap(true) {
			return errors.New("transient")
		}
		started.Add(1)
		<-release
		return emit(x * 10)
	}
	sup := &Supervisor[int]{Retry: RetryPolicy{MaxRetries: 3, BaseBackoff: -1}}
	RunSource(g, ctx, reg, "src", rangeSource(40), in)
	st := RunStage(g, ctx, reg, StageConfig[int]{Name: "work", Clones: 1, Sup: sup}, fn, in, out)
	sink, snap := Collect[int]()
	RunSink(g, ctx, reg, "sink", 1, sink, out)

	deadline := time.After(2 * time.Second)
	for started.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("first item never reached the stage")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < 2; i++ {
		if !st.AddClone() {
			t.Fatal("AddClone refused while input open")
		}
	}
	if st.Clones() != 3 {
		t.Fatalf("clones = %d, want 3", st.Clones())
	}
	close(release)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := snap(); len(got) != 40 {
		t.Fatalf("delivered %d items, want 40", len(got))
	}
	if st.Stats().Retries() != 1 {
		t.Fatalf("retries = %d, want 1", st.Stats().Retries())
	}
	if st.Stats().Clones() != 3 {
		t.Fatalf("stats clones = %d, want 3", st.Stats().Clones())
	}
	if st.Stats().Busy() == 0 {
		t.Fatal("dynamic stage recorded no busy time")
	}
}

func TestStatsRegistryMergesByName(t *testing.T) {
	reg := NewStatsRegistry()
	a := reg.register("op", 2)
	a.processed.Add(5)
	b := reg.register("op", 1) // a rebuilt pipeline re-registers
	if a != b {
		t.Fatal("re-registering a name must return the same stats slot")
	}
	if b.Processed() != 5 {
		t.Fatalf("counters reset on re-register: processed = %d", b.Processed())
	}
	if b.Clones() != 2 {
		t.Fatalf("clones = %d, want high-water 2", b.Clones())
	}
	if n := len(reg.All()); n != 1 {
		t.Fatalf("registry holds %d entries, want 1", n)
	}
}

func TestRetryPolicyAttempts(t *testing.T) {
	// Succeeds on the 3rd attempt within budget.
	calls := 0
	var retried []int
	n, err := RetryPolicy{MaxRetries: 5, BaseBackoff: -1}.Attempts(context.Background(), 0,
		func(attempt int, _ error) { retried = append(retried, attempt) },
		func(attempt int) error {
			calls++
			if attempt < 3 {
				return errors.New("flaky")
			}
			return nil
		})
	if err != nil || n != 3 || calls != 3 {
		t.Fatalf("attempts = %d, calls = %d, err = %v", n, calls, err)
	}
	if len(retried) != 2 || retried[0] != 1 || retried[1] != 2 {
		t.Fatalf("onRetry saw %v", retried)
	}

	// Budget exhaustion returns the final error and attempt count.
	boom := errors.New("permanent")
	n, err = RetryPolicy{MaxRetries: 2, BaseBackoff: -1}.Attempts(context.Background(), 0, nil,
		func(int) error { return boom })
	if !errors.Is(err, boom) || n != 3 {
		t.Fatalf("attempts = %d, err = %v, want 3 attempts of boom", n, err)
	}

	// Lifecycle errors abort without retrying.
	n, err = RetryPolicy{MaxRetries: 5, BaseBackoff: -1}.Attempts(context.Background(), 0, nil,
		func(int) error { return context.Canceled })
	if !errors.Is(err, context.Canceled) || n != 1 {
		t.Fatalf("cancellation retried: attempts = %d, err = %v", n, err)
	}
}

func TestBackoffNegativeBaseDisablesDelay(t *testing.T) {
	p := RetryPolicy{MaxRetries: 3, BaseBackoff: -1, MaxBackoff: time.Second}
	for attempt := 1; attempt <= 10; attempt++ {
		if d := p.Backoff(attempt, 0); d != 0 {
			t.Fatalf("Backoff(%d) = %v, want 0 for negative base", attempt, d)
		}
	}
}

func TestSinkStageAddCloneAfterDrain(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	in := NewQueue[int]("in", 4)
	RunSource(g, ctx, nil, "src", rangeSource(3), in)
	st := sinkStage(g, ctx, nil, StageConfig[int]{Name: "sink", Clones: 2},
		func(context.Context, int) error { return nil }, in)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if st.AddClone() {
		t.Fatal("AddClone after drain should report false")
	}
	if st.Stats().Processed() != 3 {
		t.Fatalf("processed = %d, want 3", st.Stats().Processed())
	}
}
