// Package rng provides a small, deterministic pseudo-random number
// generator used by every stochastic component of the library (seeding,
// data generation, partition shuffling). Experiments in the paper are run
// R times with different seed sets; reproducibility of those runs requires
// a generator whose sequence is stable across platforms and Go versions,
// which math/rand does not guarantee across major versions. The core is
// xoshiro256**, seeded through splitmix64 as its authors recommend.
package rng

import "math"

// RNG is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; concurrent components each derive their own generator
// via Split.
type RNG struct {
	s [4]uint64
	// cached second Gaussian from Box-Muller
	gauss    float64
	hasGauss bool
}

// New returns a generator seeded from seed via splitmix64. Any seed,
// including zero, yields a well-mixed state.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new generator deterministically derived from r's current
// state. The child and parent sequences are decorrelated, letting each
// cloned operator own an independent stream.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd3833e804f4c574b)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + (t >> 32) + (aLo*bHi+t&mask32)>>32
	return hi, lo
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller, cached pair).
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Perm returns a uniformly random permutation of [0, n) using
// Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements via swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// MarshalBinary serializes the generator state (41 bytes), letting
// long-running streaming jobs checkpoint and resume with an identical
// random sequence.
func (r *RNG) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 41)
	for _, s := range r.s {
		out = appendUint64(out, s)
	}
	out = appendUint64(out, math.Float64bits(r.gauss))
	if r.hasGauss {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out, nil
}

// UnmarshalBinary restores state written by MarshalBinary.
func (r *RNG) UnmarshalBinary(data []byte) error {
	if len(data) != 41 {
		return errBadState
	}
	for i := range r.s {
		r.s[i] = readUint64(data[8*i:])
	}
	r.gauss = math.Float64frombits(readUint64(data[32:]))
	switch data[40] {
	case 0:
		r.hasGauss = false
	case 1:
		r.hasGauss = true
	default:
		return errBadState
	}
	return nil
}

type stateError string

func (e stateError) Error() string { return string(e) }

const errBadState = stateError("rng: invalid serialized state")

func appendUint64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func readUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// SampleWithoutReplacement returns k distinct uniformly random indices in
// [0, n). It panics if k > n or either argument is negative: the paper's
// seeding step always draws k <= N distinct points.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("rng: invalid sample size")
	}
	// Partial Fisher-Yates over an index array; O(n) space, O(k) swaps
	// after setup, exact uniformity.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}
