package rng

import "testing"

func TestMarshalRoundTripContinuesSequence(t *testing.T) {
	r := New(42)
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	r.NormFloat64() // leave a cached gaussian pending
	data, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(0)
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	// The restored generator must continue the exact sequence,
	// including the cached Box-Muller value.
	if a, b := r.NormFloat64(), restored.NormFloat64(); a != b {
		t.Fatalf("cached gaussian lost: %g vs %g", a, b)
	}
	for i := 0; i < 1000; i++ {
		if a, b := r.Uint64(), restored.Uint64(); a != b {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestUnmarshalRejectsBadState(t *testing.T) {
	r := New(1)
	if err := r.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil state should error")
	}
	if err := r.UnmarshalBinary(make([]byte, 40)); err == nil {
		t.Fatal("short state should error")
	}
	data, err := New(2).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	data[40] = 7 // invalid flag
	if err := r.UnmarshalBinary(data); err == nil {
		t.Fatal("bad flag should error")
	}
}
