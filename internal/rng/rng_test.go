package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced only %d distinct values", len(seen))
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("bucket %d count %d far from uniform 10000", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	var sum float64
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / 100000
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %g, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %g, want ~1", variance)
	}
}

func TestPerm(t *testing.T) {
	r := New(13)
	p := r.Perm(50)
	if len(p) != 50 {
		t.Fatalf("len = %d", len(p))
	}
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid at value %d", v)
		}
		seen[v] = true
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(17)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 8)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("duplicate %d after shuffle", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(19)
	s := r.SampleWithoutReplacement(100, 40)
	if len(s) != 40 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 100 {
			t.Fatalf("index %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
	}
	// k == n returns a permutation
	all := r.SampleWithoutReplacement(5, 5)
	if len(all) != 5 {
		t.Fatalf("full sample len = %d", len(all))
	}
	// k == 0 is allowed
	if got := r.SampleWithoutReplacement(5, 0); len(got) != 0 {
		t.Fatalf("empty sample len = %d", len(got))
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > n should panic")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestSplitDecorrelates(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and child produced %d/100 identical outputs", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(23).Split()
	c2 := New(23).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split children diverged at %d", i)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.NormFloat64()
	}
}
