package engine

import (
	"context"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/rng"
)

// This file is the engine's seam for §3.4 option-1 scale-up: "clone the
// partial k-means to as many machines as possible". The engine stays
// the single owner of planning, chunk slicing, RNG derivation,
// journaling, and merging; a RemotePartial merely runs one chunk's
// summarizer somewhere else. Because the chunk carries its pre-derived
// RNG state plus the operator spec, and the remote side reconstructs
// the identical summarizer from that spec, the returned centroids are
// bit-identical to local execution — every engine guarantee (retry,
// restart, journal resume, degraded merge) composes with remoting
// unchanged, for any summarizer.

// RemoteChunk is one summarizer work unit handed to a remote executor:
// the chunk's points, its identity within the plan, the pre-derived RNG
// whose state travels with it (so the remote draw sequence equals the
// local one), and the summarizer operator's spec. The spec is always
// transferable — it is the operator's canonical string encoding
// (core.SummarizerSpec), from which the remote side reconstructs the
// exact operator with core.NewSummarizer.
type RemoteChunk struct {
	Cell, Chunk, Total int
	Points             *dataset.Set
	RNG                *rng.RNG
	Spec               core.SummarizerSpec
}

// Assignment audits one attempt to run a chunk on a worker: which
// worker held the lease and, if the attempt failed, why. A successful
// trail ends with an Assignment whose Err is empty.
type Assignment struct {
	// Worker is the worker's address.
	Worker string
	// Err is the failure that ended this lease ("" = the lease
	// completed and produced the chunk's result).
	Err string
}

// RemotePartial computes one chunk's summary on a remote executor.
// Partial returns the result plus the assignment trail — every worker
// that held the chunk's lease, in order — which the engine journals for
// the exactly-once audit. Implementations must be safe for concurrent
// use by cloned partial operators, and must return results bit-identical
// to running the spec'd summarizer locally over the same chunk and RNG
// state (the loopback chaos suite pins this down for the dist package's
// implementation).
type RemotePartial interface {
	Partial(ctx context.Context, c RemoteChunk) (*core.PartialResult, []Assignment, error)
}

// WithRemoteWorkers routes every partial-k-means chunk through rp — the
// distributed runtime's entry point into the engine (internal/dist's
// worker pool is the canonical implementation). All other engine
// services compose unchanged: supervision retries a chunk whose remote
// execution permanently fails, WithDegradedResults degrades over the
// survivors when workers are lost beyond re-lease capacity, and the
// journal records each chunk's assignment trail alongside its result.
func WithRemoteWorkers(rp RemotePartial) ExecOption {
	return func(e *Exec) {
		e.remote = rp
		e.supervised = true
	}
}
