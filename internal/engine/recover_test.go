package engine

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"streamkm/internal/fault"
	"streamkm/internal/grid"
	"streamkm/internal/stream"
)

func recoverCells(t *testing.T) ([]Cell, Query, PhysicalPlan) {
	t.Helper()
	cells := []Cell{
		{Key: grid.CellKey{Lat: 1, Lon: 1}, Points: engineCell(t, 600, 21)},
		{Key: grid.CellKey{Lat: 2, Lon: 2}, Points: engineCell(t, 450, 22)},
	}
	q := Query{K: 5, Restarts: 2, Seed: 77}
	plan := PhysicalPlan{ChunkPoints: 150, PartialClones: 3, QueueCapacity: 4}
	return cells, q, plan
}

func assertSameResults(t *testing.T, got, want []CellResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i].Result, got[i].Result
		if len(g.Centroids) != len(w.Centroids) {
			t.Fatalf("cell %d: centroid counts differ", i)
		}
		for c := range w.Centroids {
			if g.Weights[c] != w.Weights[c] {
				t.Fatalf("cell %d centroid %d: weight %v != %v", i, c, g.Weights[c], w.Weights[c])
			}
			for d := range w.Centroids[c] {
				if g.Centroids[c][d] != w.Centroids[c][d] {
					t.Fatalf("cell %d centroid %d dim %d: %v != %v",
						i, c, d, g.Centroids[c][d], w.Centroids[c][d])
				}
			}
		}
		if g.MSE != w.MSE {
			t.Fatalf("cell %d: merge MSE %v != %v", i, g.MSE, w.MSE)
		}
		if got[i].PointMSE != want[i].PointMSE {
			t.Fatalf("cell %d: point MSE differs", i)
		}
	}
}

func TestSupervisedMatchesPlainExecute(t *testing.T) {
	cells, q, plan := recoverCells(t)
	want, _, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := ExecuteSupervised(context.Background(), cells, q, plan, Supervision{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
	if stats.Restarts != 0 {
		t.Fatalf("clean run restarted %d times", stats.Restarts)
	}
}

func TestSupervisedRetriesInjectedFaults(t *testing.T) {
	cells, q, plan := recoverCells(t)
	want, _, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Seed chosen so the rate draws actually fire within the plan's 7
	// chunks (some seeds inject nothing at these rates).
	inj := fault.New(fault.Config{Seed: 6, ErrorRate: 0.3, PanicRate: 0.1})
	got, stats, err := ExecuteSupervised(context.Background(), cells, q, plan, Supervision{
		Retry:  stream.RetryPolicy{MaxRetries: 25, BaseBackoff: time.Microsecond, Jitter: 0.5},
		Inject: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
	if inj.Faults() == 0 {
		t.Fatal("injector never fired; test exercised nothing")
	}
	if op := stats.Registry.Lookup("partial-kmeans"); op == nil || op.Retries() == 0 {
		t.Fatal("no retries recorded despite injected faults")
	}
}

func TestSupervisedRestartsAfterCrash(t *testing.T) {
	cells, q, plan := recoverCells(t)
	want, _, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	// No retry budget: the 3rd partial invocation kills the whole plan;
	// the executor must restart from the journal and still match.
	var restartErrs []error
	got, stats, err := ExecuteSupervised(context.Background(), cells, q, plan, Supervision{
		MaxRestarts: 2,
		Inject:      fault.ErrorNth(3),
		OnRestart:   func(_ int, err error) { restartErrs = append(restartErrs, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
	if stats.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", stats.Restarts)
	}
	if len(restartErrs) != 1 || !errors.Is(restartErrs[0], fault.ErrInjected) {
		t.Fatalf("OnRestart saw %v", restartErrs)
	}
}

func TestSupervisedRestartsAfterPanic(t *testing.T) {
	cells, q, plan := recoverCells(t)
	want, _, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := ExecuteSupervised(context.Background(), cells, q, plan, Supervision{
		MaxRestarts: 1,
		Inject:      fault.PanicNth(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
	if stats.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", stats.Restarts)
	}
}

func TestSupervisedGivesUpAfterMaxRestarts(t *testing.T) {
	cells, q, plan := recoverCells(t)
	inj := fault.New(fault.Config{ErrorRate: 1}) // every chunk fails, forever
	_, _, err := ExecuteSupervised(context.Background(), cells, q, plan, Supervision{
		MaxRestarts: 2,
		Inject:      inj,
	})
	if err == nil {
		t.Fatal("permanently failing plan should error")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
}

// TestJournalCheckpointRoundTripMidStream is the query-migration claim
// exercised for real: kill the plan mid-run while a cell still has
// in-flight (incomplete) chunks, serialize the journal, decode it into a
// fresh supervised execution, and demand bit-identical final centroids.
func TestJournalCheckpointRoundTripMidStream(t *testing.T) {
	cells, q, plan := recoverCells(t)
	want, _, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}

	// First process: crash mid-run with no restart budget. Which chunk
	// outputs reach the journal before cancellation wins is scheduling-
	// dependent, so probe kill points until the crash catches a cell
	// mid-flight — some chunks journaled, some not. (A quiescent journal
	// would degenerate to the checkpoint-at-rest case older tests cover.)
	var journal *Journal
	midFlight := false
	for attempt := 0; attempt < 40 && !midFlight; attempt++ {
		journal = NewJournal()
		_, _, err = ExecuteSupervised(context.Background(), cells, q, plan, Supervision{
			Inject:  fault.ErrorNth(int64(3 + attempt%5)),
			Journal: journal,
		})
		if err == nil {
			t.Fatal("expected the crashing attempt to die")
		}
		for ci := range cells {
			if got, total := journal.CellProgress(ci); got > 0 && got < total {
				midFlight = true
			}
		}
	}
	if !midFlight {
		t.Skip("could not catch a cell mid-flight after 40 crashes; scheduler too eager")
	}
	done := journal.Chunks()

	// Migrate: serialize, decode, resume in a "new process".
	var buf bytes.Buffer
	if err := journal.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Chunks() != done {
		t.Fatalf("round trip lost entries: %d != %d", restored.Chunks(), done)
	}
	got, stats, err := ExecuteSupervised(context.Background(), cells, q, plan, Supervision{
		Journal: restored,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
	// The resumed run must not have re-run journaled chunks.
	if op := stats.Registry.Lookup("partial-kmeans"); op != nil {
		if op.Processed() != int64(stats.Chunks-done) {
			t.Fatalf("resumed run processed %d chunks, want %d", op.Processed(), stats.Chunks-done)
		}
	}
}

func TestDecodeJournalRejectsCorruption(t *testing.T) {
	cells, q, plan := recoverCells(t)
	journal := NewJournal()
	_, _, err := ExecuteSupervised(context.Background(), cells, q, plan, Supervision{Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := journal.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"bad version": func() []byte { b := append([]byte{}, good...); b[4] = 9; return b }(),
		"truncated":   good[:len(good)-7],
		"flipped":     func() []byte { b := append([]byte{}, good...); b[len(b)-3] ^= 0x10; return b }(),
	}
	for name, data := range cases {
		if _, err := DecodeJournal(bytes.NewReader(data)); !errors.Is(err, ErrBadJournal) {
			t.Errorf("%s: err = %v, want ErrBadJournal", name, err)
		}
	}
}

func TestSupervisedCancellationIsNotRetried(t *testing.T) {
	cells, q, plan := recoverCells(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := ExecuteSupervised(ctx, cells, q, plan, Supervision{MaxRestarts: 100})
	if err == nil {
		t.Fatal("cancelled context should fail")
	}
}
