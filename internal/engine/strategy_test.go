package engine

import (
	"context"
	"math"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/grid"
)

func TestExecuteAllStrategiesAndModes(t *testing.T) {
	cells := []Cell{{Key: grid.CellKey{Lat: 2, Lon: 3}, Points: engineCell(t, 600, 51)}}
	plan := PhysicalPlan{ChunkPoints: 150, PartialClones: 2, QueueCapacity: 4}
	for _, strat := range []dataset.SplitStrategy{dataset.SplitRandom, dataset.SplitSalami, dataset.SplitSpatial} {
		for _, mode := range []core.MergeMode{core.MergeCollective, core.MergeIncremental} {
			q := Query{K: 8, Restarts: 2, Strategy: strat, MergeMode: mode, Seed: 5}
			results, stats, err := Execute(context.Background(), cells, q, plan)
			if err != nil {
				t.Fatalf("strategy=%v mode=%v: %v", strat, mode, err)
			}
			if len(results) != 1 || stats.Chunks != 4 {
				t.Fatalf("strategy=%v mode=%v: results=%d chunks=%d",
					strat, mode, len(results), stats.Chunks)
			}
			var w float64
			for _, x := range results[0].Result.Weights {
				w += x
			}
			if math.Abs(w-600) > 1e-6 {
				t.Fatalf("strategy=%v mode=%v: weight %g", strat, mode, w)
			}
		}
	}
}

func TestExecutePartialErrorSurfacesCellContext(t *testing.T) {
	// One cell small enough that chunking makes chunks below k.
	small := dataset.MustNewSet(4)
	for i := 0; i < 30; i++ {
		if err := small.Add([]float64{float64(i), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	cells := []Cell{{Key: grid.CellKey{Lat: 7, Lon: 8}, Points: small}}
	q := Query{K: 20, Restarts: 1, Seed: 1}
	plan := PhysicalPlan{ChunkPoints: 10, PartialClones: 1, QueueCapacity: 2}
	_, _, err := Execute(context.Background(), cells, q, plan)
	if err == nil {
		t.Fatal("k > chunk size should fail")
	}
	if want := "N07E008"; !contains(err.Error(), want) {
		t.Fatalf("error %q does not identify the failing cell %q", err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
