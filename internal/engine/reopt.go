package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"streamkm/internal/rng"
	"streamkm/internal/stream"
	"streamkm/internal/trace"
)

// This file implements dynamic query re-optimization (§4: Conquest
// "includes a query re-optimizer for dynamic adaptation of long running
// queries, but we did not exploit this component in the tests" — here we
// do). A monitor samples the chunk queue while the plan runs; sustained
// backlog means the partial operator is the bottleneck, and the
// re-optimizer responds by cloning another replica, up to the worker
// budget.

// ReoptPolicy tunes the monitor.
type ReoptPolicy struct {
	// SampleInterval is how often the monitor inspects the plan
	// (0 = 5ms).
	SampleInterval time.Duration
	// BacklogFraction is the queue fill level treated as congestion
	// (0 = 0.5).
	BacklogFraction float64
	// SustainedSamples is how many consecutive congested samples
	// trigger a scale-up (0 = 2).
	SustainedSamples int
	// MaxClones caps the partial operator's replica count (0 = no
	// scaling beyond the initial clone).
	MaxClones int
}

func (p ReoptPolicy) withDefaults() ReoptPolicy {
	if p.SampleInterval == 0 {
		p.SampleInterval = 5 * time.Millisecond
	}
	if p.BacklogFraction == 0 {
		p.BacklogFraction = 0.5
	}
	if p.SustainedSamples == 0 {
		p.SustainedSamples = 2
	}
	return p
}

// ReoptEvent records one re-optimizer decision.
type ReoptEvent struct {
	// At is the offset from plan start.
	At time.Duration
	// Clones is the replica count after the decision.
	Clones int
	// Backlog is the chunk-queue depth that triggered it.
	Backlog int
}

// ExecuteAdaptive runs the plan like Execute but starts the partial
// operator at plan.PartialClones replicas and lets the re-optimizer add
// replicas (up to policy.MaxClones) while the chunk queue stays
// congested. It returns the re-optimization decisions along with the
// results. Results are identical to Execute's for the same query
// (per-chunk RNGs are pre-derived; the collective merge is order-
// insensitive).
func ExecuteAdaptive(ctx context.Context, cells []Cell, q Query, plan PhysicalPlan, policy ReoptPolicy) ([]CellResult, *ExecStats, []ReoptEvent, error) {
	if err := validateExecArgs(cells, q, plan); err != nil {
		return nil, nil, nil, err
	}
	policy = policy.withDefaults()
	start := time.Now()
	master := rng.New(q.Seed)
	tasks, mergeRNGs, err := prepareTasks(cells, q, plan, master)
	if err != nil {
		return nil, nil, nil, err
	}

	g, gctx := stream.NewGroup(ctx)
	reg := stream.NewStatsRegistry()
	chunkQ := stream.NewQueue[chunkTask]("chunks", plan.QueueCapacity)
	partQ := stream.NewQueue[partialOut]("partials", plan.QueueCapacity)

	stream.RunSource(g, gctx, reg, "scan", taskSource(tasks), chunkQ)
	tr := trace.New(0)
	dt := stream.RunDynamicTransform(g, gctx, reg, "partial-kmeans", plan.PartialClones,
		partialTransform(cells, q, tr), chunkQ, partQ)
	sink, finalize := mergeCollector(cells, q, mergeRNGs, tr)
	stream.RunSink(g, gctx, reg, "merge-kmeans", 1, sink, partQ)

	// Monitor: sample the chunk queue until the partial stage drains.
	var (
		eventsMu sync.Mutex
		events   []ReoptEvent
	)
	monitorDone := make(chan struct{})
	g.Go("reoptimizer", func() error {
		defer close(monitorDone)
		congested := 0
		ticker := time.NewTicker(policy.SampleInterval)
		defer ticker.Stop()
		for {
			select {
			case <-gctx.Done():
				return nil
			case <-ticker.C:
			}
			remaining := int64(len(tasks)) - dt.Stats().Processed()
			if remaining <= 0 {
				return nil
			}
			// High-water depth since the last sample, not instantaneous
			// Len: the monitor tends to get scheduled exactly when the
			// partial operator has just drained the queue, which would
			// hide congestion entirely (most acutely on one CPU).
			depth := chunkQ.HighWater()
			if float64(depth) >= policy.BacklogFraction*float64(chunkQ.Cap()) {
				congested++
			} else {
				congested = 0
			}
			if congested >= policy.SustainedSamples && dt.Clones() < policy.MaxClones {
				if dt.AddClone() {
					eventsMu.Lock()
					events = append(events, ReoptEvent{
						At:      time.Since(start),
						Clones:  dt.Clones(),
						Backlog: depth,
					})
					eventsMu.Unlock()
				}
				congested = 0
			}
		}
	})

	if err := g.Wait(); err != nil {
		return nil, nil, nil, err
	}
	results, err := finalize()
	if err != nil {
		return nil, nil, nil, err
	}
	stats := &ExecStats{
		Registry: reg,
		Trace:    tr,
		Elapsed:  time.Since(start),
		Cells:    len(cells),
		Chunks:   len(tasks),
	}
	return results, stats, events, nil
}

// String formats an event for logs.
func (e ReoptEvent) String() string {
	return fmt.Sprintf("t=%v clones->%d (backlog %d)", e.At.Round(time.Millisecond), e.Clones, e.Backlog)
}
