package engine

import (
	"context"
	"fmt"
	"time"

	"streamkm/internal/stream"
)

// This file implements dynamic query re-optimization (§4: Conquest
// "includes a query re-optimizer for dynamic adaptation of long running
// queries, but we did not exploit this component in the tests" — here we
// do). A monitor samples the chunk queue while the plan runs; sustained
// backlog means the partial operator is the bottleneck, and the
// re-optimizer responds by cloning another replica, up to the worker
// budget. It is a service of the composable executor (WithReopt in
// exec.go), so it stacks with supervision: scaled-up replicas of a
// supervised stage retry and quarantine just like the initial ones.

// ReoptPolicy tunes the monitor.
type ReoptPolicy struct {
	// SampleInterval is how often the monitor inspects the plan
	// (0 = 5ms).
	SampleInterval time.Duration
	// BacklogFraction is the queue fill level treated as congestion
	// (0 = 0.5).
	BacklogFraction float64
	// SustainedSamples is how many consecutive congested samples
	// trigger a scale-up (0 = 2).
	SustainedSamples int
	// MaxClones caps the partial operator's replica count (0 = no
	// scaling beyond the initial clone).
	MaxClones int
}

func (p ReoptPolicy) withDefaults() ReoptPolicy {
	if p.SampleInterval == 0 {
		p.SampleInterval = 5 * time.Millisecond
	}
	if p.BacklogFraction == 0 {
		p.BacklogFraction = 0.5
	}
	if p.SustainedSamples == 0 {
		p.SustainedSamples = 2
	}
	return p
}

// ReoptEvent records one re-optimizer decision.
type ReoptEvent struct {
	// At is the offset from plan start.
	At time.Duration
	// Clones is the replica count after the decision.
	Clones int
	// Backlog is the chunk-queue depth that triggered it.
	Backlog int
}

// String formats an event for logs.
func (e ReoptEvent) String() string {
	return fmt.Sprintf("t=%v clones->%d (backlog %d)", e.At.Round(time.Millisecond), e.Clones, e.Backlog)
}

// runReoptMonitor starts the re-optimizer on the plan's group: it
// samples the chunk queue until this attempt's tasks drain, appending
// scale-up decisions to events. Restart-safe: the stage's processed
// counter aggregates across attempts, so progress is measured as a
// delta from this attempt's start against the attempt's own task
// count.
func (e *Exec) runReoptMonitor(g *stream.Group, gctx context.Context, st *stream.Stage[chunkTask, partialOut], chunkQ *stream.Queue[chunkTask], total int, start time.Time, events *[]ReoptEvent) {
	policy := e.reopt.withDefaults()
	processedStart := st.Stats().Processed()
	g.Go("reoptimizer", func() error {
		congested := 0
		ticker := time.NewTicker(policy.SampleInterval)
		defer ticker.Stop()
		for {
			select {
			case <-gctx.Done():
				return nil
			case <-ticker.C:
			}
			if st.Stats().Processed()-processedStart >= int64(total) {
				return nil
			}
			// High-water depth since the last sample, not instantaneous
			// Len: the monitor tends to get scheduled exactly when the
			// partial operator has just drained the queue, which would
			// hide congestion entirely (most acutely on one CPU).
			depth := chunkQ.HighWater()
			if float64(depth) >= policy.BacklogFraction*float64(chunkQ.Cap()) {
				congested++
			} else {
				congested = 0
			}
			if congested >= policy.SustainedSamples && st.Clones() < policy.MaxClones {
				if st.AddClone() {
					// Only this goroutine appends, and the executor reads
					// events after g.Wait returns, so no lock is needed.
					ev := ReoptEvent{
						At:      time.Since(start),
						Clones:  st.Clones(),
						Backlog: depth,
					}
					*events = append(*events, ev)
					if e.onReopt != nil {
						e.onReopt(ev)
					}
				}
				congested = 0
			}
		}
	})
}

// ExecuteAdaptive runs the plan like Execute but starts the partial
// operator at plan.PartialClones replicas and lets the re-optimizer add
// replicas (up to policy.MaxClones) while the chunk queue stays
// congested. It returns the re-optimization decisions along with the
// results. Results are identical to Execute's for the same query
// (per-chunk RNGs are pre-derived; the collective merge is order-
// insensitive).
//
// Deprecated: compose the same behaviour with
// NewExec(q, plan, WithReopt(policy)).Execute and read
// ExecStats.ReoptEvents, which also combines with the supervision and
// journaling options. This wrapper is kept for the engine's own use
// and tests; scripts/check.sh rejects new callers outside
// internal/engine.
func ExecuteAdaptive(ctx context.Context, cells []Cell, q Query, plan PhysicalPlan, policy ReoptPolicy) ([]CellResult, *ExecStats, []ReoptEvent, error) {
	results, stats, err := NewExec(q, plan, WithReopt(policy)).Execute(ctx, cells)
	if err != nil {
		return nil, nil, nil, err
	}
	return results, stats, stats.ReoptEvents, nil
}
