package engine

import (
	"fmt"
	"sort"
	"strings"
)

// This file gives the clustering request its §3.4 form: "a data flow
// query specified in the form of a dataflow diagram ... each leaf node
// represents a collection of logical data objects, and non-leaf nodes
// represent logical operations applied to streams of data items". The
// optimizer's physical decisions (chunk size, clone counts) annotate the
// logical tree for EXPLAIN output at both levels.

// LogicalOp enumerates the logical operators of the clustering query.
type LogicalOp int

const (
	// OpScan reads grid buckets and emits point streams (leaf).
	OpScan LogicalOp = iota
	// OpSplit slices a cell's stream into memory-sized partitions.
	OpSplit
	// OpPartial reduces one partition to k weighted centroids.
	OpPartial
	// OpMerge combines all weighted centroids into the final k.
	OpMerge
	// OpCompress builds the multivariate histogram (optional root).
	OpCompress
)

// String names the operator.
func (op LogicalOp) String() string {
	switch op {
	case OpScan:
		return "Scan"
	case OpSplit:
		return "Split"
	case OpPartial:
		return "PartialKMeans"
	case OpMerge:
		return "MergeKMeans"
	case OpCompress:
		return "Compress"
	default:
		return fmt.Sprintf("LogicalOp(%d)", int(op))
	}
}

// LogicalNode is one node of the dataflow tree. Data flows from the
// leaves toward the root.
type LogicalNode struct {
	Op       LogicalOp
	Props    map[string]string
	Children []*LogicalNode
}

// LogicalFor builds the canonical partial/merge dataflow for a query
// over nCells cells: Merge(Partial(Split(Scan))). withCompress appends
// the histogram stage as the root.
func LogicalFor(q Query, nCells int, withCompress bool) *LogicalNode {
	scan := &LogicalNode{
		Op:    OpScan,
		Props: map[string]string{"cells": fmt.Sprintf("%d", nCells)},
	}
	split := &LogicalNode{
		Op:       OpSplit,
		Props:    map[string]string{"strategy": q.Strategy.String()},
		Children: []*LogicalNode{scan},
	}
	partial := &LogicalNode{
		Op: OpPartial,
		Props: map[string]string{
			"k":        fmt.Sprintf("%d", q.K),
			"restarts": fmt.Sprintf("%d", q.Restarts),
			"operator": q.partialStage(),
		},
		Children: []*LogicalNode{split},
	}
	merge := &LogicalNode{
		Op: OpMerge,
		Props: map[string]string{
			"k":    fmt.Sprintf("%d", q.K),
			"mode": q.MergeMode.String(),
		},
		Children: []*LogicalNode{partial},
	}
	if !withCompress {
		return merge
	}
	return &LogicalNode{Op: OpCompress, Children: []*LogicalNode{merge}}
}

// Validate checks the tree's structural rules: Scan must be a leaf,
// every other operator has exactly one child, and the operator order
// along each root-to-leaf path must be (Compress?) Merge, Partial,
// Split, Scan.
func (n *LogicalNode) Validate() error {
	order := map[LogicalOp]int{OpScan: 0, OpSplit: 1, OpPartial: 2, OpMerge: 3, OpCompress: 4}
	var walk func(node *LogicalNode) error
	walk = func(node *LogicalNode) error {
		if node == nil {
			return fmt.Errorf("engine: nil logical node")
		}
		rank, ok := order[node.Op]
		if !ok {
			return fmt.Errorf("engine: unknown logical operator %v", node.Op)
		}
		if node.Op == OpScan {
			if len(node.Children) != 0 {
				return fmt.Errorf("engine: Scan must be a leaf, has %d children", len(node.Children))
			}
			return nil
		}
		if len(node.Children) != 1 {
			return fmt.Errorf("engine: %v must have exactly one child, has %d", node.Op, len(node.Children))
		}
		child := node.Children[0]
		childRank, ok := order[child.Op]
		if !ok {
			return fmt.Errorf("engine: unknown logical operator %v", child.Op)
		}
		if childRank != rank-1 {
			return fmt.Errorf("engine: %v cannot consume from %v", node.Op, child.Op)
		}
		return walk(child)
	}
	return walk(n)
}

// String renders the tree root-first with indentation, properties in
// sorted order.
func (n *LogicalNode) String() string {
	var b strings.Builder
	var walk func(node *LogicalNode, depth int)
	walk = func(node *LogicalNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(node.Op.String())
		if len(node.Props) > 0 {
			keys := make([]string, 0, len(node.Props))
			for k := range node.Props {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = k + "=" + node.Props[k]
			}
			fmt.Fprintf(&b, "(%s)", strings.Join(parts, ", "))
		}
		b.WriteString("\n")
		for _, c := range node.Children {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

// AnnotatePhysical copies the tree and stamps the optimizer's physical
// decisions onto the matching operators, producing the two-level
// EXPLAIN the paper's Conquest workflow implies (logical query →
// physical plan).
func (n *LogicalNode) AnnotatePhysical(plan PhysicalPlan) *LogicalNode {
	clone := &LogicalNode{Op: n.Op, Props: map[string]string{}}
	for k, v := range n.Props {
		clone.Props[k] = v
	}
	switch n.Op {
	case OpSplit:
		clone.Props["chunkPoints"] = fmt.Sprintf("%d", plan.ChunkPoints)
	case OpPartial:
		clone.Props["clones"] = fmt.Sprintf("%d", plan.PartialClones)
	case OpMerge:
		clone.Props["queue"] = fmt.Sprintf("%d", plan.QueueCapacity)
	}
	for _, c := range n.Children {
		clone.Children = append(clone.Children, c.AnnotatePhysical(plan))
	}
	return clone
}
