package engine

import (
	"bytes"
	"context"
	"testing"
	"time"

	"streamkm/internal/fault"
	"streamkm/internal/obs"
	"streamkm/internal/stream"
)

// Tests for the engine's obs wiring: one supervised faulty run must
// land every absorbed signal — chunk counters, retry counts, per-stage
// histograms, queue totals, trace cross-reference — in a single
// schema-stable report with the exact values the workload implies.

func TestExecReportUnderFaults(t *testing.T) {
	cells, q, plan := governCells(t) // 4 + 3 chunks, clones=1: deterministic counts
	reg := obs.NewRegistry()
	results, stats, err := NewExec(q, plan,
		WithObserver(reg),
		WithFaultInjection(fault.ErrorNth(3)),
		WithRetry(stream.RetryPolicy{MaxRetries: 2, BaseBackoff: -1}),
	).Execute(context.Background(), cells)
	if err != nil {
		t.Fatalf("supervised execution failed: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if stats.Obs != reg {
		t.Fatal("ExecStats.Obs is not the caller's registry")
	}

	rep := stats.Report()
	if rep.Schema != obs.ReportSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, obs.ReportSchema)
	}
	if rep.Cells != 2 || rep.Chunks != 7 {
		t.Fatalf("cells/chunks = %d/%d, want 2/7", rep.Cells, rep.Chunks)
	}
	m := rep.Metrics
	for _, c := range []struct {
		name, stage string
		want        int64
	}{
		{obs.EngineChunksTotal, "", 7},
		{obs.EngineChunksDone, "", 7},
		// The injected fault fires before the partial transform runs, so
		// attempts counts the 7 invocations that reached the operator.
		{obs.EngineChunkAttempts, "", 7},
		{obs.EngineCellsTotal, "", 2},
		{obs.EngineCellsMerged, "", 2},
		{obs.EnginePoints, "", 1050},
		{obs.StreamItemsIn, "partial-kmeans", 7},
		{obs.StreamItemsOut, "partial-kmeans", 7},
		{obs.StreamRetries, "partial-kmeans", 1},
		{obs.StreamPanics, "partial-kmeans", 0},
		// Every successful partial step ran all Restarts=2 seed sets.
		{obs.KMeansRestarts, "partial-kmeans", 14},
		{obs.QueueEnqueued, "chunks", 7},
		{obs.QueueDequeued, "chunks", 7},
	} {
		if got := m.Counter(c.name, c.stage); got != c.want {
			t.Errorf("counter %s{stage=%q} = %d, want %d", c.name, c.stage, got, c.want)
		}
	}
	if m.Counter(obs.KMeansIterations, "partial-kmeans") <= 0 {
		t.Error("no partial Lloyd iterations recorded")
	}
	if m.Counter(obs.EngineBytes, "") <= 0 {
		t.Error("no point bytes recorded")
	}

	if h := m.Histogram(obs.StageSeconds, "partial-kmeans"); h == nil || h.Count != 7 {
		t.Errorf("partial stage_seconds = %+v, want count 7 (once per item, not per attempt)", h)
	}
	if h := m.Histogram(obs.ChunkPoints, "partial-kmeans"); h == nil || h.Count != 7 {
		t.Errorf("chunk_points = %+v, want count 7", h)
	}
	// The merge stage's items are partial outputs (its sink runs once
	// per journaled chunk), so its latency histogram has 7 entries; the
	// 2 cell finalizations show up as merge-kmeans trace spans instead.
	if h := m.Histogram(obs.StageSeconds, "merge-kmeans"); h == nil || h.Count != 7 {
		t.Errorf("merge stage_seconds = %+v, want count 7 (one per consumed partial)", h)
	}

	var highwater bool
	for _, g := range m.Gauges {
		if g.Name == obs.QueueHighWater && g.Stage == "chunks" {
			highwater = true
		}
	}
	if !highwater {
		t.Error("no queue_highwater gauge for the chunks queue")
	}

	// Trace cross-reference: the op names equal the metric stage labels.
	ops := map[string]int{}
	for _, o := range rep.Trace {
		ops[o.Op] = o.Spans
	}
	if ops["partial-kmeans"] != 7 || ops["merge-kmeans"] != 2 {
		t.Errorf("trace spans = %v, want partial-kmeans:7 merge-kmeans:2", ops)
	}

	// Schema stability: rendering the same execution twice is
	// byte-identical.
	a, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := stats.Report().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two reports of one execution differ")
	}
}

// TestExecReportDegraded drops one partition permanently and requires
// the degraded counters and report section to name the loss.
func TestExecReportDegraded(t *testing.T) {
	cells, q, plan := governCells(t)
	reg := obs.NewRegistry()
	_, stats, err := NewExec(q, plan,
		WithObserver(reg),
		WithFaultInjection(fault.ErrorNth(3)), // cell 0 chunk 2, no retry budget
		WithDegradedResults(),
	).Execute(context.Background(), cells)
	if err != nil {
		t.Fatalf("degraded execution errored: %v", err)
	}
	rep := stats.Report()
	if rep.Degraded == nil {
		t.Fatal("report has no degraded section")
	}
	if rep.Degraded.DroppedChunks != 1 || rep.Degraded.PointsLost != 150 {
		t.Fatalf("degraded section %+v, want 1 dropped chunk, 150 points", rep.Degraded)
	}
	if got := rep.Metrics.Counter(obs.EngineDegradedChunks, ""); got != 1 {
		t.Fatalf("engine_degraded_chunks = %d, want 1", got)
	}
	if got := rep.Metrics.Counter(obs.EngineDegradedPoints, ""); got != 150 {
		t.Fatalf("engine_degraded_points = %d, want 150", got)
	}
	if got := rep.Metrics.Counter(obs.StreamQuarantined, "partial-kmeans"); got != 1 {
		t.Fatalf("stream_quarantined = %d, want 1", got)
	}
}

// TestSnapshotDuringExecution snapshots the caller's registry while the
// pipeline is writing it — the pmkm -progress pattern. Under -race this
// is the live-read concurrency test; every snapshot must also be
// internally consistent.
func TestSnapshotDuringExecution(t *testing.T) {
	cells, q, plan := governCells(t)
	plan.PartialClones = 2
	reg := obs.NewRegistry()
	done := make(chan error, 1)
	go func() {
		_, _, err := NewExec(q, plan, WithObserver(reg)).Execute(context.Background(), cells)
		done <- err
	}()
	snaps := 0
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if snaps == 0 {
				t.Fatal("no snapshots taken during execution")
			}
			final := reg.Snapshot()
			if got := final.Counter(obs.EngineChunksDone, ""); got != 7 {
				t.Fatalf("final chunks done = %d, want 7", got)
			}
			return
		default:
		}
		s := reg.Snapshot()
		for _, h := range s.Histograms {
			var inBuckets int64
			for _, b := range h.Buckets {
				inBuckets += b.Count
			}
			if inBuckets+h.Overflow != h.Count {
				t.Fatalf("torn %s snapshot: %d + %d != %d", h.Name, inBuckets, h.Overflow, h.Count)
			}
		}
		snaps++
		time.Sleep(time.Millisecond)
	}
}
