package engine

import (
	"streamkm/internal/obs"
	"streamkm/internal/stream"
)

// This file wires the engine into the obs metrics core. The paper's
// Conquest engine adapts long-running queries from runtime resource
// evidence (§4); PRs 1–4 grew that evidence organically — OpStats
// counters, queue high-water marks, governor heartbeats, degraded-run
// audits — each visible only through its own struct. Here every signal
// lands in one obs.Registry under a fixed vocabulary (obs/names.go), so
// ExecStats.Report() can render a single schema-stable JSON document
// per run.
//
// Granularity contract: counters and gauges are atomic and may be
// bumped anywhere; histograms are observed once per chunk or per merge,
// never per point, so the Lloyd hot loop stays allocation-free and
// instrumentation-free.

// WithObserver records the execution's metrics into reg instead of an
// internal registry, letting a caller watch counters live (pmkm's
// -progress ticker) or aggregate across executions. The registry is
// also reachable afterwards through ExecStats.Obs.
func WithObserver(reg *obs.Registry) ExecOption {
	return func(e *Exec) { e.obsReg = reg }
}

// execObs caches the engine's live instruments so hot paths touch
// atomics, not the registry's map lock.
type execObs struct {
	reg *obs.Registry

	chunksTotal    *obs.Counter
	chunksDone     *obs.Counter
	chunkAttempts  *obs.Counter
	dupChunks      *obs.Counter
	cellsTotal     *obs.Counter
	cellsMerged    *obs.Counter
	points         *obs.Counter
	bytes          *obs.Counter
	restarts       *obs.Counter
	stalls         *obs.Counter
	admissionRefit *obs.Counter
	degradedChunks *obs.Counter
	degradedPoints *obs.Counter

	partialSeconds *obs.Histogram
	mergeSeconds   *obs.Histogram
	chunkPoints    *obs.Histogram

	kmIterPartial *obs.Counter
	kmRestarts    *obs.Counter
	kmConvPartial *obs.Counter
	kmIterMerge   *obs.Counter
	kmDeltaMSE    *obs.FloatGauge
	summaryPoints *obs.Counter
}

// newExecObs builds the execution's instrument cache. stagePartial is
// the summarizer-derived partial stage label and stageMerge the
// solver-derived merge stage label, so every per-operator family
// (stage latency, chunk sizes, k-means counters, summary output) is
// keyed by the operator that actually ran — run reports distinguish a
// partial-coreset or merge-minibatch run from the defaults at a
// glance.
func newExecObs(reg *obs.Registry, stagePartial, stageMerge string) *execObs {
	return &execObs{
		reg:            reg,
		chunksTotal:    reg.Counter(obs.EngineChunksTotal, ""),
		chunksDone:     reg.Counter(obs.EngineChunksDone, ""),
		chunkAttempts:  reg.Counter(obs.EngineChunkAttempts, ""),
		dupChunks:      reg.Counter(obs.EngineDupChunks, ""),
		cellsTotal:     reg.Counter(obs.EngineCellsTotal, ""),
		cellsMerged:    reg.Counter(obs.EngineCellsMerged, ""),
		points:         reg.Counter(obs.EnginePoints, ""),
		bytes:          reg.Counter(obs.EngineBytes, ""),
		restarts:       reg.Counter(obs.EngineRestarts, ""),
		stalls:         reg.Counter(obs.GovernWatchdogCancels, ""),
		admissionRefit: reg.Counter(obs.GovernAdmissionRefits, ""),
		degradedChunks: reg.Counter(obs.EngineDegradedChunks, ""),
		degradedPoints: reg.Counter(obs.EngineDegradedPoints, ""),

		partialSeconds: reg.Histogram(obs.StageSeconds, stagePartial, obs.LatencyBuckets()),
		mergeSeconds:   reg.Histogram(obs.StageSeconds, stageMerge, obs.LatencyBuckets()),
		chunkPoints:    reg.Histogram(obs.ChunkPoints, stagePartial, obs.SizeBuckets()),

		kmIterPartial: reg.Counter(obs.KMeansIterations, stagePartial),
		kmRestarts:    reg.Counter(obs.KMeansRestarts, stagePartial),
		kmConvPartial: reg.Counter(obs.KMeansConverged, stagePartial),
		kmIterMerge:   reg.Counter(obs.KMeansIterations, stageMerge),
		kmDeltaMSE:    reg.FloatGauge(obs.KMeansLastDeltaMSE, stagePartial),
		summaryPoints: reg.Counter(obs.SummaryPoints, stagePartial),
	}
}

// absorbQueues folds one attempt's queue counters into the registry.
// Queues are rebuilt per attempt, so totals Add and high-water marks
// SetMax — the registry accumulates across restarts just like OpStats.
func (o *execObs) absorbQueues(qs ...queueCounters) {
	for _, q := range qs {
		o.reg.Gauge(obs.QueueHighWater, q.name).SetMax(int64(q.highWater))
		o.reg.Counter(obs.QueueEnqueued, q.name).Add(q.enqueued)
		o.reg.Counter(obs.QueueDequeued, q.name).Add(q.dequeued)
	}
}

// queueCounters is the absorbable summary of one stream.Queue.
type queueCounters struct {
	name      string
	highWater int
	enqueued  int64
	dequeued  int64
}

func summarizeQueue[T any](q *stream.Queue[T]) queueCounters {
	return queueCounters{
		name:      q.Name(),
		highWater: q.HighWater(),
		enqueued:  q.Enqueued(),
		dequeued:  q.Dequeued(),
	}
}

// streamSnapshots synthesizes the stream_* metric families from the
// operator stats registry. They are synthesized at snapshot time rather
// than double-counted into live counters: OpStats already aggregates
// across clones and restart attempts, so its values are authoritative.
func streamSnapshots(reg *stream.StatsRegistry, snap *obs.Snapshot) {
	if reg == nil {
		return
	}
	for _, op := range reg.All() {
		stage := op.Name()
		snap.Counters = append(snap.Counters,
			obs.CounterSnapshot{Name: obs.StreamItemsIn, Stage: stage, Value: op.Processed()},
			obs.CounterSnapshot{Name: obs.StreamItemsOut, Stage: stage, Value: op.Emitted()},
			obs.CounterSnapshot{Name: obs.StreamRetries, Stage: stage, Value: op.Retries()},
			obs.CounterSnapshot{Name: obs.StreamQuarantined, Stage: stage, Value: op.Quarantined()},
			obs.CounterSnapshot{Name: obs.StreamDropped, Stage: stage, Value: op.Dropped()},
			obs.CounterSnapshot{Name: obs.StreamPanics, Stage: stage, Value: op.Panics()},
		)
		snap.Gauges = append(snap.Gauges,
			obs.GaugeSnapshot{Name: obs.StreamClones, Stage: stage, Value: float64(op.Clones())},
			obs.GaugeSnapshot{Name: obs.StreamBusySeconds, Stage: stage, Value: op.Busy().Seconds()},
		)
	}
}

// Report renders the execution as the schema-stable JSON run report:
// run-level facts, the governor's admission and degradation record, the
// unified metrics snapshot (engine instruments plus the absorbed
// stream_* families), and the trace cross-reference, whose op names
// equal the metric stage labels.
func (s *ExecStats) Report() *obs.Report {
	rep := &obs.Report{
		Schema:         obs.ReportSchema,
		ElapsedSeconds: s.Elapsed.Seconds(),
		Cells:          s.Cells,
		Chunks:         s.Chunks,
		Restarts:       s.Restarts,
		Stalls:         s.Stalls,
	}
	if a := s.Admission; a != nil {
		rep.Admission = &obs.AdmissionReport{
			BudgetBytes: a.Budget,
			ChunkPoints: a.ChunkPoints,
			Clones:      a.Clones,
			Workers:     a.Workers,
			Constrained: a.Constrained(),
		}
	}
	if d := s.Degraded; d != nil {
		rep.Degraded = &obs.DegradedReport{
			DroppedChunks:    len(d.DroppedChunks),
			DroppedCells:     len(d.DroppedCells),
			PartialCells:     len(d.PartialCells),
			PointsLost:       d.PointsLost,
			DeadlineExceeded: d.DeadlineExceeded,
			Stalls:           d.Stalls,
		}
	}
	var snap obs.Snapshot
	if s.Obs != nil {
		snap = s.Obs.Snapshot()
	}
	streamSnapshots(s.Registry, &snap)
	snap.Sort()
	rep.Metrics = snap
	if s.Trace != nil {
		for _, o := range s.Trace.Summary() {
			rep.Trace = append(rep.Trace, obs.TraceOp{Op: o.Op, Spans: o.Spans, BusySeconds: o.Busy.Seconds()})
		}
		rep.DroppedSpans = s.Trace.Dropped()
	}
	return rep
}
