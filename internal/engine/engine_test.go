package engine

import (
	"context"
	"math"
	"strings"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/grid"
)

func engineCell(t testing.TB, n int, seed uint64) *dataset.Set {
	t.Helper()
	spec := dataset.DefaultCellSpec()
	spec.Clusters = 5
	spec.Dim = 4
	spec.NoiseFrac = 0
	spec.Separation = 30
	spec.Spread = 0.5
	s, err := dataset.GenerateCell(spec, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOptimizeValidation(t *testing.T) {
	q := Query{K: 4, Restarts: 2}
	res := Resources{MemoryBytes: 1 << 20, Workers: 4}
	if _, err := Optimize(Query{Restarts: 2}, []int{100}, 4, res); err == nil {
		t.Fatal("K=0 should error")
	}
	if _, err := Optimize(Query{K: 4}, []int{100}, 4, res); err == nil {
		t.Fatal("Restarts=0 should error")
	}
	if _, err := Optimize(q, nil, 4, res); err == nil {
		t.Fatal("no cells should error")
	}
	if _, err := Optimize(q, []int{100}, 0, res); err == nil {
		t.Fatal("dim=0 should error")
	}
	if _, err := Optimize(q, []int{100}, 4, Resources{MemoryBytes: 0}); err == nil {
		t.Fatal("no memory should error")
	}
	if _, err := Optimize(q, []int{0}, 4, res); err == nil {
		t.Fatal("empty cell should error")
	}
	// budget below the minimum viable chunk
	if _, err := Optimize(Query{K: 100, Restarts: 1}, []int{10000}, 4, Resources{MemoryBytes: 100, Workers: 1}); err == nil {
		t.Fatal("tiny budget should error")
	}
}

func TestOptimizeChunkSizing(t *testing.T) {
	q := Query{K: 10, Restarts: 2}
	dim := 6
	// Budget for exactly 1000 points of dim 6.
	budget := int64(1000) * pointBytes(dim)
	plan, err := Optimize(q, []int{50000}, dim, Resources{MemoryBytes: budget, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ChunkPoints != 1000 {
		t.Fatalf("ChunkPoints = %d, want 1000", plan.ChunkPoints)
	}
	// 50000/1000 = 50 chunks >> 4 workers → 4 clones.
	if plan.PartialClones != 4 {
		t.Fatalf("PartialClones = %d, want 4", plan.PartialClones)
	}
	if !strings.Contains(plan.Explain(), "chunk size: 1000") {
		t.Fatalf("Explain missing chunk size:\n%s", plan.Explain())
	}
}

func TestOptimizeCapsAtLargestCell(t *testing.T) {
	q := Query{K: 5, Restarts: 1}
	plan, err := Optimize(q, []int{200, 300}, 4, Resources{MemoryBytes: 1 << 30, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ChunkPoints != 300 {
		t.Fatalf("ChunkPoints = %d, want largest cell 300", plan.ChunkPoints)
	}
	// only 2 chunks expected → clones capped at 2
	if plan.PartialClones != 2 {
		t.Fatalf("PartialClones = %d, want 2", plan.PartialClones)
	}
}

func TestOptimizeDefaultsWorkers(t *testing.T) {
	plan, err := Optimize(Query{K: 5, Restarts: 1}, []int{10000}, 4,
		Resources{MemoryBytes: 1 << 20, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if plan.PartialClones != 1 {
		t.Fatalf("PartialClones = %d, want 1", plan.PartialClones)
	}
}

func TestExecuteSingleCell(t *testing.T) {
	cell := engineCell(t, 1000, 1)
	cells := []Cell{{Key: grid.CellKey{Lat: 10, Lon: 20}, Points: cell}}
	q := Query{K: 10, Restarts: 2, Seed: 5}
	plan := PhysicalPlan{ChunkPoints: 250, PartialClones: 3, QueueCapacity: 4}
	results, stats, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	r := results[0]
	if r.Key != (grid.CellKey{Lat: 10, Lon: 20}) {
		t.Fatalf("key = %v", r.Key)
	}
	if r.Partitions != 4 {
		t.Fatalf("Partitions = %d, want 1000/250 = 4", r.Partitions)
	}
	if len(r.Result.Centroids) != 10 {
		t.Fatalf("centroids = %d", len(r.Result.Centroids))
	}
	if r.PointMSE <= 0 || r.PointMSE > 5 {
		t.Fatalf("PointMSE = %g", r.PointMSE)
	}
	var w float64
	for _, x := range r.Result.Weights {
		w += x
	}
	if math.Abs(w-1000) > 1e-6 {
		t.Fatalf("merged weight %g != N", w)
	}
	if stats.Cells != 1 || stats.Chunks != 4 {
		t.Fatalf("stats: %+v", stats)
	}
	if st := stats.Registry.Lookup("partial-kmeans"); st == nil || st.Processed() != 4 {
		t.Fatalf("partial operator stats missing or wrong: %v", st)
	}
}

func TestExecuteMultipleCellsPipelined(t *testing.T) {
	cells := []Cell{
		{Key: grid.CellKey{Lat: 0, Lon: 0}, Points: engineCell(t, 600, 2)},
		{Key: grid.CellKey{Lat: 0, Lon: 1}, Points: engineCell(t, 900, 3)},
		{Key: grid.CellKey{Lat: 1, Lon: 0}, Points: engineCell(t, 300, 4)},
	}
	q := Query{K: 8, Restarts: 2, Seed: 9}
	plan := PhysicalPlan{ChunkPoints: 300, PartialClones: 4, QueueCapacity: 8}
	results, stats, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	// chunks: 600/300=2, 900/300=3, 300/300=1 → 6
	if stats.Chunks != 6 {
		t.Fatalf("Chunks = %d, want 6", stats.Chunks)
	}
	for i, r := range results {
		if r.Key != cells[i].Key {
			t.Fatalf("result %d key %v, want %v", i, r.Key, cells[i].Key)
		}
		if len(r.Result.Centroids) != 8 {
			t.Fatalf("cell %v: %d centroids", r.Key, len(r.Result.Centroids))
		}
	}
}

func TestExecuteDeterministicAcrossClones(t *testing.T) {
	cells := []Cell{{Key: grid.CellKey{}, Points: engineCell(t, 800, 7)}}
	q := Query{K: 6, Restarts: 2, Seed: 42}
	a, _, err := Execute(context.Background(), cells, q,
		PhysicalPlan{ChunkPoints: 200, PartialClones: 1, QueueCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Execute(context.Background(), cells, q,
		PhysicalPlan{ChunkPoints: 200, PartialClones: 4, QueueCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a[0].Result.MSE-b[0].Result.MSE) > 1e-12 {
		t.Fatalf("clone count changed the result: %g vs %g", a[0].Result.MSE, b[0].Result.MSE)
	}
}

func TestExecuteValidation(t *testing.T) {
	q := Query{K: 4, Restarts: 1}
	plan := PhysicalPlan{ChunkPoints: 100, PartialClones: 1}
	if _, _, err := Execute(context.Background(), nil, q, plan); err == nil {
		t.Fatal("no cells should error")
	}
	empty := []Cell{{Points: dataset.MustNewSet(4)}}
	if _, _, err := Execute(context.Background(), empty, q, plan); err == nil {
		t.Fatal("empty cell should error")
	}
	cells := []Cell{{Points: engineCell(t, 100, 1)}}
	if _, _, err := Execute(context.Background(), cells, q, PhysicalPlan{ChunkPoints: 0}); err == nil {
		t.Fatal("chunk=0 should error")
	}
	if _, _, err := Execute(context.Background(), cells, Query{K: 0, Restarts: 1}, plan); err == nil {
		t.Fatal("bad query should error")
	}
}

func TestExecuteCancellation(t *testing.T) {
	cells := []Cell{{Points: engineCell(t, 5000, 8)}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Execute(ctx, cells, Query{K: 10, Restarts: 10, Seed: 1},
		PhysicalPlan{ChunkPoints: 500, PartialClones: 2, QueueCapacity: 2})
	if err == nil {
		t.Fatal("cancelled context should abort")
	}
}

func TestRunEndToEnd(t *testing.T) {
	cells := []Cell{
		{Key: grid.CellKey{Lat: 5, Lon: 5}, Points: engineCell(t, 700, 11)},
		{Key: grid.CellKey{Lat: 5, Lon: 6}, Points: engineCell(t, 400, 12)},
	}
	// k well above the 5 latent blobs, as in the paper's k=40 setup;
	// k ≈ blob count risks a heaviest-seeding local minimum.
	q := Query{K: 12, Restarts: 2, Seed: 13, MergeMode: core.MergeCollective}
	budget := int64(250) * pointBytes(4)
	results, plan, stats, err := Run(context.Background(), cells, q,
		Resources{MemoryBytes: budget, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ChunkPoints != 250 {
		t.Fatalf("plan chunk = %d", plan.ChunkPoints)
	}
	if len(results) != 2 || stats.Cells != 2 {
		t.Fatalf("results = %d, stats = %+v", len(results), stats)
	}
	for _, r := range results {
		if r.PointMSE > 5 {
			t.Fatalf("cell %v PointMSE = %g", r.Key, r.PointMSE)
		}
	}
}

func TestExecuteCompressStage(t *testing.T) {
	cell := engineCell(t, 500, 71)
	cells := []Cell{{Key: grid.CellKey{Lat: 9, Lon: 9}, Points: cell}}
	q := Query{K: 6, Restarts: 2, Seed: 3, Compress: true}
	plan := PhysicalPlan{ChunkPoints: 250, PartialClones: 2, QueueCapacity: 4}
	results, stats, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	h := results[0].Histogram
	if h == nil {
		t.Fatal("Compress did not attach a histogram")
	}
	if h.Total() != 500 {
		t.Fatalf("histogram mass %g != 500", h.Total())
	}
	// the compress operator appears in the trace
	found := false
	for _, s := range stats.Trace.Spans() {
		if s.Op == "compress" {
			found = true
		}
	}
	if !found {
		t.Fatal("no compress span recorded")
	}
	// without Compress, no histogram
	q.Compress = false
	results, _, err = Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Histogram != nil {
		t.Fatal("histogram attached without Compress")
	}
}

func TestRunMixedDimsRejected(t *testing.T) {
	a := engineCell(t, 100, 1)
	b := dataset.MustNewSet(2)
	for i := 0; i < 100; i++ {
		if err := b.Add([]float64{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	_, _, _, err := Run(context.Background(), []Cell{{Points: a}, {Points: b}},
		Query{K: 3, Restarts: 1}, Resources{MemoryBytes: 1 << 20, Workers: 1})
	if err == nil {
		t.Fatal("mixed dims should error")
	}
}
