package engine

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/fault"
	"streamkm/internal/grid"
)

// summarizerQueries enumerates one query per built-in operator over the
// recover scenario's cells, with parameters small enough to stay fast.
func summarizerQueries(t *testing.T) ([]Cell, []Query, PhysicalPlan) {
	t.Helper()
	cells, base, plan := recoverCells(t)
	queries := make([]Query, 0, 3)
	for _, name := range core.SummarizerNames() {
		q := base
		q.Summarizer = name
		q.CoresetSize = 40
		q.ECVQMaxK = 10
		queries = append(queries, q)
	}
	return cells, queries, plan
}

// TestSummarizerEquivalenceAcrossExecutionModes is the golden-checksum
// suite: for every operator, the serial plan, the cloned-parallel plan,
// and a journaled crash-recovery run must produce bit-identical
// centroids. This is the contract that lets any summarizer ship to
// remote workers or resume from checkpoints without quality drift.
func TestSummarizerEquivalenceAcrossExecutionModes(t *testing.T) {
	cells, queries, plan := summarizerQueries(t)
	for _, q := range queries {
		q := q
		t.Run(q.partialStage(), func(t *testing.T) {
			serialPlan := plan
			serialPlan.PartialClones = 1
			serialPlan.QueueCapacity = 4
			want, _, err := Execute(context.Background(), cells, q, serialPlan)
			if err != nil {
				t.Fatal(err)
			}

			parallel, _, err := Execute(context.Background(), cells, q, plan)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, parallel, want)

			// Crash mid-run with no restart budget, then resume from the
			// serialized journal in a "new process".
			journal := NewJournal()
			_, _, err = NewExec(q, plan,
				WithJournal(journal),
				WithFaultInjection(fault.ErrorNth(3)),
			).Execute(context.Background(), cells)
			if err == nil {
				t.Fatal("expected the crashing run to die")
			}
			var buf bytes.Buffer
			if err := journal.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := DecodeJournal(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			recovered, _, err := NewExec(q, plan, WithJournal(restored)).
				Execute(context.Background(), cells)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, recovered, want)
		})
	}
}

// TestPlanExplainNamesOperator pins the satellite fix: EXPLAIN output
// must reflect the operator actually planned, not a hardcoded
// partial-kmeans label.
func TestPlanExplainNamesOperator(t *testing.T) {
	sizes := []int{600}
	res := Resources{MemoryBytes: 1 << 20, Workers: 2}
	for _, tc := range []struct {
		summarizer string
		wantStage  string
	}{
		{"", "partial-kmeans"},
		{"kmeans", "partial-kmeans"},
		{"ecvq", "partial-ecvq"},
		{"coreset", "partial-coreset"},
	} {
		q := Query{K: 5, Restarts: 2, Summarizer: tc.summarizer}
		plan, err := Optimize(q, sizes, 4, res)
		if err != nil {
			t.Fatalf("%q: %v", tc.summarizer, err)
		}
		if plan.PartialStage != tc.wantStage {
			t.Fatalf("%q: PartialStage = %q", tc.summarizer, plan.PartialStage)
		}
		if out := plan.Explain(); !strings.Contains(out, "scan -> "+tc.wantStage+" x") {
			t.Fatalf("%q: Explain missing %q:\n%s", tc.summarizer, tc.wantStage, out)
		}
		logical := LogicalFor(q, 1, false)
		if out := logical.String(); !strings.Contains(out, "operator="+tc.wantStage) {
			t.Fatalf("%q: logical plan missing operator prop:\n%s", tc.summarizer, out)
		}
	}
	// A hand-built plan with no stage label renders the default.
	if out := (PhysicalPlan{PartialClones: 2}).Explain(); !strings.Contains(out, "partial-kmeans x2") {
		t.Fatalf("zero-value plan Explain:\n%s", out)
	}
}

func TestJournalOperatorBinding(t *testing.T) {
	kmeansSpec := core.SummarizerSpec{Name: "kmeans", Params: map[string]string{"k": "5", "restarts": "2"}}
	coresetSpec := core.SummarizerSpec{Name: "coreset", Params: map[string]string{"m": "40"}}

	j := NewJournal()
	if err := j.bindOperator(kmeansSpec); err != nil {
		t.Fatal(err)
	}
	if err := j.bindOperator(kmeansSpec); err != nil {
		t.Fatalf("rebinding the same spec: %v", err)
	}
	if err := j.bindOperator(coresetSpec); !errors.Is(err, ErrJournalOperatorMismatch) {
		t.Fatalf("cross-operator rebind: %v", err)
	}

	// Execution-shape params (workers, accel) never change summary bits,
	// so a checkpoint resumes across machines with different fan-out.
	shaped := core.SummarizerSpec{Name: "kmeans", Params: map[string]string{
		"k": "5", "restarts": "2", "workers": "8", "accel": "true",
	}}
	if err := j.bindOperator(shaped); err != nil {
		t.Fatalf("shape-only param change refused: %v", err)
	}

	// But a param that changes the bits must refuse.
	widened := core.SummarizerSpec{Name: "kmeans", Params: map[string]string{"k": "9", "restarts": "2"}}
	if err := j.bindOperator(widened); !errors.Is(err, ErrJournalOperatorMismatch) {
		t.Fatalf("k change accepted: %v", err)
	}

	// A legacy checkpoint decodes to the bare name and accepts any
	// kmeans spec, upgrading to the full encoding.
	legacy := NewJournal()
	legacy.operator = core.SummarizerKMeans
	if err := legacy.bindOperator(kmeansSpec); err != nil {
		t.Fatal(err)
	}
	if legacy.Operator() != kmeansSpec.Encode() {
		t.Fatalf("legacy journal did not upgrade: %q", legacy.Operator())
	}
}

// TestJournalV3RoundTripPreservesOperator checks the new journal
// version: a non-kmeans journal encodes as v3 carrying the operator
// record, while a kmeans journal stays on the legacy version so
// pre-summarizer checkpoints remain byte-identical.
func TestJournalV3RoundTripPreservesOperator(t *testing.T) {
	cells, q, plan := recoverCells(t)
	q.Summarizer = core.SummarizerCoreset
	q.CoresetSize = 40

	journal := NewJournal()
	if _, _, err := NewExec(q, plan, WithJournal(journal)).
		Execute(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if op := journal.Operator(); !strings.HasPrefix(op, "coreset(") {
		t.Fatalf("operator = %q", op)
	}

	var buf bytes.Buffer
	if err := journal.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if v := int(raw[4]) | int(raw[5])<<8; v != journalVersionV3 {
		t.Fatalf("coreset journal encoded as version %d", v)
	}
	restored, err := DecodeJournal(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Operator() != journal.Operator() {
		t.Fatalf("operator lost in round trip: %q != %q", restored.Operator(), journal.Operator())
	}
	if restored.Chunks() != journal.Chunks() {
		t.Fatalf("entries lost: %d != %d", restored.Chunks(), journal.Chunks())
	}

	// The restored journal refuses a different operator's query...
	mismatched := q
	mismatched.Summarizer = core.SummarizerKMeans
	if _, _, err := NewExec(mismatched, plan, WithJournal(restored)).
		Execute(context.Background(), cells); !errors.Is(err, ErrJournalOperatorMismatch) {
		t.Fatalf("mismatched resume: %v", err)
	}
	// ...and accepts the original one.
	if _, _, err := NewExec(q, plan, WithJournal(restored)).
		Execute(context.Background(), cells); err != nil {
		t.Fatal(err)
	}

	// The default operator keeps the legacy encoding.
	kj := NewJournal()
	kq := q
	kq.Summarizer = ""
	kq.CoresetSize = 0
	if _, _, err := NewExec(kq, plan, WithJournal(kj)).
		Execute(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := kj.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if v := int(buf.Bytes()[4]) | int(buf.Bytes()[5])<<8; v >= journalVersionV3 {
		t.Fatalf("kmeans journal escalated to version %d", v)
	}
}

// TestSummarizerMetricsLabeledByOperator checks the per-operator metric
// families: the partial-stage counters carry the operator's label and
// the summary_points family counts emitted weighted points.
func TestSummarizerMetricsLabeledByOperator(t *testing.T) {
	cells := []Cell{{Key: grid.CellKey{Lat: 1, Lon: 1}, Points: engineCell(t, 400, 5)}}
	q := Query{K: 5, Restarts: 2, Seed: 3, Summarizer: core.SummarizerCoreset, CoresetSize: 25}
	plan := PhysicalPlan{ChunkPoints: 100, PartialClones: 2, QueueCapacity: 4}
	_, stats, err := NewExec(q, plan).Execute(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	rep := stats.Report()
	var sawSummary, sawStage bool
	for _, c := range rep.Metrics.Counters {
		if c.Name == "summary_points" && c.Stage == "partial-coreset" && c.Value > 0 {
			sawSummary = true
		}
		if c.Name == "stream_items_in" && c.Stage == "partial-coreset" && c.Value > 0 {
			sawStage = true
		}
	}
	if !sawSummary || !sawStage {
		t.Fatalf("missing operator-labeled families (summary=%t stage=%t)", sawSummary, sawStage)
	}
}
