package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/fault"
	"streamkm/internal/govern"
	"streamkm/internal/grid"
	"streamkm/internal/metrics"
	"streamkm/internal/rng"
)

// governCells builds a two-cell workload whose chunking is exactly
// predictable: cell 0 slices into 4 chunks of 150, cell 1 into 3. With
// PartialClones=1 the pipeline processes tasks strictly in order, so
// the injector's 1-based invocation n always hits tasks[n-1].
func governCells(t *testing.T) ([]Cell, Query, PhysicalPlan) {
	t.Helper()
	cells := []Cell{
		{Key: grid.CellKey{Lat: 1, Lon: 1}, Points: engineCell(t, 600, 21)},
		{Key: grid.CellKey{Lat: 2, Lon: 2}, Points: engineCell(t, 450, 22)},
	}
	q := Query{K: 5, Restarts: 2, Seed: 77}
	plan := PhysicalPlan{ChunkPoints: 150, PartialClones: 1, QueueCapacity: 2}
	return cells, q, plan
}

// expectSurvivorResults computes, outside the engine, what partial/merge
// over only the surviving partitions produces: run the partial step on
// every non-dropped chunk with a copy of its pre-derived RNG, then merge
// each cell's survivors with a copy of the cell's merge RNG. This is the
// reference for the bit-identical degraded-merge guarantee.
func expectSurvivorResults(t *testing.T, cells []Cell, q Query, plan PhysicalPlan, drop map[journalKey]bool) []CellResult {
	t.Helper()
	master := rng.New(q.Seed)
	tasks, mergeRNGs, err := prepareTasks(cells, q, plan, master)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]*dataset.WeightedSet, len(cells))
	for _, tk := range tasks {
		if drop[journalKey{tk.cellIdx, tk.chunkIdx}] {
			continue
		}
		taskRNG := *tk.rng
		pr, err := core.PartialKMeans(tk.chunk, q.partialConfig(), &taskRNG)
		if err != nil {
			t.Fatal(err)
		}
		parts[tk.cellIdx] = append(parts[tk.cellIdx], pr.Centroids)
	}
	var out []CellResult
	for ci := range cells {
		if len(parts[ci]) == 0 {
			continue
		}
		mergeRNG := *mergeRNGs[ci]
		mr, err := core.MergeKMeans(parts[ci], q.mergeConfig(), &mergeRNG)
		if err != nil {
			t.Fatal(err)
		}
		pm, err := metrics.MSE(cells[ci].Points, mr.Centroids)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, CellResult{Key: cells[ci].Key, Result: mr, PointMSE: pm})
	}
	return out
}

// TestDegradedDropsFailedPartition is the anytime contract's core
// acceptance: a permanently failing partition is quarantined, the query
// still answers, the answer is bit-identical to running partial/merge
// over only the surviving partitions, and the quality report names the
// dropped partition. The same query without WithDegradedResults fails
// loudly.
func TestDegradedDropsFailedPartition(t *testing.T) {
	cells, q, plan := governCells(t)
	// Invocation 3 = cell 0, chunk 2. No retry budget, so the single
	// failure is permanent.
	dropped := journalKey{cell: 0, chunk: 2}
	want := expectSurvivorResults(t, cells, q, plan, map[journalKey]bool{dropped: true})

	got, stats, err := NewExec(q, plan,
		WithFaultInjection(fault.ErrorNth(3)),
		WithDegradedResults(),
	).Execute(context.Background(), cells)
	if err != nil {
		t.Fatalf("degraded execution errored: %v", err)
	}
	assertSameResults(t, got, want)

	rep := stats.Degraded
	if rep == nil {
		t.Fatal("no DegradedResult despite a dropped partition")
	}
	if len(rep.DroppedChunks) != 1 {
		t.Fatalf("DroppedChunks = %v, want exactly one", rep.DroppedChunks)
	}
	ref := rep.DroppedChunks[0]
	if ref.Cell != cells[0].Key || ref.CellIndex != 0 || ref.Chunk != 2 || ref.Points != 150 {
		t.Fatalf("report names %+v, want cell %v chunk 2 with 150 points", ref, cells[0].Key)
	}
	if rep.PointsLost != 150 {
		t.Fatalf("PointsLost = %d, want 150", rep.PointsLost)
	}
	if len(rep.PartialCells) != 1 || rep.PartialCells[0] != cells[0].Key {
		t.Fatalf("PartialCells = %v, want [%v]", rep.PartialCells, cells[0].Key)
	}
	if len(rep.DroppedCells) != 0 {
		t.Fatalf("DroppedCells = %v, want none", rep.DroppedCells)
	}
	if rep.DeadlineExceeded || rep.Stalls != 0 {
		t.Fatalf("report claims deadline/stalls that never happened: %+v", rep)
	}
	// The partial cell's result must disclose its losses.
	for _, r := range got {
		if r.Key == cells[0].Key {
			if r.LostChunks != 1 || r.Partitions != 3 {
				t.Fatalf("cell 0 result: partitions=%d lost=%d, want 3 and 1", r.Partitions, r.LostChunks)
			}
		} else if r.LostChunks != 0 {
			t.Fatalf("intact cell %v reports %d lost chunks", r.Key, r.LostChunks)
		}
	}
	if op := stats.Registry.Lookup("partial-kmeans"); op == nil || op.Quarantined() != 1 {
		t.Fatal("failed chunk was not quarantined")
	}

	t.Run("without the option the same query fails loudly", func(t *testing.T) {
		_, _, err := NewExec(q, plan,
			WithFaultInjection(fault.ErrorNth(3)),
		).Execute(context.Background(), cells)
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("err = %v, want the injected failure", err)
		}
	})
}

// TestDegradedDropsWholeCell: when every partition of a cell fails, the
// cell is reported dropped and has no CellResult, while other cells
// still answer.
func TestDegradedDropsWholeCell(t *testing.T) {
	cells, q, plan := governCells(t)
	// A full-rate injector capped at 4 faults kills exactly cell 0's
	// chunks (invocations 1..4) and nothing after.
	got, stats, err := NewExec(q, plan,
		WithFaultInjection(fault.New(fault.Config{ErrorRate: 1, MaxFaults: 4})),
		WithDegradedResults(),
	).Execute(context.Background(), cells)
	if err != nil {
		t.Fatalf("degraded execution errored: %v", err)
	}
	want := expectSurvivorResults(t, cells, q, plan, map[journalKey]bool{
		{0, 0}: true, {0, 1}: true, {0, 2}: true, {0, 3}: true,
	})
	assertSameResults(t, got, want)
	rep := stats.Degraded
	if rep == nil || len(rep.DroppedCells) != 1 || rep.DroppedCells[0] != cells[0].Key {
		t.Fatalf("report = %+v, want cell %v dropped", rep, cells[0].Key)
	}
	if rep.PointsLost != 600 || len(rep.DroppedChunks) != 4 {
		t.Fatalf("report = %+v, want 4 chunks / 600 points lost", rep)
	}
	if len(got) != 1 || got[0].Key != cells[1].Key {
		t.Fatalf("results = %d cells, want only %v", len(got), cells[1].Key)
	}
}

// TestWatchdogRecoversStalledStage: a wedged partial operator (blocks
// until cancelled) is detected by the stall watchdog within the
// progress timeout, the attempt is cancelled and restarted, and the
// final results are bit-identical to a clean run.
func TestWatchdogRecoversStalledStage(t *testing.T) {
	cells, q, plan := governCells(t)
	want, _, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.StallNth(2)
	start := time.Now()
	got, stats, err := NewExec(q, plan,
		WithFaultInjection(inj),
		WithProgressTimeout(80*time.Millisecond),
		WithRestarts(1),
	).Execute(context.Background(), cells)
	if err != nil {
		t.Fatalf("stalled-then-restarted execution errored: %v", err)
	}
	assertSameResults(t, got, want)
	if inj.Stalls() != 1 {
		t.Fatalf("injector stalled %d times, want 1", inj.Stalls())
	}
	if stats.Stalls != 1 {
		t.Fatalf("ExecStats.Stalls = %d, want 1", stats.Stalls)
	}
	if stats.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1 (the stall should consume one)", stats.Restarts)
	}
	// Detection must land near the progress timeout — generous bound for
	// race-detector scheduling, but far below "hung forever".
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall recovery took %v", elapsed)
	}
}

// TestStallFailsLoudlyWithoutBudget: with no restart budget and no
// degraded opt-in, a stall kills the plan with a typed error naming the
// wedged stage.
func TestStallFailsLoudlyWithoutBudget(t *testing.T) {
	cells, q, plan := governCells(t)
	_, _, err := NewExec(q, plan,
		WithFaultInjection(fault.StallNth(2)),
		WithProgressTimeout(60*time.Millisecond),
	).Execute(context.Background(), cells)
	if !errors.Is(err, govern.ErrStalled) {
		t.Fatalf("err = %v, want a stall error", err)
	}
	var se *govern.StallError
	if !errors.As(err, &se) || se.Stage != "partial-kmeans" {
		t.Fatalf("err = %v, want StallError naming partial-kmeans", err)
	}
}

// TestStallDegradesWhenRestartsExhausted: a terminal stall under
// WithDegradedResults returns the survivors plus a report instead of
// the stall error.
func TestStallDegradesWhenRestartsExhausted(t *testing.T) {
	cells, q, plan := governCells(t)
	got, stats, err := NewExec(q, plan,
		WithFaultInjection(fault.StallNth(2)),
		WithProgressTimeout(60*time.Millisecond),
		WithDegradedResults(),
	).Execute(context.Background(), cells)
	if err != nil {
		t.Fatalf("terminal stall should degrade, not error: %v", err)
	}
	rep := stats.Degraded
	if rep == nil {
		t.Fatal("no DegradedResult after a terminal stall")
	}
	if rep.Stalls != 1 || rep.DeadlineExceeded {
		t.Fatalf("report = %+v, want 1 stall and no deadline", rep)
	}
	// Only invocation 1 (cell 0, chunk 0) completed before the wedge;
	// everything else is lost.
	if rep.PointsLost != 600+450-150 {
		t.Fatalf("PointsLost = %d, want %d", rep.PointsLost, 600+450-150)
	}
	want := expectSurvivorResults(t, cells, q, plan, map[journalKey]bool{
		{0, 1}: true, {0, 2}: true, {0, 3}: true,
		{1, 0}: true, {1, 1}: true, {1, 2}: true,
	})
	assertSameResults(t, got, want)
}

// TestDeadlineDegrades: a run that cannot finish inside its deadline
// returns the work completed so far as a degraded answer; without the
// opt-in the same run fails with context.DeadlineExceeded.
func TestDeadlineDegrades(t *testing.T) {
	cells, q, plan := governCells(t)
	opts := func() []ExecOption {
		return []ExecOption{
			// Invocation 2 sleeps far past the deadline, so exactly one
			// chunk completes in time.
			WithFaultInjection(fault.DelayNth(2, 10*time.Second)),
			WithDeadline(250 * time.Millisecond),
		}
	}
	got, stats, err := NewExec(q, plan, append(opts(), WithDegradedResults())...).
		Execute(context.Background(), cells)
	if err != nil {
		t.Fatalf("deadline should degrade, not error: %v", err)
	}
	rep := stats.Degraded
	if rep == nil || !rep.DeadlineExceeded {
		t.Fatalf("report = %+v, want DeadlineExceeded", rep)
	}
	if len(got) != 1 || got[0].Key != cells[0].Key || got[0].LostChunks != 3 {
		t.Fatalf("results = %+v, want only cell 0 from its first chunk", got)
	}
	want := expectSurvivorResults(t, cells, q, plan, map[journalKey]bool{
		{0, 1}: true, {0, 2}: true, {0, 3}: true,
		{1, 0}: true, {1, 1}: true, {1, 2}: true,
	})
	assertSameResults(t, got, want)

	t.Run("without the option the deadline fails loudly", func(t *testing.T) {
		_, _, err := NewExec(q, plan, opts()...).Execute(context.Background(), cells)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	})
}

// TestMemoryBudgetShrinksPlan: halving the memory budget demonstrably
// reduces chunk size and fan-out (visible in ExecStats.Admission and
// the operator stats), and the governed run stays deterministic for a
// fixed seed.
func TestMemoryBudgetShrinksPlan(t *testing.T) {
	cells := []Cell{
		{Key: grid.CellKey{Lat: 1, Lon: 1}, Points: engineCell(t, 600, 21)},
		{Key: grid.CellKey{Lat: 2, Lon: 2}, Points: engineCell(t, 450, 22)},
	}
	q := Query{K: 5, Restarts: 2, Seed: 77, Workers: 2}
	plan := PhysicalPlan{ChunkPoints: 300, PartialClones: 4, QueueCapacity: 4}

	_, plain, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}

	// dim=4 points cost pointBytes(4) bytes each; this budget holds half
	// a planned chunk, forcing both a smaller chunk and serialized fan-out.
	budget := int64(150) * pointBytes(4)
	run := func() ([]CellResult, *ExecStats) {
		res, stats, err := NewExec(q, plan, WithMemoryBudget(budget)).
			Execute(context.Background(), cells)
		if err != nil {
			t.Fatal(err)
		}
		return res, stats
	}
	got1, stats := run()

	adm := stats.Admission
	if adm == nil || !adm.Constrained() {
		t.Fatalf("Admission = %+v, want a constrained decision", adm)
	}
	if adm.ChunkPoints >= plan.ChunkPoints {
		t.Fatalf("chunk not shrunk: %d -> %d", plan.ChunkPoints, adm.ChunkPoints)
	}
	if adm.Clones >= plan.PartialClones {
		t.Fatalf("clone fan-out not shrunk: %d -> %d", plan.PartialClones, adm.Clones)
	}
	if adm.Workers >= q.Workers {
		t.Fatalf("restart fan-out not shrunk: %d -> %d", q.Workers, adm.Workers)
	}
	if stats.Chunks <= plain.Chunks {
		t.Fatalf("governed run produced %d chunks, plain %d; smaller chunks should mean more of them",
			stats.Chunks, plain.Chunks)
	}
	if op := stats.Registry.Lookup("partial-kmeans"); op == nil || op.Clones() != adm.Clones {
		t.Fatalf("partial stage ran %v clones, admission said %d", op, adm.Clones)
	}

	got2, _ := run()
	assertSameResults(t, got2, got1)
}

// TestGovernedHealthyRunMatchesPlain: a run governed by generous
// budgets — deadline, progress timeout, memory, degraded opt-in — that
// never hits any of them must return exactly the ungoverned answer
// with a nil degradation report.
func TestGovernedHealthyRunMatchesPlain(t *testing.T) {
	cells, q, plan := governCells(t)
	want, _, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := NewExec(q, plan,
		WithBudget(govern.Budget{
			Deadline:        time.Minute,
			ProgressTimeout: 10 * time.Second,
			MemoryBytes:     1 << 30,
		}),
		WithDegradedResults(),
	).Execute(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
	if stats.Degraded != nil {
		t.Fatalf("healthy run reported degradation: %v", stats.Degraded)
	}
	if stats.Stalls != 0 {
		t.Fatalf("healthy run counted %d stalls", stats.Stalls)
	}
	if stats.Admission == nil || stats.Admission.Constrained() {
		t.Fatalf("generous budget produced admission %+v", stats.Admission)
	}
}

// TestGovernorStallSoak repeatedly wedges different invocations and
// demands the watchdog recover every time — the stall-fault soak
// scripts/check.sh runs under the race detector.
func TestGovernorStallSoak(t *testing.T) {
	cells, q, plan := governCells(t)
	want, _, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, nth := range []int64{1, 3, 6} {
		nth := nth
		t.Run(fmt.Sprintf("stall-invocation-%d", nth), func(t *testing.T) {
			got, stats, err := NewExec(q, plan,
				WithFaultInjection(fault.StallNth(nth)),
				WithProgressTimeout(80*time.Millisecond),
				WithRestarts(1),
			).Execute(context.Background(), cells)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, got, want)
			if stats.Stalls != 1 {
				t.Fatalf("Stalls = %d, want 1", stats.Stalls)
			}
		})
	}
}
