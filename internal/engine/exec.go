package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"streamkm/internal/fault"
	"streamkm/internal/govern"
	"streamkm/internal/obs"
	"streamkm/internal/rng"
	"streamkm/internal/stream"
	"streamkm/internal/trace"
)

// This file is the engine's single execution core. The paper's Conquest
// engine layers supervision, re-optimization, and query migration as
// *services* over one operator pipeline (§4); accordingly there is
// exactly one pipeline-assembly path here — scan → partial-kmeans →
// merge-kmeans — and every engine feature is an independently
// toggleable option on it:
//
//	supervision     WithRetry / WithRestarts / WithSupervision
//	journaling      WithJournal (migration checkpoint in/out)
//	re-optimization WithReopt (+ WithOnReoptEvent)
//	fault injection WithFaultInjection
//	tracing         WithTracer
//	compression     WithCompression
//	governing       WithDeadline / WithMemoryBudget / WithProgressTimeout / WithBudget
//	degradation     WithDegradedResults
//
// Any combination composes: an adaptive run can retry chunks and
// restart from its journal; a journaled run can scale up under
// backlog. Determinism holds across all of them because every chunk
// and merge draws from a pre-derived RNG that is copied before use, so
// the final centroids are bit-identical regardless of which features
// are enabled (the equivalence test suite pins this down).

// ExecOption toggles one engine service on an Exec.
type ExecOption func(*Exec)

// Exec is the composed executor for one query and physical plan: a
// specification of the pipeline plus the engine services enabled on
// it. Build with NewExec, run with Execute.
type Exec struct {
	q    Query
	plan PhysicalPlan

	retry       stream.RetryPolicy
	maxRestarts int
	journal     *Journal
	inject      *fault.Injector
	onRestart   func(restart int, err error)
	reopt       *ReoptPolicy
	onReopt     func(ReoptEvent)
	tracer      *trace.Tracer
	compress    *bool
	supervised  bool
	budget      govern.Budget
	degraded    bool
	obsReg      *obs.Registry
	remote      RemotePartial
}

// NewExec builds an executor for q under plan with the given features
// enabled. With no options it behaves exactly like the plain executor.
func NewExec(q Query, plan PhysicalPlan, opts ...ExecOption) *Exec {
	e := &Exec{q: q, plan: plan}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// WithRetry supervises the partial operator: panics become typed
// errors and each failing chunk is retried per the policy before it
// can fail the plan.
func WithRetry(p stream.RetryPolicy) ExecOption {
	return func(e *Exec) {
		e.retry = p
		e.supervised = true
	}
}

// WithRestarts allows up to max plan-level recoveries: after a crash
// the pipeline is rebuilt and re-run, skipping every chunk whose
// output the journal already holds.
func WithRestarts(max int) ExecOption {
	return func(e *Exec) {
		e.maxRestarts = max
		e.supervised = true
	}
}

// WithJournal seeds the execution from a prior run's checkpoint (query
// migration) and keeps recording into it, so the caller can Encode it
// at any time after a failure. Without this option the executor uses
// an internal journal pruned cell by cell as merges complete.
func WithJournal(j *Journal) ExecOption {
	return func(e *Exec) {
		e.journal = j
		e.supervised = true
	}
}

// WithFaultInjection injects faults in front of every partial-operator
// invocation (testing and chaos drills). Orthogonal to supervision:
// without retries or restarts an injected fault simply fails the plan.
func WithFaultInjection(inj *fault.Injector) ExecOption {
	return func(e *Exec) { e.inject = inj }
}

// WithOnRestart observes each plan-level recovery: the restart ordinal
// (1-based) and the error that killed the previous attempt.
func WithOnRestart(fn func(restart int, err error)) ExecOption {
	return func(e *Exec) { e.onRestart = fn }
}

// WithSupervision enables the whole supervision bundle at once — the
// legacy ExecuteSupervised configuration surface.
func WithSupervision(sup Supervision) ExecOption {
	return func(e *Exec) {
		e.retry = sup.Retry
		e.maxRestarts = sup.MaxRestarts
		e.inject = sup.Inject
		e.journal = sup.Journal
		e.onRestart = sup.OnRestart
		e.supervised = true
	}
}

// WithReopt runs the dynamic re-optimizer alongside the plan: a
// monitor samples the chunk queue and clones additional partial
// replicas (up to policy.MaxClones) while the queue stays congested.
// Decisions are reported in ExecStats.ReoptEvents.
func WithReopt(policy ReoptPolicy) ExecOption {
	return func(e *Exec) {
		p := policy
		e.reopt = &p
	}
}

// WithOnReoptEvent observes each re-optimizer decision as it happens
// (in addition to ExecStats.ReoptEvents).
func WithOnReoptEvent(fn func(ReoptEvent)) ExecOption {
	return func(e *Exec) { e.onReopt = fn }
}

// WithTracer records operator spans into tr instead of an internal
// tracer, letting a caller aggregate spans across executions.
func WithTracer(tr *trace.Tracer) ExecOption {
	return func(e *Exec) { e.tracer = tr }
}

// WithCompression overrides Query.Compress for this execution.
func WithCompression(on bool) ExecOption {
	return func(e *Exec) { e.compress = &on }
}

// WithWorkers overrides Query.Workers for this execution: each partial
// operator fans its Restarts across n goroutines. Because the restart
// fan-out is bit-identical to serial execution for any worker count,
// this composes with every other option without perturbing results.
func WithWorkers(n int) ExecOption {
	return func(e *Exec) { e.q.Workers = n }
}

// WithBudget enforces a whole resource envelope at once — the
// piecewise equivalent of WithDeadline + WithMemoryBudget +
// WithProgressTimeout (zero fields stay unenforced).
func WithBudget(b govern.Budget) ExecOption {
	return func(e *Exec) { e.budget = b }
}

// WithDeadline bounds the execution's wall-clock time. When the
// deadline fires the run fails with context.DeadlineExceeded — or, with
// WithDegradedResults, returns whatever has been computed so far as a
// degraded answer.
func WithDeadline(d time.Duration) ExecOption {
	return func(e *Exec) { e.budget.Deadline = d }
}

// WithMemoryBudget caps the execution's working-set estimate at bytes:
// before the pipeline starts, the governor deterministically shrinks the
// plan's chunk size and the partial/restart fan-out until the in-flight
// point data fits the budget (recorded in ExecStats.Admission). The
// shrink changes scheduling, not semantics — results for a given
// admitted plan are deterministic for a fixed seed.
func WithMemoryBudget(bytes int64) ExecOption {
	return func(e *Exec) { e.budget.MemoryBytes = bytes }
}

// WithProgressTimeout arms the stall watchdog: a sidecar samples every
// stage's heartbeat and queue counters, and if a stage holds pending
// work while making no progress for d, the attempt is cancelled with a
// typed *govern.StallError. A stall consumes a plan restart when
// WithRestarts allows one; otherwise it fails the plan — or degrades it
// under WithDegradedResults.
func WithProgressTimeout(d time.Duration) ExecOption {
	return func(e *Exec) { e.budget.ProgressTimeout = d }
}

// WithDegradedResults opts into the anytime contract: when a chunk
// permanently fails (retries exhausted), the deadline fires, or a stall
// outlives the restart budget, the execution returns the merge over
// every surviving partition plus a DegradedResult quality report in
// ExecStats.Degraded, instead of an error. Without this option those
// conditions fail the plan loudly.
func WithDegradedResults() ExecOption {
	return func(e *Exec) { e.degraded = true }
}

// newExecStats assembles the execution summary — previously built
// once per executor, now in exactly one place.
func newExecStats(reg *stream.StatsRegistry, tr *trace.Tracer, ob *execObs, start time.Time, cells, chunks, restarts int, events []ReoptEvent) *ExecStats {
	return &ExecStats{
		Registry:    reg,
		Trace:       tr,
		Obs:         ob.reg,
		Elapsed:     time.Since(start),
		Cells:       cells,
		Chunks:      chunks,
		Restarts:    restarts,
		ReoptEvents: events,
	}
}

// Execute runs the plan over the cells as one pipelined stream: a scan
// operator feeds pre-sliced chunks, PartialClones replicas of the
// partial k-means operator consume them from the shared queue, and the
// merge operator finalizes each cell the moment its last chunk
// arrives. Chunks of different cells interleave freely, so partial
// work on later cells overlaps merge work on earlier ones —
// inter-operator pipelining as in Fig. 5. Enabled features wrap this
// same pipeline rather than forking a different executor.
func (e *Exec) Execute(ctx context.Context, cells []Cell) ([]CellResult, *ExecStats, error) {
	if err := validateExecArgs(cells, e.q, e.plan); err != nil {
		return nil, nil, err
	}
	start := time.Now()

	// The governor first fits the plan to the memory budget — a pure,
	// deterministic shrink of chunk size and fan-out — then arms the
	// wall-clock deadline. Admission must precede task preparation so
	// the chunk slicing (and thus the RNG derivation) reflects the
	// admitted plan.
	q, plan := e.q, e.plan
	var admission *govern.Admission
	if e.budget.MemoryBytes > 0 {
		dim := 0
		if cells[0].Points != nil {
			dim = cells[0].Points.Dim()
		}
		a := govern.Admit(e.budget.MemoryBytes, pointBytes(dim),
			2*q.K, plan.ChunkPoints, plan.PartialClones, q.Workers)
		plan.ChunkPoints, plan.PartialClones, q.Workers = a.ChunkPoints, a.Clones, a.Workers
		admission = &a
	}
	if e.budget.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.budget.Deadline)
		defer cancel()
	}

	// Resolve the chunk-summarizer operator once for the whole
	// execution; its spec names the partial stage everywhere (plan
	// EXPLAIN, traces, metrics, watchdog probes, fault injection) and is
	// what the journal and the distributed workers see.
	summ, err := q.newSummarizer()
	if err != nil {
		return nil, nil, err
	}
	stagePartial := q.partialStage()
	stageMerge := q.mergeStage()

	master := rng.New(q.Seed)
	tasks, mergeRNGs, err := prepareTasks(cells, q, plan, master)
	if err != nil {
		return nil, nil, err
	}

	// One metrics registry per execution (the caller's under
	// WithObserver, so live counters are watchable while the plan runs).
	obsReg := e.obsReg
	if obsReg == nil {
		obsReg = obs.NewRegistry()
	}
	ob := newExecObs(obsReg, stagePartial, stageMerge)
	ob.cellsTotal.Add(int64(len(cells)))
	ob.chunksTotal.Add(int64(len(tasks)))
	if admission != nil && admission.Constrained() {
		ob.admissionRefit.Inc()
	}

	tr := e.tracer
	if tr == nil {
		tr = trace.New(0)
	}
	journal := e.journal
	retain := journal != nil
	if journal == nil {
		journal = NewJournal()
	}
	// A journal is bound to the operator that filled it: resuming a
	// checkpoint under a different summarizer would merge incompatible
	// summaries, so the mismatch is refused up front.
	if err := journal.bindOperator(summ.Spec()); err != nil {
		return nil, nil, err
	}
	compress := q.Compress
	if e.compress != nil {
		compress = *e.compress
	}
	merger := newCellMerger(cells, q, compress, mergeRNGs, tr, journal, retain, ob)

	// One registry for the whole execution: operator counters
	// (processed/retries/quarantined/...) aggregate across restart
	// attempts instead of reporting only the last attempt's pipeline.
	reg := stream.NewStatsRegistry()

	work := partialTransform(cells, summ, stagePartial, tr, ob, e.remote, journal)
	if e.inject != nil {
		base, inj := work, e.inject
		work = func(ctx context.Context, t chunkTask, emit stream.Emit[partialOut]) error {
			if err := inj.InvokeContext(ctx, stagePartial); err != nil {
				return err
			}
			return base(ctx, t, emit)
		}
	}
	var sup *stream.Supervisor[chunkTask]
	var failed *failedSet
	if e.supervised || e.degraded {
		// Each chunk's backoff schedule is keyed by its (cell, chunk)
		// identity, so retry timing is reproducible per chunk no matter
		// which clone picks it up or in what order failures land.
		sup = &stream.Supervisor[chunkTask]{Retry: e.retry, JitterSeed: q.Seed,
			ItemSeed: func(t chunkTask) uint64 {
				return uint64(t.cellIdx)*0x9e3779b97f4a7c15 ^ uint64(t.chunkIdx)*0xbf58476d1ce4e5b9
			}}
	}
	if e.degraded {
		// Graceful degradation rides on quarantine: a chunk that
		// exhausts its retries is recorded as permanently failed instead
		// of killing the plan, and the final merge proceeds over the
		// survivors.
		failed = newFailedSet()
		sup.DLQ = stream.NewDeadLetterQueue[chunkTask](len(tasks))
		sup.OnQuarantine = func(d stream.DeadLetter[chunkTask]) { failed.add(d.Item) }
	}

	var events []ReoptEvent
	restarts, stalls := 0, 0
	deadlineHit := false
	for {
		// Finalize cells the journal already completes (covers resume
		// from a decoded checkpoint and merges interrupted by a crash).
		if err := merger.mergeReady(); err != nil {
			return nil, nil, err
		}
		var remaining []chunkTask
		for _, t := range tasks {
			if merger.done(t.cellIdx) || journal.has(t.cellIdx, t.chunkIdx) {
				continue
			}
			if failed != nil && failed.has(t.cellIdx, t.chunkIdx) {
				continue // permanently failed: the degraded finalize reports it
			}
			remaining = append(remaining, t)
		}
		if len(remaining) == 0 {
			break
		}

		// Under a progress timeout each attempt gets its own cancellable
		// context so the watchdog can kill just this attempt, recording
		// the StallError as the cancellation cause.
		attemptCtx := ctx
		var cancelAttempt context.CancelCauseFunc
		var hbPartial, hbMerge *govern.Heartbeat
		if e.budget.ProgressTimeout > 0 {
			attemptCtx, cancelAttempt = context.WithCancelCause(ctx)
			hbPartial, hbMerge = new(govern.Heartbeat), new(govern.Heartbeat)
		}

		g, gctx := stream.NewGroup(attemptCtx)
		chunkQ := stream.NewQueue[chunkTask](queueChunks, plan.QueueCapacity)
		partQ := stream.NewQueue[partialOut](queuePartials, plan.QueueCapacity)

		stream.RunSource(g, gctx, reg, opScan, taskSource(remaining), chunkQ)
		pcfg := stream.StageConfig[chunkTask]{Name: stagePartial, Clones: plan.PartialClones, Sup: sup,
			Observe: ob.partialSeconds.ObserveDuration}
		mcfg := stream.StageConfig[partialOut]{Name: stageMerge, Clones: 1,
			Observe: ob.mergeSeconds.ObserveDuration}
		if hbPartial != nil {
			// Assign only when armed: a typed-nil *Heartbeat in the
			// interface field would read as "hook present".
			pcfg.Beat, mcfg.Beat = hbPartial, hbMerge
		}
		st := stream.RunStage(g, gctx, reg, pcfg, work, chunkQ, partQ)
		stream.RunStage(g, gctx, reg, mcfg,
			func(ctx context.Context, p partialOut, _ stream.Emit[struct{}]) error {
				return merger.sink(ctx, p)
			}, partQ, (*stream.Queue[struct{}])(nil))
		if e.reopt != nil {
			e.runReoptMonitor(g, gctx, st, chunkQ, len(remaining), start, &events)
		}

		// The watchdog runs as a sidecar, not a group member: it must
		// not hold g.Wait open on a healthy attempt, and it must be able
		// to cancel the very group it watches. Stage heartbeats and
		// queue dequeue counters together form the progress signal;
		// in-flight items plus queue backlog form the pending signal.
		var wdStop, wdDone chan struct{}
		if hbPartial != nil {
			wd := govern.NewWatchdog(e.budget.ProgressTimeout,
				govern.Probe{
					Name:     stagePartial,
					Progress: func() int64 { return hbPartial.Beats() + chunkQ.Dequeued() },
					Pending:  func() int64 { return hbPartial.InFlight() + int64(chunkQ.Len()) },
				},
				govern.Probe{
					Name:     stageMerge,
					Progress: func() int64 { return hbMerge.Beats() + partQ.Dequeued() },
					Pending:  func() int64 { return hbMerge.InFlight() + int64(partQ.Len()) },
				})
			wdStop, wdDone = make(chan struct{}), make(chan struct{})
			go func() {
				defer close(wdDone)
				wd.Watch(wdStop, func(err error) { cancelAttempt(err) })
			}()
		}

		err := g.Wait()
		if wdStop != nil {
			close(wdStop)
			<-wdDone
		}
		// Queues are rebuilt per attempt; fold this attempt's counters
		// into the registry before they go out of scope.
		ob.absorbQueues(summarizeQueue(chunkQ), summarizeQueue(partQ))
		stalled := false
		if cancelAttempt != nil {
			// Release the attempt context (a no-op if the watchdog
			// already cancelled it), then recover the true failure: the
			// group surfaces a watchdog kill as a bare cancellation, but
			// the context cause carries the StallError.
			cancelAttempt(nil)
			if cause := context.Cause(attemptCtx); err != nil && ctx.Err() == nil && errors.Is(cause, govern.ErrStalled) {
				stalls++
				ob.stalls.Inc()
				stalled = true
				err = cause
			}
		}
		if err == nil {
			continue // loop re-checks: merges done in sink, remaining empties
		}
		if ctx.Err() != nil {
			if e.degraded && errors.Is(ctx.Err(), context.DeadlineExceeded) {
				// Out of wall-clock: degrade to what has been journaled.
				deadlineHit = true
				break
			}
			// The caller cancelled; restarting would spin on a dead context.
			return nil, nil, err
		}
		if stalled && !(e.supervised && restarts < e.maxRestarts) {
			if e.degraded {
				break // terminal stall: degrade instead of failing
			}
			return nil, nil, fmt.Errorf("engine: plan stalled after %d restart(s): %w", restarts, err)
		}
		if !e.supervised {
			return nil, nil, err
		}
		if restarts >= e.maxRestarts {
			return nil, nil, fmt.Errorf("engine: plan failed after %d restart(s): %w", restarts, err)
		}
		restarts++
		ob.restarts.Inc()
		if e.onRestart != nil {
			e.onRestart(restarts, err)
		}
	}

	if e.degraded {
		results, report, err := merger.finalizeDegraded(tasks, deadlineHit, stalls)
		if err != nil {
			return nil, nil, err
		}
		if report != nil {
			ob.degradedChunks.Add(int64(len(report.DroppedChunks)))
			ob.degradedPoints.Add(int64(report.PointsLost))
		}
		stats := newExecStats(reg, tr, ob, start, len(cells), len(tasks), restarts, events)
		stats.Admission, stats.Stalls, stats.Degraded = admission, stalls, report
		stats.Leases = journal.Leases()
		return results, stats, nil
	}
	results, err := merger.finalize()
	if err != nil {
		return nil, nil, err
	}
	stats := newExecStats(reg, tr, ob, start, len(cells), len(tasks), restarts, events)
	stats.Admission, stats.Stalls = admission, stalls
	stats.Leases = journal.Leases()
	return results, stats, nil
}
