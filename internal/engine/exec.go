package engine

import (
	"context"
	"fmt"
	"time"

	"streamkm/internal/fault"
	"streamkm/internal/rng"
	"streamkm/internal/stream"
	"streamkm/internal/trace"
)

// This file is the engine's single execution core. The paper's Conquest
// engine layers supervision, re-optimization, and query migration as
// *services* over one operator pipeline (§4); accordingly there is
// exactly one pipeline-assembly path here — scan → partial-kmeans →
// merge-kmeans — and every engine feature is an independently
// toggleable option on it:
//
//	supervision     WithRetry / WithRestarts / WithSupervision
//	journaling      WithJournal (migration checkpoint in/out)
//	re-optimization WithReopt (+ WithOnReoptEvent)
//	fault injection WithFaultInjection
//	tracing         WithTracer
//	compression     WithCompression
//
// Any combination composes: an adaptive run can retry chunks and
// restart from its journal; a journaled run can scale up under
// backlog. Determinism holds across all of them because every chunk
// and merge draws from a pre-derived RNG that is copied before use, so
// the final centroids are bit-identical regardless of which features
// are enabled (the equivalence test suite pins this down).

// ExecOption toggles one engine service on an Exec.
type ExecOption func(*Exec)

// Exec is the composed executor for one query and physical plan: a
// specification of the pipeline plus the engine services enabled on
// it. Build with NewExec, run with Execute.
type Exec struct {
	q    Query
	plan PhysicalPlan

	retry       stream.RetryPolicy
	maxRestarts int
	journal     *Journal
	inject      *fault.Injector
	onRestart   func(restart int, err error)
	reopt       *ReoptPolicy
	onReopt     func(ReoptEvent)
	tracer      *trace.Tracer
	compress    *bool
	supervised  bool
}

// NewExec builds an executor for q under plan with the given features
// enabled. With no options it behaves exactly like the plain executor.
func NewExec(q Query, plan PhysicalPlan, opts ...ExecOption) *Exec {
	e := &Exec{q: q, plan: plan}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// WithRetry supervises the partial operator: panics become typed
// errors and each failing chunk is retried per the policy before it
// can fail the plan.
func WithRetry(p stream.RetryPolicy) ExecOption {
	return func(e *Exec) {
		e.retry = p
		e.supervised = true
	}
}

// WithRestarts allows up to max plan-level recoveries: after a crash
// the pipeline is rebuilt and re-run, skipping every chunk whose
// output the journal already holds.
func WithRestarts(max int) ExecOption {
	return func(e *Exec) {
		e.maxRestarts = max
		e.supervised = true
	}
}

// WithJournal seeds the execution from a prior run's checkpoint (query
// migration) and keeps recording into it, so the caller can Encode it
// at any time after a failure. Without this option the executor uses
// an internal journal pruned cell by cell as merges complete.
func WithJournal(j *Journal) ExecOption {
	return func(e *Exec) {
		e.journal = j
		e.supervised = true
	}
}

// WithFaultInjection injects faults in front of every partial-operator
// invocation (testing and chaos drills). Orthogonal to supervision:
// without retries or restarts an injected fault simply fails the plan.
func WithFaultInjection(inj *fault.Injector) ExecOption {
	return func(e *Exec) { e.inject = inj }
}

// WithOnRestart observes each plan-level recovery: the restart ordinal
// (1-based) and the error that killed the previous attempt.
func WithOnRestart(fn func(restart int, err error)) ExecOption {
	return func(e *Exec) { e.onRestart = fn }
}

// WithSupervision enables the whole supervision bundle at once — the
// legacy ExecuteSupervised configuration surface.
func WithSupervision(sup Supervision) ExecOption {
	return func(e *Exec) {
		e.retry = sup.Retry
		e.maxRestarts = sup.MaxRestarts
		e.inject = sup.Inject
		e.journal = sup.Journal
		e.onRestart = sup.OnRestart
		e.supervised = true
	}
}

// WithReopt runs the dynamic re-optimizer alongside the plan: a
// monitor samples the chunk queue and clones additional partial
// replicas (up to policy.MaxClones) while the queue stays congested.
// Decisions are reported in ExecStats.ReoptEvents.
func WithReopt(policy ReoptPolicy) ExecOption {
	return func(e *Exec) {
		p := policy
		e.reopt = &p
	}
}

// WithOnReoptEvent observes each re-optimizer decision as it happens
// (in addition to ExecStats.ReoptEvents).
func WithOnReoptEvent(fn func(ReoptEvent)) ExecOption {
	return func(e *Exec) { e.onReopt = fn }
}

// WithTracer records operator spans into tr instead of an internal
// tracer, letting a caller aggregate spans across executions.
func WithTracer(tr *trace.Tracer) ExecOption {
	return func(e *Exec) { e.tracer = tr }
}

// WithCompression overrides Query.Compress for this execution.
func WithCompression(on bool) ExecOption {
	return func(e *Exec) { e.compress = &on }
}

// WithWorkers overrides Query.Workers for this execution: each partial
// operator fans its Restarts across n goroutines. Because the restart
// fan-out is bit-identical to serial execution for any worker count,
// this composes with every other option without perturbing results.
func WithWorkers(n int) ExecOption {
	return func(e *Exec) { e.q.Workers = n }
}

// newExecStats assembles the execution summary — previously built
// once per executor, now in exactly one place.
func newExecStats(reg *stream.StatsRegistry, tr *trace.Tracer, start time.Time, cells, chunks, restarts int, events []ReoptEvent) *ExecStats {
	return &ExecStats{
		Registry:    reg,
		Trace:       tr,
		Elapsed:     time.Since(start),
		Cells:       cells,
		Chunks:      chunks,
		Restarts:    restarts,
		ReoptEvents: events,
	}
}

// Execute runs the plan over the cells as one pipelined stream: a scan
// operator feeds pre-sliced chunks, PartialClones replicas of the
// partial k-means operator consume them from the shared queue, and the
// merge operator finalizes each cell the moment its last chunk
// arrives. Chunks of different cells interleave freely, so partial
// work on later cells overlaps merge work on earlier ones —
// inter-operator pipelining as in Fig. 5. Enabled features wrap this
// same pipeline rather than forking a different executor.
func (e *Exec) Execute(ctx context.Context, cells []Cell) ([]CellResult, *ExecStats, error) {
	if err := validateExecArgs(cells, e.q, e.plan); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	master := rng.New(e.q.Seed)
	tasks, mergeRNGs, err := prepareTasks(cells, e.q, e.plan, master)
	if err != nil {
		return nil, nil, err
	}

	tr := e.tracer
	if tr == nil {
		tr = trace.New(0)
	}
	journal := e.journal
	retain := journal != nil
	if journal == nil {
		journal = NewJournal()
	}
	compress := e.q.Compress
	if e.compress != nil {
		compress = *e.compress
	}
	merger := newCellMerger(cells, e.q, compress, mergeRNGs, tr, journal, retain)

	// One registry for the whole execution: operator counters
	// (processed/retries/quarantined/...) aggregate across restart
	// attempts instead of reporting only the last attempt's pipeline.
	reg := stream.NewStatsRegistry()

	work := partialTransform(cells, e.q, tr)
	if e.inject != nil {
		base, inj := work, e.inject
		work = func(ctx context.Context, t chunkTask, emit stream.Emit[partialOut]) error {
			if err := inj.Invoke("partial-kmeans"); err != nil {
				return err
			}
			return base(ctx, t, emit)
		}
	}
	var sup *stream.Supervisor[chunkTask]
	if e.supervised {
		sup = &stream.Supervisor[chunkTask]{Retry: e.retry, JitterSeed: e.q.Seed}
	}

	var events []ReoptEvent
	restarts := 0
	for {
		// Finalize cells the journal already completes (covers resume
		// from a decoded checkpoint and merges interrupted by a crash).
		if err := merger.mergeReady(); err != nil {
			return nil, nil, err
		}
		var remaining []chunkTask
		for _, t := range tasks {
			if !merger.done(t.cellIdx) && !journal.has(t.cellIdx, t.chunkIdx) {
				remaining = append(remaining, t)
			}
		}
		if len(remaining) == 0 {
			break
		}

		g, gctx := stream.NewGroup(ctx)
		chunkQ := stream.NewQueue[chunkTask]("chunks", e.plan.QueueCapacity)
		partQ := stream.NewQueue[partialOut]("partials", e.plan.QueueCapacity)

		stream.RunSource(g, gctx, reg, "scan", taskSource(remaining), chunkQ)
		st := stream.RunStage(g, gctx, reg,
			stream.StageConfig[chunkTask]{Name: "partial-kmeans", Clones: e.plan.PartialClones, Sup: sup},
			work, chunkQ, partQ)
		stream.RunSink(g, gctx, reg, "merge-kmeans", 1, merger.sink, partQ)
		if e.reopt != nil {
			e.runReoptMonitor(g, gctx, st, chunkQ, len(remaining), start, &events)
		}

		err := g.Wait()
		if err == nil {
			continue // loop re-checks: merges done in sink, remaining empties
		}
		if ctx.Err() != nil {
			// The caller cancelled; restarting would spin on a dead context.
			return nil, nil, err
		}
		if !e.supervised {
			return nil, nil, err
		}
		if restarts >= e.maxRestarts {
			return nil, nil, fmt.Errorf("engine: plan failed after %d restart(s): %w", restarts, err)
		}
		restarts++
		if e.onRestart != nil {
			e.onRestart(restarts, err)
		}
	}

	results, err := merger.finalize()
	if err != nil {
		return nil, nil, err
	}
	return results, newExecStats(reg, tr, start, len(cells), len(tasks), restarts, events), nil
}
