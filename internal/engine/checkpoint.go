package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
)

// The execution journal is the engine's answer to Conquest's query
// migration (§4): it records every completed partial-operator output
// keyed by (cell, chunk), so a crashed physical plan can restart — in
// this process or, via Encode/Decode, in another one — re-running only
// the chunks whose results were lost in flight. Merges are *not*
// journaled: they are deterministic given the journaled partials (each
// cell's merge RNG is pre-derived from the query seed), so recovery
// re-derives them, keeping the snapshot small and the format simple.
//
// Layout (little-endian):
//
//	magic   [4]byte "SKMJ"
//	version uint16
//	entries uint32
//	entry   entries x { cell uint32, chunk uint32, total uint32,
//	                    elapsedNs int64, weighted-set block }
//
// Version 2 (written only when the journal holds lease records —
// distributed executions) appends after the entries:
//
//	leases  uint32
//	lease   leases x { cell uint32, chunk uint32, attempt uint32,
//	                   workerLen uint16, worker bytes,
//	                   errLen uint16, err bytes }
//
// A journal with no leases still encodes as version 1, so local
// checkpoints remain byte-identical to PR 2's format and old readers
// keep working on them.
//
// Version 3 (written only when the journal was filled by a summarizer
// other than the default k-means operator) inserts a length-prefixed
// operator record between the header and the entries, and always ends
// with the lease section (count may be 0):
//
//	magic    [4]byte "SKMJ"
//	version  uint16 = 3
//	operator uint16 length + canonical core.SummarizerSpec encoding
//	entries  uint32, then entries as in v1
//	leases   uint32, then leases as in v2
//
// Journals written by the k-means operator keep encoding as v1/v2, so
// every pre-summarizer checkpoint stays byte-identical and decodes to
// an implicit "kmeans" operator record.
const (
	journalMagic      = "SKMJ"
	journalVersion    = 1
	journalVersionV2  = 2
	journalVersionV3  = 3
	journalMaxStrLen  = 1 << 12
	journalMaxEntries = 1 << 24
)

// ErrBadJournal is wrapped by journal decoding errors.
var ErrBadJournal = errors.New("engine: malformed execution journal")

// ErrJournalOperatorMismatch is returned when an execution tries to
// resume a journal that was filled by a different summarizer operator —
// merging summaries produced by two different operators would be
// silently wrong, so the resume is refused up front.
var ErrJournalOperatorMismatch = errors.New("engine: journal operator mismatch")

type journalKey struct{ cell, chunk int }

type journalEntry struct {
	total     int
	elapsed   time.Duration
	centroids *dataset.WeightedSet
}

// LeaseRecord audits one assignment of a chunk to a remote worker: the
// exactly-once ledger of a distributed execution. A chunk computed on
// the first try has one record with an empty Err; a chunk re-leased
// after a worker death has one record per failed lease (Err set)
// followed by the surviving worker's completing record. Attempt is the
// 1-based position in the chunk's assignment trail.
type LeaseRecord struct {
	Cell, Chunk int
	Worker      string
	Attempt     int
	// Err is the failure that ended the lease ("" = completed).
	Err string
}

// Journal accumulates completed partial outputs during an execution.
// It is safe for concurrent use. Every execution records through a
// journal (the unified executor merges cells straight out of it); a
// per-cell done/total index keeps the readiness check O(1) per record
// instead of a scan over all journaled chunks.
type Journal struct {
	mu     sync.Mutex
	parts  map[journalKey]journalEntry
	done   map[int]int // cell -> journaled chunk count
	totals map[int]int // cell -> total chunk count
	leases []LeaseRecord
	// operator is the canonical spec encoding of the summarizer that
	// filled the journal ("" until the first execution binds one;
	// legacy checkpoints decode to the bare operator name).
	operator string
}

// NewJournal returns an empty journal.
func NewJournal() *Journal {
	return &Journal{
		parts:  map[journalKey]journalEntry{},
		done:   map[int]int{},
		totals: map[int]int{},
	}
}

// put stores one entry and maintains the per-cell index; j.mu must be
// held. It reports false for a duplicate key (nothing stored).
func (j *Journal) put(k journalKey, e journalEntry) bool {
	if _, ok := j.parts[k]; ok {
		return false
	}
	j.parts[k] = e
	j.done[k.cell]++
	j.totals[k.cell] = e.total
	return true
}

// record stores one completed partial output. It reports false for a
// duplicate (cell, chunk) — an already-journaled chunk delivered again,
// e.g. by an at-least-once network retry — which is counted but never
// stored twice: the journal is the last line of defense against
// double-counting a chunk into a merge.
func (j *Journal) record(p partialOut) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.put(journalKey{p.cellIdx, p.chunkIdx}, journalEntry{
		total:     p.total,
		elapsed:   p.res.Elapsed,
		centroids: p.res.Centroids,
	})
}

// Operator returns the canonical spec encoding of the summarizer bound
// to the journal ("" when no execution has bound one yet).
func (j *Journal) Operator() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.operator
}

// operatorName extracts the operator name from a canonical spec
// encoding ("kmeans(k=5,...)" -> "kmeans").
func operatorName(enc string) string {
	if i := strings.IndexByte(enc, '('); i >= 0 {
		return enc[:i]
	}
	return enc
}

// operatorIdentity normalizes a spec encoding for resume-compatibility
// comparison: execution-shape params that never change the summary bits
// (restart fan-out workers, the accelerated Lloyd toggle) are dropped,
// so a checkpoint taken on an 8-core worker pool resumes on a laptop.
func operatorIdentity(enc string) string {
	spec, err := core.ParseSummarizerSpec(enc)
	if err != nil {
		return enc
	}
	delete(spec.Params, "workers")
	delete(spec.Params, "accel")
	return spec.Encode()
}

// bindOperator ties the journal to the executing summarizer. The first
// binding records the spec; later bindings must be identity-compatible
// or the resume is refused with ErrJournalOperatorMismatch. A bare
// operator name (a decoded legacy checkpoint) accepts any spec of the
// same operator and upgrades to the full encoding.
func (j *Journal) bindOperator(spec core.SummarizerSpec) error {
	enc := spec.Encode()
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.operator {
	case "", enc, spec.Name:
		j.operator = enc
		return nil
	}
	if operatorIdentity(j.operator) == operatorIdentity(enc) {
		j.operator = enc
		return nil
	}
	return fmt.Errorf("%w: journal was written by %q, query runs %q",
		ErrJournalOperatorMismatch, j.operator, enc)
}

// recordLeases appends a chunk's assignment trail — one record per
// worker that held its lease, in order — to the lease ledger.
func (j *Journal) recordLeases(cell, chunk int, trail []Assignment) {
	if len(trail) == 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, a := range trail {
		j.leases = append(j.leases, LeaseRecord{
			Cell: cell, Chunk: chunk, Worker: a.Worker, Attempt: i + 1, Err: a.Err,
		})
	}
}

// Leases returns a snapshot of the lease ledger in deterministic
// (cell, chunk, attempt) order.
func (j *Journal) Leases() []LeaseRecord {
	j.mu.Lock()
	out := make([]LeaseRecord, len(j.leases))
	copy(out, j.leases)
	j.mu.Unlock()
	sortLeases(out)
	return out
}

// sortLeases orders records by (cell, chunk, attempt, worker) — the
// canonical order for Encode and Leases, making equal ledgers compare
// (and serialize) identically even though clones append concurrently.
func sortLeases(ls []LeaseRecord) {
	sort.Slice(ls, func(a, b int) bool {
		if ls[a].Cell != ls[b].Cell {
			return ls[a].Cell < ls[b].Cell
		}
		if ls[a].Chunk != ls[b].Chunk {
			return ls[a].Chunk < ls[b].Chunk
		}
		if ls[a].Attempt != ls[b].Attempt {
			return ls[a].Attempt < ls[b].Attempt
		}
		return ls[a].Worker < ls[b].Worker
	})
}

// dropCell forgets a cell's journaled chunks — called after the cell is
// merged when the journal is internal to one execution, so a plain run
// doesn't accumulate every partial result for the whole plan.
func (j *Journal) dropCell(cell int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	total := j.totals[cell]
	for c := 0; c < total; c++ {
		delete(j.parts, journalKey{cell, c})
	}
	delete(j.done, cell)
	delete(j.totals, cell)
}

// has reports whether the chunk's output is journaled.
func (j *Journal) has(cell, chunk int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.parts[journalKey{cell, chunk}]
	return ok
}

// Chunks returns the number of journaled partial outputs.
func (j *Journal) Chunks() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.parts)
}

// CellProgress returns how many of the cell's chunks are journaled and
// the cell's total chunk count (0, 0 when nothing is journaled for it).
func (j *Journal) CellProgress(cell int) (done, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done[cell], j.totals[cell]
}

// cellParts returns the cell's partial results in chunk order, or
// ok=false when the cell is not yet complete.
func (j *Journal) cellParts(cell int) (parts []*dataset.WeightedSet, elapsed time.Duration, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	total, have := j.totals[cell]
	if !have || j.done[cell] < total {
		return nil, 0, false
	}
	parts = make([]*dataset.WeightedSet, total)
	for c := 0; c < total; c++ {
		e, have := j.parts[journalKey{cell, c}]
		if !have {
			return nil, 0, false
		}
		parts[c] = e.centroids
		elapsed += e.elapsed
	}
	return parts, elapsed, true
}

// availableParts returns whichever of the cell's partial results the
// journal holds, in chunk order, plus the chunk indices that are
// missing — the degraded finalizer's view of a cell that will never
// complete. total is the cell's planned chunk count (the journal may
// not know it when no chunk ever landed).
func (j *Journal) availableParts(cell, total int) (parts []*dataset.WeightedSet, elapsed time.Duration, missing []int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for c := 0; c < total; c++ {
		e, have := j.parts[journalKey{cell, c}]
		if !have {
			missing = append(missing, c)
			continue
		}
		parts = append(parts, e.centroids)
		elapsed += e.elapsed
	}
	return parts, elapsed, missing
}

// Encode serializes the journal — the engine's migration checkpoint.
// Entries are written in (cell, chunk) order so equal journals produce
// identical bytes.
func (j *Journal) Encode(w io.Writer) error {
	j.mu.Lock()
	keys := make([]journalKey, 0, len(j.parts))
	for k := range j.parts {
		keys = append(keys, k)
	}
	entries := make(map[journalKey]journalEntry, len(j.parts))
	for k, e := range j.parts {
		entries[k] = e
	}
	leases := make([]LeaseRecord, len(j.leases))
	copy(leases, j.leases)
	operator := j.operator
	j.mu.Unlock()
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].cell != keys[b].cell {
			return keys[a].cell < keys[b].cell
		}
		return keys[a].chunk < keys[b].chunk
	})
	sortLeases(leases)

	// A lease-free journal writes version 1 — byte-identical to the
	// pre-distributed format — so only distributed checkpoints carry the
	// lease section, and only non-k-means summarizers carry the operator
	// record (v3): every checkpoint a pre-summarizer engine could have
	// produced still serializes to the bytes it produced then.
	version := uint16(journalVersion)
	if len(leases) > 0 {
		version = journalVersionV2
	}
	if name := operatorName(operator); name != "" && name != core.SummarizerKMeans {
		version = journalVersionV3
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(journalMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, version); err != nil {
		return err
	}
	if version == journalVersionV3 {
		if err := writeJournalString(bw, operator); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		e := entries[k]
		for _, v := range []any{
			uint32(k.cell),
			uint32(k.chunk),
			uint32(e.total),
			int64(e.elapsed),
		} {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		if err := dataset.EncodeWeightedSet(bw, e.centroids); err != nil {
			return err
		}
	}
	if version >= journalVersionV2 {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(leases))); err != nil {
			return err
		}
		for _, l := range leases {
			for _, v := range []any{uint32(l.Cell), uint32(l.Chunk), uint32(l.Attempt)} {
				if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
					return err
				}
			}
			if err := writeJournalString(bw, l.Worker); err != nil {
				return err
			}
			if err := writeJournalString(bw, l.Err); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// writeJournalString writes a length-prefixed string (uint16 length).
func writeJournalString(w io.Writer, s string) error {
	if len(s) > journalMaxStrLen {
		s = s[:journalMaxStrLen]
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// readJournalString reads a string written by writeJournalString.
func readJournalString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if int(n) > journalMaxStrLen {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// DecodeJournal reconstructs a journal from its serialized form.
func DecodeJournal(r io.Reader) (*Journal, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadJournal, err)
	}
	if string(magic) != journalMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadJournal, magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadJournal, err)
	}
	if version < journalVersion || version > journalVersionV3 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadJournal, version)
	}
	// Pre-v3 checkpoints were by construction filled by the k-means
	// partial operator; the implicit name-only record lets bindOperator
	// accept any k-means spec on resume.
	operator := core.SummarizerKMeans
	if version == journalVersionV3 {
		var err error
		if operator, err = readJournalString(br); err != nil {
			return nil, fmt.Errorf("%w: operator record: %v", ErrBadJournal, err)
		}
		if operator == "" {
			return nil, fmt.Errorf("%w: empty operator record", ErrBadJournal)
		}
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadJournal, err)
	}
	if count > journalMaxEntries {
		return nil, fmt.Errorf("%w: implausible entry count %d", ErrBadJournal, count)
	}
	j := NewJournal()
	j.operator = operator
	for i := uint32(0); i < count; i++ {
		var cell, chunk, total uint32
		var elapsedNs int64
		for _, v := range []any{&cell, &chunk, &total} {
			if err := binary.Read(br, binary.LittleEndian, v); err != nil {
				return nil, fmt.Errorf("%w: entry %d: %v", ErrBadJournal, i, err)
			}
		}
		if err := binary.Read(br, binary.LittleEndian, &elapsedNs); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadJournal, i, err)
		}
		if cell > math.MaxInt32 || chunk > math.MaxInt32 || total > math.MaxInt32 || chunk >= total {
			return nil, fmt.Errorf("%w: entry %d has implausible indices (cell %d chunk %d total %d)",
				ErrBadJournal, i, cell, chunk, total)
		}
		set, err := dataset.DecodeWeightedSet(br)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadJournal, i, err)
		}
		k := journalKey{int(cell), int(chunk)}
		if !j.put(k, journalEntry{
			total:     int(total),
			elapsed:   time.Duration(elapsedNs),
			centroids: set,
		}) {
			return nil, fmt.Errorf("%w: duplicate entry for cell %d chunk %d", ErrBadJournal, cell, chunk)
		}
	}
	if version >= journalVersionV2 {
		var leases uint32
		if err := binary.Read(br, binary.LittleEndian, &leases); err != nil {
			return nil, fmt.Errorf("%w: lease count: %v", ErrBadJournal, err)
		}
		if leases > journalMaxEntries {
			return nil, fmt.Errorf("%w: implausible lease count %d", ErrBadJournal, leases)
		}
		for i := uint32(0); i < leases; i++ {
			var cell, chunk, attempt uint32
			for _, v := range []any{&cell, &chunk, &attempt} {
				if err := binary.Read(br, binary.LittleEndian, v); err != nil {
					return nil, fmt.Errorf("%w: lease %d: %v", ErrBadJournal, i, err)
				}
			}
			if cell > math.MaxInt32 || chunk > math.MaxInt32 || attempt > math.MaxInt32 {
				return nil, fmt.Errorf("%w: lease %d has implausible indices", ErrBadJournal, i)
			}
			worker, err := readJournalString(br)
			if err != nil {
				return nil, fmt.Errorf("%w: lease %d worker: %v", ErrBadJournal, i, err)
			}
			leaseErr, err := readJournalString(br)
			if err != nil {
				return nil, fmt.Errorf("%w: lease %d err: %v", ErrBadJournal, i, err)
			}
			j.leases = append(j.leases, LeaseRecord{
				Cell: int(cell), Chunk: int(chunk), Attempt: int(attempt),
				Worker: worker, Err: leaseErr,
			})
		}
	}
	return j, nil
}
