package engine

import (
	"context"
	"fmt"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/govern"
	"streamkm/internal/grid"
	"streamkm/internal/histogram"
	"streamkm/internal/kmeans"
	"streamkm/internal/obs"
	"streamkm/internal/rng"
	"streamkm/internal/stream"
	"streamkm/internal/trace"
)

// Stage names: pipeline operators, trace timeline lanes, and obs metric
// stage labels all use the same vocabulary, so a lane in the timeline
// cross-references a stage label in the JSON run report. The partial
// stage is named after the summarizer operator actually running in it
// (Query.partialStage(): "partial-kmeans", "partial-ecvq",
// "partial-coreset"); opPartial is that label for the default operator.
const (
	opScan    = "scan"
	opPartial = "partial-" + core.SummarizerKMeans
	// The merge stage is named after the solver running in it
	// (Query.mergeStage()); opMerge is the full-Lloyd default.
	opMerge          = "merge-kmeans"
	opMergeMiniBatch = "merge-" + kmeans.SolverMiniBatch

	queueChunks   = "chunks"
	queuePartials = "partials"
)

// Cell is one unit of work for the executor: a keyed grid cell's points.
type Cell struct {
	Key    grid.CellKey
	Points *dataset.Set
}

// CellResult is the executor's per-cell output.
type CellResult struct {
	Key grid.CellKey
	// Partitions is the number of chunks that contributed to the cell's
	// merge — its planned chunk count, minus LostChunks on a degraded
	// execution.
	Partitions int
	// LostChunks counts partitions missing from this cell's merge —
	// always 0 for a complete cell; positive only when a governed
	// execution degraded (see ExecStats.Degraded).
	LostChunks int
	// Centroids, Weights, MergeMSE mirror core.Result.
	Result *core.MergeResult
	// PointMSE is the quality against the cell's raw points.
	PointMSE float64
	// PartialTime sums the cell's partial-step durations.
	PartialTime time.Duration
	// Histogram is the cell's compressed representation; set only when
	// Query.Compress is true.
	Histogram *histogram.Histogram
}

// ExecStats summarizes a plan execution.
type ExecStats struct {
	// Registry exposes per-operator counters.
	Registry *stream.StatsRegistry
	// Trace records operator spans; render with Trace.Timeline.
	Trace *trace.Tracer
	// Elapsed is the end-to-end wall-clock time.
	Elapsed time.Duration
	// Cells and Chunks count the processed units.
	Cells  int
	Chunks int
	// Restarts counts plan-level recoveries (0 unless restarts were
	// enabled and a crash occurred).
	Restarts int
	// ReoptEvents records the dynamic re-optimizer's decisions (empty
	// unless the adaptive feature was enabled).
	ReoptEvents []ReoptEvent
	// Admission records the memory governor's plan-fitting decision
	// (nil when no memory budget was set).
	Admission *govern.Admission
	// Stalls counts attempts the stall watchdog cancelled.
	Stalls int
	// Degraded is the quality report of a governed run that returned a
	// partial answer; nil means the results are complete.
	Degraded *DegradedResult
	// Leases is the distributed execution's assignment ledger — one
	// record per (chunk, worker) lease, in (cell, chunk, attempt) order.
	// Empty for local executions.
	Leases []LeaseRecord
	// Obs is the unified metrics registry the execution recorded into
	// (the caller's, under WithObserver, else an internal one). Render
	// it with Report.
	Obs *obs.Registry
}

// chunkTask is one partition of one cell queued for the partial operator.
type chunkTask struct {
	cellIdx  int
	chunkIdx int
	total    int
	chunk    *dataset.Set
	rng      *rng.RNG
}

// partialOut is a partial operator's output, keyed back to its cell.
type partialOut struct {
	cellIdx  int
	chunkIdx int
	total    int
	res      *core.PartialResult
}

// prepareTasks slices every cell up front so per-chunk RNGs are stable
// regardless of scheduling; the chunks themselves share the cells'
// backing arrays, so this costs index slices, not data copies.
func prepareTasks(cells []Cell, q Query, plan PhysicalPlan, master *rng.RNG) ([]chunkTask, []*rng.RNG, error) {
	var tasks []chunkTask
	for ci, cell := range cells {
		if cell.Points == nil || cell.Points.Len() == 0 {
			return nil, nil, fmt.Errorf("engine: cell %d (%v) is empty", ci, cell.Key)
		}
		splitRNG := master.Split()
		chunks, err := dataset.SplitByBudget(cell.Points, plan.ChunkPoints, q.Strategy, splitRNG)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: cell %v: %w", cell.Key, err)
		}
		for pi, c := range chunks {
			tasks = append(tasks, chunkTask{
				cellIdx:  ci,
				chunkIdx: pi,
				total:    len(chunks),
				chunk:    c,
				rng:      master.Split(),
			})
		}
	}
	mergeRNGs := make([]*rng.RNG, len(cells))
	for i := range mergeRNGs {
		mergeRNGs[i] = master.Split()
	}
	return tasks, mergeRNGs, nil
}

func validateExecArgs(cells []Cell, q Query, plan PhysicalPlan) error {
	if err := q.validate(); err != nil {
		return err
	}
	if len(cells) == 0 {
		return fmt.Errorf("engine: no cells to execute")
	}
	if plan.ChunkPoints <= 0 {
		return fmt.Errorf("engine: plan has non-positive chunk size %d", plan.ChunkPoints)
	}
	return nil
}

func partialTransform(cells []Cell, summ core.Summarizer, stage string, tr *trace.Tracer, ob *execObs, remote RemotePartial, journal *Journal) stream.TransformFunc[chunkTask, partialOut] {
	spec := summ.Spec()
	return func(ctx context.Context, t chunkTask, emit stream.Emit[partialOut]) error {
		key := cells[t.cellIdx].Key
		end := tr.SpanL(stage, fmt.Sprintf("%v/%d", key, t.chunkIdx),
			trace.Label{Key: "stage", Value: stage},
			trace.Label{Key: "cell", Value: fmt.Sprintf("%v", key)},
			trace.Label{Key: "chunk", Value: fmt.Sprintf("%d", t.chunkIdx)})
		// Every invocation is one attempt (retries of a supervised chunk
		// re-enter here); chunk-level metrics update at this granularity
		// so the Lloyd loop itself carries no instrumentation.
		ob.chunkAttempts.Inc()
		ob.points.Add(int64(t.chunk.Len()))
		ob.bytes.Add(int64(t.chunk.Len()) * pointBytes(t.chunk.Dim()))
		ob.chunkPoints.Observe(float64(t.chunk.Len()))
		// Work on a copy of the task's pre-derived RNG so a retried or
		// restarted chunk replays the identical random sequence — locally
		// or on a remote worker, which receives this exact state along
		// with the operator spec so it runs the identical summarizer.
		taskRNG := *t.rng
		var pr *core.PartialResult
		var err error
		if remote != nil {
			var trail []Assignment
			pr, trail, err = remote.Partial(ctx, RemoteChunk{
				Cell: t.cellIdx, Chunk: t.chunkIdx, Total: t.total,
				Points: t.chunk, RNG: &taskRNG, Spec: spec,
			})
			journal.recordLeases(t.cellIdx, t.chunkIdx, trail)
		} else {
			pr, err = summ.Summarize(t.chunk, &taskRNG)
		}
		end()
		if err != nil {
			return fmt.Errorf("cell %v chunk %d: %w", key, t.chunkIdx, err)
		}
		ob.kmIterPartial.Add(int64(pr.Iterations))
		ob.kmRestarts.Add(int64(pr.Restarts))
		ob.kmConvPartial.Add(int64(pr.Converged))
		ob.kmDeltaMSE.Set(pr.DeltaMSE)
		ob.summaryPoints.Add(int64(pr.Centroids.Len()))
		return emit(partialOut{cellIdx: t.cellIdx, chunkIdx: t.chunkIdx, total: t.total, res: pr})
	}
}

func taskSource(tasks []chunkTask) stream.SourceFunc[chunkTask] {
	return func(_ context.Context, emit stream.Emit[chunkTask]) error {
		for _, t := range tasks {
			if err := emit(t); err != nil {
				return err
			}
		}
		return nil
	}
}

// Execute runs the physical plan over the cells with no engine
// services enabled — a thin wrapper over the composable executor; see
// Exec.Execute for the pipeline description.
func Execute(ctx context.Context, cells []Cell, q Query, plan PhysicalPlan) ([]CellResult, *ExecStats, error) {
	return NewExec(q, plan).Execute(ctx, cells)
}

// Run is the one-call convenience: optimize the query against the
// resource model, then execute, returning results, the chosen plan, and
// execution stats.
func Run(ctx context.Context, cells []Cell, q Query, res Resources) ([]CellResult, PhysicalPlan, *ExecStats, error) {
	if len(cells) == 0 {
		return nil, PhysicalPlan{}, nil, fmt.Errorf("engine: no cells")
	}
	sizes := make([]int, len(cells))
	dim := 0
	for i, c := range cells {
		if c.Points == nil {
			return nil, PhysicalPlan{}, nil, fmt.Errorf("engine: cell %d has nil points", i)
		}
		sizes[i] = c.Points.Len()
		if dim == 0 {
			dim = c.Points.Dim()
		} else if c.Points.Dim() != dim {
			return nil, PhysicalPlan{}, nil, fmt.Errorf("engine: cell %d has dim %d, want %d", i, c.Points.Dim(), dim)
		}
	}
	plan, err := Optimize(q, sizes, dim, res)
	if err != nil {
		return nil, PhysicalPlan{}, nil, err
	}
	results, stats, err := Execute(ctx, cells, q, plan)
	if err != nil {
		return nil, plan, nil, err
	}
	return results, plan, stats, nil
}
