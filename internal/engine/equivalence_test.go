package engine

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"streamkm/internal/fault"
	"streamkm/internal/stream"
)

// This file is the bit-identical equivalence suite for the composable
// executor: for fixed seeds, every feature combination — including
// ones the legacy executors could not express, like supervised +
// adaptive + journaled — must reproduce the exact centroids, weights,
// and MSE of the plain Execute path.

// fastReopt returns a re-optimizer policy aggressive enough to fire on
// test-sized plans.
func fastReopt(maxClones int) ReoptPolicy {
	return ReoptPolicy{
		SampleInterval:   time.Millisecond,
		BacklogFraction:  0.25,
		SustainedSamples: 1,
		MaxClones:        maxClones,
	}
}

func TestComposedMatchesLegacyExecutors(t *testing.T) {
	cells, q, plan := recoverCells(t)
	want, _, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]ExecOption{
		"no options":          nil,
		"supervision bundle":  {WithSupervision(Supervision{})},
		"retry only":          {WithRetry(stream.RetryPolicy{MaxRetries: 2})},
		"restarts only":       {WithRestarts(2)},
		"journal only":        {WithJournal(NewJournal())},
		"adaptive only":       {WithReopt(fastReopt(4))},
		"supervised adaptive": {WithRetry(stream.RetryPolicy{MaxRetries: 2}), WithReopt(fastReopt(4))},
		"everything": {
			WithRetry(stream.RetryPolicy{MaxRetries: 2}),
			WithRestarts(2),
			WithJournal(NewJournal()),
			WithReopt(fastReopt(4)),
			WithTracer(nil), // nil tracer option must fall back to internal tracer
		},
	}
	for name, opts := range cases {
		got, stats, err := NewExec(q, plan, opts...).Execute(context.Background(), cells)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertSameResults(t, got, want)
		if stats.Restarts != 0 {
			t.Fatalf("%s: clean run restarted %d times", name, stats.Restarts)
		}
	}
}

// TestComposedSupervisedAdaptiveJournaledSurvivesFaults exercises the
// combination the legacy executors could not express at all: one run
// that retries failing chunks, restarts from its journal after
// crashes, AND scales up under backlog — and still produces
// bit-identical results under injected errors and panics. check.sh
// runs this under -race.
func TestComposedSupervisedAdaptiveJournaledSurvivesFaults(t *testing.T) {
	cells, q, plan := recoverCells(t)
	want, _, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(fault.Config{Seed: 6, ErrorRate: 0.3, PanicRate: 0.1})
	journal := NewJournal()
	var restarts []error
	got, stats, err := NewExec(q, plan,
		WithRetry(stream.RetryPolicy{MaxRetries: 25, BaseBackoff: time.Microsecond, Jitter: 0.5}),
		WithRestarts(3),
		WithJournal(journal),
		WithFaultInjection(inj),
		WithOnRestart(func(_ int, err error) { restarts = append(restarts, err) }),
		WithReopt(fastReopt(4)),
	).Execute(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
	if inj.Faults() == 0 {
		t.Fatal("injector never fired; test exercised nothing")
	}
	if op := stats.Registry.Lookup("partial-kmeans"); op == nil || op.Retries() == 0 {
		t.Fatal("no retries recorded despite injected faults")
	}
	if journal.Chunks() != stats.Chunks {
		t.Fatalf("journal holds %d chunks, want %d", journal.Chunks(), stats.Chunks)
	}
}

// TestComposedCrashDecodeResume is the migration path through the
// composed executor: crash a journaled run, serialize the journal,
// decode it in a "new process", and resume with a different feature
// set (supervised + adaptive) — still bit-identical.
func TestComposedCrashDecodeResume(t *testing.T) {
	cells, q, plan := recoverCells(t)
	want, _, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	journal := NewJournal()
	_, _, err = NewExec(q, plan,
		WithJournal(journal),
		WithFaultInjection(fault.ErrorNth(4)),
	).Execute(context.Background(), cells)
	if err == nil {
		t.Fatal("expected the crashing run to die (no restart budget)")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("crash error = %v", err)
	}
	var buf bytes.Buffer
	if err := journal.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := NewExec(q, plan,
		WithJournal(restored),
		WithRetry(stream.RetryPolicy{MaxRetries: 1}),
		WithReopt(fastReopt(4)),
	).Execute(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
	if done := journal.Chunks(); done > 0 {
		if op := stats.Registry.Lookup("partial-kmeans"); op != nil && op.Processed() > int64(stats.Chunks-done)+int64(op.Retries()) {
			t.Fatalf("resumed run re-ran journaled chunks: processed %d of %d remaining",
				op.Processed(), stats.Chunks-done)
		}
	}
}

// TestRegistryAggregatesAcrossRestarts is the regression test for the
// stats bug the unified core fixes: the legacy supervised executor
// rebuilt the registry on every restart, so only the final attempt's
// counters survived. Aggregated counters must show the crashed
// attempt's work too: with one crash, at least one chunk is consumed
// twice, so processed must exceed the plan's chunk count.
func TestRegistryAggregatesAcrossRestarts(t *testing.T) {
	cells, q, plan := recoverCells(t)
	_, stats, err := NewExec(q, plan,
		WithRestarts(2),
		WithFaultInjection(fault.ErrorNth(3)),
	).Execute(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", stats.Restarts)
	}
	op := stats.Registry.Lookup("partial-kmeans")
	if op == nil {
		t.Fatal("partial-kmeans missing from registry")
	}
	if op.Processed() <= int64(stats.Chunks) {
		t.Fatalf("processed = %d across restarts, want > %d (last-attempt-only registry?)",
			op.Processed(), stats.Chunks)
	}
	// The scan operator restarted too; its aggregated emissions must
	// likewise exceed a single clean pass.
	if scan := stats.Registry.Lookup("scan"); scan == nil || scan.Emitted() <= int64(stats.Chunks) {
		t.Fatalf("scan emissions not aggregated across restarts")
	}
	// Exactly one registry entry per operator, not one per attempt.
	names := map[string]int{}
	for _, s := range stats.Registry.All() {
		names[s.Name()]++
	}
	for name, n := range names {
		if n != 1 {
			t.Fatalf("operator %q registered %d times", name, n)
		}
	}
}

// TestCompressionOptionComposes pins WithCompression both as an
// enable-override and a disable-override of Query.Compress, on a
// supervised pipeline.
func TestCompressionOptionComposes(t *testing.T) {
	cells, q, plan := recoverCells(t)
	qc := q
	qc.Compress = true
	want, _, err := Execute(context.Background(), cells, qc, plan)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := NewExec(q, plan,
		WithCompression(true),
		WithRetry(stream.RetryPolicy{MaxRetries: 1}),
	).Execute(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
	for i := range got {
		if got[i].Histogram == nil {
			t.Fatalf("cell %d: WithCompression(true) attached no histogram", i)
		}
		if got[i].Histogram.Total() != want[i].Histogram.Total() {
			t.Fatalf("cell %d: histogram totals differ", i)
		}
	}
	off, _, err := NewExec(qc, plan, WithCompression(false)).Execute(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := range off {
		if off[i].Histogram != nil {
			t.Fatalf("cell %d: WithCompression(false) did not suppress the histogram", i)
		}
	}
}

// TestAdaptiveWrapperReturnsStatsEvents pins the legacy wrapper's
// contract: the events return value and ExecStats.ReoptEvents are the
// same record.
func TestAdaptiveWrapperReturnsStatsEvents(t *testing.T) {
	cells, q, plan := recoverCells(t)
	plan.PartialClones = 1
	_, stats, events, err := ExecuteAdaptive(context.Background(), cells, q, plan, fastReopt(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(stats.ReoptEvents) {
		t.Fatalf("wrapper returned %d events, stats hold %d", len(events), len(stats.ReoptEvents))
	}
	for i := range events {
		if events[i] != stats.ReoptEvents[i] {
			t.Fatalf("event %d differs between wrapper and stats", i)
		}
	}
}
