package engine

import (
	"strings"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
)

func TestLogicalForAndValidate(t *testing.T) {
	q := Query{K: 40, Restarts: 10, Strategy: dataset.SplitRandom, MergeMode: core.MergeCollective}
	lp := LogicalFor(q, 3, false)
	if err := lp.Validate(); err != nil {
		t.Fatal(err)
	}
	if lp.Op != OpMerge {
		t.Fatalf("root = %v", lp.Op)
	}
	withC := LogicalFor(q, 3, true)
	if err := withC.Validate(); err != nil {
		t.Fatal(err)
	}
	if withC.Op != OpCompress {
		t.Fatalf("root = %v", withC.Op)
	}
}

func TestLogicalString(t *testing.T) {
	q := Query{K: 40, Restarts: 10}
	out := LogicalFor(q, 5, true).String()
	for _, want := range []string{
		"Compress",
		"  MergeKMeans(k=40, mode=collective)",
		"    PartialKMeans(k=40, operator=partial-kmeans, restarts=10)",
		"      Split(strategy=random)",
		"        Scan(cells=5)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestLogicalValidateRejectsMalformed(t *testing.T) {
	scan := &LogicalNode{Op: OpScan}
	cases := []struct {
		name string
		node *LogicalNode
	}{
		{"scan with child", &LogicalNode{Op: OpScan, Children: []*LogicalNode{scan}}},
		{"merge with two children", &LogicalNode{Op: OpMerge, Children: []*LogicalNode{scan, scan}}},
		{"merge over scan", &LogicalNode{Op: OpMerge, Children: []*LogicalNode{scan}}},
		{"unknown op", &LogicalNode{Op: LogicalOp(99)}},
		{"partial over partial", &LogicalNode{Op: OpPartial, Children: []*LogicalNode{
			{Op: OpPartial, Children: []*LogicalNode{scan}},
		}}},
	}
	for _, tc := range cases {
		if err := tc.node.Validate(); err == nil {
			t.Errorf("%s should be rejected", tc.name)
		}
	}
}

func TestAnnotatePhysical(t *testing.T) {
	q := Query{K: 8, Restarts: 3}
	lp := LogicalFor(q, 2, false)
	plan := PhysicalPlan{ChunkPoints: 500, PartialClones: 4, QueueCapacity: 8}
	annotated := lp.AnnotatePhysical(plan)
	out := annotated.String()
	for _, want := range []string{"clones=4", "chunkPoints=500", "queue=8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("annotation missing %q:\n%s", want, out)
		}
	}
	// Original untouched.
	if strings.Contains(lp.String(), "clones=") {
		t.Fatal("AnnotatePhysical mutated the original tree")
	}
	if err := annotated.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLogicalOpString(t *testing.T) {
	names := map[LogicalOp]string{
		OpScan: "Scan", OpSplit: "Split", OpPartial: "PartialKMeans",
		OpMerge: "MergeKMeans", OpCompress: "Compress",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q", int(op), op.String())
		}
	}
	if LogicalOp(42).String() == "" {
		t.Error("unknown op should stringify")
	}
}
