package engine

import (
	"fmt"
	"sync"

	"streamkm/internal/grid"
)

// This file carries the engine's anytime contract: a governed query
// that runs out of resources — a partition that permanently fails, a
// stage the watchdog gives up on, a wall-clock deadline — degrades to a
// typed partial answer instead of hanging or aborting. Streaming
// k-means systems are expected to answer anytime with a bounded-quality
// summary; here the summary is the merge over every surviving weighted
// centroid set, and DegradedResult is the quality report that makes the
// degradation auditable: exactly which partitions were dropped, how
// many points they held, and which cells are therefore partial.

// ChunkRef names one partition of one cell in a quality report.
type ChunkRef struct {
	// Cell is the owning cell's key; CellIndex its position in the
	// executed cell slice.
	Cell      grid.CellKey
	CellIndex int
	// Chunk is the partition index within the cell.
	Chunk int
	// Points is how many input points the partition held.
	Points int
}

// String formats the reference for logs.
func (c ChunkRef) String() string {
	return fmt.Sprintf("%v/%d (%d points)", c.Cell, c.Chunk, c.Points)
}

// DegradedResult is the quality report of a governed execution that
// returned a partial answer. It accompanies the surviving CellResults
// in ExecStats.Degraded; a nil report means the answer is complete.
type DegradedResult struct {
	// DroppedChunks lists every partition missing from the answer —
	// quarantined after exhausting its retries, or never processed
	// before the deadline or a terminal stall.
	DroppedChunks []ChunkRef
	// DroppedCells lists cells with no surviving partition at all;
	// they have no CellResult.
	DroppedCells []grid.CellKey
	// PartialCells lists cells merged over a strict subset of their
	// partitions; their CellResults carry LostChunks > 0.
	PartialCells []grid.CellKey
	// PointsLost sums the input points of all dropped partitions.
	PointsLost int
	// DeadlineExceeded reports that the wall-clock deadline forced the
	// degradation.
	DeadlineExceeded bool
	// Stalls counts watchdog-cancelled attempts over the whole run.
	Stalls int
}

// String renders the report as the one-line structured summary scripts
// parse from pmkm's stderr.
func (d *DegradedResult) String() string {
	return fmt.Sprintf("degraded: deadline=%t stalls=%d dropped_chunks=%d dropped_cells=%d partial_cells=%d points_lost=%d",
		d.DeadlineExceeded, d.Stalls, len(d.DroppedChunks), len(d.DroppedCells), len(d.PartialCells), d.PointsLost)
}

// failedSet records partitions that permanently failed (quarantined by
// the supervisor after exhausting their retries), so the scheduler
// stops re-queuing them and the degraded finalizer knows what was lost.
// Safe for concurrent use by cloned operators.
type failedSet struct {
	mu     sync.Mutex
	chunks map[journalKey]struct{}
}

func newFailedSet() *failedSet {
	return &failedSet{chunks: map[journalKey]struct{}{}}
}

func (f *failedSet) add(t chunkTask) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.chunks[journalKey{t.cellIdx, t.chunkIdx}] = struct{}{}
}

func (f *failedSet) has(cell, chunk int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.chunks[journalKey{cell, chunk}]
	return ok
}

// finalizeDegraded completes a governed execution: cells the journal
// completes keep their normal results, incomplete cells are merged over
// their surviving partitions (bit-identical to running partial/merge
// over only those partitions), and the report names everything lost.
// It returns a nil report when nothing was lost — the answer is
// complete and callers need not treat it specially.
func (m *cellMerger) finalizeDegraded(tasks []chunkTask, deadlineHit bool, stalls int) ([]CellResult, *DegradedResult, error) {
	// A deadline or stall can interrupt the pipeline between a cell's
	// last journal record and its merge; finish those cells normally
	// first so only genuinely incomplete cells degrade.
	if err := m.mergeReady(); err != nil {
		return nil, nil, err
	}
	totals := make([]int, len(m.cells))
	chunkPoints := make([][]int, len(m.cells))
	for _, t := range tasks {
		if chunkPoints[t.cellIdx] == nil {
			totals[t.cellIdx] = t.total
			chunkPoints[t.cellIdx] = make([]int, t.total)
		}
		chunkPoints[t.cellIdx][t.chunkIdx] = t.chunk.Len()
	}
	report := &DegradedResult{DeadlineExceeded: deadlineHit, Stalls: stalls}
	for ci := range m.cells {
		if m.done(ci) {
			continue
		}
		missing, err := m.mergePartial(ci, totals[ci])
		if err != nil {
			return nil, nil, err
		}
		key := m.cells[ci].Key
		for _, c := range missing {
			pts := chunkPoints[ci][c]
			report.DroppedChunks = append(report.DroppedChunks, ChunkRef{
				Cell: key, CellIndex: ci, Chunk: c, Points: pts,
			})
			report.PointsLost += pts
		}
		if len(missing) == totals[ci] {
			report.DroppedCells = append(report.DroppedCells, key)
		} else {
			report.PartialCells = append(report.PartialCells, key)
		}
	}
	m.mu.Lock()
	results := make([]CellResult, 0, len(m.cells))
	for ci, done := range m.completed {
		if done {
			results = append(results, m.results[ci])
		}
	}
	m.mu.Unlock()
	if len(report.DroppedChunks) == 0 && len(report.DroppedCells) == 0 {
		report = nil // nothing lost: the answer is complete
	}
	return results, report, nil
}
