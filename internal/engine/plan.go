// Package engine is the reproduction's stand-in for the Conquest stream
// query engine (§4): a clustering request is a logical query; the
// optimizer turns it into a physical plan by consulting a resource model
// (how much volatile memory may hold operator state, how many workers are
// available) — choosing the partition size so every chunk fits in RAM
// (§3.2) and the partial-operator clone count (§3.4, option 1); the
// executor then runs the plan as a pipelined stream of operators across
// any number of grid cells.
package engine

import (
	"fmt"
	"strings"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
)

// Query is the logical clustering request: cluster each input cell into
// K centroids using partial/merge k-means.
type Query struct {
	// K is the per-cell cluster count.
	K int
	// Restarts is the seed sets per partition.
	Restarts int
	// Epsilon is the ΔMSE convergence threshold (0 = paper default).
	Epsilon float64
	// MaxIterations caps Lloyd iterations (0 = default).
	MaxIterations int
	// Strategy is the slicing strategy for partitions.
	Strategy dataset.SplitStrategy
	// MergeMode selects collective or incremental merging.
	MergeMode core.MergeMode
	// Seed derives all randomness.
	Seed uint64
	// Accelerate selects Hamerly's bound-based Lloyd in both operator
	// kinds.
	Accelerate bool
	// Workers, when >= 2, fans each partial operator's Restarts across
	// that many goroutines (§3.4 option 2, inside one operator).
	// Orthogonal to the optimizer's clone count, and bit-identical to
	// serial execution for any value.
	Workers int
	// Compress appends the histogram stage (§1's compression product):
	// each CellResult carries a multivariate histogram built from the
	// cell's points and final centroids.
	Compress bool
	// Summarizer names the chunk-summarizer operator ("" or "kmeans" =
	// the paper's partial k-means; "ecvq", "coreset").
	Summarizer string
	// SeedMethod names the seeding strategy for both the k-means
	// partial stage and the merge stage (kmeans.SeederByName; "" keeps
	// the historic defaults: random partial, heaviest merge).
	SeedMethod string
	// MergeSolver selects the merge-stage iteration kernel
	// (kmeans.SolverNames; "" = full Lloyd, "minibatch" = sampled
	// gradient steps). Labeled in plans, traces, and metrics as
	// "merge-minibatch"; journals are unaffected (the merge re-runs on
	// resume from journaled partials, like Accelerate).
	MergeSolver string
	// CoresetSize is the coreset operator's output size m (0 = 10*K).
	CoresetSize int
	// ECVQMaxK and ECVQLambda parameterize the ecvq operator
	// (0 = 2*K and no rate penalty).
	ECVQMaxK   int
	ECVQLambda float64
}

func (q Query) validate() error {
	if q.K <= 0 {
		return fmt.Errorf("engine: K must be positive, got %d", q.K)
	}
	if q.Restarts <= 0 {
		return fmt.Errorf("engine: Restarts must be positive, got %d", q.Restarts)
	}
	if _, err := q.newSummarizer(); err != nil {
		return err
	}
	if err := kmeans.ValidateSolver(q.MergeSolver); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return nil
}

// newSummarizer resolves the query's chunk-summarizer operator.
func (q Query) newSummarizer() (core.Summarizer, error) {
	return core.SummarizerFor(q.Summarizer, core.SummarizerOptions{
		Partial:     q.partialConfig(),
		SeedMethod:  q.SeedMethod,
		CoresetSize: q.CoresetSize,
		ECVQ:        core.ECVQPartialConfig{MaxK: q.ECVQMaxK, Lambda: q.ECVQLambda},
	})
}

// partialStage names the partial stage after the operator actually
// running in it ("partial-kmeans", "partial-ecvq", "partial-coreset").
// The label flows into plan EXPLAIN output, traces, metric families,
// watchdog probes, and fault-injection points.
func (q Query) partialStage() string {
	name := q.Summarizer
	if name == "" {
		name = core.SummarizerKMeans
	}
	return "partial-" + name
}

// mergeStage names the merge stage after the solver running in it
// ("merge-kmeans" for the full Lloyd default, "merge-minibatch" for
// the sampled kernel), flowing into the same EXPLAIN/trace/metric/
// watchdog surfaces as partialStage.
func (q Query) mergeStage() string {
	if q.MergeSolver == kmeans.SolverMiniBatch {
		return opMergeMiniBatch
	}
	return opMerge
}

// Resources is the physical resource model the optimizer consults.
type Resources struct {
	// MemoryBytes is the volatile memory available for one partial
	// operator's state (the paper's "physical memory, not virtual
	// memory" constraint).
	MemoryBytes int64
	// Workers is the number of processors/machines available for
	// cloned operators.
	Workers int
}

// pointBytes estimates the in-memory footprint of one point during a
// partial k-means: the attribute payload plus slice/assignment overhead.
const perPointOverheadBytes = 48

func pointBytes(dim int) int64 { return int64(dim)*8 + perPointOverheadBytes }

// PhysicalPlan is the optimizer's decision.
type PhysicalPlan struct {
	// ChunkPoints is the maximum points per partition so a chunk fits
	// in the memory budget.
	ChunkPoints int
	// PartialClones is how many replicas of the partial operator run.
	PartialClones int
	// QueueCapacity sizes the inter-operator queues.
	QueueCapacity int
	// Rationale explains the decision for logs and EXPLAIN output.
	Rationale string
	// PartialStage labels the partial stage with the summarizer
	// operator that runs in it (Query.partialStage(); "" renders as the
	// k-means default for hand-built plans).
	PartialStage string
	// MergeStage labels the merge stage with the solver that runs in
	// it (Query.mergeStage(); "" renders as the full-Lloyd default).
	MergeStage string
}

// Explain formats the plan like a query EXPLAIN.
func (p PhysicalPlan) Explain() string {
	stage := p.PartialStage
	if stage == "" {
		stage = "partial-" + core.SummarizerKMeans
	}
	merge := p.MergeStage
	if merge == "" {
		merge = opMerge
	}
	var b strings.Builder
	fmt.Fprintf(&b, "PhysicalPlan:\n")
	fmt.Fprintf(&b, "  scan -> %s x%d -> %s\n", stage, p.PartialClones, merge)
	fmt.Fprintf(&b, "  chunk size: %d points\n", p.ChunkPoints)
	fmt.Fprintf(&b, "  queue capacity: %d\n", p.QueueCapacity)
	fmt.Fprintf(&b, "  rationale: %s\n", p.Rationale)
	return b.String()
}

// Optimize chooses a physical plan for the query given the resource
// model and workload shape (cell sizes and dimensionality). It returns
// an error when the memory budget cannot hold even a minimum viable
// chunk (2*K points — below that, partial k-means cannot seed k
// centroids with headroom).
func Optimize(q Query, cellSizes []int, dim int, res Resources) (PhysicalPlan, error) {
	if err := q.validate(); err != nil {
		return PhysicalPlan{}, err
	}
	if dim <= 0 {
		return PhysicalPlan{}, fmt.Errorf("engine: dim must be positive, got %d", dim)
	}
	if len(cellSizes) == 0 {
		return PhysicalPlan{}, fmt.Errorf("engine: no cells to plan for")
	}
	if res.MemoryBytes <= 0 {
		return PhysicalPlan{}, fmt.Errorf("engine: memory budget must be positive, got %d", res.MemoryBytes)
	}
	workers := res.Workers
	if workers < 1 {
		workers = 1
	}
	largest, total := 0, 0
	for _, n := range cellSizes {
		if n <= 0 {
			return PhysicalPlan{}, fmt.Errorf("engine: cell with non-positive size %d", n)
		}
		if n > largest {
			largest = n
		}
		total += n
	}
	minChunk := 2 * q.K
	budgetChunk := int(res.MemoryBytes / pointBytes(dim))
	if budgetChunk < minChunk {
		return PhysicalPlan{}, fmt.Errorf(
			"engine: memory budget %d bytes holds only %d points of dim %d, below the minimum viable chunk %d (k=%d)",
			res.MemoryBytes, budgetChunk, dim, minChunk, q.K)
	}
	chunk := budgetChunk
	if chunk > largest {
		// No cell needs chunking beyond its own size.
		chunk = largest
	}
	// Expected number of chunks across the workload bounds useful clones.
	expectedChunks := 0
	for _, n := range cellSizes {
		expectedChunks += (n + chunk - 1) / chunk
	}
	clones := workers
	if clones > expectedChunks {
		clones = expectedChunks
	}
	queueCap := 2 * clones
	if queueCap < 4 {
		queueCap = 4
	}
	return PhysicalPlan{
		ChunkPoints:   chunk,
		PartialClones: clones,
		QueueCapacity: queueCap,
		PartialStage:  q.partialStage(),
		MergeStage:    q.mergeStage(),
		Rationale: fmt.Sprintf(
			"budget %dB / %dB-per-point(dim=%d) = %d points per chunk; %d cells totalling %d points -> ~%d chunks; %d workers -> %d clones",
			res.MemoryBytes, pointBytes(dim), dim, budgetChunk, len(cellSizes), total, expectedChunks, workers, clones),
	}, nil
}

func (q Query) partialConfig() core.PartialConfig {
	return core.PartialConfig{
		K:             q.K,
		Restarts:      q.Restarts,
		Epsilon:       q.Epsilon,
		MaxIterations: q.MaxIterations,
		Accelerate:    q.Accelerate,
		Workers:       q.Workers,
	}
}

func (q Query) mergeConfig() core.MergeConfig {
	var seeder kmeans.Seeder = kmeans.HeaviestSeeder{}
	if q.SeedMethod != "" {
		if s, err := kmeans.SeederByName(q.SeedMethod); err == nil && s != nil {
			seeder = s
		}
	}
	return core.MergeConfig{
		K:             q.K,
		Epsilon:       q.Epsilon,
		MaxIterations: q.MaxIterations,
		Seeder:        seeder,
		Mode:          q.MergeMode,
		Accelerate:    q.Accelerate,
		Solver:        q.MergeSolver,
	}
}
