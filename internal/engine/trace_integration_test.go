package engine

import (
	"context"
	"strings"
	"testing"

	"streamkm/internal/grid"
)

func TestExecuteRecordsSpans(t *testing.T) {
	cells := []Cell{{Key: grid.CellKey{Lat: 3, Lon: 4}, Points: engineCell(t, 600, 61)}}
	q := Query{K: 6, Restarts: 2, Seed: 7}
	plan := PhysicalPlan{ChunkPoints: 200, PartialClones: 2, QueueCapacity: 4}
	_, stats, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trace == nil {
		t.Fatal("no tracer attached")
	}
	spans := stats.Trace.Spans()
	var partials, merges int
	for _, s := range spans {
		switch s.Op {
		case "partial-kmeans":
			partials++
			if !strings.Contains(s.Item, "N03E004") {
				t.Fatalf("span item %q missing cell key", s.Item)
			}
		case "merge-kmeans":
			merges++
		default:
			t.Fatalf("unexpected span op %q", s.Op)
		}
		if s.End < s.Start {
			t.Fatalf("inverted span %+v", s)
		}
	}
	if partials != 3 || merges != 1 {
		t.Fatalf("spans: %d partial, %d merge (want 3, 1)", partials, merges)
	}
	out := stats.Trace.Timeline(40)
	if !strings.Contains(out, "partial-kmeans") || !strings.Contains(out, "merge-kmeans") {
		t.Fatalf("timeline missing lanes:\n%s", out)
	}
}

func TestQueryAccelerateRuns(t *testing.T) {
	cells := []Cell{{Key: grid.CellKey{}, Points: engineCell(t, 500, 62)}}
	q := Query{K: 8, Restarts: 2, Seed: 9, Accelerate: true}
	plan := PhysicalPlan{ChunkPoints: 250, PartialClones: 1, QueueCapacity: 4}
	results, _, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].Result.Centroids) != 8 {
		t.Fatalf("centroids = %d", len(results[0].Result.Centroids))
	}
	if results[0].PointMSE > 5 {
		t.Fatalf("accelerated engine run lost quality: %g", results[0].PointMSE)
	}
}
