package engine

import (
	"context"
	"fmt"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/fault"
	"streamkm/internal/histogram"
	"streamkm/internal/metrics"
	"streamkm/internal/rng"
	"streamkm/internal/stream"
	"streamkm/internal/trace"
)

// This file implements the fault-tolerant executor: the paper's Conquest
// engine keeps long-running stream queries alive by restarting failed
// operators and migrating queries (§4). ExecuteSupervised runs the same
// physical plan as Execute, but (a) the partial operator is supervised —
// panics become typed errors and failing chunks are retried with
// exponential backoff — and (b) when the plan still dies, the executor
// restarts it from the execution journal, re-running only chunks whose
// outputs were lost in flight. Because every chunk and merge draws from a
// pre-derived RNG that is copied before use, a recovered run produces
// final centroids bit-identical to an undisturbed one.

// Supervision configures the fault-tolerant executor. The zero value
// runs the plan with panic recovery only (no retries, no restarts).
type Supervision struct {
	// Retry bounds per-chunk re-attempts inside a running plan.
	Retry stream.RetryPolicy
	// MaxRestarts bounds plan-level recoveries after a crash.
	MaxRestarts int
	// Inject, when non-nil, injects faults in front of every partial
	// operator invocation (testing and chaos drills). Nil in production.
	Inject *fault.Injector
	// Journal, when non-nil, seeds the execution from a prior run's
	// checkpoint (query migration); it is updated in place, so the
	// caller can Encode it at any time after a failure. Nil starts
	// fresh with an internal journal.
	Journal *Journal
	// OnRestart, when non-nil, observes each recovery: the restart
	// ordinal (1-based) and the error that killed the previous attempt.
	OnRestart func(restart int, err error)
}

// ExecuteSupervised runs the physical plan like Execute but under
// supervision and journaled recovery. Chunks that already completed —
// in a previous attempt, or in a previous process via sup.Journal — are
// not re-run. Results are bit-identical to Execute's for the same query
// and plan.
func ExecuteSupervised(ctx context.Context, cells []Cell, q Query, plan PhysicalPlan, sup Supervision) ([]CellResult, *ExecStats, error) {
	if err := validateExecArgs(cells, q, plan); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	master := rng.New(q.Seed)
	tasks, mergeRNGs, err := prepareTasks(cells, q, plan, master)
	if err != nil {
		return nil, nil, err
	}
	journal := sup.Journal
	if journal == nil {
		journal = NewJournal()
	}

	tr := trace.New(0)
	results := make([]CellResult, len(cells))
	completed := make([]bool, len(cells))

	// mergeCell finalizes one cell from the journal once all its chunks
	// are present. Deterministic: the merge RNG is a copy of the cell's
	// pre-derived generator, so re-merging after a crash (or in another
	// process after DecodeJournal) replays the identical sequence.
	mergeCell := func(ci int) error {
		if completed[ci] {
			return nil
		}
		parts, partialTime, ok := journal.cellParts(ci)
		if !ok {
			return nil
		}
		endSpan := tr.Span("merge-kmeans", fmt.Sprintf("%v", cells[ci].Key))
		mergeRNG := *mergeRNGs[ci]
		mr, err := core.MergeKMeans(parts, q.mergeConfig(), &mergeRNG)
		endSpan()
		if err != nil {
			return fmt.Errorf("cell %v merge: %w", cells[ci].Key, err)
		}
		pm, err := metrics.MSE(cells[ci].Points, mr.Centroids)
		if err != nil {
			return err
		}
		var hist *histogram.Histogram
		if q.Compress {
			endSpan := tr.Span("compress", fmt.Sprintf("%v", cells[ci].Key))
			hist, err = histogram.Build(cells[ci].Points, mr.Centroids)
			endSpan()
			if err != nil {
				return fmt.Errorf("cell %v compress: %w", cells[ci].Key, err)
			}
		}
		results[ci] = CellResult{
			Key:         cells[ci].Key,
			Partitions:  len(parts),
			Result:      mr,
			PointMSE:    pm,
			PartialTime: partialTime,
			Histogram:   hist,
		}
		completed[ci] = true
		return nil
	}

	base := partialTransform(cells, q, tr)
	work := base
	if sup.Inject != nil {
		inj := sup.Inject
		work = func(ctx context.Context, t chunkTask, emit stream.Emit[partialOut]) error {
			if err := inj.Invoke("partial-kmeans"); err != nil {
				return err
			}
			return base(ctx, t, emit)
		}
	}

	var reg *stream.StatsRegistry
	restarts := 0
	for {
		// Finalize cells the journal already completes (covers resume
		// from a decoded checkpoint and merges interrupted by a crash).
		for ci := range cells {
			if err := mergeCell(ci); err != nil {
				return nil, nil, err
			}
		}
		var remaining []chunkTask
		for _, t := range tasks {
			if !completed[t.cellIdx] && !journal.has(t.cellIdx, t.chunkIdx) {
				remaining = append(remaining, t)
			}
		}
		if len(remaining) == 0 {
			break
		}

		g, gctx := stream.NewGroup(ctx)
		reg = stream.NewStatsRegistry()
		chunkQ := stream.NewQueue[chunkTask]("chunks", plan.QueueCapacity)
		partQ := stream.NewQueue[partialOut]("partials", plan.QueueCapacity)

		stream.RunSource(g, gctx, reg, "scan", taskSource(remaining), chunkQ)
		stream.RunSupervisedTransform(g, gctx, reg, "partial-kmeans", plan.PartialClones,
			&stream.Supervisor[chunkTask]{Retry: sup.Retry, JitterSeed: q.Seed},
			work, chunkQ, partQ)
		sink := func(_ context.Context, p partialOut) error {
			journal.record(p)
			return mergeCell(p.cellIdx)
		}
		stream.RunSink(g, gctx, reg, "merge-kmeans", 1, sink, partQ)

		err := g.Wait()
		if err == nil {
			continue // loop re-checks: merges done in sink, remaining empties
		}
		if ctx.Err() != nil {
			// The caller cancelled; restarting would spin on a dead context.
			return nil, nil, err
		}
		if restarts >= sup.MaxRestarts {
			return nil, nil, fmt.Errorf("engine: plan failed after %d restart(s): %w", restarts, err)
		}
		restarts++
		if sup.OnRestart != nil {
			sup.OnRestart(restarts, err)
		}
	}

	for ci, done := range completed {
		if !done {
			return nil, nil, fmt.Errorf("engine: cell %v never completed", cells[ci].Key)
		}
	}
	if reg == nil {
		reg = stream.NewStatsRegistry() // fully resumed from checkpoint
	}
	stats := &ExecStats{
		Registry: reg,
		Trace:    tr,
		Elapsed:  time.Since(start),
		Cells:    len(cells),
		Chunks:   len(tasks),
		Restarts: restarts,
	}
	return results, stats, nil
}
