package engine

import (
	"context"

	"streamkm/internal/fault"
	"streamkm/internal/stream"
)

// Fault tolerance in the engine follows the paper's Conquest design:
// the engine keeps long-running stream queries alive by restarting
// failed operators and migrating queries (§4). These are services of
// the one composable executor (see exec.go): supervision retries
// failing chunks with exponential backoff, plan restarts replay only
// the chunks the execution journal lost in flight, and — because every
// chunk and merge draws from a pre-derived RNG that is copied before
// use — a recovered run produces final centroids bit-identical to an
// undisturbed one.

// Supervision bundles the fault-tolerance options. The zero value runs
// the plan with panic recovery only (no retries, no restarts).
type Supervision struct {
	// Retry bounds per-chunk re-attempts inside a running plan.
	Retry stream.RetryPolicy
	// MaxRestarts bounds plan-level recoveries after a crash.
	MaxRestarts int
	// Inject, when non-nil, injects faults in front of every partial
	// operator invocation (testing and chaos drills). Nil in production.
	Inject *fault.Injector
	// Journal, when non-nil, seeds the execution from a prior run's
	// checkpoint (query migration); it is updated in place, so the
	// caller can Encode it at any time after a failure. Nil starts
	// fresh with an internal journal.
	Journal *Journal
	// OnRestart, when non-nil, observes each recovery: the restart
	// ordinal (1-based) and the error that killed the previous attempt.
	OnRestart func(restart int, err error)
}

// ExecuteSupervised runs the physical plan under supervision and
// journaled recovery. Chunks that already completed — in a previous
// attempt, or in a previous process via sup.Journal — are not re-run.
// Results are bit-identical to Execute's for the same query and plan.
//
// Deprecated: compose the same behaviour with
// NewExec(q, plan, WithSupervision(sup)).Execute, which also combines
// with the adaptive and tracing options. This wrapper is kept for the
// engine's own use and tests; scripts/check.sh rejects new callers
// outside internal/engine.
func ExecuteSupervised(ctx context.Context, cells []Cell, q Query, plan PhysicalPlan, sup Supervision) ([]CellResult, *ExecStats, error) {
	return NewExec(q, plan, WithSupervision(sup)).Execute(ctx, cells)
}
