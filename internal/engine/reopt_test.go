package engine

import (
	"context"
	"math"
	"testing"
	"time"

	"streamkm/internal/grid"
)

func TestExecuteAdaptiveMatchesExecute(t *testing.T) {
	cells := []Cell{
		{Key: grid.CellKey{Lat: 1, Lon: 1}, Points: engineCell(t, 800, 31)},
		{Key: grid.CellKey{Lat: 1, Lon: 2}, Points: engineCell(t, 600, 32)},
	}
	q := Query{K: 6, Restarts: 2, Seed: 17}
	plan := PhysicalPlan{ChunkPoints: 200, PartialClones: 1, QueueCapacity: 2}
	fixed, _, err := Execute(context.Background(), cells, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, stats, _, err := ExecuteAdaptive(context.Background(), cells, q, plan, ReoptPolicy{
		SampleInterval: time.Millisecond,
		MaxClones:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cells != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	for i := range fixed {
		if math.Abs(fixed[i].Result.MSE-adaptive[i].Result.MSE) > 1e-12 {
			t.Fatalf("cell %d: adaptive MSE %g != fixed %g",
				i, adaptive[i].Result.MSE, fixed[i].Result.MSE)
		}
		for j := range fixed[i].Result.Centroids {
			if !fixed[i].Result.Centroids[j].Equal(adaptive[i].Result.Centroids[j]) {
				t.Fatalf("cell %d centroid %d differs under re-optimization", i, j)
			}
		}
	}
}

func TestExecuteAdaptiveScalesUpUnderBacklog(t *testing.T) {
	// A tiny queue and a slow-ish workload with many chunks keeps the
	// chunk queue full, so the re-optimizer must add clones.
	cells := []Cell{{Key: grid.CellKey{}, Points: engineCell(t, 4000, 33)}}
	q := Query{K: 8, Restarts: 3, Seed: 3}
	plan := PhysicalPlan{ChunkPoints: 100, PartialClones: 1, QueueCapacity: 2}
	_, stats, events, err := ExecuteAdaptive(context.Background(), cells, q, plan, ReoptPolicy{
		SampleInterval:   500 * time.Microsecond,
		SustainedSamples: 1,
		MaxClones:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("re-optimizer never scaled up despite sustained backlog")
	}
	last := events[len(events)-1]
	if last.Clones > 4 {
		t.Fatalf("scaled beyond MaxClones: %+v", last)
	}
	if last.Clones < 2 {
		t.Fatalf("expected at least one scale-up, got %+v", events)
	}
	if last.String() == "" {
		t.Fatal("event should format")
	}
	op := stats.Registry.Lookup("partial-kmeans")
	if op == nil || op.Clones() != last.Clones {
		t.Fatalf("registry clones %v != event %d", op, last.Clones)
	}
}

func TestExecuteAdaptiveNoScalingWithoutBudget(t *testing.T) {
	cells := []Cell{{Key: grid.CellKey{}, Points: engineCell(t, 1000, 34)}}
	q := Query{K: 6, Restarts: 2, Seed: 5}
	plan := PhysicalPlan{ChunkPoints: 100, PartialClones: 1, QueueCapacity: 2}
	// MaxClones 0/1 means the monitor may never add a clone.
	_, _, events, err := ExecuteAdaptive(context.Background(), cells, q, plan, ReoptPolicy{
		SampleInterval:   time.Millisecond,
		SustainedSamples: 1,
		MaxClones:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("scaled despite MaxClones=1: %+v", events)
	}
}

func TestExecuteAdaptiveValidation(t *testing.T) {
	if _, _, _, err := ExecuteAdaptive(context.Background(), nil,
		Query{K: 2, Restarts: 1}, PhysicalPlan{ChunkPoints: 10}, ReoptPolicy{}); err == nil {
		t.Fatal("no cells should error")
	}
}
