package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/histogram"
	"streamkm/internal/metrics"
	"streamkm/internal/rng"
	"streamkm/internal/trace"
)

// cellMerger is the one merge stage shared by every executor
// configuration: it consumes partial outputs through the execution
// journal and finalizes a cell the moment its last chunk is present.
// Merging always draws from a copy of the cell's pre-derived RNG, so a
// re-merge after a retry, a plan restart, or a resume in another
// process (via DecodeJournal) replays the identical random sequence —
// the invariant behind the bit-identical equivalence guarantees.
type cellMerger struct {
	cells     []Cell
	q         Query
	compress  bool
	mergeRNGs []*rng.RNG
	tr        *trace.Tracer
	journal   *Journal
	// retain keeps merged cells' chunks in the journal. It is set when
	// the journal outlives the execution (a caller-provided migration
	// checkpoint); an internal journal is pruned cell by cell instead.
	retain bool
	ob     *execObs
	// stage is the solver-derived merge stage label (Query.mergeStage),
	// shared with traces, metrics, and the watchdog.
	stage string

	mu        sync.Mutex
	results   []CellResult
	completed []bool
}

func newCellMerger(cells []Cell, q Query, compress bool, mergeRNGs []*rng.RNG, tr *trace.Tracer, journal *Journal, retain bool, ob *execObs) *cellMerger {
	return &cellMerger{
		cells:     cells,
		q:         q,
		compress:  compress,
		mergeRNGs: mergeRNGs,
		tr:        tr,
		journal:   journal,
		retain:    retain,
		ob:        ob,
		stage:     q.mergeStage(),
		results:   make([]CellResult, len(cells)),
		completed: make([]bool, len(cells)),
	}
}

// sink is the merge operator's SinkFunc: journal the partial output,
// then merge its cell if that completed it. A chunk the journal already
// holds — a duplicate delivery from an at-least-once transport — is
// counted as a dup and contributes nothing to the merge.
func (m *cellMerger) sink(_ context.Context, p partialOut) error {
	if m.journal.record(p) {
		m.ob.chunksDone.Inc()
	} else {
		m.ob.dupChunks.Inc()
	}
	return m.mergeCell(p.cellIdx)
}

// done reports whether the cell has been merged.
func (m *cellMerger) done(ci int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.completed[ci]
}

// mergeReady finalizes every cell the journal already completes —
// covers resume from a decoded checkpoint and merges interrupted by a
// crash.
func (m *cellMerger) mergeReady() error {
	for ci := range m.cells {
		if err := m.mergeCell(ci); err != nil {
			return err
		}
	}
	return nil
}

// mergeCell finalizes one cell from the journal once all its chunks are
// present; incomplete cells and already-merged cells are no-ops.
func (m *cellMerger) mergeCell(ci int) error {
	m.mu.Lock()
	if m.completed[ci] {
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()
	parts, partialTime, ok := m.journal.cellParts(ci)
	if !ok {
		return nil
	}
	return m.finishCell(ci, parts, partialTime, 0)
}

// mergePartial finalizes one incomplete cell over whichever of its
// partitions survived, returning the chunk indices that were lost. A
// cell with no surviving partition is left unmerged (the caller reports
// it dropped). Only the degraded finalizer calls this, after the
// pipeline has fully stopped.
func (m *cellMerger) mergePartial(ci, total int) (missing []int, err error) {
	parts, partialTime, missing := m.journal.availableParts(ci, total)
	if len(missing) == 0 {
		// The journal actually completes the cell; merge it normally.
		return nil, m.mergeCell(ci)
	}
	if len(parts) == 0 {
		return missing, nil
	}
	return missing, m.finishCell(ci, parts, partialTime, len(missing))
}

// finishCell runs the merge phase for one cell over the given partial
// results and records its CellResult. Both the complete and the
// degraded path land here, and both draw from a copy of the cell's
// pre-derived merge RNG — which is why a degraded cell's output is
// bit-identical to executing partial/merge over only its surviving
// partitions.
func (m *cellMerger) finishCell(ci int, parts []*dataset.WeightedSet, partialTime time.Duration, lost int) error {
	key := m.cells[ci].Key
	endSpan := m.tr.SpanL(m.stage, fmt.Sprintf("%v", key),
		trace.Label{Key: "stage", Value: m.stage},
		trace.Label{Key: "cell", Value: fmt.Sprintf("%v", key)})
	mergeRNG := *m.mergeRNGs[ci]
	mr, err := core.MergeKMeans(parts, m.q.mergeConfig(), &mergeRNG)
	endSpan()
	if err != nil {
		return fmt.Errorf("cell %v merge: %w", key, err)
	}
	m.ob.cellsMerged.Inc()
	m.ob.kmIterMerge.Add(int64(mr.Iterations))
	pm, err := metrics.MSE(m.cells[ci].Points, mr.Centroids)
	if err != nil {
		return err
	}
	var hist *histogram.Histogram
	if m.compress {
		endSpan := m.tr.Span("compress", fmt.Sprintf("%v", key))
		hist, err = histogram.Build(m.cells[ci].Points, mr.Centroids)
		endSpan()
		if err != nil {
			return fmt.Errorf("cell %v compress: %w", key, err)
		}
	}
	m.mu.Lock()
	m.results[ci] = CellResult{
		Key:         key,
		Partitions:  len(parts),
		LostChunks:  lost,
		Result:      mr,
		PointMSE:    pm,
		PartialTime: partialTime,
		Histogram:   hist,
	}
	m.completed[ci] = true
	m.mu.Unlock()
	if !m.retain {
		m.journal.dropCell(ci)
	}
	return nil
}

// finalize validates that every cell completed and returns the results.
func (m *cellMerger) finalize() ([]CellResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for ci, done := range m.completed {
		if !done {
			return nil, fmt.Errorf("engine: cell %v never completed", m.cells[ci].Key)
		}
	}
	return m.results, nil
}
