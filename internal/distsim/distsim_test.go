package distsim

import (
	"math"
	"testing"
	"time"

	"streamkm/internal/dataset"
)

func simCell(t testing.TB, n int) *dataset.Set {
	t.Helper()
	spec := dataset.DefaultCellSpec()
	spec.Clusters = 10
	spec.Dim = 4
	spec.NoiseFrac = 0
	s, err := dataset.GenerateCell(spec, n, 41)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func baseConfig() Config {
	return Config{
		Machines:     4,
		NetLatency:   100 * time.Microsecond,
		NetBandwidth: 125e6, // gigabit
		Splits:       8,
		K:            10,
		Restarts:     2,
		Seed:         9,
	}
}

func TestConfigValidation(t *testing.T) {
	cell := simCell(t, 400)
	mutations := []func(*Config){
		func(c *Config) { c.Machines = 0 },
		func(c *Config) { c.NetLatency = -1 },
		func(c *Config) { c.NetBandwidth = 0 },
		func(c *Config) { c.Splits = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.Restarts = 0 },
	}
	for i, mut := range mutations {
		cfg := baseConfig()
		mut(&cfg)
		if _, err := Run(cell, cfg); err == nil {
			t.Errorf("mutation %d should be rejected", i)
		}
	}
}

func TestRunBasics(t *testing.T) {
	cell := simCell(t, 2000)
	rep, err := Run(cell, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 || rep.ComputeTime <= 0 || rep.MergeTime <= 0 {
		t.Fatalf("timings: %+v", rep)
	}
	// 8 chunks × 2 messages each.
	if rep.Messages != 16 {
		t.Fatalf("Messages = %d", rep.Messages)
	}
	if rep.BytesMoved <= int64(2000*4*8) {
		t.Fatalf("BytesMoved = %d, must exceed the raw payload", rep.BytesMoved)
	}
	if len(rep.PerMachineBusy) != 4 {
		t.Fatalf("PerMachineBusy = %v", rep.PerMachineBusy)
	}
	var busy time.Duration
	for _, b := range rep.PerMachineBusy {
		busy += b
	}
	if busy != rep.ComputeTime {
		t.Fatalf("busy sum %v != compute %v", busy, rep.ComputeTime)
	}
	if rep.PointMSE <= 0 {
		t.Fatalf("PointMSE = %g", rep.PointMSE)
	}
}

func TestMoreMachinesIncreaseSpeedup(t *testing.T) {
	// Each Run re-measures real per-chunk compute, so makespans from
	// separate Run calls carry scheduler noise; Speedup (normalized
	// within a run) is the stable quantity.
	cell := simCell(t, 6000)
	var prev float64
	for i, machines := range []int{1, 2, 4} {
		cfg := baseConfig()
		cfg.Machines = machines
		cfg.Splits = 8
		rep, err := Run(cell, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && rep.Speedup() <= prev {
			t.Fatalf("machines=%d speedup %g not above previous %g",
				machines, rep.Speedup(), prev)
		}
		prev = rep.Speedup()
		if machines == 1 {
			// One machine: speedup relative to serial must be <= 1
			// (transfers only add cost).
			if s := rep.Speedup(); s > 1.0+1e-9 {
				t.Fatalf("1-machine speedup %g > 1", s)
			}
		}
	}
}

func TestSpeedupBoundedByMachinesAndChunks(t *testing.T) {
	cell := simCell(t, 6000)
	cfg := baseConfig()
	cfg.Machines = 16 // more machines than chunks
	cfg.Splits = 4
	rep, err := Run(cell, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.Speedup(); s > 4.5 {
		t.Fatalf("speedup %g exceeds the chunk-count bound", s)
	}
}

func TestSlowNetworkErodesSpeedup(t *testing.T) {
	cell := simCell(t, 4000)
	fast := baseConfig()
	slow := baseConfig()
	slow.NetBandwidth = 1e5 // 100 KB/s: transfers dominate
	fastRep, err := Run(cell, fast)
	if err != nil {
		t.Fatal(err)
	}
	slowRep, err := Run(cell, slow)
	if err != nil {
		t.Fatal(err)
	}
	if slowRep.Speedup() >= fastRep.Speedup() {
		t.Fatalf("slow network speedup %g not below fast %g",
			slowRep.Speedup(), fastRep.Speedup())
	}
	if slowRep.TransferTime <= fastRep.TransferTime {
		t.Fatalf("transfer time did not grow: %v vs %v",
			slowRep.TransferTime, fastRep.TransferTime)
	}
}

func TestResultQualityMatchesLocalRun(t *testing.T) {
	// The simulation is a timing model; the clustering itself must be
	// exactly what a local run with the same seed produces.
	cell := simCell(t, 2000)
	cfg := baseConfig()
	a, err := Run(cell, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Machines = 1 // machine count is timing-only
	b, err := Run(cell, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.MergeMSE-b.MergeMSE) > 1e-12 || math.Abs(a.PointMSE-b.PointMSE) > 1e-12 {
		t.Fatalf("machine count changed the clustering: %g/%g vs %g/%g",
			a.MergeMSE, a.PointMSE, b.MergeMSE, b.PointMSE)
	}
}
