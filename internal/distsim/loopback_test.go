package distsim_test

import (
	"context"
	"net"
	"testing"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/dist"
	"streamkm/internal/distsim"
	"streamkm/internal/engine"
	"streamkm/internal/grid"
	"streamkm/internal/rng"
	"streamkm/internal/stream"
)

// TestScheduleArithmetic pins the event-driven model with a
// hand-computed timeline: 2 workers, 1ms latency, 1 MB/s link, two
// 10ms jobs of 1000 bytes out / 100 bytes back.
//
//	transfer(1000) = 1ms + 1ms = 2ms; transfer(100) = 1ms + 0.1ms
//	job0: link free at 2ms → runs 2..12ms on w0 → arrives 13.1ms
//	job1: link free at 4ms → runs 4..14ms on w1 → arrives 15.1ms
func TestScheduleArithmetic(t *testing.T) {
	jobs := []distsim.Job{
		{Compute: 10 * time.Millisecond, OutBytes: 1000, InBytes: 100},
		{Compute: 10 * time.Millisecond, OutBytes: 1000, InBytes: 100},
	}
	tl := distsim.Schedule(2, time.Millisecond, 1e6, jobs)
	if want := 15100 * time.Microsecond; tl.AllArrived != want {
		t.Fatalf("AllArrived = %v, want %v", tl.AllArrived, want)
	}
	if tl.Messages != 4 || tl.BytesMoved != 2200 {
		t.Fatalf("Messages=%d BytesMoved=%d", tl.Messages, tl.BytesMoved)
	}
	if tl.PerMachineBusy[0] != 10*time.Millisecond || tl.PerMachineBusy[1] != 10*time.Millisecond {
		t.Fatalf("PerMachineBusy = %v", tl.PerMachineBusy)
	}
	// transfer sums: 2×(2ms + 1.1ms)
	if want := 6200 * time.Microsecond; tl.TransferTime != want {
		t.Fatalf("TransferTime = %v, want %v", tl.TransferTime, want)
	}
}

// TestScheduleMatchesLoopback validates the model against the real
// distributed runtime: a loopback coordinator/worker run's measured
// makespan must land in the same (generous) envelope as the model's
// prediction for the equivalent job set. The envelope is deliberately
// wide — scheduler noise, -race overhead, and loopback TCP all perturb
// wall-clock — but it still catches a model that is off by orders of
// magnitude or a runtime that serializes what should be parallel.
func TestScheduleMatchesLoopback(t *testing.T) {
	spec := dataset.DefaultCellSpec()
	spec.Clusters = 5
	spec.Dim = 4
	spec.NoiseFrac = 0
	cell, err := dataset.GenerateCell(spec, 1200, 33)
	if err != nil {
		t.Fatal(err)
	}
	const workers, chunkPoints = 2, 300
	q := engine.Query{K: 5, Restarts: 2, Seed: 77}
	plan := engine.PhysicalPlan{ChunkPoints: chunkPoints, PartialClones: workers, QueueCapacity: 4}
	cells := []engine.Cell{{Key: grid.CellKey{Lat: 1, Lon: 1}, Points: cell}}

	// Model side: measure each chunk's real compute locally and feed the
	// measured jobs through the schedule with loopback-ish link numbers.
	r := rng.New(q.Seed)
	chunks, err := dataset.Split(cell, 1200/chunkPoints, dataset.SplitSalami, r)
	if err != nil {
		t.Fatal(err)
	}
	pointBytes := int64(cell.Dim()) * 8
	jobs := make([]distsim.Job, len(chunks))
	for i, chunk := range chunks {
		pr, err := core.PartialKMeans(chunk, core.PartialConfig{K: q.K, Restarts: q.Restarts}, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = distsim.Job{
			Compute:  pr.Elapsed,
			OutBytes: int64(chunk.Len()) * pointBytes,
			InBytes:  int64(pr.Centroids.Len()) * (pointBytes + 8),
		}
	}
	predicted := distsim.Schedule(workers, 500*time.Microsecond, 1e9, jobs).AllArrived

	// Runtime side: the same plan against real loopback workers.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrs := make([]string, workers)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		go dist.Serve(ctx, ln, dist.WorkerConfig{})
	}
	pool, err := dist.NewPool(ctx, dist.PoolConfig{
		Addrs: addrs,
		Retry: stream.RetryPolicy{MaxRetries: 3, BaseBackoff: time.Millisecond},
		Seed:  q.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	start := time.Now()
	_, _, err = engine.NewExec(q, plan, engine.WithRemoteWorkers(pool)).Execute(ctx, cells)
	measured := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}

	const slack = 2 * time.Second
	if measured > 50*predicted+slack {
		t.Fatalf("loopback makespan %v far above model prediction %v", measured, predicted)
	}
	if predicted > 50*measured+slack {
		t.Fatalf("model prediction %v far above loopback makespan %v", predicted, measured)
	}
	t.Logf("predicted %v, measured %v", predicted, measured)
}
