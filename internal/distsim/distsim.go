// Package distsim simulates the paper's execution environment — a
// shared-nothing network of PCs (four Dell Optiplexes on a Netgear
// gigabit switch, §5.1) — deterministically on one box. Partial k-means
// work per chunk is measured for real; network costs (per-message
// latency plus payload bytes over bandwidth) are modeled; the makespan
// is computed by event-driven scheduling rather than wall-clock
// sleeping. This regenerates the §3.4 option-1 scale-up claim ("clone
// the partial k-means to as many machines as possible ... the data for
// one data partition has to be sent to one machine only") with the §2
// message-passing overhead made explicit.
package distsim

import (
	"fmt"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/metrics"
	"streamkm/internal/rng"
)

// Config describes the simulated cluster and the clustering job.
type Config struct {
	// Machines is the number of worker PCs (the coordinator runs the
	// scan and the merge, as in the paper's option 1).
	Machines int
	// NetLatency is the per-message fixed cost (e.g. 100µs on a LAN).
	NetLatency time.Duration
	// NetBandwidth is payload bytes per second (e.g. 125e6 for GigE).
	NetBandwidth float64
	// Splits is the partition count p.
	Splits int
	// K, Restarts, Seed parameterize the clustering as usual.
	K        int
	Restarts int
	Seed     uint64
}

func (c Config) validate() error {
	if c.Machines <= 0 {
		return fmt.Errorf("distsim: machines must be positive, got %d", c.Machines)
	}
	if c.NetLatency < 0 {
		return fmt.Errorf("distsim: negative latency")
	}
	if c.NetBandwidth <= 0 {
		return fmt.Errorf("distsim: bandwidth must be positive, got %g", c.NetBandwidth)
	}
	if c.Splits <= 0 {
		return fmt.Errorf("distsim: splits must be positive, got %d", c.Splits)
	}
	if c.K <= 0 || c.Restarts <= 0 {
		return fmt.Errorf("distsim: K and Restarts must be positive")
	}
	return nil
}

// Report is the simulated distributed run's outcome.
type Report struct {
	// Makespan is the simulated end-to-end time: scan/dispatch,
	// parallel partial work with transfer costs, centroid collection,
	// and the coordinator's merge.
	Makespan time.Duration
	// ComputeTime is the real, measured sum of partial k-means compute
	// across all chunks (what one machine alone would spend).
	ComputeTime time.Duration
	// MergeTime is the real, measured coordinator merge time.
	MergeTime time.Duration
	// TransferTime is the total modeled network time (serialized).
	TransferTime time.Duration
	// BytesMoved is the modeled payload volume (chunks out, centroids
	// back).
	BytesMoved int64
	// Messages counts network messages.
	Messages int
	// PerMachineBusy is each worker's simulated busy time.
	PerMachineBusy []time.Duration
	// MergeMSE and PointMSE report the result quality (identical to a
	// local run with the same seed).
	MergeMSE float64
	PointMSE float64
}

// Speedup relates the makespan to the serial execution of the same work
// on one machine with no network (compute + merge only).
func (r *Report) Speedup() float64 {
	serial := r.ComputeTime + r.MergeTime
	if r.Makespan <= 0 {
		return 0
	}
	return float64(serial) / float64(r.Makespan)
}

// Job is one schedulable unit of distributed work: its measured (or
// estimated) compute time plus the modeled transfer payloads in each
// direction.
type Job struct {
	// Compute is the job's processing time on whichever worker runs it.
	Compute time.Duration
	// OutBytes is the payload shipped coordinator → worker (the chunk).
	OutBytes int64
	// InBytes is the payload shipped worker → coordinator (the
	// weighted centroids).
	InBytes int64
}

// Timeline is the outcome of scheduling jobs on the modeled cluster.
type Timeline struct {
	// AllArrived is when the last job's result reaches the coordinator —
	// the makespan before any coordinator-side merge.
	AllArrived time.Duration
	// PerMachineBusy is each worker's total compute time.
	PerMachineBusy []time.Duration
	// TransferTime is the total modeled network time (serialized).
	TransferTime time.Duration
	// BytesMoved is the total modeled payload volume.
	BytesMoved int64
	// Messages counts network messages (one out, one back per job).
	Messages int
}

// Schedule runs the event-driven timing model on its own: the
// coordinator dispatches jobs in order over a shared link (sends
// serialize at the coordinator NIC), each worker processes its jobs
// sequentially, and results return as soon as compute finishes. It is
// the exact model Run uses internally, exported so other suites — the
// loopback distributed runtime in particular — can compare a real run's
// makespan against the model's prediction for the same job set.
func Schedule(machines int, latency time.Duration, bandwidth float64, jobs []Job) Timeline {
	transfer := func(bytes int64) time.Duration {
		return latency + time.Duration(float64(bytes)/bandwidth*float64(time.Second))
	}
	workerFree := make([]time.Duration, machines)
	linkFree := time.Duration(0)
	tl := Timeline{PerMachineBusy: make([]time.Duration, machines)}
	for _, job := range jobs {
		// Pick the worker that would start the job earliest.
		best := 0
		for m := 1; m < machines; m++ {
			if workerFree[m] < workerFree[best] {
				best = m
			}
		}
		// The job leaves the coordinator when the shared link is free.
		sendDone := linkFree + transfer(job.OutBytes)
		linkFree = sendDone
		start := maxDur(sendDone, workerFree[best])
		finish := start + job.Compute
		workerFree[best] = finish
		tl.PerMachineBusy[best] += job.Compute
		// The result returns immediately after compute (worker NICs are
		// uncontended toward the coordinator in this model).
		if at := finish + transfer(job.InBytes); at > tl.AllArrived {
			tl.AllArrived = at
		}
		tl.BytesMoved += job.OutBytes + job.InBytes
		tl.Messages += 2
		tl.TransferTime += transfer(job.OutBytes) + transfer(job.InBytes)
	}
	return tl
}

// Run simulates clustering one cell on the configured cluster. The
// clustering result is bit-identical to core.Cluster with the same
// parameters; only the timing model differs.
func Run(cell *dataset.Set, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	chunks, err := dataset.Split(cell, cfg.Splits, dataset.SplitRandom, r)
	if err != nil {
		return nil, err
	}
	dim := cell.Dim()
	pointBytes := int64(dim) * 8

	// Execute every chunk's partial k-means for real, measuring compute.
	jobs := make([]Job, len(chunks))
	parts := make([]*dataset.WeightedSet, len(chunks))
	var computeTotal time.Duration
	for i, chunk := range chunks {
		pr, err := core.PartialKMeans(chunk, core.PartialConfig{
			K: cfg.K, Restarts: cfg.Restarts,
		}, r.Split())
		if err != nil {
			return nil, fmt.Errorf("distsim: chunk %d: %w", i, err)
		}
		jobs[i] = Job{
			Compute:  pr.Elapsed,
			OutBytes: int64(chunk.Len()) * pointBytes,
			InBytes:  int64(pr.Centroids.Len()) * (pointBytes + 8),
		}
		parts[i] = pr.Centroids
		computeTotal += pr.Elapsed
	}

	tl := Schedule(cfg.Machines, cfg.NetLatency, cfg.NetBandwidth, jobs)
	report := &Report{
		PerMachineBusy: tl.PerMachineBusy,
		TransferTime:   tl.TransferTime,
		BytesMoved:     tl.BytesMoved,
		Messages:       tl.Messages,
	}

	// Coordinator merge, measured for real, in deterministic chunk order
	// (collective merging is arrival-order insensitive anyway).
	mr, err := core.MergeKMeans(parts, core.MergeConfig{K: cfg.K}, r.Split())
	if err != nil {
		return nil, err
	}
	pm, err := metrics.MSE(cell, mr.Centroids)
	if err != nil {
		return nil, err
	}
	report.ComputeTime = computeTotal
	report.MergeTime = mr.Elapsed
	report.Makespan = tl.AllArrived + mr.Elapsed
	report.MergeMSE = mr.MSE
	report.PointMSE = pm
	return report, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
