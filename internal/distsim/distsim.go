// Package distsim simulates the paper's execution environment — a
// shared-nothing network of PCs (four Dell Optiplexes on a Netgear
// gigabit switch, §5.1) — deterministically on one box. Partial k-means
// work per chunk is measured for real; network costs (per-message
// latency plus payload bytes over bandwidth) are modeled; the makespan
// is computed by event-driven scheduling rather than wall-clock
// sleeping. This regenerates the §3.4 option-1 scale-up claim ("clone
// the partial k-means to as many machines as possible ... the data for
// one data partition has to be sent to one machine only") with the §2
// message-passing overhead made explicit.
package distsim

import (
	"fmt"
	"sort"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/metrics"
	"streamkm/internal/rng"
)

// Config describes the simulated cluster and the clustering job.
type Config struct {
	// Machines is the number of worker PCs (the coordinator runs the
	// scan and the merge, as in the paper's option 1).
	Machines int
	// NetLatency is the per-message fixed cost (e.g. 100µs on a LAN).
	NetLatency time.Duration
	// NetBandwidth is payload bytes per second (e.g. 125e6 for GigE).
	NetBandwidth float64
	// Splits is the partition count p.
	Splits int
	// K, Restarts, Seed parameterize the clustering as usual.
	K        int
	Restarts int
	Seed     uint64
}

func (c Config) validate() error {
	if c.Machines <= 0 {
		return fmt.Errorf("distsim: machines must be positive, got %d", c.Machines)
	}
	if c.NetLatency < 0 {
		return fmt.Errorf("distsim: negative latency")
	}
	if c.NetBandwidth <= 0 {
		return fmt.Errorf("distsim: bandwidth must be positive, got %g", c.NetBandwidth)
	}
	if c.Splits <= 0 {
		return fmt.Errorf("distsim: splits must be positive, got %d", c.Splits)
	}
	if c.K <= 0 || c.Restarts <= 0 {
		return fmt.Errorf("distsim: K and Restarts must be positive")
	}
	return nil
}

// Report is the simulated distributed run's outcome.
type Report struct {
	// Makespan is the simulated end-to-end time: scan/dispatch,
	// parallel partial work with transfer costs, centroid collection,
	// and the coordinator's merge.
	Makespan time.Duration
	// ComputeTime is the real, measured sum of partial k-means compute
	// across all chunks (what one machine alone would spend).
	ComputeTime time.Duration
	// MergeTime is the real, measured coordinator merge time.
	MergeTime time.Duration
	// TransferTime is the total modeled network time (serialized).
	TransferTime time.Duration
	// BytesMoved is the modeled payload volume (chunks out, centroids
	// back).
	BytesMoved int64
	// Messages counts network messages.
	Messages int
	// PerMachineBusy is each worker's simulated busy time.
	PerMachineBusy []time.Duration
	// MergeMSE and PointMSE report the result quality (identical to a
	// local run with the same seed).
	MergeMSE float64
	PointMSE float64
}

// Speedup relates the makespan to the serial execution of the same work
// on one machine with no network (compute + merge only).
func (r *Report) Speedup() float64 {
	serial := r.ComputeTime + r.MergeTime
	if r.Makespan <= 0 {
		return 0
	}
	return float64(serial) / float64(r.Makespan)
}

// chunkJob is one unit of simulated work.
type chunkJob struct {
	compute  time.Duration // measured partial k-means time
	outBytes int64         // chunk payload sent to the worker
	inBytes  int64         // weighted centroids sent back
	part     *dataset.WeightedSet
	elapsed  time.Duration
}

// Run simulates clustering one cell on the configured cluster. The
// clustering result is bit-identical to core.Cluster with the same
// parameters; only the timing model differs.
func Run(cell *dataset.Set, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	chunks, err := dataset.Split(cell, cfg.Splits, dataset.SplitRandom, r)
	if err != nil {
		return nil, err
	}
	dim := cell.Dim()
	pointBytes := int64(dim) * 8

	// Execute every chunk's partial k-means for real, measuring compute.
	jobs := make([]chunkJob, len(chunks))
	var computeTotal time.Duration
	for i, chunk := range chunks {
		pr, err := core.PartialKMeans(chunk, core.PartialConfig{
			K: cfg.K, Restarts: cfg.Restarts,
		}, r.Split())
		if err != nil {
			return nil, fmt.Errorf("distsim: chunk %d: %w", i, err)
		}
		jobs[i] = chunkJob{
			compute:  pr.Elapsed,
			outBytes: int64(chunk.Len()) * pointBytes,
			inBytes:  int64(pr.Centroids.Len()) * (pointBytes + 8),
			part:     pr.Centroids,
		}
		computeTotal += pr.Elapsed
	}

	// Event-driven schedule: the coordinator dispatches chunks in order
	// over a shared link (sends serialize at the coordinator NIC); each
	// worker processes its chunks sequentially; result transfers also
	// serialize at the coordinator on receipt order.
	transfer := func(bytes int64) time.Duration {
		return cfg.NetLatency + time.Duration(float64(bytes)/cfg.NetBandwidth*float64(time.Second))
	}
	workerFree := make([]time.Duration, cfg.Machines)
	linkFree := time.Duration(0)
	report := &Report{PerMachineBusy: make([]time.Duration, cfg.Machines)}
	type arrival struct {
		at  time.Duration
		idx int
	}
	arrivals := make([]arrival, len(jobs))
	for i, job := range jobs {
		// Pick the worker that would start the job earliest.
		best := 0
		for m := 1; m < cfg.Machines; m++ {
			if workerFree[m] < workerFree[best] {
				best = m
			}
		}
		// Chunk leaves the coordinator when the shared link is free.
		sendDone := linkFree + transfer(job.outBytes)
		linkFree = sendDone
		start := maxDur(sendDone, workerFree[best])
		finish := start + job.compute
		workerFree[best] = finish
		report.PerMachineBusy[best] += job.compute
		// Result returns immediately after compute (worker NICs are
		// uncontended toward the coordinator in this model).
		arrivals[i] = arrival{at: finish + transfer(job.inBytes), idx: i}
		report.BytesMoved += job.outBytes + job.inBytes
		report.Messages += 2
		report.TransferTime += transfer(job.outBytes) + transfer(job.inBytes)
	}
	sort.Slice(arrivals, func(a, b int) bool { return arrivals[a].at < arrivals[b].at })
	allArrived := arrivals[len(arrivals)-1].at

	// Coordinator merge, measured for real, in deterministic chunk order
	// (collective merging is arrival-order insensitive anyway).
	parts := make([]*dataset.WeightedSet, len(jobs))
	for i := range jobs {
		parts[i] = jobs[i].part
	}
	mr, err := core.MergeKMeans(parts, core.MergeConfig{K: cfg.K}, r.Split())
	if err != nil {
		return nil, err
	}
	pm, err := metrics.MSE(cell, mr.Centroids)
	if err != nil {
		return nil, err
	}
	report.ComputeTime = computeTotal
	report.MergeTime = mr.Elapsed
	report.Makespan = allArrived + mr.Elapsed
	report.MergeMSE = mr.MSE
	report.PointMSE = pm
	return report, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
