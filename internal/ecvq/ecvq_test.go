package ecvq

import (
	"math"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// blobs builds nBlobs separated 1-D blobs with perBlob points each.
func blobs(t *testing.T, nBlobs, perBlob int, seed uint64) *dataset.WeightedSet {
	t.Helper()
	r := rng.New(seed)
	s := dataset.MustNewWeightedSet(1)
	for b := 0; b < nBlobs; b++ {
		center := float64(b) * 100
		for i := 0; i < perBlob; i++ {
			wp := dataset.WeightedPoint{Vec: vector.Of(center + r.NormFloat64()), Weight: 1}
			if err := s.Add(wp); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

func TestQuantizeValidation(t *testing.T) {
	s := blobs(t, 2, 10, 1)
	if _, err := Quantize(s, Config{MaxK: 0}, rng.New(1)); err == nil {
		t.Fatal("MaxK=0 should error")
	}
	if _, err := Quantize(s, Config{MaxK: 2, Lambda: -1}, rng.New(1)); err == nil {
		t.Fatal("negative lambda should error")
	}
	if _, err := Quantize(dataset.MustNewWeightedSet(1), Config{MaxK: 2}, rng.New(1)); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestLambdaZeroKeepsMaxK(t *testing.T) {
	s := blobs(t, 3, 40, 2)
	res, err := Quantize(s, Config{MaxK: 6, Lambda: 0}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// With no rate penalty, pruning only happens via natural starvation;
	// on well-spread random seeds most of MaxK survives.
	if res.K < 3 {
		t.Fatalf("lambda=0 kept only %d centroids", res.K)
	}
	if res.Cost != res.Distortion {
		t.Fatalf("lambda=0 cost %g != distortion %g", res.Cost, res.Distortion)
	}
}

func TestLargeLambdaPrunesCodebook(t *testing.T) {
	s := blobs(t, 3, 50, 4)
	small, err := Quantize(s, Config{MaxK: 30, Lambda: 0.1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Quantize(s, Config{MaxK: 30, Lambda: 5000}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if big.K >= small.K {
		t.Fatalf("larger lambda should prune more: %d vs %d", big.K, small.K)
	}
	if big.Starved == 0 {
		t.Fatal("large lambda should starve seeds")
	}
}

func TestQuantizeFindsBlobStructure(t *testing.T) {
	// With moderate lambda, ECVQ should settle near 3 codewords at the
	// blob centers — "finding an optimal k on the fly".
	s := blobs(t, 3, 100, 6)
	res, err := Quantize(s, Config{MaxK: 20, Lambda: 300}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 3 || res.K > 6 {
		t.Fatalf("K = %d, want close to 3", res.K)
	}
	for _, want := range []float64{0, 100, 200} {
		found := false
		for _, c := range res.Centroids {
			if math.Abs(c[0]-want) < 10 {
				found = true
			}
		}
		if !found {
			t.Fatalf("no codeword near %g: %v", want, res.Centroids)
		}
	}
	// Weight mass conserved.
	var w float64
	for _, x := range res.Weights {
		w += x
	}
	if math.Abs(w-300) > 1e-9 {
		t.Fatalf("weights sum to %g, want 300", w)
	}
}

func TestQuantizeDeterministic(t *testing.T) {
	s := blobs(t, 3, 50, 8)
	a, err := Quantize(s, Config{MaxK: 10, Lambda: 100}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Quantize(s, Config{MaxK: 10, Lambda: 100}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K || a.Cost != b.Cost {
		t.Fatal("same seed produced different quantizers")
	}
}

func TestQuantizeMaxKAboveN(t *testing.T) {
	s := blobs(t, 1, 5, 10)
	res, err := Quantize(s, Config{MaxK: 50, Lambda: 0}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 5 {
		t.Fatalf("K = %d > N = 5", res.K)
	}
}

func TestQuantizeZeroTotalWeight(t *testing.T) {
	s := dataset.MustNewWeightedSet(1)
	if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(1), Weight: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := Quantize(s, Config{MaxK: 1}, rng.New(1)); err == nil {
		t.Fatal("zero total weight should error")
	}
}

func TestWeightedCentroidsExport(t *testing.T) {
	s := blobs(t, 2, 50, 12)
	res, err := Quantize(s, Config{MaxK: 8, Lambda: 200}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := res.WeightedCentroids(1)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Len() != res.K {
		t.Fatalf("exported %d, K=%d", ws.Len(), res.K)
	}
	if math.Abs(ws.TotalWeight()-100) > 1e-9 {
		t.Fatalf("exported weight %g, want 100", ws.TotalWeight())
	}
}

func TestRateIsEntropyLike(t *testing.T) {
	// Two equal blobs with two surviving codewords: rate ≈ 1 bit.
	s := blobs(t, 2, 100, 14)
	res, err := Quantize(s, Config{MaxK: 2, Lambda: 1}, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Skipf("codebook pruned to %d, entropy check needs 2", res.K)
	}
	if math.Abs(res.Rate-1) > 0.1 {
		t.Fatalf("rate = %g bits, want ~1", res.Rate)
	}
}
