// Package ecvq implements entropy-constrained vector quantization (Chou,
// Lookabaugh & Gray 1989), the extension the paper's §3.3 Remarks propose
// for choosing k per partition on the fly: instead of fixing k, ECVQ
// starts from a maximum k and minimizes distortion plus a rate penalty
// λ·len(j), where len(j) = -log2(p_j) is the code length of centroid j.
// Cells assigned few points grow long code lengths, stop attracting
// points ("some seeds might be starved"), and are discarded — the
// surviving centroid count is the data-driven k.
package ecvq

import (
	"errors"
	"fmt"
	"math"

	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// Config parameterizes one ECVQ run.
type Config struct {
	// MaxK is the initial (maximum) codebook size.
	MaxK int
	// Lambda is the rate-distortion trade-off: 0 reduces to plain
	// k-means with k = MaxK; larger values prune harder.
	Lambda float64
	// Epsilon is the relative cost-improvement convergence threshold
	// (0 = 1e-9).
	Epsilon float64
	// MaxIterations caps the iteration count (0 = 500).
	MaxIterations int
}

func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = 1e-9
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 500
	}
	return c
}

func (c Config) validate() error {
	if c.MaxK <= 0 {
		return fmt.Errorf("ecvq: MaxK must be positive, got %d", c.MaxK)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("ecvq: Lambda must be non-negative, got %g", c.Lambda)
	}
	return nil
}

// Result is the quantizer ECVQ converged to.
type Result struct {
	// Centroids are the surviving codebook vectors (K of them).
	Centroids []vector.Vector
	// Weights is the data mass assigned to each centroid.
	Weights []float64
	// K is the surviving codebook size (len(Centroids)).
	K int
	// Distortion is the weighted mean squared quantization error.
	Distortion float64
	// Rate is the empirical entropy of the code in bits.
	Rate float64
	// Cost is Distortion + Lambda*Rate, the Lagrangian ECVQ minimizes.
	Cost float64
	// Iterations counts assignment/update rounds.
	Iterations int
	// Starved counts centroids discarded along the way.
	Starved int
}

// Quantize runs ECVQ over a weighted point set.
func Quantize(points *dataset.WeightedSet, cfg Config, r *rng.RNG) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if points.Len() == 0 {
		return nil, errors.New("ecvq: empty input")
	}
	k := cfg.MaxK
	if k > points.Len() {
		k = points.Len()
	}
	centroids, err := (kmeans.RandomSeeder{}).Seed(points, k, r)
	if err != nil {
		return nil, err
	}
	total := points.TotalWeight()
	if total <= 0 {
		return nil, errors.New("ecvq: total weight is zero")
	}
	dim := points.Dim()

	// Code lengths start uniform.
	lengths := make([]float64, len(centroids))
	uniform := math.Log2(float64(len(centroids)))
	for j := range lengths {
		lengths[j] = uniform
	}

	res := &Result{}
	prevCost := math.Inf(1)
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		res.Iterations = iter
		kNow := len(centroids)
		sums := make([]vector.Vector, kNow)
		for j := range sums {
			sums[j] = vector.New(dim)
		}
		weights := make([]float64, kNow)
		var distortion, rate float64
		for i := 0; i < points.Len(); i++ {
			p := points.At(i)
			best, bestCost := -1, math.Inf(1)
			var bestD float64
			for j, c := range centroids {
				d := vector.SquaredDistance(p.Vec, c)
				cost := d + cfg.Lambda*lengths[j]
				if cost < bestCost {
					best, bestCost, bestD = j, cost, d
				}
			}
			weights[best] += p.Weight
			sums[best].AddScaled(p.Weight, p.Vec)
			distortion += p.Weight * bestD
			rate += p.Weight * lengths[best]
		}
		// Update step: drop starved centroids, recompute survivors and
		// their code lengths.
		var nextC []vector.Vector
		var nextL []float64
		var survivorW []float64
		for j := range centroids {
			if weights[j] == 0 {
				res.Starved++
				continue
			}
			m := sums[j]
			m.Scale(1 / weights[j])
			nextC = append(nextC, m)
			nextL = append(nextL, -math.Log2(weights[j]/total))
			survivorW = append(survivorW, weights[j])
		}
		if len(nextC) == 0 {
			return nil, errors.New("ecvq: all centroids starved")
		}
		centroids, lengths = nextC, nextL
		res.Centroids = centroids
		res.Weights = survivorW
		res.Distortion = distortion / total
		res.Rate = rate / total
		res.Cost = res.Distortion + cfg.Lambda*res.Rate
		if iter > 1 && prevCost-res.Cost <= cfg.Epsilon*math.Max(1, math.Abs(prevCost)) {
			break
		}
		prevCost = res.Cost
	}
	res.K = len(res.Centroids)
	return res, nil
}

// WeightedCentroids exports the surviving codebook as a weighted set,
// ready to feed the merge operator — the paper's suggestion that
// "weighted centroids can [still] be used in the merge step" when ECVQ
// picks k per partition.
func (r *Result) WeightedCentroids(dim int) (*dataset.WeightedSet, error) {
	out, err := dataset.NewWeightedSet(dim)
	if err != nil {
		return nil, err
	}
	for j, c := range r.Centroids {
		if err := out.Add(dataset.WeightedPoint{Vec: c.Clone(), Weight: r.Weights[j]}); err != nil {
			return nil, err
		}
	}
	return out, nil
}
