// Package fault provides deterministic, RNG-seeded fault injection for
// exercising the stream engine's supervision and recovery paths. The
// paper's Conquest engine claims long-running queries survive operator
// failures (§4); reproducing that claim requires failures that are
// themselves reproducible, so every injector decision is drawn from a
// seeded generator rather than wall-clock entropy. An injector is placed
// in front of an operator function and, per invocation, may return an
// error, panic, or sleep — at configured rates or at an exact invocation
// index.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"streamkm/internal/rng"
)

// ErrInjected is the base error of every injected (non-panic) fault, so
// supervisors and tests can recognize synthetic failures with errors.Is.
var ErrInjected = errors.New("fault: injected error")

// InjectedPanic is the value an injector panics with, letting recovery
// code (and tests) distinguish synthetic panics from real ones.
type InjectedPanic struct {
	// Op is the operator name passed to Invoke.
	Op string
	// N is the 1-based invocation index that panicked.
	N int64
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic in %q (invocation %d)", p.Op, p.N)
}

// Config tunes an Injector. Rates are probabilities in [0, 1] evaluated
// independently per invocation (panic first, then error, then slowdown).
type Config struct {
	// Seed derives the decision stream; equal seeds and call sequences
	// give equal faults.
	Seed uint64
	// PanicRate is the probability an invocation panics with
	// InjectedPanic.
	PanicRate float64
	// ErrorRate is the probability an invocation returns an error
	// wrapping ErrInjected.
	ErrorRate float64
	// SlowRate is the probability an invocation sleeps SlowDur before
	// returning nil.
	SlowRate float64
	// SlowDur is the injected slowdown duration (0 = 1ms).
	SlowDur time.Duration
	// PanicNth, if positive, forces exactly the Nth invocation (1-based)
	// to panic, independent of the rates.
	PanicNth int64
	// ErrorNth, if positive, forces exactly the Nth invocation (1-based)
	// to return an error, independent of the rates.
	ErrorNth int64
	// StallNth, if positive, makes exactly the Nth invocation (1-based)
	// block until its context is cancelled, then return the context's
	// error — a wedged operator for exercising the stall watchdog. Only
	// InvokeContext observes the cancellation; a stall reached through
	// plain Invoke would block forever, so stall-injected operators must
	// pass their stage context.
	StallNth int64
	// DelayNth, if positive, makes exactly the Nth invocation (1-based)
	// sleep DelayDur (honoring context cancellation) before proceeding —
	// a latency fault that is slow but not dead.
	DelayNth int64
	// DelayDur is the DelayNth sleep (0 = 50ms).
	DelayDur time.Duration
	// MaxFaults caps the total number of injected panics+errors
	// (0 = unlimited); after the cap, Invoke is a no-op. It bounds how
	// long a retry loop has to out-wait the injector.
	MaxFaults int64
}

// Injector injects faults into operator invocations. The zero of the
// pointer type is valid: a nil *Injector never faults, so production
// paths pass nil with no branching at call sites. All methods are safe
// for concurrent use by cloned operators.
type Injector struct {
	cfg Config

	mu sync.Mutex
	r  *rng.RNG

	invocations atomic.Int64
	panics      atomic.Int64
	errors      atomic.Int64
	slowdowns   atomic.Int64
	stalls      atomic.Int64
	delays      atomic.Int64
}

// New returns an injector for the config.
func New(cfg Config) *Injector {
	if cfg.SlowDur <= 0 {
		cfg.SlowDur = time.Millisecond
	}
	if cfg.DelayDur <= 0 {
		cfg.DelayDur = 50 * time.Millisecond
	}
	return &Injector{cfg: cfg, r: rng.New(cfg.Seed)}
}

// ErrorNth returns an injector whose nth invocation (1-based) fails with
// ErrInjected and which otherwise never faults — a precise one-shot kill
// for recovery tests.
func ErrorNth(n int64) *Injector { return New(Config{ErrorNth: n}) }

// PanicNth returns an injector whose nth invocation (1-based) panics and
// which otherwise never faults.
func PanicNth(n int64) *Injector { return New(Config{PanicNth: n}) }

// StallNth returns an injector whose nth invocation (1-based) blocks
// until its context is cancelled — a wedged operator for watchdog
// tests. Use with InvokeContext; see Config.StallNth.
func StallNth(n int64) *Injector { return New(Config{StallNth: n}) }

// DelayNth returns an injector whose nth invocation (1-based) sleeps d
// before proceeding and which otherwise never faults.
func DelayNth(n int64, d time.Duration) *Injector {
	return New(Config{DelayNth: n, DelayDur: d})
}

// Invocations returns the number of Invoke calls observed.
func (i *Injector) Invocations() int64 {
	if i == nil {
		return 0
	}
	return i.invocations.Load()
}

// Panics returns the number of injected panics.
func (i *Injector) Panics() int64 {
	if i == nil {
		return 0
	}
	return i.panics.Load()
}

// Errors returns the number of injected errors.
func (i *Injector) Errors() int64 {
	if i == nil {
		return 0
	}
	return i.errors.Load()
}

// Slowdowns returns the number of injected slowdowns.
func (i *Injector) Slowdowns() int64 {
	if i == nil {
		return 0
	}
	return i.slowdowns.Load()
}

// Faults returns the total injected panics plus errors.
func (i *Injector) Faults() int64 { return i.Panics() + i.Errors() }

// Stalls returns the number of injected stalls.
func (i *Injector) Stalls() int64 {
	if i == nil {
		return 0
	}
	return i.stalls.Load()
}

// Delays returns the number of injected delays.
func (i *Injector) Delays() int64 {
	if i == nil {
		return 0
	}
	return i.delays.Load()
}

// Invoke decides one invocation's fate with no cancellation signal; a
// stall fault reached through it would block forever, so stall-injected
// operators must use InvokeContext. Safe on a nil receiver.
func (i *Injector) Invoke(op string) error {
	return i.InvokeContext(context.Background(), op)
}

// InvokeContext decides one invocation's fate for the named operator:
// it may panic with InjectedPanic, return an error wrapping ErrInjected,
// stall until ctx is cancelled, sleep, or (usually) do nothing and
// return nil. Safe on a nil receiver.
func (i *Injector) InvokeContext(ctx context.Context, op string) error {
	if i == nil {
		return nil
	}
	n := i.invocations.Add(1)

	if i.cfg.PanicNth > 0 && n == i.cfg.PanicNth {
		i.panics.Add(1)
		panic(InjectedPanic{Op: op, N: n})
	}
	if i.cfg.ErrorNth > 0 && n == i.cfg.ErrorNth {
		i.errors.Add(1)
		return fmt.Errorf("%w: %s (invocation %d)", ErrInjected, op, n)
	}
	if i.cfg.StallNth > 0 && n == i.cfg.StallNth {
		i.stalls.Add(1)
		<-ctx.Done()
		return ctx.Err()
	}
	if i.cfg.DelayNth > 0 && n == i.cfg.DelayNth {
		i.delays.Add(1)
		t := time.NewTimer(i.cfg.DelayDur)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	if i.cfg.PanicRate <= 0 && i.cfg.ErrorRate <= 0 && i.cfg.SlowRate <= 0 {
		return nil
	}
	if i.cfg.MaxFaults > 0 && i.panics.Load()+i.errors.Load() >= i.cfg.MaxFaults {
		return nil
	}
	i.mu.Lock()
	p, e, s := i.r.Float64(), i.r.Float64(), i.r.Float64()
	i.mu.Unlock()
	if p < i.cfg.PanicRate {
		i.panics.Add(1)
		panic(InjectedPanic{Op: op, N: n})
	}
	if e < i.cfg.ErrorRate {
		i.errors.Add(1)
		return fmt.Errorf("%w: %s (invocation %d)", ErrInjected, op, n)
	}
	if s < i.cfg.SlowRate {
		i.slowdowns.Add(1)
		time.Sleep(i.cfg.SlowDur)
	}
	return nil
}

// String summarizes the injector's activity.
func (i *Injector) String() string {
	if i == nil {
		return "fault: disabled"
	}
	return fmt.Sprintf("fault: %d invocations, %d panics, %d errors, %d slowdowns, %d stalls, %d delays",
		i.Invocations(), i.Panics(), i.Errors(), i.Slowdowns(), i.Stalls(), i.Delays())
}
