package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var i *Injector
	for n := 0; n < 100; n++ {
		if err := i.Invoke("op"); err != nil {
			t.Fatal(err)
		}
	}
	if i.Invocations() != 0 || i.Faults() != 0 {
		t.Fatal("nil injector recorded activity")
	}
}

func TestErrorRateIsDeterministic(t *testing.T) {
	run := func() []int {
		inj := New(Config{Seed: 42, ErrorRate: 0.1})
		var failed []int
		for n := 0; n < 1000; n++ {
			if err := inj.Invoke("op"); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("injected error is not ErrInjected: %v", err)
				}
				failed = append(failed, n)
			}
		}
		return failed
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("10% rate over 1000 invocations injected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ: %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d at invocation %d vs %d", i, a[i], b[i])
		}
	}
}

func TestErrorNthAndPanicNth(t *testing.T) {
	inj := ErrorNth(3)
	for n := 1; n <= 5; n++ {
		err := inj.Invoke("op")
		if (n == 3) != (err != nil) {
			t.Fatalf("invocation %d: err=%v", n, err)
		}
	}
	if inj.Errors() != 1 {
		t.Fatalf("Errors() = %d", inj.Errors())
	}

	pinj := PanicNth(2)
	if err := pinj.Invoke("op"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			r := recover()
			ip, ok := r.(InjectedPanic)
			if !ok {
				t.Fatalf("recovered %v, want InjectedPanic", r)
			}
			if ip.Op != "op" || ip.N != 2 {
				t.Fatalf("panic payload %+v", ip)
			}
		}()
		pinj.Invoke("op")
		t.Fatal("second invocation should panic")
	}()
	if pinj.Panics() != 1 {
		t.Fatalf("Panics() = %d", pinj.Panics())
	}
}

func TestMaxFaultsCapsInjection(t *testing.T) {
	inj := New(Config{Seed: 7, ErrorRate: 1, MaxFaults: 5})
	fails := 0
	for n := 0; n < 100; n++ {
		if inj.Invoke("op") != nil {
			fails++
		}
	}
	if fails != 5 {
		t.Fatalf("injected %d errors, cap was 5", fails)
	}
}

func TestSlowdownSleeps(t *testing.T) {
	inj := New(Config{Seed: 1, SlowRate: 1, SlowDur: 5 * time.Millisecond})
	start := time.Now()
	if err := inj.Invoke("op"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("slowdown did not sleep")
	}
	if inj.Slowdowns() != 1 {
		t.Fatalf("Slowdowns() = %d", inj.Slowdowns())
	}
}

func TestConcurrentInvokeIsSafe(t *testing.T) {
	inj := New(Config{Seed: 3, ErrorRate: 0.05, SlowRate: 0.01, SlowDur: time.Microsecond})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 500; n++ {
				inj.Invoke("op")
			}
		}()
	}
	wg.Wait()
	if inj.Invocations() != 8*500 {
		t.Fatalf("Invocations() = %d", inj.Invocations())
	}
	if inj.Errors() == 0 {
		t.Fatal("no errors injected across 4000 invocations at 5%")
	}
}
