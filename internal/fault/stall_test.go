package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestStallNthBlocksUntilCancel(t *testing.T) {
	inj := StallNth(2)
	if err := inj.InvokeContext(context.Background(), "op"); err != nil {
		t.Fatalf("invocation 1 faulted: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- inj.InvokeContext(ctx, "op") }()
	select {
	case err := <-done:
		t.Fatalf("stalled invocation returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("stall returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled invocation did not release on cancel")
	}
	if inj.Stalls() != 1 {
		t.Fatalf("Stalls() = %d, want 1", inj.Stalls())
	}
	if err := inj.InvokeContext(context.Background(), "op"); err != nil {
		t.Fatalf("invocation after the stall faulted: %v", err)
	}
}

func TestDelayNthSleepsThenProceeds(t *testing.T) {
	inj := DelayNth(1, 30*time.Millisecond)
	start := time.Now()
	if err := inj.InvokeContext(context.Background(), "op"); err != nil {
		t.Fatalf("delayed invocation errored: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("delay returned after %v, want >= 30ms", elapsed)
	}
	if inj.Delays() != 1 {
		t.Fatalf("Delays() = %d, want 1", inj.Delays())
	}
}

func TestDelayNthHonorsCancellation(t *testing.T) {
	inj := DelayNth(1, 10*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- inj.InvokeContext(ctx, "op") }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled delay returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled delay never returned")
	}
}

func TestNilInjectorNewMethods(t *testing.T) {
	var inj *Injector
	if inj.Stalls() != 0 || inj.Delays() != 0 {
		t.Fatal("nil injector reports activity")
	}
	if err := inj.InvokeContext(context.Background(), "op"); err != nil {
		t.Fatalf("nil injector faulted: %v", err)
	}
}
