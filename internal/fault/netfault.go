package fault

// Network fault injection for the distributed runtime. Where Injector
// decides the fate of operator invocations, NetInjector decides the
// fate of protocol frames crossing a coordinator/worker link: a frame
// may be dropped (never delivered), duplicated (delivered twice — the
// at-least-once retry path a lost ACK provokes), delayed, or the whole
// connection torn down mid-conversation. A peer may also be partitioned:
// every frame to or from it is dropped until the partition heals. Like
// Injector, all decisions are drawn from a seeded generator so a chaos
// run is reproducible bit for bit, and a nil *NetInjector never faults.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"streamkm/internal/rng"
)

// NetOp is the injector's verdict for one frame.
type NetOp int

const (
	// NetPass delivers the frame normally.
	NetPass NetOp = iota
	// NetDrop silently discards the frame; the sender sees a timeout,
	// not an error.
	NetDrop
	// NetDup delivers the frame twice — the duplicate-delivery case the
	// coordinator's chunk-id dedup must absorb.
	NetDup
	// NetDelay delivers the frame after sleeping NetConfig.DelayDur.
	NetDelay
	// NetDisconnect closes the connection instead of delivering — an
	// abrupt worker death mid-conversation.
	NetDisconnect
)

// String names the verdict for logs and test failures.
func (o NetOp) String() string {
	switch o {
	case NetPass:
		return "pass"
	case NetDrop:
		return "drop"
	case NetDup:
		return "dup"
	case NetDelay:
		return "delay"
	case NetDisconnect:
		return "disconnect"
	}
	return fmt.Sprintf("NetOp(%d)", int(o))
}

// NetConfig tunes a NetInjector. Rates are probabilities in [0, 1]
// evaluated per frame in a fixed order (drop, dup, delay, disconnect);
// the Nth fields force a fault at an exact 1-based frame index across
// all peers, independent of the rates.
type NetConfig struct {
	// Seed derives the decision stream; equal seeds and frame sequences
	// give equal faults.
	Seed uint64
	// DropRate is the probability a frame is silently discarded.
	DropRate float64
	// DupRate is the probability a frame is delivered twice.
	DupRate float64
	// DelayRate is the probability a frame is delayed by DelayDur.
	DelayRate float64
	// DisconnectRate is the probability the connection is torn down
	// instead of delivering the frame.
	DisconnectRate float64
	// DropNth, if positive, drops exactly the Nth frame (1-based).
	DropNth int64
	// DupNth, if positive, duplicates exactly the Nth frame (1-based).
	DupNth int64
	// DelayNth, if positive, delays exactly the Nth frame (1-based).
	DelayNth int64
	// DisconnectNth, if positive, tears the connection down at exactly
	// the Nth frame (1-based).
	DisconnectNth int64
	// DelayDur is the injected frame delay (0 = 20ms).
	DelayDur time.Duration
	// MaxFaults caps the total number of injected faults (0 =
	// unlimited); after the cap every frame passes, bounding how long a
	// retry budget has to out-wait the injector.
	MaxFaults int64
}

// NetInjector injects faults at the frame layer of a network link. The
// zero of the pointer type is valid: a nil *NetInjector passes every
// frame, so production paths carry nil with no branching. All methods
// are safe for concurrent use by multiple connections.
type NetInjector struct {
	cfg NetConfig

	mu          sync.Mutex
	r           *rng.RNG
	partitioned map[string]bool

	frames      atomic.Int64
	drops       atomic.Int64
	dups        atomic.Int64
	delays      atomic.Int64
	disconnects atomic.Int64
}

// NewNet returns a network injector for the config.
func NewNet(cfg NetConfig) *NetInjector {
	if cfg.DelayDur <= 0 {
		cfg.DelayDur = 20 * time.Millisecond
	}
	return &NetInjector{
		cfg:         cfg,
		r:           rng.New(cfg.Seed),
		partitioned: make(map[string]bool),
	}
}

// NetDropNth returns an injector dropping exactly the nth frame
// (1-based) and otherwise passing everything.
func NetDropNth(n int64) *NetInjector { return NewNet(NetConfig{DropNth: n}) }

// NetDupNth returns an injector duplicating exactly the nth frame.
func NetDupNth(n int64) *NetInjector { return NewNet(NetConfig{DupNth: n}) }

// NetDisconnectNth returns an injector tearing the connection down at
// exactly the nth frame.
func NetDisconnectNth(n int64) *NetInjector { return NewNet(NetConfig{DisconnectNth: n}) }

// Frame decides the fate of one frame crossing the link to or from
// peer. A NetDelay verdict means the caller should sleep Delay() before
// delivering. Safe on a nil receiver (always NetPass).
func (n *NetInjector) Frame(peer string) NetOp {
	if n == nil {
		return NetPass
	}
	idx := n.frames.Add(1)
	if n.isPartitioned(peer) {
		n.drops.Add(1)
		return NetDrop
	}
	if n.cfg.DropNth > 0 && idx == n.cfg.DropNth {
		n.drops.Add(1)
		return NetDrop
	}
	if n.cfg.DupNth > 0 && idx == n.cfg.DupNth {
		n.dups.Add(1)
		return NetDup
	}
	if n.cfg.DelayNth > 0 && idx == n.cfg.DelayNth {
		n.delays.Add(1)
		return NetDelay
	}
	if n.cfg.DisconnectNth > 0 && idx == n.cfg.DisconnectNth {
		n.disconnects.Add(1)
		return NetDisconnect
	}
	if n.cfg.DropRate <= 0 && n.cfg.DupRate <= 0 && n.cfg.DelayRate <= 0 && n.cfg.DisconnectRate <= 0 {
		return NetPass
	}
	if n.cfg.MaxFaults > 0 && n.Faults() >= n.cfg.MaxFaults {
		return NetPass
	}
	n.mu.Lock()
	drop, dup, delay, disc := n.r.Float64(), n.r.Float64(), n.r.Float64(), n.r.Float64()
	n.mu.Unlock()
	switch {
	case drop < n.cfg.DropRate:
		n.drops.Add(1)
		return NetDrop
	case dup < n.cfg.DupRate:
		n.dups.Add(1)
		return NetDup
	case delay < n.cfg.DelayRate:
		n.delays.Add(1)
		return NetDelay
	case disc < n.cfg.DisconnectRate:
		n.disconnects.Add(1)
		return NetDisconnect
	}
	return NetPass
}

// Delay returns the sleep a NetDelay verdict asks for.
func (n *NetInjector) Delay() time.Duration {
	if n == nil {
		return 0
	}
	return n.cfg.DelayDur
}

// Partition cuts peer off: every subsequent frame to or from it drops
// until Heal. Safe on a nil receiver (no-op).
func (n *NetInjector) Partition(peer string) {
	if n == nil {
		return
	}
	n.mu.Lock()
	n.partitioned[peer] = true
	n.mu.Unlock()
}

// Heal reconnects a partitioned peer. Safe on a nil receiver.
func (n *NetInjector) Heal(peer string) {
	if n == nil {
		return
	}
	n.mu.Lock()
	delete(n.partitioned, peer)
	n.mu.Unlock()
}

func (n *NetInjector) isPartitioned(peer string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitioned[peer]
}

// Frames returns the number of frame decisions observed.
func (n *NetInjector) Frames() int64 {
	if n == nil {
		return 0
	}
	return n.frames.Load()
}

// Drops returns the number of dropped frames (including partition drops).
func (n *NetInjector) Drops() int64 {
	if n == nil {
		return 0
	}
	return n.drops.Load()
}

// Dups returns the number of duplicated frames.
func (n *NetInjector) Dups() int64 {
	if n == nil {
		return 0
	}
	return n.dups.Load()
}

// Delays returns the number of delayed frames.
func (n *NetInjector) Delays() int64 {
	if n == nil {
		return 0
	}
	return n.delays.Load()
}

// Disconnects returns the number of injected disconnects.
func (n *NetInjector) Disconnects() int64 {
	if n == nil {
		return 0
	}
	return n.disconnects.Load()
}

// Faults returns the total injected frame faults.
func (n *NetInjector) Faults() int64 {
	return n.Drops() + n.Dups() + n.Delays() + n.Disconnects()
}

// String summarizes the injector's activity.
func (n *NetInjector) String() string {
	if n == nil {
		return "fault: net disabled"
	}
	return fmt.Sprintf("fault: net %d frames, %d drops, %d dups, %d delays, %d disconnects",
		n.Frames(), n.Drops(), n.Dups(), n.Delays(), n.Disconnects())
}
