// Package buildinfo stamps binaries with their provenance. Version is
// an ldflags override point:
//
//	go build -ldflags "-X streamkm/internal/buildinfo.Version=v1.2.3" ./cmd/...
//
// Revision and GoVersion come from the embedded debug build info, so
// even an unstamped binary can say which commit produced it. Every
// daemon and CLI surfaces String() behind a -version flag, and the
// daemon additionally reports it from /healthz — the first question
// about a misbehaving deployment is always "what exactly is running".
package buildinfo

import (
	"runtime"
	"runtime/debug"
)

// Version is the human-facing release string, "dev" unless stamped at
// link time.
var Version = "dev"

// Revision returns the VCS commit the binary was built from (12-char
// prefix, "+dirty" when the tree was modified), or "unknown".
func Revision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "unknown", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// GoVersion returns the toolchain that built the binary.
func GoVersion() string { return runtime.Version() }

// String renders the one-line identity a -version flag prints.
func String(binary string) string {
	return binary + " " + Version + " (" + Revision() + ", " + GoVersion() + ")"
}
