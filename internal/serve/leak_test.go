package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"streamkm/internal/fault"
	"streamkm/internal/govern"
)

// Goroutine-leak coverage for the serving layer: every way a session
// ends — eviction, server drain racing live ingestion, a watchdog
// quarantining a stalled worker — must unwind the session worker, its
// watchdog, its deadline timer, and any blocked clients completely.

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (scheduler cleanup is asynchronous).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLeakSessionEviction creates and evicts sessions (with watchdogs
// and deadline timers armed) across several rounds: workers, watchdog
// goroutines, and timers must all be gone afterwards.
func TestLeakSessionEviction(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		s := newTestServer(t, func(c *Config) {
			c.Budget = govern.Budget{ProgressTimeout: time.Second, Deadline: time.Minute}
		})
		pts := servePoints(60, 3, uint64(round)+40)
		for _, id := range []string{"a", "b", "c"} {
			cfg := testWindowedConfig(id)
			mustCreate(t, s, cfg)
			mustIngest(t, s, id, pts, 20)
		}
		for _, id := range []string{"a", "b", "c"} {
			if err := s.Evict(context.Background(), id); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	waitForGoroutines(t, baseline)
}

// TestLeakDrainWhileIngesting drains the server while clients are
// mid-ingest: the workers must reply to every queued batch (no client
// blocks forever on its reply channel) and then exit.
func TestLeakDrainWhileIngesting(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		s := newTestServer(t, nil)
		pts := servePoints(200, 3, uint64(round)+50)
		for _, id := range []string{"x", "y"} {
			mustCreate(t, s, testWindowedConfig(id))
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				id := []string{"x", "y"}[g%2]
				for {
					_, err := s.Ingest(context.Background(), id, pts[:25])
					if err != nil {
						if errors.Is(err, ErrDraining) || errors.Is(err, ErrClosed) || errors.Is(err, ErrBusy) {
							return
						}
						panic(err)
					}
				}
			}(g)
		}
		time.Sleep(20 * time.Millisecond) // let ingestion get going
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
	waitForGoroutines(t, baseline)
}

// TestLeakWatchdogQuarantinedStall wedges a worker permanently; the
// progress watchdog must quarantine the session (cancelling the
// stalled apply and releasing the blocked client), and eviction plus
// drain must then unwind everything.
func TestLeakWatchdogQuarantinedStall(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := newTestServer(t, func(c *Config) {
		c.Budget = govern.Budget{ProgressTimeout: 50 * time.Millisecond}
		c.injectApply = fault.StallNth(1)
	})
	cfg := testWindowedConfig("stall")
	mustCreate(t, s, cfg)
	pts := servePoints(30, cfg.Dim, 60)

	// The batch hits the injected stall; the watchdog's quarantine
	// cancels it and the client gets an error instead of hanging.
	if _, err := s.Ingest(context.Background(), "stall", pts[:10]); err == nil {
		t.Fatal("stalled ingest returned success")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := s.Info("stall")
		if err != nil {
			t.Fatal(err)
		}
		if info.State == "quarantined" {
			if info.Reason == "" {
				t.Fatal("quarantine must record a reason")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never quarantined the stalled session: %+v", info)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := s.Ingest(context.Background(), "stall", pts[:10]); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("want ErrQuarantined after stall, got %v", err)
	}
	if err := s.Evict(context.Background(), "stall"); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, baseline)
}
