package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streamkm"
	"streamkm/internal/fault"
	"streamkm/internal/govern"
	"streamkm/internal/obs"
)

// Config shapes a Server. The zero value of every field has a usable
// default except Root, which is required.
type Config struct {
	// Root is the daemon's state directory; sessions live under
	// Root/sessions/<id>.
	Root string
	// MaxSessions caps concurrently hosted sessions (0 = 64).
	MaxSessions int
	// Budget is the daemon's resource envelope, reusing the engine
	// governor's vocabulary: MemoryBytes caps the summed working-set
	// estimate of all sessions (admissions beyond it are refused with
	// 503, never absorbed); ProgressTimeout arms the per-session stall
	// watchdog; Deadline is the default session lifetime. Zero fields
	// are unenforced.
	Budget govern.Budget
	// QueueDepth is each session's ingest queue capacity in batches
	// (0 = 16); a full queue refuses with 503 + Retry-After.
	QueueDepth int
	// MaxBatchPoints caps the points accepted per ingest call (0 = 4096).
	MaxBatchPoints int
	// FsyncEvery is the default points between WAL fsyncs (0 = 64;
	// 1 = every point durable before its response).
	FsyncEvery int
	// CheckpointEvery is the default points between checkpoint
	// compactions (0 = 4096).
	CheckpointEvery int
	// RetryAfter is the hint returned with 503 refusals (0 = 1s).
	RetryAfter time.Duration
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)

	// Test-only fault injection points (nil = no faults): checkpoint
	// file writes, WAL appends/fsyncs, and batch application (where
	// StallNth wedges a session for the watchdog to catch).
	injectCheckpoint *fault.Injector
	injectWAL        *fault.Injector
	injectApply      *fault.Injector
}

func (c Config) maxSessions() int {
	if c.MaxSessions <= 0 {
		return 64
	}
	return c.MaxSessions
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 16
	}
	return c.QueueDepth
}

func (c Config) maxBatchPoints() int {
	if c.MaxBatchPoints <= 0 {
		return 4096
	}
	return c.MaxBatchPoints
}

func (c Config) fsyncEvery() int {
	if c.FsyncEvery <= 0 {
		return 64
	}
	return c.FsyncEvery
}

func (c Config) checkpointEvery() int {
	if c.CheckpointEvery <= 0 {
		return 4096
	}
	return c.CheckpointEvery
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return time.Second
	}
	return c.RetryAfter
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// serveMetrics caches the daemon's instruments so hot paths never
// take the registry lock.
type serveMetrics struct {
	sessions         *obs.Gauge
	created          *obs.Counter
	recovered        *obs.Counter
	evicted          *obs.Counter
	quarantined      *obs.Counter
	ingestBatches    *obs.Counter
	ingestPoints     *obs.Counter
	queries          *obs.Counter
	walFsyncs        *obs.Counter
	checkpoints      *obs.Counter
	checkpointErrors *obs.Counter
	memBytes         *obs.Gauge
	ingestSeconds    *obs.Histogram
	querySeconds     *obs.Histogram
}

// Server hosts clustering sessions: creation with admission control,
// durable ingestion, snapshot queries, quarantine of stalled
// sessions, and graceful drain. All methods are safe for concurrent
// use.
type Server struct {
	cfg  Config
	root string
	reg  *obs.Registry
	m    serveMetrics

	mu       sync.RWMutex
	sessions map[string]*session

	draining atomic.Bool
	memUsed  atomic.Int64
	start    time.Time
}

// New opens (or creates) the state directory and recovers every
// session found in it: checkpoint decode plus WAL replay rebuilds
// each clusterer bit-identically at its last durable point. A
// session whose state cannot be rebuilt is kept as a quarantined
// husk — visible, deletable, never silently discarded.
func New(cfg Config) (*Server, error) {
	if cfg.Root == "" {
		return nil, errors.New("serve: Config.Root is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.Root, sessionsDirName), 0o755); err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:      cfg,
		root:     cfg.Root,
		reg:      reg,
		sessions: make(map[string]*session),
		start:    time.Now(),
		m: serveMetrics{
			sessions:         reg.Gauge(obs.ServeSessions, ""),
			created:          reg.Counter(obs.ServeSessionsCreated, ""),
			recovered:        reg.Counter(obs.ServeSessionsRecovered, ""),
			evicted:          reg.Counter(obs.ServeSessionsEvicted, ""),
			quarantined:      reg.Counter(obs.ServeSessionsQuarantined, ""),
			ingestBatches:    reg.Counter(obs.ServeIngestBatches, ""),
			ingestPoints:     reg.Counter(obs.ServeIngestPoints, ""),
			queries:          reg.Counter(obs.ServeQueries, ""),
			walFsyncs:        reg.Counter(obs.ServeWALFsyncs, ""),
			checkpoints:      reg.Counter(obs.ServeCheckpoints, ""),
			checkpointErrors: reg.Counter(obs.ServeCheckpointErrors, ""),
			memBytes:         reg.Gauge(obs.ServeMemBytes, ""),
			ingestSeconds:    reg.Histogram(obs.ServeIngestSeconds, "", obs.LatencyBuckets()),
			querySeconds:     reg.Histogram(obs.ServeQuerySeconds, "", obs.LatencyBuckets()),
		},
	}
	if err := s.recoverAll(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) reject(reason string) {
	s.reg.Counter(obs.ServeRejects, reason).Inc()
}

func (s *Server) chargeMem(delta int64) {
	s.m.memBytes.Set(s.memUsed.Add(delta))
}

// newSessionID draws a random, collision-resistant identifier.
func newSessionID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failing means the host is broken
	}
	return "s-" + hex.EncodeToString(b[:])
}

// buildSession wires the runtime around an already-constructed
// clusterer and registers it; srv.mu must be held by the caller.
func (s *Server) buildSession(cfg SessionConfig, win *streamkm.WindowedClusterer, str *streamkm.StreamClusterer, w *wal, applied uint64) *session {
	ctx, cancel := context.WithCancelCause(context.Background())
	sess := &session{
		id:              cfg.ID,
		cfg:             cfg,
		srv:             s,
		dir:             s.sessionDir(cfg.ID),
		win:             win,
		str:             str,
		wal:             w,
		lockc:           make(chan struct{}, 1),
		queue:           make(chan *ingestBatch, s.cfg.queueDepth()),
		fsyncEvery:      cfg.FsyncEvery,
		checkpointEvery: cfg.CheckpointEvery,
		ctx:             ctx,
		cancel:          cancel,
		done:            make(chan struct{}),
		wdStop:          make(chan struct{}),
		wdDone:          make(chan struct{}),
		created:         time.Now(),
	}
	if sess.fsyncEvery <= 0 {
		sess.fsyncEvery = s.cfg.fsyncEvery()
	}
	if sess.checkpointEvery <= 0 {
		sess.checkpointEvery = s.cfg.checkpointEvery()
	}
	sess.applied.Store(applied)
	sess.durable.Store(applied)
	s.sessions[cfg.ID] = sess
	s.m.sessions.Set(int64(len(s.sessions)))
	if sess.failed() {
		sess.state.Store(stateQuarantined)
		close(sess.done)
		close(sess.wdDone)
		return sess
	}
	sess.noteCost()
	go sess.run()
	if to := s.cfg.Budget.ProgressTimeout; to > 0 {
		probe := govern.Probe{
			Name:     "session:" + cfg.ID,
			Progress: sess.hb.Beats,
			Pending:  func() int64 { return sess.hb.InFlight() + int64(len(sess.queue)) },
		}
		go func() {
			govern.NewWatchdog(to, probe).Watch(sess.wdStop, func(err error) {
				s.quarantine(sess, err)
			})
			close(sess.wdDone)
		}()
	} else {
		close(sess.wdDone)
	}
	deadline := s.cfg.Budget.Deadline
	if cfg.DeadlineSeconds > 0 {
		deadline = time.Duration(cfg.DeadlineSeconds * float64(time.Second))
	} else if cfg.DeadlineSeconds < 0 {
		deadline = 0
	}
	if deadline > 0 {
		// Stored atomically: a tiny deadline can fire (and reach
		// stopWatchdog via quarantine) before this assignment lands.
		sess.deadline.Store(time.AfterFunc(deadline, func() {
			s.quarantine(sess, fmt.Errorf("session deadline %v exceeded", deadline))
		}))
	}
	return sess
}

// CreateSession admits and persists a new session. Refusals are
// immediate and typed: ErrDraining, ErrTooMany, ErrMemory (all 503
// at the HTTP layer), ErrExists, or a validation error.
func (s *Server) CreateSession(cfg SessionConfig) (*SessionInfo, error) {
	if s.draining.Load() {
		s.reject("draining")
		return nil, ErrDraining
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.ID == "" {
		cfg.ID = newSessionID()
	} else if !validSessionID(cfg.ID) {
		return nil, fmt.Errorf("%w: invalid session id %q", ErrBadRequest, cfg.ID)
	}

	var win *streamkm.WindowedClusterer
	var str *streamkm.StreamClusterer
	var err error
	if cfg.kind() == KindWindowed {
		win, err = streamkm.NewWindowedClusterer(cfg.Dim, cfg.windowedOptions())
	} else {
		str, err = streamkm.NewStreamClusterer(cfg.Dim, cfg.streamOptions())
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		s.reject("draining")
		return nil, ErrDraining
	}
	if _, ok := s.sessions[cfg.ID]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, cfg.ID)
	}
	if len(s.sessions) >= s.cfg.maxSessions() {
		s.reject("session-limit")
		return nil, ErrTooMany
	}
	probe := &session{cfg: cfg, win: win, str: str}
	if budget := s.cfg.Budget.MemoryBytes; budget > 0 && s.memUsed.Load()+probe.liveCost() > budget {
		s.reject("memory")
		return nil, fmt.Errorf("%w: admitting session would need %d bytes over budget %d",
			ErrMemory, s.memUsed.Load()+probe.liveCost()-budget, budget)
	}

	dir := s.sessionDir(cfg.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	if err := saveMeta(dir, cfg); err != nil {
		cleanup()
		return nil, err
	}
	w, err := createWAL(filepath.Join(dir, walFileName), cfg.Dim)
	if err != nil {
		cleanup()
		return nil, err
	}
	sess := s.buildSession(cfg, win, str, w, 0)
	s.m.created.Inc()
	s.cfg.logf("serve: session %s created (kind=%s dim=%d k=%d)", cfg.ID, cfg.kind(), cfg.Dim, cfg.K)
	info := sess.info()
	return &info, nil
}

// recoverAll rebuilds every session directory found under the root.
func (s *Server) recoverAll() error {
	entries, err := os.ReadDir(filepath.Join(s.root, sessionsDirName))
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		if !e.IsDir() || !validSessionID(e.Name()) {
			continue
		}
		if err := s.recoverSession(e.Name()); err != nil {
			// Keep the husk visible instead of failing the boot or
			// deleting data: the operator decides.
			s.cfg.logf("serve: session %s failed to recover: %v", e.Name(), err)
			husk := s.buildSession(SessionConfig{ID: e.Name()}, nil, nil, nil, 0)
			husk.setReason(fmt.Sprintf("recovery failed: %v", err))
			s.m.quarantined.Inc()
		}
	}
	return nil
}

// recoverSession rebuilds one session from its checkpoint and WAL;
// srv.mu must be held.
func (s *Server) recoverSession(id string) error {
	dir := s.sessionDir(id)
	cfg, err := loadMeta(dir)
	if err != nil {
		return err
	}
	cfg.ID = id
	if err := cfg.validate(); err != nil {
		return err
	}

	var win *streamkm.WindowedClusterer
	var str *streamkm.StreamClusterer
	var base uint64
	ckPath := filepath.Join(dir, checkpointFileName)
	if f, err := os.Open(ckPath); err == nil {
		if cfg.kind() == KindWindowed {
			win, err = streamkm.ResumeWindowedClusterer(f, cfg.windowedOptions())
			if err == nil {
				base = uint64(win.Consumed())
			}
		} else {
			str, err = streamkm.ResumeStreamClusterer(f, cfg.streamOptions())
			if err == nil {
				base = uint64(str.Pushed())
			}
		}
		f.Close()
		if err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	} else if cfg.kind() == KindWindowed {
		if win, err = streamkm.NewWindowedClusterer(cfg.Dim, cfg.windowedOptions()); err != nil {
			return err
		}
	} else {
		if str, err = streamkm.NewStreamClusterer(cfg.Dim, cfg.streamOptions()); err != nil {
			return err
		}
	}

	push := func(seq uint64, p []float64) error {
		if win != nil {
			return win.Push(p)
		}
		return str.Push(p)
	}
	walPath := filepath.Join(dir, walFileName)
	last, reinit, err := replayWAL(walPath, cfg.Dim, base, push)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var w *wal
	if reinit {
		w, err = createWAL(walPath, cfg.Dim)
	} else {
		w, err = openWALAppend(walPath, cfg.Dim)
	}
	if err != nil {
		return err
	}
	s.buildSession(cfg, win, str, w, last)
	s.m.recovered.Inc()
	s.cfg.logf("serve: session %s recovered at seq %d (checkpoint %d + wal %d)", id, last, base, last-base)
	return nil
}

func (s *Server) lookup(id string) (*session, error) {
	s.mu.RLock()
	sess, ok := s.sessions[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return sess, nil
}

// IngestResult acknowledges an applied batch: Applied is the
// session's stream position after the batch; Durable is the prefix
// guaranteed to survive a crash.
type IngestResult struct {
	Applied uint64 `json:"applied"`
	Durable uint64 `json:"durable"`
}

// Ingest validates, journals, and applies a batch of points,
// blocking until the session's worker has processed it (so the
// response's positions are real) or ctx is done (the batch may still
// apply after the caller departs).
func (s *Server) Ingest(ctx context.Context, id string, points [][]float64) (IngestResult, error) {
	var zero IngestResult
	if s.draining.Load() {
		s.reject("draining")
		return zero, ErrDraining
	}
	sess, err := s.lookup(id)
	if err != nil {
		return zero, err
	}
	switch sess.state.Load() {
	case stateQuarantined:
		return zero, fmt.Errorf("%w: %s", ErrQuarantined, sess.stateReason())
	case stateClosing, stateClosed:
		return zero, ErrClosed
	}
	if len(points) == 0 {
		return IngestResult{Applied: sess.applied.Load(), Durable: sess.durable.Load()}, nil
	}
	if max := s.cfg.maxBatchPoints(); len(points) > max {
		return zero, fmt.Errorf("%w: batch of %d points exceeds limit %d", ErrBadRequest, len(points), max)
	}
	for i, p := range points {
		if len(p) != sess.cfg.Dim {
			return zero, fmt.Errorf("%w: point %d has dim %d, want %d", ErrBadRequest, i, len(p), sess.cfg.Dim)
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return zero, fmt.Errorf("%w: point %d has a non-finite coordinate", ErrBadRequest, i)
			}
		}
	}
	if budget := s.cfg.Budget.MemoryBytes; budget > 0 && s.memUsed.Load() > budget {
		s.reject("memory")
		return zero, fmt.Errorf("%w: working set %d bytes over budget %d", ErrMemory, s.memUsed.Load()-budget, budget)
	}

	b := &ingestBatch{points: points, reply: make(chan ingestReply, 1)}
	if err := sess.enqueue(b); err != nil {
		if errors.Is(err, ErrBusy) {
			s.reject("queue-full")
		}
		return zero, err
	}
	select {
	case rep := <-b.reply:
		if rep.err != nil {
			return zero, rep.err
		}
		return IngestResult{Applied: rep.applied, Durable: rep.durable}, nil
	case <-ctx.Done():
		return zero, context.Cause(ctx)
	}
}

// ClustersResult is the deterministic clustering answer: every field
// is a pure function of the points ingested, so two servers at the
// same stream position marshal byte-identical documents (timings are
// deliberately absent).
type ClustersResult struct {
	Consumed   uint64      `json:"consumed"`
	Durable    uint64      `json:"durable"`
	Partitions int         `json:"partitions"`
	LiveChunks int         `json:"live_chunks,omitempty"`
	MergeMSE   float64     `json:"merge_mse"`
	Weights    []float64   `json:"weights"`
	Centroids  [][]float64 `json:"centroids"`
}

// Clusters answers a windowed session's continuous query.
func (s *Server) Clusters(ctx context.Context, id string) (*ClustersResult, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	if sess.state.Load() == stateQuarantined {
		return nil, fmt.Errorf("%w: %s", ErrQuarantined, sess.stateReason())
	}
	if sess.win == nil {
		return nil, fmt.Errorf("%w: clusters requires a windowed session", ErrWrongKind)
	}
	start := time.Now()
	if err := sess.acquire(ctx); err != nil {
		return nil, err
	}
	res, err := sess.win.Snapshot()
	live := sess.win.LiveChunks()
	sess.release()
	s.m.queries.Inc()
	s.m.querySeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotReady, err)
	}
	return &ClustersResult{
		Consumed:   sess.applied.Load(),
		Durable:    sess.durable.Load(),
		Partitions: res.Partitions,
		LiveChunks: live,
		MergeMSE:   res.MergeMSE,
		Weights:    res.Weights,
		Centroids:  res.Centroids,
	}, nil
}

// Finish completes a stream session: remaining queued batches are
// applied first (the queue is closed and drained), then the final
// merge runs and the session — answered, done — is removed along
// with its on-disk state.
func (s *Server) Finish(ctx context.Context, id string) (*ClustersResult, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	if sess.str == nil {
		return nil, fmt.Errorf("%w: finish requires a stream session", ErrWrongKind)
	}
	if !sess.state.CompareAndSwap(stateActive, stateClosing) {
		if sess.state.Load() == stateQuarantined {
			return nil, fmt.Errorf("%w: %s", ErrQuarantined, sess.stateReason())
		}
		return nil, ErrClosed
	}
	sess.closeQueue()
	select {
	case <-sess.done:
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
	start := time.Now()
	if err := sess.acquire(ctx); err != nil {
		return nil, err
	}
	res, ferr := sess.str.Finish()
	sess.release()
	s.m.queries.Inc()
	s.m.querySeconds.Observe(time.Since(start).Seconds())
	if ferr != nil {
		// Leave the session closing but intact on disk; a restart can
		// retry the finish from the durable state.
		sess.setReason(fmt.Sprintf("finish failed: %v", ferr))
		return nil, fmt.Errorf("%w: %v", ErrNotReady, ferr)
	}
	s.removeSession(sess, true)
	return &ClustersResult{
		Consumed:   sess.applied.Load(),
		Durable:    sess.durable.Load(),
		Partitions: res.Partitions,
		MergeMSE:   res.MergeMSE,
		Weights:    res.Weights,
		Centroids:  res.Centroids,
	}, nil
}

// Evict deletes a session and its on-disk state. Queued batches are
// answered with ErrClosed; an eviction racing another eviction loses
// with ErrNotFound.
func (s *Server) Evict(ctx context.Context, id string) error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
		s.m.sessions.Set(int64(len(s.sessions)))
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	sess.state.Store(stateClosing)
	sess.closeQueue()
	sess.cancel(ErrClosed)
	sess.stopWatchdog()
	select {
	case <-sess.done:
	case <-ctx.Done():
		// A truly wedged worker can't be joined; the session is
		// already unroutable, so give up waiting rather than wedge
		// the caller too.
		return context.Cause(ctx)
	}
	<-sess.wdDone
	sess.state.Store(stateClosed)
	if sess.wal != nil {
		sess.wal.Close()
	}
	if err := os.RemoveAll(sess.dir); err != nil {
		return err
	}
	s.chargeMem(-sess.cost.Swap(0))
	s.m.evicted.Inc()
	s.cfg.logf("serve: session %s evicted", id)
	return nil
}

// removeSession forgets an already-stopped session, optionally
// deleting its files (the finish path).
func (s *Server) removeSession(sess *session, deleteFiles bool) {
	s.mu.Lock()
	if cur, ok := s.sessions[sess.id]; ok && cur == sess {
		delete(s.sessions, sess.id)
		s.m.sessions.Set(int64(len(s.sessions)))
	}
	s.mu.Unlock()
	sess.cancel(ErrClosed)
	sess.stopWatchdog()
	<-sess.wdDone
	sess.state.Store(stateClosed)
	if sess.wal != nil {
		sess.wal.Close()
	}
	if deleteFiles {
		os.RemoveAll(sess.dir)
	}
	s.chargeMem(-sess.cost.Swap(0))
	s.m.evicted.Inc()
}

// quarantine isolates a session that stopped behaving — a stall, a
// WAL failure, an expired deadline — without touching its durable
// state. The queue is closed first so the worker's exit sweep
// answers every queued batch, then the worker context is cancelled.
func (s *Server) quarantine(sess *session, cause error) {
	if !sess.state.CompareAndSwap(stateActive, stateQuarantined) {
		return
	}
	sess.setReason(cause.Error())
	sess.closeQueue()
	sess.cancel(fmt.Errorf("%w: %v", ErrQuarantined, cause))
	sess.stopWatchdog()
	s.m.quarantined.Inc()
	s.cfg.logf("serve: session %s quarantined: %v", sess.id, cause)
}

// SessionInfo is a session's public status.
type SessionInfo struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	State    string `json:"state"`
	Reason   string `json:"reason,omitempty"`
	Dim      int    `json:"dim"`
	K        int    `json:"k"`
	Consumed uint64 `json:"consumed"`
	Durable  uint64 `json:"durable"`
}

func (s *session) info() SessionInfo {
	return SessionInfo{
		ID:       s.id,
		Kind:     s.kindName(),
		State:    stateName(s.state.Load()),
		Reason:   s.stateReason(),
		Dim:      s.cfg.Dim,
		K:        s.cfg.K,
		Consumed: s.applied.Load(),
		Durable:  s.durable.Load(),
	}
}

// Info returns one session's status.
func (s *Server) Info(id string) (*SessionInfo, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	info := sess.info()
	return &info, nil
}

// List returns every session's status, sorted by ID.
func (s *Server) List() []SessionInfo {
	s.mu.RLock()
	out := make([]SessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess.info())
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SessionReport renders a windowed session's query-path metrics.
func (s *Server) SessionReport(ctx context.Context, id string) (*obs.Report, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	if sess.win == nil {
		return nil, fmt.Errorf("%w: report requires a windowed session", ErrWrongKind)
	}
	if err := sess.acquire(ctx); err != nil {
		return nil, err
	}
	defer sess.release()
	return sess.win.Report(), nil
}

// Report renders the daemon's metrics as the engine's schema-stable
// run-report document; /metrics serves its JSON.
func (s *Server) Report() *obs.Report {
	return &obs.Report{
		Schema:         obs.ReportSchema,
		ElapsedSeconds: time.Since(s.start).Seconds(),
		Metrics:        s.reg.Snapshot(),
	}
}

// Draining reports whether a drain has begun (readiness gate).
func (s *Server) Draining() bool { return s.draining.Load() }

// Uptime is how long the server has been running.
func (s *Server) Uptime() time.Duration { return time.Since(s.start) }

// SessionCount returns the number of hosted sessions.
func (s *Server) SessionCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sessions)
}

// Drain is the SIGTERM path: stop admissions, let every session's
// queued work apply, flush a final durable checkpoint per session,
// and release all background goroutines. In-flight queries keep
// working throughout (the HTTP server's own shutdown bounds those).
// Drain returns the first flush error but keeps draining the rest;
// a clean drain means exit 0.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.RLock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.RUnlock()

	var firstErr error
	for _, sess := range sessions {
		sess.closeQueue()
	}
	for _, sess := range sessions {
		select {
		case <-sess.done:
		case <-ctx.Done():
			if firstErr == nil {
				firstErr = context.Cause(ctx)
			}
			// Force the worker out; its queue is already closed.
			sess.cancel(ErrDraining)
			<-sess.done
		}
		sess.stopWatchdog()
		<-sess.wdDone
		// Quarantined sessions keep their last durable state as-is:
		// their WAL or worker already misbehaved, so a flush could
		// not be trusted anyway.
		if sess.state.Load() != stateQuarantined {
			if err := sess.finalFlush(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("serve: flushing session %s: %w", sess.id, err)
			}
		}
		if sess.wal != nil {
			sess.wal.Close()
		}
		if sess.state.Load() == stateActive {
			sess.state.Store(stateClosed)
		}
		sess.cancel(ErrDraining)
	}
	s.cfg.logf("serve: drained %d sessions", len(sessions))
	return firstErr
}
