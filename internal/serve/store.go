package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
)

// On-disk layout: <root>/sessions/<id>/{meta.json, checkpoint,
// wal.log}. meta.json is the session's configuration (written once at
// create); checkpoint is the latest SKMC document (replaced
// atomically at every compaction); wal.log journals the points since
// that checkpoint. Recovery = decode checkpoint, replay wal.log.
const (
	sessionsDirName    = "sessions"
	metaFileName       = "meta.json"
	checkpointFileName = "checkpoint"
	walFileName        = "wal.log"
)

// idPattern keeps session IDs filesystem- and URL-safe.
var idPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

func validSessionID(id string) bool {
	return idPattern.MatchString(id) && id != "." && id != ".."
}

func (s *Server) sessionDir(id string) string {
	return filepath.Join(s.root, sessionsDirName, id)
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable too.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// writeFileAtomic writes via a temp file, fsyncs it, renames it into
// place, and fsyncs the directory — a reader (including a recovering
// daemon) sees either the old complete file or the new complete file,
// never a torn one.
func writeFileAtomic(dir, name string, write func(io.Writer) error) (err error) {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriter(f)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}

func saveMeta(dir string, cfg SessionConfig) error {
	return writeFileAtomic(dir, metaFileName, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(cfg)
	})
}

func loadMeta(dir string) (SessionConfig, error) {
	var cfg SessionConfig
	b, err := os.ReadFile(filepath.Join(dir, metaFileName))
	if err != nil {
		return cfg, err
	}
	if err := json.Unmarshal(b, &cfg); err != nil {
		return cfg, fmt.Errorf("serve: corrupt %s: %w", metaFileName, err)
	}
	return cfg, nil
}
