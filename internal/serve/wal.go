// Package serve is the daemon-side serving layer: it hosts many
// concurrent clustering sessions (one windowed or stream clusterer
// each) behind an HTTP API, journals every ingested point to a
// per-session write-ahead log, and compacts the log into SKMC
// checkpoints on a configurable cadence. The robustness contract is
// the package's reason to exist: a SIGKILL at any instant loses at
// most the points after the last fsync, and a restarted daemon
// resumes every session bit-identically from its last durable point
// (checkpoint + WAL replay); admission control refuses work with 503
// instead of growing past the memory budget; a per-session watchdog
// quarantines stalled sessions instead of letting them wedge the
// daemon; SIGTERM drains gracefully — no new work, flush everything,
// exit 0.
package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// WAL format "SKML" (docs/FORMATS.md): an 8-byte header — magic
// "SKML", version uint16, dim uint16 — followed by fixed-size
// records, each seq uint64 | dim float64 coordinates | crc32(IEEE)
// over the preceding bytes, all big-endian. Records carry strictly
// sequential seqs; recovery truncates a torn tail at the first
// short or checksum-failing record and replays only seqs above the
// checkpoint's covered position, so a crash between a checkpoint
// rename and the log truncation can never double-apply a point.
const (
	walMagic      = "SKML"
	walVersion    = 1
	walHeaderSize = 8
)

func walRecordSize(dim int) int { return 8 + 8*dim + 4 }

// wal is an append-only point journal for one session. It is not
// safe for concurrent use; the session's worker goroutine owns it.
type wal struct {
	f   *os.File
	w   *bufio.Writer
	dim int
	rec []byte
}

func walHeader(dim int) []byte {
	hdr := make([]byte, walHeaderSize)
	copy(hdr, walMagic)
	binary.BigEndian.PutUint16(hdr[4:], walVersion)
	binary.BigEndian.PutUint16(hdr[6:], uint16(dim))
	return hdr
}

// createWAL truncates (or creates) the log at path and writes a
// durable header.
func createWAL(path string, dim int) (*wal, error) {
	if dim <= 0 || dim > math.MaxUint16 {
		return nil, fmt.Errorf("serve: wal dim %d out of range", dim)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(walHeader(dim)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, w: bufio.NewWriter(f), dim: dim, rec: make([]byte, walRecordSize(dim))}, nil
}

// openWALAppend opens an existing, already-validated log for
// appending (replayWAL has verified the header and truncated any
// torn tail).
func openWALAppend(path string, dim int) (*wal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, w: bufio.NewWriter(f), dim: dim, rec: make([]byte, walRecordSize(dim))}, nil
}

// Append journals one point under the given sequence number. The
// record lands in the write buffer; it is durable only after Sync.
func (w *wal) Append(seq uint64, point []float64) error {
	if len(point) != w.dim {
		return fmt.Errorf("serve: wal point dim %d, want %d", len(point), w.dim)
	}
	rec := w.rec
	binary.BigEndian.PutUint64(rec, seq)
	for i, v := range point {
		binary.BigEndian.PutUint64(rec[8+8*i:], math.Float64bits(v))
	}
	binary.BigEndian.PutUint32(rec[len(rec)-4:], crc32.ChecksumIEEE(rec[:len(rec)-4]))
	_, err := w.w.Write(rec)
	return err
}

// Sync flushes buffered records and fsyncs the file: everything
// appended so far survives a crash.
func (w *wal) Sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Reset discards buffered records and truncates the log back to its
// header — called right after a checkpoint made every journaled
// point redundant.
func (w *wal) Reset() error {
	w.w.Reset(w.f)
	if err := w.f.Truncate(walHeaderSize); err != nil {
		return err
	}
	if _, err := w.f.Seek(walHeaderSize, io.SeekStart); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes best-effort and closes the file.
func (w *wal) Close() error {
	ferr := w.w.Flush()
	cerr := w.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// replayWAL scans the log at path, invoking apply for every intact
// record with seq > base in order, and truncates a torn tail at the
// first short or corrupt record. It returns the last sequence the
// log accounts for (base when the log adds nothing) and whether the
// caller must recreate the file (missing, or its header itself was
// torn — both mean no replayable records survived, which is safe
// exactly because the header is only ever rewritten when a fresh
// checkpoint already covers every logged point).
func replayWAL(path string, dim int, base uint64, apply func(seq uint64, point []float64) error) (last uint64, reinit bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return base, true, nil
	}
	if err != nil {
		return 0, false, err
	}
	defer f.Close()

	hdr := make([]byte, walHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return base, true, nil
		}
		return 0, false, err
	}
	if string(hdr[:4]) != walMagic {
		return 0, false, fmt.Errorf("serve: wal magic %q, want %q", hdr[:4], walMagic)
	}
	if v := binary.BigEndian.Uint16(hdr[4:]); v != walVersion {
		return 0, false, fmt.Errorf("serve: wal version %d, want %d", v, walVersion)
	}
	if d := int(binary.BigEndian.Uint16(hdr[6:])); d != dim {
		return 0, false, fmt.Errorf("serve: wal dim %d, want %d", d, dim)
	}

	rs := walRecordSize(dim)
	rec := make([]byte, rs)
	point := make([]float64, dim)
	off := int64(walHeaderSize)
	last = base
	havePrev := false
	var prev uint64
	for {
		_, rerr := io.ReadFull(f, rec)
		if errors.Is(rerr, io.EOF) {
			return last, false, nil
		}
		torn := errors.Is(rerr, io.ErrUnexpectedEOF)
		if rerr != nil && !torn {
			return 0, false, rerr
		}
		if !torn {
			want := binary.BigEndian.Uint32(rec[rs-4:])
			torn = crc32.ChecksumIEEE(rec[:rs-4]) != want
		}
		seq := binary.BigEndian.Uint64(rec)
		if !torn {
			if havePrev && seq != prev+1 {
				torn = true
			} else if !havePrev && seq > base+1 {
				// A gap between the checkpoint's covered position and
				// the first journaled record means points were lost on
				// disk; no truncation can recover a consistent state.
				return 0, false, fmt.Errorf("serve: wal starts at seq %d, checkpoint covers %d: %d points missing", seq, base, seq-base-1)
			}
		}
		if torn {
			// Everything from this record on is unusable (a partial
			// write, bit rot, or a sequence break); cut it off so the
			// reopened log appends cleanly after the last good record.
			if terr := os.Truncate(path, off); terr != nil {
				return 0, false, terr
			}
			return last, false, nil
		}
		prev, havePrev = seq, true
		off += int64(rs)
		if seq <= base {
			continue // already covered by the checkpoint
		}
		for i := range point {
			point[i] = math.Float64frombits(binary.BigEndian.Uint64(rec[8+8*i:]))
		}
		if err := apply(seq, point); err != nil {
			return 0, false, fmt.Errorf("serve: wal replay at seq %d: %w", seq, err)
		}
		last = seq
	}
}
