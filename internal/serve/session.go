package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"streamkm"
	"streamkm/internal/govern"
)

// Session kinds.
const (
	KindWindowed = "windowed" // continuous-query clusterer, queried via clusters
	KindStream   = "stream"   // run-to-completion clusterer, closed via finish
)

// Sentinel errors; the HTTP layer maps them onto status codes (503
// with Retry-After for the retryable family, 404/409/400 otherwise).
var (
	ErrNotFound    = errors.New("serve: session not found")
	ErrExists      = errors.New("serve: session already exists")
	ErrDraining    = errors.New("serve: daemon is draining")
	ErrBusy        = errors.New("serve: session ingest queue is full")
	ErrMemory      = errors.New("serve: memory budget exhausted")
	ErrTooMany     = errors.New("serve: session limit reached")
	ErrQuarantined = errors.New("serve: session is quarantined")
	ErrClosed      = errors.New("serve: session is closed")
	ErrWrongKind   = errors.New("serve: operation does not apply to this session kind")
	ErrNotReady    = errors.New("serve: not enough data for a clustering yet")
	ErrBadRequest  = errors.New("serve: bad request")
)

// SessionConfig is a session's immutable shape: the clusterer options
// plus the session's own durability cadence and lifetime. It is the
// create-request body and the meta.json document verbatim.
type SessionConfig struct {
	ID   string `json:"id,omitempty"`
	Kind string `json:"kind,omitempty"` // "windowed" (default) or "stream"
	Dim  int    `json:"dim"`
	K    int    `json:"k"`
	// ChunkPoints is the per-chunk memory budget (points).
	ChunkPoints int `json:"chunk_points"`
	// WindowChunks is the windowed kind's W (ignored for streams).
	WindowChunks  int     `json:"window_chunks,omitempty"`
	Restarts      int     `json:"restarts,omitempty"`
	Epsilon       float64 `json:"epsilon,omitempty"`
	MaxIterations int     `json:"max_iterations,omitempty"`
	Accelerate    bool    `json:"accelerate,omitempty"`
	Seed          uint64  `json:"seed"`
	MergeSolver   string  `json:"merge_solver,omitempty"`
	// ResyncEvery tunes the windowed kind's snapshot index.
	ResyncEvery int `json:"resync_every,omitempty"`
	// Summarizer/SeedMethod/CoresetSize select the stream kind's chunk
	// summarizer (ignored for windowed sessions).
	Summarizer  string `json:"summarizer,omitempty"`
	SeedMethod  string `json:"seed_method,omitempty"`
	CoresetSize int    `json:"coreset_size,omitempty"`
	// FsyncEvery and CheckpointEvery override the daemon's durability
	// cadence for this session (0 = daemon default): points between
	// WAL fsyncs and between checkpoint compactions.
	FsyncEvery      int `json:"fsync_every,omitempty"`
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// DeadlineSeconds bounds the session's lifetime; when it expires
	// the session is quarantined with its durable state intact
	// (0 = the daemon's Budget.Deadline, negative = no deadline).
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
}

func (c SessionConfig) kind() string {
	if c.Kind == "" {
		return KindWindowed
	}
	return c.Kind
}

// validate rejects configurations before any disk state is created.
// Clusterer-level options are additionally validated by the clusterer
// constructors; this layer checks what the serving path itself needs.
func (c SessionConfig) validate() error {
	switch c.kind() {
	case KindWindowed, KindStream:
	default:
		return fmt.Errorf("%w: kind %q (want %q or %q)", ErrBadRequest, c.Kind, KindWindowed, KindStream)
	}
	if c.Dim <= 0 || c.Dim > math.MaxUint16 {
		return fmt.Errorf("%w: dim %d out of range [1, %d]", ErrBadRequest, c.Dim, math.MaxUint16)
	}
	if c.K <= 0 {
		return fmt.Errorf("%w: k must be positive", ErrBadRequest)
	}
	if c.ChunkPoints <= 0 {
		return fmt.Errorf("%w: chunk_points must be positive", ErrBadRequest)
	}
	if c.kind() == KindWindowed && c.WindowChunks <= 0 {
		return fmt.Errorf("%w: window_chunks must be positive for windowed sessions", ErrBadRequest)
	}
	if c.FsyncEvery < 0 || c.CheckpointEvery < 0 {
		return fmt.Errorf("%w: fsync_every and checkpoint_every must be non-negative", ErrBadRequest)
	}
	return nil
}

func (c SessionConfig) windowedOptions() streamkm.WindowedOptions {
	return streamkm.WindowedOptions{
		K:             c.K,
		ChunkPoints:   c.ChunkPoints,
		WindowChunks:  c.WindowChunks,
		Restarts:      c.Restarts,
		Epsilon:       c.Epsilon,
		MaxIterations: c.MaxIterations,
		Accelerate:    c.Accelerate,
		Seed:          c.Seed,
		MergeSolver:   c.MergeSolver,
		ResyncEvery:   c.ResyncEvery,
	}
}

func (c SessionConfig) streamOptions() streamkm.Options {
	return streamkm.Options{
		K:             c.K,
		ChunkPoints:   c.ChunkPoints,
		Restarts:      c.Restarts,
		Epsilon:       c.Epsilon,
		MaxIterations: c.MaxIterations,
		Accelerate:    c.Accelerate,
		Seed:          c.Seed,
		MergeSolver:   c.MergeSolver,
		Summarizer:    c.Summarizer,
		SeedMethod:    c.SeedMethod,
		CoresetSize:   c.CoresetSize,
	}
}

// Session lifecycle states.
const (
	stateActive int32 = iota
	stateQuarantined
	stateClosing
	stateClosed
)

func stateName(s int32) string {
	switch s {
	case stateActive:
		return "active"
	case stateQuarantined:
		return "quarantined"
	case stateClosing:
		return "closing"
	default:
		return "closed"
	}
}

type ingestBatch struct {
	points [][]float64
	reply  chan ingestReply
}

type ingestReply struct {
	applied uint64
	durable uint64
	err     error
}

// session is one hosted clusterer plus its durability and liveness
// machinery. A single worker goroutine owns the clusterer and the
// WAL; queries borrow them through lockc (a context-aware semaphore,
// so a wedged worker can never wedge a query past its own timeout);
// handlers submit ingest work through a bounded queue and read the
// progress counters as atomics.
type session struct {
	id  string
	cfg SessionConfig
	srv *Server
	dir string

	win *streamkm.WindowedClusterer // kind "windowed"
	str *streamkm.StreamClusterer   // kind "stream"
	wal *wal

	// lockc serializes clusterer+WAL access: worker holds it per
	// batch, queries hold it per snapshot.
	lockc chan struct{}

	queue  chan *ingestBatch
	enqMu  sync.RWMutex // guards qClosed against concurrent close(queue)
	closed bool         // queue closed; named closed to read at call sites

	applied atomic.Uint64 // points applied to the in-memory clusterer
	durable atomic.Uint64 // points guaranteed on disk (fsync or checkpoint)
	cost    atomic.Int64  // working-set estimate charged to the server budget

	// worker-owned durability cadence counters
	pendingSync     int
	sinceCheckpoint int
	fsyncEvery      int
	checkpointEvery int

	hb     govern.Heartbeat
	cancel context.CancelCauseFunc
	ctx    context.Context
	done   chan struct{} // worker exited

	wdStop   chan struct{}
	wdOnce   sync.Once
	wdDone   chan struct{}
	deadline atomic.Pointer[time.Timer]

	state  atomic.Int32
	reason atomic.Value // string: why quarantined/closed

	created time.Time
}

func (s *session) stateReason() string {
	if v := s.reason.Load(); v != nil {
		return v.(string)
	}
	return ""
}

func (s *session) setReason(r string) { s.reason.Store(r) }

// kindName returns the session's kind string.
func (s *session) kindName() string { return s.cfg.kind() }

// failed reports whether the session is a recovery husk: its on-disk
// state exists but could not be rebuilt, so it has no clusterer and
// no worker. Operations fail until an operator deletes it.
func (s *session) failed() bool { return s.win == nil && s.str == nil }

// acquire takes the clusterer lock, giving up when ctx is done.
func (s *session) acquire(ctx context.Context) error {
	select {
	case s.lockc <- struct{}{}:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

func (s *session) release() { <-s.lockc }

// closeQueue stops new enqueues and closes the queue exactly once;
// every shutdown path (drain, finish, evict, quarantine) goes through
// it before cancelling the worker, so the worker's final sweep over
// the closed queue always terminates and every queued batch gets a
// reply.
func (s *session) closeQueue() {
	s.enqMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.enqMu.Unlock()
}

// enqueue submits a batch, refusing immediately when the queue is
// full (the caller maps that to 503 + Retry-After) or closed.
func (s *session) enqueue(b *ingestBatch) error {
	s.enqMu.RLock()
	defer s.enqMu.RUnlock()
	if s.closed {
		if s.state.Load() == stateQuarantined {
			return fmt.Errorf("%w: %s", ErrQuarantined, s.stateReason())
		}
		return ErrClosed
	}
	select {
	case s.queue <- b:
		return nil
	default:
		return ErrBusy
	}
}

// stopWatchdog releases the watchdog goroutine and the deadline
// timer; safe to call from any shutdown path, any number of times.
func (s *session) stopWatchdog() {
	s.wdOnce.Do(func() { close(s.wdStop) })
	if t := s.deadline.Load(); t != nil {
		t.Stop()
	}
}

// run is the session worker: it applies ingest batches in arrival
// order, journaling each point to the WAL before pushing it into the
// clusterer, and drives the fsync/checkpoint cadences. It exits when
// the queue closes (drain/finish/evict) or its context is cancelled
// (quarantine), sweeping any still-queued batches with an error reply
// on the way out.
func (s *session) run() {
	defer close(s.done)
	defer func() {
		cause := context.Cause(s.ctx)
		if cause == nil {
			cause = ErrClosed
		}
		for b := range s.queue {
			b.reply <- ingestReply{err: cause}
		}
	}()
	for {
		select {
		case <-s.ctx.Done():
			return
		case b, ok := <-s.queue:
			if !ok {
				return
			}
			s.hb.Begin()
			rep := s.applyBatch(b.points)
			s.hb.End()
			b.reply <- rep
			if rep.err == nil {
				s.srv.m.ingestBatches.Inc()
				s.srv.m.ingestPoints.Add(int64(len(b.points)))
			}
		}
	}
}

// applyBatch journals and applies one batch under the clusterer lock.
// A WAL failure quarantines the session (its durable prefix is
// intact); a checkpoint failure is survivable (the WAL keeps
// growing, the next compaction retries).
func (s *session) applyBatch(points [][]float64) ingestReply {
	start := time.Now()
	if err := s.acquire(s.ctx); err != nil {
		return ingestReply{err: err}
	}
	defer s.release()
	if inj := s.srv.cfg.injectApply; inj != nil {
		if err := inj.InvokeContext(s.ctx, "serve-apply"); err != nil {
			return ingestReply{err: err}
		}
	}
	for _, p := range points {
		seq := s.applied.Load() + 1
		if err := s.walWrite(seq, p); err != nil {
			s.srv.quarantine(s, fmt.Errorf("wal write failed: %w", err))
			return ingestReply{err: fmt.Errorf("%w: wal write failed: %v", ErrQuarantined, err)}
		}
		if err := s.push(p); err != nil {
			// The WAL now holds a point the clusterer rejected; memory
			// and disk have diverged, which only a restart reconciles.
			s.srv.quarantine(s, fmt.Errorf("clusterer rejected journaled point: %w", err))
			return ingestReply{err: fmt.Errorf("%w: %v", ErrQuarantined, err)}
		}
		s.applied.Store(seq)
		s.pendingSync++
		s.sinceCheckpoint++
		s.hb.Beat()
		if s.pendingSync >= s.fsyncEvery {
			if err := s.syncWAL(); err != nil {
				s.srv.quarantine(s, fmt.Errorf("wal fsync failed: %w", err))
				return ingestReply{err: fmt.Errorf("%w: wal fsync failed: %v", ErrQuarantined, err)}
			}
		}
	}
	if s.sinceCheckpoint >= s.checkpointEvery {
		s.compact()
	}
	s.noteCost()
	s.srv.m.ingestSeconds.Observe(time.Since(start).Seconds())
	return ingestReply{applied: s.applied.Load(), durable: s.durable.Load()}
}

func (s *session) walWrite(seq uint64, p []float64) error {
	if inj := s.srv.cfg.injectWAL; inj != nil {
		if err := inj.InvokeContext(s.ctx, "serve-wal"); err != nil {
			return err
		}
	}
	return s.wal.Append(seq, p)
}

func (s *session) push(p []float64) error {
	if s.win != nil {
		return s.win.Push(p)
	}
	return s.str.Push(p)
}

func (s *session) syncWAL() error {
	if inj := s.srv.cfg.injectWAL; inj != nil {
		if err := inj.InvokeContext(s.ctx, "serve-wal-sync"); err != nil {
			return err
		}
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.durable.Store(s.applied.Load())
	s.pendingSync = 0
	s.srv.m.walFsyncs.Inc()
	return nil
}

// compact replaces the checkpoint with the clusterer's current state
// and truncates the WAL. Failure is non-fatal by design: the
// checkpoint write is atomic (the old checkpoint survives), the WAL
// is untouched, so durability falls back to the journal and the next
// cadence boundary retries — a full disk degrades compaction, never
// correctness.
func (s *session) compact() {
	if err := s.writeCheckpoint(); err != nil {
		s.srv.m.checkpointErrors.Inc()
		return
	}
	if err := s.wal.Reset(); err != nil {
		// The checkpoint is durable but the journal could not be
		// truncated; appending at an unknown offset would corrupt it.
		s.srv.quarantine(s, fmt.Errorf("wal reset failed: %w", err))
		return
	}
	s.durable.Store(s.applied.Load())
	s.pendingSync = 0
	s.sinceCheckpoint = 0
	s.srv.m.checkpoints.Inc()
}

func (s *session) writeCheckpoint() error {
	if inj := s.srv.cfg.injectCheckpoint; inj != nil {
		if err := inj.InvokeContext(s.ctx, "serve-checkpoint"); err != nil {
			return err
		}
	}
	return writeFileAtomic(s.dir, checkpointFileName, func(w io.Writer) error {
		if s.win != nil {
			return s.win.Checkpoint(w)
		}
		return s.str.Checkpoint(w)
	})
}

// finalFlush is the drain path's last act for a session, called after
// its worker has exited: make everything durable, preferring a fresh
// checkpoint and falling back to a synced WAL.
func (s *session) finalFlush() error {
	if s.failed() {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.durable.Store(s.applied.Load())
	if err := s.writeCheckpoint(); err != nil {
		// Non-fatal: the WAL is synced, so nothing is lost.
		s.srv.m.checkpointErrors.Inc()
		return nil
	}
	if err := s.wal.Reset(); err != nil {
		return err
	}
	s.srv.m.checkpoints.Inc()
	return nil
}

// liveCost estimates the session's working set in bytes: the chunk
// buffer plus the retained summaries. Stream sessions grow one
// k-centroid summary per chunk, so their estimate is refreshed after
// every batch; windowed sessions are flat by construction.
func (s *session) liveCost() int64 {
	per := int64(8 * (s.cfg.Dim + 1))
	cost := int64(s.cfg.ChunkPoints) * int64(s.cfg.Dim) * 8
	if s.win != nil {
		cost += int64(s.cfg.WindowChunks+3) * int64(s.cfg.K) * per
	} else if s.str != nil {
		cost += int64(s.str.Partials()+2) * int64(s.cfg.K) * per
	}
	return cost
}

// noteCost charges the estimate's delta to the server's budget
// accounting. Called by the worker (under the session lock) and at
// create/evict time.
func (s *session) noteCost() {
	now := s.liveCost()
	prev := s.cost.Swap(now)
	s.srv.chargeMem(now - prev)
}
