package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"streamkm/internal/buildinfo"
)

// Handler returns the daemon's HTTP API:
//
//	GET    /healthz                   — liveness + build identity
//	GET    /readyz                    — readiness (503 while draining)
//	GET    /metrics                   — daemon metrics (obs run-report JSON)
//	GET    /v1/sessions               — list sessions
//	POST   /v1/sessions               — create a session (body: SessionConfig)
//	GET    /v1/sessions/{id}          — one session's status
//	DELETE /v1/sessions/{id}          — evict a session and its state
//	POST   /v1/sessions/{id}/points   — ingest {"points": [[...], ...]}
//	GET    /v1/sessions/{id}/clusters — windowed snapshot query
//	POST   /v1/sessions/{id}/finish   — stream final merge (removes the session)
//	GET    /v1/sessions/{id}/report   — windowed query-path metrics
//
// Refusals the client should retry (queue full, memory budget,
// draining, session limit) answer 503 with a Retry-After header;
// everything else maps to conventional statuses.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleInfo)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleEvict)
	mux.HandleFunc("POST /v1/sessions/{id}/points", s.handleIngest)
	mux.HandleFunc("GET /v1/sessions/{id}/clusters", s.handleClusters)
	mux.HandleFunc("POST /v1/sessions/{id}/finish", s.handleFinish)
	mux.HandleFunc("GET /v1/sessions/{id}/report", s.handleReport)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr maps the package's sentinel errors onto HTTP statuses.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrBusy), errors.Is(err, ErrMemory),
		errors.Is(err, ErrDraining), errors.Is(err, ErrTooMany):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.retryAfter().Seconds()+0.5)))
	case errors.Is(err, ErrQuarantined), errors.Is(err, ErrClosed),
		errors.Is(err, ErrExists), errors.Is(err, ErrWrongKind),
		errors.Is(err, ErrNotReady):
		status = http.StatusConflict
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"version":        buildinfo.Version,
		"revision":       buildinfo.Revision(),
		"go":             buildinfo.GoVersion(),
		"sessions":       s.SessionCount(),
		"draining":       s.Draining(),
		"uptime_seconds": s.Uptime().Seconds(),
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.retryAfter().Seconds()+0.5)))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	b, err := s.Report().JSON()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
	w.Write([]byte("\n"))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sessions": s.List()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var cfg SessionConfig
	if err := decodeBody(w, r, &cfg); err != nil {
		s.writeErr(w, err)
		return
	}
	info, err := s.CreateSession(cfg)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.Info(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	if err := s.Evict(r.Context(), r.PathValue("id")); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "evicted"})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Points [][]float64 `json:"points"`
	}
	if err := decodeBody(w, r, &body); err != nil {
		s.writeErr(w, err)
		return
	}
	res, err := s.Ingest(r.Context(), r.PathValue("id"), body.Points)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	res, err := s.Clusters(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleFinish(w http.ResponseWriter, r *http.Request) {
	res, err := s.Finish(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, err := s.SessionReport(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	b, err := rep.JSON()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
	w.Write([]byte("\n"))
}

// maxBodyBytes bounds request bodies (64 MiB covers the largest legal
// batch with slack; a hostile body fails fast instead of ballooning).
const maxBodyBytes = 64 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}
