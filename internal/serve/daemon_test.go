package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// End-to-end crash test against the real binary: build cmd/streamkmd,
// ingest over HTTP with per-point fsync, kill -9 mid-conversation,
// restart on the same state directory, and require the recovered
// answer to be byte-identical across a further graceful SIGTERM
// restart. This is the paper's "one pass, resumable" contract pushed
// all the way out to the process boundary.

// daemon wraps a running streamkmd subprocess.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "streamkmd")
	cmd := exec.Command("go", "build", "-o", bin, "streamkm/cmd/streamkmd")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building streamkmd: %v\n%s", err, out)
	}
	return bin
}

func startDaemon(t *testing.T, bin, state string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-listen", "127.0.0.1:0", "-state", state}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("daemon exited before announcing its address: %v", sc.Err())
	}
	line := sc.Text()
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[1] != "listening" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("unexpected startup line: %q", line)
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	return &daemon{cmd: cmd, addr: fields[3]}
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

func (d *daemon) post(t *testing.T, path string, body any) []byte {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.url(path), "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: %d %s", path, resp.StatusCode, out)
	}
	return out
}

func (d *daemon) get(t *testing.T, path string) []byte {
	t.Helper()
	resp, err := http.Get(d.url(path))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		t.Fatalf("GET %s: %d %s", path, resp.StatusCode, out)
	}
	return out
}

// sigterm asks for a graceful drain and requires exit code 0.
func (d *daemon) sigterm(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM drain must exit 0: %v", err)
		}
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		t.Fatal("daemon did not drain within 30s of SIGTERM")
	}
}

// sigkill is the crash: no drain, no flush, no goodbye.
func (d *daemon) sigkill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()
}

func TestDaemonSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crashes a subprocess")
	}
	bin := buildDaemon(t)
	state := t.TempDir()
	pts := servePoints(300, 3, 70)

	d := startDaemon(t, bin, state)
	cfg := testWindowedConfig("crash")
	cfg.FsyncEvery = 1 // every acknowledged point is durable
	d.post(t, "/v1/sessions", cfg)
	var durable uint64
	for i := 0; i < 200; i += 25 {
		var res IngestResult
		out := d.post(t, "/v1/sessions/crash/points", map[string]any{"points": pts[i : i+25]})
		if err := json.Unmarshal(out, &res); err != nil {
			t.Fatal(err)
		}
		durable = res.Durable
	}
	if durable != 200 {
		t.Fatalf("durable = %d after 200 acknowledged points with fsync-every 1", durable)
	}
	d.sigkill(t)

	// Restart 1: recover, verify position, keep ingesting, then
	// record the answer.
	d = startDaemon(t, bin, state)
	var info SessionInfo
	if err := json.Unmarshal(d.get(t, "/v1/sessions/crash"), &info); err != nil {
		t.Fatal(err)
	}
	if info.Consumed < 200 {
		t.Fatalf("recovered %d points; 200 were acknowledged durable", info.Consumed)
	}
	for i := int(info.Consumed); i < 300; i += 25 {
		d.post(t, "/v1/sessions/crash/points", map[string]any{"points": pts[i : i+25]})
	}
	first := d.get(t, "/v1/sessions/crash/clusters")
	var firstRes ClustersResult
	if err := json.Unmarshal(first, &firstRes); err != nil {
		t.Fatal(err)
	}
	if firstRes.Consumed != 300 {
		t.Fatalf("consumed %d, want 300", firstRes.Consumed)
	}
	// The daemon's answer must equal an uninterrupted in-process run.
	assertMatchesReference(t, &firstRes, cfg, pts)
	d.sigterm(t)

	// Restart 2 (after the graceful drain): the answer must be
	// byte-identical to the pre-restart one.
	d = startDaemon(t, bin, state)
	second := d.get(t, "/v1/sessions/crash/clusters")
	if !bytes.Equal(first, second) {
		t.Fatalf("clusters JSON changed across graceful restart:\n %s\n %s", first, second)
	}
	// Health endpoint carries the build identity even for "dev" builds.
	var hz map[string]any
	if err := json.Unmarshal(d.get(t, "/healthz"), &hz); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"version", "revision", "go", "sessions"} {
		if _, ok := hz[k]; !ok {
			t.Fatalf("/healthz missing %q: %v", k, hz)
		}
	}
	d.sigterm(t)
}

// TestDaemonVersionFlag checks -version prints the stamp and exits 0.
func TestDaemonVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a subprocess")
	}
	bin := buildDaemon(t)
	out, err := exec.Command(bin, "-version").CombinedOutput()
	if err != nil {
		t.Fatalf("-version: %v\n%s", err, out)
	}
	if !strings.HasPrefix(string(out), "streamkmd ") {
		t.Fatalf("unexpected -version output: %q", out)
	}
}
