package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"streamkm/internal/fault"
	"streamkm/internal/govern"
	"streamkm/internal/obs"
)

// Seeded chaos for the serving layer: every failure here is either a
// literal disk image of a crash instant (a copied state directory —
// exactly what SIGKILL leaves behind) or a deterministic injected
// fault, so failures replay.

// crashImage copies a server's state directory byte-for-byte into a
// fresh root — the disk as a kill -9 would leave it. Callers must
// quiesce ingestion first (all Ingest calls returned) so the image is
// taken between writes, not mid-write.
func crashImage(t *testing.T, root string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestChaosKillBetweenFsyncs ingests with a coarse fsync cadence,
// snapshots the disk between batches (the kill -9 image), and proves
// every recovery lands at least at the acknowledged durable point
// and answers bit-identically to an uninterrupted run at whatever
// position it recovered.
func TestChaosKillBetweenFsyncs(t *testing.T) {
	root := t.TempDir()
	cfg := testWindowedConfig("k")
	cfg.FsyncEvery = 7
	cfg.CheckpointEvery = 120
	pts := servePoints(400, cfg.Dim, 21)

	a, err := New(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Drain(context.Background())
	mustCreate(t, a, cfg)

	var durable uint64
	batch := 13
	for i := 0; i < len(pts); i += batch {
		end := i + batch
		if end > len(pts) {
			end = len(pts)
		}
		res, err := a.Ingest(context.Background(), "k", pts[i:end])
		if err != nil {
			t.Fatal(err)
		}
		durable = res.Durable
		if end == 91 || end == 247 || end == 400 {
			img := crashImage(t, root)
			b, err := New(Config{Root: img})
			if err != nil {
				t.Fatalf("recovery at cut %d: %v", end, err)
			}
			got, err := b.Clusters(context.Background(), "k")
			if err != nil {
				t.Fatalf("recovered query at cut %d: %v", end, err)
			}
			if got.Consumed < durable {
				t.Fatalf("cut %d: recovered %d points, %d were acknowledged durable", end, got.Consumed, durable)
			}
			if got.Consumed > uint64(end) {
				t.Fatalf("cut %d: recovered %d points, only %d were ever pushed", end, got.Consumed, end)
			}
			assertMatchesReference(t, got, cfg, pts)
			if err := b.Drain(context.Background()); err != nil {
				t.Fatalf("draining recovered server: %v", err)
			}
		}
	}
}

// TestChaosTornWAL corrupts the journal the way real crashes do — a
// truncated tail, then a flipped byte mid-file — and checks recovery
// truncates to the last intact record and stays bit-identical there.
func TestChaosTornWAL(t *testing.T) {
	root := t.TempDir()
	cfg := testWindowedConfig("torn")
	cfg.FsyncEvery = 1
	cfg.CheckpointEvery = 1 << 20 // keep everything in the WAL
	pts := servePoints(100, cfg.Dim, 22)

	a, err := New(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, a, cfg)
	mustIngest(t, a, "torn", pts, 20)
	if err := a.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Drain compacted into a checkpoint; rebuild a WAL-only image by
	// re-ingesting on a fresh root (same seeds, same bytes).
	root = t.TempDir()
	a2, err := New(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, a2, cfg)
	mustIngest(t, a2, "torn", pts, 20)

	rs := walRecordSize(cfg.Dim)

	t.Run("truncated-tail", func(t *testing.T) {
		img := crashImage(t, root)
		p := filepath.Join(img, sessionsDirName, "torn", walFileName)
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(p, fi.Size()-5); err != nil {
			t.Fatal(err)
		}
		b, err := New(Config{Root: img})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Drain(context.Background())
		got, err := b.Clusters(context.Background(), "torn")
		if err != nil {
			t.Fatal(err)
		}
		if got.Consumed != 99 {
			t.Fatalf("torn tail should cost exactly the last record: recovered %d, want 99", got.Consumed)
		}
		assertMatchesReference(t, got, cfg, pts)
	})

	t.Run("flipped-byte", func(t *testing.T) {
		img := crashImage(t, root)
		p := filepath.Join(img, sessionsDirName, "torn", walFileName)
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt record 50 (0-based): everything from it on is gone.
		b[walHeaderSize+50*rs+10] ^= 0xff
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		srv, err := New(Config{Root: img})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Drain(context.Background())
		got, err := srv.Clusters(context.Background(), "torn")
		if err != nil {
			t.Fatal(err)
		}
		if got.Consumed != 50 {
			t.Fatalf("corruption at record 50 should truncate there: recovered %d", got.Consumed)
		}
		assertMatchesReference(t, got, cfg, pts)
	})

	t.Run("seq-gap-quarantines", func(t *testing.T) {
		img := crashImage(t, root)
		p := filepath.Join(img, sessionsDirName, "torn", walFileName)
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		// Rewrite the first record's seq to 3 (a gap above base 0)
		// with a valid checksum: unrecoverable loss, not a torn tail.
		rec := b[walHeaderSize : walHeaderSize+rs]
		binary.BigEndian.PutUint64(rec, 3)
		fixRecordCRC(rec)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		srv, err := New(Config{Root: img})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Drain(context.Background())
		info, err := srv.Info("torn")
		if err != nil {
			t.Fatal(err)
		}
		if info.State != "quarantined" {
			t.Fatalf("a seq gap must quarantine, not silently drop points: %+v", info)
		}
	})

	a2.Drain(context.Background())
}

func fixRecordCRC(rec []byte) {
	binary.BigEndian.PutUint32(rec[len(rec)-4:], crc32.ChecksumIEEE(rec[:len(rec)-4]))
}

// TestChaosDiskFullCheckpoint injects a failure into the first
// checkpoint compaction: the session must keep running on its WAL,
// count the error, succeed at the next cadence boundary, and recover
// bit-identically throughout.
func TestChaosDiskFullCheckpoint(t *testing.T) {
	root := t.TempDir()
	cfg := testWindowedConfig("df")
	cfg.FsyncEvery = 1
	cfg.CheckpointEvery = 20
	pts := servePoints(90, cfg.Dim, 23)

	a, err := New(Config{Root: root, injectCheckpoint: fault.ErrorNth(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Drain(context.Background())
	mustCreate(t, a, cfg)
	mustIngest(t, a, "df", pts, 10)

	if v := a.reg.Counter(obs.ServeCheckpointErrors, "").Value(); v == 0 {
		t.Fatal("injected checkpoint failure was not counted")
	}
	if v := a.reg.Counter(obs.ServeCheckpoints, "").Value(); v == 0 {
		t.Fatal("no compaction ever succeeded after the failure")
	}
	info, err := a.Info("df")
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "active" {
		t.Fatalf("a failed compaction must not kill the session: %+v", info)
	}

	img := crashImage(t, root)
	b, err := New(Config{Root: img})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Drain(context.Background())
	got, err := b.Clusters(context.Background(), "df")
	if err != nil {
		t.Fatal(err)
	}
	if got.Consumed != uint64(len(pts)) {
		t.Fatalf("recovered %d of %d points despite per-point fsync", got.Consumed, len(pts))
	}
	assertMatchesReference(t, got, cfg, pts)
}

// TestChaosQueueFullRefuses wedges the worker briefly so the bounded
// queue fills: the overflow ingest must get an immediate ErrBusy (a
// 503 to HTTP clients), and every accepted batch must still apply.
func TestChaosQueueFullRefuses(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.QueueDepth = 1
		c.injectApply = fault.DelayNth(1, 500*time.Millisecond)
	})
	defer s.Drain(context.Background())
	cfg := testWindowedConfig("qf")
	mustCreate(t, s, cfg)
	pts := servePoints(30, cfg.Dim, 24)
	ctx := context.Background()

	done := make(chan error, 1)
	go func() {
		_, err := s.Ingest(ctx, "qf", pts[:10])
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // the worker is now inside the injected delay

	// Second batch parks in the queue (depth 1)...
	done2 := make(chan error, 1)
	go func() {
		_, err := s.Ingest(ctx, "qf", pts[10:20])
		done2 <- err
	}()
	time.Sleep(50 * time.Millisecond)
	// ...so the third must be refused immediately, not block.
	refusedAt := time.Now()
	_, err := s.Ingest(ctx, "qf", pts[20:30])
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("want ErrBusy, got %v", err)
	}
	if d := time.Since(refusedAt); d > 200*time.Millisecond {
		t.Fatalf("refusal took %v; it must not wait for the wedged worker", d)
	}
	if err := <-done; err != nil {
		t.Fatalf("first batch: %v", err)
	}
	if err := <-done2; err != nil {
		t.Fatalf("queued batch: %v", err)
	}
	info, _ := s.Info("qf")
	if info.Consumed != 20 {
		t.Fatalf("accepted batches must apply: consumed %d, want 20", info.Consumed)
	}
	if s.reg.Counter(obs.ServeRejects, "queue-full").Value() == 0 {
		t.Fatal("queue-full rejection not counted")
	}
}

// TestChaosSlowClientTimeout departs mid-ingest: the client's context
// expires while its batch is queued behind a slow worker. The client
// gets its deadline error; the accepted batch still applies; the
// session stays healthy.
func TestChaosSlowClientTimeout(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.injectApply = fault.DelayNth(1, 300*time.Millisecond)
	})
	defer s.Drain(context.Background())
	cfg := testWindowedConfig("slow")
	mustCreate(t, s, cfg)
	pts := servePoints(20, cfg.Dim, 25)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := s.Ingest(ctx, "slow", pts[:10]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	// The departed client's batch was accepted and must still apply.
	res, err := s.Ingest(context.Background(), "slow", pts[10:])
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 20 {
		t.Fatalf("applied %d, want 20 (the timed-out batch counts)", res.Applied)
	}
}

// TestChaosConcurrentEviction races ingestion against eviction and
// re-creation under -race: no panics, no deadlocks, and exactly one
// eviction wins per round.
func TestChaosConcurrentEviction(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Budget = govern.Budget{ProgressTimeout: 5 * time.Second}
	})
	defer s.Drain(context.Background())
	cfg := testWindowedConfig("ce")
	pts := servePoints(40, cfg.Dim, 26)
	ctx := context.Background()

	tolerated := func(err error) bool {
		return err == nil || errors.Is(err, ErrNotFound) || errors.Is(err, ErrClosed) ||
			errors.Is(err, ErrBusy) || errors.Is(err, ErrQuarantined)
	}
	for round := 0; round < 8; round++ {
		mustCreate(t, s, cfg)
		var wg sync.WaitGroup
		evictWins := make(chan struct{}, 4)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					if _, err := s.Ingest(ctx, "ce", pts[:8]); !tolerated(err) {
						panic(fmt.Sprintf("ingest: unexpected %v", err))
					}
				}
			}(g)
		}
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.Evict(ctx, "ce"); err == nil {
					evictWins <- struct{}{}
				} else if !errors.Is(err, ErrNotFound) {
					panic(fmt.Sprintf("evict: unexpected %v", err))
				}
			}()
		}
		wg.Wait()
		if len(evictWins) != 1 {
			t.Fatalf("round %d: %d evictions succeeded, want exactly 1", round, len(evictWins))
		}
		if _, err := s.Info("ce"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("round %d: session survived eviction: %v", round, err)
		}
	}
}

// TestChaosRestartLoop crashes and recovers the same state directory
// repeatedly, ingesting between crashes: positions never move
// backwards past a durability acknowledgment and the final answer is
// bit-identical to one uninterrupted run over the recovered prefix.
func TestChaosRestartLoop(t *testing.T) {
	root := t.TempDir()
	cfg := testWindowedConfig("loop")
	cfg.FsyncEvery = 5
	cfg.CheckpointEvery = 64
	pts := servePoints(600, cfg.Dim, 27)

	srv, err := New(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, srv, cfg)
	fed := 0
	var consumed uint64
	for round := 0; round < 5; round++ {
		// Feed from wherever the recovered session actually is — a
		// crash may have rolled back past `fed`.
		info, err := srv.Info("loop")
		if err != nil {
			t.Fatal(err)
		}
		start := int(info.Consumed)
		end := start + 100
		mustIngest(t, srv, "loop", pts[start:end], 11)
		fed = end
		// Crash: image the disk, abandon the live server object.
		img := crashImage(t, root)
		srv.Drain(context.Background()) // release goroutines; state dir no longer used
		root = img
		srv, err = New(Config{Root: root})
		if err != nil {
			t.Fatalf("round %d recovery: %v", round, err)
		}
		got, err := srv.Clusters(context.Background(), "loop")
		if err != nil {
			t.Fatal(err)
		}
		if got.Consumed > uint64(fed) {
			t.Fatalf("round %d: consumed %d > fed %d", round, got.Consumed, fed)
		}
		if got.Consumed < consumed {
			t.Fatalf("round %d: durable position went backwards: %d < %d", round, got.Consumed, consumed)
		}
		consumed = got.Consumed
		assertMatchesReference(t, got, cfg, pts)
	}
	srv.Drain(context.Background())
}

// clustersJSONEqual asserts two marshaled answers are byte-identical.
func clustersJSONEqual(t *testing.T, a, b *ClustersResult) {
	t.Helper()
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	if !bytes.Equal(ab, bb) {
		t.Fatalf("answers differ:\n %s\n %s", ab, bb)
	}
}
