package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"streamkm"
	"streamkm/internal/govern"
	"streamkm/internal/rng"
)

// servePoints generates a deterministic clustered stream.
func servePoints(n, dim int, seed uint64) [][]float64 {
	r := rng.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		center := float64(r.Intn(4)) * 10
		for d := range p {
			p[d] = center + r.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{Root: t.TempDir(), FsyncEvery: 1, CheckpointEvery: 1 << 20}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testWindowedConfig(id string) SessionConfig {
	return SessionConfig{
		ID: id, Kind: KindWindowed, Dim: 3, K: 4,
		ChunkPoints: 40, WindowChunks: 3, Restarts: 2, Seed: 11,
		MergeSolver: "minibatch",
	}
}

func mustCreate(t *testing.T, s *Server, cfg SessionConfig) string {
	t.Helper()
	info, err := s.CreateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return info.ID
}

func mustIngest(t *testing.T, s *Server, id string, pts [][]float64, batch int) IngestResult {
	t.Helper()
	var last IngestResult
	for i := 0; i < len(pts); i += batch {
		end := i + batch
		if end > len(pts) {
			end = len(pts)
		}
		res, err := s.Ingest(context.Background(), id, pts[i:end])
		if err != nil {
			t.Fatalf("ingest [%d:%d): %v", i, end, err)
		}
		last = res
	}
	return last
}

// clustersJSON renders a deterministic answer for bitwise comparison.
func clustersJSON(t *testing.T, res *ClustersResult) []byte {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// referenceClusters computes the expected answer by feeding the same
// prefix through a fresh in-process clusterer.
func referenceClusters(t *testing.T, cfg SessionConfig, pts [][]float64) *streamkm.Result {
	t.Helper()
	w, err := streamkm.NewWindowedClusterer(cfg.Dim, cfg.windowedOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := w.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertMatchesReference(t *testing.T, got *ClustersResult, cfg SessionConfig, pts [][]float64) {
	t.Helper()
	want := referenceClusters(t, cfg, pts[:got.Consumed])
	if got.MergeMSE != want.MergeMSE {
		t.Fatalf("MergeMSE %v, reference %v", got.MergeMSE, want.MergeMSE)
	}
	gotB, _ := json.Marshal(got.Centroids)
	wantB, _ := json.Marshal(want.Centroids)
	if !bytes.Equal(gotB, wantB) {
		t.Fatalf("centroids diverge from reference:\n got %s\nwant %s", gotB, wantB)
	}
	gw, _ := json.Marshal(got.Weights)
	ww, _ := json.Marshal(want.Weights)
	if !bytes.Equal(gw, ww) {
		t.Fatalf("weights diverge from reference:\n got %s\nwant %s", gw, ww)
	}
}

// TestRecoveryBitIdentical is the tentpole contract: drain a server,
// reopen the same state directory, and the recovered session answers
// byte-identically to both its pre-drain self and a never-interrupted
// reference clusterer.
func TestRecoveryBitIdentical(t *testing.T) {
	root := t.TempDir()
	cfg := testWindowedConfig("w1")
	pts := servePoints(500, cfg.Dim, 7)

	a, err := New(Config{Root: root, FsyncEvery: 1, CheckpointEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, a, cfg)
	mustIngest(t, a, "w1", pts, 33)
	before, err := a.Clusters(context.Background(), "w1")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	b, err := New(Config{Root: root, FsyncEvery: 1, CheckpointEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Drain(context.Background())
	after, err := b.Clusters(context.Background(), "w1")
	if err != nil {
		t.Fatal(err)
	}
	if after.Consumed != uint64(len(pts)) {
		t.Fatalf("recovered %d points, ingested %d", after.Consumed, len(pts))
	}
	if got, want := clustersJSON(t, after), clustersJSON(t, before); !bytes.Equal(got, want) {
		t.Fatalf("recovered answer differs:\n got %s\nwant %s", got, want)
	}
	assertMatchesReference(t, after, cfg, pts)

	// The recovered session keeps streaming: push more and stay
	// bit-identical to an uninterrupted run at the same position.
	more := servePoints(200, cfg.Dim, 8)
	mustIngest(t, b, "w1", more, 25)
	res, err := b.Clusters(context.Background(), "w1")
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, res, cfg, append(append([][]float64{}, pts...), more...))
}

func TestStreamSessionFinish(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Drain(context.Background())
	cfg := SessionConfig{
		ID: "st1", Kind: KindStream, Dim: 2, K: 3,
		ChunkPoints: 30, Restarts: 1, Seed: 5,
	}
	pts := servePoints(200, cfg.Dim, 9)
	mustCreate(t, s, cfg)
	mustIngest(t, s, "st1", pts, 17)

	res, err := s.Finish(context.Background(), "st1")
	if err != nil {
		t.Fatal(err)
	}

	sc, err := streamkm.NewStreamClusterer(cfg.Dim, cfg.streamOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := sc.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	want, err := sc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	gotB, _ := json.Marshal(res.Centroids)
	wantB, _ := json.Marshal(want.Centroids)
	if !bytes.Equal(gotB, wantB) {
		t.Fatalf("finish centroids diverge:\n got %s\nwant %s", gotB, wantB)
	}
	if _, err := s.Info("st1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("finished session should be gone, got %v", err)
	}
}

func TestStreamSessionRecovery(t *testing.T) {
	root := t.TempDir()
	cfg := SessionConfig{
		ID: "st2", Kind: KindStream, Dim: 2, K: 3,
		ChunkPoints: 25, Restarts: 1, Seed: 6, CheckpointEvery: 60,
	}
	pts := servePoints(180, cfg.Dim, 10)

	a, err := New(Config{Root: root, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, a, cfg)
	mustIngest(t, a, "st2", pts, 20)
	if err := a.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	b, err := New(Config{Root: root, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Drain(context.Background())
	res, err := b.Finish(context.Background(), "st2")
	if err != nil {
		t.Fatal(err)
	}

	sc, _ := streamkm.NewStreamClusterer(cfg.Dim, cfg.streamOptions())
	for _, p := range pts {
		sc.Push(p)
	}
	want, err := sc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	gotB, _ := json.Marshal(res.Centroids)
	wantB, _ := json.Marshal(want.Centroids)
	if !bytes.Equal(gotB, wantB) {
		t.Fatalf("recovered stream finish diverges:\n got %s\nwant %s", gotB, wantB)
	}
}

func TestAdmissionMemoryBudget(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Budget = govern.Budget{MemoryBytes: 8 << 10}
	})
	defer s.Drain(context.Background())
	small := testWindowedConfig("fits")
	small.ChunkPoints = 40
	mustCreate(t, s, small)

	big := testWindowedConfig("too-big")
	big.ChunkPoints = 100_000
	if _, err := s.CreateSession(big); !errors.Is(err, ErrMemory) {
		t.Fatalf("want ErrMemory, got %v", err)
	}
	if s.reg.Counter("serve_rejects", "memory").Value() == 0 {
		t.Fatal("memory rejection not counted")
	}
}

func TestAdmissionSessionLimit(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxSessions = 1 })
	defer s.Drain(context.Background())
	mustCreate(t, s, testWindowedConfig("one"))
	if _, err := s.CreateSession(testWindowedConfig("two")); !errors.Is(err, ErrTooMany) {
		t.Fatalf("want ErrTooMany, got %v", err)
	}
}

func TestIngestValidation(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBatchPoints = 8 })
	defer s.Drain(context.Background())
	cfg := testWindowedConfig("v")
	mustCreate(t, s, cfg)
	ctx := context.Background()

	if _, err := s.Ingest(ctx, "v", [][]float64{{1, 2}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("wrong dim: want ErrBadRequest, got %v", err)
	}
	nan := []float64{1, 2, math.NaN()}
	if _, err := s.Ingest(ctx, "v", [][]float64{nan}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("NaN: want ErrBadRequest, got %v", err)
	}
	if _, err := s.Ingest(ctx, "v", servePoints(9, 3, 1)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized batch: want ErrBadRequest, got %v", err)
	}
	if _, err := s.Ingest(ctx, "missing", servePoints(1, 3, 1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	s := newTestServer(t, nil)
	cfg := testWindowedConfig("d")
	pts := servePoints(50, cfg.Dim, 3)
	mustCreate(t, s, cfg)
	mustIngest(t, s, "d", pts, 10)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateSession(testWindowedConfig("late")); !errors.Is(err, ErrDraining) {
		t.Fatalf("create after drain: want ErrDraining, got %v", err)
	}
	if _, err := s.Ingest(context.Background(), "d", pts[:1]); !errors.Is(err, ErrDraining) {
		t.Fatalf("ingest after drain: want ErrDraining, got %v", err)
	}
}

// TestHTTPLifecycle drives the full API over real HTTP: create,
// ingest, query, list, info, metrics, health, evict — plus the 503 +
// Retry-After shape on refused admissions.
func TestHTTPLifecycle(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxSessions = 1 })
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path string, body any) (*http.Response, []byte) {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, out
	}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, out
	}

	if resp, body := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d: %s", resp.StatusCode, body)
	} else {
		var h map[string]any
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"version", "revision", "go"} {
			if h[key] == nil || h[key] == "" {
				t.Fatalf("healthz missing %q: %s", key, body)
			}
		}
	}
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d", resp.StatusCode)
	}

	cfg := testWindowedConfig("h1")
	if resp, body := post("/v1/sessions", cfg); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %d: %s", resp.StatusCode, body)
	}
	// The session limit is 1: the next create must be a 503 with a
	// Retry-After hint, the "never OOM, always retryable" contract.
	if resp, body := post("/v1/sessions", testWindowedConfig("h2")); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-limit create: want 503, got %d: %s", resp.StatusCode, body)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	pts := servePoints(130, cfg.Dim, 4)
	for i := 0; i < len(pts); i += 26 {
		resp, body := post("/v1/sessions/h1/points", map[string]any{"points": pts[i : i+26]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: %s", resp.StatusCode, body)
		}
	}
	resp, body := get("/v1/sessions/h1/clusters")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clusters %d: %s", resp.StatusCode, body)
	}
	var res ClustersResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Consumed != uint64(len(pts)) || len(res.Centroids) != cfg.K {
		t.Fatalf("clusters answer off: consumed %d, %d centroids", res.Consumed, len(res.Centroids))
	}
	assertMatchesReference(t, &res, cfg, pts)

	if resp, body := get("/v1/sessions"); resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"h1"`)) {
		t.Fatalf("list %d: %s", resp.StatusCode, body)
	}
	if resp, body := get("/v1/sessions/h1"); resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"active"`)) {
		t.Fatalf("info %d: %s", resp.StatusCode, body)
	}
	if resp, body := get("/v1/sessions/h1/report"); resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("snapshot_queries")) {
		t.Fatalf("report %d: %s", resp.StatusCode, body)
	}
	if resp, body := get("/metrics"); resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("serve_ingest_points")) {
		t.Fatalf("metrics %d: %s", resp.StatusCode, body)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/h1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("evict %d", dresp.StatusCode)
	}
	if resp, _ := get("/v1/sessions/h1"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session: want 404, got %d", resp.StatusCode)
	}
}

func TestSessionDeadlineQuarantines(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Drain(context.Background())
	cfg := testWindowedConfig("dl")
	cfg.DeadlineSeconds = 0.05
	mustCreate(t, s, cfg)
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := s.Info("dl")
		if err != nil {
			t.Fatal(err)
		}
		if info.State == "quarantined" {
			if info.Reason == "" {
				t.Fatal("quarantined without a reason")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never expired: %+v", info)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := s.Ingest(context.Background(), "dl", servePoints(1, cfg.Dim, 1)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("ingest into expired session: want ErrQuarantined, got %v", err)
	}
	if err := s.Evict(context.Background(), "dl"); err != nil {
		t.Fatalf("evicting quarantined session: %v", err)
	}
}

func TestRecoveredHuskIsVisibleAndDeletable(t *testing.T) {
	root := t.TempDir()
	a, err := New(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, a, testWindowedConfig("husk"))
	if err := a.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Corrupt the meta so recovery cannot rebuild the session.
	if err := writeTestFile(root+"/sessions/husk/meta.json", []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Drain(context.Background())
	info, err := b.Info("husk")
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "quarantined" || info.Reason == "" {
		t.Fatalf("husk should be quarantined with a reason, got %+v", info)
	}
	if _, err := b.Clusters(context.Background(), "husk"); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("querying husk: want ErrQuarantined, got %v", err)
	}
	if err := b.Evict(context.Background(), "husk"); err != nil {
		t.Fatalf("evicting husk: %v", err)
	}
}

func writeTestFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
