// Package histogram implements the compression application that
// motivates the paper (§1): each grid cell is compressed into a
// multivariate histogram with non-equi-depth buckets whose "shapes,
// sizes, and number ... adapt to the shape and complexity of the actual
// data". Buckets are derived from a clustering: one bucket per centroid,
// bounded by the extent of the points (or weighted centroids) assigned
// to it, carrying the assigned mass as its count.
package histogram

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// Bucket is one non-equi-depth histogram bucket: an axis-aligned box
// with a representative centroid and the data mass it holds.
type Bucket struct {
	Centroid vector.Vector
	Min      vector.Vector
	Max      vector.Vector
	Count    float64
}

// Contains reports whether p falls inside the (closed) bucket box.
func (b Bucket) Contains(p vector.Vector) bool {
	for d := range p {
		if p[d] < b.Min[d] || p[d] > b.Max[d] {
			return false
		}
	}
	return true
}

// Volume returns the box volume (degenerate dimensions count as width 0).
func (b Bucket) Volume() float64 {
	v := 1.0
	for d := range b.Min {
		v *= b.Max[d] - b.Min[d]
	}
	return v
}

// Histogram is a multivariate non-equi-depth histogram for one grid cell.
type Histogram struct {
	dim     int
	buckets []Bucket
	total   float64
}

// Dim returns the attribute dimensionality.
func (h *Histogram) Dim() int { return h.dim }

// Buckets returns the bucket list (not a copy).
func (h *Histogram) Buckets() []Bucket { return h.buckets }

// Total returns the total data mass.
func (h *Histogram) Total() float64 { return h.total }

// Build assigns every point of the cell to its nearest centroid and
// produces one bucket per non-empty centroid, bounded by the assigned
// points' extent.
func Build(points *dataset.Set, centroids []vector.Vector) (*Histogram, error) {
	if len(centroids) == 0 {
		return nil, errors.New("histogram: no centroids")
	}
	if points.Len() == 0 {
		return nil, errors.New("histogram: empty cell")
	}
	dim := points.Dim()
	for i, c := range centroids {
		if len(c) != dim {
			return nil, fmt.Errorf("histogram: centroid %d has dim %d, want %d", i, len(c), dim)
		}
	}
	boxes := make([]*vector.BoundingBox, len(centroids))
	counts := make([]float64, len(centroids))
	for i := range boxes {
		boxes[i] = vector.NewBoundingBox(dim)
	}
	for _, p := range points.Points() {
		j, _ := vector.NearestIndex(p, centroids)
		if err := boxes[j].Observe(p); err != nil {
			return nil, err
		}
		counts[j]++
	}
	return assemble(dim, centroids, boxes, counts)
}

// BuildWeighted builds buckets from weighted representatives (e.g. the
// partial stage's weighted centroids), the streaming path where the raw
// points are no longer available.
func BuildWeighted(points *dataset.WeightedSet, centroids []vector.Vector) (*Histogram, error) {
	if len(centroids) == 0 {
		return nil, errors.New("histogram: no centroids")
	}
	if points.Len() == 0 {
		return nil, errors.New("histogram: empty weighted set")
	}
	dim := points.Dim()
	for i, c := range centroids {
		if len(c) != dim {
			return nil, fmt.Errorf("histogram: centroid %d has dim %d, want %d", i, len(c), dim)
		}
	}
	boxes := make([]*vector.BoundingBox, len(centroids))
	counts := make([]float64, len(centroids))
	for i := range boxes {
		boxes[i] = vector.NewBoundingBox(dim)
	}
	for _, wp := range points.Points() {
		j, _ := vector.NearestIndex(wp.Vec, centroids)
		if err := boxes[j].Observe(wp.Vec); err != nil {
			return nil, err
		}
		counts[j] += wp.Weight
	}
	return assemble(dim, centroids, boxes, counts)
}

func assemble(dim int, centroids []vector.Vector, boxes []*vector.BoundingBox, counts []float64) (*Histogram, error) {
	h := &Histogram{dim: dim}
	for j, c := range centroids {
		if counts[j] == 0 {
			continue
		}
		min, err := boxes[j].Min()
		if err != nil {
			return nil, err
		}
		max, err := boxes[j].Max()
		if err != nil {
			return nil, err
		}
		h.buckets = append(h.buckets, Bucket{
			Centroid: c.Clone(),
			Min:      min,
			Max:      max,
			Count:    counts[j],
		})
		h.total += counts[j]
	}
	if len(h.buckets) == 0 {
		return nil, errors.New("histogram: all buckets empty")
	}
	return h, nil
}

// EstimateRange estimates the data mass inside the query box [lo, hi]
// under the uniform-within-bucket assumption standard for histogram
// selectivity estimation.
func (h *Histogram) EstimateRange(lo, hi vector.Vector) (float64, error) {
	if len(lo) != h.dim || len(hi) != h.dim {
		return 0, vector.ErrDimensionMismatch
	}
	for d := 0; d < h.dim; d++ {
		if lo[d] > hi[d] {
			return 0, fmt.Errorf("histogram: query lo > hi in dim %d", d)
		}
	}
	var est float64
	for _, b := range h.buckets {
		frac := 1.0
		for d := 0; d < h.dim; d++ {
			w := b.Max[d] - b.Min[d]
			if w == 0 {
				// Degenerate dimension: inside iff the plane intersects.
				if b.Min[d] < lo[d] || b.Min[d] > hi[d] {
					frac = 0
					break
				}
				continue
			}
			overlap := math.Min(b.Max[d], hi[d]) - math.Max(b.Min[d], lo[d])
			if overlap <= 0 {
				frac = 0
				break
			}
			frac *= overlap / w
		}
		est += frac * b.Count
	}
	return est, nil
}

// Mean returns the count-weighted mean of the bucket centroids — the
// cell-level aggregate a climate researcher would read off the
// compressed representation.
func (h *Histogram) Mean() vector.Vector {
	m := vector.New(h.dim)
	for _, b := range h.buckets {
		m.AddScaled(b.Count, b.Centroid)
	}
	m.Scale(1 / h.total)
	return m
}

// Sample reconstructs n synthetic points from the histogram: buckets are
// chosen proportional to count, points uniform within the bucket box.
func (h *Histogram) Sample(r *rng.RNG, n int) (*dataset.Set, error) {
	if n < 0 {
		return nil, fmt.Errorf("histogram: negative sample count %d", n)
	}
	out, err := dataset.NewSet(h.dim)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		target := r.Float64() * h.total
		var acc float64
		chosen := h.buckets[len(h.buckets)-1]
		for _, b := range h.buckets {
			acc += b.Count
			if target < acc {
				chosen = b
				break
			}
		}
		p := vector.New(h.dim)
		for d := 0; d < h.dim; d++ {
			p[d] = chosen.Min[d] + r.Float64()*(chosen.Max[d]-chosen.Min[d])
		}
		if err := out.Add(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CompressedBytes is the storage footprint of the histogram: per bucket,
// centroid + min + max (3*dim float64) and a count.
func (h *Histogram) CompressedBytes() int {
	return len(h.buckets) * (3*h.dim + 1) * 8
}

// CompressionRatio relates the raw cell size (n points of h.Dim()
// float64 attributes) to the histogram footprint.
func (h *Histogram) CompressionRatio(n int) float64 {
	raw := float64(n * h.dim * 8)
	return raw / float64(h.CompressedBytes())
}

// Binary encoding: "SKMH", version u16, dim u16, bucket count u32, then
// per bucket centroid/min/max/count as float64s.
const histMagic = "SKMH"

// ErrBadHistogram is wrapped by decoding errors.
var ErrBadHistogram = errors.New("histogram: malformed encoding")

// Encode writes the histogram to w.
func (h *Histogram) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(histMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(1)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(h.dim)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(h.buckets))); err != nil {
		return err
	}
	for _, b := range h.buckets {
		for _, vec := range []vector.Vector{b.Centroid, b.Min, b.Max} {
			for _, x := range vec {
				if err := binary.Write(bw, binary.LittleEndian, x); err != nil {
					return err
				}
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, b.Count); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a histogram from r.
func Decode(r io.Reader) (*Histogram, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHistogram, err)
	}
	if string(magic) != histMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadHistogram, magic)
	}
	var version, dim uint16
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHistogram, err)
	}
	if version != 1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadHistogram, version)
	}
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHistogram, err)
	}
	if dim == 0 {
		return nil, fmt.Errorf("%w: zero dimension", ErrBadHistogram)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHistogram, err)
	}
	if count == 0 {
		return nil, fmt.Errorf("%w: zero buckets", ErrBadHistogram)
	}
	h := &Histogram{dim: int(dim)}
	readVec := func() (vector.Vector, error) {
		v := vector.New(int(dim))
		for d := range v {
			if err := binary.Read(br, binary.LittleEndian, &v[d]); err != nil {
				return nil, fmt.Errorf("%w: truncated: %v", ErrBadHistogram, err)
			}
		}
		return v, nil
	}
	for i := uint32(0); i < count; i++ {
		var b Bucket
		var err error
		if b.Centroid, err = readVec(); err != nil {
			return nil, err
		}
		if b.Min, err = readVec(); err != nil {
			return nil, err
		}
		if b.Max, err = readVec(); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &b.Count); err != nil {
			return nil, fmt.Errorf("%w: truncated count: %v", ErrBadHistogram, err)
		}
		if b.Count < 0 {
			return nil, fmt.Errorf("%w: negative count", ErrBadHistogram)
		}
		h.buckets = append(h.buckets, b)
		h.total += b.Count
	}
	return h, nil
}
