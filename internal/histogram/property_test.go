package histogram

import (
	"testing"
	"testing/quick"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// Property: EstimateRange is monotone in the query box — enlarging the
// box never decreases the estimate — and bounded by the total mass.
func TestEstimateRangeMonotoneProperty(t *testing.T) {
	h, err := Build(gridCell(t), twoCentroids())
	if err != nil {
		t.Fatal(err)
	}
	f := func(loRaw, hiRaw [2]int8, growRaw uint8) bool {
		lo := vector.Of(float64(loRaw[0])/8, float64(loRaw[1])/8)
		hi := lo.Clone()
		for d := range hi {
			span := float64(hiRaw[d])/8 + 16
			if span < 0 {
				span = 0
			}
			hi[d] += span
		}
		small, err := h.EstimateRange(lo, hi)
		if err != nil {
			return false
		}
		grow := float64(growRaw) / 8
		lo2 := lo.Clone()
		hi2 := hi.Clone()
		for d := range lo2 {
			lo2[d] -= grow
			hi2[d] += grow
		}
		large, err := h.EstimateRange(lo2, hi2)
		if err != nil {
			return false
		}
		return small >= 0 && large >= small-1e-9 && large <= h.Total()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: histograms built from a clustering always conserve mass and
// contain every input point within some bucket's box.
func TestBuildMassAndContainmentProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 1)
		s := dataset.MustNewSet(2)
		n := 50 + int(seed%100)
		for i := 0; i < n; i++ {
			if s.Add(vector.Of(r.NormFloat64()*10, r.NormFloat64()*10)) != nil {
				return false
			}
		}
		cs := []vector.Vector{vector.Of(-5, 0), vector.Of(5, 0), vector.Of(0, 8)}
		h, err := Build(s, cs)
		if err != nil {
			return false
		}
		if h.Total() != float64(n) {
			return false
		}
		for _, p := range s.Points() {
			inSome := false
			for _, b := range h.Buckets() {
				if b.Contains(p) {
					inSome = true
					break
				}
			}
			if !inSome {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: MarginalCDF is within [0,1] and monotone along any scan.
func TestMarginalCDFBoundsProperty(t *testing.T) {
	h, err := Build(gridCell(t), twoCentroids())
	if err != nil {
		t.Fatal(err)
	}
	f := func(xRaw int16, dRaw uint8) bool {
		d := int(dRaw) % h.Dim()
		x := float64(xRaw) / 100
		v, err := h.MarginalCDF(d, x)
		if err != nil {
			return false
		}
		v2, err := h.MarginalCDF(d, x+1)
		if err != nil {
			return false
		}
		return v >= -1e-12 && v <= 1+1e-12 && v2 >= v-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
