package histogram

import (
	"math"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

func TestMarginal(t *testing.T) {
	h, err := Build(gridCell(t), twoCentroids())
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.Marginal(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("marginal has %d intervals", len(m))
	}
	// Sorted by Lo: low cluster then high cluster.
	if m[0].Lo >= m[1].Lo {
		t.Fatalf("marginal not sorted: %+v", m)
	}
	if m[0].Count+m[1].Count != 400 {
		t.Fatalf("marginal mass = %g", m[0].Count+m[1].Count)
	}
	if _, err := h.Marginal(2); err == nil {
		t.Fatal("out-of-range dim should error")
	}
	if _, err := h.Marginal(-1); err == nil {
		t.Fatal("negative dim should error")
	}
}

func TestMarginalCDF(t *testing.T) {
	h, err := Build(gridCell(t), twoCentroids())
	if err != nil {
		t.Fatal(err)
	}
	// Far left: 0. Between clusters: 0.25 (100 of 400). Far right: 1.
	at := func(x float64) float64 {
		v, err := h.MarginalCDF(0, x)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := at(-100); got != 0 {
		t.Fatalf("CDF(-100) = %g", got)
	}
	if got := at(5); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("CDF(5) = %g, want 0.25", got)
	}
	if got := at(100); math.Abs(got-1) > 1e-9 {
		t.Fatalf("CDF(100) = %g, want 1", got)
	}
	// Monotone non-decreasing on a sample of points.
	prev := -1.0
	for x := -2.0; x < 13; x += 0.5 {
		v := at(x)
		if v < prev-1e-12 {
			t.Fatalf("CDF not monotone at %g: %g < %g", x, v, prev)
		}
		prev = v
	}
	if _, err := h.MarginalCDF(7, 0); err == nil {
		t.Fatal("bad dim should error")
	}
}

func TestKSDistanceSmallForFaithfulHistogram(t *testing.T) {
	cell := gridCell(t)
	h, err := Build(cell, twoCentroids())
	if err != nil {
		t.Fatal(err)
	}
	ks, err := KSDistance(cell, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform-box buckets over near-uniform clusters: KS should be
	// small but not zero.
	if ks > 0.1 {
		t.Fatalf("KS = %g for a faithful histogram", ks)
	}
	if ks <= 0 {
		t.Fatalf("KS = %g, expected a positive statistic", ks)
	}
}

func TestKSDistanceLargeForWrongHistogram(t *testing.T) {
	cell := gridCell(t)
	// A histogram of completely different data.
	other := dataset.MustNewSet(2)
	r := rng.New(7)
	for i := 0; i < 200; i++ {
		if err := other.Add(vector.Of(100+r.Float64(), 100+r.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	h, err := Build(other, []vector.Vector{vector.Of(100.5, 100.5)})
	if err != nil {
		t.Fatal(err)
	}
	ks, err := KSDistance(cell, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ks < 0.9 {
		t.Fatalf("KS = %g for a disjoint histogram, want ~1", ks)
	}
}

func TestKSDistanceErrors(t *testing.T) {
	cell := gridCell(t)
	h, err := Build(cell, twoCentroids())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := KSDistance(dataset.MustNewSet(2), h, 0); err == nil {
		t.Fatal("empty points should error")
	}
	if _, err := KSDistance(dataset.MustNewSet(3), h, 0); err == nil {
		t.Fatal("dim mismatch should error")
	}
	if _, err := KSDistance(cell, h, 5); err == nil {
		t.Fatal("bad dim should error")
	}
}
