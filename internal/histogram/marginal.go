package histogram

import (
	"fmt"
	"math"
	"sort"

	"streamkm/internal/dataset"
)

// MarginalBucket is one interval of a 1-D marginal distribution.
type MarginalBucket struct {
	Lo, Hi float64
	Count  float64
}

// Marginal projects the multivariate histogram onto dimension d: each
// bucket contributes its full mass over its [Min[d], Max[d]] interval.
// Intervals may overlap (buckets are independent boxes); the result is
// sorted by Lo. Climate users read per-attribute distributions this way
// without decompressing.
func (h *Histogram) Marginal(d int) ([]MarginalBucket, error) {
	if d < 0 || d >= h.dim {
		return nil, fmt.Errorf("histogram: dimension %d out of range [0, %d)", d, h.dim)
	}
	out := make([]MarginalBucket, 0, len(h.buckets))
	for _, b := range h.buckets {
		out = append(out, MarginalBucket{Lo: b.Min[d], Hi: b.Max[d], Count: b.Count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lo != out[j].Lo {
			return out[i].Lo < out[j].Lo
		}
		return out[i].Hi < out[j].Hi
	})
	return out, nil
}

// MarginalCDF evaluates the marginal cumulative distribution at x,
// assuming uniform mass within each bucket interval. The result is the
// estimated fraction of the cell's points with attribute d <= x.
func (h *Histogram) MarginalCDF(d int, x float64) (float64, error) {
	if d < 0 || d >= h.dim {
		return 0, fmt.Errorf("histogram: dimension %d out of range [0, %d)", d, h.dim)
	}
	var mass float64
	for _, b := range h.buckets {
		lo, hi := b.Min[d], b.Max[d]
		switch {
		case x >= hi:
			mass += b.Count
		case x <= lo:
			// nothing
		default:
			width := hi - lo
			if width == 0 {
				mass += b.Count
			} else {
				mass += b.Count * (x - lo) / width
			}
		}
	}
	return mass / h.total, nil
}

// KSDistance returns the Kolmogorov-Smirnov statistic between the
// empirical marginal of points along dimension d and the histogram's
// marginal CDF — the reconstruction-quality measure used to judge how
// faithfully the compressed form preserves a per-attribute distribution
// (0 = perfect, 1 = disjoint).
func KSDistance(points *dataset.Set, h *Histogram, d int) (float64, error) {
	if points.Len() == 0 {
		return 0, fmt.Errorf("histogram: empty point set")
	}
	if points.Dim() != h.dim {
		return 0, fmt.Errorf("histogram: point dim %d != histogram dim %d", points.Dim(), h.dim)
	}
	if d < 0 || d >= h.dim {
		return 0, fmt.Errorf("histogram: dimension %d out of range [0, %d)", d, h.dim)
	}
	xs := make([]float64, points.Len())
	for i, p := range points.Points() {
		xs[i] = p[d]
	}
	sort.Float64s(xs)
	n := float64(len(xs))
	var worst float64
	for i, x := range xs {
		model, err := h.MarginalCDF(d, x)
		if err != nil {
			return 0, err
		}
		// Compare against the empirical CDF just before and at x.
		empLo := float64(i) / n
		empHi := float64(i+1) / n
		if diff := math.Abs(model - empLo); diff > worst {
			worst = diff
		}
		if diff := math.Abs(model - empHi); diff > worst {
			worst = diff
		}
	}
	return worst, nil
}
