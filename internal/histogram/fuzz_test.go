package histogram

import (
	"bytes"
	"math"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/vector"
)

// FuzzDecode feeds arbitrary bytes to the histogram decoder: reject or
// decode, never panic; accepted histograms must round-trip.
func FuzzDecode(f *testing.F) {
	s := dataset.MustNewSet(2)
	for i := 0; i < 6; i++ {
		if err := s.Add(vector.Of(float64(i), float64(-i))); err != nil {
			f.Fatal(err)
		}
	}
	h, err := Build(s, []vector.Vector{vector.Of(1, -1), vector.Of(4, -4)})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:8])
	f.Add([]byte("SKMH"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted histograms must have coherent internals and
		// round-trip through Encode/Decode.
		if got.Dim() <= 0 || len(got.Buckets()) == 0 {
			t.Fatal("decoder accepted an incoherent histogram")
		}
		var total float64
		for _, b := range got.Buckets() {
			if b.Count < 0 || math.IsNaN(b.Count) {
				t.Fatal("decoder accepted a bad count")
			}
			total += b.Count
		}
		if !math.IsNaN(total) && math.Abs(total-got.Total()) > 1e-9*(1+math.Abs(total)) {
			t.Fatalf("total %g != sum of counts %g", got.Total(), total)
		}
		var out bytes.Buffer
		if err := got.Encode(&out); err != nil {
			t.Fatalf("accepted histogram failed to re-encode: %v", err)
		}
		if _, err := Decode(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-encoded histogram failed to decode: %v", err)
		}
	})
}
