package histogram

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// gridCell builds a 2-D cell with two tight square clusters of known
// extent: 100 points in [0,1]^2 and 300 points in [10,11]^2.
func gridCell(t *testing.T) *dataset.Set {
	t.Helper()
	r := rng.New(5)
	s := dataset.MustNewSet(2)
	for i := 0; i < 100; i++ {
		if err := s.Add(vector.Of(r.Float64(), r.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		if err := s.Add(vector.Of(10+r.Float64(), 10+r.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func twoCentroids() []vector.Vector {
	return []vector.Vector{vector.Of(0.5, 0.5), vector.Of(10.5, 10.5)}
}

func TestBuildBasics(t *testing.T) {
	h, err := Build(gridCell(t), twoCentroids())
	if err != nil {
		t.Fatal(err)
	}
	if h.Dim() != 2 || len(h.Buckets()) != 2 {
		t.Fatalf("dim=%d buckets=%d", h.Dim(), len(h.Buckets()))
	}
	if h.Total() != 400 {
		t.Fatalf("total = %g", h.Total())
	}
	// counts are non-equi-depth: 100 and 300
	c0, c1 := h.Buckets()[0].Count, h.Buckets()[1].Count
	if !(c0 == 100 && c1 == 300) && !(c0 == 300 && c1 == 100) {
		t.Fatalf("bucket counts = %g, %g", c0, c1)
	}
	for _, b := range h.Buckets() {
		if b.Volume() <= 0 || b.Volume() > 1.1 {
			t.Fatalf("bucket volume %g outside (0, 1.1]", b.Volume())
		}
		if !b.Contains(b.Centroid) {
			t.Fatal("bucket does not contain its centroid")
		}
	}
}

func TestBuildValidation(t *testing.T) {
	cell := gridCell(t)
	if _, err := Build(cell, nil); err == nil {
		t.Fatal("no centroids should error")
	}
	if _, err := Build(dataset.MustNewSet(2), twoCentroids()); err == nil {
		t.Fatal("empty cell should error")
	}
	if _, err := Build(cell, []vector.Vector{vector.Of(1)}); err == nil {
		t.Fatal("dim mismatch should error")
	}
}

func TestBuildSkipsEmptyBuckets(t *testing.T) {
	cs := append(twoCentroids(), vector.Of(1000, 1000))
	h, err := Build(gridCell(t), cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Buckets()) != 2 {
		t.Fatalf("empty centroid produced a bucket: %d", len(h.Buckets()))
	}
}

func TestBuildWeighted(t *testing.T) {
	ws := dataset.MustNewWeightedSet(1)
	for _, p := range []dataset.WeightedPoint{
		{Vec: vector.Of(0), Weight: 10},
		{Vec: vector.Of(1), Weight: 20},
		{Vec: vector.Of(10), Weight: 5},
	} {
		if err := ws.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	h, err := BuildWeighted(ws, []vector.Vector{vector.Of(0.5), vector.Of(10)})
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 35 {
		t.Fatalf("total = %g", h.Total())
	}
	if len(h.Buckets()) != 2 {
		t.Fatalf("buckets = %d", len(h.Buckets()))
	}
}

func TestEstimateRange(t *testing.T) {
	h, err := Build(gridCell(t), twoCentroids())
	if err != nil {
		t.Fatal(err)
	}
	// whole space: all mass
	got, err := h.EstimateRange(vector.Of(-100, -100), vector.Of(100, 100))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-400) > 1e-9 {
		t.Fatalf("whole-space estimate = %g", got)
	}
	// only the first cluster's region
	got, err = h.EstimateRange(vector.Of(-1, -1), vector.Of(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("cluster-1 estimate = %g", got)
	}
	// half of the first cluster along dim 0: ~50 under uniformity
	got, err = h.EstimateRange(vector.Of(-1, -1), vector.Of(0.5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got < 30 || got > 70 {
		t.Fatalf("half-cluster estimate = %g, want ~50", got)
	}
	// empty region
	got, err = h.EstimateRange(vector.Of(4, 4), vector.Of(6, 6))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("empty-region estimate = %g", got)
	}
	// validation
	if _, err := h.EstimateRange(vector.Of(1), vector.Of(1, 2)); err == nil {
		t.Fatal("dim mismatch should error")
	}
	if _, err := h.EstimateRange(vector.Of(2, 2), vector.Of(1, 1)); err == nil {
		t.Fatal("lo > hi should error")
	}
}

func TestMean(t *testing.T) {
	h, err := Build(gridCell(t), twoCentroids())
	if err != nil {
		t.Fatal(err)
	}
	m := h.Mean()
	// (100*0.5 + 300*10.5)/400 = 8.0 per dim, roughly (centroids are the
	// buckets' representatives, actual means are close to them)
	if math.Abs(m[0]-8) > 0.3 || math.Abs(m[1]-8) > 0.3 {
		t.Fatalf("mean = %v, want ~[8 8]", m)
	}
}

func TestSampleReconstruction(t *testing.T) {
	h, err := Build(gridCell(t), twoCentroids())
	if err != nil {
		t.Fatal(err)
	}
	sample, err := h.Sample(rng.New(9), 4000)
	if err != nil {
		t.Fatal(err)
	}
	if sample.Len() != 4000 {
		t.Fatalf("sample len = %d", sample.Len())
	}
	// ~25% of mass in the low cluster, all samples within bucket boxes
	low := 0
	for _, p := range sample.Points() {
		inSome := false
		for _, b := range h.Buckets() {
			if b.Contains(p) {
				inSome = true
			}
		}
		if !inSome {
			t.Fatalf("sampled point %v outside all buckets", p)
		}
		if p[0] < 5 {
			low++
		}
	}
	frac := float64(low) / 4000
	if math.Abs(frac-0.25) > 0.03 {
		t.Fatalf("low-cluster fraction = %g, want ~0.25", frac)
	}
	if _, err := h.Sample(rng.New(1), -1); err == nil {
		t.Fatal("negative n should error")
	}
}

func TestCompressionRatio(t *testing.T) {
	h, err := Build(gridCell(t), twoCentroids())
	if err != nil {
		t.Fatal(err)
	}
	// 2 buckets * (3*2+1)*8 = 112 bytes vs 400*2*8 = 6400 raw
	if got := h.CompressedBytes(); got != 112 {
		t.Fatalf("CompressedBytes = %d", got)
	}
	ratio := h.CompressionRatio(400)
	if math.Abs(ratio-6400.0/112.0) > 1e-9 {
		t.Fatalf("ratio = %g", ratio)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h, err := Build(gridCell(t), twoCentroids())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != h.Dim() || got.Total() != h.Total() || len(got.Buckets()) != len(h.Buckets()) {
		t.Fatalf("round trip changed shape")
	}
	for i, b := range got.Buckets() {
		orig := h.Buckets()[i]
		if !b.Centroid.Equal(orig.Centroid) || !b.Min.Equal(orig.Min) ||
			!b.Max.Equal(orig.Max) || b.Count != orig.Count {
			t.Fatalf("bucket %d differs after round trip", i)
		}
	}
}

func TestDecodeCorruption(t *testing.T) {
	h, err := Build(gridCell(t), twoCentroids())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := Decode(bytes.NewReader([]byte("XXXX"))); !errors.Is(err, ErrBadHistogram) {
		t.Fatalf("bad magic: %v", err)
	}
	bad := append([]byte{}, good...)
	bad[4] = 9 // version
	if _, err := Decode(bytes.NewReader(bad)); !errors.Is(err, ErrBadHistogram) {
		t.Fatalf("bad version: %v", err)
	}
	if _, err := Decode(bytes.NewReader(good[:len(good)-4])); !errors.Is(err, ErrBadHistogram) {
		t.Fatalf("truncation: %v", err)
	}
	if _, err := Decode(bytes.NewReader(good[:2])); !errors.Is(err, ErrBadHistogram) {
		t.Fatalf("short header: %v", err)
	}
}
