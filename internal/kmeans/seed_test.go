package kmeans

import (
	"errors"
	"math"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

func seedTestSet(t *testing.T) *dataset.WeightedSet {
	t.Helper()
	s := dataset.MustNewWeightedSet(2)
	weights := []float64{1, 5, 2, 9, 3, 7, 4, 8, 6, 10}
	for i, w := range weights {
		p := dataset.WeightedPoint{Vec: vector.Of(float64(i), float64(i*i)), Weight: w}
		if err := s.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSeedersCommonValidation(t *testing.T) {
	s := seedTestSet(t)
	for _, sd := range []Seeder{RandomSeeder{}, HeaviestSeeder{}, PlusPlusSeeder{}} {
		if _, err := sd.Seed(s, 0, rng.New(1)); err == nil {
			t.Fatalf("%s: k=0 should error", sd.Name())
		}
		if _, err := sd.Seed(s, s.Len()+1, rng.New(1)); !errors.Is(err, ErrTooFewPoints) {
			t.Fatalf("%s: k>N should give ErrTooFewPoints, got %v", sd.Name(), err)
		}
	}
}

func TestRandomSeederDistinctAndCopied(t *testing.T) {
	s := seedTestSet(t)
	seeds, err := (RandomSeeder{}).Seed(s, 5, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 5 {
		t.Fatalf("len = %d", len(seeds))
	}
	for i := 0; i < len(seeds); i++ {
		for j := i + 1; j < len(seeds); j++ {
			if seeds[i].Equal(seeds[j]) {
				t.Fatalf("seeds %d and %d coincide", i, j)
			}
		}
	}
	// mutating a seed must not corrupt the dataset
	orig := make([]float64, s.Len())
	for i := 0; i < s.Len(); i++ {
		orig[i] = s.At(i).Vec[0]
	}
	seeds[0][0] = 12345
	for i := 0; i < s.Len(); i++ {
		if s.At(i).Vec[0] != orig[i] {
			t.Fatal("seed aliases dataset storage")
		}
	}
}

func TestRandomSeederNeedsRNG(t *testing.T) {
	s := seedTestSet(t)
	if _, err := (RandomSeeder{}).Seed(s, 2, nil); err == nil {
		t.Fatal("nil RNG should error")
	}
	if _, err := (PlusPlusSeeder{}).Seed(s, 2, nil); err == nil {
		t.Fatal("nil RNG should error for kmeans++")
	}
}

func TestHeaviestSeederPicksTopWeights(t *testing.T) {
	s := seedTestSet(t)
	seeds, err := (HeaviestSeeder{}).Seed(s, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// weights 10, 9, 8 belong to points at indices 9, 3, 7
	want := []vector.Vector{s.At(9).Vec, s.At(3).Vec, s.At(7).Vec}
	for i := range seeds {
		if !seeds[i].Equal(want[i]) {
			t.Fatalf("heaviest seed %d = %v, want %v", i, seeds[i], want[i])
		}
	}
}

func TestHeaviestSeederDeterministicOnTies(t *testing.T) {
	s := dataset.MustNewWeightedSet(1)
	for i := 0; i < 6; i++ {
		if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(float64(i)), Weight: 5}); err != nil {
			t.Fatal(err)
		}
	}
	a, err := (HeaviestSeeder{}).Seed(s, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (HeaviestSeeder{}).Seed(s, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("tie-breaking not deterministic")
		}
	}
	// stable sort keeps original order: indices 0,1,2
	for i := 0; i < 3; i++ {
		if a[i][0] != float64(i) {
			t.Fatalf("tie order wrong: seed %d = %v", i, a[i])
		}
	}
}

func TestPlusPlusSeederSpreadsSeeds(t *testing.T) {
	// Two far blobs; with k=2, k-means++ should essentially always pick
	// one seed per blob, whereas the blobs are 200 apart.
	s := dataset.MustNewWeightedSet(1)
	r := rng.New(3)
	for i := 0; i < 50; i++ {
		if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(r.NormFloat64()), Weight: 1}); err != nil {
			t.Fatal(err)
		}
		if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(200 + r.NormFloat64()), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	hits := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		seeds, err := (PlusPlusSeeder{}).Seed(s, 2, rng.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		var lo, hi bool
		for _, sd := range seeds {
			if sd[0] < 100 {
				lo = true
			} else {
				hi = true
			}
		}
		if lo && hi {
			hits++
		}
	}
	if hits < trials-2 {
		t.Fatalf("kmeans++ split blobs only %d/%d times", hits, trials)
	}
}

func TestPlusPlusSeederDegenerateData(t *testing.T) {
	// All points identical: D^2 mass is zero after the first seed; the
	// seeder must still return k seeds rather than loop or error.
	s := dataset.MustNewWeightedSet(1)
	for i := 0; i < 5; i++ {
		if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(3), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	seeds, err := (PlusPlusSeeder{}).Seed(s, 3, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 {
		t.Fatalf("len = %d", len(seeds))
	}
}

func TestSeederNames(t *testing.T) {
	if (RandomSeeder{}).Name() != "random" {
		t.Fatal("RandomSeeder name")
	}
	if (HeaviestSeeder{}).Name() != "heaviest" {
		t.Fatal("HeaviestSeeder name")
	}
	if (PlusPlusSeeder{}).Name() != "kmeans++" {
		t.Fatal("PlusPlusSeeder name")
	}
}

func TestPlusPlusWeightBias(t *testing.T) {
	// First seed is weight-proportional: a point with overwhelming
	// weight should be chosen first nearly always.
	s := dataset.MustNewWeightedSet(1)
	if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(0), Weight: 10000}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(float64(i)), Weight: 0.001}); err != nil {
			t.Fatal(err)
		}
	}
	heavyFirst := 0
	for trial := 0; trial < 50; trial++ {
		seeds, err := (PlusPlusSeeder{}).Seed(s, 1, rng.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(seeds[0][0]) < 1e-12 {
			heavyFirst++
		}
	}
	if heavyFirst < 48 {
		t.Fatalf("heavy point chosen first only %d/50 times", heavyFirst)
	}
}
