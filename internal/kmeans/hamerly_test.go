package kmeans

import (
	"math"
	"testing"
	"testing/quick"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// randomWeighted builds n weighted 3-D points.
func randomWeighted(n int, seed uint64) *dataset.WeightedSet {
	r := rng.New(seed)
	s := dataset.MustNewWeightedSet(3)
	for i := 0; i < n; i++ {
		v := vector.Of(r.NormFloat64()*10, r.NormFloat64()*10, r.NormFloat64()*10)
		_ = s.Add(dataset.WeightedPoint{Vec: v, Weight: 0.5 + r.Float64()})
	}
	return s
}

func TestHamerlyMatchesNaiveFixpoint(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		s := randomWeighted(200, uint64(trial+1))
		seeds, err := (RandomSeeder{}).Seed(s, 7, rng.New(uint64(trial)+100))
		if err != nil {
			t.Fatal(err)
		}
		// Run the naive path essentially to fixpoint (minuscule epsilon).
		naive, err := RunFromCentroids(s, seeds, Config{K: 7, Epsilon: 1e-300})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := RunFromCentroids(s, seeds, Config{K: 7, Accelerate: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(naive.MSE-fast.MSE) > 1e-9*(1+naive.MSE) {
			t.Fatalf("trial %d: naive MSE %.12f != hamerly %.12f", trial, naive.MSE, fast.MSE)
		}
		for j := range naive.Centroids {
			if !naive.Centroids[j].ApproxEqual(fast.Centroids[j], 1e-8) {
				t.Fatalf("trial %d: centroid %d differs: %v vs %v",
					trial, j, naive.Centroids[j], fast.Centroids[j])
			}
		}
		for i := range naive.Assignments {
			if naive.Assignments[i] != fast.Assignments[i] {
				t.Fatalf("trial %d: point %d assigned %d vs %d",
					trial, i, naive.Assignments[i], fast.Assignments[i])
			}
		}
	}
}

func TestHamerlyConverges(t *testing.T) {
	s := randomWeighted(300, 42)
	res, err := Run(s, Config{K: 10, Accelerate: true}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("hamerly did not converge on easy data")
	}
	// Result internally consistent: counts/weights match assignments.
	counts := make([]int, 10)
	for _, a := range res.Assignments {
		counts[a]++
	}
	for j := range counts {
		if counts[j] != res.Counts[j] {
			t.Fatalf("Counts[%d] = %d, recomputed %d", j, res.Counts[j], counts[j])
		}
	}
}

func TestHamerlyEmptyClusterReseed(t *testing.T) {
	s := dataset.MustNewWeightedSet(1)
	for _, x := range []float64{0, 0.1, 10, 10.1, 20, 20.1} {
		if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(x), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	init := []vector.Vector{vector.Of(0), vector.Of(0), vector.Of(0)}
	res, err := RunFromCentroids(s, init, Config{K: 3, Accelerate: true, EmptyPolicy: ReseedFarthest})
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, c := range res.Counts {
		if c > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 3 {
		t.Fatalf("reseed left %d non-empty clusters", nonEmpty)
	}
	if res.MSE > 0.01 {
		t.Fatalf("MSE = %g", res.MSE)
	}
}

func TestHamerlyWeightedMean(t *testing.T) {
	s := dataset.MustNewWeightedSet(1)
	_ = s.Add(dataset.WeightedPoint{Vec: vector.Of(0), Weight: 9})
	_ = s.Add(dataset.WeightedPoint{Vec: vector.Of(10), Weight: 1})
	res, err := RunFromCentroids(s, []vector.Vector{vector.Of(5)}, Config{K: 1, Accelerate: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0][0]-1) > 1e-9 {
		t.Fatalf("weighted centroid = %g, want 1", res.Centroids[0][0])
	}
}

func TestNearestTwoFlat(t *testing.T) {
	flat := []float64{0, 10, 3} // three 1-D centroids
	best, bd, sd := nearestTwoFlat([]float64{2}, flat, 3, 1)
	if best != 2 || math.Abs(bd-1) > 1e-12 {
		t.Fatalf("best = %d dist %g", best, bd)
	}
	if math.Abs(sd-2) > 1e-12 {
		t.Fatalf("second dist = %g", sd)
	}
	// single centroid: second is infinite
	b1, _, s1 := nearestTwoFlat([]float64{2}, flat[:1], 1, 1)
	if b1 != 0 || !math.IsInf(s1, 1) {
		t.Fatalf("single-centroid: %d %g", b1, s1)
	}
}

// Property: on random instances, accelerated and naive Lloyd reach
// fixpoints with (near-)identical MSE from the same seeds.
func TestHamerlyEquivalenceProperty(t *testing.T) {
	f := func(seed uint16, kRaw uint8) bool {
		k := int(kRaw)%9 + 2
		s := randomWeighted(120, uint64(seed)+1)
		seeds, err := (RandomSeeder{}).Seed(s, k, rng.New(uint64(seed)+999))
		if err != nil {
			return false
		}
		naive, err := RunFromCentroids(s, seeds, Config{K: k, Epsilon: 1e-300})
		if err != nil {
			return false
		}
		fast, err := RunFromCentroids(s, seeds, Config{K: k, Accelerate: true})
		if err != nil {
			return false
		}
		return math.Abs(naive.MSE-fast.MSE) <= 1e-9*(1+naive.MSE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLloydNaiveK40(b *testing.B)   { benchLloyd(b, false) }
func BenchmarkLloydHamerlyK40(b *testing.B) { benchLloyd(b, true) }

func benchLloyd(b *testing.B, accelerate bool) {
	s := randomWeighted(5000, 1)
	seeds, err := (RandomSeeder{}).Seed(s, 40, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFromCentroids(s, seeds, Config{K: 40, Accelerate: accelerate}); err != nil {
			b.Fatal(err)
		}
	}
}
