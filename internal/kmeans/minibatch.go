package kmeans

import (
	"fmt"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// The mini-batch kernel (Sculley, "Web-Scale K-Means Clustering",
// WWW 2010) trades exact Lloyd sweeps for sampled gradient steps: each
// batch assigns a handful of sampled points to their nearest centers
// and moves only those centers, with a per-center learning rate that
// decays as the center accumulates mass. Generalized here to weighted
// points (a row of weight w contributes mass w, so a heavy merged
// centroid pulls harder than a unit point), it recovers full-Lloyd
// quality at a fraction of the cost on large inputs — the regime of the
// merge/reopt hot path and the windowed snapshot index, where the same
// pool is re-clustered from a warm start after small changes.

// defaultBatchFactor sizes the default mini-batch at 10*K samples, so
// every center is visited a handful of times per step in expectation.
const defaultBatchFactor = 10

// batchesPerRound is how many gradient batches run between two full
// evaluation sweeps. Batch-to-batch MSE is noisy (every batch sees a
// different sample), so the ΔMSE convergence criterion is judged on
// full-pool evaluations spaced this many batches apart.
const batchesPerRound = 4

// runMiniBatch is the mini-batch iteration core. Config.MaxIterations
// caps gradient batches (each counted as one iteration; 0 = a sample
// budget of about two passes over the input), and the ΔMSE criterion
// compares consecutive full evaluations. Randomness comes
// exclusively from Config.SampleSeed — the caller's RNG is never
// consumed here, preserving the package invariant that iteration
// kernels draw no randomness beyond what Run derives up front.
func runMiniBatch(points *dataset.WeightedSet, centroids []vector.Vector, cfg Config, sc *scratch) (*Result, error) {
	n := points.Len()
	dim := points.Dim()
	k := len(centroids)
	if sc == nil || sc.n != n || sc.k != k || sc.dim != dim {
		sc = newScratch(n, k, dim)
		defer sc.release()
	}
	sc.ensureMiniBatch()
	data, wts := points.Data(), points.Weights()
	sc.loadCentroids(centroids)
	totalWeight := points.TotalWeight()

	if cfg.InitialCounts != nil {
		copy(sc.mbCounts, cfg.InitialCounts)
	} else {
		zeroFloats(sc.mbCounts)
	}
	for _, i := range cfg.FocusRows {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("kmeans: focus row %d out of range [0,%d)", i, n)
		}
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = defaultBatchFactor * k
	}
	maxBatches := cfg.MaxIterations
	if maxBatches <= 0 {
		// Default sample budget: about four expected passes over the
		// pool (Sculley runs a fixed budget of this order), with a floor
		// of a few evaluation rounds so small inputs still converge.
		maxBatches = 4*n/batch + 1
		if min := 5 * batchesPerRound; maxBatches < min {
			maxBatches = min
		}
	}

	sampler := rng.New(cfg.SampleSeed)
	res := &Result{}
	batches := 0
	if len(cfg.FocusRows) > 0 {
		// The focus rows form one deterministic first batch so changed
		// data is guaranteed to move the answer before sampling starts.
		sc.miniBatchRows(data, wts, cfg.FocusRows)
		batches++
	}
	prevMSE := 0.0
	evals := 0
	for batches < maxBatches {
		for b := 0; b < batchesPerRound && batches < maxBatches; b++ {
			sc.miniBatchSample(data, wts, batch, sampler)
			batches++
		}
		// Full evaluation sweep: exact assignment and SSE against the
		// current centers, moving nothing — the quantity the ΔMSE
		// criterion is judged on. (assignSerial also refreshes the
		// per-cluster statistics, which the final finishResult sweep
		// recomputes anyway.)
		sse := sc.assignSerial(data, wts)
		mse := sse / totalWeight
		evals++
		res.MSE = mse
		res.SSE = sse
		if evals > 1 {
			res.DeltaMSE = prevMSE - mse
			if res.DeltaMSE <= cfg.Epsilon {
				res.Converged = true
				break
			}
		}
		prevMSE = mse
	}
	res.Iterations = batches
	sc.finishResult(res, data, wts, totalWeight)
	return res, nil
}

// ensureMiniBatch allocates the learning-rate mass column used only by
// the mini-batch solver.
func (sc *scratch) ensureMiniBatch() {
	if sc.mbCounts == nil {
		sc.mbCounts = make([]float64, sc.k)
	}
}

// miniBatchStep applies one sampled row: assign it to its nearest
// center, grow that center's mass by the row's weight, and move the
// center toward the row by eta = w / mass (Sculley's per-center
// learning rate, weighted). Zero-weight rows carry no mass and are
// skipped.
func (sc *scratch) miniBatchStep(data, wts []float64, i int) {
	w := wts[i]
	if w == 0 {
		return
	}
	dim := sc.dim
	off := i * dim
	x := data[off : off+dim : off+dim]
	j, _ := vector.NearestIndexFlat(x, sc.cent, sc.k, dim)
	sc.mbCounts[j] += w
	eta := w / sc.mbCounts[j]
	row := sc.cent[j*dim : (j+1)*dim : (j+1)*dim]
	for d, xv := range x {
		row[d] += eta * (xv - row[d])
	}
}

// miniBatchRows applies one gradient batch over the given rows in order.
func (sc *scratch) miniBatchRows(data, wts []float64, rows []int) {
	for _, i := range rows {
		sc.miniBatchStep(data, wts, i)
	}
}

// miniBatchSample draws one batch of b rows with replacement from the
// sampling stream and applies it.
func (sc *scratch) miniBatchSample(data, wts []float64, b int, r *rng.RNG) {
	for s := 0; s < b; s++ {
		sc.miniBatchStep(data, wts, r.Intn(sc.n))
	}
}
