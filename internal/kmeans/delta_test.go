package kmeans

import (
	"testing"

	"streamkm/internal/rng"
)

// Tests for the convergence diagnostics the obs layer reports: the
// final ΔMSE of a Lloyd run and the converged-run count of a restart
// sweep.

func TestRunReportsDeltaMSE(t *testing.T) {
	s := twoBlobs(t, 50)
	res, err := Run(s, Config{K: 2}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("two-blob problem should converge")
	}
	// Lloyd's MSE is monotonically non-increasing, and convergence means
	// the final improvement dipped to the threshold or below.
	if res.DeltaMSE < 0 || res.DeltaMSE > DefaultEpsilon {
		t.Fatalf("DeltaMSE = %g, want within [0, %g]", res.DeltaMSE, DefaultEpsilon)
	}

	// A run cut off after one iteration has no MSE delta to report and
	// must not claim convergence.
	cut, err := Run(s, Config{K: 2, MaxIterations: 1}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if cut.Converged || cut.DeltaMSE != 0 {
		t.Fatalf("1-iteration run: converged=%t delta=%g, want false/0", cut.Converged, cut.DeltaMSE)
	}

	// The accelerated path iterates to an assignment fixpoint rather
	// than an MSE threshold, so it tracks no ΔMSE (documented on the
	// field).
	acc, err := Run(s, Config{K: 2, Accelerate: true}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if acc.DeltaMSE != 0 {
		t.Fatalf("accelerated DeltaMSE = %g, want 0", acc.DeltaMSE)
	}
}

func TestRunRestartsCountsConverged(t *testing.T) {
	s := twoBlobs(t, 30)
	rr, err := RunRestarts(s, Config{K: 2}, 4, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Converged != 4 {
		t.Fatalf("Converged = %d, want all 4 easy runs to converge", rr.Converged)
	}
	if rr.Best == nil || !rr.Best.Converged {
		t.Fatal("winning run did not converge")
	}
}
