package kmeans

import (
	"errors"
	"fmt"
	"sort"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// Seeder selects k initial centroids from a weighted point set. The paper
// uses uniform random seeds for serial and partial k-means (§2 step 1)
// and largest-weight seeds for the merge step (§3.3 step 1).
type Seeder interface {
	// Seed returns k initial centroids (deep copies). It must return an
	// error when k exceeds the number of points.
	Seed(points *dataset.WeightedSet, k int, r *rng.RNG) ([]vector.Vector, error)
	// Name identifies the strategy in benchmark tables.
	Name() string
}

// ErrTooFewPoints is returned when a seeder is asked for more seeds than
// there are points.
var ErrTooFewPoints = errors.New("kmeans: fewer points than requested seeds")

// RandomSeeder selects k distinct points uniformly at random — the
// paper's "select a set of k initial cluster centroids randomly ... from
// the existing data points".
type RandomSeeder struct{}

// Name implements Seeder.
func (RandomSeeder) Name() string { return "random" }

// Seed implements Seeder.
func (RandomSeeder) Seed(points *dataset.WeightedSet, k int, r *rng.RNG) ([]vector.Vector, error) {
	if err := checkSeedArgs(points, k); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, errors.New("kmeans: RandomSeeder requires an RNG")
	}
	idx := r.SampleWithoutReplacement(points.Len(), k)
	seeds := make([]vector.Vector, k)
	for i, j := range idx {
		seeds[i] = points.At(j).Vec.Clone()
	}
	return seeds, nil
}

// HeaviestSeeder selects the k points with the largest weights — the
// merge operator's initialization, which "forces the algorithm to take
// into account which data points are likely to represent significant
// cluster centroids already" (§3.3). Ties are broken deterministically by
// index so merge runs are reproducible.
type HeaviestSeeder struct{}

// Name implements Seeder.
func (HeaviestSeeder) Name() string { return "heaviest" }

// Seed implements Seeder.
func (HeaviestSeeder) Seed(points *dataset.WeightedSet, k int, r *rng.RNG) ([]vector.Vector, error) {
	if err := checkSeedArgs(points, k); err != nil {
		return nil, err
	}
	order := make([]int, points.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return points.At(order[a]).Weight > points.At(order[b]).Weight
	})
	seeds := make([]vector.Vector, k)
	for i := 0; i < k; i++ {
		seeds[i] = points.At(order[i]).Vec.Clone()
	}
	return seeds, nil
}

// PlusPlusSeeder implements weighted k-means++ (D^2 sampling): the first
// seed is drawn proportional to weight, subsequent seeds proportional to
// weight times squared distance to the nearest chosen seed. Not used by
// the paper, provided as the improved-seeding ablation point.
type PlusPlusSeeder struct{}

// Name implements Seeder.
func (PlusPlusSeeder) Name() string { return "kmeans++" }

// Seed implements Seeder.
func (PlusPlusSeeder) Seed(points *dataset.WeightedSet, k int, r *rng.RNG) ([]vector.Vector, error) {
	if err := checkSeedArgs(points, k); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, errors.New("kmeans: PlusPlusSeeder requires an RNG")
	}
	n := points.Len()
	seeds := make([]vector.Vector, 0, k)
	first, err := sampleProportional(points, r, nil)
	if err != nil {
		return nil, err
	}
	seeds = append(seeds, points.At(first).Vec.Clone())
	// d2[i] tracks squared distance to the nearest chosen seed.
	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		d2[i] = vector.SquaredDistance(points.At(i).Vec, seeds[0])
	}
	for len(seeds) < k {
		idx, err := sampleProportional(points, r, d2)
		if err != nil {
			return nil, err
		}
		s := points.At(idx).Vec.Clone()
		seeds = append(seeds, s)
		for i := 0; i < n; i++ {
			if d := vector.SquaredDistance(points.At(i).Vec, s); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return seeds, nil
}

// sampleProportional draws an index with probability proportional to
// weight[i] * scale[i] (scale nil means 1). When the total mass is zero
// (all remaining points coincide with chosen seeds) it falls back to a
// uniform draw so seeding still succeeds on degenerate data.
func sampleProportional(points *dataset.WeightedSet, r *rng.RNG, scale []float64) (int, error) {
	n := points.Len()
	var total float64
	for i := 0; i < n; i++ {
		m := points.At(i).Weight
		if scale != nil {
			m *= scale[i]
		}
		total += m
	}
	if total <= 0 {
		return r.Intn(n), nil
	}
	target := r.Float64() * total
	var acc float64
	for i := 0; i < n; i++ {
		m := points.At(i).Weight
		if scale != nil {
			m *= scale[i]
		}
		acc += m
		if target < acc {
			return i, nil
		}
	}
	return n - 1, nil
}

func checkSeedArgs(points *dataset.WeightedSet, k int) error {
	if k <= 0 {
		return fmt.Errorf("kmeans: k must be positive, got %d", k)
	}
	if points.Len() < k {
		return fmt.Errorf("%w: %d points, k=%d", ErrTooFewPoints, points.Len(), k)
	}
	return nil
}
