package kmeans

import (
	"math"
	"testing"

	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

func TestParallelAssignMatchesSerial(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 7} {
		s := randomWeighted(250, 11)
		seeds, err := (RandomSeeder{}).Seed(s, 6, rng.New(12))
		if err != nil {
			t.Fatal(err)
		}
		serial, err := RunFromCentroids(s, seeds, Config{K: 6})
		if err != nil {
			t.Fatal(err)
		}
		par, err := RunFromCentroids(s, seeds, Config{K: 6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(serial.MSE-par.MSE) > 1e-9*(1+serial.MSE) {
			t.Fatalf("workers=%d: MSE %.15f vs %.15f", workers, par.MSE, serial.MSE)
		}
		for i := range serial.Assignments {
			if serial.Assignments[i] != par.Assignments[i] {
				t.Fatalf("workers=%d: assignment %d differs", workers, i)
			}
		}
		for j := range serial.Centroids {
			if !serial.Centroids[j].ApproxEqual(par.Centroids[j], 1e-9) {
				t.Fatalf("workers=%d: centroid %d differs", workers, j)
			}
		}
	}
}

func TestParallelAssignDeterministicPerWorkerCount(t *testing.T) {
	s := randomWeighted(300, 21)
	seeds, err := (RandomSeeder{}).Seed(s, 5, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunFromCentroids(s, seeds, Config{K: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFromCentroids(s, seeds, Config{K: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.MSE != b.MSE {
		t.Fatalf("same worker count, different MSE: %v vs %v", a.MSE, b.MSE)
	}
	for j := range a.Centroids {
		if !a.Centroids[j].Equal(b.Centroids[j]) {
			t.Fatalf("same worker count, centroid %d differs bitwise", j)
		}
	}
}

func TestParallelAssignMoreWorkersThanPoints(t *testing.T) {
	s := randomWeighted(3, 31)
	seeds, err := (RandomSeeder{}).Seed(s, 2, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFromCentroids(s, seeds, Config{K: 2, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 3 {
		t.Fatalf("assignments = %d", len(res.Assignments))
	}
}

func TestParallelAssignDirect(t *testing.T) {
	s := randomWeighted(100, 41)
	centroids := []vector.Vector{
		vector.Of(5, 5, 5),
		vector.Of(-5, -5, -5),
	}
	sc := newScratch(s.Len(), 2, 3)
	defer sc.release()
	sc.loadCentroids(centroids)
	sse := sc.assignParallel(s.Data(), s.Weights(), 4)
	// Recompute serially.
	wantCounts := make([]int, 2)
	var wantSSE float64
	wantW := make([]float64, 2)
	wantSums := []vector.Vector{vector.New(3), vector.New(3)}
	for i := 0; i < s.Len(); i++ {
		p := s.At(i)
		j, d := vector.NearestIndex(p.Vec, centroids)
		if sc.assign[i] != j {
			t.Fatalf("assignment %d wrong", i)
		}
		if sc.dists[i] != d {
			t.Fatalf("cached distance %d = %g, want %g", i, sc.dists[i], d)
		}
		wantCounts[j]++
		wantW[j] += p.Weight
		wantSums[j].AddScaled(p.Weight, p.Vec)
		wantSSE += d * p.Weight
	}
	for j := 0; j < 2; j++ {
		if sc.counts[j] != wantCounts[j] {
			t.Fatalf("counts[%d] = %d, want %d", j, sc.counts[j], wantCounts[j])
		}
		if math.Abs(sc.weights[j]-wantW[j]) > 1e-9 {
			t.Fatalf("weights[%d] = %g, want %g", j, sc.weights[j], wantW[j])
		}
		got := vector.Vector(sc.sums[j*3 : (j+1)*3])
		if !got.ApproxEqual(wantSums[j], 1e-9) {
			t.Fatalf("sums[%d] differ", j)
		}
	}
	if math.Abs(sse-wantSSE) > 1e-9*(1+wantSSE) {
		t.Fatalf("sse = %g, want %g", sse, wantSSE)
	}
}

func TestParallelAssignPoolResizes(t *testing.T) {
	// The persistent pool must rebuild itself when the requested worker
	// count changes between sweeps on the same scratch.
	s := randomWeighted(120, 43)
	seeds, err := (RandomSeeder{}).Seed(s, 4, rng.New(44))
	if err != nil {
		t.Fatal(err)
	}
	sc := newScratch(s.Len(), 4, 3)
	defer sc.release()
	sc.loadCentroids(seeds)
	first := sc.assignParallel(s.Data(), s.Weights(), 2)
	if sc.pool.w != 2 {
		t.Fatalf("pool width = %d, want 2", sc.pool.w)
	}
	again := sc.assignParallel(s.Data(), s.Weights(), 3)
	if sc.pool.w != 3 {
		t.Fatalf("pool width = %d, want 3", sc.pool.w)
	}
	if math.Abs(first-again) > 1e-9*(1+first) {
		t.Fatalf("sse differs across worker counts beyond FP order: %g vs %g", first, again)
	}
}

func BenchmarkLloydParallel4Workers(b *testing.B) {
	s := randomWeighted(5000, 1)
	seeds, err := (RandomSeeder{}).Seed(s, 40, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFromCentroids(s, seeds, Config{K: 40, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
