package kmeans

import (
	"errors"
	"fmt"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// ScalableSeeder implements k-means|| (Bahmani et al., "Scalable
// K-Means++"): instead of k sequential D^2 draws, it oversamples ~l
// candidates per round for a few rounds, weights each candidate by the
// point mass it attracts, and reclusters the small weighted candidate
// set down to k with weighted k-means++. The oversampled candidate set
// covers the data well in O(Rounds) passes, which is what lets the
// partial stage trade its R-restart uniform-seed search for one good
// seed set.
//
// Determinism: Seed consumes the supplied RNG in a single sequential
// scan order regardless of how the caller fans work out afterwards, so
// equal RNG states produce identical seed sets for any Workers /
// Parallel configuration (RunRestarts already pre-derives seed sets
// serially before its fan-out).
type ScalableSeeder struct {
	// Rounds is the number of oversampling passes (0 = 5, the paper's
	// "around 5 rounds suffice").
	Rounds int
	// Oversample is the expected number of candidates drawn per round
	// (0 = 2k).
	Oversample float64
	// ReclusterIterations caps the Lloyd iterations of the final
	// candidate reclustering (0 = 100; the candidate set is tiny, so
	// this never dominates).
	ReclusterIterations int
}

// Name implements Seeder.
func (ScalableSeeder) Name() string { return "kmeans||" }

// Seed implements Seeder.
func (s ScalableSeeder) Seed(points *dataset.WeightedSet, k int, r *rng.RNG) ([]vector.Vector, error) {
	if err := checkSeedArgs(points, k); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, errors.New("kmeans: ScalableSeeder requires an RNG")
	}
	rounds := s.Rounds
	if rounds <= 0 {
		rounds = 5
	}
	l := s.Oversample
	if l <= 0 {
		l = 2 * float64(k)
	}
	n := points.Len()

	// First candidate: one weight-proportional draw, as in k-means++.
	first, err := sampleProportional(points, r, nil)
	if err != nil {
		return nil, err
	}
	cand := []int{first}
	chosen := make([]bool, n)
	chosen[first] = true
	// d2[i] tracks squared distance to the nearest chosen candidate.
	d2 := make([]float64, n)
	firstVec := points.At(first).Vec
	for i := 0; i < n; i++ {
		d2[i] = vector.SquaredDistance(points.At(i).Vec, firstVec)
	}

	for round := 0; round < rounds; round++ {
		var phi float64
		for i := 0; i < n; i++ {
			phi += points.At(i).Weight * d2[i]
		}
		if phi <= 0 {
			break // every point coincides with a candidate
		}
		// Independent inclusion with probability min(1, l*w*d^2/phi).
		// Candidates drawn this round do not affect each other's draw
		// probabilities; distances update once in a batch afterwards,
		// exactly as in the paper.
		newFrom := len(cand)
		for i := 0; i < n; i++ {
			if chosen[i] {
				continue
			}
			p := l * points.At(i).Weight * d2[i] / phi
			if p >= 1 || r.Float64() < p {
				cand = append(cand, i)
				chosen[i] = true
			}
		}
		for _, c := range cand[newFrom:] {
			cv := points.At(c).Vec
			for i := 0; i < n; i++ {
				if d := vector.SquaredDistance(points.At(i).Vec, cv); d < d2[i] {
					d2[i] = d
				}
			}
		}
	}

	// Degenerate data can leave fewer than k candidates; top up with
	// uniform draws over the unchosen points so seeding still succeeds.
	for len(cand) < k {
		i := r.Intn(n)
		for chosen[i] {
			i = (i + 1) % n
		}
		cand = append(cand, i)
		chosen[i] = true
		cv := points.At(i).Vec
		for j := 0; j < n; j++ {
			if d := vector.SquaredDistance(points.At(j).Vec, cv); d < d2[j] {
				d2[j] = d
			}
		}
	}

	seeds := make([]vector.Vector, 0, k)
	if len(cand) == k {
		for _, c := range cand {
			seeds = append(seeds, points.At(c).Vec.Clone())
		}
		return seeds, nil
	}

	// Weight each candidate by the total point mass nearest to it, then
	// recluster the weighted candidates down to k.
	mass := make([]float64, len(cand))
	for i := 0; i < n; i++ {
		v := points.At(i).Vec
		best, bestD := 0, vector.SquaredDistance(v, points.At(cand[0]).Vec)
		for j := 1; j < len(cand); j++ {
			if d := vector.SquaredDistance(v, points.At(cand[j]).Vec); d < bestD {
				best, bestD = j, d
			}
		}
		mass[best] += points.At(i).Weight
	}
	cset, err := dataset.NewWeightedSet(points.Dim())
	if err != nil {
		return nil, err
	}
	cset.Grow(len(cand))
	for j, c := range cand {
		w := mass[j]
		if w <= 0 {
			// A candidate that attracted no mass still participates so
			// the set keeps >= k points; give it a vanishing weight.
			w = 1e-12
		}
		if err := cset.Add(dataset.WeightedPoint{Vec: points.At(c).Vec.Clone(), Weight: w}); err != nil {
			return nil, err
		}
	}
	maxIter := s.ReclusterIterations
	if maxIter <= 0 {
		maxIter = 100
	}
	res, err := Run(cset, Config{K: k, Seeder: PlusPlusSeeder{}, MaxIterations: maxIter}, r)
	if err != nil {
		return nil, fmt.Errorf("kmeans: k-means|| recluster: %w", err)
	}
	for _, c := range res.Centroids {
		seeds = append(seeds, c.Clone())
	}
	if len(seeds) != k {
		return nil, fmt.Errorf("kmeans: k-means|| produced %d seeds, want %d", len(seeds), k)
	}
	return seeds, nil
}

// SeederByName resolves a seed-method name to a Seeder. Names match
// Seeder.Name(): "random", "heaviest", "kmeans++", "kmeans||" (alias
// "scalable"). The empty string resolves to nil, which lets each stage
// keep its historic default (random partial seeds, heaviest-weight
// merge seeds).
func SeederByName(name string) (Seeder, error) {
	switch name {
	case "":
		return nil, nil
	case "random":
		return RandomSeeder{}, nil
	case "heaviest":
		return HeaviestSeeder{}, nil
	case "kmeans++", "plusplus":
		return PlusPlusSeeder{}, nil
	case "kmeans||", "scalable":
		return ScalableSeeder{}, nil
	}
	return nil, fmt.Errorf("kmeans: unknown seed method %q (want random, heaviest, kmeans++, or kmeans||)", name)
}
