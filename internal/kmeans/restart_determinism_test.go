package kmeans

import (
	"math"
	"testing"

	"streamkm/internal/rng"
)

// Golden values captured from the pre-flat-memory implementation (serial
// restarts, []Vector storage, per-iteration allocation). The flat-memory
// rewrite is required to reproduce them bit for bit — single-accumulator
// unrolling, index-order scans with strict <, serial seed pre-derivation
// — for every Parallel worker count.
//
// Workload: randomWeighted(300, 7), Config{K: 6}, 5 restarts, rng.New(42).
const (
	goldenRestarts = 5
	goldenBestRun  = 3
	goldenBestMSE  = uint64(0x405c858927d0be6b)

	goldenNaiveCsum       = uint64(0x485725bdb73caf53)
	goldenNaiveTotalIters = 91

	goldenHamerlyCsum       = uint64(0xc0f7506bdce725f7)
	goldenHamerlyTotalIters = 86
)

var goldenNaiveMSEs = [goldenRestarts]uint64{
	0x405cd0c34bcf8051, 0x405d00614f347cfb, 0x405d7fc531e2593c,
	0x405c858927d0be6b, 0x405cbbf1ea1e90f8,
}

var goldenHamerlyMSEs = [goldenRestarts]uint64{
	0x405cd0c34bcf804e, 0x405d00614f347cfd, 0x405d7fc531e2593a,
	0x405c858927d0be6b, 0x405cbbf1ea1e90f6,
}

// centroidChecksum folds every centroid component's bit pattern through
// an order-sensitive FNV-style mix, so any bitwise deviation in any
// component changes the sum.
func centroidChecksum(res *Result) uint64 {
	var csum uint64
	for _, c := range res.Centroids {
		for _, x := range c {
			csum ^= math.Float64bits(x)
			csum = csum*1099511628211 + 0x9e3779b97f4a7c15
		}
	}
	return csum
}

func goldenRestartRun(t *testing.T, accelerate bool, parallel int) *RestartResult {
	t.Helper()
	s := randomWeighted(300, 7)
	cfg := Config{K: 6, Accelerate: accelerate, Parallel: parallel}
	rr, err := RunRestarts(s, cfg, goldenRestarts, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	return rr
}

func checkGolden(t *testing.T, rr *RestartResult, parallel int,
	wantMSEs [goldenRestarts]uint64, wantCsum uint64, wantIters int) {
	t.Helper()
	if rr.BestRun != goldenBestRun {
		t.Fatalf("Parallel=%d: BestRun = %d, want %d", parallel, rr.BestRun, goldenBestRun)
	}
	if bits := math.Float64bits(rr.Best.MSE); bits != goldenBestMSE {
		t.Fatalf("Parallel=%d: best MSE bits %#x, want %#x", parallel, bits, goldenBestMSE)
	}
	for run, want := range wantMSEs {
		if bits := math.Float64bits(rr.MSEs[run]); bits != want {
			t.Fatalf("Parallel=%d: run %d MSE bits %#x, want %#x", parallel, run, bits, want)
		}
	}
	if csum := centroidChecksum(rr.Best); csum != wantCsum {
		t.Fatalf("Parallel=%d: centroid checksum %#x, want %#x", parallel, csum, wantCsum)
	}
	if rr.TotalIterations != wantIters {
		t.Fatalf("Parallel=%d: TotalIterations = %d, want %d", parallel, rr.TotalIterations, wantIters)
	}
}

// TestRestartsMatchPreRefactorGoldenNaive pins the naive path to the
// exact bits the pre-refactor implementation produced, across worker
// counts.
func TestRestartsMatchPreRefactorGoldenNaive(t *testing.T) {
	for _, parallel := range []int{0, 1, 2, 4, 8} {
		rr := goldenRestartRun(t, false, parallel)
		checkGolden(t, rr, parallel, goldenNaiveMSEs, goldenNaiveCsum, goldenNaiveTotalIters)
	}
}

// TestRestartsMatchPreRefactorGoldenHamerly pins the accelerated path
// the same way.
func TestRestartsMatchPreRefactorGoldenHamerly(t *testing.T) {
	for _, parallel := range []int{0, 1, 2, 4, 8} {
		rr := goldenRestartRun(t, true, parallel)
		checkGolden(t, rr, parallel, goldenHamerlyMSEs, goldenHamerlyCsum, goldenHamerlyTotalIters)
	}
}

// TestRestartsBitIdenticalAcrossWorkerCounts compares complete winning
// results — every centroid component and every assignment — across
// Parallel settings, for both iteration cores.
func TestRestartsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, accelerate := range []bool{false, true} {
		base := goldenRestartRun(t, accelerate, 1)
		for _, parallel := range []int{2, 4, 8} {
			rr := goldenRestartRun(t, accelerate, parallel)
			if rr.BestRun != base.BestRun {
				t.Fatalf("accelerate=%v Parallel=%d: BestRun %d vs %d",
					accelerate, parallel, rr.BestRun, base.BestRun)
			}
			for j := range base.Best.Centroids {
				if !rr.Best.Centroids[j].Equal(base.Best.Centroids[j]) {
					t.Fatalf("accelerate=%v Parallel=%d: centroid %d differs bitwise",
						accelerate, parallel, j)
				}
			}
			for i := range base.Best.Assignments {
				if rr.Best.Assignments[i] != base.Best.Assignments[i] {
					t.Fatalf("accelerate=%v Parallel=%d: assignment %d differs",
						accelerate, parallel, i)
				}
			}
		}
	}
}

// TestRestartsParallelValidation pins the config validation for the new
// knob.
func TestRestartsParallelValidation(t *testing.T) {
	s := randomWeighted(50, 3)
	if _, err := RunRestarts(s, Config{K: 3, Parallel: -1}, 2, rng.New(1)); err == nil {
		t.Fatal("negative Parallel should error")
	}
	// More workers than restarts is clamped, not an error.
	if _, err := RunRestarts(s, Config{K: 3, Parallel: 64}, 2, rng.New(1)); err != nil {
		t.Fatal(err)
	}
}

// TestLloydSteadyStateAllocsSerial verifies the hot path's contract: one
// warmed-up scratch performs a full assignment sweep plus centroid
// update without a single heap allocation.
func TestLloydSteadyStateAllocsSerial(t *testing.T) {
	s := randomWeighted(400, 5)
	seeds, err := (RandomSeeder{}).Seed(s, 8, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	sc := newScratch(s.Len(), 8, 3)
	defer sc.release()
	sc.loadCentroids(seeds)
	data, wts := s.Data(), s.Weights()
	sc.assignSerial(data, wts) // warm up
	allocs := testing.AllocsPerRun(50, func() {
		sc.assignSerial(data, wts)
		for j := 0; j < sc.k; j++ {
			if sc.weights[j] > 0 {
				row := sc.cent[j*sc.dim : (j+1)*sc.dim]
				srow := sc.sums[j*sc.dim : (j+1)*sc.dim]
				for d := range row {
					row[d] = srow[d] / sc.weights[j]
				}
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Lloyd iteration allocates %.1f objects/op, want 0", allocs)
	}
}

// TestLloydSteadyStateAllocsParallel verifies the same for the sharded
// sweep once the worker pool is warm.
func TestLloydSteadyStateAllocsParallel(t *testing.T) {
	s := randomWeighted(400, 5)
	seeds, err := (RandomSeeder{}).Seed(s, 8, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	sc := newScratch(s.Len(), 8, 3)
	defer sc.release()
	sc.loadCentroids(seeds)
	data, wts := s.Data(), s.Weights()
	sc.assignParallel(data, wts, 4) // warm up: builds the pool
	allocs := testing.AllocsPerRun(50, func() {
		sc.assignParallel(data, wts, 4)
	})
	if allocs != 0 {
		t.Fatalf("warm sharded sweep allocates %.1f objects/op, want 0", allocs)
	}
}
