package kmeans

import (
	"errors"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
)

// scalableTestSet builds nBlobs well-separated unit-weight blobs.
func scalableTestSet(t *testing.T, nBlobs, n int, seed uint64) *dataset.WeightedSet {
	t.Helper()
	spec := dataset.DefaultCellSpec()
	spec.Clusters = nBlobs
	spec.Dim = 3
	spec.NoiseFrac = 0
	spec.Separation = 30
	spec.Spread = 0.5
	s, err := dataset.GenerateCell(spec, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return dataset.Unweighted(s)
}

func TestScalableSeederValidation(t *testing.T) {
	s := seedTestSet(t)
	if _, err := (ScalableSeeder{}).Seed(s, 0, rng.New(1)); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := (ScalableSeeder{}).Seed(s, s.Len()+1, rng.New(1)); !errors.Is(err, ErrTooFewPoints) {
		t.Fatalf("k>N: %v", err)
	}
	if _, err := (ScalableSeeder{}).Seed(s, 3, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestScalableSeederDeterministic(t *testing.T) {
	points := scalableTestSet(t, 6, 400, 3)
	for _, k := range []int{3, 8, 20} {
		a, err := (ScalableSeeder{}).Seed(points, k, rng.New(11))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		b, err := (ScalableSeeder{}).Seed(points, k, rng.New(11))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(a) != k || len(b) != k {
			t.Fatalf("k=%d: got %d and %d seeds", k, len(a), len(b))
		}
		for i := range a {
			for d := range a[i] {
				if a[i][d] != b[i][d] {
					t.Fatalf("k=%d seed %d dim %d: %v != %v", k, i, d, a[i][d], b[i][d])
				}
			}
		}
	}
}

func TestScalableSeederBitIdenticalAcrossWorkers(t *testing.T) {
	// The acceptance bar for pluggable seeding: RunRestarts with the
	// scalable seeder must be bit-identical for every fan-out shape,
	// because seed sets are derived serially before any workers spawn.
	points := scalableTestSet(t, 5, 500, 7)
	var want *RestartResult
	for _, workers := range []int{0, 2, 4} {
		cfg := Config{K: 10, Seeder: ScalableSeeder{}, Parallel: workers}
		got, err := RunRestarts(points, cfg, 3, rng.New(99))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = got
			continue
		}
		if got.Best.MSE != want.Best.MSE {
			t.Fatalf("workers=%d: MSE %v != %v", workers, got.Best.MSE, want.Best.MSE)
		}
		for i := range want.Best.Centroids {
			for d := range want.Best.Centroids[i] {
				if got.Best.Centroids[i][d] != want.Best.Centroids[i][d] {
					t.Fatalf("workers=%d: centroid %d dim %d differs", workers, i, d)
				}
			}
		}
	}
}

func TestScalableSeederSeedsComeFromTheData(t *testing.T) {
	points := scalableTestSet(t, 4, 200, 13)
	k := 4
	seeds, err := (ScalableSeeder{}).Seed(points, k, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != k {
		t.Fatalf("len = %d", len(seeds))
	}
	// Mutating a seed must not corrupt the dataset (seeds are clones).
	orig := points.At(0).Vec[0]
	seeds[0][0] += 1e6
	if points.At(0).Vec[0] != orig {
		t.Fatal("seed aliases dataset storage")
	}
}

func TestScalableSeederBeatsUniformRestarts(t *testing.T) {
	// One k-means|| seeded run should reach the quality of 10
	// uniform-restart runs with fewer total Lloyd iterations — the
	// trade the operator exists for. Fixed seeds make this exact, not
	// statistical.
	points := scalableTestSet(t, 10, 1000, 17)
	const k = 10
	uniform, err := RunRestarts(points, Config{K: k}, 10, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	scalable, err := RunRestarts(points, Config{K: k, Seeder: ScalableSeeder{}}, 1, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if scalable.Best.MSE > uniform.Best.MSE*1.0000001 {
		t.Fatalf("k-means|| MSE %v worse than uniform best-of-10 %v",
			scalable.Best.MSE, uniform.Best.MSE)
	}
	if scalable.TotalIterations >= uniform.TotalIterations {
		t.Fatalf("k-means|| used %d Lloyd iterations, uniform restarts %d — no savings",
			scalable.TotalIterations, uniform.TotalIterations)
	}
}

func TestSeederByName(t *testing.T) {
	cases := map[string]string{
		"random": "random", "heaviest": "heaviest",
		"kmeans++": "kmeans++", "plusplus": "kmeans++",
		"kmeans||": "kmeans||", "scalable": "kmeans||",
	}
	for name, want := range cases {
		s, err := SeederByName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if s.Name() != want {
			t.Fatalf("%q resolved to %q", name, s.Name())
		}
	}
	if s, err := SeederByName(""); err != nil || s != nil {
		t.Fatalf("empty name: %v, %v", s, err)
	}
	if _, err := SeederByName("voronoi"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// Compile-time check that ScalableSeeder satisfies the Seeder contract
// next to the others.
var _ Seeder = ScalableSeeder{}

func BenchmarkSeedScalableK40(b *testing.B) {
	s := randomWeighted(5000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (ScalableSeeder{}).Seed(s, 40, rng.New(2)); err != nil {
			b.Fatal(err)
		}
	}
}
