package kmeans

import (
	"sync"

	"streamkm/internal/dataset"
	"streamkm/internal/vector"
)

// This file implements §3.4's third parallelization option: breaking the
// k-means operator into finer-grained pieces and parallelizing the
// expensive one — "within the partial k-means, the SortDataPoint
// [assignment] is the most expensive operation, and could be
// parallelized". Each Lloyd iteration's assignment + partial-sum pass is
// sharded across workers and reduced exactly (segment order is fixed, so
// results are deterministic for a given worker count; across different
// worker counts results agree up to floating-point summation order).

// assignShard is one worker's partial reduction of one iteration.
type assignShard struct {
	counts  []int
	weights []float64
	sums    []vector.Vector
	sse     float64
}

// parallelAssign performs the assignment step over points with the given
// centroids using w workers, writing assignments into assign and
// returning the reduced per-cluster statistics. w must be >= 2 and
// len(assign) == points.Len().
func parallelAssign(points *dataset.WeightedSet, centroids []vector.Vector, assign []int, w int) ([]int, []float64, []vector.Vector, float64) {
	n := points.Len()
	dim := points.Dim()
	k := len(centroids)
	if w > n {
		w = n
	}
	shards := make([]assignShard, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for s := 0; s < w; s++ {
		s := s
		lo := n * s / w
		hi := n * (s + 1) / w
		go func() {
			defer wg.Done()
			sh := assignShard{
				counts:  make([]int, k),
				weights: make([]float64, k),
				sums:    make([]vector.Vector, k),
			}
			for j := range sh.sums {
				sh.sums[j] = vector.New(dim)
			}
			for i := lo; i < hi; i++ {
				p := points.At(i)
				j, d := vector.NearestIndex(p.Vec, centroids)
				assign[i] = j
				sh.counts[j]++
				sh.weights[j] += p.Weight
				sh.sums[j].AddScaled(p.Weight, p.Vec)
				sh.sse += d * p.Weight
			}
			shards[s] = sh
		}()
	}
	wg.Wait()
	// Deterministic reduction in segment order.
	counts := make([]int, k)
	weights := make([]float64, k)
	sums := make([]vector.Vector, k)
	for j := range sums {
		sums[j] = vector.New(dim)
	}
	var sse float64
	for s := 0; s < w; s++ {
		sh := shards[s]
		for j := 0; j < k; j++ {
			counts[j] += sh.counts[j]
			weights[j] += sh.weights[j]
			sums[j].Add(sh.sums[j])
		}
		sse += sh.sse
	}
	return counts, weights, sums, sse
}
