package kmeans

import (
	"sync"

	"streamkm/internal/vector"
)

// This file implements §3.4's third parallelization option: breaking the
// k-means operator into finer-grained pieces and parallelizing the
// expensive one — "within the partial k-means, the SortDataPoint
// [assignment] is the most expensive operation, and could be
// parallelized". Each Lloyd iteration's assignment + partial-sum pass is
// sharded across a persistent worker pool and reduced exactly (segment
// order is fixed, so results are deterministic for a given worker count;
// across different worker counts results agree up to floating-point
// summation order). The pool and its shard slabs live for the whole run
// — workers are started once and signalled per sweep, so the steady
// state neither spawns goroutines nor allocates.

// assignShard is one worker's partial reduction of one sweep.
type assignShard struct {
	counts  []int
	weights []float64
	sums    []float64 // k*dim, flat
	sse     float64
}

// assignPool is a persistent pool of assignment workers. Sweep inputs
// are published into the struct fields before the per-worker start
// signal; the channel send/receive pair provides the happens-before
// edge, and wg.Wait orders every shard write before the reduction.
type assignPool struct {
	w, n, k, dim int
	shards       []assignShard
	start        []chan struct{}
	wg           sync.WaitGroup
	quit         chan struct{}

	// per-sweep inputs
	data, wts, cent []float64
	assign          []int
	dists           []float64
}

func newAssignPool(w, n, k, dim int) *assignPool {
	p := &assignPool{
		w: w, n: n, k: k, dim: dim,
		shards: make([]assignShard, w),
		start:  make([]chan struct{}, w),
		quit:   make(chan struct{}),
	}
	for s := 0; s < w; s++ {
		p.shards[s] = assignShard{
			counts:  make([]int, k),
			weights: make([]float64, k),
			sums:    make([]float64, k*dim),
		}
		p.start[s] = make(chan struct{})
		go p.worker(s)
	}
	return p
}

// worker processes the fixed segment [n*s/w, n*(s+1)/w) on every sweep
// — the same segment bounds as the pre-pool implementation, so the
// reduction sees identical shard contents.
func (p *assignPool) worker(s int) {
	lo := p.n * s / p.w
	hi := p.n * (s + 1) / p.w
	for {
		select {
		case <-p.quit:
			return
		case <-p.start[s]:
		}
		sh := &p.shards[s]
		k, dim := p.k, p.dim
		for j := 0; j < k; j++ {
			sh.counts[j] = 0
			sh.weights[j] = 0
		}
		zeroFloats(sh.sums)
		sh.sse = 0
		for i := lo; i < hi; i++ {
			off := i * dim
			x := p.data[off : off+dim : off+dim]
			j, d := vector.NearestIndexFlat(x, p.cent, k, dim)
			p.assign[i] = j
			p.dists[i] = d
			w := p.wts[i]
			sh.counts[j]++
			sh.weights[j] += w
			row := sh.sums[j*dim : (j+1)*dim]
			for t, xv := range x {
				row[t] += w * xv
			}
			sh.sse += d * w
		}
		p.wg.Done()
	}
}

// sweep runs one sharded assignment pass and blocks until every worker
// has filled its shard.
func (p *assignPool) sweep(data, wts, cent []float64, assign []int, dists []float64) {
	p.data, p.wts, p.cent, p.assign, p.dists = data, wts, cent, assign, dists
	p.wg.Add(p.w)
	for s := 0; s < p.w; s++ {
		p.start[s] <- struct{}{}
	}
	p.wg.Wait()
}

// stop terminates the workers. The pool must not be swept afterwards.
func (p *assignPool) stop() {
	close(p.quit)
}
