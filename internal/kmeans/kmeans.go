// Package kmeans implements the weighted Lloyd k-means iteration that
// underlies every clustering variant in this repository: the paper's
// serial k-means (unit weights), the partial k-means run per chunk, and
// the merge k-means over weighted centroids. The algorithm follows §2 of
// the paper: distance calculation, centroid recalculation, and
// convergence when the MSE improvement between consecutive iterations
// drops to (MSE(n-1) - MSE(n)) <= epsilon, with epsilon = 1e-9 in the
// paper's experiments.
package kmeans

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// DefaultEpsilon is the paper's convergence threshold (§2 step 4).
const DefaultEpsilon = 1e-9

// DefaultMaxIterations bounds a single Lloyd run. The paper does not
// state a cap; we add one so adversarial inputs cannot loop forever.
const DefaultMaxIterations = 500

// EmptyClusterPolicy selects what to do when a cluster loses all its
// points during an iteration (possible when seeds coincide or data is
// degenerate).
type EmptyClusterPolicy int

const (
	// ReseedFarthest moves an empty centroid onto the point currently
	// farthest from its assigned centroid — the standard repair that
	// keeps exactly k non-empty clusters.
	ReseedFarthest EmptyClusterPolicy = iota
	// DropEmpty keeps the stale centroid in place (it may re-acquire
	// points later); the result can effectively have fewer clusters.
	DropEmpty
)

// Config parameterizes one k-means run.
type Config struct {
	// K is the number of clusters; the paper fixes K = 40.
	K int
	// Epsilon is the ΔMSE convergence threshold; 0 means DefaultEpsilon.
	Epsilon float64
	// MaxIterations caps Lloyd iterations; 0 means DefaultMaxIterations.
	MaxIterations int
	// Seeder chooses initial centroids; nil means RandomSeeder.
	Seeder Seeder
	// EmptyPolicy selects the empty-cluster repair.
	EmptyPolicy EmptyClusterPolicy
	// Accelerate selects Hamerly's bound-based Lloyd iteration (§2's
	// "improvements for step 2"): identical fixpoints, far fewer
	// distance computations for large k. The accelerated path runs to
	// the assignment fixpoint, at which the ΔMSE criterion holds
	// trivially, so Epsilon is ignored.
	Accelerate bool
	// Workers, when >= 2, shards each naive Lloyd iteration's
	// assignment pass across that many goroutines (§3.4's option 3:
	// parallelizing SortDataPoint inside the operator). Results are
	// deterministic per worker count; across counts they agree up to
	// floating-point summation order. Ignored by the accelerated path.
	Workers int
	// Parallel, when >= 2, fans RunRestarts' independent runs across
	// that many worker goroutines (§3.4's option 2: running the restarts
	// of one partial k-means concurrently). Seed sets are pre-derived
	// from the caller's RNG serially, so every run and the best-of-R
	// winner are bit-identical to serial execution for any worker count.
	// Ignored by single runs.
	Parallel int
	// Solver selects the iteration kernel: "" or SolverLloyd runs full
	// Lloyd passes over every point; SolverMiniBatch runs the
	// mini-batch kernel (Sculley, WWW 2010, generalized to weighted
	// points): BatchSize points sampled per step from a dedicated
	// sampling stream, with only the sampled centers moved under
	// per-center learning rates. The mini-batch kernel ignores
	// Accelerate, Workers, and EmptyPolicy (an unsampled center simply
	// stays put).
	Solver string
	// BatchSize is the mini-batch sample size per gradient step
	// (0 = 10*K). Mini-batch solver only.
	BatchSize int
	// SampleSeed seeds the mini-batch sampling stream. Run and
	// RunRestarts overwrite it with values drawn from the caller's RNG
	// after seeding — keeping "Lloyd consumes no randomness" true for
	// the full-Lloyd solvers — while RunFromCentroids uses it as given,
	// so a warm-started refine is a pure function of its inputs.
	SampleSeed uint64
	// FocusRows, when non-empty, is processed as one deterministic
	// first batch before sampling begins — the warm-refine hook
	// guaranteeing that freshly changed rows influence the answer even
	// if the sampled batches miss them. Mini-batch solver only.
	FocusRows []int
	// InitialCounts pre-loads the per-center learning-rate mass
	// (length K). A warm-started refine passes the previous answer's
	// Weights so new data moves centroids proportionally to its mass
	// instead of yanking them onto itself. Mini-batch solver only; nil
	// starts every center at zero mass.
	InitialCounts []float64
}

// Solver names for Config.Solver / MergeConfig.Solver.
const (
	// SolverLloyd is the full Lloyd iteration (the default).
	SolverLloyd = "lloyd"
	// SolverMiniBatch is the sampled gradient kernel.
	SolverMiniBatch = "minibatch"
)

// SolverNames lists the selectable iteration kernels.
func SolverNames() []string { return []string{SolverLloyd, SolverMiniBatch} }

// ValidateSolver checks a solver name; "" selects the Lloyd default.
func ValidateSolver(name string) error {
	switch name {
	case "", SolverLloyd, SolverMiniBatch:
		return nil
	default:
		return fmt.Errorf("kmeans: unknown solver %q (have %s)", name, strings.Join(SolverNames(), ", "))
	}
}

func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = DefaultEpsilon
	}
	// The mini-batch solver budgets gradient batches from the input
	// size (see runMiniBatch); Lloyd's 500-sweep cap would be a ~50x
	// oversized sample budget.
	if c.MaxIterations == 0 && c.Solver != SolverMiniBatch {
		c.MaxIterations = DefaultMaxIterations
	}
	if c.Seeder == nil {
		c.Seeder = RandomSeeder{}
	}
	return c
}

func (c Config) validate() error {
	if c.K <= 0 {
		return fmt.Errorf("kmeans: K must be positive, got %d", c.K)
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("kmeans: Epsilon must be non-negative, got %g", c.Epsilon)
	}
	if c.MaxIterations < 0 {
		return fmt.Errorf("kmeans: MaxIterations must be non-negative, got %d", c.MaxIterations)
	}
	if c.Parallel < 0 {
		return fmt.Errorf("kmeans: Parallel must be non-negative, got %d", c.Parallel)
	}
	if err := ValidateSolver(c.Solver); err != nil {
		return err
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("kmeans: BatchSize must be non-negative, got %d", c.BatchSize)
	}
	if c.InitialCounts != nil && len(c.InitialCounts) != c.K {
		return fmt.Errorf("kmeans: %d initial counts but K=%d", len(c.InitialCounts), c.K)
	}
	return nil
}

// Result is the outcome of one k-means run.
type Result struct {
	// Centroids are the final cluster means.
	Centroids []vector.Vector
	// Assignments maps each input point index to its centroid index.
	Assignments []int
	// Counts[j] is the number of input points assigned to centroid j.
	Counts []int
	// Weights[j] is the total input weight assigned to centroid j; with
	// unit weights it equals float64(Counts[j]).
	Weights []float64
	// MSE is the final weighted mean square error.
	MSE float64
	// SSE is the final weighted sum of squared errors (MSE * total
	// weight) — the paper's E (unit weights) or E_pm (merge).
	SSE float64
	// Iterations is the number of Lloyd iterations executed.
	Iterations int
	// Converged reports whether the ΔMSE criterion was met before
	// MaxIterations.
	Converged bool
	// DeltaMSE is the final iteration's MSE improvement (MSE(n-1) -
	// MSE(n)) — at convergence, the residual the Epsilon criterion
	// accepted. It is 0 when fewer than two iterations ran and on the
	// accelerated path, which iterates to the assignment fixpoint where
	// the criterion holds trivially.
	DeltaMSE float64
}

// WeightedCentroids packages the result as the partial operator's output:
// each centroid weighted by its assigned count, the paper's
// {(c_1j, w_1j) ... (c_kj, w_kj)}.
func (res *Result) WeightedCentroids(dim int) (*dataset.WeightedSet, error) {
	out, err := dataset.NewWeightedSet(dim)
	if err != nil {
		return nil, err
	}
	for j, c := range res.Centroids {
		if res.Weights[j] == 0 {
			// A starved centroid represents no data; emitting it would
			// give the merge step a zero-weight phantom.
			continue
		}
		if err := out.Add(dataset.WeightedPoint{Vec: c.Clone(), Weight: res.Weights[j]}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Run executes weighted Lloyd k-means over points with the given config.
// The paper's serial k-means is Run over Unweighted(points); the merge
// k-means is Run over partial-stage centroids with HeaviestSeeder.
func Run(points *dataset.WeightedSet, cfg Config, r *rng.RNG) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if points.Len() == 0 {
		return nil, errors.New("kmeans: empty input")
	}
	centroids, err := cfg.Seeder.Seed(points, cfg.K, r)
	if err != nil {
		return nil, err
	}
	if cfg.Solver == SolverMiniBatch {
		// The sampling stream is derived from the caller's RNG after
		// seeding, so a run remains reproducible from (points, cfg, r)
		// and the full-Lloyd solvers' RNG consumption is unchanged.
		cfg.SampleSeed = r.Uint64()
	}
	return runLloyd(points, centroids, cfg, nil)
}

// RunFromCentroids executes Lloyd iterations from caller-provided initial
// centroids (deep-copied), used by baselines and the incremental merge.
func RunFromCentroids(points *dataset.WeightedSet, initial []vector.Vector, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(initial) != cfg.K {
		return nil, fmt.Errorf("kmeans: %d initial centroids but K=%d", len(initial), cfg.K)
	}
	if points.Len() == 0 {
		return nil, errors.New("kmeans: empty input")
	}
	centroids := make([]vector.Vector, len(initial))
	for i, c := range initial {
		if len(c) != points.Dim() {
			return nil, vector.ErrDimensionMismatch
		}
		centroids[i] = c.Clone()
	}
	return runLloyd(points, centroids, cfg, nil)
}

// runLloyd dispatches to the naive or accelerated iteration core.
// centroids is owned by the callee. sc may be nil (a private scratch is
// used) or a reusable scratch sized for points and cfg.K — RunRestarts
// passes one per worker so consecutive runs allocate nothing.
func runLloyd(points *dataset.WeightedSet, centroids []vector.Vector, cfg Config, sc *scratch) (*Result, error) {
	if points.TotalWeight() <= 0 {
		return nil, errors.New("kmeans: total weight is zero")
	}
	if cfg.Solver == SolverMiniBatch {
		return runMiniBatch(points, centroids, cfg, sc)
	}
	if cfg.Accelerate {
		return runHamerly(points, centroids, cfg, sc)
	}
	return runNaive(points, centroids, cfg, sc)
}

// runNaive is the textbook Lloyd iteration (§2 of the paper), executed
// over the flat point slab with every mutable buffer owned by sc: after
// the scratch warms up, iterations perform zero heap allocations.
func runNaive(points *dataset.WeightedSet, centroids []vector.Vector, cfg Config, sc *scratch) (*Result, error) {
	n := points.Len()
	dim := points.Dim()
	k := len(centroids)
	if sc == nil || sc.n != n || sc.k != k || sc.dim != dim {
		sc = newScratch(n, k, dim)
		defer sc.release()
	}
	data, wts := points.Data(), points.Weights()
	sc.loadCentroids(centroids)
	totalWeight := points.TotalWeight()

	prevMSE := 0.0
	res := &Result{}
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		// Step 2: distance calculation / assignment, optionally sharded
		// across workers (§3.4 option 3). The sweep also caches each
		// point's squared distance to its centroid in sc.dists.
		var sse float64
		if cfg.Workers >= 2 {
			sse = sc.assignParallel(data, wts, cfg.Workers)
		} else {
			sse = sc.assignSerial(data, wts)
		}

		// Step 3: centroid recalculation (weighted mean jump).
		for j := 0; j < k; j++ {
			if sc.weights[j] > 0 {
				row := sc.cent[j*dim : (j+1)*dim]
				srow := sc.sums[j*dim : (j+1)*dim]
				for d := 0; d < dim; d++ {
					row[d] = srow[d] / sc.weights[j]
				}
				continue
			}
			if cfg.EmptyPolicy == ReseedFarthest {
				sc.reseedEmpty(data, wts, j)
			}
			// DropEmpty: leave centroid where it is.
		}

		mse := sse / totalWeight
		res.Iterations = iter
		res.MSE = mse
		res.SSE = sse

		// Step 4: convergence on ΔMSE. The first iteration has no
		// predecessor; subsequent iterations compare against prevMSE.
		if iter > 1 {
			res.DeltaMSE = prevMSE - mse
			if res.DeltaMSE <= cfg.Epsilon {
				res.Converged = true
				break
			}
		}
		prevMSE = mse
	}

	sc.finishResult(res, data, wts, totalWeight)
	return res, nil
}

// RestartResult is the best run of a multi-restart execution, with
// per-run diagnostics.
type RestartResult struct {
	// Best is the run with the minimum MSE.
	Best *Result
	// BestRun is the index of the winning run.
	BestRun int
	// MSEs records every run's final MSE.
	MSEs []float64
	// TotalIterations sums Lloyd iterations across runs.
	TotalIterations int
	// Converged counts the runs that met the ΔMSE criterion before
	// MaxIterations.
	Converged int
}

// RunRestarts executes R independent k-means runs with different seed
// sets and returns the representation with the minimal mean square error
// — the paper's procedure for both serial (§5.2, R = 10) and partial
// (§3.2) k-means.
//
// When cfg.Parallel >= 2 the runs fan out across a worker pool. All R
// seed sets are derived from r serially up front (Lloyd iterations
// consume no randomness), so the RNG stream, every per-run result, and
// the best-of-R winner — ties broken by the lowest run index via strict
// < comparison in run order — are bit-identical to serial execution for
// every worker count.
func RunRestarts(points *dataset.WeightedSet, cfg Config, restarts int, r *rng.RNG) (*RestartResult, error) {
	if restarts <= 0 {
		return nil, fmt.Errorf("kmeans: restarts must be positive, got %d", restarts)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("kmeans: restart 0: %w", err)
	}
	if points.Len() == 0 {
		return nil, errors.New("kmeans: restart 0: kmeans: empty input")
	}
	seedSets := make([][]vector.Vector, restarts)
	var sampleSeeds []uint64
	if cfg.Solver == SolverMiniBatch {
		sampleSeeds = make([]uint64, restarts)
	}
	for run := range seedSets {
		seeds, err := cfg.Seeder.Seed(points, cfg.K, r)
		if err != nil {
			return nil, fmt.Errorf("kmeans: restart %d: %w", run, err)
		}
		seedSets[run] = seeds
		if sampleSeeds != nil {
			// Like the seed sets, sampling streams are derived serially
			// up front so parallel restarts stay bit-identical to serial.
			sampleSeeds[run] = r.Uint64()
		}
	}
	cfgFor := func(run int) Config {
		if sampleSeeds == nil {
			return cfg
		}
		c := cfg
		c.SampleSeed = sampleSeeds[run]
		return c
	}

	results := make([]*Result, restarts)
	errs := make([]error, restarts)
	workers := cfg.Parallel
	if workers > restarts {
		workers = restarts
	}
	if workers < 2 {
		sc := newScratch(points.Len(), cfg.K, points.Dim())
		defer sc.release()
		for run := 0; run < restarts; run++ {
			results[run], errs[run] = runLloyd(points, seedSets[run], cfgFor(run), sc)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				sc := newScratch(points.Len(), cfg.K, points.Dim())
				defer sc.release()
				for run := range next {
					results[run], errs[run] = runLloyd(points, seedSets[run], cfgFor(run), sc)
				}
			}()
		}
		for run := 0; run < restarts; run++ {
			next <- run
		}
		close(next)
		wg.Wait()
	}

	out := &RestartResult{MSEs: make([]float64, 0, restarts)}
	for run := 0; run < restarts; run++ {
		if errs[run] != nil {
			return nil, fmt.Errorf("kmeans: restart %d: %w", run, errs[run])
		}
		res := results[run]
		out.MSEs = append(out.MSEs, res.MSE)
		out.TotalIterations += res.Iterations
		if res.Converged {
			out.Converged++
		}
		if out.Best == nil || res.MSE < out.Best.MSE {
			out.Best = res
			out.BestRun = run
		}
	}
	return out, nil
}
